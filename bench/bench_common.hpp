// Shared helpers for the table-reproduction benches.
//
// Every bench accepts the SYNCPAT_SCALE environment variable (default 8):
// traces are 1/scale the paper's length, and count-like columns are scaled
// back up for display.  SYNCPAT_SCALE=1 reproduces paper-length traces.
//
// Benches run their experiment grids on the parallel engine
// (core/experiment_engine.hpp).  The worker count comes from --jobs N (or
// -j N) on the command line, or SYNCPAT_JOBS; 0 (the default) uses every
// core.  Results are deterministic and identical for any worker count.
// Set SYNCPAT_CHECK_INVARIANTS=1 to run every cell with the runtime
// invariant checker enabled (exits non-zero on any violation).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_engine.hpp"
#include "core/machine_config.hpp"
#include "core/results.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace_event.hpp"
#include "trace/analyzer.hpp"
#include "workload/profiles.hpp"

namespace syncpat::bench {

inline constexpr std::uint64_t kDefaultScale = 8;

struct BenchOptions {
  std::uint32_t jobs = 0;  // 0 = all cores
  std::string trace_out;   // empty = tracing off
  std::uint32_t trace_categories = obs::category::kAll;
};

[[noreturn]] inline void usage_and_exit(const char* prog) {
  std::cerr << "usage: " << prog
            << " [--jobs N | -j N] [--trace-out FILE] [--trace-events LIST]\n"
            << "  --jobs N          worker threads for the experiment grid "
               "(0 = all cores; also SYNCPAT_JOBS)\n"
            << "  --trace-out FILE  write Chrome trace-event JSON (one file "
               "per grid cell,\n"
               "                    cell label spliced into FILE's name); "
               "load at ui.perfetto.dev\n"
            << "  --trace-events L  comma list of categories to record: "
               "locks,bus,coherence,\n"
               "                    barriers,idle,all (default all)\n";
  std::exit(2);
}

/// Parses the common bench command line (--jobs/-j), seeded from
/// SYNCPAT_JOBS.  Exits with a usage message on malformed input.
inline BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opts;
  try {
    opts.jobs = core::jobs_from_env(0);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--trace-out" || arg.rfind("--trace-out=", 0) == 0) {
      if (arg == "--trace-out") {
        if (i + 1 >= argc) usage_and_exit(argv[0]);
        opts.trace_out = argv[++i];
      } else {
        opts.trace_out = arg.substr(std::strlen("--trace-out="));
      }
      if (opts.trace_out.empty()) usage_and_exit(argv[0]);
      continue;
    }
    if (arg == "--trace-events" || arg.rfind("--trace-events=", 0) == 0) {
      std::string list;
      if (arg == "--trace-events") {
        if (i + 1 >= argc) usage_and_exit(argv[0]);
        list = argv[++i];
      } else {
        list = arg.substr(std::strlen("--trace-events="));
      }
      try {
        opts.trace_categories = obs::parse_categories(list);
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        std::exit(2);
      }
      continue;
    }
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      value = argv[++i];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      value = arg.substr(std::strlen("--jobs="));
    } else {
      usage_and_exit(argv[0]);
    }
    try {
      std::size_t consumed = 0;
      const unsigned long parsed = std::stoul(value, &consumed);
      if (consumed != value.size()) throw std::invalid_argument(value);
      opts.jobs = static_cast<std::uint32_t>(parsed);
    } catch (const std::exception&) {
      std::cerr << "error: --jobs expects a non-negative integer, got \""
                << value << "\"\n";
      std::exit(2);
    }
  }
  return opts;
}

/// Copies the --trace-out/--trace-events decision onto a machine config.
inline void apply_trace_options(const BenchOptions& opts,
                                core::MachineConfig& config) {
  if (opts.trace_out.empty()) return;
  config.trace.enabled = true;
  config.trace.categories = opts.trace_categories;
}

/// scale_from_env with bench-friendly error reporting (exit 2, not a throw).
inline std::uint64_t scale_or_die(std::uint64_t fallback = kDefaultScale) {
  try {
    return core::scale_from_env(fallback);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

/// Runs a grid on the engine; any cell error or invariant violation is
/// fatal.  SYNCPAT_CHECK_INVARIANTS=1 enables the runtime checker in every
/// cell.
inline core::GridResult run_grid_or_die(core::ExperimentGrid grid,
                                        std::uint32_t jobs) {
  if (std::getenv("SYNCPAT_CHECK_INVARIANTS") != nullptr) {
    grid.base.invariants.enabled = true;
  }
  core::EngineOptions options;
  options.jobs = jobs;
  const core::GridResult result = core::run_grid(grid, options);
  bool failed = false;
  for (std::size_t i = 0; i < result.size(); ++i) {
    const core::CellResult& cell = result.results[i];
    if (!cell.ok()) {
      std::cerr << "error: cell " << result.cells[i].label() << " failed: "
                << cell.error << "\n";
      failed = true;
    } else if (cell.outcome.invariants.violations > 0) {
      std::cerr << "error: cell " << result.cells[i].label() << " had "
                << cell.outcome.invariants.violations
                << " invariant violations; first: "
                << (cell.outcome.invariants.samples.empty()
                        ? "<none recorded>"
                        : cell.outcome.invariants.samples[0])
                << "\n";
      failed = true;
    }
  }
  if (failed) std::exit(1);
  return result;
}

/// The six paper benchmarks as a grid under `config`.  `skip_lockless`
/// drops Topopt (Tables 4-6 and 8 have no row for it).
inline core::ExperimentGrid suite_grid(const core::MachineConfig& config,
                                       bool skip_lockless,
                                       std::uint64_t scale) {
  core::ExperimentGrid grid;
  grid.base = config;
  for (const auto& profile : workload::paper_profiles()) {
    if (skip_lockless && profile.locking.pairs_per_proc == 0) continue;
    grid.profiles.push_back(profile);
  }
  grid.scales = {scale};
  return grid;
}

struct SuiteRun {
  std::uint64_t scale = kDefaultScale;
  std::vector<trace::IdealProgramStats> ideal;
  std::vector<core::SimulationResult> results;
  double wall_ms = 0.0;
  std::uint32_t jobs_used = 0;
  // Populated only when the grid ran with tracing enabled, in cell order.
  std::vector<std::string> labels;
  std::vector<std::string> trace_json;
  std::vector<obs::LockTimeline> timelines;
};

/// Runs all six paper benchmarks under `config` on the parallel engine.
inline SuiteRun run_suite(core::MachineConfig config, bool skip_lockless,
                          std::uint32_t jobs = 0) {
  SuiteRun run;
  run.scale = scale_or_die(kDefaultScale);
  const core::GridResult grid =
      run_grid_or_die(suite_grid(config, skip_lockless, run.scale), jobs);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::CellResult& cell = grid.results[i];
    run.ideal.push_back(cell.outcome.ideal);
    run.results.push_back(cell.outcome.sim);
    if (config.trace.enabled) {
      run.labels.push_back(grid.cells[i].label());
      run.trace_json.push_back(cell.outcome.trace_json);
      run.timelines.push_back(cell.outcome.lock_timeline);
    }
  }
  run.wall_ms = grid.wall_ms;
  run.jobs_used = grid.jobs_used;
  return run;
}

/// Writes one Chrome trace file per traced cell, the cell label spliced into
/// `base` before its extension.  No-op (returns true) when tracing was off.
inline bool write_trace_files(const SuiteRun& run, const std::string& base) {
  for (std::size_t i = 0; i < run.trace_json.size(); ++i) {
    const std::string path = obs::trace_out_path(base, run.labels[i]);
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write " << path << "\n";
      return false;
    }
    out << run.trace_json[i];
    std::cout << "wrote " << path << "\n";
  }
  return true;
}

/// Slices a multi-scheme grid (e.g. Table 5's ttas-vs-queuing comparison run
/// as one grid) down to the cells using `kind`, in grid order.
inline std::vector<core::SimulationResult> results_for_scheme(
    const core::GridResult& grid, sync::SchemeKind kind) {
  std::vector<core::SimulationResult> out;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (grid.cells[i].config.lock_scheme == kind) {
      out.push_back(grid.results[i].outcome.sim);
    }
  }
  return out;
}

/// Same for a multi-consistency-model grid (Table 7).
inline std::vector<core::SimulationResult> results_for_consistency(
    const core::GridResult& grid, bus::ConsistencyModel model) {
  std::vector<core::SimulationResult> out;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (grid.cells[i].config.consistency == model) {
      out.push_back(grid.results[i].outcome.sim);
    }
  }
  return out;
}

inline void print_scale_banner(std::uint64_t scale) {
  std::cout << "[trace scale 1/" << scale
            << " of paper length; set SYNCPAT_SCALE=1 for full length]\n\n";
}

inline void print_engine_banner(std::uint64_t scale, double wall_ms,
                                std::uint32_t jobs_used) {
  std::cout << "[trace scale 1/" << scale
            << " of paper length; set SYNCPAT_SCALE=1 for full length | grid "
               "ran in "
            << wall_ms << " ms on " << jobs_used << " worker"
            << (jobs_used == 1 ? "" : "s") << "]\n\n";
}

inline void print_transfer_latencies(const std::vector<core::SimulationResult>& rs) {
  std::cout << "Average lock transfer time (release -> next acquire, cycles):\n";
  for (const auto& r : rs) {
    if (r.locks.transfers == 0) continue;
    std::cout << "  " << r.program << ": "
              << r.locks.transfer_cycles.mean() << "\n";
  }
  std::cout << "\n";
}

}  // namespace syncpat::bench

// Shared helpers for the table-reproduction benches.
//
// Every bench accepts the SYNCPAT_SCALE environment variable (default 8):
// traces are 1/scale the paper's length, and count-like columns are scaled
// back up for display.  SYNCPAT_SCALE=1 reproduces paper-length traces.
#pragma once

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "core/machine_config.hpp"
#include "core/results.hpp"
#include "trace/analyzer.hpp"
#include "workload/profiles.hpp"

namespace syncpat::bench {

inline constexpr std::uint64_t kDefaultScale = 8;

struct SuiteRun {
  std::uint64_t scale = kDefaultScale;
  std::vector<trace::IdealProgramStats> ideal;
  std::vector<core::SimulationResult> results;
};

/// Runs all six paper benchmarks under `config`.  `skip_lockless` drops
/// Topopt (Tables 4-6 and 8 have no row for it; Table 5 also omits it).
inline SuiteRun run_suite(core::MachineConfig config, bool skip_lockless) {
  SuiteRun run;
  run.scale = core::scale_from_env(kDefaultScale);
  for (const auto& profile : workload::paper_profiles()) {
    if (skip_lockless && profile.locking.pairs_per_proc == 0) continue;
    const core::ExperimentOutcome outcome =
        core::run_experiment(config, profile, run.scale);
    run.ideal.push_back(outcome.ideal);
    run.results.push_back(outcome.sim);
  }
  return run;
}

inline void print_scale_banner(std::uint64_t scale) {
  std::cout << "[trace scale 1/" << scale
            << " of paper length; set SYNCPAT_SCALE=1 for full length]\n\n";
}

inline void print_transfer_latencies(const std::vector<core::SimulationResult>& rs) {
  std::cout << "Average lock transfer time (release -> next acquire, cycles):\n";
  for (const auto& r : rs) {
    if (r.locks.transfers == 0) continue;
    std::cout << "  " << r.program << ": "
              << r.locks.transfer_cycles.mean() << "\n";
  }
  std::cout << "\n";
}

}  // namespace syncpat::bench

// Table 6: Lock Contention Statistics with Test&Test&Set locks.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kTtas;
  const bench::SuiteRun run =
      bench::run_suite(config, /*skip_lockless=*/true, opts.jobs);
  bench::print_engine_banner(run.scale, run.wall_ms, run.jobs_used);
  report::table_contention(6, run.results, run.scale).print(std::cout);
  bench::print_transfer_latencies(run.results);
  std::cout << "(paper: with many waiters a T&T&S transfer takes ~21-25 "
               "cycles)\n";
  return 0;
}

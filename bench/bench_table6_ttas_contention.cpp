// Table 6: Lock Contention Statistics with Test&Test&Set locks.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main() {
  using namespace syncpat;
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kTtas;
  const bench::SuiteRun run = bench::run_suite(config, /*skip_lockless=*/true);
  bench::print_scale_banner(run.scale);
  report::table_contention(6, run.results, run.scale).print(std::cout);
  bench::print_transfer_latencies(run.results);
  std::cout << "(paper: with many waiters a T&T&S transfer takes ~21-25 "
               "cycles)\n";
  return 0;
}

// Table 6: Lock Contention Statistics with Test&Test&Set locks.
#include <iostream>

#include "bench_common.hpp"
#include "report/lock_timeline.hpp"
#include "report/paper_tables.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kTtas;
  bench::apply_trace_options(opts, config);
  const bench::SuiteRun run =
      bench::run_suite(config, /*skip_lockless=*/true, opts.jobs);
  bench::print_engine_banner(run.scale, run.wall_ms, run.jobs_used);
  report::table_contention(6, run.results, run.scale).print(std::cout);
  bench::print_transfer_latencies(run.results);
  std::cout << "(paper: with many waiters a T&T&S transfer takes ~21-25 "
               "cycles)\n";
  if (!bench::write_trace_files(run, opts.trace_out)) return 1;
  for (std::size_t i = 0; i < run.timelines.size(); ++i) {
    if (run.labels[i].rfind("Grav", 0) != 0) continue;
    std::cout << "\n" << run.labels[i]
              << " lock hand-off timeline (§2.3 attribution):\n";
    report::lock_timeline_table(run.timelines[i]).print(std::cout);
  }
  return 0;
}

// Ablation: lock-scheme shootout on a synthetic high-contention kernel —
// the style of experiment in Anderson [3] and Graunke & Thakkar [12] that
// the paper contrasts its real-program study against.
//
// Every processor loops { acquire; tiny critical section; release; think },
// and we sweep the processor count for test-and-set, test-and-test-and-set,
// ticket and queuing locks, reporting lock hand-off latency and aggregate
// throughput (acquisitions per 1000 cycles).
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

syncpat::workload::BenchmarkProfile contended_profile(std::uint32_t procs) {
  syncpat::workload::BenchmarkProfile p;
  p.name = "shootout";
  p.num_procs = procs;
  p.refs_per_proc = 30'000;
  p.data_ref_fraction = 0.3;
  p.work_cycles_per_ref = 2.0;
  p.locking.pairs_per_proc = 600;
  p.locking.cs_work_cycles = 40;   // short critical sections, heavy arrivals
  p.locking.num_locks = 1;
  p.locking.dominant_weight = 1.0;
  p.seed = 0x51ac;
  return p;
}

}  // namespace

int main() {
  using namespace syncpat;
  std::cout << "Ablation: lock-scheme shootout under high contention\n\n";

  const sync::SchemeKind kinds[] = {
      sync::SchemeKind::kTas,    sync::SchemeKind::kTasBackoff,
      sync::SchemeKind::kTtas,   sync::SchemeKind::kTicket,
      sync::SchemeKind::kAnderson, sync::SchemeKind::kQueuing};

  report::Table latency("Lock transfer latency (cycles) vs processors");
  report::Table runtime("Run-time (1000s of cycles) vs processors");
  latency.columns({"Scheme", "p=2", "p=4", "p=8", "p=12"});
  runtime.columns({"Scheme", "p=2", "p=4", "p=8", "p=12"});

  for (const auto kind : kinds) {
    std::vector<std::string> lat_row{sync::scheme_kind_name(kind)};
    std::vector<std::string> rt_row{sync::scheme_kind_name(kind)};
    for (const std::uint32_t procs : {2u, 4u, 8u, 12u}) {
      core::MachineConfig config;
      config.lock_scheme = kind;
      const auto r =
          core::run_experiment(config, contended_profile(procs), 1).sim;
      lat_row.push_back(util::fixed(r.locks.transfer_cycles.mean(), 1));
      rt_row.push_back(util::with_commas(r.run_time / 1000));
    }
    latency.add_row(std::move(lat_row));
    runtime.add_row(std::move(rt_row));
  }
  latency.print(std::cout);
  runtime.print(std::cout);
  std::cout << "Expected shape (Anderson [3], Graunke-Thakkar [12]): T&S "
               "degrades sharply with\nprocessors, T&T&S grows to ~20+ cycle "
               "hand-offs, ticket halves the burst, and\nqueuing stays ~flat "
               "at a couple of cycles.\n";
  return 0;
}

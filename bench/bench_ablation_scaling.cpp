// Ablation: processor scaling (the paper's premise, §1).
//
// "Efficient synchronization is a key element in obtaining good speed-up
//  from parallel programs."  We scale the processor count for a lock-bound
// workload (the Grav model: one dominant scheduler lock) and a cache-bound
// one (the Topopt model: no locks) and report utilization and speedup —
// the lock-bound program saturates at its critical-section throughput while
// the lock-free one scales.
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

// Workload with per-processor work held constant (weak-scaling style): the
// run-time of a perfectly scaling program would stay flat.
syncpat::workload::BenchmarkProfile with_procs(
    syncpat::workload::BenchmarkProfile p, std::uint32_t procs) {
  p.num_procs = procs;
  return p;
}

}  // namespace

int main() {
  using namespace syncpat;
  const std::uint64_t scale = core::scale_from_env(bench::kDefaultScale * 2);
  bench::print_scale_banner(scale);
  std::cout << "Ablation: processor scaling, lock-bound vs cache-bound\n\n";

  for (const bool lock_bound : {true, false}) {
    workload::BenchmarkProfile base =
        lock_bound ? workload::grav_profile() : workload::topopt_profile();
    report::Table t(std::string(lock_bound ? "Grav model (dominant lock)"
                                           : "Topopt model (no locks)") +
                    ": per-processor work held constant");
    t.columns({"Procs", "run-time(k)", "Util%", "Waiters", "Bus%"});
    std::uint64_t runtime_p2 = 0;
    for (const std::uint32_t procs : {2u, 4u, 8u, 12u, 16u}) {
      core::MachineConfig config;
      const auto r =
          core::run_experiment(config, with_procs(base, procs), scale).sim;
      if (procs == 2) runtime_p2 = r.run_time;
      t.add_row({std::to_string(procs), util::with_commas(r.run_time / 1000),
                 util::percent(r.avg_utilization, 1),
                 util::fixed(r.locks.waiters_at_transfer.mean(), 2),
                 util::percent(r.bus_utilization, 1)});
    }
    t.note("run-time at p=2 was " + util::with_commas(runtime_p2 / 1000) +
           "k; flat run-time = perfect weak scaling");
    t.print(std::cout);
  }
  std::cout << "Expected shape: the lock-bound model's run-time grows with "
               "processors (the\ndominant lock serializes everything and "
               "waiters pile up) while the lock-free\nmodel stays nearly "
               "flat until the bus saturates.\n";
  return 0;
}

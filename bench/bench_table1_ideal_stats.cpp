// Table 1: Benchmark Ideal Statistics — work cycles and reference counts per
// processor, from the zero-contention analysis of the six workload models.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  const std::uint64_t scale = bench::scale_or_die();

  core::ExperimentGrid grid;
  grid.profiles = workload::paper_profiles();
  grid.scales = {scale};
  grid.ideal_only = true;
  const core::GridResult result = bench::run_grid_or_die(grid, opts.jobs);

  bench::print_engine_banner(scale, result.wall_ms, result.jobs_used);
  std::vector<trace::IdealProgramStats> stats;
  for (const core::CellResult& cell : result.results) {
    stats.push_back(cell.outcome.ideal);
  }
  report::table1_ideal(stats, scale).print(std::cout);
  return 0;
}

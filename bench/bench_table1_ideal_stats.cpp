// Table 1: Benchmark Ideal Statistics — work cycles and reference counts per
// processor, from the zero-contention analysis of the six workload models.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main() {
  using namespace syncpat;
  const std::uint64_t scale = core::scale_from_env(bench::kDefaultScale);
  bench::print_scale_banner(scale);

  std::vector<trace::IdealProgramStats> stats;
  for (const auto& profile : workload::paper_profiles()) {
    stats.push_back(core::run_ideal(profile, scale));
  }
  report::table1_ideal(stats, scale).print(std::cout);
  return 0;
}

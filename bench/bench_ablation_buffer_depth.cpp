// Ablation: cache-bus buffer depth (§4.2).
//
// "We found that there were almost never any uncompleted shared accesses
//  when a lock or unlock was done.  Therefore it is debatable whether
//  cache-bus buffers should be as deep as those we simulated."
//
// We sweep the buffer depth under weak ordering and report run-time and the
// fraction of syncs that found pending accesses.
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace syncpat;
  const std::uint64_t scale = core::scale_from_env(bench::kDefaultScale * 2);
  bench::print_scale_banner(scale);
  std::cout << "Ablation: cache-bus buffer depth under weak ordering\n\n";

  report::Table t("Run-time (1000s of cycles) and syncs-with-pending by depth");
  t.columns({"Program", "d=1", "d=2", "d=4", "d=8", "pend@4"});
  for (const auto& profile :
       {workload::grav_profile(), workload::pverify_profile(),
        workload::qsort_profile()}) {
    std::vector<std::string> row{profile.name};
    std::string pending;
    for (const std::uint32_t depth : {1u, 2u, 4u, 8u}) {
      core::MachineConfig config;
      config.consistency = bus::ConsistencyModel::kWeak;
      config.cache_bus_buffer_depth = depth;
      const auto r = core::run_experiment(config, profile, scale).sim;
      row.push_back(util::with_commas(r.run_time / 1000));
      if (depth == 4) {
        pending = util::with_commas(r.syncs_with_pending) + "/" +
                  util::with_commas(r.syncs);
      }
    }
    row.push_back(pending.empty() ? "n/a" : pending);
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "Expected shape: run-times barely move past depth 1-2, "
               "confirming the paper's\nsuspicion that the 4-deep buffer is "
               "over-provisioned for this machine.\n";
  return 0;
}

// Table 5: Benchmark Runtime Statistics with Test&Test&Set locks.  The
// paper's headline: Grav and Pdsa run ~8% longer than under queuing locks.
//
// Both schemes run as one grid so the engine can parallelize across the
// scheme axis as well as across benchmarks.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  const std::uint64_t scale = bench::scale_or_die();

  core::MachineConfig config;
  core::ExperimentGrid grid =
      bench::suite_grid(config, /*skip_lockless=*/true, scale);
  grid.schemes = {sync::SchemeKind::kTtas, sync::SchemeKind::kQueuing};
  const core::GridResult result = bench::run_grid_or_die(grid, opts.jobs);

  const std::vector<core::SimulationResult> ttas =
      bench::results_for_scheme(result, sync::SchemeKind::kTtas);
  const std::vector<core::SimulationResult> queuing =
      bench::results_for_scheme(result, sync::SchemeKind::kQueuing);

  bench::print_engine_banner(scale, result.wall_ms, result.jobs_used);
  report::table_runtime(5, ttas, scale).print(std::cout);

  std::cout << "Run-time increase vs queuing locks (paper: Grav +8.0%, "
               "Pdsa +8.1%, others ~0%):\n";
  for (std::size_t i = 0; i < ttas.size(); ++i) {
    const double pct = -ttas[i].runtime_change_pct(queuing[i]);
    std::cout << "  " << ttas[i].program << ": "
              << (pct >= 0 ? "+" : "") << pct << "%\n";
  }
  std::cout << "\nBus utilization, queuing -> T&T&S (paper: Grav doubles, "
               "Pdsa +40%):\n";
  for (std::size_t i = 0; i < ttas.size(); ++i) {
    std::cout << "  " << ttas[i].program << ": "
              << 100.0 * queuing[i].bus_utilization << "% -> "
              << 100.0 * ttas[i].bus_utilization << "%\n";
  }
  return 0;
}

// Table 5: Benchmark Runtime Statistics with Test&Test&Set locks.  The
// paper's headline: Grav and Pdsa run ~8% longer than under queuing locks.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main() {
  using namespace syncpat;
  core::MachineConfig config;

  config.lock_scheme = sync::SchemeKind::kTtas;
  const bench::SuiteRun ttas = bench::run_suite(config, /*skip_lockless=*/true);
  bench::print_scale_banner(ttas.scale);
  report::table_runtime(5, ttas.results, ttas.scale).print(std::cout);

  config.lock_scheme = sync::SchemeKind::kQueuing;
  const bench::SuiteRun queuing = bench::run_suite(config, /*skip_lockless=*/true);
  std::cout << "Run-time increase vs queuing locks (paper: Grav +8.0%, "
               "Pdsa +8.1%, others ~0%):\n";
  for (std::size_t i = 0; i < ttas.results.size(); ++i) {
    const double pct = -ttas.results[i].runtime_change_pct(queuing.results[i]);
    std::cout << "  " << ttas.results[i].program << ": "
              << (pct >= 0 ? "+" : "") << pct << "%\n";
  }
  std::cout << "\nBus utilization, queuing -> T&T&S (paper: Grav doubles, "
               "Pdsa +40%):\n";
  for (std::size_t i = 0; i < ttas.results.size(); ++i) {
    std::cout << "  " << ttas.results[i].program << ": "
              << 100.0 * queuing.results[i].bus_utilization << "% -> "
              << 100.0 * ttas.results[i].bus_utilization << "%\n";
  }
  return 0;
}

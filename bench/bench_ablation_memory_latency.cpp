// Ablation: memory latency (§4.2 / §5).
//
// "If the miss penalty were greater, e.g., because the memory latency is
//  much higher as in a multistage interconnection based system ... then the
//  benefit [of weak ordering] would be greater and might justify the cost."
//
// We sweep the memory access time and report the weak-ordering improvement
// over sequential consistency.
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace syncpat;
  const std::uint64_t scale = core::scale_from_env(bench::kDefaultScale * 2);
  bench::print_scale_banner(scale);
  std::cout << "Ablation: weak-ordering benefit vs memory latency\n\n";

  report::Table t("WO improvement over SC (%) by memory access cycles");
  t.columns({"Program", "m=3", "m=10", "m=30", "m=100"});
  for (const auto& profile :
       {workload::pverify_profile(), workload::fullconn_profile(),
        workload::topopt_profile()}) {
    std::vector<std::string> row{profile.name};
    for (const std::uint32_t mem : {3u, 10u, 30u, 100u}) {
      core::MachineConfig config;
      config.memory.access_cycles = mem;
      config.consistency = bus::ConsistencyModel::kSequential;
      const auto sc = core::run_experiment(config, profile, scale).sim;
      config.consistency = bus::ConsistencyModel::kWeak;
      const auto wo = core::run_experiment(config, profile, scale).sim;
      row.push_back(util::fixed(wo.runtime_change_pct(sc), 2));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout
      << "Finding: the absolute cycles saved by hiding write misses grow "
         "with the miss\npenalty, but so do the read-miss stalls weak "
         "ordering cannot hide, so the\n*relative* benefit stays small on "
         "read-dominated programs.  The paper's\nconjecture (§4.2) holds "
         "only when writes are a large share of misses — the\nwrite-through "
         "or release-consistency regime, not this write-back machine.\n";
  return 0;
}

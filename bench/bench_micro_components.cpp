// Component microbenchmarks (google-benchmark): throughput of the simulator
// building blocks, so performance regressions in the instrument itself are
// visible.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "core/experiment.hpp"
#include "core/machine_config.hpp"
#include "trace/mpt.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace syncpat;

void BM_RngNextU64(benchmark::State& state) {
  util::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RingBufferPushPop(benchmark::State& state) {
  util::RingBuffer<int> rb(4);
  for (auto _ : state) {
    rb.push_back(1);
    benchmark::DoNotOptimize(rb.pop_front());
  }
}
BENCHMARK(BM_RingBufferPushPop);

void BM_CacheAccessHit(benchmark::State& state) {
  cache::Cache c(cache::CacheConfig{});
  c.allocate(0x1000);
  c.fill(0x1000, cache::LineState::kExclusive);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(0x1000, cache::AccessClass::kRead));
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheSnoopMiss(benchmark::State& state) {
  cache::Cache c(cache::CacheConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.snoop(0x2000, true));
  }
}
BENCHMARK(BM_CacheSnoopMiss);

void BM_GeneratorEvents(benchmark::State& state) {
  const auto profile = workload::grav_profile().scaled(64);
  workload::ProfileTraceSource source(profile, 0);
  trace::Event e;
  std::uint64_t produced = 0;
  for (auto _ : state) {
    if (!source.next(e)) source.reset();
    benchmark::DoNotOptimize(e);
    ++produced;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(produced));
}
BENCHMARK(BM_GeneratorEvents);

void BM_MptCompactExpand(benchmark::State& state) {
  const auto profile = workload::qsort_profile().scaled(512);
  workload::ProfileTraceSource source(profile, 0);
  const trace::MptStream compacted = trace::compact(source);
  for (auto _ : state) {
    trace::MptExpander expander(compacted);
    trace::Event e;
    std::uint64_t n = 0;
    while (expander.next(e)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_MptCompactExpand);

// Whole-simulator throughput: simulated cycles per second on a small
// contended workload.
void BM_SimulatorCycles(benchmark::State& state) {
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    workload::BenchmarkProfile profile = workload::pdsa_profile().scaled(256);
    core::MachineConfig config;
    const auto outcome = core::run_experiment(config, profile, 1);
    cycles += outcome.sim.run_time;
    benchmark::DoNotOptimize(outcome.sim.run_time);
  }
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SimulatorCycles)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Table 4: Lock Contention Statistics with the queuing-lock implementation.
#include <iostream>

#include "bench_common.hpp"
#include "report/lock_timeline.hpp"
#include "report/paper_tables.hpp"
#include "report/per_lock.hpp"
#include "core/simulator.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kQueuing;
  bench::apply_trace_options(opts, config);
  const bench::SuiteRun run =
      bench::run_suite(config, /*skip_lockless=*/true, opts.jobs);
  bench::print_engine_banner(run.scale, run.wall_ms, run.jobs_used);
  report::table_contention(4, run.results, run.scale).print(std::cout);
  bench::print_transfer_latencies(run.results);
  std::cout << "(paper: queuing-lock transfers take ~1.2-1.5 cycles)\n\n";
  if (!bench::write_trace_files(run, opts.trace_out)) return 1;

  // The paper attributes Grav/Pdsa contention to the dominant Presto
  // scheduler lock (§2.3); show the per-lock breakdown for Grav.  This needs
  // the simulator instance itself (per-lock stats are not part of
  // SimulationResult), so it runs outside the engine.
  {
    workload::BenchmarkProfile grav = workload::grav_profile().scaled(run.scale);
    trace::ProgramTrace program = workload::make_program_trace(grav);
    core::MachineConfig grav_config;
    grav_config.num_procs = grav.num_procs;
    bench::apply_trace_options(opts, grav_config);
    core::Simulator sim(grav_config, program);
    obs::ChromeTraceSink chrome("Grav-breakdown", grav.num_procs);
    obs::LockTimelineSink timeline;
    if (obs::EventRecorder* rec = sim.recorder()) {
      rec->add_sink(&chrome);
      rec->add_sink(&timeline);
    }
    const core::SimulationResult res = sim.run();
    std::cout << "Grav breakdown (lock 0 is the scheduler lock, lock 1 the "
                 "nested thread-queue lock):\n";
    report::per_lock_table(sim.lock_stats(), 6).print(std::cout);
    if (sim.recorder() != nullptr) {
      const std::string path =
          obs::trace_out_path(opts.trace_out, "Grav-breakdown");
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return 1;
      }
      out << chrome.finish();
      std::cout << "wrote " << path << "\n\n";
      std::cout << "Grav lock hand-off timeline (§2.3 attribution):\n";
      report::lock_timeline_table(timeline.take(res.run_time)).print(std::cout);
    }
  }
  return 0;
}

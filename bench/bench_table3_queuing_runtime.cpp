// Table 3: Benchmark Runtime Statistics with the queuing-lock
// implementation under sequential consistency.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kQueuing;
  const bench::SuiteRun run =
      bench::run_suite(config, /*skip_lockless=*/false, opts.jobs);
  bench::print_engine_banner(run.scale, run.wall_ms, run.jobs_used);
  report::table_runtime(3, run.results, run.scale).print(std::cout);
  return 0;
}

// Table 3: Benchmark Runtime Statistics with the queuing-lock
// implementation under sequential consistency.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main() {
  using namespace syncpat;
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kQueuing;
  const bench::SuiteRun run = bench::run_suite(config, /*skip_lockless=*/false);
  bench::print_scale_banner(run.scale);
  report::table_runtime(3, run.results, run.scale).print(std::cout);
  return 0;
}

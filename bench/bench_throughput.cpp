// Tracked simulator-throughput baseline: simulated cycles per wall-clock
// second for the Grav / Pverify / Qsort / Pdsa profiles under sequential and
// weak consistency, with the discrete-event engine against the legacy
// per-cycle tick engine.
//
// Emits BENCH_simulator.json (path via argv[1], default ./BENCH_simulator.json)
// so the perf trajectory is tracked in-repo.  Wall time covers Simulator::run()
// only (trace synthesis is timed separately and reported once per profile);
// each cell takes the best of SYNCPAT_BENCH_REPS repetitions (default 3) to
// shave scheduler noise.  The bench also cross-checks that both engines finish
// on the same cycle — a cheap tripwire for the byte-identity contract that
// tests/test_fast_forward.cpp verifies in full.
//
// The tick rows run with the quiescence run-ahead on (its best configuration),
// so speedup_des_vs_tick understates nothing: it is DES against the fastest
// legacy mode.
//
// Honest numbers (2026-08, SYNCPAT_SCALE=8): the four paper profiles are
// event-dense — 2-4 work cycles per reference and a saturated bus put a due
// event on 82-99% of cycles, so the DES engine steps nearly every cycle and
// lands at parity with the tuned tick engine (0.9-1.05x) rather than ahead
// of it; simulated throughput stays at the PR6 baseline (~2-4.5M cyc/s).
// The engine's structural win needs sparse event streams: on the
// Grav-coarse variants (work_cycles_per_ref 100/400) it advances whole
// inter-event spans in O(1) bus/memory bulk updates and reaches 35-150M
// cyc/s, and the per-event (rather than per-processor-cycle) cost model is
// what makes the planned 64-1024-processor scaling studies tractable.  The
// des_stepped_cycles / des_spans columns record the event density behind
// each number.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "obs/self_profile.hpp"
#include "trace/source.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace syncpat;

struct Cell {
  std::string program;
  const char* consistency = "";
  core::EngineKind engine = core::EngineKind::kDes;
  std::uint64_t run_cycles = 0;
  double best_wall_ms = 0.0;
  double cycles_per_sec = 0.0;
  core::FastForwardStats ff;    // populated on tick rows
  core::DesStats des;           // populated on des rows
  // Engine phase breakdown from one extra self-profiled rep (kept out of the
  // timed reps so timestamp reads never pollute best_wall_ms).
  obs::SelfProfiler::Snapshot prof;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t reps_from_env() {
  // Strict like SYNCPAT_SCALE / SYNCPAT_JOBS: a malformed value is an error,
  // not a silent fall-through to the default.
  try {
    return static_cast<std::uint32_t>(
        core::positive_u64_from_env("SYNCPAT_BENCH_REPS", 3));
  } catch (const std::invalid_argument& err) {
    std::cerr << "error: " << err.what() << "\n";
    std::exit(2);
  }
}

Cell run_cell(const workload::BenchmarkProfile& scaled,
              trace::ProgramTrace& program, bus::ConsistencyModel model,
              core::EngineKind engine, std::uint32_t reps) {
  core::MachineConfig cfg;
  cfg.num_procs = scaled.num_procs;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  cfg.consistency = model;
  cfg.engine = engine;
  // Tick rows get the quiescence run-ahead: DES is measured against the
  // legacy engine's best configuration, not a strawman.
  cfg.fast_forward = engine == core::EngineKind::kTick;

  Cell cell;
  cell.program = scaled.name;
  cell.consistency = bus::consistency_name(model);
  cell.engine = engine;
  cell.best_wall_ms = 1e300;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    program.reset_all();
    core::Simulator sim(cfg, program);
    const double t0 = now_ms();
    const core::SimulationResult res = sim.run();
    const double wall = now_ms() - t0;
    if (wall < cell.best_wall_ms) cell.best_wall_ms = wall;
    cell.run_cycles = res.run_time;
    cell.ff = sim.fast_forward_stats();
    cell.des = sim.des_stats();
  }
  cell.cycles_per_sec =
      static_cast<double>(cell.run_cycles) / (cell.best_wall_ms / 1000.0);
  // One extra rep with the self-profiler attached for the phase breakdown.
  // Attaching must not change the simulation: assert the final cycle matches.
  {
    program.reset_all();
    core::Simulator sim(cfg, program);
    obs::SelfProfiler profiler;
    sim.set_self_profiler(&profiler);
    const core::SimulationResult res = sim.run();
    if (res.run_time != cell.run_cycles) {
      std::cerr << "FATAL: self-profiler changed " << cell.program << "/"
                << cell.consistency << " run time: " << res.run_time << " vs "
                << cell.run_cycles << "\n";
      std::exit(1);
    }
    cell.prof = profiler.snapshot();
  }
  return cell;
}

void emit_json(std::ostream& out, std::uint64_t scale, std::uint32_t reps,
               const std::vector<Cell>& cells) {
  out << "{\n"
      << "  \"benchmark\": \"simulator_throughput\",\n"
      << "  \"scheme\": \"ttas\",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"wall_time\": \"best-of-reps, Simulator::run() only\",\n"
      << "  \"tick_rows\": \"legacy engine with quiescence run-ahead on\",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "    {\"program\": \"%s\", \"consistency\": \"%s\", "
        "\"engine\": \"%s\", \"run_cycles\": %llu, "
        "\"best_wall_ms\": %.1f, \"cycles_per_sec\": %.4g, "
        "\"des_stepped_cycles\": %llu, \"des_spans\": %llu, "
        "\"des_span_cycles\": %llu, "
        "\"ff_jumps\": %llu, \"ff_run_ahead_cycles\": %llu, "
        "\"ff_skipped_cycles\": %llu, \"ff_probe_pauses\": %llu, ",
        c.program.c_str(), c.consistency, core::engine_name(c.engine),
        static_cast<unsigned long long>(c.run_cycles), c.best_wall_ms,
        c.cycles_per_sec,
        static_cast<unsigned long long>(c.des.stepped_cycles),
        static_cast<unsigned long long>(c.des.spans),
        static_cast<unsigned long long>(c.des.span_cycles),
        static_cast<unsigned long long>(c.ff.jumps),
        static_cast<unsigned long long>(c.ff.run_ahead_cycles),
        static_cast<unsigned long long>(c.ff.skipped_cycles),
        static_cast<unsigned long long>(c.ff.probe_pauses));
    out << buf;
    // Phase breakdown from the extra self-profiled rep (its own wall time,
    // not best_wall_ms; the profiled rep is never the timed one).
    out << "\"phases_ms\": {";
    for (std::size_t p = 0; p < obs::SelfProfiler::kNumPhases; ++p) {
      std::snprintf(buf, sizeof buf, "%s\"%s\": %.2f", p > 0 ? ", " : "",
                    obs::SelfProfiler::phase_name(
                        static_cast<obs::SelfProfiler::Phase>(p)),
                    static_cast<double>(c.prof.ns[p]) / 1e6);
      out << buf;
    }
    out << "}}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup_des_vs_tick\": {\n";
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const Cell& des = cells[i];
    const Cell& tick = cells[i + 1];
    char buf[160];
    std::snprintf(buf, sizeof buf, "    \"%s/%s\": %.2f%s\n",
                  des.program.c_str(), des.consistency,
                  des.cycles_per_sec / tick.cycles_per_sec,
                  i + 2 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  },\n";
}

/// Metrics-layer overhead guard: Grav/sequential with the registry off vs on.
/// The off side is the product default — its cost relative to the pre-PR
/// binary is the "disabled path is one branch per site" claim (compare
/// BENCH_simulator.json across commits); the on side has a 25% tripwire so
/// the enabled path can't quietly grow a hot-loop regression.  Either way the
/// simulation itself must not change: run_cycles are asserted equal.
double bench_metrics_overhead(std::uint64_t scale, std::uint32_t reps,
                              std::ostream& out) {
  workload::BenchmarkProfile profile;
  for (const auto& p : workload::paper_profiles()) {
    if (p.name == "Grav") profile = p;
  }
  const workload::BenchmarkProfile scaled = profile.scaled(scale);
  trace::ProgramTrace program = workload::make_program_trace(scaled);

  core::MachineConfig cfg;
  cfg.num_procs = scaled.num_procs;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  cfg.consistency = bus::ConsistencyModel::kSequential;

  double best_off = 1e300;
  double best_on = 1e300;
  std::uint64_t cycles_off = 0;
  std::uint64_t cycles_on = 0;
  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    for (const bool enabled : {false, true}) {
      cfg.metrics.enabled = enabled;
      program.reset_all();
      core::Simulator sim(cfg, program);
      const double t0 = now_ms();
      const core::SimulationResult res = sim.run();
      const double wall = now_ms() - t0;
      if (enabled) {
        if (wall < best_on) best_on = wall;
        cycles_on = res.run_time;
      } else {
        if (wall < best_off) best_off = wall;
        cycles_off = res.run_time;
      }
    }
  }
  if (cycles_on != cycles_off) {
    std::cerr << "FATAL: enabling metrics changed Grav/sequential run time: "
              << cycles_on << " vs " << cycles_off << "\n";
    std::exit(1);
  }
  const double overhead = best_on / best_off - 1.0;
  std::cout << "metrics overhead (Grav/sequential): off " << best_off
            << " ms, on " << best_on << " ms (" << overhead * 100.0 << "%)\n";
  if (overhead > 0.25) {
    std::cerr << "FATAL: metrics-enabled overhead " << overhead * 100.0
              << "% exceeds the 25% tripwire\n";
    std::exit(1);
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  \"metrics_overhead\": {\"program\": \"Grav/sequential\", "
                "\"off_ms\": %.1f, \"on_ms\": %.1f, \"overhead\": %.4f}\n",
                best_off, best_on, overhead);
  out << buf;
  return overhead;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = syncpat::bench::scale_or_die();
  const std::uint32_t reps = reps_from_env();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_simulator.json";

  // The four paper profiles, plus coarse-grained Grav variants (more work
  // cycles between references — the regime of coarse-grained-locking sweeps)
  // where quiet stretches dominate and span jumping pays off outright.  The
  // coarse variants run at 1/4 trace length to bound bench time.
  struct Spec {
    const char* base;
    const char* label;
    double work_cycles_per_ref;  // 0 = profile default
    std::uint64_t scale_mult;
  };
  const Spec kSpecs[] = {
      {"Grav", "Grav", 0, 1},
      {"Pverify", "Pverify", 0, 1},
      {"Qsort", "Qsort", 0, 1},
      {"Pdsa", "Pdsa", 0, 1},
      {"Grav", "Grav-coarse100", 100, 4},
      {"Grav", "Grav-coarse400", 400, 4},
  };
  const bus::ConsistencyModel kModels[] = {bus::ConsistencyModel::kSequential,
                                           bus::ConsistencyModel::kWeak};

  std::vector<Cell> cells;
  for (const Spec& spec : kSpecs) {
    const char* name = spec.label;
    workload::BenchmarkProfile profile;
    for (const auto& p : workload::paper_profiles()) {
      if (p.name == spec.base) profile = p;
    }
    if (spec.work_cycles_per_ref > 0) {
      profile.work_cycles_per_ref = spec.work_cycles_per_ref;
    }
    profile.name = spec.label;
    const workload::BenchmarkProfile scaled =
        profile.scaled(scale * spec.scale_mult);
    const double tg0 = now_ms();
    trace::ProgramTrace program = workload::make_program_trace(scaled);
    std::cout << name << ": trace synthesis " << now_ms() - tg0 << " ms\n";
    for (const bus::ConsistencyModel model : kModels) {
      const Cell des =
          run_cell(scaled, program, model, core::EngineKind::kDes, reps);
      const Cell tick =
          run_cell(scaled, program, model, core::EngineKind::kTick, reps);
      if (des.run_cycles != tick.run_cycles) {
        std::cerr << "FATAL: engine choice changed " << name << "/"
                  << des.consistency << " run time: " << des.run_cycles
                  << " vs " << tick.run_cycles << "\n";
        return 1;
      }
      std::cout << "  " << name << "/" << des.consistency << ": des "
                << des.cycles_per_sec << " cyc/s, tick " << tick.cycles_per_sec
                << " cyc/s (" << des.cycles_per_sec / tick.cycles_per_sec
                << "x)\n";
      cells.push_back(des);
      cells.push_back(tick);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(out, scale, reps, cells);
  bench_metrics_overhead(scale, reps, out);
  out << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

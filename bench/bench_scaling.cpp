// Scaling study: synchronization patterns from 16 to 1024 processors.
//
// The paper measures its six programs at P <= 16 (the Symmetry's size); the
// natural follow-up question is how each lock scheme's contention signature
// extrapolates when the machine outgrows the bus.  This bench runs one
// deliberately contended, non-partitioned workload — per-processor work held
// constant (weak scaling), two shared locks with a 90% dominant one, one
// closing barrier — across every lock scheme at P in {16, 64, 256, 1024} on
// the discrete-event engine, and emits waiters-at-transfer and
// bus-utilization curves against P.
//
// Emits BENCH_scaling.json (path via argv[1], default ./BENCH_scaling.json)
// so the curves are tracked in-repo.  `--smoke` switches to a seconds-long
// P in {4, 16, 64} sweep with a shorter trace — the tier-1 `scaling-smoke`
// ctest entry, which guards the large-P machinery (interleaved private
// segments, widened Anderson rings, clamped cold slices) end to end without
// the full study's cost.
//
// The workload is non-partitioned by design: partitioned profiles give every
// processor its own lock set, and at P = 1024 that many Anderson slot rings
// would (loudly) overflow the wide-ring address slice.  A handful of genuinely
// shared locks is both the honest contention study and the layout that scales.
//
// Shape of the committed JSON: with two genuinely shared locks the bus
// saturates for every scheme once P reaches 256 (weak scaling over a shared
// bus cannot stay flat), so the discriminating signals are waiters at
// transfer and run-time inflation.  The queue-based schemes (queuing,
// queuing-exact, anderson, ticket) hold mean waiters near 1 all the way to
// P = 1024; the spinning schemes (tas, ttas, tas-backoff) climb to 3.7-4.5
// waiters per transfer, and plain tas pays ~8% extra run-time at P = 1024
// from its forced read-exclusive retries — the paper's §4 argument,
// extrapolated two orders of magnitude past the Symmetry.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/machine_config.hpp"
#include "core/simulator.hpp"
#include "sync/scheme_factory.hpp"
#include "trace/source.hpp"
#include "workload/generator.hpp"
#include "workload/profile.hpp"

namespace {

using namespace syncpat;

struct Point {
  std::uint32_t procs = 0;
  std::uint64_t run_time = 0;
  std::uint64_t acquisitions = 0;
  double waiters_mean = 0.0;
  double waiters_max = 0.0;
  double transfer_mean = 0.0;
  double bus_utilization = 0.0;
  double avg_utilization = 0.0;
  std::uint64_t bus_txns = 0;
  double wall_ms = 0.0;
};

struct Curve {
  const char* scheme = "";
  std::vector<Point> points;
};

/// The contended weak-scaling workload: per-processor work is constant, so a
/// perfectly scaling machine would hold run-time flat as P grows.
workload::BenchmarkProfile scaling_profile(std::uint32_t procs,
                                           std::uint64_t refs) {
  workload::BenchmarkProfile p;
  p.name = "ScaleStudy";
  p.num_procs = procs;
  p.refs_per_proc = refs;
  p.data_ref_fraction = 0.35;
  p.work_cycles_per_ref = 3.0;
  p.locking.pairs_per_proc = 2;
  p.locking.cs_work_cycles = 30.0;
  p.locking.num_locks = 2;        // genuinely shared: never partitioned
  p.locking.dominant_weight = 0.9;
  p.locking.partitioned = false;
  p.locking.cs_region_bias = 0.8;
  p.locking.barriers_per_proc = 1;
  p.seed = 0x5ca1e;
  return p;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Point run_point(sync::SchemeKind scheme, std::uint32_t procs,
                std::uint64_t refs) {
  const workload::BenchmarkProfile profile = scaling_profile(procs, refs);
  trace::ProgramTrace program = workload::make_program_trace(profile);
  core::MachineConfig cfg;
  cfg.num_procs = procs;
  cfg.lock_scheme = scheme;
  cfg.engine = core::EngineKind::kDes;

  core::Simulator sim(cfg, program);
  const double t0 = now_ms();
  const core::SimulationResult r = sim.run();
  Point pt;
  pt.wall_ms = now_ms() - t0;
  pt.procs = procs;
  pt.run_time = r.run_time;
  pt.acquisitions = r.locks.acquisitions;
  pt.waiters_mean = r.locks.waiters_at_transfer.mean();
  pt.waiters_max = r.locks.waiters_at_transfer.max();
  pt.transfer_mean = r.locks.transfer_cycles.mean();
  pt.bus_utilization = r.bus_utilization;
  pt.avg_utilization = r.avg_utilization;
  pt.bus_txns = r.traffic.total();
  return pt;
}

void emit_json(std::ostream& out, bool smoke,
               const std::vector<std::uint32_t>& procs, std::uint64_t refs,
               const std::vector<Curve>& curves) {
  out << "{\n"
      << "  \"benchmark\": \"scaling_curves\",\n"
      << "  \"engine\": \"des\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"workload\": {\"refs_per_proc\": " << refs
      << ", \"lock_pairs_per_proc\": 2, \"num_locks\": 2, "
         "\"dominant_weight\": 0.9, \"partitioned\": false, "
         "\"barriers_per_proc\": 1, \"scaling\": \"weak\"},\n"
      << "  \"procs\": [";
  for (std::size_t i = 0; i < procs.size(); ++i) {
    out << procs[i] << (i + 1 < procs.size() ? ", " : "");
  }
  out << "],\n  \"curves\": [\n";
  for (std::size_t c = 0; c < curves.size(); ++c) {
    out << "    {\"scheme\": \"" << curves[c].scheme << "\", \"points\": [\n";
    for (std::size_t i = 0; i < curves[c].points.size(); ++i) {
      const Point& p = curves[c].points[i];
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "      {\"procs\": %u, \"run_time\": %llu, "
          "\"acquisitions\": %llu, \"waiters_at_transfer_mean\": %.4f, "
          "\"waiters_at_transfer_max\": %.0f, \"transfer_cycles_mean\": %.2f, "
          "\"bus_utilization\": %.4f, \"proc_utilization\": %.4f, "
          "\"bus_txns\": %llu, \"wall_ms\": %.1f}%s\n",
          p.procs, static_cast<unsigned long long>(p.run_time),
          static_cast<unsigned long long>(p.acquisitions), p.waiters_mean,
          p.waiters_max, p.transfer_mean, p.bus_utilization,
          p.avg_utilization, static_cast<unsigned long long>(p.bus_txns),
          p.wall_ms, i + 1 < curves[c].points.size() ? "," : "");
      out << buf;
    }
    out << "    ]}" << (c + 1 < curves.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scaling.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::vector<std::uint32_t> procs =
      smoke ? std::vector<std::uint32_t>{4, 16, 64}
            : std::vector<std::uint32_t>{16, 64, 256, 1024};
  const std::uint64_t refs = smoke ? 150 : 300;

  std::vector<Curve> curves;
  for (const sync::SchemeKind scheme : sync::all_scheme_kinds()) {
    Curve curve;
    curve.scheme = sync::scheme_kind_name(scheme);
    for (const std::uint32_t p : procs) {
      const Point pt = run_point(scheme, p, refs);
      std::fprintf(stderr, "%-14s P=%-5u run_time=%-12llu waiters=%-8.2f "
                   "bus=%.1f%% (%.0f ms)\n",
                   curve.scheme, p,
                   static_cast<unsigned long long>(pt.run_time),
                   pt.waiters_mean, pt.bus_utilization * 100.0, pt.wall_ms);
      curve.points.push_back(pt);
    }
    curves.push_back(std::move(curve));
  }

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(out, smoke, procs, refs, curves);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

// Table 8: Weak Ordering Lock Contention Statistics — locking patterns are
// essentially unchanged by the memory model.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kQueuing;
  config.consistency = bus::ConsistencyModel::kWeak;
  const bench::SuiteRun run =
      bench::run_suite(config, /*skip_lockless=*/true, opts.jobs);
  bench::print_engine_banner(run.scale, run.wall_ms, run.jobs_used);
  report::table_contention(8, run.results, run.scale).print(std::cout);
  bench::print_transfer_latencies(run.results);
  return 0;
}

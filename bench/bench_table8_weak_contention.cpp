// Table 8: Weak Ordering Lock Contention Statistics — locking patterns are
// essentially unchanged by the memory model.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main() {
  using namespace syncpat;
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kQueuing;
  config.consistency = bus::ConsistencyModel::kWeak;
  const bench::SuiteRun run = bench::run_suite(config, /*skip_lockless=*/true);
  bench::print_scale_banner(run.scale);
  report::table_contention(8, run.results, run.scale).print(std::cout);
  bench::print_transfer_latencies(run.results);
  return 0;
}

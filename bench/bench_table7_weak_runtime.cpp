// Table 7: Weak Ordering Runtime Statistics.  The paper's finding: on this
// shared-bus machine weak ordering buys < 1% because write-hit ratios are
// 90-99% and there is almost nothing to bypass.
//
// Both memory models run as one grid so the engine can parallelize across
// the consistency axis as well as across benchmarks.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;
  const bench::BenchOptions opts = bench::parse_bench_args(argc, argv);
  const std::uint64_t scale = bench::scale_or_die();

  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kQueuing;
  core::ExperimentGrid grid =
      bench::suite_grid(config, /*skip_lockless=*/false, scale);
  grid.consistency_models = {bus::ConsistencyModel::kSequential,
                             bus::ConsistencyModel::kWeak};
  const core::GridResult result = bench::run_grid_or_die(grid, opts.jobs);

  const std::vector<core::SimulationResult> sc =
      bench::results_for_consistency(result, bus::ConsistencyModel::kSequential);
  const std::vector<core::SimulationResult> weak =
      bench::results_for_consistency(result, bus::ConsistencyModel::kWeak);

  bench::print_engine_banner(scale, result.wall_ms, result.jobs_used);
  report::table7_weak(weak, sc, scale).print(std::cout);

  std::cout << "Syncs that found unfinished buffered accesses (paper: \"almost"
               " never\"):\n";
  for (const auto& r : weak) {
    if (r.syncs == 0) continue;
    std::cout << "  " << r.program << ": " << r.syncs_with_pending << " of "
              << r.syncs << " syncs\n";
  }
  return 0;
}

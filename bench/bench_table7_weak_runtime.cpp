// Table 7: Weak Ordering Runtime Statistics.  The paper's finding: on this
// shared-bus machine weak ordering buys < 1% because write-hit ratios are
// 90-99% and there is almost nothing to bypass.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main() {
  using namespace syncpat;
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kQueuing;

  config.consistency = bus::ConsistencyModel::kSequential;
  const bench::SuiteRun sc = bench::run_suite(config, /*skip_lockless=*/false);

  config.consistency = bus::ConsistencyModel::kWeak;
  const bench::SuiteRun weak = bench::run_suite(config, /*skip_lockless=*/false);

  bench::print_scale_banner(weak.scale);
  report::table7_weak(weak.results, sc.results, weak.scale).print(std::cout);

  std::cout << "Syncs that found unfinished buffered accesses (paper: \"almost"
               " never\"):\n";
  for (const auto& r : weak.results) {
    if (r.syncs == 0) continue;
    std::cout << "  " << r.program << ": " << r.syncs_with_pending << " of "
              << r.syncs << " syncs\n";
  }
  return 0;
}

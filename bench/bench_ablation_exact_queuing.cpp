// Ablation: the paper's stated future work (§2.4).
//
// "In an exact queuing lock implementation, there would be an additional
//  memory access in the phase when a processor gets on the queue ... and
//  there would be an additional memory access after the release of the lock
//  ... We believe that the two missing bus transactions have no impact on
//  the validity of our results.  We are currently modifying our simulator to
//  verify this assumption."
//
// This bench performs that verification: the two high-contention programs
// run under the approximate scheme and under the exact Graunke-Thakkar
// variant, and the run-time difference is reported.
#include <iostream>

#include "bench_common.hpp"
#include "util/format.hpp"

int main() {
  using namespace syncpat;
  const std::uint64_t scale = core::scale_from_env(bench::kDefaultScale);
  bench::print_scale_banner(scale);

  std::cout << "Ablation: approximate vs exact queuing lock (the paper's "
               "§2.4 verification)\n\n";
  for (const auto& profile :
       {workload::grav_profile(), workload::pdsa_profile(),
        workload::fullconn_profile()}) {
    core::MachineConfig config;
    config.lock_scheme = sync::SchemeKind::kQueuing;
    const auto approx = core::run_experiment(config, profile, scale).sim;
    config.lock_scheme = sync::SchemeKind::kQueuingExact;
    const auto exact = core::run_experiment(config, profile, scale).sim;

    const double delta = -exact.runtime_change_pct(approx);
    std::cout << profile.name << ":\n"
              << "  run-time approx  : " << util::with_commas(approx.run_time)
              << "  (util " << util::percent(approx.avg_utilization, 1)
              << "%, transfer " << util::fixed(approx.locks.transfer_cycles.mean(), 1)
              << " cy)\n"
              << "  run-time exact   : " << util::with_commas(exact.run_time)
              << "  (util " << util::percent(exact.avg_utilization, 1)
              << "%, transfer " << util::fixed(exact.locks.transfer_cycles.mean(), 1)
              << " cy)\n"
              << "  exact is " << util::fixed(delta, 2)
              << "% slower; waiters " << util::fixed(approx.locks.waiters_at_transfer.mean(), 2)
              << " -> " << util::fixed(exact.locks.waiters_at_transfer.mean(), 2)
              << "\n\n";
  }
  std::cout << "Conclusion check: the extra transactions change run-time by a"
               " few percent at most\nand do not reorder any of the paper's "
               "findings (lock-acquisition count remains\nthe contention "
               "predictor; queuing remains far cheaper than T&T&S).\n";
  return 0;
}

// Figure 1: the model architecture.  The paper's only figure is the machine
// diagram; this bench prints the simulated configuration and verifies the
// headline timing contract (an uncontended miss costs six stall cycles).
#include <iostream>

#include "core/machine_config.hpp"
#include "core/simulator.hpp"
#include "trace/address_map.hpp"
#include "trace/source.hpp"

int main() {
  using namespace syncpat;
  core::MachineConfig config;
  std::cout << "Figure 1 reproduction: simulated machine configuration\n\n"
            << config.describe() << "\n";

  // Demonstrate the 6-cycle miss with a two-event trace on one processor.
  trace::ProgramTrace program;
  program.name = "figure1-timing";
  std::vector<trace::Event> events = {
      {trace::AddressMap::shared_addr(0), 1, trace::Op::kLoad},
      {trace::AddressMap::shared_addr(0), 1, trace::Op::kLoad},
  };
  program.per_proc.push_back(
      std::make_unique<trace::VectorTraceSource>(events));
  config.num_procs = 1;
  core::Simulator sim(config, program);
  const core::SimulationResult r = sim.run();
  std::cout << "single cold read miss: " << r.per_proc[0].stall_cache
            << " stall cycles (paper: 6)\n";
  return r.per_proc[0].stall_cache == 6 ? 0 : 1;
}

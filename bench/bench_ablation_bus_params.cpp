// Ablation: bus and memory parameter sensitivity (§2.1).
//
// "This performance evaluation tool allows us ... to assess the effect of
//  changes in system parameters (e.g., bus and memory cycle times).  Since
//  the latter parameters did not modify the general trends of our results,
//  we will not consider them further."
//
// We vary the bus width and memory cycle time on the two contention-bound
// programs and check that the *trend* — queuing locks beating T&T&S — holds
// everywhere.
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace syncpat;
  const std::uint64_t scale = core::scale_from_env(bench::kDefaultScale * 2);
  bench::print_scale_banner(scale);
  std::cout << "Ablation: T&T&S slowdown vs queuing across machine "
               "parameters\n\n";

  report::Table t("T&T&S run-time increase over queuing (%)");
  t.columns({"Config", "Grav", "Pdsa"});
  struct Variant {
    const char* label;
    std::uint32_t bus_bytes;
    std::uint32_t mem_cycles;
  };
  const Variant variants[] = {
      {"bus 8B, mem 3cy (paper)", 8, 3},
      {"bus 4B, mem 3cy", 4, 3},
      {"bus 16B, mem 3cy", 16, 3},
      {"bus 8B, mem 6cy", 8, 6},
      {"bus 8B, mem 12cy", 8, 12},
  };
  for (const auto& v : variants) {
    std::vector<std::string> row{v.label};
    for (const auto& profile :
         {workload::grav_profile(), workload::pdsa_profile()}) {
      core::MachineConfig config;
      config.bus_bytes = v.bus_bytes;
      config.memory.access_cycles = v.mem_cycles;
      config.lock_scheme = sync::SchemeKind::kQueuing;
      const auto q = core::run_experiment(config, profile, scale).sim;
      config.lock_scheme = sync::SchemeKind::kTtas;
      const auto tt = core::run_experiment(config, profile, scale).sim;
      row.push_back(util::fixed(-tt.runtime_change_pct(q), 2));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "Expected shape: the slowdown varies in magnitude but stays "
               "positive everywhere —\nthe paper's general trends are "
               "insensitive to these parameters.\n";
  return 0;
}

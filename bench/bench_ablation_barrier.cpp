// Ablation: barrier vs lock waiting (paper §3.1).
//
// "For Grav and Pdsa this number [waiters at transfer] is slightly over
//  half the number of processors.  This is extremely heavy contention
//  since, by comparison, a barrier would yield a number less than half the
//  number of processors."
//
// We add barrier phases to a lock-free workload and measure the average
// number of processors already waiting when one arrives: for P processors
// the expectation is (P-1)/2 < P/2, which this bench verifies alongside the
// Grav lock waiters it contrasts with.
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

syncpat::workload::BenchmarkProfile barrier_profile(std::uint32_t procs) {
  syncpat::workload::BenchmarkProfile p;
  p.name = "barrier-phases";
  p.num_procs = procs;
  p.refs_per_proc = 40'000;
  p.data_ref_fraction = 0.35;
  p.work_cycles_per_ref = 2.4;
  p.locking.barriers_per_proc = 20;
  p.seed = 0xbaa5;
  return p;
}

}  // namespace

int main() {
  using namespace syncpat;
  std::cout << "Ablation: barrier waiting vs lock waiting (§3.1 remark)\n\n";

  report::Table t("Average processors already waiting at a barrier arrival");
  t.columns({"Processors", "Waiters@arrival", "(P-1)/2", "Avg wait (cy)"});
  for (const std::uint32_t procs : {4u, 8u, 10u, 12u}) {
    core::MachineConfig config;
    const auto r = core::run_experiment(config, barrier_profile(procs), 1).sim;
    t.add_row({std::to_string(procs),
               util::fixed(r.barrier_waiters_at_arrival.mean(), 2),
               util::fixed((procs - 1) / 2.0, 2),
               util::fixed(r.barrier_wait_cycles.mean(), 0)});
  }
  t.print(std::cout);

  core::MachineConfig config;
  const auto grav =
      core::run_experiment(config, workload::grav_profile(),
                           core::scale_from_env(bench::kDefaultScale * 2))
          .sim;
  std::cout << "For contrast, Grav's queuing-lock waiters at transfer: "
            << util::fixed(grav.locks.waiters_at_transfer.mean(), 2) << " of "
            << grav.num_procs << " processors — *more* than half the machine, "
            << "versus the barrier's (P-1)/2.\n";
  return 0;
}

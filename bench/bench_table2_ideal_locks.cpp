// Table 2: Benchmark Ideal Lock Statistics — lock pairs, nested pairs and
// ideal hold times from the zero-contention analysis.
#include <iostream>

#include "bench_common.hpp"
#include "report/paper_tables.hpp"

int main() {
  using namespace syncpat;
  const std::uint64_t scale = core::scale_from_env(bench::kDefaultScale);
  bench::print_scale_banner(scale);

  std::vector<trace::IdealProgramStats> stats;
  for (const auto& profile : workload::paper_profiles()) {
    stats.push_back(core::run_ideal(profile, scale));
  }
  report::table2_ideal_locks(stats, scale).print(std::cout);
  return 0;
}

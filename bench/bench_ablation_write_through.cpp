// Ablation: write-through caches (paper §4.2).
//
// "If ... the number of writes to memory increased (as in the case of a
//  write-through cache), then the benefit [of weak ordering] would be
//  greater and might justify the cost."
//
// With write-through caches every store is a bus+memory write that stalls a
// sequentially consistent processor; weak ordering buffers them.  This bench
// measures the paper's conjecture directly.
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace syncpat;
  const std::uint64_t scale = core::scale_from_env(bench::kDefaultScale * 2);
  bench::print_scale_banner(scale);
  std::cout << "Ablation: weak-ordering benefit, write-back vs write-through "
               "caches\n\n";

  report::Table t("WO improvement over SC (%)");
  t.columns({"Program", "write-back", "write-through", "WT stores->bus"});
  for (const auto& profile :
       {workload::pverify_profile(), workload::topopt_profile(),
        workload::fullconn_profile()}) {
    std::vector<std::string> row{profile.name};
    std::uint64_t wt_writes = 0;
    for (const auto policy :
         {cache::WritePolicy::kWriteBack, cache::WritePolicy::kWriteThrough}) {
      core::MachineConfig config;
      config.write_policy = policy;
      config.consistency = bus::ConsistencyModel::kSequential;
      const auto sc = core::run_experiment(config, profile, scale).sim;
      config.consistency = bus::ConsistencyModel::kWeak;
      const auto wo = core::run_experiment(config, profile, scale).sim;
      row.push_back(util::fixed(wo.runtime_change_pct(sc), 2));
      if (policy == cache::WritePolicy::kWriteThrough) {
        wt_writes = wo.traffic.write_throughs;
      }
    }
    row.push_back(util::with_commas(wt_writes * scale));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "Expected shape: a few percent at most with write-back (the "
               "paper's machine),\nan order of magnitude more with "
               "write-through — §4.2's conjecture, confirmed\nwherever the "
               "extra write traffic does not saturate the bus outright (a "
               "store-\nheavy program like Pverify saturates it under either "
               "model, and buffering\nstores cannot create bus bandwidth).\n";
  return 0;
}

# Empty dependencies file for syncpat_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/syncpat_cli.dir/syncpat_cli.cpp.o"
  "CMakeFiles/syncpat_cli.dir/syncpat_cli.cpp.o.d"
  "syncpat_cli"
  "syncpat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncpat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

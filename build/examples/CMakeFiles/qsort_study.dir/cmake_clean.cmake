file(REMOVE_RECURSE
  "CMakeFiles/qsort_study.dir/qsort_study.cpp.o"
  "CMakeFiles/qsort_study.dir/qsort_study.cpp.o.d"
  "qsort_study"
  "qsort_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsort_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for qsort_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/barnes_hut_study.dir/barnes_hut_study.cpp.o"
  "CMakeFiles/barnes_hut_study.dir/barnes_hut_study.cpp.o.d"
  "barnes_hut_study"
  "barnes_hut_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barnes_hut_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for barnes_hut_study.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_table3_queuing_runtime.
# This may be replaced when dependencies are built.

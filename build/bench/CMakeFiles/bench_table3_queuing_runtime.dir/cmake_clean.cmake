file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_queuing_runtime.dir/bench_table3_queuing_runtime.cpp.o"
  "CMakeFiles/bench_table3_queuing_runtime.dir/bench_table3_queuing_runtime.cpp.o.d"
  "bench_table3_queuing_runtime"
  "bench_table3_queuing_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_queuing_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_bus_params.
# This may be replaced when dependencies are built.

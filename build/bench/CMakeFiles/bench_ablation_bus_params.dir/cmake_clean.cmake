file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bus_params.dir/bench_ablation_bus_params.cpp.o"
  "CMakeFiles/bench_ablation_bus_params.dir/bench_ablation_bus_params.cpp.o.d"
  "bench_ablation_bus_params"
  "bench_ablation_bus_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bus_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table7_weak_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_architecture.dir/bench_figure1_architecture.cpp.o"
  "CMakeFiles/bench_figure1_architecture.dir/bench_figure1_architecture.cpp.o.d"
  "bench_figure1_architecture"
  "bench_figure1_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

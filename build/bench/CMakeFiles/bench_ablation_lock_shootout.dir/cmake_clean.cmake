file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lock_shootout.dir/bench_ablation_lock_shootout.cpp.o"
  "CMakeFiles/bench_ablation_lock_shootout.dir/bench_ablation_lock_shootout.cpp.o.d"
  "bench_ablation_lock_shootout"
  "bench_ablation_lock_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lock_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_lock_shootout.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ablation_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_ttas_runtime.dir/bench_table5_ttas_runtime.cpp.o"
  "CMakeFiles/bench_table5_ttas_runtime.dir/bench_table5_ttas_runtime.cpp.o.d"
  "bench_table5_ttas_runtime"
  "bench_table5_ttas_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ttas_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

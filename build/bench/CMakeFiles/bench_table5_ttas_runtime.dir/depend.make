# Empty dependencies file for bench_table5_ttas_runtime.
# This may be replaced when dependencies are built.

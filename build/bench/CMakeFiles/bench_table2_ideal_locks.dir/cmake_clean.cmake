file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ideal_locks.dir/bench_table2_ideal_locks.cpp.o"
  "CMakeFiles/bench_table2_ideal_locks.dir/bench_table2_ideal_locks.cpp.o.d"
  "bench_table2_ideal_locks"
  "bench_table2_ideal_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ideal_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

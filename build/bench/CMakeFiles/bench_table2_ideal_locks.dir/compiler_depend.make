# Empty compiler generated dependencies file for bench_table2_ideal_locks.
# This may be replaced when dependencies are built.

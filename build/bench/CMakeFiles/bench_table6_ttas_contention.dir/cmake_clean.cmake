file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_ttas_contention.dir/bench_table6_ttas_contention.cpp.o"
  "CMakeFiles/bench_table6_ttas_contention.dir/bench_table6_ttas_contention.cpp.o.d"
  "bench_table6_ttas_contention"
  "bench_table6_ttas_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_ttas_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

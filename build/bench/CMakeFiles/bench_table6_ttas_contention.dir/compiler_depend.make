# Empty compiler generated dependencies file for bench_table6_ttas_contention.
# This may be replaced when dependencies are built.

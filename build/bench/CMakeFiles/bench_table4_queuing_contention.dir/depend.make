# Empty dependencies file for bench_table4_queuing_contention.
# This may be replaced when dependencies are built.

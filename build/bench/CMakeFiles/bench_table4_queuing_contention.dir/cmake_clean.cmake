file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_queuing_contention.dir/bench_table4_queuing_contention.cpp.o"
  "CMakeFiles/bench_table4_queuing_contention.dir/bench_table4_queuing_contention.cpp.o.d"
  "bench_table4_queuing_contention"
  "bench_table4_queuing_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_queuing_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_write_through.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_write_through.dir/bench_ablation_write_through.cpp.o"
  "CMakeFiles/bench_ablation_write_through.dir/bench_ablation_write_through.cpp.o.d"
  "bench_ablation_write_through"
  "bench_ablation_write_through.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_write_through.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

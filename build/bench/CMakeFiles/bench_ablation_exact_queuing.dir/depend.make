# Empty dependencies file for bench_ablation_exact_queuing.
# This may be replaced when dependencies are built.

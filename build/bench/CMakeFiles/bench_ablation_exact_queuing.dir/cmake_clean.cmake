file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_exact_queuing.dir/bench_ablation_exact_queuing.cpp.o"
  "CMakeFiles/bench_ablation_exact_queuing.dir/bench_ablation_exact_queuing.cpp.o.d"
  "bench_ablation_exact_queuing"
  "bench_ablation_exact_queuing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_exact_queuing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

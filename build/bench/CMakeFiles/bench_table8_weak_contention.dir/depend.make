# Empty dependencies file for bench_table8_weak_contention.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_weak_contention.dir/bench_table8_weak_contention.cpp.o"
  "CMakeFiles/bench_table8_weak_contention.dir/bench_table8_weak_contention.cpp.o.d"
  "bench_table8_weak_contention"
  "bench_table8_weak_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_weak_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_memory_latency.
# This may be replaced when dependencies are built.

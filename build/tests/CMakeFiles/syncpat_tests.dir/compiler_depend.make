# Empty compiler generated dependencies file for syncpat_tests.
# This may be replaced when dependencies are built.

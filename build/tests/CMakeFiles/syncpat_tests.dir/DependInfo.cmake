
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_map.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_address_map.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_address_map.cpp.o.d"
  "/root/repo/tests/test_analyzer.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_analyzer.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_analyzer.cpp.o.d"
  "/root/repo/tests/test_barrier.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_barrier.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_barrier.cpp.o.d"
  "/root/repo/tests/test_bus.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_bus.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_bus.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cache_geometry.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_cache_geometry.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_cache_geometry.cpp.o.d"
  "/root/repo/tests/test_event.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_event.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_event.cpp.o.d"
  "/root/repo/tests/test_experiment_engine.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_experiment_engine.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_experiment_engine.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_experiments.cpp.o.d"
  "/root/repo/tests/test_format.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_format.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_format.cpp.o.d"
  "/root/repo/tests/test_golden_results.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_golden_results.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_golden_results.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_interface.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_interface.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_interface.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_lock_schemes.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_lock_schemes.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_lock_schemes.cpp.o.d"
  "/root/repo/tests/test_lock_stats.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_lock_stats.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_lock_stats.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_mesi.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_mesi.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_mesi.cpp.o.d"
  "/root/repo/tests/test_mpt.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_mpt.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_mpt.cpp.o.d"
  "/root/repo/tests/test_queuing_lock.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_queuing_lock.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_queuing_lock.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_ring_buffer.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_ring_buffer.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_ring_buffer.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_running_stat.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_running_stat.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_running_stat.cpp.o.d"
  "/root/repo/tests/test_sim_coherence.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_sim_coherence.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_sim_coherence.cpp.o.d"
  "/root/repo/tests/test_sim_stress.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_sim_stress.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_sim_stress.cpp.o.d"
  "/root/repo/tests/test_sim_timing.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_sim_timing.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_sim_timing.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_ttas_lock.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_ttas_lock.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_ttas_lock.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_validate.cpp.o.d"
  "/root/repo/tests/test_weak_ordering.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_weak_ordering.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_weak_ordering.cpp.o.d"
  "/root/repo/tests/test_workload_calibration.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_workload_calibration.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_workload_calibration.cpp.o.d"
  "/root/repo/tests/test_workload_generator.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_workload_generator.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_workload_generator.cpp.o.d"
  "/root/repo/tests/test_write_through.cpp" "tests/CMakeFiles/syncpat_tests.dir/test_write_through.cpp.o" "gcc" "tests/CMakeFiles/syncpat_tests.dir/test_write_through.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/syncpat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/bus.cpp" "src/CMakeFiles/syncpat.dir/bus/bus.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/bus/bus.cpp.o.d"
  "/root/repo/src/bus/interface.cpp" "src/CMakeFiles/syncpat.dir/bus/interface.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/bus/interface.cpp.o.d"
  "/root/repo/src/cache/cache.cpp" "src/CMakeFiles/syncpat.dir/cache/cache.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/cache/cache.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/syncpat.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/experiment_engine.cpp" "src/CMakeFiles/syncpat.dir/core/experiment_engine.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/core/experiment_engine.cpp.o.d"
  "/root/repo/src/core/invariant_checker.cpp" "src/CMakeFiles/syncpat.dir/core/invariant_checker.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/core/invariant_checker.cpp.o.d"
  "/root/repo/src/core/machine_config.cpp" "src/CMakeFiles/syncpat.dir/core/machine_config.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/core/machine_config.cpp.o.d"
  "/root/repo/src/core/processor.cpp" "src/CMakeFiles/syncpat.dir/core/processor.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/core/processor.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/CMakeFiles/syncpat.dir/core/simulator.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/core/simulator.cpp.o.d"
  "/root/repo/src/mem/memory.cpp" "src/CMakeFiles/syncpat.dir/mem/memory.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/mem/memory.cpp.o.d"
  "/root/repo/src/report/paper_tables.cpp" "src/CMakeFiles/syncpat.dir/report/paper_tables.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/report/paper_tables.cpp.o.d"
  "/root/repo/src/report/per_lock.cpp" "src/CMakeFiles/syncpat.dir/report/per_lock.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/report/per_lock.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/syncpat.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/report/table.cpp.o.d"
  "/root/repo/src/sync/anderson_lock.cpp" "src/CMakeFiles/syncpat.dir/sync/anderson_lock.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/sync/anderson_lock.cpp.o.d"
  "/root/repo/src/sync/lock_stats.cpp" "src/CMakeFiles/syncpat.dir/sync/lock_stats.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/sync/lock_stats.cpp.o.d"
  "/root/repo/src/sync/queuing_lock.cpp" "src/CMakeFiles/syncpat.dir/sync/queuing_lock.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/sync/queuing_lock.cpp.o.d"
  "/root/repo/src/sync/scheme_factory.cpp" "src/CMakeFiles/syncpat.dir/sync/scheme_factory.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/sync/scheme_factory.cpp.o.d"
  "/root/repo/src/sync/tas_backoff_lock.cpp" "src/CMakeFiles/syncpat.dir/sync/tas_backoff_lock.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/sync/tas_backoff_lock.cpp.o.d"
  "/root/repo/src/sync/tas_lock.cpp" "src/CMakeFiles/syncpat.dir/sync/tas_lock.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/sync/tas_lock.cpp.o.d"
  "/root/repo/src/sync/ticket_lock.cpp" "src/CMakeFiles/syncpat.dir/sync/ticket_lock.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/sync/ticket_lock.cpp.o.d"
  "/root/repo/src/sync/ttas_lock.cpp" "src/CMakeFiles/syncpat.dir/sync/ttas_lock.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/sync/ttas_lock.cpp.o.d"
  "/root/repo/src/trace/address_map.cpp" "src/CMakeFiles/syncpat.dir/trace/address_map.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/trace/address_map.cpp.o.d"
  "/root/repo/src/trace/analyzer.cpp" "src/CMakeFiles/syncpat.dir/trace/analyzer.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/trace/analyzer.cpp.o.d"
  "/root/repo/src/trace/event.cpp" "src/CMakeFiles/syncpat.dir/trace/event.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/trace/event.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/CMakeFiles/syncpat.dir/trace/io.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/trace/io.cpp.o.d"
  "/root/repo/src/trace/mpt.cpp" "src/CMakeFiles/syncpat.dir/trace/mpt.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/trace/mpt.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/CMakeFiles/syncpat.dir/trace/validate.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/trace/validate.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/syncpat.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/util/format.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/syncpat.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/util/histogram.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/syncpat.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/kernels/annealing.cpp" "src/CMakeFiles/syncpat.dir/workload/kernels/annealing.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/workload/kernels/annealing.cpp.o.d"
  "/root/repo/src/workload/kernels/barnes_hut.cpp" "src/CMakeFiles/syncpat.dir/workload/kernels/barnes_hut.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/workload/kernels/barnes_hut.cpp.o.d"
  "/root/repo/src/workload/kernels/qsort_kernel.cpp" "src/CMakeFiles/syncpat.dir/workload/kernels/qsort_kernel.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/workload/kernels/qsort_kernel.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/CMakeFiles/syncpat.dir/workload/profile.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/workload/profile.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/CMakeFiles/syncpat.dir/workload/profiles.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/workload/profiles.cpp.o.d"
  "/root/repo/src/workload/vm.cpp" "src/CMakeFiles/syncpat.dir/workload/vm.cpp.o" "gcc" "src/CMakeFiles/syncpat.dir/workload/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsyncpat.a"
)

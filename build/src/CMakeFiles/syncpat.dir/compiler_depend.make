# Empty compiler generated dependencies file for syncpat.
# This may be replaced when dependencies are built.

#include "core/machine_config.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/parse.hpp"

namespace syncpat::core {

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kDes: return "des";
    case EngineKind::kTick: return "tick";
  }
  return "?";
}

namespace {

[[nodiscard]] EngineKind parse_engine(const char* text) {
  if (std::strcmp(text, "des") == 0) return EngineKind::kDes;
  if (std::strcmp(text, "tick") == 0) return EngineKind::kTick;
  throw std::invalid_argument(std::string("SYNCPAT_ENGINE expects \"des\" or "
                                          "\"tick\", got \"") +
                              text + "\"");
}

}  // namespace

const char* mem_model_name(MemModelKind kind) {
  switch (kind) {
    case MemModelKind::kBus: return "bus";
    case MemModelKind::kDsm: return "dsm";
  }
  return "?";
}

MemModelKind mem_model_from_name(const std::string& name) {
  if (name == "bus") return MemModelKind::kBus;
  if (name == "dsm") return MemModelKind::kDsm;
  throw std::invalid_argument("memory model expects \"bus\" or \"dsm\", got \"" +
                              name + "\"");
}

bus::DisciplineKind resolve_bus_discipline(bus::DisciplineKind config_value,
                                           const char* env) {
  if (env == nullptr) return config_value;
  try {
    return bus::discipline_from_name(env);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(
        std::string("SYNCPAT_BUS_DISCIPLINE expects \"round-robin\", "
                    "\"fixed-priority\" or \"fcfs\", got \"") +
        env + "\"");
  }
}

bus::DisciplineKind resolve_bus_discipline_from_env(
    bus::DisciplineKind config_value) {
  return resolve_bus_discipline(config_value,
                                std::getenv("SYNCPAT_BUS_DISCIPLINE"));
}

MemModelKind resolve_mem_model(MemModelKind config_value, const char* env) {
  if (env == nullptr) return config_value;
  try {
    return mem_model_from_name(env);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(
        std::string("SYNCPAT_MODEL expects \"bus\" or \"dsm\", got \"") + env +
        "\"");
  }
}

MemModelKind resolve_mem_model_from_env(MemModelKind config_value) {
  return resolve_mem_model(config_value, std::getenv("SYNCPAT_MODEL"));
}

EngineSelection resolve_engine(EngineKind config_engine,
                               bool config_fast_forward,
                               const char* engine_env, const char* ff_env) {
  EngineSelection sel;
  sel.engine = config_engine;
  sel.fast_forward = config_fast_forward;
  // Parse both strictly even when SYNCPAT_ENGINE wins: a malformed value in
  // either variable is a configuration error, never silently ignored.
  if (ff_env != nullptr) {
    const bool ff = util::parse_bool01(ff_env, "SYNCPAT_FAST_FORWARD");
    sel.fast_forward = ff;
    if (engine_env == nullptr) {
      // Deprecated alias: both values meant the per-cycle tick engine, with
      // and without its quiescence run-ahead.
      sel.engine = EngineKind::kTick;
      sel.from_deprecated_ff = true;
    }
  }
  if (engine_env != nullptr) sel.engine = parse_engine(engine_env);
  return sel;
}

EngineSelection resolve_engine_from_env(EngineKind config_engine,
                                        bool config_fast_forward) {
  const EngineSelection sel =
      resolve_engine(config_engine, config_fast_forward,
                     std::getenv("SYNCPAT_ENGINE"),
                     std::getenv("SYNCPAT_FAST_FORWARD"));
  if (sel.from_deprecated_ff) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "note: SYNCPAT_FAST_FORWARD is deprecated; it now selects "
                   "the legacy tick engine (use SYNCPAT_ENGINE=des|tick)\n");
    }
  }
  return sel;
}

std::string MachineConfig::describe() const {
  std::ostringstream out;
  out << "Shared-bus multiprocessor (paper Figure 1)\n"
      << "  processors          : " << num_procs << "\n"
      << "  cache               : " << cache.size_bytes / 1024 << " KB, "
      << cache.associativity << "-way set associative, " << cache.line_bytes
      << "-byte lines, " << cache::write_policy_name(write_policy)
      << ", LRU\n"
      << "  coherence           : Illinois (MESI + cache-to-cache transfer)\n"
      << "  cache-bus buffer    : " << cache_bus_buffer_depth << " entries"
      << " (dirty lines snoop-visible)\n"
      << "  bus                 : " << bus_bytes * 8
      << "-bit split-transaction, " << bus::discipline_name(bus_discipline)
      << " arbitration\n"
      << "  memory              : " << memory.access_cycles << "-cycle access, "
      << memory.input_depth << "-deep input / " << memory.output_depth
      << "-deep output buffers\n";
  if (model == MemModelKind::kDsm) {
    out << "  memory model        : dsm, " << dsm.nodes << " nodes, +"
        << dsm.remote_access_cycles << "-cycle remote access\n";
  }
  out
      << "  uncontended miss    : 1 (request) + " << memory.access_cycles
      << " (memory) + " << line_transfer_cycles()
      << " (line over bus) = "
      << 1 + memory.access_cycles + line_transfer_cycles() << " stall cycles\n"
      << "  consistency model   : " << bus::consistency_name(consistency) << "\n"
      << "  lock scheme         : " << sync::scheme_kind_name(lock_scheme) << "\n"
      << "  execution engine    : " << engine_name(engine)
      << (engine == EngineKind::kDes ? " (discrete-event core)"
                                     : " (legacy per-cycle loop)")
      << "\n";
  return out.str();
}

}  // namespace syncpat::core

#include "core/machine_config.hpp"

#include <sstream>

namespace syncpat::core {

std::string MachineConfig::describe() const {
  std::ostringstream out;
  out << "Shared-bus multiprocessor (paper Figure 1)\n"
      << "  processors          : " << num_procs << "\n"
      << "  cache               : " << cache.size_bytes / 1024 << " KB, "
      << cache.associativity << "-way set associative, " << cache.line_bytes
      << "-byte lines, " << cache::write_policy_name(write_policy)
      << ", LRU\n"
      << "  coherence           : Illinois (MESI + cache-to-cache transfer)\n"
      << "  cache-bus buffer    : " << cache_bus_buffer_depth << " entries"
      << " (dirty lines snoop-visible)\n"
      << "  bus                 : " << bus_bytes * 8
      << "-bit split-transaction, round-robin arbitration\n"
      << "  memory              : " << memory.access_cycles << "-cycle access, "
      << memory.input_depth << "-deep input / " << memory.output_depth
      << "-deep output buffers\n"
      << "  uncontended miss    : 1 (request) + " << memory.access_cycles
      << " (memory) + " << line_transfer_cycles()
      << " (line over bus) = "
      << 1 + memory.access_cycles + line_transfer_cycles() << " stall cycles\n"
      << "  consistency model   : " << bus::consistency_name(consistency) << "\n"
      << "  lock scheme         : " << sync::scheme_kind_name(lock_scheme) << "\n";
  return out.str();
}

}  // namespace syncpat::core

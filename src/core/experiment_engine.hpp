// Parallel experiment engine: runs a declarative cartesian grid of
// experiments (profile × scheme × consistency model × write policy ×
// processor count × scale) on a work-stealing thread pool.
//
// Every cell builds its own ProgramTrace and Simulator, so cells share no
// mutable state and the grid parallelizes embarrassingly; results come back
// indexed by cell, in deterministic grid order regardless of how the pool
// scheduled them.  This is the substrate the table benches, syncpat_cli
// --sweep, and the golden regression tests run on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/machine_config.hpp"
#include "workload/profile.hpp"

namespace syncpat::core {

/// Declarative cartesian product of experiment axes.  An empty axis means
/// "use the base value" (from `base` for machine axes, from the profile for
/// proc_counts, 1 for scales); a 0 in proc_counts keeps the profile's own
/// processor count.
struct ExperimentGrid {
  MachineConfig base;
  std::vector<workload::BenchmarkProfile> profiles;
  std::vector<sync::SchemeKind> schemes;
  std::vector<bus::ConsistencyModel> consistency_models;
  std::vector<cache::WritePolicy> write_policies;
  std::vector<std::uint32_t> proc_counts;
  std::vector<std::uint64_t> scales;
  /// Skip simulation: cells carry the ideal trace analysis only (Tables 1/2).
  bool ideal_only = false;
};

/// One fully-resolved grid cell, in deterministic grid order
/// (profile-major, then scheme, consistency, write policy, procs, scale).
struct ExperimentCell {
  std::size_t index = 0;
  workload::BenchmarkProfile profile;  // num_procs already overridden
  MachineConfig config;                // scheme/consistency/policy resolved
  std::uint64_t scale = 1;
  bool ideal_only = false;

  /// "Grav/queuing/sequential/write-back/p12/x8"
  [[nodiscard]] std::string label() const;
};

struct CellResult {
  ExperimentOutcome outcome;
  double wall_ms = 0.0;
  std::uint32_t attempts = 0;  // 1 unless retried on std::bad_alloc
  std::string error;           // non-empty when the cell failed terminally

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct GridResult {
  std::vector<ExperimentCell> cells;
  std::vector<CellResult> results;  // results[i] belongs to cells[i]
  double wall_ms = 0.0;
  std::uint32_t jobs_used = 0;

  [[nodiscard]] std::size_t size() const { return cells.size(); }
};

struct EngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::uint32_t jobs = 0;
  /// Attempts per cell before a std::bad_alloc becomes a cell error.
  std::uint32_t max_attempts = 3;
};

/// Expands the grid into its cells without running anything.
[[nodiscard]] std::vector<ExperimentCell> grid_cells(const ExperimentGrid& grid);

/// Runs every cell.  jobs == 1 runs inline on the calling thread (fully
/// serial, no pool); otherwise a work-stealing pool of `jobs` workers.
/// Results are deterministic and independent of the worker count.
[[nodiscard]] GridResult run_grid(const ExperimentGrid& grid,
                                  const EngineOptions& options = {});

/// Reads the worker count from SYNCPAT_JOBS; `fallback` when unset.  Throws
/// std::invalid_argument for empty/non-numeric/negative/trailing-junk values
/// (0 is allowed: "use all cores", like --jobs 0).
[[nodiscard]] std::uint32_t jobs_from_env(std::uint32_t fallback);

}  // namespace syncpat::core

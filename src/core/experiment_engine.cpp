#include "core/experiment_engine.hpp"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#include "util/parse.hpp"

namespace syncpat::core {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

[[nodiscard]] CellResult run_cell(const ExperimentCell& cell,
                                  std::uint32_t max_attempts) {
  CellResult result;
  const Clock::time_point start = Clock::now();
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    result.attempts = attempt;
    try {
      if (cell.ideal_only) {
        result.outcome.ideal = run_ideal(cell.profile, cell.scale);
      } else {
        result.outcome = run_experiment(cell.config, cell.profile, cell.scale);
      }
      result.error.clear();
      break;
    } catch (const std::bad_alloc&) {
      result.error = "out of memory";
      if (attempt < max_attempts) {
        // Give concurrently-running cells a chance to finish and free their
        // simulators before retrying.
        std::this_thread::sleep_for(std::chrono::milliseconds(50) * attempt);
      }
    } catch (const std::exception& e) {
      result.error = e.what();
      break;  // deterministic failures don't benefit from a retry
    }
  }
  result.wall_ms = ms_since(start);
  return result;
}

/// One mutex-protected deque per worker.  Owners pop from the front of their
/// own deque; thieves steal from the back of others.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<std::size_t> items;
};

}  // namespace

std::string ExperimentCell::label() const {
  std::string s = profile.name;
  s += '/';
  s += sync::scheme_kind_name(config.lock_scheme);
  s += '/';
  s += bus::consistency_name(config.consistency);
  s += '/';
  s += cache::write_policy_name(config.write_policy);
  s += "/p";
  s += std::to_string(profile.num_procs);
  s += "/x";
  s += std::to_string(scale);
  return s;
}

std::vector<ExperimentCell> grid_cells(const ExperimentGrid& grid) {
  const std::vector<sync::SchemeKind> schemes =
      grid.schemes.empty() ? std::vector<sync::SchemeKind>{grid.base.lock_scheme}
                           : grid.schemes;
  const std::vector<bus::ConsistencyModel> models =
      grid.consistency_models.empty()
          ? std::vector<bus::ConsistencyModel>{grid.base.consistency}
          : grid.consistency_models;
  const std::vector<cache::WritePolicy> policies =
      grid.write_policies.empty()
          ? std::vector<cache::WritePolicy>{grid.base.write_policy}
          : grid.write_policies;
  const std::vector<std::uint32_t> procs =
      grid.proc_counts.empty() ? std::vector<std::uint32_t>{0}
                               : grid.proc_counts;
  const std::vector<std::uint64_t> scales =
      grid.scales.empty() ? std::vector<std::uint64_t>{1} : grid.scales;

  std::vector<ExperimentCell> cells;
  cells.reserve(grid.profiles.size() * schemes.size() * models.size() *
                policies.size() * procs.size() * scales.size());
  for (const workload::BenchmarkProfile& profile : grid.profiles) {
    for (const sync::SchemeKind scheme : schemes) {
      for (const bus::ConsistencyModel model : models) {
        for (const cache::WritePolicy policy : policies) {
          for (const std::uint32_t nprocs : procs) {
            for (const std::uint64_t scale : scales) {
              ExperimentCell cell;
              cell.index = cells.size();
              cell.profile = profile;
              if (nprocs != 0) cell.profile.num_procs = nprocs;
              cell.config = grid.base;
              cell.config.lock_scheme = scheme;
              cell.config.consistency = model;
              cell.config.write_policy = policy;
              cell.config.num_procs = cell.profile.num_procs;
              cell.scale = scale;
              cell.ideal_only = grid.ideal_only;
              cells.push_back(std::move(cell));
            }
          }
        }
      }
    }
  }
  return cells;
}

GridResult run_grid(const ExperimentGrid& grid, const EngineOptions& options) {
  GridResult out;
  out.cells = grid_cells(grid);
  out.results.resize(out.cells.size());
  const Clock::time_point start = Clock::now();

  std::uint32_t jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  jobs = std::min<std::uint32_t>(
      jobs, std::max<std::size_t>(out.cells.size(), 1));
  out.jobs_used = jobs;

  const std::uint32_t max_attempts = std::max(options.max_attempts, 1u);

  if (jobs == 1) {
    for (const ExperimentCell& cell : out.cells) {
      out.results[cell.index] = run_cell(cell, max_attempts);
    }
    out.wall_ms = ms_since(start);
    return out;
  }

  // Deal cells round-robin, then let workers steal: long-running cells (e.g.
  // Topopt at paper scale) end up alone on a worker while the others drain
  // the rest.  No new work is ever produced, so "all deques empty" is a
  // stable termination condition.
  std::vector<WorkerQueue> queues(jobs);
  for (std::size_t i = 0; i < out.cells.size(); ++i) {
    queues[i % jobs].items.push_back(i);
  }

  auto worker = [&](std::uint32_t self) {
    for (;;) {
      std::size_t index = 0;
      bool found = false;
      {
        std::lock_guard<std::mutex> lk(queues[self].mutex);
        if (!queues[self].items.empty()) {
          index = queues[self].items.front();
          queues[self].items.pop_front();
          found = true;
        }
      }
      if (!found) {
        for (std::uint32_t offset = 1; offset < jobs && !found; ++offset) {
          WorkerQueue& victim = queues[(self + offset) % jobs];
          std::lock_guard<std::mutex> lk(victim.mutex);
          if (!victim.items.empty()) {
            index = victim.items.back();
            victim.items.pop_back();
            found = true;
          }
        }
      }
      if (!found) return;  // every deque empty: done
      out.results[index] = run_cell(out.cells[index], max_attempts);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs);
  for (std::uint32_t w = 0; w < jobs; ++w) {
    threads.emplace_back(worker, w);
  }
  for (std::thread& t : threads) t.join();

  out.wall_ms = ms_since(start);
  return out;
}

std::uint32_t jobs_from_env(std::uint32_t fallback) {
  const char* env = std::getenv("SYNCPAT_JOBS");
  if (env == nullptr) return fallback;
  std::uint64_t value = 0;
  if (!util::try_parse_u64(env, value) || value > 0xffff'ffffULL) {
    throw std::invalid_argument(
        "SYNCPAT_JOBS must be a non-negative integer (0 = all cores), got \"" +
        std::string(env) + "\"");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace syncpat::core

// Simulation results: every quantity the paper's Tables 3-8 report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sync/lock_stats.hpp"
#include "util/running_stat.hpp"

namespace syncpat::core {

/// Bus transaction mix (what §3.2's bus-utilization analysis decomposes).
struct BusTraffic {
  std::uint64_t reads = 0;         // line fetches for reading
  std::uint64_t readx = 0;         // ownership fetches (incl. atomics)
  std::uint64_t upgrades = 0;      // pure invalidations
  std::uint64_t writebacks = 0;    // dirty evictions
  std::uint64_t handoffs = 0;      // queuing-lock transfers
  std::uint64_t write_throughs = 0;  // one-word stores (WT caches)
  std::uint64_t c2c_supplies = 0;  // fetches served cache-to-cache
  std::uint64_t memory_reads = 0;  // fetches served by memory
  std::uint64_t lock_ops = 0;      // transactions issued by lock schemes

  [[nodiscard]] std::uint64_t total() const {
    return reads + readx + upgrades + writebacks + handoffs +
           write_throughs;
  }
};

/// Bus arbitration summary for the run's service discipline (see
/// bus/service_discipline.hpp): how many grants it issued and how long
/// requests waited between reaching the bus queue and being granted.
struct DisciplineResult {
  std::string name;                 // "round-robin" / "fixed-priority" / "fcfs"
  std::uint64_t grants = 0;         // processor-side request grants
  std::uint64_t memory_grants = 0;  // memory response grants
  std::uint64_t max_grant_wait = 0; // worst queued-to-granted wait (cycles)
  util::RunningStat grant_wait;     // queued-to-granted wait per grant
};

struct ProcResult {
  std::uint64_t work_cycles = 0;
  std::uint64_t stall_cache = 0;
  std::uint64_t stall_lock = 0;
  std::uint64_t stall_fence = 0;
  std::uint64_t completion_cycle = 0;
  double utilization = 0.0;

  [[nodiscard]] std::uint64_t total_stalls() const {
    return stall_cache + stall_lock + stall_fence;
  }
};

struct SimulationResult {
  std::string program;
  std::string scheme;
  std::string consistency;
  std::uint32_t num_procs = 0;

  std::uint64_t run_time = 0;       // cycle the last processor finished
  double avg_utilization = 0.0;     // mean of per-processor utilizations

  // Stall-cause split (Tables 3/5): percent of stall cycles.  Fence stalls
  // (weak ordering drains) are folded into the cache-miss share, matching
  // the paper's two-way split.
  double stall_cache_pct = 0.0;
  double stall_lock_pct = 0.0;

  sync::LockAggregate locks;

  double bus_utilization = 0.0;
  BusTraffic traffic;
  DisciplineResult discipline;
  double write_hit_ratio = 0.0;
  double read_hit_ratio = 0.0;

  // Weak-ordering diagnostics (§4.2): how often a sync found unfinished
  // buffered/outstanding accesses, and how many reads bypassed writes.
  std::uint64_t syncs = 0;
  std::uint64_t syncs_with_pending = 0;
  std::uint64_t read_bypasses = 0;

  // Barrier synchronization (the paper's §3.1 aside: a barrier's average
  // waiter count is less than half the processors).
  std::uint64_t barriers_completed = 0;
  util::RunningStat barrier_wait_cycles;
  util::RunningStat barrier_waiters_at_arrival;

  std::vector<ProcResult> per_proc;

  /// Percent run-time change versus a baseline (Table 7 "Difference").
  [[nodiscard]] double runtime_change_pct(const SimulationResult& baseline) const {
    if (baseline.run_time == 0) return 0.0;
    return 100.0 *
           (static_cast<double>(baseline.run_time) -
            static_cast<double>(run_time)) /
           static_cast<double>(baseline.run_time);
  }
};

}  // namespace syncpat::core

#include "core/experiment.hpp"

#include <cstdlib>
#include <string>

#include "core/simulator.hpp"
#include "workload/generator.hpp"

namespace syncpat::core {

ExperimentOutcome run_experiment(const MachineConfig& config,
                                 const workload::BenchmarkProfile& profile,
                                 std::uint64_t scale) {
  const workload::BenchmarkProfile scaled = profile.scaled(scale);
  trace::ProgramTrace program = workload::make_program_trace(scaled);

  ExperimentOutcome outcome;
  outcome.ideal = trace::analyze_program(program);

  MachineConfig cfg = config;
  cfg.num_procs = scaled.num_procs;
  Simulator sim(cfg, program);
  outcome.sim = sim.run();
  return outcome;
}

trace::IdealProgramStats run_ideal(const workload::BenchmarkProfile& profile,
                                   std::uint64_t scale) {
  const workload::BenchmarkProfile scaled = profile.scaled(scale);
  trace::ProgramTrace program = workload::make_program_trace(scaled);
  return trace::analyze_program(program);
}

std::uint64_t scale_from_env(std::uint64_t fallback) {
  if (const char* env = std::getenv("SYNCPAT_SCALE")) {
    const long long value = std::atoll(env);
    if (value >= 1) return static_cast<std::uint64_t>(value);
  }
  return fallback;
}

}  // namespace syncpat::core

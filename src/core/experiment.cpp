#include "core/experiment.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/invariant_checker.hpp"
#include "core/simulator.hpp"
#include "obs/chrome_trace.hpp"
#include "util/parse.hpp"
#include "workload/generator.hpp"

namespace syncpat::core {

ExperimentOutcome run_experiment(const MachineConfig& config,
                                 const workload::BenchmarkProfile& profile,
                                 std::uint64_t scale) {
  const workload::BenchmarkProfile scaled = profile.scaled(scale);
  trace::ProgramTrace program = workload::make_program_trace(scaled);

  ExperimentOutcome outcome;
  outcome.ideal = trace::analyze_program(program);

  MachineConfig cfg = config;
  cfg.num_procs = scaled.num_procs;
  Simulator sim(cfg, program);
  // Per-cell sinks: each cell builds its own trace document during its own
  // run, so the grid engine's job count can never reorder trace output.
  obs::ChromeTraceSink chrome(scaled.name, scaled.num_procs);
  obs::LockTimelineSink timeline;
  if (obs::EventRecorder* rec = sim.recorder()) {
    rec->add_sink(&chrome);
    rec->add_sink(&timeline);
  }
  outcome.sim = sim.run();
  if (sim.recorder() != nullptr) {
    outcome.trace_json = chrome.finish();
    outcome.lock_timeline = timeline.take(outcome.sim.run_time);
  }
  if (sim.metrics() != nullptr) {
    outcome.metrics = sim.take_metrics();
    const obs::MetricsMeta meta{outcome.sim.program, outcome.sim.scheme,
                                outcome.sim.consistency, outcome.sim.num_procs,
                                outcome.sim.run_time};
    outcome.metrics_json = obs::metrics_to_json(*outcome.metrics, meta);
  }
  if (const InvariantChecker* checker = sim.invariant_checker()) {
    outcome.invariants.enabled = true;
    outcome.invariants.checks = checker->checks();
    outcome.invariants.violations = checker->violation_count();
    outcome.invariants.samples = checker->violations();
  }
  return outcome;
}

trace::IdealProgramStats run_ideal(const workload::BenchmarkProfile& profile,
                                   std::uint64_t scale) {
  const workload::BenchmarkProfile scaled = profile.scaled(scale);
  trace::ProgramTrace program = workload::make_program_trace(scaled);
  return trace::analyze_program(program);
}

std::uint64_t scale_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("SYNCPAT_SCALE");
  if (env == nullptr) return fallback;
  std::uint64_t value = 0;
  if (!util::try_parse_u64(env, value)) {
    throw std::invalid_argument(
        "SYNCPAT_SCALE must be a positive integer, got \"" + std::string(env) +
        "\"");
  }
  if (value == 0) {
    throw std::invalid_argument(
        "SYNCPAT_SCALE must be >= 1 (0 would produce an empty trace); unset "
        "it to use the default scale");
  }
  return value;
}

std::uint64_t positive_u64_from_env(const char* var, std::uint64_t fallback) {
  const char* env = std::getenv(var);
  if (env == nullptr) return fallback;
  return util::parse_positive_u64(env, var);
}

}  // namespace syncpat::core

#include "core/experiment.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/invariant_checker.hpp"
#include "core/simulator.hpp"
#include "workload/generator.hpp"

namespace syncpat::core {

ExperimentOutcome run_experiment(const MachineConfig& config,
                                 const workload::BenchmarkProfile& profile,
                                 std::uint64_t scale) {
  const workload::BenchmarkProfile scaled = profile.scaled(scale);
  trace::ProgramTrace program = workload::make_program_trace(scaled);

  ExperimentOutcome outcome;
  outcome.ideal = trace::analyze_program(program);

  MachineConfig cfg = config;
  cfg.num_procs = scaled.num_procs;
  Simulator sim(cfg, program);
  outcome.sim = sim.run();
  if (const InvariantChecker* checker = sim.invariant_checker()) {
    outcome.invariants.enabled = true;
    outcome.invariants.checks = checker->checks();
    outcome.invariants.violations = checker->violation_count();
    outcome.invariants.samples = checker->violations();
  }
  return outcome;
}

trace::IdealProgramStats run_ideal(const workload::BenchmarkProfile& profile,
                                   std::uint64_t scale) {
  const workload::BenchmarkProfile scaled = profile.scaled(scale);
  trace::ProgramTrace program = workload::make_program_trace(scaled);
  return trace::analyze_program(program);
}

std::uint64_t scale_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("SYNCPAT_SCALE");
  if (env == nullptr) return fallback;
  const std::string text(env);
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (text.empty() || end == env || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    throw std::invalid_argument(
        "SYNCPAT_SCALE must be a positive integer, got \"" + text + "\"");
  }
  if (value == 0) {
    throw std::invalid_argument(
        "SYNCPAT_SCALE must be >= 1 (0 would produce an empty trace); unset "
        "it to use the default scale");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace syncpat::core

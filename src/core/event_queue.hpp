// Deterministic event queue for the discrete-event simulator core.
//
// A calendar queue over a fixed set of event sources (one slot per
// processor).  Each source holds at most one scheduled cycle at a time;
// re-scheduling a present source moves its entry.  Ordering is total and
// deterministic: entries compare by (cycle, source id), so two sources due on
// the same cycle always pop in ascending id order — the same order the
// per-cycle tick loop visits processors — regardless of the history of
// schedule/cancel operations that built the queue.
//
// Layout: cycles within a kWindow-wide ring of per-cycle buckets are stored
// as source bitmasks (schedule/cancel are single bit flips, and scanning a
// bucket's set bits from the bottom yields the id tie-break for free); the
// rare entry outside the window lives in a separate far bitmask whose keys
// are compared by value.  This keeps the simulator's hot path — a handful of
// schedules and pops per stepped cycle, almost all within a few cycles of
// now — free of pointer chasing and sift loops.
//
// A monotone floor guards against scheduling into the past (the classic DES
// causality bug): set_floor() advances with the simulation clock and
// schedule() below it is a hard assertion failure.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace syncpat::core {

class EventQueue {
 public:
  static constexpr std::uint32_t kNpos = ~0u;

  explicit EventQueue(std::uint32_t num_sources)
      : words_((num_sources + 63) / 64),
        key_(num_sources, kAbsent),
        ring_(static_cast<std::size_t>(kWindow) * words_, 0),
        far_(words_, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool contains(std::uint32_t source) const {
    return key_[source] != kAbsent;
  }
  /// Scheduled cycle of a present source.
  [[nodiscard]] std::uint64_t key_of(std::uint32_t source) const {
    SYNCPAT_ASSERT(contains(source));
    return key_[source];
  }

  /// Earliest scheduled cycle.  Precondition: !empty().
  [[nodiscard]] std::uint64_t min_key() const { return peek().first; }
  /// Source holding the earliest cycle (lowest id among ties).
  [[nodiscard]] std::uint32_t min_source() const { return peek().second; }

  /// Raises the causality floor; never lowers it.  schedule() below the
  /// floor is a scheduling-into-the-past bug and asserts.
  void set_floor(std::uint64_t cycle) {
    if (cycle <= floor_) return;
    // Ring buckets that fall behind the new floor keep their original keys
    // but move to the far set (min scans compare far keys by value, so a
    // straggler still pops in correct order).
    if (near_count_ > 0) {
      const std::uint64_t hi =
          cycle - floor_ < kWindow ? cycle : floor_ + kWindow;
      // Rotate the occupancy mask so the floor's bucket is bit 0, mask it to
      // the overtaken range, and visit only the occupied buckets.
      const auto base = static_cast<std::uint32_t>(floor_ % kWindow);
      std::uint64_t rot = std::rotr(occ_, static_cast<int>(base));
      if (hi - floor_ < kWindow) rot &= (1ull << (hi - floor_)) - 1;
      while (rot != 0) {
        const std::uint64_t c =
            floor_ + static_cast<std::uint32_t>(std::countr_zero(rot));
        rot &= rot - 1;
        std::uint64_t* bkt = bucket(c);
        for (std::uint32_t w = 0; w < words_; ++w) {
          if (bkt[w] == 0) continue;
          near_count_ -= static_cast<std::uint32_t>(std::popcount(bkt[w]));
          far_count_ += static_cast<std::uint32_t>(std::popcount(bkt[w]));
          far_[w] |= bkt[w];
          bkt[w] = 0;
        }
        occ_ &= ~(1ull << (c % kWindow));
      }
    }
    floor_ = cycle;
    // Far entries that the advancing window has reached come into the ring.
    if (far_count_ > 0) {
      for (std::uint32_t w = 0; w < words_ && far_count_ > 0; ++w) {
        std::uint64_t bits = far_[w];
        while (bits != 0) {
          const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const std::uint32_t s = w * 64 + b;
          if (key_[s] >= floor_ && key_[s] - floor_ < kWindow) {
            far_[w] &= ~(1ull << b);
            --far_count_;
            bucket(key_[s])[w] |= 1ull << b;
            occ_ |= 1ull << (key_[s] % kWindow);
            ++near_count_;
          }
        }
      }
    }
  }
  [[nodiscard]] std::uint64_t floor() const { return floor_; }

  /// Inserts `source` at `cycle`, or moves it there if already present.
  void schedule(std::uint32_t source, std::uint64_t cycle) {
    SYNCPAT_ASSERT_MSG(cycle >= floor_,
                       "event scheduled into the past (below the queue floor)");
    if (key_[source] == cycle) return;
    if (key_[source] != kAbsent) clear_bit(source);
    key_[source] = cycle;
    const std::uint32_t w = source / 64;
    const std::uint64_t bit = 1ull << (source % 64);
    if (cycle - floor_ < kWindow) {
      bucket(cycle)[w] |= bit;
      occ_ |= 1ull << (cycle % kWindow);
      ++near_count_;
    } else {
      far_[w] |= bit;
      ++far_count_;
    }
    ++size_;
  }

  /// Removes `source` if present; no-op otherwise.
  void cancel(std::uint32_t source) {
    if (key_[source] == kAbsent) return;
    clear_bit(source);
    key_[source] = kAbsent;
  }

  /// Removes every entry scheduled at or before `cycle`, OR-ing their source
  /// bits into `out` ((num_sources+63)/64 words).  One bucket read replaces a
  /// min-scan per pop — the simulator's per-event-cycle drain.
  void take_due(std::uint64_t cycle, std::uint64_t* out) {
    if (near_count_ > 0 && cycle >= floor_) {
      const std::uint64_t hi =
          cycle - floor_ < kWindow - 1 ? cycle : floor_ + kWindow - 1;
      for (std::uint64_t c = floor_; c <= hi && near_count_ > 0; ++c) {
        if ((occ_ & (1ull << (c % kWindow))) == 0) continue;
        std::uint64_t* bkt = bucket(c);
        for (std::uint32_t w = 0; w < words_; ++w) {
          std::uint64_t bits = bkt[w];
          if (bits == 0) continue;
          out[w] |= bits;
          bkt[w] = 0;
          const auto n = static_cast<std::uint32_t>(std::popcount(bits));
          near_count_ -= n;
          size_ -= n;
          while (bits != 0) {
            key_[w * 64 + static_cast<std::uint32_t>(std::countr_zero(bits))] =
                kAbsent;
            bits &= bits - 1;
          }
        }
        occ_ &= ~(1ull << (c % kWindow));
      }
    }
    // Far stragglers (keys that fell behind the floor, or a window-sized
    // jump): compared by value; never hit on the simulator's hot path.
    if (far_count_ > 0) {
      for (std::uint32_t w = 0; w < words_; ++w) {
        std::uint64_t bits = far_[w];
        while (bits != 0) {
          const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const std::uint32_t s = w * 64 + b;
          if (key_[s] <= cycle) {
            far_[w] &= ~(1ull << b);
            --far_count_;
            --size_;
            key_[s] = kAbsent;
            out[w] |= 1ull << b;
          }
        }
      }
    }
  }

  /// Removes and returns the earliest source.  Precondition: !empty().
  std::uint32_t pop_min() {
    const std::uint32_t source = peek().second;
    clear_bit(source);
    key_[source] = kAbsent;
    return source;
  }

  /// Structural check for tests: every present source's bit sits in exactly
  /// the structure its key and the floor dictate, with no strays and
  /// matching counts.
  [[nodiscard]] bool validate() const {
    std::uint32_t present = 0;
    for (std::uint32_t s = 0; s < key_.size(); ++s) {
      const std::uint32_t w = s / 64;
      const std::uint64_t bit = 1ull << (s % 64);
      const bool in_far = (far_[w] & bit) != 0;
      if (key_[s] == kAbsent) {
        if (in_far) return false;
        for (std::uint32_t c = 0; c < kWindow; ++c) {
          if ((ring_[static_cast<std::size_t>(c) * words_ + w] & bit) != 0)
            return false;
        }
        continue;
      }
      ++present;
      const bool in_window = key_[s] >= floor_ && key_[s] - floor_ < kWindow;
      if (in_window == in_far) return false;
      for (std::uint32_t c = 0; c < kWindow; ++c) {
        const bool set =
            (ring_[static_cast<std::size_t>(c) * words_ + w] & bit) != 0;
        const bool expect = in_window && c == key_[s] % kWindow;
        if (set != expect) return false;
      }
    }
    for (std::uint32_t c = 0; c < kWindow; ++c) {
      bool any = false;
      for (std::uint32_t w = 0; w < words_; ++w) {
        any = any || ring_[static_cast<std::size_t>(c) * words_ + w] != 0;
      }
      if (any != ((occ_ & (1ull << c)) != 0)) return false;
    }
    std::uint32_t near = 0;
    std::uint32_t far = 0;
    for (const std::uint64_t word : ring_) {
      near += static_cast<std::uint32_t>(std::popcount(word));
    }
    for (const std::uint64_t word : far_) {
      far += static_cast<std::uint32_t>(std::popcount(word));
    }
    return present == size_ && near == near_count_ && far == far_count_ &&
           near + far == size_;
  }

 private:
  static constexpr std::uint32_t kWindow = 64;
  static constexpr std::uint64_t kAbsent = ~0ull;

  [[nodiscard]] std::uint64_t* bucket(std::uint64_t cycle) {
    return &ring_[static_cast<std::size_t>(cycle % kWindow) * words_];
  }
  [[nodiscard]] const std::uint64_t* bucket(std::uint64_t cycle) const {
    return &ring_[static_cast<std::size_t>(cycle % kWindow) * words_];
  }

  /// (key, source) of the earliest entry.  Precondition: !empty().
  [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> peek() const {
    SYNCPAT_ASSERT(size_ > 0);
    std::uint64_t best_key = kAbsent;
    std::uint32_t best_src = kNpos;
    if (far_count_ > 0) {
      // Scan in id order with a strict compare: the lowest id wins each key.
      for (std::uint32_t w = 0; w < words_; ++w) {
        std::uint64_t bits = far_[w];
        while (bits != 0) {
          const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const std::uint32_t s = w * 64 + b;
          if (key_[s] < best_key) {
            best_key = key_[s];
            best_src = s;
          }
        }
      }
    }
    if (near_count_ > 0) {
      // The occupancy mask names the first nonempty bucket at or after the
      // floor directly: rotate so the floor's bucket is bit 0 and count
      // trailing zeros — one probe, no bucket scan.
      const auto base = static_cast<std::uint32_t>(floor_ % kWindow);
      const std::uint64_t rot = std::rotr(occ_, static_cast<int>(base));
      const std::uint64_t c =
          floor_ + static_cast<std::uint32_t>(std::countr_zero(rot));
      if (c < best_key) {
        const std::uint64_t* bkt = bucket(c);
        for (std::uint32_t w = 0; w < words_; ++w) {
          if (bkt[w] == 0) continue;
          best_key = c;
          best_src =
              w * 64 + static_cast<std::uint32_t>(std::countr_zero(bkt[w]));
          break;
        }
      }
    }
    return {best_key, best_src};
  }

  void clear_bit(std::uint32_t source) {
    const std::uint32_t w = source / 64;
    const std::uint64_t bit = 1ull << (source % 64);
    if ((far_[w] & bit) != 0) {
      far_[w] &= ~bit;
      --far_count_;
    } else {
      std::uint64_t* bkt = bucket(key_[source]);
      bkt[w] &= ~bit;
      --near_count_;
      bool bucket_empty = true;
      for (std::uint32_t i = 0; i < words_; ++i) {
        if (bkt[i] != 0) {
          bucket_empty = false;
          break;
        }
      }
      if (bucket_empty) occ_ &= ~(1ull << (key_[source] % kWindow));
    }
    --size_;
  }

  std::uint32_t words_;               // bitmask words per bucket
  std::uint32_t size_ = 0;            // present sources
  std::uint32_t near_count_ = 0;      // entries inside [floor, floor+kWindow)
  std::uint32_t far_count_ = 0;       // entries outside the window
  std::vector<std::uint64_t> key_;    // source -> scheduled cycle (kAbsent)
  std::vector<std::uint64_t> ring_;   // kWindow buckets × words_ bitmasks
  std::vector<std::uint64_t> far_;    // out-of-window source bitmask
  std::uint64_t occ_ = 0;             // bit c%kWindow set <=> bucket nonempty
  std::uint64_t floor_ = 0;
};

}  // namespace syncpat::core

#include "core/processor.hpp"

#include "core/simulator.hpp"
#include "sync/scheme.hpp"
#include "trace/address_map.hpp"
#include "util/assert.hpp"

namespace syncpat::core {

using bus::StallCause;
using bus::Transaction;
using bus::TxnKind;
using cache::AccessClass;
using trace::Event;
using trace::Op;

Processor::Processor(std::uint32_t id, trace::TraceSource& source,
                     cache::Cache& cache, bus::BusInterface& iface, Simulator& sim)
    : id_(id), source_(source), cache_(cache), iface_(iface), sim_(sim) {
  has_cur_ = source_.next(cur_);
  if (has_cur_) {
    gap_left_ = cur_.gap;
  } else {
    state_ = ProcState::kDone;
    stats_.completion_cycle = 0;
  }
}

bool Processor::drain_pending() {
  while (!pending_.empty()) {
    if (!iface_.enqueue(pending_.front())) return false;
    pending_.pop_front();
  }
  return true;
}

void Processor::count_stall_cycle() {
  switch (state_) {
    case ProcState::kWaitMem:
      if (wait_cause_ == StallCause::kLockWait) {
        ++stats_.stall_lock;
      } else {
        ++stats_.stall_cache;
      }
      break;
    case ProcState::kWaitLock:
    case ProcState::kSpin:
      ++stats_.stall_lock;
      break;
    case ProcState::kWaitFence:
      ++stats_.stall_fence;
      break;
    case ProcState::kStallStructural:
      ++stats_.stall_cache;
      break;
    default:
      return;  // kRunning/kDone: nothing counted, nothing charged
  }
  if (mx_ != nullptr) {
    const obs::StallCat cat = classify_wait_cycle();
    mx_->attr.charge(cat);
    resume_cat_ = cat;
  }
}

obs::StallCat Processor::classify_wait_cycle() const {
  switch (state_) {
    case ProcState::kWaitMem: {
      const Transaction* t = wait_txn_;
      if (t == nullptr) return obs::StallCat::kBusTransfer;
      // A barrier arrival's fetch&increment is barrier time, and any access
      // on behalf of a contended lock is lock-wait time, whatever machine
      // phase the transaction is in; otherwise charge by where the
      // transaction actually is this cycle.
      if (t->lock_step == sync::kStepBarrier) {
        return obs::StallCat::kBarrierWait;
      }
      if (wait_cause_ == StallCause::kLockWait) {
        return obs::StallCat::kLockQueuedWait;
      }
      if (t->coherence_refill) return obs::StallCat::kInvalidationRefill;
      switch (t->phase) {
        case bus::TxnPhase::kQueued:
          return obs::StallCat::kBusArbitration;
        case bus::TxnPhase::kOnBusReq:
        case bus::TxnPhase::kOnBusResp:
        case bus::TxnPhase::kDone:
          return obs::StallCat::kBusTransfer;
        case bus::TxnPhase::kInMemory:
        case bus::TxnPhase::kMemOutput:
          // Under the DSM model the whole memory wait of a remote-home
          // access is charged to remote-access (the node hop dominates and
          // the split would be arbitrary); local accesses and the bus model
          // stay plain memory latency.
          return t->dsm_extra_cycles > 0 ? obs::StallCat::kRemoteAccess
                                         : obs::StallCat::kMemoryLatency;
      }
      return obs::StallCat::kBusTransfer;
    }
    case ProcState::kWaitLock:
      return wait_is_barrier_ ? obs::StallCat::kBarrierWait
                              : obs::StallCat::kLockQueuedWait;
    case ProcState::kSpin:
      return obs::StallCat::kLockSpin;
    case ProcState::kWaitFence:
      // Weak ordering's sync-point drain: time spent emptying the write
      // buffer and outstanding accesses.
      return obs::StallCat::kWriteBufferFull;
    case ProcState::kStallStructural:
      return obs::StallCat::kWriteBufferFull;
    default:
      return obs::StallCat::kCompute;  // unreachable: callers gate on state
  }
}

void Processor::note_wait_entered() {
  if (mx_ != nullptr) resume_cat_ = classify_wait_cycle();
}

void Processor::tick() {
  ticked_cycle_ = sim_.now();
  if (state_ == ProcState::kDone) {
    drain_pending();  // trailing buffered writes still drain to the bus
    return;
  }
  drain_pending();

  switch (state_) {
    case ProcState::kRunning:
      if (gap_left_ > 0) {
        ++stats_.work_cycles;
        if (mx_ != nullptr) {
          mx_->attr.charge(obs::StallCat::kCompute);
          resume_cat_ = obs::StallCat::kCompute;
        }
        --gap_left_;
        if (gap_left_ > 0) return;
        issue_loop();
        return;
      }
      // Resume/retry cycle (a wake-up re-issuing the current reference or a
      // zero-gap event after a miss): no work executes this cycle, so it is
      // accounted as a stall — every live cycle is work or stall.  The
      // attribution charges it to the wait that caused the resume.
      ++stats_.stall_cache;
      if (mx_ != nullptr) mx_->attr.charge(resume_cat_);
      issue_loop();
      return;
    case ProcState::kStallStructural:
      count_stall_cycle();
      if (drain_pending()) {
        state_ = ProcState::kRunning;
        issue_loop();
        // A failed retry (e.g., cache set still fully pending) returns to
        // kStallStructural inside issue_loop; the stall was already counted.
      }
      return;
    case ProcState::kWaitFence:
      count_stall_cycle();  // the drain's last cycle is still fence time
      if (!fence_pending()) {
        state_ = ProcState::kRunning;
        issue_loop();  // re-issues the pending lock event
      }
      return;
    case ProcState::kWaitMem:
    case ProcState::kWaitLock:
    case ProcState::kSpin:
      count_stall_cycle();
      return;
    case ProcState::kDone:
      return;
  }
}

std::uint64_t Processor::cycles_until_next_event() const {
  switch (state_) {
    case ProcState::kRunning:
      // The tick that brings gap_left_ to 0 runs issue_loop; every earlier
      // tick only counts a work cycle.  gap 0 means a resume/retry issues on
      // the very next tick.
      return gap_left_ > 0 ? gap_left_ : 1;
    case ProcState::kSpin:
    case ProcState::kWaitLock:
      // Woken only by an invalidation, timer, or hand-off — all external.
      return kNever;
    case ProcState::kDone:
      // A finished trace only drains trailing buffered writes, and those are
      // transactions, which a quiescent machine has none of.
      return pending_.empty() ? kNever : 1;
    case ProcState::kWaitMem:
    case ProcState::kStallStructural:
    case ProcState::kWaitFence:
      // These always hold (or wait on) live transactions or re-check state
      // next tick; a quiescent machine resolves them within one cycle.
      return 1;
  }
  return 1;
}

void Processor::skip_cycles(std::uint64_t cycles) {
  switch (state_) {
    case ProcState::kRunning:
      // Mirrors tick(): one work cycle per quiet cycle.  The caller skips at
      // most gap_left_ - 1 cycles, so the issuing tick still runs live.
      SYNCPAT_ASSERT(gap_left_ > cycles);
      stats_.work_cycles += cycles;
      gap_left_ -= cycles;
      if (mx_ != nullptr) {
        mx_->attr.charge(obs::StallCat::kCompute, cycles);
        resume_cat_ = obs::StallCat::kCompute;
      }
      break;
    case ProcState::kSpin:
    case ProcState::kWaitLock:
      // Mirrors count_stall_cycle() for these states.
      stats_.stall_lock += cycles;
      if (mx_ != nullptr) {
        const obs::StallCat cat = classify_wait_cycle();
        mx_->attr.charge(cat, cycles);
        resume_cat_ = cat;
      }
      break;
    case ProcState::kDone:
      break;
    default:
      SYNCPAT_ASSERT_MSG(false, "skip_cycles on a non-quiescent processor state");
  }
}

void Processor::settle(std::uint64_t cycles, std::uint64_t through_cycle) {
  ticked_cycle_ = through_cycle;
  switch (state_) {
    case ProcState::kRunning:
      // Mirrors tick()'s gap countdown; the issuing tick itself always runs
      // live (the DES core schedules it as this processor's due event).
      SYNCPAT_ASSERT(gap_left_ > cycles);
      stats_.work_cycles += cycles;
      gap_left_ -= static_cast<std::uint32_t>(cycles);
      if (mx_ != nullptr) {
        mx_->attr.charge(obs::StallCat::kCompute, cycles);
        resume_cat_ = obs::StallCat::kCompute;
      }
      break;
    case ProcState::kWaitMem: {
      // Mirrors count_stall_cycle(): the wait's classification is frozen
      // between machine events (the simulator settles before every phase
      // change of wait_txn_, and the one un-touched transition — memory
      // service to memory output — maps to the same category).
      if (wait_cause_ == StallCause::kLockWait) {
        stats_.stall_lock += cycles;
      } else {
        stats_.stall_cache += cycles;
      }
      if (mx_ != nullptr) {
        const obs::StallCat cat = classify_wait_cycle();
        mx_->attr.charge(cat, cycles);
        resume_cat_ = cat;
      }
      break;
    }
    case ProcState::kSpin:
    case ProcState::kWaitLock: {
      stats_.stall_lock += cycles;
      if (mx_ != nullptr) {
        const obs::StallCat cat = classify_wait_cycle();
        mx_->attr.charge(cat, cycles);
        resume_cat_ = cat;
      }
      break;
    }
    case ProcState::kDone:
      SYNCPAT_ASSERT(pending_.empty());
      break;
    case ProcState::kStallStructural:
    case ProcState::kWaitFence:
      SYNCPAT_ASSERT_MSG(false, "settle on a never-lazy processor state");
  }
}

bool Processor::fence_pending() const {
  return !iface_.empty() || !pending_.empty() ||
         sim_.outstanding_fence(id_) > 0;
}

void Processor::issue_loop() {
  while (state_ == ProcState::kRunning) {
    SYNCPAT_ASSERT(gap_left_ == 0);
    if (!drain_pending()) {
      state_ = ProcState::kStallStructural;
      note_wait_entered();
      return;
    }
    if (!has_cur_) {
      state_ = ProcState::kDone;
      stats_.completion_cycle = sim_.now();
      return;
    }
    const Event e = cur_;
    const IssueResult r = try_issue(e);
    if (r == IssueResult::kStalled) return;
    if (r == IssueResult::kAdvance) advance_after_event();
    // kSelfManaged: the lock scheme advanced us (or changed state, ending
    // the loop via the while condition).
    if (state_ == ProcState::kRunning && gap_left_ > 0) return;
  }
}

void Processor::advance_after_event() {
  has_cur_ = source_.next(cur_);
  if (!has_cur_) {
    state_ = ProcState::kDone;
    stats_.completion_cycle = sim_.now();
    if (ticked_cycle_ != sim_.now()) {
      // Pre-tick wake-up (a memory-absorbed write or a retried fill finalizes
      // before processors tick in Simulator::step).  Mid-trace the woken
      // processor counts this cycle as work or stall at its own tick, but the
      // trace just ended, so that tick will see kDone and count nothing —
      // attribute the final waited cycle here to keep the identity
      // work + stalls == completion_cycle exact.
      if (wait_cause_ == bus::StallCause::kLockWait) {
        ++stats_.stall_lock;
      } else {
        ++stats_.stall_cache;
      }
      if (mx_ != nullptr) mx_->attr.charge(resume_cat_);
    }
    gap_left_ = 0;
    return;
  }
  gap_left_ = cur_.gap;
}

Processor::IssueResult Processor::try_issue(const Event& e) {
  if (trace::is_sync_op(e.op)) return issue_lock_op(e);
  return issue_mem_ref(e);
}

Processor::IssueResult Processor::issue_lock_op(const Event& e) {
  // A fenced sync re-issues after the drain; count it once.
  if (!resuming_sync_) ++stats_.syncs;
  if (iface_.model() == bus::ConsistencyModel::kWeak && fence_pending()) {
    if (!resuming_sync_) ++stats_.syncs_with_pending;
    resuming_sync_ = true;
    state_ = ProcState::kWaitFence;
    note_wait_entered();
    return IssueResult::kStalled;
  }
  resuming_sync_ = false;
  const std::uint32_t lock_line = cache_.config().line_addr(e.addr);
  switch (e.op) {
    case Op::kLockAcq:
      sim_.begin_lock_acquire(id_, lock_line);
      break;
    case Op::kLockRel:
      sim_.begin_lock_release(id_, lock_line);
      break;
    case Op::kBarrier:
      sim_.barrier_arrive(id_, lock_line);
      break;
    default:
      SYNCPAT_ASSERT(false);
  }
  return IssueResult::kSelfManaged;
}

Processor::IssueResult Processor::issue_mem_ref(const Event& e) {
  const std::uint32_t line = cache_.config().line_addr(e.addr);
  const AccessClass cls = e.op == Op::kIFetch  ? AccessClass::kIFetch
                          : e.op == Op::kLoad ? AccessClass::kRead
                                              : AccessClass::kWrite;

  const bool weak = iface_.model() == bus::ConsistencyModel::kWeak;
  const bool write_through_store =
      cls == AccessClass::kWrite &&
      sim_.config().write_policy == cache::WritePolicy::kWriteThrough;

  // One tag lookup covers both the in-flight-fill check and the hit/miss
  // classification (write-through stores keep their own counting rules and
  // still need the explicit fill-in-flight probe first).
  cache::AccessResult res;
  if (write_through_store) {
    res.pending = cache_.state(e.addr) == cache::LineState::kPending;
  } else {
    res = cache_.access_or_pending(e.addr, cls);
  }

  // A line with a fill already in flight: merge or wait.
  if (res.pending) {
    Transaction* inflight = sim_.find_proc_txn(id_, line);
    SYNCPAT_ASSERT_MSG(inflight != nullptr,
                       "pending line without an in-flight transaction");
    if (cls == AccessClass::kWrite && inflight->kind == TxnKind::kReadX) {
      ++stats_.merged_writes;  // store coalesces into the ownership fill
      return IssueResult::kAdvance;
    }
    inflight->requester_waiting = true;
    wait_txn_ = inflight;
    wait_mode_ = WaitMode::kRefRetry;
    wait_cause_ = StallCause::kCacheMiss;
    state_ = ProcState::kWaitMem;
    note_wait_entered();
    return IssueResult::kStalled;
  }

  // Write-through cache: every store is a one-word memory write on the bus;
  // no line is dirtied and a miss allocates nothing (no-write-allocate).
  if (write_through_store) {
    cache_.access_write_through(e.addr);
    if (Transaction* existing = sim_.find_proc_txn(id_, line);
        existing != nullptr && existing->kind == TxnKind::kWriteThrough) {
      // The previous store to this line is still queued; the words coalesce
      // in the buffer entry (a common write-buffer optimization).
      ++stats_.merged_writes;
      return IssueResult::kAdvance;
    }
    Transaction* txn =
        sim_.make_txn(TxnKind::kWriteThrough, line,
                      static_cast<std::int32_t>(id_),
                      weak ? StallCause::kNone : StallCause::kCacheMiss,
                      /*fills_line=*/false);
    pending_.push_back(txn);
    if (!weak) {
      txn->requester_waiting = true;
      wait_txn_ = txn;
      wait_mode_ = WaitMode::kRefSatisfied;
      wait_cause_ = StallCause::kCacheMiss;
      state_ = ProcState::kWaitMem;
      note_wait_entered();
      return IssueResult::kStalled;
    }
    return IssueResult::kAdvance;
  }

  if (res.hit && !res.needs_upgrade) return IssueResult::kAdvance;

  if (res.needs_upgrade) {
    // Write hit on Shared: the invalidation must perform first.
    if (Transaction* existing = sim_.find_proc_txn(id_, line);
        existing != nullptr && existing->is_exclusive_request()) {
      return IssueResult::kAdvance;  // piggyback on the queued upgrade (WO)
    }
    Transaction* txn =
        sim_.make_txn(TxnKind::kUpgrade, line, static_cast<std::int32_t>(id_),
                      StallCause::kCacheMiss, /*fills_line=*/false);
    pending_.push_back(txn);
    if (!weak) {
      txn->requester_waiting = true;
      wait_txn_ = txn;
      wait_mode_ = WaitMode::kRefSatisfied;
      wait_cause_ = StallCause::kCacheMiss;
      state_ = ProcState::kWaitMem;
      note_wait_entered();
      return IssueResult::kStalled;
    }
    return IssueResult::kAdvance;
  }

  // Miss: reserve a way up front so the fill always has a home, issuing the
  // victim's write-back first.
  const cache::Cache::AllocateResult alloc = cache_.allocate(line);
  if (!alloc.ok) {
    // Every way in the set is awaiting a fill; retry next cycle.
    state_ = ProcState::kStallStructural;
    note_wait_entered();
    return IssueResult::kStalled;
  }
  if (alloc.writeback_line.has_value()) {
    Transaction* wb =
        sim_.make_txn(TxnKind::kWriteBack, *alloc.writeback_line,
                      static_cast<std::int32_t>(id_), StallCause::kNone,
                      /*fills_line=*/false);
    pending_.push_back(wb);
  }

  const bool is_write = cls == AccessClass::kWrite;
  const bool stalls = !weak || !is_write;
  Transaction* txn = sim_.make_txn(
      is_write ? TxnKind::kReadX : TxnKind::kRead, line,
      static_cast<std::int32_t>(id_),
      stalls ? StallCause::kCacheMiss : StallCause::kNone, /*fills_line=*/true);
  // Metrics: a fetch of a line a remote processor invalidated away from us
  // is a coherence refill (the invalidation marker is consumed here).
  if (mx_ != nullptr && mx_->invalidated_lines.erase(line) > 0) {
    txn->coherence_refill = true;
  }
  pending_.push_back(txn);
  if (stalls) {
    txn->requester_waiting = true;
    wait_txn_ = txn;
    wait_mode_ = WaitMode::kRefSatisfied;
    wait_cause_ = StallCause::kCacheMiss;
    state_ = ProcState::kWaitMem;
    note_wait_entered();
    return IssueResult::kStalled;
  }
  return IssueResult::kAdvance;
}

void Processor::on_txn_complete(Transaction* txn) {
  SYNCPAT_ASSERT(state_ == ProcState::kWaitMem && txn == wait_txn_);
  wait_txn_ = nullptr;
  state_ = ProcState::kRunning;
  switch (wait_mode_) {
    case WaitMode::kRefSatisfied:
      advance_after_event();
      break;
    case WaitMode::kRefRetry:
      // gap_left_ is already 0: the next tick re-runs issue_loop on the
      // same event.
      break;
    case WaitMode::kLockStep:
      sim_.lock_step_complete(id_, txn->line_addr, txn->lock_step);
      break;
  }
}

void Processor::replace_wait_txn(Transaction* from, Transaction* to) {
  if (wait_txn_ == from) wait_txn_ = to;
}

void Processor::stall_on_txn(Transaction* txn) {
  SYNCPAT_ASSERT(state_ == ProcState::kRunning || state_ == ProcState::kSpin ||
                 state_ == ProcState::kWaitLock ||
                 state_ == ProcState::kWaitMem);
  wait_txn_ = txn;
  wait_mode_ = WaitMode::kLockStep;
  wait_cause_ = txn->stall_cause;
  state_ = ProcState::kWaitMem;
  note_wait_entered();
}

void Processor::enter_lock_wait(bool spinning, bool barrier) {
  state_ = spinning ? ProcState::kSpin : ProcState::kWaitLock;
  wait_cause_ = StallCause::kLockWait;  // for the end-of-trace wake attribution
  wait_is_barrier_ = barrier;
  note_wait_entered();
}

void Processor::lock_acquired() {
  state_ = ProcState::kRunning;
  wait_txn_ = nullptr;
  advance_after_event();
}

void Processor::lock_release_done() {
  state_ = ProcState::kRunning;
  wait_txn_ = nullptr;
  advance_after_event();
}

}  // namespace syncpat::core

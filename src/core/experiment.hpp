// Experiment runner: the glue the bench harness uses to regenerate the
// paper's tables.  Runs a benchmark profile under a machine configuration,
// returning both the ideal analysis (Tables 1/2) and the simulation result
// (Tables 3-8).
#pragma once

#include <cstdint>
#include <vector>

#include "core/machine_config.hpp"
#include "core/results.hpp"
#include "trace/analyzer.hpp"
#include "workload/profile.hpp"

namespace syncpat::core {

struct ExperimentOutcome {
  trace::IdealProgramStats ideal;
  SimulationResult sim;
};

/// Runs `profile` (optionally length-scaled by `scale`) on the machine.
[[nodiscard]] ExperimentOutcome run_experiment(const MachineConfig& config,
                                               const workload::BenchmarkProfile& profile,
                                               std::uint64_t scale = 1);

/// Ideal analysis only (no simulation) — Tables 1 and 2.
[[nodiscard]] trace::IdealProgramStats run_ideal(
    const workload::BenchmarkProfile& profile, std::uint64_t scale = 1);

/// Reads the trace-length scale from the SYNCPAT_SCALE environment variable;
/// defaults to `fallback` (benches use 8 so the full suite runs in seconds;
/// SYNCPAT_SCALE=1 reproduces paper-scale trace lengths).
[[nodiscard]] std::uint64_t scale_from_env(std::uint64_t fallback);

}  // namespace syncpat::core

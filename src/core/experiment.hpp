// Experiment runner: the glue the bench harness uses to regenerate the
// paper's tables.  Runs a benchmark profile under a machine configuration,
// returning both the ideal analysis (Tables 1/2) and the simulation result
// (Tables 3-8).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/machine_config.hpp"
#include "core/results.hpp"
#include "obs/lock_timeline.hpp"
#include "obs/metrics.hpp"
#include "trace/analyzer.hpp"
#include "workload/profile.hpp"

namespace syncpat::core {

/// Outcome of the opt-in InvariantChecker (all zeros when it was disabled).
struct InvariantReport {
  bool enabled = false;
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  std::vector<std::string> samples;  // bounded, see InvariantConfig
};

struct ExperimentOutcome {
  trace::IdealProgramStats ideal;
  SimulationResult sim;
  InvariantReport invariants;
  /// Filled only when config.trace.enabled: the complete Chrome trace-event
  /// JSON document and the per-lock hand-off timeline for this cell.  Built
  /// inside the cell's run, so grid results are byte-identical whatever the
  /// engine's job count.
  std::string trace_json;
  obs::LockTimeline lock_timeline;
  /// Filled only when config.metrics.enabled: the finalized registry (kept
  /// alive past the simulator) and its JSON rendering.  Rendered inside the
  /// cell's run like trace_json, so metrics bytes are identical whatever the
  /// engine's job count (test-enforced).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::string metrics_json;
};

/// Runs `profile` (optionally length-scaled by `scale`) on the machine.
[[nodiscard]] ExperimentOutcome run_experiment(const MachineConfig& config,
                                               const workload::BenchmarkProfile& profile,
                                               std::uint64_t scale = 1);

/// Ideal analysis only (no simulation) — Tables 1 and 2.
[[nodiscard]] trace::IdealProgramStats run_ideal(
    const workload::BenchmarkProfile& profile, std::uint64_t scale = 1);

/// Reads the trace-length scale from the SYNCPAT_SCALE environment variable;
/// defaults to `fallback` when unset (benches use 8 so the full suite runs in
/// seconds; SYNCPAT_SCALE=1 reproduces paper-scale trace lengths).  Throws
/// std::invalid_argument when the variable is set but empty, non-numeric,
/// zero, negative, or has trailing junk.
[[nodiscard]] std::uint64_t scale_from_env(std::uint64_t fallback);

/// Strict positive-integer environment knob (the SYNCPAT_SCALE policy,
/// reusable: SYNCPAT_BENCH_REPS uses it).  Returns `fallback` when `var` is
/// unset; throws std::invalid_argument when it is set but empty, non-numeric,
/// zero, negative, or has trailing junk — never silently defaults.
[[nodiscard]] std::uint64_t positive_u64_from_env(const char* var,
                                                  std::uint64_t fallback);

}  // namespace syncpat::core

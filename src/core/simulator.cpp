#include "core/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "core/invariant_checker.hpp"
#include "util/assert.hpp"

namespace syncpat::core {

namespace {

[[nodiscard]] bool is_fifo_scheme(sync::SchemeKind kind) {
  // Schemes whose grant order must follow the bus order of the initial
  // atomic acquire access.  kQueuingExact is excluded: its two-access
  // enqueue admits a benign reordering window (§2.4).
  return kind == sync::SchemeKind::kQueuing ||
         kind == sync::SchemeKind::kTicket ||
         kind == sync::SchemeKind::kAnderson ||
         kind == sync::SchemeKind::kMcs ||
         kind == sync::SchemeKind::kClh;
}

}  // namespace

using bus::StallCause;
using bus::Transaction;
using bus::TxnKind;
using bus::TxnPhase;

Simulator::Simulator(const MachineConfig& config, trace::ProgramTrace& program)
    : cfg_(config),
      program_name_(program.name),
      bus_(bus::BusConfig{
          .ports = static_cast<std::uint32_t>(program.num_procs()) + 1,
          .request_cycles = 1,
          .data_cycles = config.line_transfer_cycles()}),
      memory_(config.memory),
      des_due_(static_cast<std::uint32_t>(program.num_procs())) {
  SYNCPAT_ASSERT(program.num_procs() > 0);
  discipline_ = bus::make_discipline(
      resolve_bus_discipline_from_env(cfg_.bus_discipline), bus_.config().ports);
  arb_order_.resize(bus_.config().ports);
  arb_req_.resize(bus_.config().ports);
  mem_model_ = resolve_mem_model_from_env(cfg_.model);
  SYNCPAT_ASSERT(cfg_.dsm.nodes > 0);
  dsm_procs_per_node_ =
      (static_cast<std::uint32_t>(program.num_procs()) + cfg_.dsm.nodes - 1) /
      cfg_.dsm.nodes;
  program.reset_all();
  const auto nprocs = static_cast<std::uint32_t>(program.num_procs());
  spin_line_.assign(nprocs, 0);
  outstanding_fence_.assign(nprocs, 0);
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    caches_.push_back(std::make_unique<cache::Cache>(cfg_.cache));
    ifaces_.push_back(std::make_unique<bus::BusInterface>(
        p, cfg_.cache_bus_buffer_depth, cfg_.consistency));
  }
  scheme_ = sync::make_scheme(cfg_.lock_scheme, *this, lock_stats_,
                              cfg_.cache.line_bytes);
  if (cfg_.invariants.enabled) {
    checker_ = std::make_unique<InvariantChecker>(
        cfg_.invariants, is_fifo_scheme(cfg_.lock_scheme), nprocs);
  }
  if (cfg_.metrics.enabled) {
    metrics_ = std::make_shared<obs::MetricsRegistry>(cfg_.metrics, nprocs);
    lock_stats_.set_metrics(metrics_.get());
  }
  if (cfg_.trace.enabled) {
    recorder_ = std::make_unique<obs::EventRecorder>(cfg_.trace);
    if (recorder_->wants(obs::category::kLocks)) {
      lock_stats_.set_recorder(recorder_.get());
    }
    if (recorder_->wants(obs::category::kCoherence)) {
      cache_hook_ctx_.resize(nprocs);
      for (std::uint32_t p = 0; p < nprocs; ++p) {
        cache_hook_ctx_[p] = CacheHookCtx{this, p};
        caches_[p]->set_transition_hook(&Simulator::cache_transition_hook,
                                        &cache_hook_ctx_[p]);
      }
    }
  }
  // One observer slot: both consumers dispatch inside on_occupied.
  if (metrics_ != nullptr ||
      (recorder_ != nullptr && recorder_->wants(obs::category::kBus))) {
    bus_.set_observer(this);
  }
  EngineSelection sel = resolve_engine_from_env(cfg_.engine, cfg_.fast_forward);
  if (checker_ != nullptr) {
    // The checker observes every cycle: force the per-cycle tick loop.
    sel.engine = EngineKind::kTick;
    sel.fast_forward = false;
  }
  engine_ = sel.engine;
  ff_enabled_ = engine_ == EngineKind::kTick && sel.fast_forward;
  ff_stats_.enabled = ff_enabled_;
  des_stats_.enabled = engine_ == EngineKind::kDes;
  ff_next_issue_.resize(nprocs);
  ff_acct_.resize(nprocs);
  ff_due_.reserve(nprocs);
  des_acct_.assign(nprocs, 0);
  des_words_ = (nprocs + 63) / 64;
  des_due_now_.assign(des_words_, 0);
  des_dirty_.assign(des_words_, 0);
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    procs_.push_back(std::make_unique<Processor>(
        p, *program.per_proc[p], *caches_[p], *ifaces_[p], *this));
    if (metrics_ != nullptr) procs_[p]->set_metrics(&metrics_->proc(p));
  }
}

Simulator::~Simulator() = default;

bool Simulator::all_done() const {
  return std::all_of(procs_.begin(), procs_.end(),
                     [](const auto& p) { return p->done(); });
}

SimulationResult Simulator::run() {
  if (engine_ == EngineKind::kDes) {
    run_des();  // self-times into Phase::kEventLoop when a profiler is attached
  } else if (self_prof_ != nullptr) {
    run_loop_profiled();
  } else if (ff_enabled_) {
    while (!all_done()) {
      fast_forward();
      // The run-ahead loop may have executed the final processor's completing
      // tick itself; stepping once more would move the clock past it.
      if (all_done()) break;
      step();
    }
  } else {
    while (!all_done()) {
      step();
    }
  }
  if (checker_) {
    if (self_prof_ != nullptr) {
      const std::int64_t t0 = obs::SelfProfiler::now_ns();
      checker_->on_run_end(*this);
      self_prof_->charge(obs::SelfProfiler::Phase::kInvariantCheck,
                         obs::SelfProfiler::now_ns() - t0);
    } else {
      checker_->on_run_end(*this);
    }
  }
  if (recorder_) {
    if (self_prof_ != nullptr) {
      const std::int64_t t0 = obs::SelfProfiler::now_ns();
      recorder_->flush();
      self_prof_->charge(obs::SelfProfiler::Phase::kTraceEmit,
                         obs::SelfProfiler::now_ns() - t0);
    } else {
      recorder_->flush();
    }
  }
  if (metrics_) finalize_metrics();
  return collect_results();
}

void Simulator::run_loop_profiled() {
  using Phase = obs::SelfProfiler::Phase;
  if (ff_enabled_) {
    while (!all_done()) {
      {
        const std::int64_t t0 = obs::SelfProfiler::now_ns();
        const std::uint64_t before = cycle_;
        fast_forward();
        // A call that moved the clock is run-ahead; one that bailed without
        // advancing is the quiescence probe's cost.
        self_prof_->charge(
            cycle_ > before ? Phase::kFastForward : Phase::kQuiescenceProbe,
            obs::SelfProfiler::now_ns() - t0);
      }
      if (all_done()) break;
      const std::int64_t t0 = obs::SelfProfiler::now_ns();
      step();
      self_prof_->charge(Phase::kDenseTick, obs::SelfProfiler::now_ns() - t0);
    }
  } else {
    while (!all_done()) {
      const std::int64_t t0 = obs::SelfProfiler::now_ns();
      step();
      self_prof_->charge(Phase::kDenseTick, obs::SelfProfiler::now_ns() - t0);
    }
  }
}

void Simulator::finalize_metrics() {
  std::uint64_t run_time = 0;
  for (const auto& p : procs_) {
    run_time = std::max(run_time, p->stats().completion_cycle);
  }
  metrics_->finalize(run_time);
  metrics_->count("bus.busy_cycles", bus_.busy_cycles());
  metrics_->count("bus.total_cycles", bus_.total_cycles());
  metrics_->count("mem.requests_served", memory_.requests_served());
  metrics_->count("mem.busy_cycles", memory_.busy_cycles());
  metrics_->count("barriers.completed", barriers_completed_);
}

bool Simulator::quiescent() const {
  return active_.empty() && bus_.idle() && memory_.quiescent() &&
         line_inflight_.empty() && fill_retry_.empty();
}

// Effectiveness probe, deterministic in simulation state.  On issue-dense
// stretches (several references issuing on most cycles) quiet cycles are too
// rare to pay for the run-ahead bookkeeping, so a window that skipped fewer
// than ~6% of its cycles pauses the engine, with exponential backoff on
// consecutive unproductive windows.  Probing resumes after each pause, so a
// later quiescent phase (contention parking processors in cached spins, a
// coarse-grained region) re-engages the fast path within one backoff period.
void Simulator::ff_probe() {
  if (ff_paused_until_ != 0) {
    // A pause just expired: open a fresh probe window.
    ff_paused_until_ = 0;
    ff_window_skip_base_ = ff_stats_.skipped_cycles;
    ff_eval_cycle_ = cycle_ + kFfEvalPeriod;
    return;
  }
  const std::uint64_t window_skipped =
      ff_stats_.skipped_cycles - ff_window_skip_base_;
  if (window_skipped * 16 < kFfEvalPeriod) {
    ++ff_stats_.probe_pauses;
    ff_paused_until_ = cycle_ + ff_pause_windows_ * kFfEvalPeriod;
    ff_eval_cycle_ = ff_paused_until_;
    if (ff_pause_windows_ < kFfMaxPauseWindows) ff_pause_windows_ *= 2;
  } else {
    ff_pause_windows_ = 1;
    ff_window_skip_base_ = ff_stats_.skipped_cycles;
    ff_eval_cycle_ = cycle_ + kFfEvalPeriod;
  }
}

void Simulator::fast_forward() {
  if (cycle_ >= ff_eval_cycle_) ff_probe();
  if (cycle_ < ff_paused_until_) return;
  if (!quiescent()) return;

  // First cycle the run-ahead loop must NOT execute itself: a backoff-timer
  // fire creates a transaction (step() runs it), and a runaway trace has to
  // trip step()'s max_cycles assert exactly as per-cycle stepping would.
  // After the previous step every timer satisfies fire_cycle > cycle_.
  std::uint64_t horizon = cfg_.max_cycles == Processor::kNever
                              ? Processor::kNever
                              : cfg_.max_cycles + 1;
  for (const Timer& t : timers_) horizon = std::min(horizon, t.fire_cycle);

  const auto nprocs = static_cast<std::uint32_t>(procs_.size());
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    const Processor& proc = *procs_[p];
    if (proc.state() == ProcState::kSpin &&
        !scheme_->spinner_skippable(p, spin_line_[p])) {
      return;  // scheme vetoes skipping this spinner: stay per-cycle
    }
    const std::uint64_t d = proc.cycles_until_next_event();
    if (d == 1 && proc.state() != ProcState::kRunning) {
      return;  // transient wait state: one per-cycle step resolves it
    }
    ff_next_issue_[p] = d == Processor::kNever ? Processor::kNever : cycle_ + d;
    ff_acct_[p] = cycle_;
  }

  // Event-driven loop: execute issuing ticks in global time order with the
  // real per-cycle machinery.  Every other phase of step() is a no-op on a
  // quiescent machine — nothing to retry or grant (a transaction created at
  // cycle T reaches its bus interface only at T + 1), an empty memory module
  // cannot change state, and no timer is due before `horizon` — so between
  // issuing ticks processors only burn bulk-accountable work/stall cycles.
  const std::uint64_t entry_cycle = cycle_;
  std::uint64_t executed = 0;
  for (;;) {
    // One pass: the earliest next-issue cycle and the processors due on it.
    std::uint64_t t_min = Processor::kNever;
    ff_due_.clear();
    for (std::uint32_t p = 0; p < nprocs; ++p) {
      const std::uint64_t v = ff_next_issue_[p];
      if (v > t_min) continue;
      if (v < t_min) {
        t_min = v;
        ff_due_.clear();
      }
      ff_due_.push_back(p);
    }

    if (t_min >= horizon) {
      // Nothing left to execute before the horizon.  Jump quietly: to one
      // cycle before a pending timer fire, or to max_cycles for a runaway
      // trace.  With neither — every processor event-driven and no timer
      // pending — this is a genuine deadlock: stay put so per-cycle stepping
      // reaches the progress watchdog's diagnostic.
      if (horizon <= cfg_.max_cycles) {
        cycle_ = horizon - 1;
      } else if (t_min != Processor::kNever) {
        cycle_ = cfg_.max_cycles;
      }
      break;
    }

    cycle_ = t_min;
    ++executed;
    for (const std::uint32_t p : ff_due_) {
      if (const std::uint64_t quiet = (t_min - 1) - ff_acct_[p]; quiet > 0) {
        procs_[p]->skip_cycles(quiet);
      }
      procs_[p]->tick();
      ff_acct_[p] = t_min;
    }
    // Processor ticks are the only thing that ran, and they can only alter
    // the rest of the machine by creating transactions — so active_ alone
    // decides whether the machine is still quiescent (cf. quiescent()).
    if (!active_.empty()) break;  // a transaction exists: step() takes over

    // Re-derive the ticked processors' next issuing cycle.  A tick that left
    // the machine quiescent ended in kRunning (pure hits), kDone, or a
    // no-traffic lock wait; anything else hands back to per-cycle stepping.
    bool bail = false;
    bool completed_trace = false;
    for (const std::uint32_t p : ff_due_) {
      const Processor& proc = *procs_[p];
      const std::uint64_t d = proc.cycles_until_next_event();
      if (proc.state() == ProcState::kRunning) {
        ff_next_issue_[p] = t_min + d;
      } else if (d == Processor::kNever) {
        if (proc.state() == ProcState::kSpin &&
            !scheme_->spinner_skippable(p, spin_line_[p])) {
          bail = true;
          break;
        }
        ff_next_issue_[p] = Processor::kNever;
        completed_trace |= proc.done();
      } else {
        bail = true;
        break;
      }
    }
    if (bail) break;
    // The completing tick of the final trace must be the last cycle of the
    // run: run() exits without another step, as per-cycle stepping does.
    if (completed_trace && all_done()) break;
  }

  // Settle: bring every processor's quiet bookkeeping and the bus's
  // utilization denominator up to the cycle the machine now stands at.
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    if (const std::uint64_t lag = cycle_ - ff_acct_[p]; lag > 0) {
      procs_[p]->skip_cycles(lag);
    }
  }
  if (cycle_ > entry_cycle) {
    bus_.advance_idle(cycle_ - entry_cycle);
    ++ff_stats_.jumps;
    ff_stats_.run_ahead_cycles += executed;
    ff_stats_.skipped_cycles += (cycle_ - entry_cycle) - executed;
    if (tracing(obs::category::kIdle)) {
      // One bulk span for the whole quiescent stretch, in place of the
      // per-cycle events that were never generated.
      recorder_->emit(obs::TraceEvent{entry_cycle, obs::EventKind::kIdleSpan,
                                      -1, 0, cycle_ - entry_cycle, executed});
    }
    // Fast-forward boundary: re-arm the watchdog scan so a stretch spanning
    // several check periods still records the bulk-accounted progress.
    check_progress();
  }
}

void Simulator::pre_proc_phases() {
  // 1. Fills that were waiting for a cache way.  The list is swapped into a
  // member scratch buffer and rebuilt in place (capacities ping-pong between
  // the two vectors), so the steady state allocates nothing; finalize() can
  // safely run mid-loop because nothing it reaches re-enters fill_retry_.
  if (!fill_retry_.empty()) {
    fill_retry_scratch_.clear();
    fill_retry_scratch_.swap(fill_retry_);
    for (Transaction* txn : fill_retry_scratch_) {
      if (fill_own(txn)) {
        finalize(txn);
      } else {
        fill_retry_.push_back(txn);
      }
    }
  }

  // 2. Memory.
  memory_.tick();
  if (Transaction* response = memory_.pending_response();
      response != nullptr && response->issued_cycle == 0) {
    // Stamp fresh output entries so they are not granted this same cycle
    // (the data is driven onto the bus the cycle after it leaves the
    // module, preserving the paper's 6-cycle uncontended miss).
    response->issued_cycle = cycle_;
  }
  memory_.drain_absorbed_into(absorbed_scratch_);
  for (Transaction* absorbed : absorbed_scratch_) {
    if (absorbed->requester_waiting ||
        (absorbed->requester >= 0 && !absorbed->is_lock_op &&
         absorbed->kind == TxnKind::kWriteThrough)) {
      finalize(absorbed);  // wakes the stalled processor, fence-decrements
    } else {
      retire(absorbed);
    }
  }

  // 2b. Backoff timers.  timers_due_ is member scratch (on_timer may push
  // new timers onto timers_, which must not invalidate this cycle's batch).
  if (!timers_.empty()) {
    timers_due_.clear();
    std::erase_if(timers_, [&](const Timer& t) {
      if (t.fire_cycle > cycle_) return false;
      timers_due_.push_back(t);
      return true;
    });
    for (const Timer& t : timers_due_) scheme_->on_timer(t.proc, t.line_addr);
  }
}

void Simulator::step() {
  ++cycle_;
  SYNCPAT_ASSERT_MSG(cycle_ <= cfg_.max_cycles,
                     "simulation exceeded max_cycles (runaway or deadlock)");

  // 1-2b. Deferred fills, memory, backoff timers.
  pre_proc_phases();

  // 3. Processors.
  for (auto& proc : procs_) proc->tick();

  // 4-5. Bus.
  arbitrate();
  if (Transaction* done = bus_.tick()) complete_bus(done);

  if (checker_) {
    if (self_prof_ != nullptr) {
      // Nested phase: the profiled loop times the whole step() as dense tick,
      // so move the checker's share into its own bucket (the compensating
      // entry adds no call count).
      const std::int64_t t0 = obs::SelfProfiler::now_ns();
      checker_->on_cycle(*this);
      const std::int64_t dt = obs::SelfProfiler::now_ns() - t0;
      self_prof_->charge(obs::SelfProfiler::Phase::kInvariantCheck, dt);
      self_prof_->charge(obs::SelfProfiler::Phase::kDenseTick, -dt, 0);
    } else {
      checker_->on_cycle(*this);
    }
  }
  // The watchdog scan walks every processor; a periodic check (plus one at
  // every fast-forward boundary) keeps the 500k-cycle deadlock diagnostic
  // while taking it off the per-cycle path.
  if ((cycle_ & (kProgressCheckPeriod - 1)) == 0) check_progress();
}

void Simulator::check_progress() {
  std::uint64_t marker = next_txn_id_;
  for (const auto& p : procs_) {
    marker += p->stats().work_cycles + p->stats().completion_cycle;
  }
  marker += lock_stats_.total().acquisitions;
  if (marker != progress_marker_) {
    progress_marker_ = marker;
    last_progress_cycle_ = cycle_;
  }
  if (cycle_ - last_progress_cycle_ >= 500'000) {
    std::fprintf(stderr, "deadlock diagnostic at cycle %llu:\n",
                 static_cast<unsigned long long>(cycle_));
    for (const auto& p : procs_) {
      std::fprintf(stderr,
                   "  proc %u state=%d work=%llu lockstall=%llu done=%d\n",
                   p->id(), static_cast<int>(p->state()),
                   static_cast<unsigned long long>(p->stats().work_cycles),
                   static_cast<unsigned long long>(p->stats().stall_lock),
                   p->done() ? 1 : 0);
    }
    std::fprintf(stderr, "  active txns=%zu line_inflight=%zu timers=%zu\n",
                 active_.size(), line_inflight_.size(), timers_.size());
    for (const auto& [line, b] : barriers_) {
      std::fprintf(stderr, "  barrier 0x%08x waiting=%zu\n", line,
                   b.waiting.size());
    }
    SYNCPAT_ASSERT_MSG(false, "no simulation progress for 500k cycles");
  }
}

// --------------------------------------------------------------------------
// Discrete-event core
//
// The DES engine runs the same five-phase cycle as step(), but only on
// cycles where something can happen (an "event cycle"), bulk-advancing the
// clock across the gaps.  Two mechanisms make this byte-identical to
// per-cycle ticking:
//
//   * The event-cycle set is conservative: des_next_event() includes every
//     cycle at which any phase of step() could act — processor due times
//     from the queue (issuing ticks, pending-buffer drains, fence/structural
//     re-checks every cycle), deferred fills, the memory module's next state
//     change, waiting memory responses, the bus tenure end, arbitration
//     opportunities while requests are queued, and backoff timers.  On every
//     other cycle, step() provably reduces to per-cycle bookkeeping.
//
//   * That bookkeeping is settled lazily, per processor: a processor whose
//     tick only counts a stall cycle (kWaitMem / kWaitLock / kSpin with the
//     scheme's consent) or does nothing (kDone) is parked out of the queue,
//     and its un-ticked cycles are booked in bulk — in its pre-mutation
//     state, with tick()'s exact accounting — the moment anything touches it
//     (des_touch at the top of every mutating service).  The settle boundary
//     tracks step()'s phase order, so a wake in phases 1-2b still yields the
//     same phase-3 tick this cycle, and a wake in phases 4-5 books this
//     cycle's stall exactly as the already-passed phase-3 tick would have.
//
// The bus and memory module advance in bulk over the gaps (their per-cycle
// work between events is pure busy/total accounting), so utilization
// denominators and busy counters match per-cycle ticking exactly.

void Simulator::des_settle(std::uint32_t proc, std::uint64_t through_cycle) {
  if (des_acct_[proc] >= through_cycle) return;
  procs_[proc]->settle(through_cycle - des_acct_[proc], through_cycle);
  des_acct_[proc] = through_cycle;
}

void Simulator::des_settle_all(std::uint64_t through_cycle) {
  for (std::uint32_t p = 0; p < procs_.size(); ++p) {
    des_settle(p, through_cycle);
  }
}

void Simulator::des_mark_dirty(std::uint32_t proc) {
  des_dirty_[proc / 64] |= 1ull << (proc % 64);
}

void Simulator::des_touch(std::uint32_t proc) {
  if (!des_active_) return;
  switch (des_phase_) {
    case DesPhase::kPreTick:
      // Before the phase-3 loop: book the pre-mutation stretch, then let the
      // processor take its regular tick this cycle (per-cycle stepping would
      // tick it at phase 3 after this mutation).
      des_settle(proc, cycle_ - 1);
      des_due_now_[proc / 64] |= 1ull << (proc % 64);
      break;
    case DesPhase::kProcTick:
      if (proc < des_cur_proc_) {
        // Its phase-3 slot already passed: per-cycle stepping ticked it this
        // cycle before the mutating processor, in pre-mutation state.
        des_settle(proc, cycle_);
      } else if (proc > des_cur_proc_) {
        // Its slot is still ahead: the loop will tick it post-mutation.
        des_settle(proc, cycle_ - 1);
        des_due_now_[proc / 64] |= 1ull << (proc % 64);
      }
      // proc == des_cur_proc_: live inside its own tick; nothing to settle.
      break;
    case DesPhase::kPostTick:
      // Phases 4-5: its phase-3 tick this cycle would have seen the
      // pre-mutation state.
      des_settle(proc, cycle_);
      break;
  }
  des_mark_dirty(proc);
}

void Simulator::des_reschedule(std::uint32_t proc) {
  std::uint64_t delta = procs_[proc]->next_due_delta();
  if (delta == Processor::kNever &&
      procs_[proc]->state() == ProcState::kSpin &&
      !scheme_->spinner_skippable(proc, spin_line_[proc])) {
    delta = 1;  // scheme vetoes lazy settling: tick this spinner every cycle
  }
  if (delta == Processor::kNever) {
    des_due_.cancel(proc);
  } else {
    des_due_.schedule(proc, cycle_ + delta);
  }
}

std::uint64_t Simulator::des_next_event() const {
  std::uint64_t t = des_due_.empty() ? Processor::kNever : des_due_.min_key();
  if (t <= cycle_ + 1) return cycle_ + 1;
  if (!fill_retry_.empty()) return cycle_ + 1;
  if (const std::uint32_t d = memory_.next_event_delta(); d > 0) {
    if (d == 1) return cycle_ + 1;
    t = std::min(t, cycle_ + d);
  }
  if (Transaction* r = memory_.pending_response();
      r != nullptr && r->issued_cycle == 0) {
    // A response that surfaced at the output-buffer front behind another one
    // is stamped by phase 2 of the next cycle, and that stamp is observable
    // (it feeds the discipline's grant-wait statistics), so the next cycle
    // is an event regardless of bus state.
    return cycle_ + 1;
  }
  if (bus_.free()) {
    // A grant can happen at the next arbitration: a stamped memory response
    // or any queued request makes the very next cycle an event.  (Whether
    // the grant actually succeeds — line in flight, memory buffer full — is
    // re-decided there, exactly as per-cycle stepping would.)
    // Responses and queued requests are transactions, so an empty active_
    // set rules both out without touching memory or the interfaces.
    if (!active_.empty()) {
      if (memory_.pending_response() != nullptr) return cycle_ + 1;
      for (const auto& iface : ifaces_) {
        if (!iface->empty()) return cycle_ + 1;
      }
    }
  } else {
    t = std::min(t, cycle_ + bus_.busy_remaining());
  }
  for (const Timer& timer : timers_) t = std::min(t, timer.fire_cycle);
  return t;
}

void Simulator::step_des() {
  ++cycle_;
  SYNCPAT_ASSERT_MSG(cycle_ <= cfg_.max_cycles,
                     "simulation exceeded max_cycles (runaway or deadlock)");
  ++des_stats_.stepped_cycles;
  des_due_.set_floor(cycle_);
  des_due_.take_due(cycle_, des_due_now_.data());

  des_phase_ = DesPhase::kPreTick;
  pre_proc_phases();

  // 3. Processors — only those due this cycle; everyone else's tick would be
  // pure bookkeeping, settled lazily at their next touch.  Touch hooks only
  // ever add bits at or above the running processor's id (a lower id's slot
  // has already passed), so taking the lowest set bit each round preserves
  // the tick loop's id order.
  des_phase_ = DesPhase::kProcTick;
  for (std::uint32_t w = 0; w < des_words_; ++w) {
    for (;;) {
      const std::uint64_t bits = des_due_now_[w];
      if (bits == 0) break;
      const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
      des_due_now_[w] = bits & (bits - 1);
      const std::uint32_t p = w * 64 + b;
      des_cur_proc_ = p;
      des_settle(p, cycle_ - 1);
      procs_[p]->tick();
      des_acct_[p] = cycle_;
      des_mark_dirty(p);
    }
  }

  // 4-5. Bus.
  des_phase_ = DesPhase::kPostTick;
  arbitrate();
  if (Transaction* done = bus_.tick()) complete_bus(done);

  // Every processor whose state this cycle touched gets a fresh due entry.
  for (std::uint32_t w = 0; w < des_words_; ++w) {
    std::uint64_t bits = des_dirty_[w];
    des_dirty_[w] = 0;
    while (bits != 0) {
      des_reschedule(w * 64 +
                     static_cast<std::uint32_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }

  // Watchdog: the tick loop checks on exact kProgressCheckPeriod multiples;
  // event cycles rarely land on one, so check at the first event cycle at or
  // past each boundary (the 500k-cycle deadlock threshold is unchanged).
  if (cycle_ >= des_next_progress_check_) {
    check_progress();
    des_next_progress_check_ =
        (cycle_ & ~(kProgressCheckPeriod - 1)) + kProgressCheckPeriod;
  }
}

void Simulator::run_des() {
  des_active_ = true;
  for (std::uint32_t p = 0; p < procs_.size(); ++p) {
    des_acct_[p] = cycle_;
    des_reschedule(p);
  }
  while (!all_done()) {
    const std::int64_t t0 =
        self_prof_ != nullptr ? obs::SelfProfiler::now_ns() : 0;
    std::uint64_t t = des_next_event();
    if (t == Processor::kNever) {
      // Genuine deadlock: nothing will ever act again.  Jump to where the
      // progress watchdog trips and let step_des reach its diagnostic, with
      // every processor settled so the dump shows accurate counters.
      des_settle_all(cycle_);
      t = std::max(cycle_ + 1, last_progress_cycle_ + 500'000);
    }
    if (t > cycle_ + 1) {
      // Advance to one cycle before the event; step_des executes the event
      // cycle itself.  A runaway trace clamps to max_cycles so the step's
      // bound assert fires exactly as per-cycle stepping's would.
      std::uint64_t target = t - 1;
      if (target > cfg_.max_cycles) target = cfg_.max_cycles;
      if (const std::uint64_t span = target - cycle_; span > 0) {
        bus_.free() ? bus_.advance_idle(span) : bus_.advance_busy(span);
        memory_.advance(span);
        cycle_ = target;
        ++des_stats_.spans;
        des_stats_.span_cycles += span;
      }
    }
    step_des();
    if (self_prof_ != nullptr) {
      self_prof_->charge(obs::SelfProfiler::Phase::kEventLoop,
                         obs::SelfProfiler::now_ns() - t0);
    }
  }
  // Book the final waited cycles of processors parked out of the queue (the
  // tick loop's last step ticks everyone; ours only ticked the due set).
  des_settle_all(cycle_);
  des_active_ = false;
}

// --------------------------------------------------------------------------
// Transactions

Transaction* Simulator::make_txn(TxnKind kind, std::uint32_t line_addr,
                                 std::int32_t requester, StallCause cause,
                                 bool fills_line, bool lock_op) {
  auto owned = std::make_unique<Transaction>();
  Transaction* txn = owned.get();
  txn->id = next_txn_id_++;
  txn->kind = kind;
  txn->line_addr = line_addr;
  txn->requester = requester;
  txn->stall_cause = cause;
  txn->fills_line = fills_line;
  txn->is_lock_op = lock_op;
  txn->issued_cycle = cycle_;
  txn->created_cycle = cycle_;
  txn->dsm_extra_cycles = dsm_extra_cycles(line_addr, requester);
  active_.emplace(txn->id, std::move(owned));

  const bool counts_for_fence = !txn->is_lock_op && kind != TxnKind::kWriteBack &&
                                kind != TxnKind::kHandoff;
  if (requester >= 0 && counts_for_fence) {
    ++outstanding_fence_[static_cast<std::uint32_t>(requester)];
  }
  return txn;
}

std::uint32_t Simulator::dsm_extra_cycles(std::uint32_t line_addr,
                                          std::int32_t requester) const {
  // Reflections and memory-internal work (requester < 0) are directory-local;
  // only processor requests whose home node differs pay the remote hop.
  if (mem_model_ != MemModelKind::kDsm || requester < 0) return 0;
  const std::uint32_t home = dsm_home_of(line_addr);
  const std::uint32_t node = dsm_node_of(static_cast<std::uint32_t>(requester));
  return home == node ? 0 : cfg_.dsm.remote_access_cycles;
}

Transaction* Simulator::find_proc_txn(std::uint32_t proc,
                                      std::uint32_t line_addr) const {
  for (const auto& [id, txn] : active_) {
    if (txn->requester == static_cast<std::int32_t>(proc) &&
        txn->line_addr == line_addr && txn->phase != TxnPhase::kDone &&
        txn->kind != TxnKind::kWriteBack && txn->kind != TxnKind::kHandoff) {
      return txn.get();
    }
  }
  return nullptr;
}

void Simulator::retire(Transaction* txn) {
  const auto it = active_.find(txn->id);
  SYNCPAT_ASSERT(it != active_.end());
  active_.erase(it);
}

// --------------------------------------------------------------------------
// Arbitration and snooping

void Simulator::arbitrate() {
  if (!bus_.free()) return;
  // Every grantable request — queued at an interface or awaiting a memory
  // response — is an active transaction, so an empty table means the port
  // scan below cannot grant anything.
  if (active_.empty()) return;
  const std::uint32_t ports = static_cast<std::uint32_t>(procs_.size()) + 1;
  if (discipline_->needs_stamps()) {
    // Stamp-aware disciplines (FCFS ordering, fixed-priority aging) rank
    // ports by when each head request reached the bus queue.  Same-cycle
    // issues are not grant-eligible yet (the arbiter never grants a request
    // the cycle it was issued), so they rank as absent.
    for (std::uint32_t p = 0; p + 1 < ports; ++p) {
      Transaction* head = ifaces_[p]->head();
      const bool eligible = head != nullptr && head->issued_cycle != cycle_;
      arb_req_[p] = bus::ArbRequest{eligible, eligible ? head->issued_cycle : 0};
    }
    Transaction* response = memory_.pending_response();
    const bool eligible = response != nullptr && response->issued_cycle != cycle_;
    arb_req_[ports - 1] =
        bus::ArbRequest{eligible, eligible ? response->issued_cycle : 0};
  }
  discipline_->scan_order(arb_req_.data(), cycle_, arb_order_.data());
  for (std::uint32_t i = 0; i < ports; ++i) {
    const std::uint32_t port = arb_order_[i];
    if (port == ports - 1) {
      Transaction* response = memory_.pending_response();
      if (response == nullptr || response->issued_cycle == cycle_) continue;
      if (response->requester >= 0) {
        des_touch(static_cast<std::uint32_t>(response->requester));
      }
      memory_.pop_response();
      response->phase = TxnPhase::kOnBusResp;
      discipline_->record_grant(port, cycle_ - response->issued_cycle, true);
      bus_.occupy(response, bus_.config().data_cycles);
      return;
    }
    if (try_grant(port)) return;
  }
}

bool Simulator::try_grant(std::uint32_t port) {
  Transaction* txn = ifaces_[port]->head();
  if (txn == nullptr) return false;
  if (txn->issued_cycle == cycle_) return false;
  if (line_inflight_.contains(txn->line_addr)) return false;

  // Settle the requester before the upgrade promotion below: its
  // coherence_refill stamp changes how waited cycles classify, and the
  // phase-3 ticks being settled saw the pre-promotion transaction.  (A
  // failed grant after this point mutates nothing, so the touch is safe.)
  if (txn->requester >= 0) des_touch(static_cast<std::uint32_t>(txn->requester));

  // An upgrade whose line was invalidated while queued becomes a full
  // ownership miss (the write turned into a write miss, §4.1).
  TxnKind effective = txn->kind;
  if (txn->kind == TxnKind::kUpgrade) {
    const cache::LineState st = caches_[port]->state(txn->line_addr);
    // Shared: a plain invalidation suffices.  Invalid (snooped away while
    // queued) or Pending (a later miss of ours is refetching the line): the
    // write has become a write miss (§4.1) — promote to ReadX.
    if (st != cache::LineState::kShared) {
      effective = TxnKind::kReadX;
      // Metrics: Invalid means a remote invalidation took the line while
      // this upgrade sat queued, so the refetch is a coherence refill.
      if (metrics_ != nullptr && st == cache::LineState::kInvalid) {
        txn->coherence_refill = true;
      }
    }
  }
  const bool may_need_memory = effective == TxnKind::kRead ||
                               effective == TxnKind::kReadX ||
                               effective == TxnKind::kWriteBack ||
                               effective == TxnKind::kWriteThrough;
  if (may_need_memory && memory_.input_full()) return false;

  // Granted.
  ifaces_[port]->pop_head();
  txn->kind = effective;
  txn->granted_cycle = cycle_;
  txn->phase = TxnPhase::kOnBusReq;
  discipline_->record_grant(port, cycle_ - txn->issued_cycle, false);
  line_inflight_.emplace(txn->line_addr, txn);

  std::uint32_t occupancy = bus_.config().request_cycles;
  switch (txn->kind) {
    case TxnKind::kUpgrade:
      snoop_others(txn);
      break;
    case TxnKind::kWriteBack:
      occupancy += bus_.config().data_cycles;
      break;
    case TxnKind::kWriteThrough:
      // One word to memory (a single data cycle) + the invalidation snoop.
      occupancy += 1;
      snoop_others(txn);
      break;
    case TxnKind::kHandoff:
      occupancy += bus_.config().data_cycles;
      scheme_->on_handoff_granted(txn->line_addr);
      break;
    case TxnKind::kRead:
    case TxnKind::kReadX: {
      const cache::LineState own = caches_[port]->state(txn->line_addr);
      const bool data_needed = own == cache::LineState::kInvalid ||
                               own == cache::LineState::kPending;
      // If another of our transactions re-fetched the line meanwhile, this
      // one degenerates to an ownership/read broadcast.
      txn->fills_line = data_needed;
      snoop_others(txn);
      if (!data_needed) {
        // Forced atomic on a line we hold: pure ownership broadcast.
        txn->supplied_by_cache = false;
      } else if (txn->supplied_by_cache) {
        occupancy += bus_.config().data_cycles;  // cache-to-cache transfer
      }
      // Otherwise: request phase only; memory supplies via split transaction.
      break;
    }
  }
  bus_.occupy(txn, occupancy);

  switch (txn->kind) {
    case TxnKind::kRead: ++traffic_.reads; break;
    case TxnKind::kReadX: ++traffic_.readx; break;
    case TxnKind::kUpgrade: ++traffic_.upgrades; break;
    case TxnKind::kWriteBack: ++traffic_.writebacks; break;
    case TxnKind::kHandoff: ++traffic_.handoffs; break;
    case TxnKind::kWriteThrough: ++traffic_.write_throughs; break;
  }
  if (txn->is_lock_op) ++traffic_.lock_ops;
  if (txn->kind == TxnKind::kRead || txn->kind == TxnKind::kReadX) {
    if (txn->fills_line) {
      txn->supplied_by_cache ? ++traffic_.c2c_supplies
                             : ++traffic_.memory_reads;
    }
  }
  return true;
}

void Simulator::snoop_others(Transaction* txn) {
  const bool exclusive = txn->is_exclusive_request();
  for (std::uint32_t q = 0; q < procs_.size(); ++q) {
    if (static_cast<std::int32_t>(q) == txn->requester) continue;
    const cache::SnoopResult res = caches_[q]->snoop(txn->line_addr, exclusive);
    if (res.had_line) {
      txn->supplied_by_cache = true;
      if (res.was_dirty) txn->dirty_supplier = true;
    }
    if (res.invalidated) notify_invalidation(q, txn->line_addr);
    // Dirty lines waiting in a cache-bus buffer are snoop-visible (§2.2):
    // the buffered write-back is cancelled and the data supplied directly.
    if (Transaction* wb = ifaces_[q]->snoop_writeback(txn->line_addr)) {
      txn->supplied_by_cache = true;
      txn->dirty_supplier = true;
      retire(wb);
    }
  }
}

void Simulator::notify_invalidation(std::uint32_t proc, std::uint32_t line_addr) {
  des_touch(proc);
  if (metrics_ != nullptr) {
    // Remember the loss; the processor's next miss on this line is charged
    // to invalidation-refill (the marker is consumed there).
    metrics_->proc(proc).invalidated_lines.insert(line_addr);
  }
  if (spin_line_[proc] == line_addr && line_addr != 0) {
    spin_line_[proc] = 0;
    if (tracing(obs::category::kLocks)) {
      recorder_->emit(obs::TraceEvent{cycle_, obs::EventKind::kSpinInvalidated,
                                      static_cast<std::int32_t>(proc),
                                      line_addr, 0, 0});
    }
    scheme_->on_spin_invalidated(proc, line_addr);
  }
}

// --------------------------------------------------------------------------
// Completion

void Simulator::complete_bus(Transaction* txn) {
  if (txn->requester >= 0) des_touch(static_cast<std::uint32_t>(txn->requester));
  if (txn->phase == TxnPhase::kOnBusResp) {
    if (!fill_own(txn)) {
      fill_retry_.push_back(txn);
      return;
    }
    finalize(txn);
    return;
  }

  SYNCPAT_ASSERT(txn->phase == TxnPhase::kOnBusReq);
  switch (txn->kind) {
    case TxnKind::kUpgrade: {
      SYNCPAT_ASSERT(txn->requester >= 0);
      const bool ok = caches_[static_cast<std::uint32_t>(txn->requester)]
                          ->complete_upgrade(txn->line_addr);
      SYNCPAT_ASSERT_MSG(ok, "upgrade line vanished while on the bus");
      finalize(txn);
      return;
    }
    case TxnKind::kWriteBack:
    case TxnKind::kWriteThrough:
      txn->phase = TxnPhase::kInMemory;
      line_inflight_.erase(txn->line_addr);
      memory_.push_request(txn);
      return;
    case TxnKind::kHandoff:
      finalize(txn);
      return;
    case TxnKind::kRead:
    case TxnKind::kReadX: {
      if (!txn->fills_line) {
        // Ownership broadcast on a line the requester already holds.
        if (txn->kind == TxnKind::kReadX) {
          caches_[static_cast<std::uint32_t>(txn->requester)]->force_modified(
              txn->line_addr);
        }
        finalize(txn);
        return;
      }
      if (txn->supplied_by_cache) {
        if (txn->dirty_supplier && txn->kind == TxnKind::kRead) {
          // Illinois reflection: a dirty supplier updates memory during the
          // transfer; model the memory-side cost with an absorbed write.
          Transaction* reflect = make_txn(TxnKind::kWriteBack, txn->line_addr,
                                          /*requester=*/-2, StallCause::kNone,
                                          /*fills_line=*/false);
          reflect->phase = TxnPhase::kInMemory;
          memory_.push_request(reflect);
        }
        if (!fill_own(txn)) {
          fill_retry_.push_back(txn);
          return;
        }
        finalize(txn);
        return;
      }
      txn->phase = TxnPhase::kInMemory;
      txn->issued_cycle = 0;  // re-stamped when it reaches the output buffer
      memory_.push_request(txn);
      return;
    }
  }
}

bool Simulator::fill_own(Transaction* txn) {
  SYNCPAT_ASSERT(txn->requester >= 0);
  des_touch(static_cast<std::uint32_t>(txn->requester));
  cache::Cache& cache = *caches_[static_cast<std::uint32_t>(txn->requester)];
  const cache::LineState st = cache.state(txn->line_addr);
  const cache::LineState final_state =
      txn->kind == TxnKind::kReadX ? cache::LineState::kModified
      : txn->supplied_by_cache     ? cache::LineState::kShared
                                   : cache::LineState::kExclusive;
  switch (st) {
    case cache::LineState::kPending:
      cache.fill(txn->line_addr, final_state);
      return true;
    case cache::LineState::kInvalid: {
      const cache::Cache::AllocateResult alloc = cache.allocate(txn->line_addr);
      if (!alloc.ok) return false;  // all ways awaiting fills; retried later
      if (alloc.writeback_line.has_value()) {
        Transaction* wb = make_txn(TxnKind::kWriteBack, *alloc.writeback_line,
                                   txn->requester, StallCause::kNone,
                                   /*fills_line=*/false);
        procs_[static_cast<std::uint32_t>(txn->requester)]->push_pending(wb);
      }
      cache.fill(txn->line_addr, final_state);
      return true;
    }
    default:
      // Forced atomic on a line we already hold.
      if (txn->kind == TxnKind::kReadX) cache.force_modified(txn->line_addr);
      return true;
  }
}

void Simulator::finalize(Transaction* txn) {
  if (txn->requester >= 0) des_touch(static_cast<std::uint32_t>(txn->requester));
  if (auto it = line_inflight_.find(txn->line_addr);
      it != line_inflight_.end() && it->second == txn) {
    line_inflight_.erase(it);
  }
  txn->phase = TxnPhase::kDone;
  txn->completed_cycle = cycle_;

  const bool counts_for_fence = !txn->is_lock_op &&
                                txn->kind != TxnKind::kWriteBack &&
                                txn->kind != TxnKind::kHandoff;
  if (txn->requester >= 0 && counts_for_fence) {
    auto& count = outstanding_fence_[static_cast<std::uint32_t>(txn->requester)];
    SYNCPAT_ASSERT(count > 0);
    --count;
  }
  if (txn->requester >= 0 && tracing(obs::category::kBus)) {
    recorder_->emit(obs::TraceEvent{
        cycle_, obs::EventKind::kBusComplete, txn->requester, txn->line_addr,
        cycle_ - txn->created_cycle, static_cast<std::uint64_t>(txn->kind)});
  }
  if (txn->requester_waiting) {
    SYNCPAT_ASSERT(txn->requester >= 0);
    procs_[static_cast<std::uint32_t>(txn->requester)]->on_txn_complete(txn);
  }
  retire(txn);
}

// --------------------------------------------------------------------------
// Barriers

void Simulator::barrier_arrive(std::uint32_t proc, std::uint32_t line_addr) {
  // The arrival is an atomic fetch&increment of the barrier counter: one
  // ownership transaction; waiting afterwards is quiet (queuing style).
  const BarrierState& b = barriers_[line_addr];
  const StallCause cause = b.waiting.empty() ? StallCause::kCacheMiss
                                             : StallCause::kLockWait;
  issue_lock_txn(proc, line_addr, TxnKind::kReadX, /*forced=*/true, cause,
                 /*stalls=*/true, sync::kStepBarrier);
}

void Simulator::lock_step_complete(std::uint32_t proc, std::uint32_t line_addr,
                                   std::uint8_t step) {
  if (step != sync::kStepBarrier) {
    if (checker_) checker_->on_lock_step(proc, line_addr, step);
    scheme_->on_txn_complete(proc, line_addr, step);
    return;
  }
  BarrierState& b = barriers_[line_addr];
  barrier_waiters_at_arrival_.add(static_cast<double>(b.waiting.size()));
  if (tracing(obs::category::kBarriers)) {
    recorder_->emit(obs::TraceEvent{cycle_, obs::EventKind::kBarrierArrive,
                                    static_cast<std::int32_t>(proc), line_addr,
                                    b.waiting.size(), 0});
  }
  if (b.waiting.size() + 1 == procs_.size()) {
    // Last arrival: release everyone.
    ++barriers_completed_;
    for (const BarrierState::Arrival& a : b.waiting) {
      barrier_wait_.add(static_cast<double>(cycle_ - a.cycle));
      des_touch(a.proc);
      procs_[a.proc]->lock_acquired();
    }
    barrier_wait_.add(0.0);  // the last arriver does not wait
    b.waiting.clear();
    des_touch(proc);
    procs_[proc]->lock_acquired();
    if (tracing(obs::category::kBarriers)) {
      recorder_->emit(obs::TraceEvent{cycle_, obs::EventKind::kBarrierRelease,
                                      static_cast<std::int32_t>(proc),
                                      line_addr, procs_.size(), 0});
    }
  } else {
    b.waiting.push_back(BarrierState::Arrival{proc, cycle_});
    des_touch(proc);
    procs_[proc]->enter_lock_wait(/*spinning=*/false, /*barrier=*/true);
  }
}

// --------------------------------------------------------------------------
// SchemeServices

void Simulator::issue_lock_txn(std::uint32_t proc, std::uint32_t line_addr,
                               TxnKind kind, bool forced, StallCause cause,
                               bool stalls, std::uint8_t step) {
  des_touch(proc);
  Transaction* txn = make_txn(kind, line_addr, static_cast<std::int32_t>(proc),
                              cause, /*fills_line=*/false, /*lock_op=*/true);
  txn->forced_bus = forced;
  txn->lock_step = step;
  if (stalls) {
    txn->requester_waiting = true;
    spin_line_[proc] = 0;  // leaving any spin
    procs_[proc]->stall_on_txn(txn);
  }
  procs_[proc]->push_pending(txn);
}

void Simulator::issue_handoff(std::uint32_t from_proc, std::uint32_t line_addr) {
  des_touch(from_proc);
  Transaction* txn =
      make_txn(TxnKind::kHandoff, line_addr,
               static_cast<std::int32_t>(from_proc), StallCause::kNone,
               /*fills_line=*/false, /*lock_op=*/true);
  procs_[from_proc]->push_pending(txn);
}

cache::LineState Simulator::line_state(std::uint32_t proc,
                                       std::uint32_t line_addr) const {
  return caches_[proc]->state(line_addr);
}

void Simulator::proc_wait(std::uint32_t proc, bool spinning,
                          std::uint32_t spin_line) {
  des_touch(proc);
  if (spinning) {
    SYNCPAT_ASSERT_MSG(
        line_state(proc, spin_line) != cache::LineState::kInvalid,
        "spin registration requires a valid cached copy");
    spin_line_[proc] = spin_line;
  }
  procs_[proc]->enter_lock_wait(spinning);
}

void Simulator::stop_spin(std::uint32_t proc) {
  des_touch(proc);
  spin_line_[proc] = 0;
}

void Simulator::proc_acquired(std::uint32_t proc) {
  des_touch(proc);
  if (checker_) checker_->on_acquired(proc);
  spin_line_[proc] = 0;
  procs_[proc]->lock_acquired();
}

void Simulator::proc_release_done(std::uint32_t proc) {
  des_touch(proc);
  if (checker_) checker_->on_release_done(proc);
  procs_[proc]->lock_release_done();
}

void Simulator::begin_lock_acquire(std::uint32_t proc, std::uint32_t lock_line) {
  if (checker_) checker_->on_begin_acquire(proc, lock_line);
  if (tracing(obs::category::kLocks)) {
    recorder_->emit(obs::TraceEvent{cycle_, obs::EventKind::kAcquireBegin,
                                    static_cast<std::int32_t>(proc), lock_line,
                                    0, 0});
  }
  scheme_->begin_acquire(proc, lock_line);
}

void Simulator::begin_lock_release(std::uint32_t proc, std::uint32_t lock_line) {
  if (checker_) checker_->on_begin_release(proc, lock_line);
  if (tracing(obs::category::kLocks)) {
    recorder_->emit(obs::TraceEvent{cycle_, obs::EventKind::kReleaseBegin,
                                    static_cast<std::int32_t>(proc), lock_line,
                                    0, 0});
  }
  scheme_->begin_release(proc, lock_line);
}

void Simulator::on_occupied(const bus::Transaction& txn, std::uint32_t cycles) {
  // Registered while bus tracing or metrics are on; dispatch to whichever
  // consumers exist.
  if (metrics_ != nullptr) metrics_->bus().add(cycle_, cycles);
  if (tracing(obs::category::kBus)) {
    // Bit 8 of the payload distinguishes the split-transaction response
    // tenure from the request tenure.
    const std::uint64_t kind =
        static_cast<std::uint64_t>(txn.kind) |
        (txn.phase == TxnPhase::kOnBusResp ? 0x100u : 0u);
    recorder_->emit(obs::TraceEvent{cycle_, obs::EventKind::kBusGrant,
                                    txn.requester, txn.line_addr, kind,
                                    cycles});
  }
}

void Simulator::cache_transition_hook(void* ctx, std::uint32_t line_addr,
                                      cache::LineState from,
                                      cache::LineState to) {
  const auto* hook = static_cast<const CacheHookCtx*>(ctx);
  Simulator& sim = *hook->sim;
  sim.recorder_->emit(obs::TraceEvent{
      sim.cycle_, obs::EventKind::kMesiTransition,
      static_cast<std::int32_t>(hook->proc), line_addr,
      static_cast<std::uint64_t>(from), static_cast<std::uint64_t>(to)});
}

void Simulator::set_scheme_for_test(std::unique_ptr<sync::LockScheme> scheme) {
  scheme_ = std::move(scheme);
}

void Simulator::schedule_timer(std::uint32_t proc, std::uint32_t line_addr,
                               std::uint64_t delay) {
  timers_.push_back(Timer{cycle_ + std::max<std::uint64_t>(delay, 1), proc,
                          line_addr});
}

// --------------------------------------------------------------------------
// Results

SimulationResult Simulator::collect_results() const {
  SimulationResult result;
  result.program = program_name_;
  result.scheme = scheme_->name();
  result.consistency = bus::consistency_name(cfg_.consistency);
  result.num_procs = static_cast<std::uint32_t>(procs_.size());
  result.locks = lock_stats_.total();
  result.bus_utilization = bus_.utilization();
  result.barriers_completed = barriers_completed_;
  result.barrier_wait_cycles = barrier_wait_;
  result.barrier_waiters_at_arrival = barrier_waiters_at_arrival_;
  result.traffic = traffic_;
  result.discipline.name = discipline_->name();
  result.discipline.grants = discipline_->stats().grants;
  result.discipline.memory_grants = discipline_->stats().memory_grants;
  result.discipline.max_grant_wait = discipline_->stats().max_grant_wait;
  result.discipline.grant_wait = discipline_->stats().grant_wait;

  std::uint64_t stall_cache = 0, stall_lock = 0, stall_fence = 0;
  double util_sum = 0.0;
  std::uint64_t w_hits = 0, w_misses = 0, r_hits = 0, r_misses = 0;
  for (std::uint32_t p = 0; p < procs_.size(); ++p) {
    const ProcStats& ps = procs_[p]->stats();
    ProcResult pr;
    pr.work_cycles = ps.work_cycles;
    pr.stall_cache = ps.stall_cache;
    pr.stall_lock = ps.stall_lock;
    pr.stall_fence = ps.stall_fence;
    pr.completion_cycle = ps.completion_cycle;
    pr.utilization = ps.utilization();
    result.per_proc.push_back(pr);

    result.run_time = std::max(result.run_time, ps.completion_cycle);
    util_sum += ps.utilization();
    stall_cache += ps.stall_cache;
    stall_lock += ps.stall_lock;
    stall_fence += ps.stall_fence;
    result.syncs += ps.syncs;
    result.syncs_with_pending += ps.syncs_with_pending;

    const cache::CacheStats& cs = caches_[p]->stats();
    w_hits += cs.write_hits;
    w_misses += cs.write_misses;
    r_hits += cs.read_hits + cs.ifetch_hits;
    r_misses += cs.read_misses + cs.ifetch_misses;
    result.read_bypasses += ifaces_[p]->bypasses();
  }
  result.avg_utilization = util_sum / static_cast<double>(procs_.size());

  const std::uint64_t stalls = stall_cache + stall_lock + stall_fence;
  if (stalls > 0) {
    // Fence stalls fold into the cache-miss share (they wait on memory).
    result.stall_cache_pct =
        100.0 * static_cast<double>(stall_cache + stall_fence) /
        static_cast<double>(stalls);
    result.stall_lock_pct =
        100.0 * static_cast<double>(stall_lock) / static_cast<double>(stalls);
  }
  if (w_hits + w_misses > 0) {
    result.write_hit_ratio = static_cast<double>(w_hits) /
                             static_cast<double>(w_hits + w_misses);
  }
  if (r_hits + r_misses > 0) {
    result.read_hit_ratio = static_cast<double>(r_hits) /
                            static_cast<double>(r_hits + r_misses);
  }
  return result;
}

}  // namespace syncpat::core

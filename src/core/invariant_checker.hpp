// Runtime invariant checker for the simulated machine (opt-in, see
// InvariantConfig in core/machine_config.hpp).
//
// In the spirit of Golab's mechanical deconstruction of queue-based mutual
// exclusion, the properties the paper's conclusions rest on are validated
// while the machine runs instead of by inspection:
//
//  * MESI single-writer / no-stale-sharer: at most one cache holds a line
//    Exclusive or Modified, and an owned line has no Shared copies elsewhere.
//    Lines with a transaction in flight are checked every cycle; a periodic
//    full sweep (mesi_sweep_period) catches stale sharers on quiet lines, and
//    a final sweep runs at end of simulation.
//  * At most one transaction per line in flight: re-derived from transaction
//    phases, independently of the simulator's own line_inflight_ bookkeeping.
//  * Lock mutual exclusion: a processor only acquires a lock no other
//    processor holds, and only releases a lock it holds.
//  * FIFO hand-off for the FIFO schemes (queuing, ticket, Anderson): lock
//    grants follow the order in which the initial atomic acquire accesses
//    completed on the bus.  (The exact Graunke-Thakkar variant is excluded:
//    its two-access enqueue admits a benign reordering window, §2.4.)
//
// Violations are counted and a bounded sample of messages is kept; the
// checker never aborts the simulation, so tests can assert on the outcome.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/machine_config.hpp"

namespace syncpat::core {

class Simulator;

class InvariantChecker {
 public:
  InvariantChecker(const InvariantConfig& config, bool fifo_scheme,
                   std::uint32_t num_procs);

  // --- simulator hooks -----------------------------------------------------
  /// End of Simulator::step(): per-cycle checks plus the periodic sweep.
  void on_cycle(const Simulator& sim);
  /// End of Simulator::run(): final full MESI sweep.
  void on_run_end(const Simulator& sim);

  // --- lock protocol hooks -------------------------------------------------
  void on_begin_acquire(std::uint32_t proc, std::uint32_t lock_line);
  void on_begin_release(std::uint32_t proc, std::uint32_t lock_line);
  /// A lock-scheme transaction completed (never the barrier step).
  void on_lock_step(std::uint32_t proc, std::uint32_t line_addr,
                    std::uint8_t step);
  void on_acquired(std::uint32_t proc);
  void on_release_done(std::uint32_t proc);

  // --- results -------------------------------------------------------------
  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  [[nodiscard]] std::uint64_t violation_count() const { return violation_count_; }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return violation_count_ == 0; }

 private:
  void record(std::string message);
  /// Cross-cache MESI check of one line; `cycle` labels violations.
  void check_line_coherence(const Simulator& sim, std::uint32_t line_addr,
                            std::uint64_t cycle);
  void full_mesi_sweep(const Simulator& sim);
  void check_one_txn_per_line(const Simulator& sim);

  InvariantConfig config_;
  bool fifo_scheme_;

  // Abstract lock state mirrored from the protocol hooks.
  static constexpr std::uint32_t kNoLine = 0xffff'ffffu;
  std::vector<std::uint32_t> acquiring_;  // per proc; kNoLine when idle
  std::vector<std::uint32_t> releasing_;  // per proc; kNoLine when idle
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> holders_;
  std::unordered_map<std::uint32_t, std::deque<std::uint32_t>> fifo_queue_;

  std::uint64_t checks_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace syncpat::core

// Cycle-driven simulator of the whole machine (paper §2.2).
//
// Per-cycle phase order (chosen so that an uncontended miss stalls exactly
// 1 + memory + line-transfer = 6 cycles, the paper's figure):
//   1. deferred completions (fills that waited for a cache way);
//   2. memory module tick;
//   3. processor ticks (work, issue, stall accounting);
//   4. bus arbitration (round-robin; snoop happens at grant);
//   5. bus advance; transaction completions (fills, wake-ups, lock steps).
//
// Coherence ordering: at most one transaction per line is in flight at any
// moment (the arbiter refuses a grant while the line is busy), which is how
// a real snooping bus with pending-request NACK/retry behaves and what makes
// lock test-and-set completions atomic.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bus/bus.hpp"
#include "bus/interface.hpp"
#include "cache/cache.hpp"
#include "core/machine_config.hpp"
#include "core/processor.hpp"
#include "core/results.hpp"
#include "mem/memory.hpp"
#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"
#include "trace/source.hpp"

namespace syncpat::core {

class InvariantChecker;

class Simulator final : public sync::SchemeServices {
 public:
  /// The program trace must outlive the simulator; sources are reset on
  /// construction.
  Simulator(const MachineConfig& config, trace::ProgramTrace& program);
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs to completion of every processor's trace.
  SimulationResult run();

  /// Single-step interface for tests.
  void step();
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] SimulationResult collect_results() const;

  // --- SchemeServices ------------------------------------------------------
  [[nodiscard]] std::uint64_t now() const override { return cycle_; }
  [[nodiscard]] std::uint32_t num_procs() const override {
    return static_cast<std::uint32_t>(procs_.size());
  }
  void issue_lock_txn(std::uint32_t proc, std::uint32_t line_addr,
                      bus::TxnKind kind, bool forced, bus::StallCause cause,
                      bool stalls, std::uint8_t step) override;
  void issue_handoff(std::uint32_t from_proc, std::uint32_t line_addr) override;
  [[nodiscard]] cache::LineState line_state(std::uint32_t proc,
                                            std::uint32_t line_addr) const override;
  void proc_wait(std::uint32_t proc, bool spinning,
                 std::uint32_t spin_line) override;
  void stop_spin(std::uint32_t proc) override;
  void proc_acquired(std::uint32_t proc) override;
  void proc_release_done(std::uint32_t proc) override;
  void schedule_timer(std::uint32_t proc, std::uint32_t line_addr,
                      std::uint64_t delay) override;

  // --- processor-facing services -------------------------------------------
  /// Barrier arrival: one atomic counter transaction; the processor waits
  /// until every processor has arrived.  All traces must contain the same
  /// barrier sequence (a missing arrival trips the progress watchdog).
  void barrier_arrive(std::uint32_t proc, std::uint32_t line_addr);
  /// Routes a completed lock-step transaction to the lock scheme or, for
  /// barrier arrivals, to the barrier bookkeeping.
  void lock_step_complete(std::uint32_t proc, std::uint32_t line_addr,
                          std::uint8_t step);
  bus::Transaction* make_txn(bus::TxnKind kind, std::uint32_t line_addr,
                             std::int32_t requester, bus::StallCause cause,
                             bool fills_line, bool lock_op = false);
  /// A not-yet-completed transaction by `proc` on `line_addr`, if any.
  [[nodiscard]] bus::Transaction* find_proc_txn(std::uint32_t proc,
                                                std::uint32_t line_addr) const;
  /// Lock entry points used by Processor: notify the invariant checker (when
  /// enabled), then forward to the scheme.
  void begin_lock_acquire(std::uint32_t proc, std::uint32_t lock_line);
  void begin_lock_release(std::uint32_t proc, std::uint32_t lock_line);
  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] sync::LockScheme& scheme() { return *scheme_; }
  [[nodiscard]] std::uint32_t outstanding_fence(std::uint32_t proc) const {
    return outstanding_fence_[proc];
  }

  // Introspection for tests/benches.
  [[nodiscard]] const bus::Bus& bus() const { return bus_; }
  [[nodiscard]] const mem::Memory& memory() const { return memory_; }
  [[nodiscard]] const cache::Cache& cache_of(std::uint32_t proc) const {
    return *caches_[proc];
  }
  [[nodiscard]] const Processor& proc(std::uint32_t p) const { return *procs_[p]; }
  [[nodiscard]] const sync::LockStatsCollector& lock_stats() const {
    return lock_stats_;
  }
  /// Null unless config().invariants.enabled.
  [[nodiscard]] const InvariantChecker* invariant_checker() const {
    return checker_.get();
  }
  /// Replaces the lock scheme (tests only: lets test_invariants.cpp inject a
  /// deliberately-broken scheme to prove the checker fires).
  void set_scheme_for_test(std::unique_ptr<sync::LockScheme> scheme);

 private:
  void arbitrate();
  void grant_memory_response();
  bool try_grant(std::uint32_t port);
  void snoop_others(bus::Transaction* txn);
  void complete_bus(bus::Transaction* txn);
  /// Installs the fetched line; false when the fill must be retried later.
  bool fill_own(bus::Transaction* txn);
  void finalize(bus::Transaction* txn);
  void retire(bus::Transaction* txn);
  void notify_invalidation(std::uint32_t proc, std::uint32_t line_addr);
  void check_progress();

  MachineConfig cfg_;
  std::string program_name_;
  std::vector<std::unique_ptr<cache::Cache>> caches_;
  std::vector<std::unique_ptr<bus::BusInterface>> ifaces_;
  std::vector<std::unique_ptr<Processor>> procs_;
  bus::Bus bus_;
  mem::Memory memory_;
  sync::LockStatsCollector lock_stats_;
  std::unique_ptr<sync::LockScheme> scheme_;
  std::unique_ptr<InvariantChecker> checker_;

  std::uint64_t cycle_ = 0;
  std::uint64_t next_txn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<bus::Transaction>> active_;
  std::unordered_map<std::uint32_t, bus::Transaction*> line_inflight_;
  std::vector<bus::Transaction*> fill_retry_;
  std::vector<std::uint32_t> spin_line_;        // per proc; 0 = not spinning
  std::vector<std::uint32_t> outstanding_fence_;  // per proc

  struct BarrierState {
    struct Arrival {
      std::uint32_t proc;
      std::uint64_t cycle;
    };
    std::vector<Arrival> waiting;
  };
  std::unordered_map<std::uint32_t, BarrierState> barriers_;
  struct Timer {
    std::uint64_t fire_cycle;
    std::uint32_t proc;
    std::uint32_t line_addr;
  };
  std::vector<Timer> timers_;  // few entries; scanned each cycle
  std::uint64_t barriers_completed_ = 0;
  util::RunningStat barrier_wait_;
  util::RunningStat barrier_waiters_at_arrival_;
  BusTraffic traffic_;

  // Progress watchdog.
  std::uint64_t last_progress_cycle_ = 0;
  std::uint64_t progress_marker_ = 0;

  friend class Processor;
  friend class InvariantChecker;
};

}  // namespace syncpat::core

// Cycle-driven simulator of the whole machine (paper §2.2).
//
// Per-cycle phase order (chosen so that an uncontended miss stalls exactly
// 1 + memory + line-transfer = 6 cycles, the paper's figure):
//   1. deferred completions (fills that waited for a cache way);
//   2. memory module tick;
//   3. processor ticks (work, issue, stall accounting);
//   4. bus arbitration (round-robin; snoop happens at grant);
//   5. bus advance; transaction completions (fills, wake-ups, lock steps).
//
// Coherence ordering: at most one transaction per line is in flight at any
// moment (the arbiter refuses a grant while the line is busy), which is how
// a real snooping bus with pending-request NACK/retry behaves and what makes
// lock test-and-set completions atomic.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bus/bus.hpp"
#include "bus/interface.hpp"
#include "bus/service_discipline.hpp"
#include "cache/cache.hpp"
#include "core/event_queue.hpp"
#include "core/machine_config.hpp"
#include "core/processor.hpp"
#include "core/results.hpp"
#include "mem/memory.hpp"
#include "obs/event_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profile.hpp"
#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"
#include "trace/source.hpp"

namespace syncpat::core {

class InvariantChecker;

/// Bookkeeping of the quiescence fast-forward engine (see run()).  Purely
/// diagnostic: skipped cycles are bulk-accounted into the same counters
/// per-cycle stepping feeds, so SimulationResult never depends on these.
struct FastForwardStats {
  bool enabled = false;
  std::uint64_t jumps = 0;             // quiescent stretches taken over by the
                                       // run-ahead loop
  std::uint64_t skipped_cycles = 0;    // quiet cycles bulk-accounted and never
                                       // individually stepped
  std::uint64_t run_ahead_cycles = 0;  // cycles whose issuing ticks ran inside
                                       // the run-ahead loop instead of step()
  std::uint64_t probe_pauses = 0;      // times the effectiveness probe paused
                                       // the engine on an unproductive window
};

/// Bookkeeping of the discrete-event core (see run_des()).  Purely
/// diagnostic, like FastForwardStats: every skipped cycle is bulk-accounted
/// into the same counters stepping feeds, so results never depend on these.
struct DesStats {
  bool enabled = false;
  std::uint64_t stepped_cycles = 0;  // event cycles executed by step_des()
  std::uint64_t spans = 0;           // bulk advances between event cycles
  std::uint64_t span_cycles = 0;     // cycles covered by those advances
};

class Simulator final : public sync::SchemeServices, public bus::BusObserver {
 public:
  /// The program trace must outlive the simulator; sources are reset on
  /// construction.
  Simulator(const MachineConfig& config, trace::ProgramTrace& program);
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs to completion of every processor's trace on the resolved engine
  /// (config().engine, overridable by SYNCPAT_ENGINE / the deprecated
  /// SYNCPAT_FAST_FORWARD, forced to per-cycle tick by the invariant
  /// checker).  The DES core, the tick loop, and the tick loop with its
  /// quiescence run-ahead all produce byte-identical results.
  SimulationResult run();

  /// Single-step interface for tests.  Always advances exactly one cycle on
  /// the per-cycle tick machinery; the DES core and the quiescence run-ahead
  /// only ever engage inside run().
  void step();
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] SimulationResult collect_results() const;

  /// True when no transaction exists anywhere in the machine: nothing on the
  /// bus or queued for it, memory fully drained, no fill retries, no line in
  /// flight.  Every transaction lives in active_ from creation to retirement,
  /// so the first test implies the rest (the others are cheap corroboration).
  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] const FastForwardStats& fast_forward_stats() const {
    return ff_stats_;
  }
  [[nodiscard]] const DesStats& des_stats() const { return des_stats_; }
  /// The engine run() will use (config + environment + checker override).
  [[nodiscard]] EngineKind engine() const { return engine_; }

  // --- SchemeServices ------------------------------------------------------
  [[nodiscard]] std::uint64_t now() const override { return cycle_; }
  [[nodiscard]] std::uint32_t num_procs() const override {
    return static_cast<std::uint32_t>(procs_.size());
  }
  void issue_lock_txn(std::uint32_t proc, std::uint32_t line_addr,
                      bus::TxnKind kind, bool forced, bus::StallCause cause,
                      bool stalls, std::uint8_t step) override;
  void issue_handoff(std::uint32_t from_proc, std::uint32_t line_addr) override;
  [[nodiscard]] cache::LineState line_state(std::uint32_t proc,
                                            std::uint32_t line_addr) const override;
  void proc_wait(std::uint32_t proc, bool spinning,
                 std::uint32_t spin_line) override;
  void stop_spin(std::uint32_t proc) override;
  void proc_acquired(std::uint32_t proc) override;
  void proc_release_done(std::uint32_t proc) override;
  void schedule_timer(std::uint32_t proc, std::uint32_t line_addr,
                      std::uint64_t delay) override;

  // --- processor-facing services -------------------------------------------
  /// Barrier arrival: one atomic counter transaction; the processor waits
  /// until every processor has arrived.  All traces must contain the same
  /// barrier sequence (a missing arrival trips the progress watchdog).
  void barrier_arrive(std::uint32_t proc, std::uint32_t line_addr);
  /// Routes a completed lock-step transaction to the lock scheme or, for
  /// barrier arrivals, to the barrier bookkeeping.
  void lock_step_complete(std::uint32_t proc, std::uint32_t line_addr,
                          std::uint8_t step);
  bus::Transaction* make_txn(bus::TxnKind kind, std::uint32_t line_addr,
                             std::int32_t requester, bus::StallCause cause,
                             bool fills_line, bool lock_op = false);
  /// A not-yet-completed transaction by `proc` on `line_addr`, if any.
  [[nodiscard]] bus::Transaction* find_proc_txn(std::uint32_t proc,
                                                std::uint32_t line_addr) const;
  /// Lock entry points used by Processor: notify the invariant checker (when
  /// enabled), then forward to the scheme.
  void begin_lock_acquire(std::uint32_t proc, std::uint32_t lock_line);
  void begin_lock_release(std::uint32_t proc, std::uint32_t lock_line);
  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] sync::LockScheme& scheme() { return *scheme_; }
  [[nodiscard]] std::uint32_t outstanding_fence(std::uint32_t proc) const {
    return outstanding_fence_[proc];
  }

  // Introspection for tests/benches.
  [[nodiscard]] const bus::Bus& bus() const { return bus_; }
  /// The service discipline the arbiter consults (config + environment).
  [[nodiscard]] const bus::ServiceDiscipline& bus_discipline() const {
    return *discipline_;
  }
  /// The memory cost model in effect (config + environment).
  [[nodiscard]] MemModelKind mem_model() const { return mem_model_; }
  /// DSM geometry helpers (meaningful under MemModelKind::kDsm; under the
  /// uniform bus model every access is "local").
  [[nodiscard]] std::uint32_t dsm_node_of(std::uint32_t proc) const {
    return proc / dsm_procs_per_node_;
  }
  [[nodiscard]] std::uint32_t dsm_home_of(std::uint32_t line_addr) const {
    return (line_addr / cfg_.cache.line_bytes) % cfg_.dsm.nodes;
  }
  [[nodiscard]] const mem::Memory& memory() const { return memory_; }
  [[nodiscard]] const cache::Cache& cache_of(std::uint32_t proc) const {
    return *caches_[proc];
  }
  [[nodiscard]] const Processor& proc(std::uint32_t p) const { return *procs_[p]; }
  [[nodiscard]] const sync::LockStatsCollector& lock_stats() const {
    return lock_stats_;
  }
  /// Null unless config().invariants.enabled.
  [[nodiscard]] const InvariantChecker* invariant_checker() const {
    return checker_.get();
  }
  /// Null unless config().trace.enabled.  Callers driving step() by hand must
  /// call recorder()->flush() themselves; run() flushes at the end.
  [[nodiscard]] obs::EventRecorder* recorder() { return recorder_.get(); }
  /// Null unless config().metrics.enabled.  run() finalizes the registry
  /// (bus-gauge clip + machine counters) before returning.
  [[nodiscard]] obs::MetricsRegistry* metrics() { return metrics_.get(); }
  [[nodiscard]] const obs::MetricsRegistry* metrics() const {
    return metrics_.get();
  }
  /// Shares ownership of the registry so callers (the experiment engine) can
  /// keep the metrics alive after the simulator is destroyed.
  [[nodiscard]] std::shared_ptr<obs::MetricsRegistry> take_metrics() {
    return metrics_;
  }
  /// Attaches a host-side wall-clock profiler; run() then times its engine
  /// phases.  Observes the host only — simulated results are unchanged.
  void set_self_profiler(obs::SelfProfiler* profiler) {
    self_prof_ = profiler;
  }

  // --- bus::BusObserver (registered while bus tracing or metrics are on) ---
  void on_occupied(const bus::Transaction& txn, std::uint32_t cycles) override;
  /// Replaces the lock scheme (tests only: lets test_invariants.cpp inject a
  /// deliberately-broken scheme to prove the checker fires).
  void set_scheme_for_test(std::unique_ptr<sync::LockScheme> scheme);

 private:
  void arbitrate();
  bool try_grant(std::uint32_t port);
  void snoop_others(bus::Transaction* txn);
  void complete_bus(bus::Transaction* txn);
  /// Installs the fetched line; false when the fill must be retried later.
  bool fill_own(bus::Transaction* txn);
  void finalize(bus::Transaction* txn);
  void retire(bus::Transaction* txn);
  void notify_invalidation(std::uint32_t proc, std::uint32_t line_addr);
  void check_progress();
  /// Event-driven run-ahead over a quiescent stretch.  While no transaction
  /// exists anywhere, processors interact with nothing outside their own
  /// cache, so their issuing ticks can be executed in global time order with
  /// the real tick() and every quiet cycle in between bulk-accounted.  Hands
  /// back to step() the moment a transaction appears, a backoff timer is due,
  /// or a processor enters a state it cannot reason about.  No-op when the
  /// machine is not quiescent.
  void fast_forward();
  /// run()'s main loop with SelfProfiler timestamps around each phase.
  void run_loop_profiled();

  // --- discrete-event core (see run_des()) ---------------------------------
  /// Phases 1-2b of step(): deferred fills, memory, backoff timers.  Shared
  /// verbatim between the tick loop and the DES core so the two engines
  /// cannot drift.
  void pre_proc_phases();
  /// The DES main loop: bulk-advance to one cycle before the next event,
  /// then execute that cycle with step_des().
  void run_des();
  /// One event cycle: step()'s phases with phase 3 ticking only due
  /// processors; every other processor's per-cycle bookkeeping is settled
  /// lazily at its next touch.
  void step_des();
  /// Earliest cycle after cycle_ at which anything in the machine can act:
  /// the processor due-queue minimum, deferred fills, the memory module's
  /// next state change, a waiting memory response, the bus tenure end (or
  /// next arbitration opportunity), and backoff timers.
  [[nodiscard]] std::uint64_t des_next_event() const;
  /// Settle-before-mutate hook, called at the top of every service that can
  /// alter a processor's state, its waiting transaction's classification, or
  /// its spin registration.  Books the processor's un-ticked cycles in its
  /// pre-mutation state up to the phase-correct boundary (through cycle_-1
  /// before its phase-3 slot this cycle, through cycle_ after it), marks it
  /// due to tick this cycle when its slot is still ahead, and queues it for
  /// re-scheduling.  No-op outside run_des(); idempotent within a cycle.
  void des_touch(std::uint32_t proc);
  void des_settle(std::uint32_t proc, std::uint64_t through_cycle);
  void des_settle_all(std::uint64_t through_cycle);
  /// Re-derives a processor's due-queue entry from its current state (with
  /// the scheme's spinner veto applied on top).
  void des_reschedule(std::uint32_t proc);
  void des_mark_dirty(std::uint32_t proc);
  /// Clips the bus gauge at the run's final cycle and stamps the machine
  /// counters.  Only values identical across fast-forward modes belong here
  /// (the export is compared byte-for-byte between them), so ff_stats_ stays
  /// out.
  void finalize_metrics();

  MachineConfig cfg_;
  std::string program_name_;
  std::vector<std::unique_ptr<cache::Cache>> caches_;
  std::vector<std::unique_ptr<bus::BusInterface>> ifaces_;
  std::vector<std::unique_ptr<Processor>> procs_;
  bus::Bus bus_;
  std::unique_ptr<bus::ServiceDiscipline> discipline_;
  // Arbitration scratch (sized once): the discipline's port permutation and,
  // for stamp-aware disciplines, the per-port request view.
  std::vector<std::uint32_t> arb_order_;
  std::vector<bus::ArbRequest> arb_req_;
  MemModelKind mem_model_ = MemModelKind::kBus;
  std::uint32_t dsm_procs_per_node_ = 1;
  /// Extra memory service cycles the DSM model charges a request by
  /// `requester` on `line_addr` (0 under the bus model, for reflections, and
  /// for node-local accesses).
  [[nodiscard]] std::uint32_t dsm_extra_cycles(std::uint32_t line_addr,
                                               std::int32_t requester) const;
  mem::Memory memory_;
  sync::LockStatsCollector lock_stats_;
  std::unique_ptr<sync::LockScheme> scheme_;
  std::unique_ptr<InvariantChecker> checker_;
  std::unique_ptr<obs::EventRecorder> recorder_;  // null unless trace.enabled
  std::shared_ptr<obs::MetricsRegistry> metrics_;  // null unless metrics.enabled
  obs::SelfProfiler* self_prof_ = nullptr;  // null unless a bench attached one

  /// recorder_ is live and the category is unmasked.
  [[nodiscard]] bool tracing(std::uint32_t cat) const {
    return recorder_ != nullptr && recorder_->wants(cat);
  }
  // Per-cache context for the coherence-transition hook (stable addresses:
  // sized once in the constructor).
  struct CacheHookCtx {
    Simulator* sim = nullptr;
    std::uint32_t proc = 0;
  };
  std::vector<CacheHookCtx> cache_hook_ctx_;
  static void cache_transition_hook(void* ctx, std::uint32_t line_addr,
                                    cache::LineState from, cache::LineState to);

  std::uint64_t cycle_ = 0;
  std::uint64_t next_txn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<bus::Transaction>> active_;
  std::unordered_map<std::uint32_t, bus::Transaction*> line_inflight_;
  std::vector<bus::Transaction*> fill_retry_;
  std::vector<std::uint32_t> spin_line_;        // per proc; 0 = not spinning
  std::vector<std::uint32_t> outstanding_fence_;  // per proc

  EngineKind engine_ = EngineKind::kDes;
  bool ff_enabled_ = false;
  FastForwardStats ff_stats_;
  DesStats des_stats_;

  // --- discrete-event core state -------------------------------------------
  /// Touch hooks live only inside run_des(); step() driven by hand (tests)
  /// and the tick engine leave this false and pay one branch per touch site.
  bool des_active_ = false;
  /// Where within the current event cycle the machine stands, deciding the
  /// settle boundary for touched processors: before the phase-3 tick loop, a
  /// touched processor has not had this cycle's tick yet (settle through
  /// cycle_-1 and tick it this cycle); inside the loop it depends on id
  /// order; after the loop its tick slot has passed (settle through cycle_).
  enum class DesPhase : std::uint8_t { kPreTick, kProcTick, kPostTick };
  DesPhase des_phase_ = DesPhase::kPreTick;
  std::uint32_t des_cur_proc_ = 0;  // phase-3 loop position (kProcTick only)
  EventQueue des_due_;              // per-processor next self-generated tick
  std::vector<std::uint64_t> des_acct_;  // cycle through which each processor's
                                         // per-cycle bookkeeping is applied
  // Due/dirty sets as source bitmasks ((num_procs+63)/64 words): the event
  // cycle drains the queue with one bucket read and walks set bits in id
  // order, which is both the tick loop's processor order and cheap.
  std::uint32_t des_words_ = 0;
  std::vector<std::uint64_t> des_due_now_;  // must tick this event cycle
  std::vector<std::uint64_t> des_dirty_;    // re-schedule at end of cycle
  std::uint64_t des_next_progress_check_ = kProgressCheckPeriod;
  // Run-ahead scratch (sized once): per-processor absolute cycle of the next
  // issuing tick (Processor::kNever for event-driven waiters) and the cycle
  // through which each processor's quiet bookkeeping is already accounted.
  std::vector<std::uint64_t> ff_next_issue_;
  std::vector<std::uint64_t> ff_acct_;
  std::vector<std::uint32_t> ff_due_;  // procs issuing at the current t_min
  // Effectiveness probe (see fast_forward()): windows where skipping was too
  // rare to pay for the entry scans pause the engine with exponential
  // backoff; probing resumes so later quiescent phases are still caught.
  static constexpr std::uint64_t kFfEvalPeriod = 1u << 18;
  static constexpr std::uint64_t kFfMaxPauseWindows = 16;
  std::uint64_t ff_eval_cycle_ = kFfEvalPeriod;
  std::uint64_t ff_paused_until_ = 0;      // 0 = engine active
  std::uint64_t ff_window_skip_base_ = 0;  // skipped_cycles at window start
  std::uint64_t ff_pause_windows_ = 1;     // current backoff length
  void ff_probe();
  // Scratch buffers reused every cycle so step() never heap-allocates.
  std::vector<bus::Transaction*> fill_retry_scratch_;
  std::vector<bus::Transaction*> absorbed_scratch_;

  struct BarrierState {
    struct Arrival {
      std::uint32_t proc;
      std::uint64_t cycle;
    };
    std::vector<Arrival> waiting;
  };
  std::unordered_map<std::uint32_t, BarrierState> barriers_;
  struct Timer {
    std::uint64_t fire_cycle;
    std::uint32_t proc;
    std::uint32_t line_addr;
  };
  std::vector<Timer> timers_;      // few entries; scanned each cycle
  std::vector<Timer> timers_due_;  // scratch: timers firing this cycle
  std::uint64_t barriers_completed_ = 0;
  util::RunningStat barrier_wait_;
  util::RunningStat barrier_waiters_at_arrival_;
  BusTraffic traffic_;

  // Progress watchdog: scanned every kProgressCheckPeriod cycles (and at
  // fast-forward boundaries) instead of every cycle; the 500k-cycle deadlock
  // threshold is unchanged, so diagnosis moves by at most one period.
  static constexpr std::uint64_t kProgressCheckPeriod = 1024;  // power of two
  std::uint64_t last_progress_cycle_ = 0;
  std::uint64_t progress_marker_ = 0;

  friend class Processor;
  friend class InvariantChecker;
};

}  // namespace syncpat::core

// Machine configuration: Figure 1 of the paper as a data structure.
//
// Defaults model the Sequent Symmetry Model B as simulated in §2.2:
// per-processor 64 KB 2-way write-back caches with 16-byte lines and
// Illinois coherence, a 64-bit split-transaction bus with round-robin
// arbitration, a 3-cycle memory with 2-deep input/output buffers, and a
// 4-deep cache-bus buffer per processor.
#pragma once

#include <cstdint>
#include <string>

#include "bus/interface.hpp"
#include "cache/cache.hpp"
#include "mem/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "sync/scheme_factory.hpp"

namespace syncpat::core {

/// Opt-in runtime invariant checking (see core/invariant_checker.hpp).
/// Compiled in unconditionally; a disabled checker costs one branch per
/// cycle, so benches pay nothing.
struct InvariantConfig {
  bool enabled = false;
  /// Cycles between full cross-cache MESI sweeps.  Lines with a transaction
  /// in flight are checked every cycle regardless; the sweep catches stale
  /// sharers on quiescent lines.
  std::uint32_t mesi_sweep_period = 64;
  /// How many violation messages to keep verbatim (all are counted).
  std::uint32_t max_recorded = 16;
};

struct MachineConfig {
  std::uint32_t num_procs = 12;

  cache::CacheConfig cache;          // 64 KB, 2-way, 16-byte lines
  cache::WritePolicy write_policy = cache::WritePolicy::kWriteBack;
  std::uint32_t bus_bytes = 8;       // 64-bit data path
  std::uint32_t cache_bus_buffer_depth = 4;
  mem::MemoryConfig memory;          // 3 cycles, 2-deep in/out buffers

  bus::ConsistencyModel consistency = bus::ConsistencyModel::kSequential;
  sync::SchemeKind lock_scheme = sync::SchemeKind::kQueuing;
  InvariantConfig invariants;
  /// Opt-in event tracing (see src/obs/): same zero-cost-when-off pattern as
  /// the invariant checker — the simulator holds a null recorder unless this
  /// is enabled, and traced runs produce byte-identical results.
  obs::TraceConfig trace;
  /// Opt-in deterministic metrics (see obs/metrics.hpp): stall-cause
  /// attribution, per-lock contention histograms, bus-utilization windows.
  /// Null-unless-enabled like the checker and recorder; enabled runs are
  /// byte-identical to disabled ones (fuzz oracle #6 proves it).
  obs::MetricsConfig metrics;

  /// Quiescence-aware fast-forward (on by default): when no transaction
  /// exists anywhere in the machine, Simulator::run() jumps the cycle counter
  /// to the next statically-known event and bulk-accounts the skipped cycles,
  /// producing byte-identical results to per-cycle stepping at a fraction of
  /// the wall time.  Forced off while the invariant checker is enabled (it
  /// validates per cycle) and by the SYNCPAT_FAST_FORWARD=0 escape hatch;
  /// SYNCPAT_FAST_FORWARD=1 forces it on over a `false` here.
  bool fast_forward = true;

  /// Hard simulation bound; exceeded means a deadlock or runaway workload.
  std::uint64_t max_cycles = 4'000'000'000ULL;

  /// Bus cycles to move one line: line_bytes / bus_bytes.
  [[nodiscard]] std::uint32_t line_transfer_cycles() const {
    return (cache.line_bytes + bus_bytes - 1) / bus_bytes;
  }

  /// Multi-line description in the spirit of Figure 1 (used by the
  /// bench_figure1_architecture target).
  [[nodiscard]] std::string describe() const;
};

}  // namespace syncpat::core

// Machine configuration: Figure 1 of the paper as a data structure.
//
// Defaults model the Sequent Symmetry Model B as simulated in §2.2:
// per-processor 64 KB 2-way write-back caches with 16-byte lines and
// Illinois coherence, a 64-bit split-transaction bus with round-robin
// arbitration, a 3-cycle memory with 2-deep input/output buffers, and a
// 4-deep cache-bus buffer per processor.
#pragma once

#include <cstdint>
#include <string>

#include "bus/interface.hpp"
#include "bus/service_discipline.hpp"
#include "cache/cache.hpp"
#include "mem/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "sync/scheme_factory.hpp"

namespace syncpat::core {

/// Execution engine for Simulator::run().
///   * kDes (default): the discrete-event core — a deterministic queue of
///     next-action times; cycles where nothing can happen are bulk-advanced.
///     Byte-identical to per-cycle ticking (the 28-config differential suite
///     and fuzz oracle #7 enforce it).
///   * kTick: the legacy per-cycle loop, kept for one release as the
///     differential reference (with its optional quiescence run-ahead, see
///     `fast_forward` below).
enum class EngineKind : std::uint8_t { kDes, kTick };

[[nodiscard]] const char* engine_name(EngineKind kind);

/// Outcome of resolving the engine from config + environment.
struct EngineSelection {
  EngineKind engine = EngineKind::kDes;
  bool fast_forward = true;  // tick engine only: quiescence run-ahead on/off
  /// The deprecated SYNCPAT_FAST_FORWARD alias decided the engine.
  bool from_deprecated_ff = false;
};

/// Resolves the execution engine from the config values and the environment
/// strings (pass nullptr for unset).  Strict parsing throughout:
///   * `engine_env` (SYNCPAT_ENGINE) accepts exactly "des" or "tick";
///   * `ff_env` (SYNCPAT_FAST_FORWARD, deprecated) accepts exactly "0"/"1"
///     via util::parse_bool01 and maps onto the tick engine ("0" = per-cycle,
///     "1" = with quiescence run-ahead), preserving its historical meaning;
///   * anything else throws std::invalid_argument.
/// SYNCPAT_ENGINE wins when both are set (ff_env then only toggles the tick
/// engine's run-ahead).  The invariant checker overrides the result inside
/// the simulator (it must observe every cycle, so it forces per-cycle tick).
[[nodiscard]] EngineSelection resolve_engine(EngineKind config_engine,
                                             bool config_fast_forward,
                                             const char* engine_env,
                                             const char* ff_env);

/// resolve_engine over the live SYNCPAT_ENGINE / SYNCPAT_FAST_FORWARD
/// environment, emitting a once-per-process deprecation note on stderr when
/// the SYNCPAT_FAST_FORWARD alias decides the engine.
[[nodiscard]] EngineSelection resolve_engine_from_env(EngineKind config_engine,
                                                      bool config_fast_forward);

/// Memory system cost model.
///   * kBus (default): the paper's machine — uniform memory behind the
///     shared bus, every access costs MemoryConfig::access_cycles.
///   * kDsm: a distributed-shared-memory overlay (Golab's CC-vs-DSM model
///     separation): processors are grouped into nodes, every line has a
///     home node (address-interleaved), and an access whose requester is
///     not on the line's home node pays DsmConfig::remote_access_cycles on
///     top of the base access time.  Coherence traffic still crosses the
///     one shared bus; only the memory module's service time changes, so
///     both engines stay byte-identical by construction.
enum class MemModelKind : std::uint8_t { kBus, kDsm };

[[nodiscard]] const char* mem_model_name(MemModelKind kind);
/// Strict: accepts exactly "bus" or "dsm"; anything else throws
/// std::invalid_argument naming the offending text.
[[nodiscard]] MemModelKind mem_model_from_name(const std::string& name);

/// NUMA geometry for MemModelKind::kDsm: `nodes` home-directory nodes,
/// processors striped across them in contiguous blocks of
/// ceil(num_procs / nodes).  Lines are home-interleaved by line index.
struct DsmConfig {
  std::uint32_t nodes = 4;
  std::uint32_t remote_access_cycles = 20;
};

/// Resolves the bus service discipline from the config value and the
/// SYNCPAT_BUS_DISCIPLINE environment string (nullptr = unset).  Strict:
/// junk throws std::invalid_argument, never a silent default.
[[nodiscard]] bus::DisciplineKind resolve_bus_discipline(
    bus::DisciplineKind config_value, const char* env);
[[nodiscard]] bus::DisciplineKind resolve_bus_discipline_from_env(
    bus::DisciplineKind config_value);

/// Resolves the memory model from the config value and the SYNCPAT_MODEL
/// environment string (nullptr = unset).  Strict like the discipline.
[[nodiscard]] MemModelKind resolve_mem_model(MemModelKind config_value,
                                             const char* env);
[[nodiscard]] MemModelKind resolve_mem_model_from_env(MemModelKind config_value);

/// Opt-in runtime invariant checking (see core/invariant_checker.hpp).
/// Compiled in unconditionally; a disabled checker costs one branch per
/// cycle, so benches pay nothing.
struct InvariantConfig {
  bool enabled = false;
  /// Cycles between full cross-cache MESI sweeps.  Lines with a transaction
  /// in flight are checked every cycle regardless; the sweep catches stale
  /// sharers on quiescent lines.
  std::uint32_t mesi_sweep_period = 64;
  /// How many violation messages to keep verbatim (all are counted).
  std::uint32_t max_recorded = 16;
};

struct MachineConfig {
  std::uint32_t num_procs = 12;

  cache::CacheConfig cache;          // 64 KB, 2-way, 16-byte lines
  cache::WritePolicy write_policy = cache::WritePolicy::kWriteBack;
  std::uint32_t bus_bytes = 8;       // 64-bit data path
  std::uint32_t cache_bus_buffer_depth = 4;
  mem::MemoryConfig memory;          // 3 cycles, 2-deep in/out buffers

  /// Bus service discipline (see bus/service_discipline.hpp).  Overridable
  /// by SYNCPAT_BUS_DISCIPLINE (strict).  Round-robin is byte-identical to
  /// the historical hardwired arbiter.
  bus::DisciplineKind bus_discipline = bus::DisciplineKind::kRoundRobin;

  /// Memory cost model (see MemModelKind).  Overridable by SYNCPAT_MODEL
  /// (strict).  `dsm` is only consulted when model == kDsm.
  MemModelKind model = MemModelKind::kBus;
  DsmConfig dsm;

  bus::ConsistencyModel consistency = bus::ConsistencyModel::kSequential;
  sync::SchemeKind lock_scheme = sync::SchemeKind::kQueuing;
  InvariantConfig invariants;
  /// Opt-in event tracing (see src/obs/): same zero-cost-when-off pattern as
  /// the invariant checker — the simulator holds a null recorder unless this
  /// is enabled, and traced runs produce byte-identical results.
  obs::TraceConfig trace;
  /// Opt-in deterministic metrics (see obs/metrics.hpp): stall-cause
  /// attribution, per-lock contention histograms, bus-utilization windows.
  /// Null-unless-enabled like the checker and recorder; enabled runs are
  /// byte-identical to disabled ones (fuzz oracle #6 proves it).
  obs::MetricsConfig metrics;

  /// Execution engine (see EngineKind).  Overridable by SYNCPAT_ENGINE
  /// ("des"/"tick", strict) and, deprecated, by SYNCPAT_FAST_FORWARD
  /// ("0"/"1", both selecting the tick engine).  The invariant checker
  /// forces per-cycle tick regardless (it validates every cycle).
  EngineKind engine = EngineKind::kDes;

  /// Tick engine only: quiescence-aware run-ahead (the pre-DES fast path).
  /// When no transaction exists anywhere in the machine, Simulator::run()
  /// jumps the cycle counter to the next statically-known event and
  /// bulk-accounts the skipped cycles, producing byte-identical results to
  /// per-cycle stepping.  Ignored by the DES engine, which makes event jumps
  /// its normal execution mode.
  bool fast_forward = true;

  /// Hard simulation bound; exceeded means a deadlock or runaway workload.
  std::uint64_t max_cycles = 4'000'000'000ULL;

  /// Bus cycles to move one line: line_bytes / bus_bytes.
  [[nodiscard]] std::uint32_t line_transfer_cycles() const {
    return (cache.line_bytes + bus_bytes - 1) / bus_bytes;
  }

  /// Multi-line description in the spirit of Figure 1 (used by the
  /// bench_figure1_architecture target).
  [[nodiscard]] std::string describe() const;
};

}  // namespace syncpat::core

#include "core/invariant_checker.hpp"

#include <algorithm>
#include <cstdio>

#include "core/simulator.hpp"

namespace syncpat::core {

namespace {

[[nodiscard]] bool owns_line(cache::LineState s) {
  return s == cache::LineState::kExclusive || s == cache::LineState::kModified;
}

[[nodiscard]] std::string hex(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%x", value);
  return buf;
}

}  // namespace

InvariantChecker::InvariantChecker(const InvariantConfig& config,
                                   bool fifo_scheme, std::uint32_t num_procs)
    : config_(config), fifo_scheme_(fifo_scheme) {
  acquiring_.assign(num_procs, kNoLine);
  releasing_.assign(num_procs, kNoLine);
}

void InvariantChecker::record(std::string message) {
  ++violation_count_;
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back(std::move(message));
  }
}

// --------------------------------------------------------------------------
// Coherence

void InvariantChecker::check_line_coherence(const Simulator& sim,
                                            std::uint32_t line_addr,
                                            std::uint64_t cycle) {
  std::uint32_t owners = 0, sharers = 0;
  std::int32_t owner_proc = -1, sharer_proc = -1;
  for (std::uint32_t p = 0; p < sim.num_procs(); ++p) {
    const cache::LineState s = sim.caches_[p]->state(line_addr);
    ++checks_;
    if (owns_line(s)) {
      ++owners;
      owner_proc = static_cast<std::int32_t>(p);
    } else if (s == cache::LineState::kShared) {
      ++sharers;
      sharer_proc = static_cast<std::int32_t>(p);
    }
  }
  if (owners > 1) {
    record("MESI single-writer violated: line 0x" + hex(line_addr) +
           " owned (E/M) by " + std::to_string(owners) + " caches at cycle " +
           std::to_string(cycle));
  } else if (owners == 1 && sharers > 0) {
    record("MESI stale sharer: line 0x" + hex(line_addr) +
           " owned (E/M) by proc " + std::to_string(owner_proc) +
           " but Shared in proc " + std::to_string(sharer_proc) +
           " at cycle " + std::to_string(cycle));
  }
}

void InvariantChecker::full_mesi_sweep(const Simulator& sim) {
  // One pass over every cache, grouped by line address: resident states are
  // sparse, so the per-line cross-check above would rescan caches for lines
  // that only one cache holds.
  struct LineView {
    std::uint32_t owners = 0, sharers = 0;
    std::int32_t owner_proc = -1, sharer_proc = -1;
  };
  std::unordered_map<std::uint32_t, LineView> lines;
  for (std::uint32_t p = 0; p < sim.num_procs(); ++p) {
    sim.caches_[p]->for_each_valid_line(
        [&](std::uint32_t line_addr, cache::LineState s) {
          ++checks_;
          LineView& v = lines[line_addr];
          if (owns_line(s)) {
            ++v.owners;
            v.owner_proc = static_cast<std::int32_t>(p);
          } else if (s == cache::LineState::kShared) {
            ++v.sharers;
            v.sharer_proc = static_cast<std::int32_t>(p);
          }
        });
  }
  for (const auto& [line_addr, v] : lines) {
    if (v.owners > 1) {
      record("MESI single-writer violated: line 0x" + hex(line_addr) +
             " owned (E/M) by " + std::to_string(v.owners) +
             " caches at cycle " + std::to_string(sim.now()));
    } else if (v.owners == 1 && v.sharers > 0) {
      record("MESI stale sharer: line 0x" + hex(line_addr) +
             " owned (E/M) by proc " + std::to_string(v.owner_proc) +
             " but Shared in proc " + std::to_string(v.sharer_proc) +
             " at cycle " + std::to_string(sim.now()));
    }
  }
}

void InvariantChecker::check_one_txn_per_line(const Simulator& sim) {
  // Re-derived from transaction phases, independent of line_inflight_.
  std::unordered_map<std::uint32_t, std::uint64_t> first_on_line;
  for (const auto& [id, txn] : sim.active_) {
    if (!txn->holds_line_slot()) continue;
    ++checks_;
    const auto [it, inserted] = first_on_line.emplace(txn->line_addr, id);
    if (!inserted) {
      record("two transactions in flight for line 0x" +
             hex(txn->line_addr) + " (ids " + std::to_string(it->second) +
             " and " + std::to_string(id) + ") at cycle " +
             std::to_string(sim.now()));
    }
  }
}

void InvariantChecker::on_cycle(const Simulator& sim) {
  check_one_txn_per_line(sim);
  for (const auto& [line_addr, txn] : sim.line_inflight_) {
    check_line_coherence(sim, line_addr, sim.now());
  }
  if (config_.mesi_sweep_period > 0 &&
      sim.now() % config_.mesi_sweep_period == 0) {
    full_mesi_sweep(sim);
  }
}

void InvariantChecker::on_run_end(const Simulator& sim) {
  full_mesi_sweep(sim);
  for (std::uint32_t p = 0; p < acquiring_.size(); ++p) {
    if (releasing_[p] != kNoLine) {
      record("simulation ended with proc " + std::to_string(p) +
             " mid-release of lock line 0x" + hex(releasing_[p]));
    }
  }
}

// --------------------------------------------------------------------------
// Locks

void InvariantChecker::on_begin_acquire(std::uint32_t proc,
                                        std::uint32_t lock_line) {
  ++checks_;
  if (acquiring_[proc] != kNoLine) {
    record("proc " + std::to_string(proc) + " began acquiring lock line 0x" +
           hex(lock_line) + " while an acquire of 0x" +
           hex(acquiring_[proc]) + " is still pending");
  }
  acquiring_[proc] = lock_line;
}

void InvariantChecker::on_begin_release(std::uint32_t proc,
                                        std::uint32_t lock_line) {
  ++checks_;
  if (releasing_[proc] != kNoLine) {
    record("proc " + std::to_string(proc) + " began releasing lock line 0x" +
           hex(lock_line) + " while a release of 0x" +
           hex(releasing_[proc]) + " is still pending");
  }
  // The critical section ends here: the release transaction may still be
  // draining (buffered under weak ordering) when the next holder acquires,
  // so the holder leaves `holders_` at release *begin*, not completion.
  std::vector<std::uint32_t>& holders = holders_[lock_line];
  const auto it = std::find(holders.begin(), holders.end(), proc);
  if (it == holders.end()) {
    record("lock mutual exclusion violated: proc " + std::to_string(proc) +
           " released lock line 0x" + hex(lock_line) +
           " without holding it");
  } else {
    holders.erase(it);
  }
  releasing_[proc] = lock_line;
}

void InvariantChecker::on_lock_step(std::uint32_t proc,
                                    std::uint32_t line_addr,
                                    std::uint8_t step) {
  // The completion of the initial atomic acquire access is what serializes
  // waiters on the bus: it defines the FIFO order the queuing, ticket and
  // Anderson schemes promise to grant in.
  if (!fifo_scheme_ || step != sync::kStepAcquire) return;
  if (acquiring_[proc] != line_addr) return;
  std::deque<std::uint32_t>& queue = fifo_queue_[line_addr];
  if (std::find(queue.begin(), queue.end(), proc) == queue.end()) {
    queue.push_back(proc);
  }
}

void InvariantChecker::on_acquired(std::uint32_t proc) {
  ++checks_;
  if (acquiring_[proc] == kNoLine) {
    record("proc " + std::to_string(proc) +
           " acquired a lock without a pending acquire");
    return;
  }
  const std::uint32_t lock_line = acquiring_[proc];
  acquiring_[proc] = kNoLine;

  std::vector<std::uint32_t>& holders = holders_[lock_line];
  if (!holders.empty()) {
    record("lock mutual exclusion violated: proc " + std::to_string(proc) +
           " acquired lock line 0x" + hex(lock_line) +
           " while held by proc " + std::to_string(holders.front()));
  }
  holders.push_back(proc);

  if (fifo_scheme_) {
    std::deque<std::uint32_t>& queue = fifo_queue_[lock_line];
    if (!queue.empty()) {
      if (queue.front() == proc) {
        queue.pop_front();
      } else {
        record("FIFO hand-off violated: proc " + std::to_string(proc) +
               " acquired lock line 0x" + hex(lock_line) +
               " ahead of proc " + std::to_string(queue.front()));
        const auto it = std::find(queue.begin(), queue.end(), proc);
        if (it != queue.end()) queue.erase(it);
      }
    }
  }
}

void InvariantChecker::on_release_done(std::uint32_t proc) {
  ++checks_;
  if (releasing_[proc] == kNoLine) {
    record("proc " + std::to_string(proc) +
           " finished a release without a pending release");
    return;
  }
  releasing_[proc] = kNoLine;
}

}  // namespace syncpat::core

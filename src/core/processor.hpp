// Processor model (paper §2.1-§2.2).
//
// A processor replays its trace: each event costs `gap` work cycles of
// execution (the MPTrace per-instruction cycle counts) and then issues its
// reference.  Cache hits cost nothing extra; misses create bus transactions
// and stall the processor according to the consistency model:
//
//   * sequential consistency: every miss — read, write, or upgrade — stalls
//     until the access performs;
//   * weak ordering: only read (load/ifetch) misses stall; writes, upgrades
//     and write-backs are buffered (the cache-bus buffer applies the read-
//     bypass placement), and a full buffer is the only thing that makes a
//     write stall.  At every lock/unlock the processor first drains its
//     buffer and outstanding accesses (the fence of weak ordering rules 2-3).
//
// Lock events are handed to the LockScheme, which drives this processor via
// stall_on_txn()/enter_lock_wait()/lock_acquired()/lock_release_done().
//
// Stall cycles are attributed per cycle to "cache miss" or "lock wait"
// exactly as the paper's Tables 3/5 split them: waiting for a lock held by
// another processor is lock wait; a lock operation's own uncontended memory
// access is an ordinary cache-miss stall.
#pragma once

#include <cstdint>
#include <deque>

#include "bus/interface.hpp"
#include "bus/transaction.hpp"
#include "cache/cache.hpp"
#include "obs/stall_attribution.hpp"
#include "trace/source.hpp"

namespace syncpat::core {

class Simulator;

enum class ProcState : std::uint8_t {
  kRunning,          // executing work cycles / issuing references
  kStallStructural,  // cache set or buffer momentarily unavailable; retrying
  kWaitMem,          // stalled on a transaction
  kWaitLock,         // passively waiting for a lock (queuing)
  kSpin,             // spinning on a cached lock line (T&T&S / ticket)
  kWaitFence,        // weak ordering: draining at a sync point
  kDone,
};

struct ProcStats {
  std::uint64_t work_cycles = 0;
  std::uint64_t stall_cache = 0;
  std::uint64_t stall_lock = 0;
  std::uint64_t stall_fence = 0;
  std::uint64_t completion_cycle = 0;
  std::uint64_t syncs = 0;
  std::uint64_t syncs_with_pending = 0;  // fence found unfinished accesses
  std::uint64_t merged_writes = 0;       // stores coalesced into in-flight fills

  [[nodiscard]] std::uint64_t total_stalls() const {
    return stall_cache + stall_lock + stall_fence;
  }
  [[nodiscard]] double utilization() const {
    const std::uint64_t total = completion_cycle;
    return total > 0 ? static_cast<double>(work_cycles) /
                           static_cast<double>(total)
                     : 1.0;
  }
};

class Processor {
 public:
  Processor(std::uint32_t id, trace::TraceSource& source, cache::Cache& cache,
            bus::BusInterface& iface, Simulator& sim);

  void tick();

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] bool done() const { return state_ == ProcState::kDone; }
  [[nodiscard]] ProcState state() const { return state_; }
  [[nodiscard]] const ProcStats& stats() const { return stats_; }

  /// Attaches the per-processor metrics slot (null = metrics disabled).
  /// Every ProcStats increment is mirrored one-for-one into the attribution
  /// ledger, so sum(categories) == completion_cycle exactly (oracle #6).
  void set_metrics(obs::ProcMetrics* mx) { mx_ = mx; }

  // --- simulator/scheme entry points -------------------------------------

  /// Queues a transaction for this processor's cache-bus buffer.
  void push_pending(bus::Transaction* txn) { pending_.push_back(txn); }
  /// As push_pending but ahead of other not-yet-buffered transactions
  /// (conversion re-issues that must keep their program-order slot).
  void push_pending_front(bus::Transaction* txn) { pending_.push_front(txn); }

  /// The transaction this processor stalls on completed.
  void on_txn_complete(bus::Transaction* txn);

  /// Swap the stalled-on transaction (upgrade converted to a read-exclusive).
  void replace_wait_txn(bus::Transaction* from, bus::Transaction* to);

  /// Lock scheme: stall until `txn` completes (on_txn_complete will forward
  /// to the scheme).
  void stall_on_txn(bus::Transaction* txn);
  /// Lock scheme: wait for the lock (spinning or passively).  `barrier`
  /// re-attributes the wait to the barrier category (the simulator's barrier
  /// path parks arrivals through the same passive-wait machinery).
  void enter_lock_wait(bool spinning, bool barrier = false);
  /// Lock scheme: the acquire (or release) finished; resume the trace.
  void lock_acquired();
  void lock_release_done();

  [[nodiscard]] bool fence_pending() const;

  // --- quiescence fast-forward --------------------------------------------

  /// "No self-generated future event": returned by cycles_until_next_event()
  /// for processors that only react to external stimuli (spinners, passive
  /// lock/barrier waiters, finished traces).
  static constexpr std::uint64_t kNever = ~0ULL;

  /// Cycles until this processor next does anything beyond its bulk-
  /// accountable per-cycle bookkeeping, assuming the machine stays quiescent
  /// (no transaction anywhere, so no completion/invalidation can arrive):
  ///   * kRunning counting down a work gap: the tick that issues the next
  ///     reference is `gap_left_` cycles away;
  ///   * kRunning at gap 0 (resume/retry): 1 — the next tick re-issues;
  ///   * the transient wait states: 1, which makes the fast-forward engine
  ///     fall back to per-cycle stepping;
  ///   * kSpin / kWaitLock / kDone: kNever — purely event-driven.
  [[nodiscard]] std::uint64_t cycles_until_next_event() const;

  /// Bulk-accounts `cycles` quiet cycles exactly as that many tick() calls
  /// would under a quiescent machine.  Precondition: the machine is quiescent
  /// and `cycles` < cycles_until_next_event().
  void skip_cycles(std::uint64_t cycles);

  // --- discrete-event core -------------------------------------------------

  /// True when no transaction waits to drain into the bus interface.
  [[nodiscard]] bool pending_empty() const { return pending_.empty(); }

  /// Cycles until this processor's next tick() can do anything beyond the
  /// per-cycle bookkeeping that settle() reproduces in bulk, from its own
  /// state alone (the DES core layers machine events — completions,
  /// invalidations, timers — on top and re-schedules at each one):
  ///   * pending transactions to drain: 1 (every tick drains);
  ///   * kRunning: the issuing tick, gap_left_ away (1 at gap 0);
  ///   * kStallStructural / kWaitFence: 1 — these re-examine machine state
  ///     every tick and are never settled lazily;
  ///   * kWaitMem / kWaitLock / kSpin / kDone: kNever — pure stall counting
  ///     (or nothing) until an external event arrives.  The caller applies
  ///     the scheme's spinner veto on top for kSpin.
  /// Inline: the DES core calls this for every processor it re-schedules.
  [[nodiscard]] std::uint64_t next_due_delta() const {
    if (!pending_.empty()) return 1;
    switch (state_) {
      case ProcState::kRunning:
        return gap_left_ > 0 ? gap_left_ : 1;
      case ProcState::kStallStructural:
      case ProcState::kWaitFence:
        return 1;
      case ProcState::kWaitMem:
      case ProcState::kWaitLock:
      case ProcState::kSpin:
      case ProcState::kDone:
        return kNever;
    }
    return 1;
  }

  /// Bulk-accounts `cycles` un-ticked cycles ending at `through_cycle`
  /// exactly as that many tick() calls would, given that nothing external
  /// touched this processor over the span (the DES core settles before every
  /// mutation).  Also stamps ticked_cycle_ = through_cycle so the
  /// end-of-trace wake attribution in advance_after_event() sees the same
  /// pre-tick/post-tick distinction as per-cycle execution.
  void settle(std::uint64_t cycles, std::uint64_t through_cycle);

 private:
  enum class WaitMode : std::uint8_t {
    kRefSatisfied,  // completion satisfies the current event; advance
    kRefRetry,      // completion requires re-executing the current event
    kLockStep,      // forward completion to the lock scheme
  };
  enum class IssueResult : std::uint8_t {
    kAdvance,      // event done; move to the next one
    kStalled,      // state changed; stop issuing
    kSelfManaged,  // lock op: the scheme advanced or stalled us already
  };

  void issue_loop();
  IssueResult try_issue(const trace::Event& e);
  IssueResult issue_mem_ref(const trace::Event& e);
  IssueResult issue_lock_op(const trace::Event& e);
  void advance_after_event();
  /// Moves pending transactions into the interface buffer; true when empty.
  bool drain_pending();
  void count_stall_cycle();

  /// Metrics: which StallCat the current wait state's cycles belong to.
  /// Only called with mx_ attached and state_ a wait state.
  [[nodiscard]] obs::StallCat classify_wait_cycle() const;
  /// Metrics: primes resume_cat_ at every wait-state entry, so a wake that
  /// arrives before this processor ever counted a stall cycle (e.g. a timer
  /// firing in the next cycle's pre-tick phases) still resumes with the
  /// right category.
  void note_wait_entered();

  std::uint32_t id_;
  trace::TraceSource& source_;
  cache::Cache& cache_;
  bus::BusInterface& iface_;
  Simulator& sim_;

  ProcState state_ = ProcState::kRunning;
  trace::Event cur_{};
  bool has_cur_ = false;
  std::uint32_t gap_left_ = 0;

  bool resuming_sync_ = false;  // re-issuing a lock event after its fence
  std::deque<bus::Transaction*> pending_;
  bus::Transaction* wait_txn_ = nullptr;
  WaitMode wait_mode_ = WaitMode::kRefSatisfied;
  bus::StallCause wait_cause_ = bus::StallCause::kCacheMiss;
  std::uint64_t ticked_cycle_ = 0;  // last cycle whose tick() ran

  ProcStats stats_;

  // --- metrics (null / inert unless set_metrics attached a slot) ----------
  obs::ProcMetrics* mx_ = nullptr;
  /// Category charged for a resume/retry cycle (the gap-0 stall tick() books
  /// after a wake) and for the end-of-trace pre-tick-wake cycle: the cause of
  /// the wait just left.
  obs::StallCat resume_cat_ = obs::StallCat::kCompute;
  bool wait_is_barrier_ = false;  // current kWaitLock parks a barrier arrival
};

}  // namespace syncpat::core

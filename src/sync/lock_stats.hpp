// Lock contention statistics (paper Tables 2, 4, 6, 8).
//
// A *transfer* is "the number of times a lock is released by a processor and
// acquired by another waiting processor"; the *waiters at transfer* count is
// "the number of processors still waiting for the lock after it has been
// released by one processor and acquired by the first waiter".  Transfer
// time measures release-to-next-acquire latency (the paper quotes
// ~1.2-1.5 cycles for its queuing-lock approximation and ~21-25 for T&T&S).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/histogram.hpp"
#include "util/running_stat.hpp"

namespace syncpat::obs {
class EventRecorder;
class MetricsRegistry;
}

namespace syncpat::sync {

struct LockAggregate {
  std::uint64_t acquisitions = 0;
  std::uint64_t transfers = 0;
  util::RunningStat hold_cycles;           // all acquisitions
  util::RunningStat hold_cycles_transfer;  // acquisitions whose release handed off
  util::RunningStat waiters_at_transfer;   // still waiting after the hand-off
  util::RunningStat transfer_cycles;       // release-complete -> next acquire
  util::Histogram transfer_hist;
};

class LockStatsCollector {
 public:
  /// Processor `proc` now owns the lock.  `waiters_now` is the number of
  /// *other* processors still waiting at this instant — the scheme's live
  /// queue, not a snapshot from release time, so hand-off-style locks
  /// (MCS/CLH/Anderson) whose successors enqueue before the release count
  /// arrivals during the hand-off window too.
  void acquired(std::uint32_t lock_line, std::uint32_t proc, std::uint64_t now,
                std::uint64_t waiters_now);

  /// The owner issued its releasing access at `now`.  Hold time ends here
  /// (the critical section is over); the release access itself and the
  /// hand-off are transfer overhead, measured separately.
  void release_issued(std::uint32_t lock_line, std::uint64_t now);

  /// The lock was released at `now` with `waiters_left` processors still
  /// waiting *after* the next owner (if any) was chosen.  `transferred` is
  /// true when a waiting processor takes the lock.
  void released(std::uint32_t lock_line, std::uint64_t now, bool transferred,
                std::uint64_t waiters_left);

  /// Every lock scheme funnels through this collector, so mirroring the
  /// calls as trace events here instruments all schemes at once and keeps
  /// hand-off event counts equal to the `transfers` aggregate by
  /// construction.  Null (the default) emits nothing.
  void set_recorder(obs::EventRecorder* recorder) { recorder_ = recorder; }

  /// Same funnel, second consumer: mirrors per-lock contention into the
  /// metrics registry's histograms (waiters-at-acquire, hold, hand-off).
  /// The mirrored counts are conserved against the aggregates by
  /// construction: waiters_at_acquire.count() == acquisitions and
  /// handoff_cycles.count() == transfers.  Null (the default) records
  /// nothing.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  [[nodiscard]] const LockAggregate& total() const { return total_; }
  [[nodiscard]] const std::unordered_map<std::uint32_t, LockAggregate>& per_lock()
      const {
    return per_lock_;
  }

 private:
  struct Live {
    std::uint64_t acquire_time = 0;
    std::uint64_t release_time = 0;
    std::uint64_t release_issue_time = 0;
    bool release_issue_valid = false;
    bool transfer_pending = false;
  };

  LockAggregate total_;
  std::unordered_map<std::uint32_t, LockAggregate> per_lock_;
  std::unordered_map<std::uint32_t, Live> live_;
  obs::EventRecorder* recorder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace syncpat::sync

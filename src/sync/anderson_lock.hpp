// Anderson's array-based queue lock ([3], "The Performance of Spin-Lock
// Alternatives for Shared-Memory Multiprocessors").
//
// Acquire atomically fetch&increments a counter to claim an array slot and
// spins on that slot's *own* cache line; release writes the next slot.
// Unlike T&T&S (every waiter re-reads and races) or the ticket lock (every
// waiter re-reads), a release here invalidates exactly one waiter's line:
// one re-read, no burst — queue-lock behaviour from plain coherence,
// trading an array of cache lines per lock for the pointer queue of
// Graunke-Thakkar.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"

namespace syncpat::sync {

class AndersonLock final : public LockScheme {
 public:
  AndersonLock(SchemeServices& services, LockStatsCollector& stats)
      : services_(services), stats_(stats) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override;
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override;
  void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                       std::uint8_t step) override;
  void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) override;

  [[nodiscard]] const char* name() const override { return "anderson"; }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const override;
  /// Slot spinners wake only via the releaser's single-line invalidation, so
  /// the quiescence fast-forward may skip over them.
  [[nodiscard]] bool spinner_skippable(std::uint32_t /*proc*/,
                                       std::uint32_t /*spin_line*/) const override {
    return true;
  }

  /// The cache line of array slot `slot` of the lock at `lock_line`.
  [[nodiscard]] std::uint32_t slot_line(std::uint32_t lock_line,
                                        std::uint32_t slot) const;
  /// Lines in the per-lock slot ring: max(64, bit_ceil(num_procs)), so every
  /// outstanding waiter spins on its own line at any machine size.
  [[nodiscard]] std::uint32_t slot_ring_size() const;

 private:
  struct LockState {
    std::int32_t owner = -1;
    bool handoff_pending = false;  // a dequeued waiter's grant is in flight
    std::uint64_t next_ticket = 0;
    std::deque<std::uint32_t> queue;                       // waiting procs
    std::unordered_map<std::uint32_t, std::uint32_t> slot_of;
  };

  void spin_on_slot(std::uint32_t proc, std::uint32_t lock_line);

  SchemeServices& services_;
  LockStatsCollector& stats_;
  std::unordered_map<std::uint32_t, LockState> locks_;
  std::unordered_map<std::uint32_t, std::uint32_t> slot_to_lock_;
  std::unordered_set<std::uint32_t> granted_;  // procs whose slot was flipped
};

}  // namespace syncpat::sync

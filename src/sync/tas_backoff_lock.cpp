#include "sync/tas_backoff_lock.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace syncpat::sync {

void TasBackoffLock::begin_acquire(std::uint32_t proc,
                                   std::uint32_t lock_line) {
  locks_[lock_line].trying.insert(proc);
  backoff_[proc] = kInitialBackoff;
  attempt(proc, lock_line);
}

void TasBackoffLock::attempt(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  const bool contended =
      (lock.owner >= 0 && lock.owner != static_cast<std::int32_t>(proc)) ||
      lock.trying.size() > 1;
  services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                           /*forced=*/true,
                           contended ? bus::StallCause::kLockWait
                                     : bus::StallCause::kCacheMiss,
                           /*stalls=*/true, kStepTas);
}

void TasBackoffLock::on_txn_complete(std::uint32_t proc,
                                     std::uint32_t line_addr,
                                     std::uint8_t step) {
  LockState& lock = locks_[line_addr];
  switch (step) {
    case kStepTas:
      if (lock.owner < 0) {
        lock.owner = static_cast<std::int32_t>(proc);
        lock.trying.erase(proc);
        stats_.acquired(line_addr, proc, services_.now(), lock.trying.size());
        services_.proc_acquired(proc);
      } else {
        // Failed: back off quietly, then retry with doubled delay.
        std::uint64_t& delay = backoff_[proc];
        services_.proc_wait(proc, /*spinning=*/false, 0);
        services_.schedule_timer(proc, line_addr, delay);
        delay = std::min(delay * 2, kMaxBackoff);
      }
      break;
    case kStepRelease: {
      const bool transfer = !lock.trying.empty();
      lock.owner = -1;
      stats_.released(line_addr, services_.now(), transfer,
                      transfer ? lock.trying.size() - 1 : 0);
      services_.proc_release_done(proc);
      break;
    }
    default:
      SYNCPAT_ASSERT_MSG(false, "unexpected T&S-backoff step");
  }
}

void TasBackoffLock::on_timer(std::uint32_t proc, std::uint32_t line_addr) {
  attempt(proc, line_addr);
}

void TasBackoffLock::on_spin_invalidated(std::uint32_t /*proc*/,
                                         std::uint32_t /*line*/) {
  SYNCPAT_ASSERT(false);  // backoff waiters are timer-driven, not spinning
}

void TasBackoffLock::begin_release(std::uint32_t proc,
                                   std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  SYNCPAT_ASSERT_MSG(lock.owner == static_cast<std::int32_t>(proc),
                     "T&S-backoff release by non-owner");
  stats_.release_issued(lock_line, services_.now());
  const cache::LineState state = services_.line_state(proc, lock_line);
  if (state == cache::LineState::kModified ||
      state == cache::LineState::kExclusive) {
    const bool transfer = !lock.trying.empty();
    lock.owner = -1;
    stats_.released(lock_line, services_.now(), transfer,
                    transfer ? lock.trying.size() - 1 : 0);
    services_.proc_release_done(proc);
    return;
  }
  const bus::TxnKind kind = (state == cache::LineState::kShared)
                                ? bus::TxnKind::kUpgrade
                                : bus::TxnKind::kReadX;
  services_.issue_lock_txn(proc, lock_line, kind, /*forced=*/true,
                           bus::StallCause::kCacheMiss, /*stalls=*/true,
                           kStepRelease);
}

bool TasBackoffLock::held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const {
  auto it = locks_.find(lock_line);
  if (it == locks_.end()) return false;
  return it->second.owner >= 0 &&
         it->second.owner != static_cast<std::int32_t>(proc);
}

}  // namespace syncpat::sync

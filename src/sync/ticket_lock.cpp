#include "sync/ticket_lock.hpp"

#include "util/assert.hpp"

namespace syncpat::sync {

void TicketLock::begin_acquire(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  const bool contended = lock.owner >= 0 || !lock.ticket_of.empty();
  // Fetch-and-increment of the ticket counter: an atomic ownership
  // transaction on the ticket line.
  services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                           /*forced=*/true,
                           contended ? bus::StallCause::kLockWait
                                     : bus::StallCause::kCacheMiss,
                           /*stalls=*/true, kStepAcquire);
}

void TicketLock::spin_or_acquire(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  const auto it = lock.ticket_of.find(proc);
  SYNCPAT_ASSERT(it != lock.ticket_of.end());
  if (it->second == lock.now_serving && lock.owner < 0) {
    lock.owner = static_cast<std::int32_t>(proc);
    lock.ticket_of.erase(it);
    stats_.acquired(lock_line, proc, services_.now(), lock.ticket_of.size());
    services_.proc_acquired(proc);
    return;
  }
  const std::uint32_t serving = serving_line(lock_line);
  const cache::LineState state = services_.line_state(proc, serving);
  if (state == cache::LineState::kShared || state == cache::LineState::kExclusive ||
      state == cache::LineState::kModified) {
    services_.proc_wait(proc, /*spinning=*/true, serving);
  } else {
    services_.issue_lock_txn(proc, serving, bus::TxnKind::kRead,
                             /*forced=*/false, bus::StallCause::kLockWait,
                             /*stalls=*/true, kStepSpinRead);
  }
}

void TicketLock::on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                                 std::uint8_t step) {
  switch (step) {
    case kStepAcquire: {
      LockState& lock = locks_[line_addr];
      lock.ticket_of[proc] = lock.next_ticket++;
      spin_or_acquire(proc, line_addr);
      break;
    }
    case kStepSpinRead:
      spin_or_acquire(proc, lock_of_serving(line_addr));
      break;
    case kStepRelease: {
      LockState& lock = locks_[lock_of_serving(line_addr)];
      ++lock.now_serving;
      const bool transfer = !lock.ticket_of.empty();
      lock.owner = -1;
      stats_.released(lock_of_serving(line_addr), services_.now(), transfer,
                      transfer ? lock.ticket_of.size() - 1 : 0);
      // Spinners re-read after the invalidation; the matching ticket
      // acquires.  (The release transaction's snoop triggered
      // on_spin_invalidated for each registered spinner.)
      services_.proc_release_done(proc);
      break;
    }
    default:
      SYNCPAT_ASSERT_MSG(false, "unexpected ticket-lock step");
  }
}

void TicketLock::on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) {
  services_.issue_lock_txn(proc, line_addr, bus::TxnKind::kRead,
                           /*forced=*/false, bus::StallCause::kLockWait,
                           /*stalls=*/true, kStepSpinRead);
}

void TicketLock::begin_release(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  SYNCPAT_ASSERT_MSG(lock.owner == static_cast<std::int32_t>(proc),
                     "ticket release by non-owner");
  stats_.release_issued(lock_line, services_.now());
  const std::uint32_t serving = serving_line(lock_line);
  const cache::LineState state = services_.line_state(proc, serving);
  if ((state == cache::LineState::kModified ||
       state == cache::LineState::kExclusive) &&
      lock.ticket_of.empty()) {
    // Exclusive copy and nobody waiting: silent store.
    ++lock.now_serving;
    lock.owner = -1;
    stats_.released(lock_line, services_.now(), false, 0);
    services_.proc_release_done(proc);
    return;
  }
  const bus::TxnKind kind = (state == cache::LineState::kShared)
                                ? bus::TxnKind::kUpgrade
                                : bus::TxnKind::kReadX;
  services_.issue_lock_txn(proc, serving, kind, /*forced=*/true,
                           bus::StallCause::kCacheMiss, /*stalls=*/true,
                           kStepRelease);
}

bool TicketLock::held_by_other(std::uint32_t proc,
                               std::uint32_t lock_line) const {
  auto it = locks_.find(lock_line);
  if (it == locks_.end()) return false;
  return it->second.owner >= 0 &&
         it->second.owner != static_cast<std::int32_t>(proc);
}

}  // namespace syncpat::sync

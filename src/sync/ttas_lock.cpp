#include "sync/ttas_lock.hpp"

#include "util/assert.hpp"

namespace syncpat::sync {

bus::StallCause TtasLock::acquire_cause(std::uint32_t proc,
                                        const LockState& lock) const {
  // Waiting is "lock wait" when the lock is held by someone else or other
  // processors are contending for the transfer; an uncontended acquire is an
  // ordinary memory access (cache-miss stall), matching the paper's ~0% lock
  // stalls for Pverify despite its long lock holds.
  const bool contended =
      (lock.owner >= 0 && lock.owner != static_cast<std::int32_t>(proc)) ||
      lock.trying.size() > 1;
  return contended ? bus::StallCause::kLockWait : bus::StallCause::kCacheMiss;
}

void TtasLock::begin_acquire(std::uint32_t proc, std::uint32_t lock_line) {
  locks_[lock_line].trying.insert(proc);
  test(proc, lock_line);
}

void TtasLock::test(std::uint32_t proc, std::uint32_t lock_line) {
  const cache::LineState state = services_.line_state(proc, lock_line);
  if (state == cache::LineState::kShared || state == cache::LineState::kExclusive ||
      state == cache::LineState::kModified) {
    evaluate(proc, lock_line);  // cached read: free
    return;
  }
  services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kRead,
                           /*forced=*/false, acquire_cause(proc, locks_[lock_line]),
                           /*stalls=*/true, kStepSpinRead);
}

void TtasLock::evaluate(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  if (lock.owner < 0) {
    // Observed free: race a test-and-set.  If our copy is Shared an
    // invalidation suffices; otherwise fetch the line for ownership.  The
    // engine serializes in-flight transactions per line, so completions —
    // and therefore the atomic winner — are bus-ordered.
    const cache::LineState state = services_.line_state(proc, lock_line);
    const bus::TxnKind kind = (state == cache::LineState::kShared)
                                  ? bus::TxnKind::kUpgrade
                                  : bus::TxnKind::kReadX;
    services_.issue_lock_txn(proc, lock_line, kind, /*forced=*/true,
                             acquire_cause(proc, lock), /*stalls=*/true, kStepTas);
  } else {
    // Held: spin on the cached copy; no bus traffic until invalidated.
    services_.proc_wait(proc, /*spinning=*/true, lock_line);
  }
}

void TtasLock::on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                               std::uint8_t step) {
  LockState& lock = locks_[line_addr];
  switch (step) {
    case kStepSpinRead:
      evaluate(proc, line_addr);
      break;
    case kStepTas:
      if (lock.owner < 0) {
        lock.owner = static_cast<std::int32_t>(proc);
        lock.trying.erase(proc);
        stats_.acquired(line_addr, proc, services_.now(), lock.trying.size());
        services_.proc_acquired(proc);
      } else {
        // Lost the race; our test-and-set wrote "locked" over "locked", and
        // we now hold the only valid copy — spin on it.
        services_.proc_wait(proc, /*spinning=*/true, line_addr);
      }
      break;
    case kStepRelease: {
      const bool transfer = !lock.trying.empty();
      lock.owner = -1;
      stats_.released(line_addr, services_.now(), transfer,
                      transfer ? lock.trying.size() - 1 : 0);
      services_.proc_release_done(proc);
      break;
    }
    default:
      SYNCPAT_ASSERT_MSG(false, "unexpected T&T&S step");
  }
}

void TtasLock::on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) {
  // Our cached copy died: the spin loop misses and re-reads over the bus.
  services_.issue_lock_txn(proc, line_addr, bus::TxnKind::kRead,
                           /*forced=*/false, bus::StallCause::kLockWait,
                           /*stalls=*/true, kStepSpinRead);
}

void TtasLock::begin_release(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  SYNCPAT_ASSERT_MSG(lock.owner == static_cast<std::int32_t>(proc),
                     "T&T&S release by non-owner");
  stats_.release_issued(lock_line, services_.now());
  const cache::LineState state = services_.line_state(proc, lock_line);
  if (state == cache::LineState::kModified ||
      state == cache::LineState::kExclusive) {
    // Exclusive copy: the store hits silently; nobody else holds the line.
    const bool transfer = !lock.trying.empty();
    lock.owner = -1;
    stats_.released(lock_line, services_.now(), transfer,
                    transfer ? lock.trying.size() - 1 : 0);
    services_.proc_release_done(proc);
    return;
  }
  // Shared (spinners hold copies) or evicted: the store needs the bus.  Its
  // grant-time snoop invalidates every spinner — the start of the flurry.
  const bus::TxnKind kind = (state == cache::LineState::kShared)
                                ? bus::TxnKind::kUpgrade
                                : bus::TxnKind::kReadX;
  services_.issue_lock_txn(proc, lock_line, kind, /*forced=*/true,
                           bus::StallCause::kCacheMiss, /*stalls=*/true,
                           kStepRelease);
}

bool TtasLock::held_by_other(std::uint32_t proc,
                             std::uint32_t lock_line) const {
  auto it = locks_.find(lock_line);
  if (it == locks_.end()) return false;
  return it->second.owner >= 0 &&
         it->second.owner != static_cast<std::int32_t>(proc);
}

}  // namespace syncpat::sync

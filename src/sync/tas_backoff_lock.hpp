// Test-and-set with exponential backoff (Anderson [3]).
//
// Like the naive spin lock, every attempt is an atomic ownership
// transaction; but after a failed attempt the processor backs off for an
// exponentially growing number of cycles before retrying, trading
// acquisition latency for bus bandwidth.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"

namespace syncpat::sync {

class TasBackoffLock final : public LockScheme {
 public:
  static constexpr std::uint64_t kInitialBackoff = 4;
  static constexpr std::uint64_t kMaxBackoff = 1024;

  TasBackoffLock(SchemeServices& services, LockStatsCollector& stats)
      : services_(services), stats_(stats) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override;
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override;
  void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                       std::uint8_t step) override;
  void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) override;
  void on_timer(std::uint32_t proc, std::uint32_t line_addr) override;

  [[nodiscard]] const char* name() const override { return "tas-backoff"; }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const override;

 private:
  struct LockState {
    std::int32_t owner = -1;
    std::unordered_set<std::uint32_t> trying;
  };

  void attempt(std::uint32_t proc, std::uint32_t lock_line);

  SchemeServices& services_;
  LockStatsCollector& stats_;
  std::unordered_map<std::uint32_t, LockState> locks_;
  std::unordered_map<std::uint32_t, std::uint64_t> backoff_;  // per proc
};

}  // namespace syncpat::sync

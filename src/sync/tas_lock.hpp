// Naive test-and-set spin lock (baseline from Anderson [3]).
//
// Every waiter hammers atomic test-and-set transactions back to back; each
// attempt is an ownership transaction on the lock line, so waiters saturate
// the bus and slow everyone down — the pathology that motivated
// test-and-test-and-set and queuing locks.  Included for the lock-scheme
// shootout ablation; the paper's own experiments use T&T&S and queuing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"

namespace syncpat::sync {

class TasLock final : public LockScheme {
 public:
  TasLock(SchemeServices& services, LockStatsCollector& stats)
      : services_(services), stats_(stats) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override;
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override;
  void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                       std::uint8_t step) override;
  void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) override;

  [[nodiscard]] const char* name() const override { return "tas"; }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const override;

 private:
  struct LockState {
    std::int32_t owner = -1;
    std::unordered_set<std::uint32_t> trying;
  };

  void attempt(std::uint32_t proc, std::uint32_t lock_line);

  SchemeServices& services_;
  LockStatsCollector& stats_;
  std::unordered_map<std::uint32_t, LockState> locks_;
};

}  // namespace syncpat::sync

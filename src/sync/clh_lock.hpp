// CLH implicit-queue lock (Craig; Landin & Hagersten — via Golab's
// decomposition in "Deconstructing Queue-Based Mutual Exclusion").
//
// Acquire atomically swaps the lock's tail pointer to the acquirer's node
// (one forced ownership transaction on the lock line) and then spins on the
// *predecessor's* node line — the queue is implicit in the chain of
// predecessor pointers, so no MCS-style link-back write is needed: a
// contended acquire is swap + spin, one transaction cheaper than MCS.
// Release always writes the releaser's *own* node line ("unlocked"), which
// is exactly the line its successor spins on: one targeted invalidation
// wakes one waiter.  The flip side is that a waiter spins on a line homed
// with its predecessor — under the DSM cost model CLH re-reads pay the
// remote-home penalty MCS's local-node spinning avoids.
//
// Queue nodes are one cache line per processor in a dedicated slice of the
// lock region (above the MCS node slice).  A processor waits on at most one
// lock at a time, so a single node per processor suffices; under nested
// holds a release of the outer lock may spuriously invalidate a spinner of
// the inner lock sharing the node line, costing a re-read but never a wrong
// wake (grants are decided by the scheme's queue, not by line contents).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"

namespace syncpat::sync {

class ClhLock final : public LockScheme {
 public:
  ClhLock(SchemeServices& services, LockStatsCollector& stats)
      : services_(services), stats_(stats) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override;
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override;
  void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                       std::uint8_t step) override;
  void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) override;

  [[nodiscard]] const char* name() const override { return "clh"; }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const override;
  /// Predecessor-node spinners wake only via the releaser's targeted
  /// invalidation, so the quiescence fast-forward may skip over them.
  [[nodiscard]] bool spinner_skippable(std::uint32_t /*proc*/,
                                       std::uint32_t /*spin_line*/) const override {
    return true;
  }

  /// The queue-node cache line of processor `proc`.
  [[nodiscard]] static std::uint32_t node_line(std::uint32_t proc);

 private:
  struct LockState {
    std::int32_t owner = -1;
    std::int32_t tail = -1;        // last swapper; -1 == never contended
    bool tail_unlocked = false;    // tail's node already released (idle lock)
    bool handoff_pending = false;  // a dequeued waiter's grant is in flight
    std::deque<std::uint32_t> queue;  // waiting procs in swap order
  };

  void spin_on_pred_node(std::uint32_t proc, std::uint32_t pred,
                         std::uint32_t lock_line);
  void grant_or_spin(std::uint32_t proc, std::uint32_t line_addr,
                     std::uint32_t lock_line);

  SchemeServices& services_;
  LockStatsCollector& stats_;
  std::unordered_map<std::uint32_t, LockState> locks_;
  std::unordered_map<std::uint32_t, std::uint32_t> spin_lock_of_;
  std::unordered_set<std::uint32_t> granted_;  // procs whose pred unlocked
};

}  // namespace syncpat::sync

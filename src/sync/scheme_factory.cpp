#include "sync/scheme_factory.hpp"

#include <stdexcept>

#include "sync/anderson_lock.hpp"
#include "sync/clh_lock.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/queuing_lock.hpp"
#include "sync/tas_backoff_lock.hpp"
#include "sync/tas_lock.hpp"
#include "sync/ticket_lock.hpp"
#include "sync/ttas_lock.hpp"

namespace syncpat::sync {

const char* scheme_kind_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kQueuing: return "queuing";
    case SchemeKind::kQueuingExact: return "queuing-exact";
    case SchemeKind::kTtas: return "ttas";
    case SchemeKind::kTas: return "tas";
    case SchemeKind::kTasBackoff: return "tas-backoff";
    case SchemeKind::kTicket: return "ticket";
    case SchemeKind::kAnderson: return "anderson";
    case SchemeKind::kMcs: return "mcs";
    case SchemeKind::kClh: return "clh";
  }
  return "?";
}

SchemeKind scheme_kind_from_name(const std::string& name) {
  for (const SchemeKind kind : all_scheme_kinds()) {
    if (name == scheme_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown lock scheme: " + name);
}

const std::vector<SchemeKind>& all_scheme_kinds() {
  static const std::vector<SchemeKind> kAll = {
      SchemeKind::kQueuing, SchemeKind::kQueuingExact, SchemeKind::kTtas,
      SchemeKind::kTas,     SchemeKind::kTasBackoff,   SchemeKind::kTicket,
      SchemeKind::kAnderson, SchemeKind::kMcs,         SchemeKind::kClh};
  return kAll;
}

std::unique_ptr<LockScheme> make_scheme(SchemeKind kind, SchemeServices& services,
                                        LockStatsCollector& stats,
                                        std::uint32_t line_bytes) {
  switch (kind) {
    case SchemeKind::kQueuing:
      return std::make_unique<QueuingLock>(services, stats, /*exact=*/false);
    case SchemeKind::kQueuingExact:
      return std::make_unique<QueuingLock>(services, stats, /*exact=*/true);
    case SchemeKind::kTtas:
      return std::make_unique<TtasLock>(services, stats);
    case SchemeKind::kTas:
      return std::make_unique<TasLock>(services, stats);
    case SchemeKind::kTasBackoff:
      return std::make_unique<TasBackoffLock>(services, stats);
    case SchemeKind::kTicket:
      return std::make_unique<TicketLock>(services, stats, line_bytes);
    case SchemeKind::kAnderson:
      return std::make_unique<AndersonLock>(services, stats);
    case SchemeKind::kMcs:
      return std::make_unique<McsLock>(services, stats);
    case SchemeKind::kClh:
      return std::make_unique<ClhLock>(services, stats);
  }
  throw std::invalid_argument("unknown lock scheme kind");
}

}  // namespace syncpat::sync

// MCS list-based queue lock (Mellor-Crummey & Scott; Golab's modular
// decomposition in "Deconstructing Queue-Based Mutual Exclusion").
//
// Acquire atomically swaps the lock's tail pointer to the acquirer's queue
// node (one forced ownership transaction on the lock line).  A contended
// acquirer then links itself behind its predecessor — a write to the
// *predecessor's* node line — and spins on its *own* node line, so a release
// wakes exactly one waiter with one targeted invalidation.  Release with no
// successor compare&swaps the tail back to null (free when the lock line is
// still exclusive in the releaser's cache); release with a successor writes
// the successor's node line and never touches the lock word at all — the
// property that distinguishes MCS from every counter/flag scheme here.
//
// Queue nodes are one cache line per processor in a dedicated slice of the
// lock region.  A processor waits on at most one lock at a time, so a single
// node per processor suffices; under *nested* holds the outer lock's
// enqueuers may write the same node line the holder spins on for the inner
// lock, costing a spurious re-read but never a wrong wake (grants are
// decided by the scheme's queue, not by the line contents).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"

namespace syncpat::sync {

class McsLock final : public LockScheme {
 public:
  McsLock(SchemeServices& services, LockStatsCollector& stats)
      : services_(services), stats_(stats) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override;
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override;
  void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                       std::uint8_t step) override;
  void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) override;

  [[nodiscard]] const char* name() const override { return "mcs"; }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const override;
  /// Node spinners wake only via the releaser's (or an enqueuer's) targeted
  /// invalidation, so the quiescence fast-forward may skip over them.
  [[nodiscard]] bool spinner_skippable(std::uint32_t /*proc*/,
                                       std::uint32_t /*spin_line*/) const override {
    return true;
  }

  /// The queue-node cache line of processor `proc`.
  [[nodiscard]] static std::uint32_t node_line(std::uint32_t proc);

 private:
  struct LockState {
    std::int32_t owner = -1;
    std::int32_t tail = -1;        // last swapper; -1 == free (null tail)
    bool handoff_pending = false;  // a dequeued waiter's grant is in flight
    std::deque<std::uint32_t> queue;  // waiting procs in swap order
  };

  void spin_on_own_node(std::uint32_t proc, std::uint32_t lock_line);
  void grant_or_spin(std::uint32_t proc, std::uint32_t lock_line);
  void handoff(std::uint32_t proc, std::uint32_t lock_line, LockState& lock);

  SchemeServices& services_;
  LockStatsCollector& stats_;
  std::unordered_map<std::uint32_t, LockState> locks_;
  std::unordered_map<std::uint32_t, std::uint32_t> spin_lock_of_;
  std::unordered_set<std::uint32_t> granted_;  // procs whose node was flipped
};

}  // namespace syncpat::sync

#include "sync/queuing_lock.hpp"

#include "trace/address_map.hpp"
#include "util/assert.hpp"

namespace syncpat::sync {

std::uint32_t QueuingLock::spin_line(std::uint32_t proc) {
  // A dedicated 64-byte-spaced slot per processor, far above any real lock id
  // (lock ids are dense from zero; this region starts at id 2^20).
  return trace::AddressMap::kLockBase + (1u << 26) + proc * 64;
}

void QueuingLock::begin_acquire(std::uint32_t proc, std::uint32_t lock_line) {
  // One memory access: the atomic exchange that enters the queue.
  const bus::StallCause cause = held_by_other(proc, lock_line)
                                    ? bus::StallCause::kLockWait
                                    : bus::StallCause::kCacheMiss;
  services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                           /*forced=*/true, cause, /*stalls=*/true, kStepAcquire);
}

void QueuingLock::begin_release(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = state(lock_line);
  SYNCPAT_ASSERT_MSG(lock.owner == static_cast<std::int32_t>(proc),
                     "release by a processor that does not hold the lock");
  stats_.release_issued(lock_line, services_.now());
  services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                           /*forced=*/true, bus::StallCause::kCacheMiss,
                           /*stalls=*/true, kStepRelease);
}

void QueuingLock::on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                                  std::uint8_t step) {
  switch (step) {
    case kStepAcquire: {
      LockState& lock = state(line_addr);
      if (lock.owner < 0 && lock.pending_next < 0) {
        lock.owner = static_cast<std::int32_t>(proc);
        stats_.acquired(line_addr, proc, services_.now(), lock.waiters.size());
        services_.proc_acquired(proc);
      } else if (exact_) {
        // Second access of the enqueue phase: publish the spin location.
        services_.issue_lock_txn(proc, line_addr, bus::TxnKind::kReadX,
                                 /*forced=*/true, bus::StallCause::kLockWait,
                                 /*stalls=*/true, kStepEnqueue);
      } else {
        state(line_addr).waiters.push_back(proc);
        services_.proc_wait(proc, /*spinning=*/false, 0);
      }
      break;
    }
    case kStepEnqueue: {
      // The two-phase enqueue races the release: if the lock was freed with
      // an empty queue while we published our spin location, take it now
      // (the real Graunke-Thakkar exchange enqueues atomically, so this
      // window exists only in the two-access model).
      LockState& lock = state(line_addr);
      if (lock.owner < 0 && lock.pending_next < 0) {
        lock.owner = static_cast<std::int32_t>(proc);
        stats_.acquired(line_addr, proc, services_.now(), lock.waiters.size());
        services_.proc_acquired(proc);
      } else {
        lock.waiters.push_back(proc);
        services_.proc_wait(proc, /*spinning=*/false, 0);
      }
      break;
    }
    case kStepRelease: {
      LockState& lock = state(line_addr);
      const bool transfer = !lock.waiters.empty();
      lock.owner = -1;
      if (!transfer) {
        stats_.released(line_addr, services_.now(), false, 0);
        services_.proc_release_done(proc);
        break;
      }
      const std::uint32_t next = lock.waiters.front();
      lock.waiters.pop_front();
      stats_.released(line_addr, services_.now(), true, lock.waiters.size());
      if (exact_) {
        // No cache-to-cache transfer under Illinois on this path: the
        // releaser performs one more memory access (the store to the
        // waiter's spin flag).
        lock.pending_next = static_cast<std::int32_t>(next);
        services_.issue_lock_txn(proc, line_addr, bus::TxnKind::kReadX,
                                 /*forced=*/true, bus::StallCause::kCacheMiss,
                                 /*stalls=*/true, kStepRelease2);
      } else {
        lock.owner = static_cast<std::int32_t>(next);
        pending_handoff_[line_addr] = next;
        services_.issue_handoff(proc, line_addr);
        services_.proc_release_done(proc);
      }
      break;
    }
    case kStepRelease2: {
      // Exact variant: releaser is done; the waiter now re-reads its
      // invalidated spin flag (its own memory access) before running.
      LockState& lock = state(line_addr);
      SYNCPAT_ASSERT(lock.pending_next >= 0);
      const auto next = static_cast<std::uint32_t>(lock.pending_next);
      services_.proc_release_done(proc);
      services_.issue_lock_txn(next, spin_line(next), bus::TxnKind::kRead,
                               /*forced=*/true, bus::StallCause::kLockWait,
                               /*stalls=*/true, kStepSpinRead);
      break;
    }
    case kStepSpinRead: {
      // The waiter observed its spin flag flip: it owns the lock.  Find the
      // lock this processor was promoted on.
      for (auto& [line, lock] : locks_) {
        if (lock.pending_next == static_cast<std::int32_t>(proc)) {
          lock.pending_next = -1;
          lock.owner = static_cast<std::int32_t>(proc);
          stats_.acquired(line, proc, services_.now(), lock.waiters.size());
          services_.proc_acquired(proc);
          return;
        }
      }
      SYNCPAT_ASSERT_MSG(false, "spin-read completion without a pending wake-up");
      break;
    }
    default:
      SYNCPAT_ASSERT_MSG(false, "unexpected queuing-lock step");
  }
}

void QueuingLock::on_spin_invalidated(std::uint32_t /*proc*/,
                                      std::uint32_t /*line*/) {
  // Queuing-lock waiters never register coherence-driven spins.
  SYNCPAT_ASSERT(false);
}

void QueuingLock::on_handoff_granted(std::uint32_t line_addr) {
  auto it = pending_handoff_.find(line_addr);
  SYNCPAT_ASSERT(it != pending_handoff_.end());
  const std::uint32_t next = it->second;
  pending_handoff_.erase(it);
  stats_.acquired(line_addr, next, services_.now(), state(line_addr).waiters.size());
  services_.proc_acquired(next);
}

bool QueuingLock::held_by_other(std::uint32_t proc,
                                std::uint32_t lock_line) const {
  auto it = locks_.find(lock_line);
  if (it == locks_.end()) return false;
  return it->second.owner >= 0 &&
         it->second.owner != static_cast<std::int32_t>(proc);
}

}  // namespace syncpat::sync

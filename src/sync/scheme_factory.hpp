// Lock scheme selection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sync/scheme.hpp"
#include "sync/lock_stats.hpp"

namespace syncpat::sync {

enum class SchemeKind : std::uint8_t {
  kQueuing,       // paper's approximation of Graunke-Thakkar queuing locks
  kQueuingExact,  // with the two extra bus transactions (§2.4 future work)
  kTtas,          // test-and-test-and-set
  kTas,           // naive test-and-set (ablation baseline)
  kTasBackoff,    // test-and-set with exponential backoff (Anderson [3])
  kTicket,        // ticket lock (ablation baseline)
  kAnderson,      // Anderson's array-based queue lock (Anderson [3])
  kMcs,           // MCS list-based queue lock (Mellor-Crummey & Scott)
  kClh,           // CLH implicit-queue lock (Craig; Landin & Hagersten)
};

/// All schemes, for sweeps and parameterized tests.
[[nodiscard]] const std::vector<SchemeKind>& all_scheme_kinds();

[[nodiscard]] const char* scheme_kind_name(SchemeKind kind);
[[nodiscard]] SchemeKind scheme_kind_from_name(const std::string& name);

[[nodiscard]] std::unique_ptr<LockScheme> make_scheme(SchemeKind kind,
                                                      SchemeServices& services,
                                                      LockStatsCollector& stats,
                                                      std::uint32_t line_bytes);

}  // namespace syncpat::sync

#include "sync/anderson_lock.hpp"

#include <algorithm>
#include <bit>

#include "trace/address_map.hpp"
#include "util/assert.hpp"

namespace syncpat::sync {

std::uint32_t AndersonLock::slot_ring_size() const {
  // One slot per processor, like Anderson's array: tickets are taken modulo
  // num_procs, so the ring must hold num_procs distinct lines or two
  // outstanding waiters would spin on one line and a release's single
  // invalidation could wake the wrong one.  Historically hardwired to 64
  // (silent slot aliasing above P = 64); kept at 64 for small machines so
  // every historical address is bit-identical.
  return std::max(64u, std::bit_ceil(services_.num_procs()));
}

std::uint32_t AndersonLock::slot_line(std::uint32_t lock_line,
                                      std::uint32_t slot) const {
  const std::uint32_t lock_id =
      (lock_line - trace::AddressMap::kLockBase) / 64;
  const std::uint32_t slots = slot_ring_size();
  const std::uint32_t stride = slots * 64u;
  if (slots == 64u) {
    // P <= 64: the historical layout — a 64-slot, 64-byte-spaced array per
    // lock in its own slice of the lock region (above the lock words, below
    // the barrier slice).
    const std::uint32_t addr = trace::AddressMap::kLockBase + (1u << 24) +
                               lock_id * stride + (slot % slots) * 64u;
    SYNCPAT_ASSERT_MSG(addr < trace::AddressMap::kLockBase + (1u << 25),
                       "Anderson slot arrays overflow their region: too many "
                       "locks for the 16 MiB slot slice");
    return addr;
  }
  // P > 64 (configurations that previously crashed): wider rings live in the
  // large slice above the Graunke-Thakkar spin flags, 128 MiB at the top of
  // the lock region.
  constexpr std::uint32_t kWideBase = trace::AddressMap::kLockBase + (1u << 27);
  const std::uint64_t addr = static_cast<std::uint64_t>(kWideBase) +
                             static_cast<std::uint64_t>(lock_id) * stride +
                             (slot % slots) * 64u;
  SYNCPAT_ASSERT_MSG(addr + 64u <= (1ull << 32),
                     "Anderson slot arrays overflow their region: too many "
                     "locks x processors for the 128 MiB wide-ring slice");
  return static_cast<std::uint32_t>(addr);
}

void AndersonLock::begin_acquire(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  const bool contended = lock.owner >= 0 || !lock.queue.empty();
  // Fetch&increment of the slot counter.
  services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                           /*forced=*/true,
                           contended ? bus::StallCause::kLockWait
                                     : bus::StallCause::kCacheMiss,
                           /*stalls=*/true, kStepAcquire);
}

void AndersonLock::spin_on_slot(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  const std::uint32_t line = slot_line(lock_line, lock.slot_of.at(proc));
  slot_to_lock_[line] = lock_line;
  const cache::LineState state = services_.line_state(proc, line);
  if (state == cache::LineState::kShared ||
      state == cache::LineState::kExclusive ||
      state == cache::LineState::kModified) {
    services_.proc_wait(proc, /*spinning=*/true, line);
  } else {
    services_.issue_lock_txn(proc, line, bus::TxnKind::kRead,
                             /*forced=*/false, bus::StallCause::kLockWait,
                             /*stalls=*/true, kStepSpinRead);
  }
}

void AndersonLock::on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                                   std::uint8_t step) {
  switch (step) {
    case kStepAcquire: {
      LockState& lock = locks_[line_addr];
      lock.slot_of[proc] =
          static_cast<std::uint32_t>(lock.next_ticket++ %
                                     services_.num_procs());
      if (lock.owner < 0 && lock.queue.empty() && !lock.handoff_pending) {
        lock.owner = static_cast<std::int32_t>(proc);
        stats_.acquired(line_addr, proc, services_.now(), lock.queue.size());
        services_.proc_acquired(proc);
      } else {
        lock.queue.push_back(proc);
        spin_on_slot(proc, line_addr);
      }
      break;
    }
    case kStepSpinRead: {
      const std::uint32_t lock_line = slot_to_lock_.at(line_addr);
      LockState& lock = locks_[lock_line];
      if (granted_.erase(proc) > 0) {
        lock.owner = static_cast<std::int32_t>(proc);
        lock.handoff_pending = false;
        stats_.acquired(lock_line, proc, services_.now(), lock.queue.size());
        services_.proc_acquired(proc);
      } else {
        spin_on_slot(proc, lock_line);
      }
      break;
    }
    case kStepRelease: {
      // The write to the next waiter's slot performed; the releaser is done.
      // (Its grant-time snoop already invalidated the waiter's spin line.)
      services_.proc_release_done(proc);
      break;
    }
    default:
      SYNCPAT_ASSERT_MSG(false, "unexpected Anderson-lock step");
  }
}

void AndersonLock::on_spin_invalidated(std::uint32_t proc,
                                       std::uint32_t line_addr) {
  services_.issue_lock_txn(proc, line_addr, bus::TxnKind::kRead,
                           /*forced=*/false, bus::StallCause::kLockWait,
                           /*stalls=*/true, kStepSpinRead);
}

void AndersonLock::begin_release(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  SYNCPAT_ASSERT_MSG(lock.owner == static_cast<std::int32_t>(proc),
                     "Anderson release by non-owner");
  stats_.release_issued(lock_line, services_.now());
  if (lock.queue.empty()) {
    lock.owner = -1;
    stats_.released(lock_line, services_.now(), false, 0);
    services_.proc_release_done(proc);
    return;
  }
  const std::uint32_t next = lock.queue.front();
  lock.queue.pop_front();
  lock.owner = -1;
  lock.handoff_pending = true;
  granted_.insert(next);
  stats_.released(lock_line, services_.now(), true, lock.queue.size());
  // Write "go" into the next waiter's slot line: one targeted invalidation.
  const std::uint32_t line = slot_line(lock_line, lock.slot_of.at(next));
  slot_to_lock_[line] = lock_line;
  services_.issue_lock_txn(proc, line, bus::TxnKind::kReadX,
                           /*forced=*/true, bus::StallCause::kCacheMiss,
                           /*stalls=*/true, kStepRelease);
}

bool AndersonLock::held_by_other(std::uint32_t proc,
                                 std::uint32_t lock_line) const {
  auto it = locks_.find(lock_line);
  if (it == locks_.end()) return false;
  return it->second.owner >= 0 &&
         it->second.owner != static_cast<std::int32_t>(proc);
}

}  // namespace syncpat::sync

// Test-and-test-and-set (paper §2.4, Segall & Rudolph [17]).
//
// Waiters spin by reading the lock line from their own cache (Shared, no bus
// traffic).  The releaser's store invalidates every spinner's copy; each
// spinner then re-reads the line over the bus, sees the lock free, and races
// a test-and-set (an ownership transaction on the lock line).  One wins; the
// losers' attempts still invalidate each other and force further re-reads —
// the "flurry" of bus traffic the paper measures as a 21-25 cycle transfer
// cost and doubled bus utilization in Grav.
//
// All of that traffic emerges from the coherence protocol here: the scheme
// contains no timing constants at all.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"

namespace syncpat::sync {

class TtasLock final : public LockScheme {
 public:
  TtasLock(SchemeServices& services, LockStatsCollector& stats)
      : services_(services), stats_(stats) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override;
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override;
  void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                       std::uint8_t step) override;
  void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) override;

  [[nodiscard]] const char* name() const override { return "ttas"; }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const override;
  /// Spinners read their own Shared copy and wake only via invalidation, so
  /// the quiescence fast-forward may skip over them.
  [[nodiscard]] bool spinner_skippable(std::uint32_t /*proc*/,
                                       std::uint32_t /*spin_line*/) const override {
    return true;
  }

 private:
  struct LockState {
    std::int32_t owner = -1;
    std::unordered_set<std::uint32_t> trying;  // procs between begin and win
  };

  void test(std::uint32_t proc, std::uint32_t lock_line);
  void evaluate(std::uint32_t proc, std::uint32_t lock_line);
  [[nodiscard]] bus::StallCause acquire_cause(std::uint32_t proc,
                                              const LockState& lock) const;

  SchemeServices& services_;
  LockStatsCollector& stats_;
  std::unordered_map<std::uint32_t, LockState> locks_;
};

}  // namespace syncpat::sync

// Lock scheme interface (paper §2.4).
//
// A lock scheme is an event-driven state machine layered over the coherence
// machinery.  It never owns timing: every latency it incurs comes from the
// transactions it issues through SchemeServices, so lock-transfer costs and
// invalidation bursts *emerge* from bus arbitration and the Illinois
// protocol rather than being constants.
//
// Control flow:
//   * the processor reaches a LockAcq/LockRel trace event (after the weak-
//     ordering fence, if any) and calls begin_acquire()/begin_release();
//   * the scheme issues lock transactions; on each completion the simulator
//     calls on_txn_complete() with the scheme-private `step` tag;
//   * spin-based schemes register the line a processor spins on; when a
//     snoop invalidates that line, on_spin_invalidated() fires and the
//     scheme issues the re-read;
//   * the scheme ends an operation by calling proc_acquired() or
//     proc_release_done(), which resumes the processor's trace.
//
// The abstract lock *value* (free / held-by-p) lives in the scheme; the
// coherence protocol orders the accesses that observe it, and the global
// one-transaction-per-line-in-flight rule of the bus makes test-and-set
// completions atomic.
#pragma once

#include <cstdint>

#include "bus/transaction.hpp"
#include "cache/cache.hpp"

namespace syncpat::sync {

/// Scheme-private step tags carried on lock transactions.
enum LockStep : std::uint8_t {
  kStepAcquire = 1,   // initial acquire access / exchange
  kStepEnqueue = 2,   // exact queuing lock: second access when enqueueing
  kStepRelease = 3,   // release access
  kStepRelease2 = 4,  // exact queuing lock: post-release access
  kStepSpinRead = 5,  // spin re-read after invalidation
  kStepTas = 6,       // test-and-set attempt
  kStepBarrier = 7,   // barrier arrival (handled by the simulator, not a
                      // lock scheme: the fetch&increment of the counter)
};

/// Services the simulator provides to lock schemes.
class SchemeServices {
 public:
  virtual ~SchemeServices() = default;

  [[nodiscard]] virtual std::uint64_t now() const = 0;
  [[nodiscard]] virtual std::uint32_t num_procs() const = 0;

  /// Issues a transaction on `proc`'s behalf.  `forced` transactions are
  /// atomic operations: they go to the bus even if the line is cached.
  /// `stalls` means the processor waits for completion (on_txn_complete()
  /// fires then); non-stalling issues complete silently.
  virtual void issue_lock_txn(std::uint32_t proc, std::uint32_t line_addr,
                              bus::TxnKind kind, bool forced,
                              bus::StallCause cause, bool stalls,
                              std::uint8_t step) = 0;

  /// Issues a queuing-lock hand-off transfer from `from_proc`.  When the
  /// transfer wins bus arbitration, on_handoff_granted(line_addr) fires.
  virtual void issue_handoff(std::uint32_t from_proc, std::uint32_t line_addr) = 0;

  /// Current coherence state of `line_addr` in `proc`'s cache.
  [[nodiscard]] virtual cache::LineState line_state(std::uint32_t proc,
                                                    std::uint32_t line_addr) const = 0;

  /// Puts `proc` into the lock-wait state.  `spinning` selects in-cache
  /// spinning (invalidation of `spin_line` triggers on_spin_invalidated)
  /// versus passive waiting (queuing lock).
  virtual void proc_wait(std::uint32_t proc, bool spinning,
                         std::uint32_t spin_line) = 0;
  virtual void stop_spin(std::uint32_t proc) = 0;

  /// Resumes `proc`'s trace: the acquire (or release) is complete.
  virtual void proc_acquired(std::uint32_t proc) = 0;
  virtual void proc_release_done(std::uint32_t proc) = 0;

  /// Calls the scheme's on_timer(proc, line_addr) after `delay` cycles
  /// (exponential-backoff schemes).  The processor should be parked with
  /// proc_wait() meanwhile.
  virtual void schedule_timer(std::uint32_t proc, std::uint32_t line_addr,
                              std::uint64_t delay) = 0;
};

class LockScheme {
 public:
  virtual ~LockScheme() = default;

  virtual void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) = 0;
  virtual void begin_release(std::uint32_t proc, std::uint32_t lock_line) = 0;
  virtual void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                               std::uint8_t step) = 0;
  virtual void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) = 0;
  virtual void on_handoff_granted(std::uint32_t /*line_addr*/) {}
  virtual void on_timer(std::uint32_t /*proc*/, std::uint32_t /*line_addr*/) {}

  [[nodiscard]] virtual const char* name() const = 0;

  /// True while `lock_line` is held by a processor other than `proc`
  /// (classifies the stall cause of acquire accesses).
  [[nodiscard]] virtual bool held_by_other(std::uint32_t proc,
                                           std::uint32_t lock_line) const = 0;

  /// Fast-forward contract: true when a processor spinning in-cache on
  /// `spin_line` has no self-generated future event — it reacts only to an
  /// invalidation of its cached copy (on_spin_invalidated) or a timer, both
  /// of which the simulator tracks.  Every shipped scheme satisfies this;
  /// a scheme whose spinners poll on their own clock must return false so
  /// the quiescence skip degrades to per-cycle stepping around them.
  [[nodiscard]] virtual bool spinner_skippable(std::uint32_t /*proc*/,
                                               std::uint32_t /*spin_line*/) const {
    return true;
  }
};

}  // namespace syncpat::sync

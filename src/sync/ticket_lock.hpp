// Ticket lock (Graunke & Thakkar [12] discuss it among the queue-based
// alternatives; included for the lock-scheme shootout ablation).
//
// Acquire atomically fetch-and-increments a ticket counter (one ownership
// transaction on the lock line) and then spins reading a *now-serving*
// counter that lives on a different cache line.  Release increments
// now-serving: one invalidation, then every spinner re-reads — a burst of
// reads like T&T&S, but with no test-and-set race on top, so roughly half
// the hand-off traffic.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"

namespace syncpat::sync {

class TicketLock final : public LockScheme {
 public:
  TicketLock(SchemeServices& services, LockStatsCollector& stats,
             std::uint32_t line_bytes)
      : services_(services), stats_(stats), line_bytes_(line_bytes) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override;
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override;
  void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                       std::uint8_t step) override;
  void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) override;

  [[nodiscard]] const char* name() const override { return "ticket"; }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const override;
  /// Now-serving spinners wake only via the releaser's invalidation, so the
  /// quiescence fast-forward may skip over them.
  [[nodiscard]] bool spinner_skippable(std::uint32_t /*proc*/,
                                       std::uint32_t /*spin_line*/) const override {
    return true;
  }

  /// The now-serving counter lives on the cache line after the ticket line.
  [[nodiscard]] std::uint32_t serving_line(std::uint32_t lock_line) const {
    return lock_line + line_bytes_;
  }
  [[nodiscard]] std::uint32_t lock_of_serving(std::uint32_t serving) const {
    return serving - line_bytes_;
  }

 private:
  struct LockState {
    std::int32_t owner = -1;
    std::uint64_t next_ticket = 0;
    std::uint64_t now_serving = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> ticket_of;  // waiting procs
  };

  void spin_or_acquire(std::uint32_t proc, std::uint32_t lock_line);

  SchemeServices& services_;
  LockStatsCollector& stats_;
  std::uint32_t line_bytes_;
  std::unordered_map<std::uint32_t, LockState> locks_;
};

}  // namespace syncpat::sync

#include "sync/clh_lock.hpp"

#include "trace/address_map.hpp"
#include "util/assert.hpp"

namespace syncpat::sync {

std::uint32_t ClhLock::node_line(std::uint32_t proc) {
  // One 64-byte node line per processor, in the half-slice above the MCS
  // nodes (kLockBase + 3*2^24) and below the Graunke-Thakkar spin flags
  // (kLockBase + 2^26); 4096 processors use 256 KiB of it.
  constexpr std::uint32_t kNodeBase =
      trace::AddressMap::kLockBase + (3u << 24) + (1u << 23);
  return kNodeBase + proc * 64u;
}

void ClhLock::begin_acquire(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  const bool contended = lock.owner >= 0 || !lock.queue.empty() ||
                         lock.handoff_pending;
  // swap(tail, my-node): an atomic ownership transaction on the lock line.
  services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                           /*forced=*/true,
                           contended ? bus::StallCause::kLockWait
                                     : bus::StallCause::kCacheMiss,
                           /*stalls=*/true, kStepAcquire);
}

void ClhLock::grant_or_spin(std::uint32_t proc, std::uint32_t line_addr,
                            std::uint32_t lock_line) {
  LockState& lock = locks_.at(lock_line);
  if (granted_.erase(proc) > 0) {
    lock.owner = static_cast<std::int32_t>(proc);
    lock.handoff_pending = false;
    stats_.acquired(lock_line, proc, services_.now(), lock.queue.size());
    services_.proc_acquired(proc);
    return;
  }
  const cache::LineState state = services_.line_state(proc, line_addr);
  if (state == cache::LineState::kShared ||
      state == cache::LineState::kExclusive ||
      state == cache::LineState::kModified) {
    services_.proc_wait(proc, /*spinning=*/true, line_addr);
  } else {
    services_.issue_lock_txn(proc, line_addr, bus::TxnKind::kRead,
                             /*forced=*/false, bus::StallCause::kLockWait,
                             /*stalls=*/true, kStepSpinRead);
  }
}

void ClhLock::spin_on_pred_node(std::uint32_t proc, std::uint32_t pred,
                                std::uint32_t lock_line) {
  spin_lock_of_[proc] = lock_line;
  grant_or_spin(proc, node_line(pred), lock_line);
}

void ClhLock::on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                              std::uint8_t step) {
  switch (step) {
    case kStepAcquire: {
      LockState& lock = locks_[line_addr];
      const std::int32_t pred = lock.tail;
      lock.tail = static_cast<std::int32_t>(proc);
      if (pred < 0) {
        // Swap returned the initial (unlocked) sentinel: the lock was free.
        lock.owner = static_cast<std::int32_t>(proc);
        stats_.acquired(line_addr, proc, services_.now(), lock.queue.size());
        services_.proc_acquired(proc);
      } else if (lock.tail_unlocked) {
        // The predecessor's node was already released (idle lock): the first
        // read of it observes "unlocked" — a cache hit when re-acquiring
        // one's own previous node, one read transaction otherwise.
        lock.tail_unlocked = false;
        granted_.insert(proc);
        spin_on_pred_node(proc, static_cast<std::uint32_t>(pred), line_addr);
      } else {
        lock.queue.push_back(proc);
        spin_on_pred_node(proc, static_cast<std::uint32_t>(pred), line_addr);
      }
      break;
    }
    case kStepSpinRead:
      grant_or_spin(proc, line_addr, spin_lock_of_.at(proc));
      break;
    case kStepRelease:
      // The unlock write to the releaser's own node performed; its snoop
      // already invalidated the successor's spin line (if any).
      services_.proc_release_done(proc);
      break;
    default:
      SYNCPAT_ASSERT_MSG(false, "unexpected CLH-lock step");
  }
}

void ClhLock::on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) {
  services_.issue_lock_txn(proc, line_addr, bus::TxnKind::kRead,
                           /*forced=*/false, bus::StallCause::kLockWait,
                           /*stalls=*/true, kStepSpinRead);
}

void ClhLock::begin_release(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  SYNCPAT_ASSERT_MSG(lock.owner == static_cast<std::int32_t>(proc),
                     "CLH release by non-owner");
  stats_.release_issued(lock_line, services_.now());
  const std::uint32_t line = node_line(proc);
  const cache::LineState state = services_.line_state(proc, line);
  const bool silent = state == cache::LineState::kModified ||
                      state == cache::LineState::kExclusive;
  if (lock.queue.empty()) {
    SYNCPAT_ASSERT_MSG(lock.tail == static_cast<std::int32_t>(proc),
                       "CLH tail lost without a queued successor");
    lock.tail_unlocked = true;
    lock.owner = -1;
    stats_.released(lock_line, services_.now(), false, 0);
  } else {
    const std::uint32_t next = lock.queue.front();
    lock.queue.pop_front();
    lock.owner = -1;
    lock.handoff_pending = true;
    granted_.insert(next);
    stats_.released(lock_line, services_.now(), true, lock.queue.size());
  }
  if (silent) {
    // Exclusive copy of the node: the unlock store is a cache hit.  A
    // successor either has its first read still in flight (the grant set
    // resolves it on completion) or has not read yet — a spinner would hold
    // a shared copy, contradicting M/E.
    services_.proc_release_done(proc);
    return;
  }
  const bus::TxnKind kind = (state == cache::LineState::kShared)
                                ? bus::TxnKind::kUpgrade
                                : bus::TxnKind::kReadX;
  services_.issue_lock_txn(proc, line, kind, /*forced=*/true,
                           bus::StallCause::kCacheMiss, /*stalls=*/true,
                           kStepRelease);
}

bool ClhLock::held_by_other(std::uint32_t proc, std::uint32_t lock_line) const {
  auto it = locks_.find(lock_line);
  if (it == locks_.end()) return false;
  return it->second.owner >= 0 &&
         it->second.owner != static_cast<std::int32_t>(proc);
}

}  // namespace syncpat::sync

#include "sync/lock_stats.hpp"

#include "obs/event_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace syncpat::sync {

void LockStatsCollector::acquired(std::uint32_t lock_line, std::uint32_t proc,
                                  std::uint64_t now,
                                  std::uint64_t waiters_now) {
  Live& live = live_[lock_line];
  live.acquire_time = now;
  ++total_.acquisitions;
  ++per_lock_[lock_line].acquisitions;
  if (metrics_ != nullptr) {
    obs::LockMetrics& lm = metrics_->lock(lock_line);
    ++lm.acquisitions;
    lm.waiters_at_acquire.add(waiters_now);
    if (live.transfer_pending) {
      lm.handoff_cycles.add(now - live.release_time);
    }
  }
  if (recorder_ != nullptr) {
    recorder_->emit(obs::TraceEvent{now, obs::EventKind::kAcquired,
                                    static_cast<std::int32_t>(proc), lock_line,
                                    0, 0});
  }
  if (live.transfer_pending) {
    // acquired() via a hand-off also closes the transfer-latency window.
    const auto latency = static_cast<double>(now - live.release_time);
    total_.transfer_cycles.add(latency);
    total_.transfer_hist.add(now - live.release_time);
    per_lock_[lock_line].transfer_cycles.add(latency);
    per_lock_[lock_line].transfer_hist.add(now - live.release_time);
    live.transfer_pending = false;
    if (recorder_ != nullptr) {
      recorder_->emit(obs::TraceEvent{now, obs::EventKind::kTransferDone,
                                      static_cast<std::int32_t>(proc),
                                      lock_line, 0, now - live.release_time});
    }
  }
}

void LockStatsCollector::release_issued(std::uint32_t lock_line,
                                        std::uint64_t now) {
  Live& live = live_[lock_line];
  live.release_issue_time = now;
  live.release_issue_valid = true;
}

void LockStatsCollector::released(std::uint32_t lock_line, std::uint64_t now,
                                  bool transferred, std::uint64_t waiters_left) {
  auto it = live_.find(lock_line);
  SYNCPAT_ASSERT_MSG(it != live_.end(), "release of a lock never acquired");
  Live& live = it->second;
  const std::uint64_t hold_end =
      live.release_issue_valid ? live.release_issue_time : now;
  live.release_issue_valid = false;
  const auto held = static_cast<double>(hold_end - live.acquire_time);
  total_.hold_cycles.add(held);
  per_lock_[lock_line].hold_cycles.add(held);
  if (metrics_ != nullptr) {
    obs::LockMetrics& lm = metrics_->lock(lock_line);
    lm.hold_cycles.add(hold_end - live.acquire_time);
    if (transferred) ++lm.transfers;
  }
  if (transferred) {
    ++total_.transfers;
    ++per_lock_[lock_line].transfers;
    total_.hold_cycles_transfer.add(held);
    per_lock_[lock_line].hold_cycles_transfer.add(held);
    total_.waiters_at_transfer.add(static_cast<double>(waiters_left));
    per_lock_[lock_line].waiters_at_transfer.add(static_cast<double>(waiters_left));
    live.release_time = now;
    live.transfer_pending = true;
  }
  if (recorder_ != nullptr) {
    recorder_->emit(obs::TraceEvent{
        now,
        transferred ? obs::EventKind::kHandoff : obs::EventKind::kReleased, -1,
        lock_line, waiters_left, 0});
  }
}

}  // namespace syncpat::sync

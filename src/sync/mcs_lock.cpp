#include "sync/mcs_lock.hpp"

#include "trace/address_map.hpp"
#include "util/assert.hpp"

namespace syncpat::sync {

std::uint32_t McsLock::node_line(std::uint32_t proc) {
  // One 64-byte node line per processor in the gap between the barrier slice
  // (kLockBase + 2^25) and the Graunke-Thakkar spin flags (kLockBase + 2^26);
  // 4096 processors use 256 KiB of the 8 MiB sub-slice.
  constexpr std::uint32_t kNodeBase =
      trace::AddressMap::kLockBase + (3u << 24);
  return kNodeBase + proc * 64u;
}

void McsLock::begin_acquire(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  const bool contended = lock.owner >= 0 || lock.tail >= 0;
  // swap(tail, my-node): an atomic ownership transaction on the lock line.
  services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                           /*forced=*/true,
                           contended ? bus::StallCause::kLockWait
                                     : bus::StallCause::kCacheMiss,
                           /*stalls=*/true, kStepAcquire);
}

void McsLock::spin_on_own_node(std::uint32_t proc, std::uint32_t lock_line) {
  spin_lock_of_[proc] = lock_line;
  const std::uint32_t line = node_line(proc);
  const cache::LineState state = services_.line_state(proc, line);
  if (state == cache::LineState::kShared ||
      state == cache::LineState::kExclusive ||
      state == cache::LineState::kModified) {
    services_.proc_wait(proc, /*spinning=*/true, line);
  } else {
    services_.issue_lock_txn(proc, line, bus::TxnKind::kRead,
                             /*forced=*/false, bus::StallCause::kLockWait,
                             /*stalls=*/true, kStepSpinRead);
  }
}

void McsLock::grant_or_spin(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_.at(lock_line);
  if (granted_.erase(proc) > 0) {
    lock.owner = static_cast<std::int32_t>(proc);
    lock.handoff_pending = false;
    stats_.acquired(lock_line, proc, services_.now(), lock.queue.size());
    services_.proc_acquired(proc);
  } else {
    spin_on_own_node(proc, lock_line);
  }
}

void McsLock::on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                              std::uint8_t step) {
  switch (step) {
    case kStepAcquire: {
      LockState& lock = locks_[line_addr];
      const std::int32_t pred = lock.tail;
      lock.tail = static_cast<std::int32_t>(proc);
      if (pred < 0) {
        // Swap returned null: the lock was free.
        lock.owner = static_cast<std::int32_t>(proc);
        stats_.acquired(line_addr, proc, services_.now(), lock.queue.size());
        services_.proc_acquired(proc);
      } else {
        // Link behind the predecessor: pred->next = self, a write to the
        // predecessor's node line, then spin on our own node.
        lock.queue.push_back(proc);
        spin_lock_of_[proc] = line_addr;
        services_.issue_lock_txn(
            proc, node_line(static_cast<std::uint32_t>(pred)),
            bus::TxnKind::kReadX, /*forced=*/true, bus::StallCause::kLockWait,
            /*stalls=*/true, kStepEnqueue);
      }
      break;
    }
    case kStepEnqueue:
      // The pred->next write performed.  The release may already have chosen
      // us (the releaser spins on its next field until the link appears;
      // here the grant set carries that resolution).
      grant_or_spin(proc, spin_lock_of_.at(proc));
      break;
    case kStepSpinRead:
      grant_or_spin(proc, spin_lock_of_.at(proc));
      break;
    case kStepRelease: {
      // The tail compare&swap performed.  If a swapper slipped in front of
      // it on the bus, the CAS failed: fall back to the hand-off write.
      LockState& lock = locks_.at(line_addr);
      if (lock.queue.empty()) {
        lock.tail = -1;
        lock.owner = -1;
        stats_.released(line_addr, services_.now(), false, 0);
        services_.proc_release_done(proc);
      } else {
        handoff(proc, line_addr, lock);
      }
      break;
    }
    case kStepRelease2:
      // The write to the successor's node line performed; the releaser is
      // done.  (Its snoop already invalidated the successor's spin line.)
      services_.proc_release_done(proc);
      break;
    default:
      SYNCPAT_ASSERT_MSG(false, "unexpected MCS-lock step");
  }
}

void McsLock::on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) {
  services_.issue_lock_txn(proc, line_addr, bus::TxnKind::kRead,
                           /*forced=*/false, bus::StallCause::kLockWait,
                           /*stalls=*/true, kStepSpinRead);
}

void McsLock::handoff(std::uint32_t proc, std::uint32_t lock_line,
                      LockState& lock) {
  const std::uint32_t next = lock.queue.front();
  lock.queue.pop_front();
  lock.owner = -1;
  lock.handoff_pending = true;
  granted_.insert(next);
  stats_.released(lock_line, services_.now(), true, lock.queue.size());
  // next->locked = false: one targeted write to the successor's node line;
  // the lock word itself is never touched on a contended release.
  services_.issue_lock_txn(proc, node_line(next), bus::TxnKind::kReadX,
                           /*forced=*/true, bus::StallCause::kCacheMiss,
                           /*stalls=*/true, kStepRelease2);
}

void McsLock::begin_release(std::uint32_t proc, std::uint32_t lock_line) {
  LockState& lock = locks_[lock_line];
  SYNCPAT_ASSERT_MSG(lock.owner == static_cast<std::int32_t>(proc),
                     "MCS release by non-owner");
  stats_.release_issued(lock_line, services_.now());
  if (!lock.queue.empty()) {
    handoff(proc, lock_line, lock);
    return;
  }
  SYNCPAT_ASSERT_MSG(lock.tail == static_cast<std::int32_t>(proc),
                     "MCS tail lost without a queued successor");
  const cache::LineState state = services_.line_state(proc, lock_line);
  if (state == cache::LineState::kModified ||
      state == cache::LineState::kExclusive) {
    // Exclusive copy: nobody swapped since our acquire, so the tail
    // compare&swap succeeds silently in-cache.
    lock.tail = -1;
    lock.owner = -1;
    stats_.released(lock_line, services_.now(), false, 0);
    services_.proc_release_done(proc);
    return;
  }
  const bus::TxnKind kind = (state == cache::LineState::kShared)
                                ? bus::TxnKind::kUpgrade
                                : bus::TxnKind::kReadX;
  services_.issue_lock_txn(proc, lock_line, kind, /*forced=*/true,
                           bus::StallCause::kCacheMiss, /*stalls=*/true,
                           kStepRelease);
}

bool McsLock::held_by_other(std::uint32_t proc, std::uint32_t lock_line) const {
  auto it = locks_.find(lock_line);
  if (it == locks_.end()) return false;
  return it->second.owner >= 0 &&
         it->second.owner != static_cast<std::int32_t>(proc);
}

}  // namespace syncpat::sync

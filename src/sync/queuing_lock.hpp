// Queuing lock (Graunke & Thakkar [12]), in the two variants of paper §2.4.
//
// *Approximate* (the paper's simulated scheme): acquire is a single memory
// access; if the lock is held the processor waits passively (its spinning is
// on a private cached location and costs no bus traffic).  Release is a
// single memory access, plus — if a processor is waiting — a cache-to-cache
// transfer that hands the lock off.  The waiter resumes as soon as the
// hand-off transfer wins bus arbitration, giving the ~1-2 cycle transfer
// times the paper reports.
//
// *Exact*: adds the two bus transactions the paper deliberately omitted and
// promised to validate: a second memory access while enqueueing, and —
// because the Illinois protocol performs no cache-to-cache transfer on this
// path — an additional memory access after the release, followed by the
// waiter's own re-read of its (per-processor) spin location.  The
// `bench_ablation_exact_queuing` harness performs the paper's stated
// future-work comparison between the two.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"

namespace syncpat::sync {

class QueuingLock final : public LockScheme {
 public:
  QueuingLock(SchemeServices& services, LockStatsCollector& stats, bool exact)
      : services_(services), stats_(stats), exact_(exact) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override;
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override;
  void on_txn_complete(std::uint32_t proc, std::uint32_t line_addr,
                       std::uint8_t step) override;
  void on_spin_invalidated(std::uint32_t proc, std::uint32_t line_addr) override;
  void on_handoff_granted(std::uint32_t line_addr) override;

  [[nodiscard]] const char* name() const override {
    return exact_ ? "queuing-exact" : "queuing";
  }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t lock_line) const override;

  /// Per-processor spin-flag cache line used by the exact variant
  /// (Graunke-Thakkar spin on an element of a per-processor array).
  [[nodiscard]] static std::uint32_t spin_line(std::uint32_t proc);

 private:
  struct LockState {
    std::int32_t owner = -1;
    std::deque<std::uint32_t> waiters;
    // Exact variant: waiter whose wake-up sequence is in progress.
    std::int32_t pending_next = -1;
  };

  LockState& state(std::uint32_t lock_line) { return locks_[lock_line]; }

  SchemeServices& services_;
  LockStatsCollector& stats_;
  bool exact_;
  std::unordered_map<std::uint32_t, LockState> locks_;
  // Approximate variant: lock line -> waiter woken when the hand-off is
  // granted the bus.
  std::unordered_map<std::uint32_t, std::uint32_t> pending_handoff_;
};

}  // namespace syncpat::sync

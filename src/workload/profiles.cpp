#include "workload/profiles.hpp"

namespace syncpat::workload {

// Targets (Table 1, per processor, thousands): work 2841, refs 1185,
// data 423, shared 377.  (Table 2): pairs 6389, nested 2579, avg held 200,
// total held 1131k (39.8% of time).  Contention outcome to reproduce
// (Tables 3/4): utilization ~33%, ~96% of stalls on locks, ~28.7k transfers,
// ~5.2 waiters at transfer.  The dominant lock is the Presto scheduler lock
// (~3/4 of acquisitions) and the nested inner lock is the thread-queue lock.
BenchmarkProfile grav_profile() {
  BenchmarkProfile p;
  p.name = "Grav";
  p.num_procs = 10;
  p.refs_per_proc = 1'185'000;
  p.data_ref_fraction = 0.357;
  p.work_cycles_per_ref = 2.38;
  p.locality.private_fraction = 0.109;   // Presto allocates nearly all shared
  p.locality.shared_hot_bytes = 4 * 1024;
  p.locality.shared_rerefs = 0.70;
  p.locality.shared_affinity = 0.60;
  p.locality.write_fraction = 0.30;
  p.locking.pairs_per_proc = 6389;
  p.locking.nested_per_proc = 2579;
  p.locking.cs_work_cycles = 297;        // outer section; union = 39.8% of time
  p.locking.num_locks = 6;
  p.locking.dominant_weight = 0.72;
  p.locking.cs_region_bytes = 64;   // the run-queue head
  p.locking.cs_region_bias = 0.9;
  p.locking.inner_lock = 1;
  p.seed = 0x6e41;
  return p;
}

// Targets: work 2458, refs 1206, data 431, shared 410; pairs 3110, nested
// 1467, avg held 190, total held 510k (20.7%).  Outcome: utilization ~40%,
// ~90% lock stalls, ~17k transfers, ~6.2 waiters.
BenchmarkProfile pdsa_profile() {
  BenchmarkProfile p;
  p.name = "Pdsa";
  p.num_procs = 12;
  p.refs_per_proc = 1'206'000;
  p.data_ref_fraction = 0.357;
  p.work_cycles_per_ref = 2.03;
  p.locality.private_fraction = 0.049;
  p.locality.shared_hot_bytes = 8 * 1024;
  p.locality.shared_rerefs = 0.75;
  p.locality.shared_affinity = 0.75;
  p.locality.write_fraction = 0.30;
  p.locking.pairs_per_proc = 3110;
  p.locking.nested_per_proc = 1467;
  p.locking.cs_work_cycles = 310;
  p.locking.num_locks = 4;
  p.locking.dominant_weight = 0.90;
  p.locking.cs_region_bytes = 64;
  p.locking.cs_region_bias = 0.9;
  p.locking.inner_lock = 1;
  p.seed = 0x9d5a;
  return p;
}

// Targets: work 3848, refs 967, data 346, shared 332; pairs 652, nested 134,
// avg held 334, total held 210k (5.5%).  Outcome: utilization ~95%, stalls
// mostly cache misses, few transfers (~344), 0.4 waiters.
BenchmarkProfile fullconn_profile() {
  BenchmarkProfile p;
  p.name = "FullConn";
  p.num_procs = 12;
  p.refs_per_proc = 967'000;
  p.data_ref_fraction = 0.358;
  p.work_cycles_per_ref = 3.97;
  p.locality.private_fraction = 0.041;
  p.locality.shared_hot_bytes = 16 * 1024;  // working set with real misses
  p.locality.shared_rerefs = 0.75;
  p.locality.shared_affinity = 0.90;
  p.locality.write_fraction = 0.28;
  p.locking.pairs_per_proc = 652;
  p.locking.nested_per_proc = 134;
  p.locking.cs_work_cycles = 405;
  p.locking.num_locks = 8;
  p.locking.dominant_weight = 0.30;
  p.locking.inner_lock = 1;
  p.locking.burst_fraction = 0.25;  // Synapse event bursts
  p.locking.burst_window = 0.05;
  p.seed = 0xfc00;
  return p;
}

// Targets: work 5544, refs 2431, data 682, shared 254; pairs 555, nested 0,
// avg held 3642, total held 2021k (36.5%).  Outcome: utilization ~96%,
// ~zero lock stalls despite the long holds — many distinct locks.
BenchmarkProfile pverify_profile() {
  BenchmarkProfile p;
  p.name = "Pverify";
  p.num_procs = 12;
  p.refs_per_proc = 2'431'000;
  p.data_ref_fraction = 0.281;
  p.work_cycles_per_ref = 2.28;
  p.locality.private_fraction = 0.628;
  p.locality.private_hot_bytes = 8 * 1024;
  p.locality.shared_hot_bytes = 16 * 1024;
  p.locality.shared_rerefs = 0.80;
  p.locality.shared_affinity = 0.97;
  p.locality.write_fraction = 0.25;
  p.locking.pairs_per_proc = 555;
  p.locking.nested_per_proc = 0;
  p.locking.cs_work_cycles = 4277;  // long partition scans...
  p.locking.short_fraction = 0.15;  // ...plus rare short sections on a
  p.locking.short_cs_cycles = 45;   // shared lock (mean stays ~3642)
  p.locking.num_locks = 64;        // per-processor partition locks
  p.locking.partitioned = true;    // long sections never collide
  p.locking.cs_region_bias = 0.0;  // partition scans keep the normal
                                   // reference mix (Table 1 shared count)
  p.locking.dominant_weight = 0.0;
  p.locking.inner_lock = 1;
  p.seed = 0x5e21;
  return p;
}

// Targets: work 2825, refs 1177, data 252, shared 142; pairs 212, avg held
// 52, total held 11k (0.3%).  Outcome: utilization ~68% dominated by read
// misses on the million-integer array (line-stride cold stream; stores
// re-touch read lines so the write-hit ratio stays ~99%).
BenchmarkProfile qsort_profile() {
  BenchmarkProfile p;
  p.name = "Qsort";
  p.num_procs = 12;
  p.refs_per_proc = 1'177'000;
  p.data_ref_fraction = 0.214;
  p.work_cycles_per_ref = 2.40;
  p.locality.private_fraction = 0.437;
  p.locality.private_hot_bytes = 8 * 1024;    // locals fit the cache
  p.locality.cold_fraction = 0.24;
  p.locality.cold_region_bytes = 1u << 20;
  p.locality.cold_stride_bytes = 16;          // one miss per cold load
  p.locality.shared_hot_bytes = 4 * 1024;
  p.locality.shared_rerefs = 0.80;
  p.locality.shared_affinity = 0.90;
  p.locality.write_fraction = 0.15;
  p.locking.pairs_per_proc = 212;
  p.locking.nested_per_proc = 0;
  p.locking.cs_work_cycles = 52;
  p.locking.num_locks = 1;                    // the work-queue lock
  p.locking.dominant_weight = 1.0;
  p.locking.burst_fraction = 0.25;  // the initial array-splitting frenzy
  p.locking.burst_window = 0.02;
  p.seed = 0x9507;
  return p;
}

// Targets: work 10182, refs 4135, data 1113, shared 413; no locks at all.
// Outcome: utilization ~99%, run-time skewed by one processor whose trace
// has a much higher CPI at the same reference count (§3.1).
BenchmarkProfile topopt_profile() {
  BenchmarkProfile p;
  p.name = "Topopt";
  p.num_procs = 9;
  p.refs_per_proc = 4'135'000;
  p.data_ref_fraction = 0.269;
  p.work_cycles_per_ref = 2.37;
  p.locality.private_fraction = 0.629;
  p.locality.private_hot_bytes = 8 * 1024;
  p.locality.shared_hot_bytes = 8 * 1024;
  p.locality.shared_rerefs = 0.90;
  p.locality.shared_affinity = 0.99;
  p.locality.write_fraction = 0.27;
  p.locking.pairs_per_proc = 0;
  p.locking.nested_per_proc = 0;
  p.locking.cs_work_cycles = 0;
  p.cpi_skew = 0.356;
  p.skew_proc = 0;
  p.seed = 0x7090;
  return p;
}

std::vector<BenchmarkProfile> paper_profiles() {
  return {grav_profile(),    pdsa_profile(),  fullconn_profile(),
          pverify_profile(), qsort_profile(), topopt_profile()};
}

}  // namespace syncpat::workload

#include "workload/vm.hpp"

#include <memory>

#include "trace/address_map.hpp"
#include "util/assert.hpp"

namespace syncpat::workload {

using trace::AddressMap;
using trace::Event;
using trace::Op;

namespace {
constexpr std::uint32_t kCodeSpan = 32 * 1024;  // per-thread code footprint
}

VirtualProgram::VirtualProgram(std::string name, std::uint32_t num_threads)
    : name_(std::move(name)), threads_(num_threads) {
  SYNCPAT_ASSERT(num_threads > 0);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    // Threads execute the same program text; start them at slightly
    // different points so instruction streams are realistic but overlap.
    threads_[t].pc = (t * 256) % kCodeSpan;
  }
}

std::uint32_t VirtualProgram::alloc_shared(std::uint32_t bytes,
                                           std::uint32_t align) {
  SYNCPAT_ASSERT(align > 0 && bytes > 0);
  shared_cursor_ = (shared_cursor_ + align - 1) / align * align;
  const std::uint32_t base = AddressMap::shared_addr(shared_cursor_);
  shared_cursor_ += bytes;
  return base;
}

std::uint32_t VirtualProgram::alloc_private(std::uint32_t thread,
                                            std::uint32_t bytes,
                                            std::uint32_t align) {
  Thread& th = threads_[thread];
  SYNCPAT_ASSERT(align > 0 && bytes > 0);
  th.private_cursor = (th.private_cursor + align - 1) / align * align;
  const std::uint32_t base = AddressMap::private_addr(thread, th.private_cursor);
  th.private_cursor += bytes;
  return base;
}

std::uint32_t VirtualProgram::alloc_lock() {
  return AddressMap::lock_addr(lock_cursor_++);
}

void VirtualProgram::compute(std::uint32_t thread, std::uint32_t cycles) {
  threads_[thread].pending_gap += cycles;
}

void VirtualProgram::emit(std::uint32_t thread, Op op, std::uint32_t addr) {
  Thread& th = threads_[thread];
  // Every event carries at least one cycle of execution.
  const std::uint32_t gap = th.pending_gap > 0 ? th.pending_gap : 1;
  th.pending_gap = 0;
  th.events.push_back(Event{addr, gap, op});
}

void VirtualProgram::emit_ifetch(std::uint32_t thread) {
  Thread& th = threads_[thread];
  th.pc = (th.pc + 4) % kCodeSpan;
  emit(thread, Op::kIFetch, AddressMap::code_addr(th.pc));
}

void VirtualProgram::load(std::uint32_t thread, std::uint32_t addr) {
  emit_ifetch(thread);
  compute(thread, 1);
  emit(thread, Op::kLoad, addr);
}

void VirtualProgram::store(std::uint32_t thread, std::uint32_t addr) {
  emit_ifetch(thread);
  compute(thread, 1);
  emit(thread, Op::kStore, addr);
}

void VirtualProgram::instructions(std::uint32_t thread, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    compute(thread, 1);
    emit_ifetch(thread);
  }
}

void VirtualProgram::lock(std::uint32_t thread, std::uint32_t lock_addr) {
  SYNCPAT_ASSERT(AddressMap::classify(lock_addr) == trace::Region::kLock);
  compute(thread, 2);
  emit(thread, Op::kLockAcq, lock_addr);
  ++threads_[thread].locks_held;
}

void VirtualProgram::unlock(std::uint32_t thread, std::uint32_t lock_addr) {
  Thread& th = threads_[thread];
  SYNCPAT_ASSERT_MSG(th.locks_held > 0, "unlock without a held lock");
  compute(thread, 2);
  emit(thread, Op::kLockRel, lock_addr);
  --th.locks_held;
}

void VirtualProgram::barrier(std::uint32_t thread, std::uint32_t barrier_id) {
  compute(thread, 2);
  emit(thread, Op::kBarrier, AddressMap::barrier_addr(barrier_id));
}

void VirtualProgram::barrier_all(std::uint32_t barrier_id) {
  for (std::uint32_t t = 0; t < threads_.size(); ++t) barrier(t, barrier_id);
}

trace::ProgramTrace VirtualProgram::take_trace() {
  trace::ProgramTrace program;
  program.name = name_;
  for (Thread& th : threads_) {
    SYNCPAT_ASSERT_MSG(th.locks_held == 0, "thread ends while holding a lock");
    program.per_proc.push_back(
        std::make_unique<trace::VectorTraceSource>(std::move(th.events)));
    th.events.clear();
  }
  return program;
}

}  // namespace syncpat::workload

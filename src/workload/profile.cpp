#include "workload/profile.hpp"

#include <algorithm>

namespace syncpat::workload {

BenchmarkProfile BenchmarkProfile::scaled(std::uint64_t factor) const {
  BenchmarkProfile copy = *this;
  if (factor <= 1) return copy;
  copy.refs_per_proc = std::max<std::uint64_t>(1, refs_per_proc / factor);
  copy.locking.pairs_per_proc = locking.pairs_per_proc / factor;
  copy.locking.nested_per_proc = locking.nested_per_proc / factor;
  return copy;
}

}  // namespace syncpat::workload

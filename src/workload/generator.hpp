// Statistical trace generator: a streaming TraceSource synthesized from a
// BenchmarkProfile.
//
// The generator is deterministic (seeded per processor), streams events one
// at a time (paper-scale traces are never materialized), and is calibrated
// so the ideal analyzer recovers the profile's Table 1/2 targets.
#pragma once

#include <cstdint>
#include <deque>

#include "trace/source.hpp"
#include "util/rng.hpp"
#include "workload/profile.hpp"

namespace syncpat::workload {

class ProfileTraceSource final : public trace::TraceSource {
 public:
  ProfileTraceSource(const BenchmarkProfile& profile, std::uint32_t proc);

  bool next(trace::Event& out) override;
  void reset() override;

 private:
  void synthesize();                    // refills staged_ with >= 1 event
  void emit_normal_ref();
  void emit_critical_section();
  [[nodiscard]] std::uint32_t next_gap();
  [[nodiscard]] trace::Event make_data_ref(bool force_shared);
  [[nodiscard]] trace::Event make_cs_data_ref(std::uint32_t lock_addr);
  [[nodiscard]] trace::Event make_ifetch();
  [[nodiscard]] std::uint32_t pick_lock();
  [[nodiscard]] bool in_burst_window() const;
  void maybe_emit_barrier();

  BenchmarkProfile profile_;
  std::uint32_t proc_;
  util::Rng rng_;

  std::deque<trace::Event> staged_;
  std::uint64_t refs_emitted_ = 0;   // memory references only (Table 1 "All")

  // Derived rates (see .cpp).
  double cs_probability_ = 0.0;      // per normal ref: start a critical section
  double burst_probability_ = 0.0;   // same, inside the burst window
  double nested_probability_ = 0.0;  // per outer CS: contains an inner pair
  double gap_log1m_p_ = 0.0;         // log1p(-1/mean_gap), hoisted out of the
                                     // per-event geometric draw in next_gap();
                                     // 0 means mean_gap == 1 (no draw at all)
  util::GeometricSampler gap_sampler_;  // bit-identical table-drawn gaps
  std::uint64_t outer_target_ = 0;
  std::uint64_t outer_emitted_ = 0;
  std::uint64_t burst_window_refs_ = 0;
  std::uint64_t barriers_emitted_ = 0;
  std::uint64_t barrier_interval_ = 0;

  // Locality state.
  std::uint32_t pc_ = 0;             // instruction pointer within code region
  std::uint32_t last_shared_line_ = 0;
  std::uint32_t cold_pos_ = 0;
  std::uint32_t last_cold_addr_ = 0;
  std::uint32_t cold_slice_ = 0;     // per-processor cold slice, clamped so
                                     // P slices fit the shared region (see
                                     // cold_slice_bytes)

  [[nodiscard]] std::uint32_t cold_slice_bytes() const;
};

/// Builds a full program trace (one generator per processor).
[[nodiscard]] trace::ProgramTrace make_program_trace(const BenchmarkProfile& profile);

}  // namespace syncpat::workload

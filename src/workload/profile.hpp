// Benchmark workload models.
//
// The paper's traces came from six real programs on a Sequent Symmetry; we
// cannot use those, so each benchmark is modeled by a BenchmarkProfile whose
// parameters are calibrated to reproduce every "ideal" statistic the paper
// publishes for that program (Tables 1 and 2) plus the cache-behaviour
// targets implied by Table 7's write-hit ratios.  DESIGN.md §2 records the
// substitution; tests/test_workload_calibration.cpp asserts that the ideal
// analyzer recovers the Table 1/2 numbers from generated traces.
//
// Structure of the generated per-processor stream: an outer loop of
// "sections".  A section is either ordinary computation (instruction
// fetches interleaved with data references drawn from the locality model)
// or a critical section (lock acquire, computation touching shared data,
// release).  Rates, lengths and mixes come from the profile.
#pragma once

#include <cstdint>
#include <string>

namespace syncpat::workload {

/// Data-reference locality model: a reference goes to one of
///  * a hot private pool (hits after warm-up; stack/locals),
///  * a hot shared pool (read-write shared working set),
///  * a cold streaming region (large data set marched through, mostly
///    misses — Qsort's million-integer array).
struct LocalityModel {
  double private_fraction = 0.6;   // of data refs (rest shared; Table 1)
  std::uint32_t private_hot_bytes = 8 * 1024;
  std::uint32_t shared_hot_bytes = 16 * 1024;
  double cold_fraction = 0.0;      // of data refs: streaming accesses
  std::uint32_t cold_region_bytes = 4u << 20;
  /// March step of the cold stream; a line-sized stride makes every cold
  /// load miss (Qsort's big-array behaviour).  Cold *stores* re-touch the
  /// last loaded address (reads precede the exchanges of the same lines,
  /// §4.2), keeping the write-hit ratio high.
  std::uint32_t cold_stride_bytes = 4;
  double write_fraction = 0.3;     // stores among data refs
  /// Probability that a shared-pool reference re-touches the processor's
  /// previous shared line (spatial locality knob; raises hit ratios).
  double shared_rerefs = 0.5;
  /// Probability that a shared-pool reference lands in this processor's own
  /// slice of the shared region rather than the common pool.  Real programs
  /// partition shared data (Pverify partitions circuits, FullConn simulates
  /// per-node state); partitioned references are still "shared" by
  /// allocation but rarely ping-pong between caches.
  double shared_affinity = 0.0;
};

/// Locking behaviour.
struct LockingModel {
  std::uint64_t pairs_per_proc = 0;     // Table 2 "Lock Pairs"
  std::uint64_t nested_per_proc = 0;    // Table 2 "Nested Locks"
  double cs_work_cycles = 0.0;          // Table 2 "Avg. Held" (ideal cycles)
  std::uint32_t num_locks = 1;          // distinct locks
  /// Weight of the dominant lock (Presto scheduler-lock pattern): fraction
  /// of acquisitions that hit lock 0; the rest spread uniformly.
  double dominant_weight = 1.0;
  /// Partitioned locking (Pverify): each processor's non-dominant
  /// acquisitions use its own disjoint set of `num_locks` locks, so long
  /// sections never collide across processors.
  bool partitioned = false;
  /// Nested acquisitions take lock (dominant+1+proc-independent) as the
  /// inner thread-queue lock, matching the Presto nesting described in §2.3.
  std::uint32_t inner_lock = 1;

  /// Critical sections mostly touch the data the lock protects: a small
  /// per-lock region (the run-queue head, the protected counter).  The
  /// first touches after an acquisition miss (the data migrates from the
  /// previous holder's cache); the rest hit.  cs_region_bias is the
  /// probability a section-body data reference lands in that region.
  std::uint32_t cs_region_bytes = 256;
  double cs_region_bias = 0.8;

  /// Bimodal section lengths (Pverify: long partition scans on per-partition
  /// locks plus rare short sections on one shared lock — the only ones that
  /// ever see contention, Table 4's Held-at-transfer of 41 vs 3766 average).
  /// A short section always targets lock 0 and lasts short_cs_cycles.
  double short_fraction = 0.0;
  double short_cs_cycles = 40.0;

  /// Bursty arrivals (Qsort: the work-queue frenzy while the array is first
  /// being split): burst_fraction of the outer sections are emitted within
  /// the first burst_window fraction of the trace.
  double burst_fraction = 0.0;
  double burst_window = 0.05;

  /// Barrier phases: every processor emits this many barrier arrivals at
  /// evenly spaced points of its trace (all traces must agree, which the
  /// generator guarantees).
  std::uint64_t barriers_per_proc = 0;
};

struct BenchmarkProfile {
  std::string name;
  std::uint32_t num_procs = 12;
  std::uint64_t refs_per_proc = 1'000'000;  // Table 1 "References All"
  double data_ref_fraction = 0.35;          // Table 1 Data/All
  double work_cycles_per_ref = 2.4;         // Table 1 Work/All
  LocalityModel locality;
  LockingModel locking;
  std::uint64_t seed = 0x5eed;
  /// Per-processor CPI skew: processor p's gaps are scaled by
  /// 1 + cpi_skew * (p == skew_proc) (Topopt's one slow processor, §3.1).
  double cpi_skew = 0.0;
  std::uint32_t skew_proc = 0;

  /// Returns a copy with reference and lock counts divided by `factor`
  /// (trace-length scaling; contention metrics are rate-driven and
  /// insensitive to length).
  [[nodiscard]] BenchmarkProfile scaled(std::uint64_t factor) const;
};

}  // namespace syncpat::workload

// The six paper benchmarks as calibrated profiles (paper §2.3).
//
// Each profile's comments give the Table 1/2 targets it is calibrated
// against; tests/test_workload_calibration.cpp checks that the ideal
// analyzer recovers them from generated traces, and EXPERIMENTS.md compares
// the resulting simulator outputs against Tables 3-8.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/profile.hpp"

namespace syncpat::workload {

[[nodiscard]] BenchmarkProfile grav_profile();      // Barnes-Hut N-body (Presto)
[[nodiscard]] BenchmarkProfile pdsa_profile();      // simulated annealing (Presto)
[[nodiscard]] BenchmarkProfile fullconn_profile();  // Synapse distributed sim (Presto)
[[nodiscard]] BenchmarkProfile pverify_profile();   // logic verification (C)
[[nodiscard]] BenchmarkProfile qsort_profile();     // parallel quicksort (C)
[[nodiscard]] BenchmarkProfile topopt_profile();    // MOS compaction (C)

/// All six, in the paper's table order.
[[nodiscard]] std::vector<BenchmarkProfile> paper_profiles();

}  // namespace syncpat::workload

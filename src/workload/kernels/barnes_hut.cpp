#include "workload/kernels/barnes_hut.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "workload/vm.hpp"

namespace syncpat::workload {
namespace {

struct Body {
  double x, y, mass;
  double ax = 0.0, ay = 0.0;
};

struct Node {
  double cx, cy, half;       // square cell
  double mx = 0.0, my = 0.0, mass = 0.0;  // center of mass
  std::int32_t child[4] = {-1, -1, -1, -1};
  std::int32_t body = -1;    // leaf payload
  bool leaf = true;
};

class BarnesHutKernel {
 public:
  explicit BarnesHutKernel(const BarnesHutParams& params)
      : params_(params), vm_("Grav-kernel", params.num_threads) {
    util::Rng rng(params.seed);
    bodies_.resize(params.num_bodies);
    for (auto& b : bodies_) {
      b.x = rng.uniform();
      b.y = rng.uniform();
      b.mass = 0.5 + rng.uniform();
    }
    bodies_base_ = vm_.alloc_shared(params.num_bodies * 40, 16);
    nodes_base_ = vm_.alloc_shared(params.num_bodies * 4 * 48, 16);
    queue_base_ = vm_.alloc_shared(256, 16);
    scheduler_lock_ = vm_.alloc_lock();
    queue_lock_ = vm_.alloc_lock();
  }

  trace::ProgramTrace run() {
    for (std::uint32_t step = 0; step < params_.timesteps; ++step) {
      build_tree();        // thread 0; the others wait at the phase barrier
      vm_.barrier_all(0);
      force_phase();
      vm_.barrier_all(0);
      integrate();
      vm_.barrier_all(0);
    }
    return vm_.take_trace();
  }

 private:
  [[nodiscard]] std::uint32_t body_addr(std::size_t i, std::uint32_t field) const {
    return bodies_base_ + static_cast<std::uint32_t>(i) * 40 + field * 8;
  }
  [[nodiscard]] std::uint32_t node_addr(std::size_t i, std::uint32_t field) const {
    return nodes_base_ + static_cast<std::uint32_t>(i) * 48 + field * 8;
  }

  void build_tree() {
    nodes_.clear();
    nodes_.push_back(Node{0.5, 0.5, 0.5});
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      vm_.load(0, body_addr(i, 0));
      vm_.load(0, body_addr(i, 1));
      insert(0, static_cast<std::int32_t>(i));
    }
    summarize(0);
  }

  void insert(std::size_t node_idx, std::int32_t body_idx) {
    Node& node = nodes_[node_idx];
    vm_.load(0, node_addr(node_idx, 0));
    if (node.leaf && node.body < 0) {
      node.body = body_idx;
      vm_.store(0, node_addr(node_idx, 5));
      return;
    }
    if (node.leaf) {
      // Split: push the resident body down.
      const std::int32_t old = node.body;
      node.leaf = false;
      node.body = -1;
      vm_.store(0, node_addr(node_idx, 5));
      place_child(node_idx, old);
    }
    place_child(node_idx, body_idx);
  }

  void place_child(std::size_t node_idx, std::int32_t body_idx) {
    const Body& b = bodies_[static_cast<std::size_t>(body_idx)];
    Node node = nodes_[node_idx];  // copy: nodes_ may reallocate below
    const int q = (b.x >= node.cx ? 1 : 0) + (b.y >= node.cy ? 2 : 0);
    if (node.child[q] < 0) {
      Node child;
      child.half = node.half / 2;
      child.cx = node.cx + (q & 1 ? child.half : -child.half);
      child.cy = node.cy + (q & 2 ? child.half : -child.half);
      nodes_.push_back(child);
      nodes_[node_idx].child[q] = static_cast<std::int32_t>(nodes_.size() - 1);
      vm_.store(0, node_addr(node_idx, q % 6));
    }
    insert(static_cast<std::size_t>(nodes_[node_idx].child[q]), body_idx);
  }

  void summarize(std::size_t node_idx) {
    Node& node = nodes_[node_idx];
    if (node.leaf) {
      if (node.body >= 0) {
        const Body& b = bodies_[static_cast<std::size_t>(node.body)];
        node.mass = b.mass;
        node.mx = b.x;
        node.my = b.y;
      }
      vm_.store(0, node_addr(node_idx, 2));
      return;
    }
    double mass = 0.0, mx = 0.0, my = 0.0;
    for (const std::int32_t c : node.child) {
      if (c < 0) continue;
      summarize(static_cast<std::size_t>(c));
      const Node& cn = nodes_[static_cast<std::size_t>(c)];
      mass += cn.mass;
      mx += cn.mx * cn.mass;
      my += cn.my * cn.mass;
    }
    node.mass = mass;
    if (mass > 0.0) {
      node.mx = mx / mass;
      node.my = my / mass;
    }
    vm_.store(0, node_addr(node_idx, 2));
    vm_.store(0, node_addr(node_idx, 3));
  }

  // Presto-style self-scheduling force phase with the nested lock pattern.
  void force_phase() {
    std::uint32_t next = 0;
    std::uint32_t t = 0;
    while (next < bodies_.size()) {
      // Scheduler lock (outer), thread-queue lock (inner, nested).
      vm_.lock(t, scheduler_lock_);
      vm_.load(t, queue_base_);
      vm_.lock(t, queue_lock_);
      vm_.load(t, queue_base_ + 8);
      const std::uint32_t lo = next;
      const std::uint32_t hi =
          std::min<std::uint32_t>(next + params_.chunk,
                                  static_cast<std::uint32_t>(bodies_.size()));
      next = hi;
      vm_.store(t, queue_base_ + 8);
      vm_.unlock(t, queue_lock_);
      vm_.store(t, queue_base_);
      vm_.unlock(t, scheduler_lock_);

      for (std::uint32_t i = lo; i < hi; ++i) compute_force(t, i);
      t = (t + 1) % params_.num_threads;
    }
  }

  void compute_force(std::uint32_t t, std::uint32_t body_idx) {
    Body& b = bodies_[body_idx];
    vm_.load(t, body_addr(body_idx, 0));
    vm_.load(t, body_addr(body_idx, 1));
    b.ax = b.ay = 0.0;
    traverse(t, 0, b);
    vm_.store(t, body_addr(body_idx, 3));
    vm_.store(t, body_addr(body_idx, 4));
  }

  void traverse(std::uint32_t t, std::size_t node_idx, Body& b) {
    const Node& node = nodes_[node_idx];
    vm_.load(t, node_addr(node_idx, 0));
    vm_.load(t, node_addr(node_idx, 2));
    if (node.mass <= 0.0) return;
    const double dx = node.mx - b.x;
    const double dy = node.my - b.y;
    const double dist2 = dx * dx + dy * dy + 1e-9;
    vm_.compute(t, 6);  // distance computation
    if (node.leaf || (node.half * 2) * (node.half * 2) < params_.theta *
                                                             params_.theta *
                                                             dist2) {
      const double inv = node.mass / (dist2 * std::sqrt(dist2));
      b.ax += dx * inv;
      b.ay += dy * inv;
      vm_.compute(t, 10);  // force kernel
      return;
    }
    for (const std::int32_t c : node.child) {
      if (c >= 0) traverse(t, static_cast<std::size_t>(c), b);
    }
  }

  void integrate() {
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      const std::uint32_t t =
          static_cast<std::uint32_t>(i) % params_.num_threads;
      Body& b = bodies_[i];
      vm_.load(t, body_addr(i, 3));
      vm_.load(t, body_addr(i, 4));
      b.x += 1e-4 * b.ax;
      b.y += 1e-4 * b.ay;
      vm_.store(t, body_addr(i, 0));
      vm_.store(t, body_addr(i, 1));
    }
  }

  BarnesHutParams params_;
  VirtualProgram vm_;
  std::vector<Body> bodies_;
  std::vector<Node> nodes_;
  std::uint32_t bodies_base_ = 0;
  std::uint32_t nodes_base_ = 0;
  std::uint32_t queue_base_ = 0;
  std::uint32_t scheduler_lock_ = 0;
  std::uint32_t queue_lock_ = 0;
};

}  // namespace

trace::ProgramTrace barnes_hut_trace(const BarnesHutParams& params) {
  return BarnesHutKernel(params).run();
}

}  // namespace syncpat::workload

#include "workload/kernels/annealing.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "workload/vm.hpp"

namespace syncpat::workload {
namespace {

class AnnealingKernel {
 public:
  explicit AnnealingKernel(const AnnealingParams& params)
      : params_(params),
        vm_("Anneal-kernel", params.num_threads),
        rng_(params.seed),
        cells_(static_cast<std::size_t>(params.grid_side) * params.grid_side) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i] = static_cast<std::int32_t>(rng_.below(1024));
    }
    grid_base_ = vm_.alloc_shared(
        static_cast<std::uint32_t>(cells_.size()) * 4, 16);
    state_base_ = vm_.alloc_shared(64, 16);
    state_lock_ = vm_.alloc_lock();
  }

  trace::ProgramTrace run() {
    // Threads interleave move-by-move (the host serialization is one legal
    // schedule; the simulator re-times it).
    std::vector<double> temp(params_.num_threads, params_.initial_temp);
    for (std::uint32_t m = 0; m < params_.moves_per_thread; ++m) {
      for (std::uint32_t t = 0; t < params_.num_threads; ++t) {
        propose_move(t, temp[t]);
        if ((m + 1) % params_.moves_per_sync == 0) {
          sync_global(t);
          temp[t] *= params_.cooling;
        }
      }
    }
    return vm_.take_trace();
  }

 private:
  [[nodiscard]] std::uint32_t cell_addr(std::size_t i) const {
    return grid_base_ + static_cast<std::uint32_t>(i) * 4;
  }
  [[nodiscard]] std::size_t idx(std::uint32_t x, std::uint32_t y) const {
    return static_cast<std::size_t>(y) * params_.grid_side + x;
  }

  // Cost of a cell: squared difference with its 4-neighbourhood (a
  // wire-length stand-in); each term loads a neighbour.
  double cell_cost(std::uint32_t t, std::uint32_t x, std::uint32_t y) {
    const std::int32_t v = cells_[idx(x, y)];
    vm_.load(t, cell_addr(idx(x, y)));
    double cost = 0.0;
    const std::int32_t dx[4] = {1, -1, 0, 0};
    const std::int32_t dy[4] = {0, 0, 1, -1};
    for (int k = 0; k < 4; ++k) {
      const std::int64_t nx = static_cast<std::int64_t>(x) + dx[k];
      const std::int64_t ny = static_cast<std::int64_t>(y) + dy[k];
      if (nx < 0 || ny < 0 || nx >= params_.grid_side || ny >= params_.grid_side)
        continue;
      const std::size_t ni =
          idx(static_cast<std::uint32_t>(nx), static_cast<std::uint32_t>(ny));
      vm_.load(t, cell_addr(ni));
      const double d = static_cast<double>(v - cells_[ni]);
      cost += d * d;
      vm_.compute(t, 2);
    }
    return cost;
  }

  void propose_move(std::uint32_t t, double temp) {
    const auto x1 = static_cast<std::uint32_t>(rng_.below(params_.grid_side));
    const auto y1 = static_cast<std::uint32_t>(rng_.below(params_.grid_side));
    const auto x2 = static_cast<std::uint32_t>(rng_.below(params_.grid_side));
    const auto y2 = static_cast<std::uint32_t>(rng_.below(params_.grid_side));
    if (x1 == x2 && y1 == y2) return;

    const double before = cell_cost(t, x1, y1) + cell_cost(t, x2, y2);
    std::swap(cells_[idx(x1, y1)], cells_[idx(x2, y2)]);
    const double after = cell_cost(t, x1, y1) + cell_cost(t, x2, y2);
    vm_.compute(t, 8);  // Metropolis evaluation

    const double delta = after - before;
    const bool accept =
        delta <= 0.0 || rng_.uniform() < std::exp(-delta / std::max(temp, 1e-6));
    if (accept) {
      vm_.store(t, cell_addr(idx(x1, y1)));
      vm_.store(t, cell_addr(idx(x2, y2)));
      ++accepted_;
    } else {
      std::swap(cells_[idx(x1, y1)], cells_[idx(x2, y2)]);  // revert
    }
  }

  void sync_global(std::uint32_t t) {
    vm_.lock(t, state_lock_);
    vm_.load(t, state_base_);       // accepted counter
    vm_.load(t, state_base_ + 8);   // temperature
    vm_.compute(t, 4);
    vm_.store(t, state_base_);
    vm_.unlock(t, state_lock_);
  }

  AnnealingParams params_;
  VirtualProgram vm_;
  util::Rng rng_;
  std::vector<std::int32_t> cells_;
  std::uint64_t accepted_ = 0;
  std::uint32_t grid_base_ = 0;
  std::uint32_t state_base_ = 0;
  std::uint32_t state_lock_ = 0;
};

}  // namespace

trace::ProgramTrace annealing_trace(const AnnealingParams& params) {
  return AnnealingKernel(params).run();
}

}  // namespace syncpat::workload

// Parallel quicksort trace kernel (the paper's Qsort benchmark, [13]).
//
// A real quicksort runs against the modeled address space: a shared array of
// random integers, a lock-protected shared work stack of [lo, hi) ranges,
// and per-thread insertion sort below a cutoff.  Threads are interleaved
// round-robin, one work item at a time; every array element touched, every
// stack manipulation, and every lock operation is recorded.
#pragma once

#include <cstdint>

#include "trace/source.hpp"

namespace syncpat::workload {

struct QsortParams {
  std::uint32_t num_threads = 12;
  std::uint32_t num_elements = 100'000;
  std::uint32_t insertion_cutoff = 32;
  std::uint64_t seed = 0x50b7;
};

/// Runs the sort and returns the recorded trace.  The sort is verified
/// internally (the kernel aborts if its output is not ordered).
[[nodiscard]] trace::ProgramTrace qsort_trace(const QsortParams& params);

}  // namespace syncpat::workload

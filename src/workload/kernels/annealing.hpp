// Simulated-annealing placement trace kernel (the paper's Pdsa and Topopt
// benchmarks are both annealing-based placement/compaction tools, [18]).
//
// A real annealing loop runs against the modeled address space: a shared
// placement grid of cells with a wire-length-style cost, per-thread swap
// proposals with Metropolis acceptance, and a lock-protected global state
// (temperature, acceptance counters) touched every few moves — the frequent
// short critical sections that characterize Pdsa's lock behaviour.
#pragma once

#include <cstdint>

#include "trace/source.hpp"

namespace syncpat::workload {

struct AnnealingParams {
  std::uint32_t num_threads = 12;
  std::uint32_t grid_side = 64;       // grid_side^2 cells
  std::uint32_t moves_per_thread = 2000;
  std::uint32_t moves_per_sync = 8;   // moves between global-state updates
  double initial_temp = 4.0;
  double cooling = 0.95;
  std::uint64_t seed = 0xa11e;
};

[[nodiscard]] trace::ProgramTrace annealing_trace(const AnnealingParams& params);

}  // namespace syncpat::workload

#include "workload/kernels/qsort_kernel.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "workload/vm.hpp"

namespace syncpat::workload {
namespace {

struct Range {
  std::uint32_t lo, hi;  // element indices, [lo, hi)
};

class QsortKernel {
 public:
  explicit QsortKernel(const QsortParams& params)
      : params_(params),
        vm_("Qsort-kernel", params.num_threads),
        values_(params.num_elements) {
    util::Rng rng(params.seed);
    for (auto& v : values_) v = static_cast<std::int64_t>(rng.next_u64() >> 16);
    array_base_ = vm_.alloc_shared(params.num_elements * 4, 16);
    stack_lock_ = vm_.alloc_lock();
    // The work stack itself is shared data manipulated inside the lock.
    stack_base_ = vm_.alloc_shared(4096, 16);
    stack_.push_back(Range{0, params.num_elements});
  }

  trace::ProgramTrace run() {
    // Round-robin: each thread repeatedly pops a range and processes it.
    // idle_streak counts consecutive threads that found no work.
    std::uint32_t idle_streak = 0;
    std::uint32_t t = 0;
    while (idle_streak < params_.num_threads) {
      if (step(t)) {
        idle_streak = 0;
      } else {
        ++idle_streak;
      }
      t = (t + 1) % params_.num_threads;
    }
    SYNCPAT_ASSERT_MSG(std::is_sorted(values_.begin(), values_.end()),
                       "parallel quicksort produced an unsorted array");
    return vm_.take_trace();
  }

 private:
  [[nodiscard]] std::uint32_t elem_addr(std::uint32_t i) const {
    return array_base_ + i * 4;
  }

  // One unit of work for thread t: pop a range, partition or insertion-sort
  // it, push the sub-ranges.  Returns false if the stack was empty.
  bool step(std::uint32_t t) {
    vm_.lock(t, stack_lock_);
    vm_.load(t, stack_base_);  // stack top pointer
    if (stack_.empty()) {
      vm_.unlock(t, stack_lock_);
      vm_.instructions(t, 4);  // check-and-retry loop body
      return false;
    }
    const Range r = stack_.back();
    stack_.pop_back();
    vm_.load(t, stack_base_ + 4 + (static_cast<std::uint32_t>(stack_.size()) % 64) * 8);
    vm_.store(t, stack_base_);
    vm_.unlock(t, stack_lock_);

    if (r.hi - r.lo <= params_.insertion_cutoff) {
      insertion_sort(t, r);
      return true;
    }
    const std::uint32_t mid = partition(t, r);
    push_range(t, Range{r.lo, mid});
    push_range(t, Range{mid + 1, r.hi});
    return true;
  }

  void push_range(std::uint32_t t, Range r) {
    if (r.hi <= r.lo) return;
    vm_.lock(t, stack_lock_);
    vm_.load(t, stack_base_);
    vm_.store(t, stack_base_ + 4 + (static_cast<std::uint32_t>(stack_.size()) % 64) * 8);
    vm_.store(t, stack_base_);
    stack_.push_back(r);
    vm_.unlock(t, stack_lock_);
  }

  // Hoare-style partition around the median-of-three pivot; every compare
  // loads an element, every swap stores two.
  std::uint32_t partition(std::uint32_t t, Range r) {
    const std::uint32_t pivot_idx = r.lo + (r.hi - r.lo) / 2;
    vm_.load(t, elem_addr(r.lo));
    vm_.load(t, elem_addr(pivot_idx));
    vm_.load(t, elem_addr(r.hi - 1));
    const std::int64_t pivot = values_[pivot_idx];
    std::swap(values_[pivot_idx], values_[r.hi - 1]);
    vm_.store(t, elem_addr(pivot_idx));
    vm_.store(t, elem_addr(r.hi - 1));

    std::uint32_t store_idx = r.lo;
    for (std::uint32_t i = r.lo; i + 1 < r.hi; ++i) {
      vm_.load(t, elem_addr(i));
      vm_.compute(t, 2);
      if (values_[i] < pivot) {
        std::swap(values_[i], values_[store_idx]);
        vm_.store(t, elem_addr(i));
        vm_.store(t, elem_addr(store_idx));
        ++store_idx;
      }
    }
    std::swap(values_[store_idx], values_[r.hi - 1]);
    vm_.store(t, elem_addr(store_idx));
    vm_.store(t, elem_addr(r.hi - 1));
    return store_idx;
  }

  void insertion_sort(std::uint32_t t, Range r) {
    for (std::uint32_t i = r.lo + 1; i < r.hi; ++i) {
      vm_.load(t, elem_addr(i));
      const std::int64_t key = values_[i];
      std::uint32_t j = i;
      while (j > r.lo) {
        vm_.load(t, elem_addr(j - 1));
        vm_.compute(t, 1);
        if (values_[j - 1] <= key) break;
        values_[j] = values_[j - 1];
        vm_.store(t, elem_addr(j));
        --j;
      }
      values_[j] = key;
      vm_.store(t, elem_addr(j));
    }
  }

  QsortParams params_;
  VirtualProgram vm_;
  std::vector<std::int64_t> values_;
  std::vector<Range> stack_;
  std::uint32_t array_base_ = 0;
  std::uint32_t stack_base_ = 0;
  std::uint32_t stack_lock_ = 0;
};

}  // namespace

trace::ProgramTrace qsort_trace(const QsortParams& params) {
  return QsortKernel(params).run();
}

}  // namespace syncpat::workload

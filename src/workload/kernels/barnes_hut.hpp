// Barnes-Hut N-body force-calculation trace kernel (the paper's Grav
// benchmark, [11]).
//
// A real 2-D Barnes-Hut step runs against the modeled address space: a
// quadtree is built over the bodies (serial, thread 0 — tree build is a
// small fraction of a timestep), then the force phase distributes bodies
// through a lock-protected shared work queue in the Presto scheduler style:
// each thread repeatedly takes the scheduler lock, nests the queue lock to
// dequeue a chunk (the paper's nested-lock pattern), releases both, and
// traverses the tree computing accelerations.
#pragma once

#include <cstdint>

#include "trace/source.hpp"

namespace syncpat::workload {

struct BarnesHutParams {
  std::uint32_t num_threads = 10;
  std::uint32_t num_bodies = 2000;   // the paper traced 2000 stars
  std::uint32_t timesteps = 1;
  std::uint32_t chunk = 4;           // bodies dequeued per lock round trip
  double theta = 0.5;                // opening angle
  std::uint64_t seed = 0xba57;
};

[[nodiscard]] trace::ProgramTrace barnes_hut_trace(const BarnesHutParams& params);

}  // namespace syncpat::workload

#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "trace/address_map.hpp"
#include "util/assert.hpp"

namespace syncpat::workload {

using trace::AddressMap;
using trace::Event;
using trace::Op;

namespace {
constexpr std::uint32_t kCodeWorkingSet = 16 * 1024;  // loop working set
constexpr double kJumpProbability = 1.0 / 64.0;       // taken-branch rate
constexpr double kLockOpGap = 2.0;                    // cycles per lock insn
// Budget for the per-processor cold ("streaming array") slices: they must
// stay below the critical-section data regions at shared offset 0x2000'0000,
// with headroom for the hot pools stacked on top of them.  384 MiB keeps
// every historical configuration (cold slices were never clamped below
// P = 97) bit-identical.
constexpr std::uint64_t kColdRegionBudget = 0x1800'0000ull;
}  // namespace

ProfileTraceSource::ProfileTraceSource(const BenchmarkProfile& profile,
                                       std::uint32_t proc)
    : profile_(profile), proc_(proc) {
  reset();
}

void ProfileTraceSource::reset() {
  rng_.reseed(profile_.seed * 0x9e3779b97f4a7c15ULL + proc_ + 1);
  staged_.clear();
  refs_emitted_ = 0;
  outer_emitted_ = 0;
  pc_ = AddressMap::code_addr((proc_ * 4096) % kCodeWorkingSet);
  last_shared_line_ = AddressMap::shared_addr(0);
  cold_pos_ = 0;
  // Historically this computed proc_ * cold_region_bytes unconditionally,
  // which overflowed the shared region (assert) for large P even with the
  // cold stream disabled.  The clamped slice is 0 when there is no cold
  // stream and last_cold_addr_ is then never read before a cold load sets it.
  cold_slice_ = cold_slice_bytes();
  last_cold_addr_ = AddressMap::shared_addr(proc_ * cold_slice_);
  barriers_emitted_ = 0;
  barrier_interval_ =
      profile_.locking.barriers_per_proc > 0
          ? std::max<std::uint64_t>(
                1, profile_.refs_per_proc /
                       (profile_.locking.barriers_per_proc + 1))
          : 0;

  const double mean_gap = std::max(1.0, profile_.work_cycles_per_ref);
  gap_log1m_p_ = mean_gap > 1.0 ? std::log1p(-1.0 / mean_gap) : 0.0;
  gap_sampler_ = gap_log1m_p_ != 0.0 ? util::GeometricSampler(gap_log1m_p_)
                                     : util::GeometricSampler();

  const LockingModel& lk = profile_.locking;
  outer_target_ = lk.pairs_per_proc - lk.nested_per_proc;
  if (outer_target_ > 0) {
    // Expected references spent inside critical sections, so the per-normal-
    // reference start probability lands the right number of sections.
    const double mean_cs = (1.0 - lk.short_fraction) * lk.cs_work_cycles +
                           lk.short_fraction * lk.short_cs_cycles;
    const double body_refs =
        mean_cs / std::max(1.0, profile_.work_cycles_per_ref);
    const double cs_refs = static_cast<double>(outer_target_) * body_refs;
    const double normal_refs =
        std::max(1.0, static_cast<double>(profile_.refs_per_proc) - cs_refs);
    nested_probability_ =
        static_cast<double>(lk.nested_per_proc) / static_cast<double>(outer_target_);

    const double burst_outer =
        lk.burst_fraction * static_cast<double>(outer_target_);
    burst_window_refs_ = static_cast<std::uint64_t>(
        lk.burst_window * static_cast<double>(profile_.refs_per_proc));
    const double burst_normal = std::max(
        1.0, static_cast<double>(burst_window_refs_) - burst_outer * body_refs);
    burst_probability_ = burst_outer > 0.0 ? burst_outer / burst_normal : 0.0;
    cs_probability_ = (static_cast<double>(outer_target_) - burst_outer) /
                      std::max(1.0, normal_refs - burst_normal);
  } else {
    cs_probability_ = 0.0;
    burst_probability_ = 0.0;
    nested_probability_ = 0.0;
    burst_window_refs_ = 0;
  }
}

std::uint32_t ProfileTraceSource::cold_slice_bytes() const {
  const LocalityModel& loc = profile_.locality;
  if (loc.cold_fraction <= 0.0) return 0;
  const std::uint64_t want = loc.cold_region_bytes;
  if (want * profile_.num_procs <= kColdRegionBudget) {
    return loc.cold_region_bytes;
  }
  // Scale the per-processor slice down so P slices fit the budget, keeping
  // the streaming-march behavior at any machine size (64-byte floor so a
  // slice always spans whole cache lines).
  const std::uint64_t slice = (kColdRegionBudget / profile_.num_procs) & ~63ull;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(slice, 64));
}

bool ProfileTraceSource::in_burst_window() const {
  return refs_emitted_ < burst_window_refs_;
}

void ProfileTraceSource::maybe_emit_barrier() {
  const std::uint64_t target = profile_.locking.barriers_per_proc;
  while (barriers_emitted_ < target &&
         refs_emitted_ >= (barriers_emitted_ + 1) * barrier_interval_) {
    staged_.push_back(Event{AddressMap::barrier_addr(0), 2, Op::kBarrier});
    ++barriers_emitted_;
  }
}

bool ProfileTraceSource::next(Event& out) {
  if (staged_.empty()) {
    if (refs_emitted_ >= profile_.refs_per_proc) {
      // Trailing barriers: every processor must emit the full sequence.
      while (barriers_emitted_ < profile_.locking.barriers_per_proc) {
        staged_.push_back(Event{AddressMap::barrier_addr(0), 2, Op::kBarrier});
        ++barriers_emitted_;
      }
      if (staged_.empty()) return false;
    } else {
      synthesize();
    }
  }
  out = staged_.front();
  staged_.pop_front();
  return true;
}

void ProfileTraceSource::synthesize() {
  // Force remaining critical sections out before the trace ends, so the
  // generated lock-pair count matches the profile even for short traces.
  const std::uint64_t refs_left = profile_.refs_per_proc - refs_emitted_;
  const std::uint64_t outer_left = outer_target_ - outer_emitted_;
  const bool force_cs =
      outer_left > 0 &&
      refs_left <= outer_left * std::max<std::uint64_t>(
                       1, static_cast<std::uint64_t>(
                              profile_.locking.cs_work_cycles /
                              std::max(1.0, profile_.work_cycles_per_ref)) +
                              2);
  const double p = in_burst_window() ? burst_probability_ : cs_probability_;
  if (outer_left > 0 && (force_cs || rng_.chance(p))) {
    emit_critical_section();
  } else {
    emit_normal_ref();
  }
  // Barrier thresholds are reference-count based, so every processor emits
  // the same arrival sequence.  Never inside a critical section (deadlock).
  maybe_emit_barrier();
}

std::uint32_t ProfileTraceSource::next_gap() {
  // gap_log1m_p_ == 0 marks a mean gap of exactly 1: geometric(1.0) draws
  // nothing and contributes 0, matching the original per-event computation.
  std::uint64_t gap =
      1 + (gap_log1m_p_ != 0.0 ? gap_sampler_.draw(rng_) : 0);
  if (profile_.cpi_skew > 0.0 && proc_ == profile_.skew_proc) {
    gap = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(gap) * (1.0 + profile_.cpi_skew)));
  }
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(gap, 1u << 20));
}

Event ProfileTraceSource::make_ifetch() {
  if (rng_.chance(kJumpProbability)) {
    pc_ = AddressMap::code_addr(
        static_cast<std::uint32_t>(rng_.below(kCodeWorkingSet / 4)) * 4);
  } else {
    pc_ += 4;
    if (pc_ >= AddressMap::code_addr(kCodeWorkingSet)) {
      pc_ = AddressMap::code_addr(0);
    }
  }
  return Event{pc_, next_gap(), Op::kIFetch};
}

Event ProfileTraceSource::make_data_ref(bool force_shared) {
  const LocalityModel& loc = profile_.locality;
  const Op op = rng_.chance(loc.write_fraction) ? Op::kStore : Op::kLoad;
  const double r = rng_.uniform();

  if (!force_shared && r < loc.private_fraction) {
    const auto off =
        static_cast<std::uint32_t>(rng_.below(loc.private_hot_bytes / 4)) * 4;
    return Event{AddressMap::private_addr(proc_, off), next_gap(), op};
  }
  if (!force_shared && loc.cold_fraction > 0.0 &&
      r < loc.private_fraction + loc.cold_fraction) {
    // Streaming march through this processor's slice of a large shared
    // region (Qsort's array).  Stores re-touch the last loaded address —
    // "the reads almost always precede the exchanges of the same lines"
    // (§4.2) — so they hit; loads advance the stream.
    const std::uint32_t slice = cold_slice_;
    const std::uint32_t base = proc_ * slice;
    if (op == Op::kStore) {
      // Exchange into the line the last cold load fetched: a write hit.
      return Event{last_cold_addr_, next_gap(), op};
    }
    last_cold_addr_ = AddressMap::shared_addr(base + cold_pos_);
    cold_pos_ = (cold_pos_ + loc.cold_stride_bytes) % slice;
    return Event{last_cold_addr_, next_gap(), op};
  }
  // Hot shared pool, with spatial re-reference locality.
  if (rng_.chance(loc.shared_rerefs)) {
    return Event{last_shared_line_ +
                     static_cast<std::uint32_t>(rng_.below(4)) * 4,
                 next_gap(), op};
  }
  const std::uint32_t pool_off =
      static_cast<std::uint32_t>(rng_.below(loc.shared_hot_bytes / 16)) * 16;
  // Hot shared data lives above the cold slices so the regions never alias;
  // slice 0 is the common (truly contended) pool, slices 1..P are the
  // per-processor affinity partitions.
  const std::uint32_t hot_base = profile_.num_procs * cold_slice_;
  const std::uint32_t slice =
      rng_.chance(loc.shared_affinity) ? (1 + proc_) * loc.shared_hot_bytes : 0;
  last_shared_line_ = AddressMap::shared_addr(hot_base + slice + pool_off);
  return Event{last_shared_line_, next_gap(), op};
}

void ProfileTraceSource::emit_normal_ref() {
  const bool data = rng_.chance(profile_.data_ref_fraction);
  staged_.push_back(data ? make_data_ref(false) : make_ifetch());
  ++refs_emitted_;
}

std::uint32_t ProfileTraceSource::pick_lock() {
  const LockingModel& lk = profile_.locking;
  if (lk.partitioned) {
    // Per-processor lock space: partition locks never collide.
    const auto slot = static_cast<std::uint32_t>(rng_.below(lk.num_locks));
    return AddressMap::lock_addr(1 + proc_ * lk.num_locks + slot);
  }
  if (lk.num_locks <= 1 || rng_.chance(lk.dominant_weight)) {
    return AddressMap::lock_addr(0);
  }
  // Uniform over the non-dominant locks, skipping the inner (nested) lock:
  // locks are non-reentrant, so an outer section must never sit on the lock
  // that nested acquisitions take.
  std::uint32_t id;
  do {
    id = 1 + static_cast<std::uint32_t>(rng_.below(lk.num_locks - 1));
  } while (id == lk.inner_lock && lk.num_locks > 2);
  if (id == lk.inner_lock) return AddressMap::lock_addr(0);
  return AddressMap::lock_addr(id);
}

trace::Event ProfileTraceSource::make_cs_data_ref(std::uint32_t lock_addr) {
  // The data the lock protects: a small per-lock region far above the hot
  // pools (offset 0x2000'0000 into the shared segment).
  const LockingModel& lk = profile_.locking;
  const std::uint32_t lock_id = (lock_addr - AddressMap::kLockBase) / 64;
  const std::uint32_t base =
      0x2000'0000u + lock_id * std::max<std::uint32_t>(lk.cs_region_bytes, 16);
  const std::uint32_t off =
      static_cast<std::uint32_t>(rng_.below(lk.cs_region_bytes / 4)) * 4;
  const Op op = rng_.chance(profile_.locality.write_fraction) ? Op::kStore
                                                              : Op::kLoad;
  return Event{AddressMap::shared_addr(base + off), next_gap(), op};
}

void ProfileTraceSource::emit_critical_section() {
  const LockingModel& lk = profile_.locking;
  ++outer_emitted_;

  // Bimodal sections: a short one always targets lock 0.
  const bool short_section = rng_.chance(lk.short_fraction);
  const std::uint32_t lock =
      short_section ? AddressMap::lock_addr(0) : pick_lock();

  // Draw the section's ideal duration and convert to a reference count.
  const double wcpr = std::max(1.0, profile_.work_cycles_per_ref);
  const double mean = short_section ? lk.short_cs_cycles : lk.cs_work_cycles;
  const double duration =
      1.0 + static_cast<double>(rng_.exponential_cycles(mean));
  auto body_refs = static_cast<std::uint64_t>(std::llround(duration / wcpr));
  body_refs = std::max<std::uint64_t>(body_refs, 1);

  const bool nested = rng_.chance(nested_probability_) &&
                      lock != AddressMap::lock_addr(lk.inner_lock);
  // The inner (thread-queue) lock pair nests in the middle, held for about a
  // quarter of the section (Presto's short queue manipulation).
  const std::uint64_t inner_len = nested ? std::max<std::uint64_t>(1, body_refs / 4) : 0;
  const std::uint64_t inner_start = nested ? body_refs / 2 : 0;

  staged_.push_back(Event{lock, static_cast<std::uint32_t>(kLockOpGap),
                          Op::kLockAcq});
  for (std::uint64_t i = 0; i < body_refs; ++i) {
    if (nested && i == inner_start) {
      staged_.push_back(Event{AddressMap::lock_addr(lk.inner_lock),
                              static_cast<std::uint32_t>(kLockOpGap),
                              Op::kLockAcq});
    }
    // Section bodies keep the program's instruction/data mix; data refs
    // mostly touch the lock's protected region (first touches migrate the
    // data from the previous holder, the rest hit in cache).
    const bool data = rng_.chance(profile_.data_ref_fraction);
    const Event body = !data              ? make_ifetch()
                       : rng_.chance(lk.cs_region_bias)
                           ? make_cs_data_ref(lock)
                           : make_data_ref(false);
    staged_.push_back(body);
    ++refs_emitted_;
    if (nested && i == inner_start + inner_len) {
      staged_.push_back(Event{AddressMap::lock_addr(lk.inner_lock),
                              static_cast<std::uint32_t>(kLockOpGap),
                              Op::kLockRel});
    }
  }
  if (nested && inner_start + inner_len >= body_refs) {
    staged_.push_back(Event{AddressMap::lock_addr(lk.inner_lock),
                            static_cast<std::uint32_t>(kLockOpGap),
                            Op::kLockRel});
  }
  staged_.push_back(Event{lock, static_cast<std::uint32_t>(kLockOpGap),
                          Op::kLockRel});
}

trace::ProgramTrace make_program_trace(const BenchmarkProfile& profile) {
  trace::ProgramTrace program;
  program.name = profile.name;
  for (std::uint32_t p = 0; p < profile.num_procs; ++p) {
    program.per_proc.push_back(
        std::make_unique<ProfileTraceSource>(profile, p));
  }
  return program;
}

}  // namespace syncpat::workload

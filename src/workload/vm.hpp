// Instrumented virtual shared-memory program framework.
//
// The paper's traces were produced by MPTrace instrumenting real parallel
// programs.  This framework is the analogous front end for our simulator: a
// kernel (a real algorithm — quicksort, Barnes-Hut, annealing) executes
// host-side against a modeled address space, and every load, store, lock and
// unlock it performs is recorded into per-thread event streams, producing a
// ProgramTrace whose addresses come from genuine data-structure layouts.
//
// Threads are interleaved by the kernel's own round-robin scheduler at
// generation time; as with any trace-driven methodology the recorded
// interleaving is one possible execution, and the simulator re-times it
// (§2.1 discusses the same property of MPTrace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/source.hpp"

namespace syncpat::workload {

class VirtualProgram {
 public:
  VirtualProgram(std::string name, std::uint32_t num_threads);

  [[nodiscard]] std::uint32_t num_threads() const {
    return static_cast<std::uint32_t>(threads_.size());
  }

  // --- address space -------------------------------------------------------
  /// Allocates shared memory; returns the base address.
  std::uint32_t alloc_shared(std::uint32_t bytes, std::uint32_t align = 4);
  /// Allocates thread-private memory (stack/locals).
  std::uint32_t alloc_private(std::uint32_t thread, std::uint32_t bytes,
                              std::uint32_t align = 4);
  /// Allocates a lock; returns its address.
  std::uint32_t alloc_lock();

  // --- recording -----------------------------------------------------------
  /// Accumulates pure-execution cycles attributed to the next event.
  void compute(std::uint32_t thread, std::uint32_t cycles);
  /// Records a data read/write.  Each data reference is preceded by one
  /// instruction fetch (the referencing instruction), keeping the
  /// instruction/data mix realistic.
  void load(std::uint32_t thread, std::uint32_t addr);
  void store(std::uint32_t thread, std::uint32_t addr);
  /// Records `count` instruction fetches (straight-line compute code).
  void instructions(std::uint32_t thread, std::uint32_t count);
  void lock(std::uint32_t thread, std::uint32_t lock_addr);
  void unlock(std::uint32_t thread, std::uint32_t lock_addr);
  /// Records a barrier arrival for one thread.
  void barrier(std::uint32_t thread, std::uint32_t barrier_id);
  /// Records the same barrier arrival in every thread (a phase boundary).
  void barrier_all(std::uint32_t barrier_id);

  /// Hands the recorded streams over as a ProgramTrace (this object is
  /// empty afterwards).
  [[nodiscard]] trace::ProgramTrace take_trace();

  [[nodiscard]] std::uint64_t events_recorded(std::uint32_t thread) const {
    return threads_[thread].events.size();
  }

 private:
  struct Thread {
    std::vector<trace::Event> events;
    std::uint32_t pending_gap = 0;
    std::uint32_t pc = 0;
    std::uint32_t private_cursor = 0;
    std::uint32_t locks_held = 0;
  };

  void emit(std::uint32_t thread, trace::Op op, std::uint32_t addr);
  void emit_ifetch(std::uint32_t thread);

  std::string name_;
  std::vector<Thread> threads_;
  std::uint32_t shared_cursor_ = 0;
  std::uint32_t lock_cursor_ = 0;
};

}  // namespace syncpat::workload

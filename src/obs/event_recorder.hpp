// Event recorder: the single choke point every instrumentation site feeds.
//
// Events are staged in a fixed-capacity ring (util::RingBuffer, the same
// structure as the hardware queues) and drained to the registered sinks in
// batches, so the steady-state emit path is a bounds check and a slot store.
// Nothing is ever dropped: a full ring drains synchronously.  Sinks are
// non-owning and must outlive the recorder's last flush().
#pragma once

#include <vector>

#include "obs/trace_event.hpp"
#include "util/ring_buffer.hpp"

namespace syncpat::obs {

class TraceSink {
 public:
  virtual ~TraceSink();
  virtual void on_event(const TraceEvent& event) = 0;
  /// End of run: the recorder has drained every staged event.
  virtual void on_flush() {}
};

class EventRecorder {
 public:
  explicit EventRecorder(const TraceConfig& config)
      : categories_(config.categories),
        ring_(config.ring_capacity > 0 ? config.ring_capacity : 1) {}

  /// Category filter, checked by the instrumentation sites before building
  /// an event at all.
  [[nodiscard]] bool wants(std::uint32_t cat) const {
    return (categories_ & cat) != 0;
  }
  [[nodiscard]] std::uint32_t categories() const { return categories_; }

  void add_sink(TraceSink* sink) { sinks_.push_back(sink); }

  void emit(const TraceEvent& event) {
    if (ring_.full()) drain();
    ring_.push_back(event);
    ++emitted_;
  }

  /// Drains the ring and notifies every sink that the run is over.
  void flush() {
    drain();
    for (TraceSink* sink : sinks_) sink->on_flush();
  }

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  void drain() {
    while (!ring_.empty()) {
      const TraceEvent event = ring_.pop_front();
      for (TraceSink* sink : sinks_) sink->on_event(event);
    }
  }

  std::uint32_t categories_;
  util::RingBuffer<TraceEvent> ring_;
  std::vector<TraceSink*> sinks_;
  std::uint64_t emitted_ = 0;
};

}  // namespace syncpat::obs

#include "obs/stall_attribution.hpp"

namespace syncpat::obs {

const char* stall_cat_name(StallCat cat) {
  switch (cat) {
    case StallCat::kCompute: return "compute";
    case StallCat::kLockSpin: return "lock_spin";
    case StallCat::kLockQueuedWait: return "lock_queued_wait";
    case StallCat::kBarrierWait: return "barrier_wait";
    case StallCat::kBusArbitration: return "bus_arbitration";
    case StallCat::kBusTransfer: return "bus_transfer";
    case StallCat::kMemoryLatency: return "memory_latency";
    case StallCat::kWriteBufferFull: return "write_buffer_full";
    case StallCat::kInvalidationRefill: return "invalidation_refill";
    case StallCat::kRemoteAccess: return "remote_access";
  }
  return "?";
}

}  // namespace syncpat::obs

// MetricsRegistry: the deterministic metrics layer (counters, gauges and
// cycle-bucketed histograms), null-unless-enabled like the invariant checker
// and the EventRecorder — the Simulator holds no registry at all when
// MetricsConfig.enabled is false, so the disabled path costs one branch per
// instrumentation site and metrics-enabled runs are byte-identical to
// disabled ones (the fuzz harness proves this: oracle #6 runs the reference
// simulation with metrics on and compares it byte-for-byte against a plain
// run).
//
// Everything in the registry is a deterministic function of simulation state:
// integer cycle counts keyed by sorted maps, so two runs of the same cell —
// on any --jobs count, fast-forward on or off — render identical bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/stall_attribution.hpp"
#include "util/histogram.hpp"

namespace syncpat::obs {

struct MetricsConfig {
  bool enabled = false;
  /// Bus-utilization gauge window, in cycles (>= 1).
  std::uint32_t bus_window_cycles = 4096;
};

/// Windowed bus-utilization gauge: busy cycles accumulated per fixed-size
/// cycle window.  Tenures are credited in full when they start (the bus's
/// busy counter accrues the same cycles tick by tick); since tenures never
/// overlap, only the final one can outlive the run, and finalize() clips it
/// so that the window totals equal Bus::busy_cycles() exactly.
class BusWindowGauge {
 public:
  explicit BusWindowGauge(std::uint32_t window_cycles);

  /// A bus tenure of `busy` cycles starting at `cycle`.
  void add(std::uint64_t cycle, std::uint64_t busy);
  /// Clips the tail tenure at `end_cycle` (the run's last executed cycle)
  /// and zero-extends the window vector to cover [0, end_cycle].
  void finalize(std::uint64_t end_cycle);

  [[nodiscard]] std::uint32_t window_cycles() const { return window_cycles_; }
  [[nodiscard]] const std::vector<std::uint64_t>& windows() const {
    return busy_;
  }
  [[nodiscard]] std::uint64_t total_busy() const { return total_busy_; }
  /// Busy fraction of window `i` (the last window may be partial; its
  /// denominator is still the full window size).
  [[nodiscard]] double utilization(std::size_t i) const;

 private:
  void credit(std::uint64_t cycle, std::uint64_t busy, bool subtract);

  std::uint32_t window_cycles_;
  std::vector<std::uint64_t> busy_;  // busy cycles per window
  std::uint64_t total_busy_ = 0;
  std::uint64_t last_start_ = 0;  // final tenure, for finalize()'s clip
  std::uint64_t last_len_ = 0;
};

/// Per-lock contention metrics, fed by LockStatsCollector (every scheme
/// funnels through it, so one hook instruments them all).  Histogram totals
/// are conserved against the LockStats aggregates by construction:
/// waiters_at_acquire.count() == acquisitions and
/// handoff_cycles.count() == transfers (oracle #6 checks both).
struct LockMetrics {
  std::uint64_t acquisitions = 0;
  std::uint64_t transfers = 0;
  util::Histogram waiters_at_acquire;  // waiters still queued as the lock is taken
  util::Histogram hold_cycles;         // acquire -> release issue
  util::Histogram handoff_cycles;      // release -> next owner running
};

class MetricsRegistry {
 public:
  MetricsRegistry(const MetricsConfig& config, std::uint32_t num_procs);

  [[nodiscard]] std::uint32_t num_procs() const {
    return static_cast<std::uint32_t>(procs_.size());
  }
  [[nodiscard]] ProcMetrics& proc(std::uint32_t p) { return procs_[p]; }
  [[nodiscard]] const ProcMetrics& proc(std::uint32_t p) const {
    return procs_[p];
  }

  /// Lazily-created per-lock slot (keyed and exported by line address,
  /// sorted, so rendering is deterministic).
  [[nodiscard]] LockMetrics& lock(std::uint32_t line_addr) {
    return locks_[line_addr];
  }
  [[nodiscard]] const std::map<std::uint32_t, LockMetrics>& locks() const {
    return locks_;
  }

  [[nodiscard]] BusWindowGauge& bus() { return bus_; }
  [[nodiscard]] const BusWindowGauge& bus() const { return bus_; }

  /// Named machine-level counter (accumulating; sorted for export).  Only
  /// deterministic-across-modes values belong here: the export is compared
  /// byte-for-byte between fast-forward on and off.
  void count(const std::string& name, std::uint64_t n) { counters_[name] += n; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Called once at the end of Simulator::run() with the final cycle.
  void finalize(std::uint64_t run_time) { bus_.finalize(run_time); }

 private:
  std::vector<ProcMetrics> procs_;
  std::map<std::uint32_t, LockMetrics> locks_;
  BusWindowGauge bus_;
  std::map<std::string, std::uint64_t> counters_;
};

// --- export ---------------------------------------------------------------

/// Run labels stamped into the export header.
struct MetricsMeta {
  std::string program;
  std::string scheme;
  std::string consistency;
  std::uint32_t num_procs = 0;
  std::uint64_t run_time = 0;
};

enum class MetricsFormat : std::uint8_t { kJson, kCsv };

/// Dispatches on the file extension: ".json" or ".csv"; anything else throws
/// std::invalid_argument (the strict-parsing policy: junk errors loudly).
[[nodiscard]] MetricsFormat metrics_format_from_path(const std::string& path);

[[nodiscard]] std::string metrics_to_json(const MetricsRegistry& m,
                                          const MetricsMeta& meta);
[[nodiscard]] std::string metrics_to_csv(const MetricsRegistry& m,
                                         const MetricsMeta& meta);
[[nodiscard]] std::string render_metrics(const MetricsRegistry& m,
                                         const MetricsMeta& meta,
                                         MetricsFormat format);

/// SYNCPAT_METRICS override: "1" forces metrics on, "0" forces them off,
/// unset keeps `fallback`.  Any other value throws std::invalid_argument
/// (via util::parse_bool01 — never a silent default).
[[nodiscard]] bool metrics_enabled_from_env(bool fallback);

}  // namespace syncpat::obs

// Host-side engine self-profiler: attributes the simulator's *wall-clock*
// time (not simulated cycles) to engine phases, so the DES-rewrite candidate
// (ROADMAP item 1) has a measured before-picture of where the host CPU goes —
// dense tick loop vs quiescence probing vs fast-forward run-ahead vs
// invariant checking vs trace emission.
//
// Null-unless-attached like every other observer: the Simulator holds a raw
// SelfProfiler pointer and takes the instrumented run loop only when one is
// attached, so un-profiled runs don't even execute the timestamp calls.
// Timestamps use steady_clock; the constructor measures the clock-read cost
// so reports can show how much of the attributed time is timer overhead.
//
// The profiler observes the host, never the simulation: attaching it cannot
// change any simulated result (the bench asserts run_cycles match).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace syncpat::obs {

class SelfProfiler {
 public:
  enum class Phase : std::uint8_t {
    kDenseTick = 0,     // Simulator::step() — the per-cycle engine loop
    kQuiescenceProbe,   // fast_forward() calls that found no skippable span
    kFastForward,       // fast_forward() calls that skipped ahead
    kInvariantCheck,    // invariant checker per-cycle and end-of-run sweeps
    kTraceEmit,         // event recorder flush / sink finalization
    kEventLoop,         // Simulator::run_des() — the discrete-event core
  };
  static constexpr std::size_t kNumPhases = 6;

  [[nodiscard]] static const char* phase_name(Phase p);

  /// Calibrates the steady_clock read cost (median of a sample burst).
  SelfProfiler();

  [[nodiscard]] static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Charges `ns` (may be negative: compensating entries subtract nested
  /// phases from their parent) and `calls` samples to a phase.
  void charge(Phase p, std::int64_t ns, std::uint64_t calls = 1) {
    ns_[static_cast<std::size_t>(p)] += ns;
    calls_[static_cast<std::size_t>(p)] += calls;
  }

  struct Snapshot {
    std::array<std::int64_t, kNumPhases> ns{};
    std::array<std::uint64_t, kNumPhases> calls{};
    std::int64_t timer_overhead_ns_per_sample = 0;

    [[nodiscard]] std::int64_t total_ns() const {
      std::int64_t sum = 0;
      for (const std::int64_t v : ns) sum += v;
      return sum;
    }
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Multi-line phase breakdown for terminal output.
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::int64_t, kNumPhases> ns_{};
  std::array<std::uint64_t, kNumPhases> calls_{};
  std::int64_t timer_overhead_ns_ = 0;
};

}  // namespace syncpat::obs

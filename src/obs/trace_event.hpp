// Cycle-stamped observability events (the "when did it happen" layer the
// end-of-run aggregates cannot answer — §2.3's attribution questions).
//
// The subsystem follows the invariant checker's opt-in pattern: compiled in
// unconditionally, but the simulator holds a null recorder unless
// MachineConfig::trace.enabled is set, so default-off runs pay one branch per
// instrumentation point and results stay bit-identical to untraced runs.
#pragma once

#include <cstdint>
#include <string>

namespace syncpat::obs {

/// Category bitmask for --trace-events=locks,bus,coherence,... filtering.
/// Checked at the instrumentation sites, so a masked-out category costs
/// nothing downstream of the branch.
namespace category {
inline constexpr std::uint32_t kLocks = 1u << 0;
inline constexpr std::uint32_t kBus = 1u << 1;
inline constexpr std::uint32_t kCoherence = 1u << 2;
inline constexpr std::uint32_t kBarriers = 1u << 3;
inline constexpr std::uint32_t kIdle = 1u << 4;
inline constexpr std::uint32_t kAll =
    kLocks | kBus | kCoherence | kBarriers | kIdle;
}  // namespace category

/// Parses a comma-separated category list ("locks,bus", "all").  Throws
/// std::invalid_argument on an unknown token or an empty list.
[[nodiscard]] std::uint32_t parse_categories(const std::string& list);

/// Renders a mask back to the canonical comma-separated spelling.
[[nodiscard]] std::string categories_to_string(std::uint32_t mask);

enum class EventKind : std::uint8_t {
  // locks
  kAcquireBegin,     // proc starts an acquire attempt on `line`
  kAcquired,         // proc owns the lock
  kReleaseBegin,     // owner issued its releasing access
  kReleased,         // lock free, no waiter took it
  kHandoff,          // lock released to a waiter; a = waiters still left
  kTransferDone,     // hand-off target now runs; b = release->acquire cycles
  kSpinInvalidated,  // a spinner's cached lock/flag line was invalidated
  // bus
  kBusGrant,     // txn won arbitration; a = kind (bit 8: response phase),
                 // b = bus cycles held
  kBusComplete,  // requester-visible completion; a = issue->complete cycles,
                 // b = kind
  // coherence
  kMesiTransition,  // a = from-state, b = to-state (cache::LineState values)
  // barriers
  kBarrierArrive,   // a = waiters already at the barrier
  kBarrierRelease,  // last arrival; a = processors released
  // fast-forward
  kIdleSpan,  // bulk-skipped quiescent stretch; a = length, b = executed ticks
};

[[nodiscard]] const char* event_kind_name(EventKind k);
[[nodiscard]] std::uint32_t event_category(EventKind k);

/// One instrumentation record.  `a`/`b` are kind-specific payloads (see the
/// per-kind comments above); proc is -1 for machine-wide events.
struct TraceEvent {
  std::uint64_t cycle = 0;
  EventKind kind = EventKind::kAcquireBegin;
  std::int32_t proc = -1;
  std::uint32_t line = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Opt-in tracing knobs, carried in MachineConfig next to InvariantConfig.
struct TraceConfig {
  bool enabled = false;
  std::uint32_t categories = category::kAll;
  /// Staging-ring capacity; the ring drains to the sinks when full, so this
  /// only bounds batching, never drops events.
  std::uint32_t ring_capacity = 4096;
};

}  // namespace syncpat::obs

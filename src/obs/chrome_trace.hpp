// Chrome trace-event JSON exporter (the `chrome://tracing` / Perfetto
// format): one track per processor, one per lock word, one for the bus, and
// one machine-wide track for barriers and fast-forwarded idle spans.  Two
// counter ("ph":"C") series ride along: windowed bus-busy cycles on the bus
// track and a live waiter count per lock word, so the viewer graphs
// contention over time next to the spans that caused it.
//
// Cycles are written as microsecond timestamps (1 cycle == 1 us), so the
// viewer's time axis reads directly in simulated cycles.  Output is fully
// deterministic: span/instant entries are appended in simulation order and
// the per-track metadata is emitted from sorted sets at finish().
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "obs/event_recorder.hpp"
#include "obs/metrics.hpp"

namespace syncpat::obs {

class ChromeTraceSink final : public TraceSink {
 public:
  /// `process_label` names the trace in the viewer (e.g. "Grav/queuing");
  /// `num_procs` pre-registers the processor tracks so they appear in order
  /// even if a processor never logs an event.
  ChromeTraceSink(std::string process_label, std::uint32_t num_procs);

  void on_event(const TraceEvent& event) override;

  /// The complete JSON document.  Call after EventRecorder::flush().
  [[nodiscard]] std::string finish() const;

 private:
  struct OpenHold {
    std::uint64_t since = 0;
    std::int32_t proc = -1;
  };

  void append_event(const std::string& json_object);
  void close_hold(std::uint32_t line, std::uint64_t now);

  std::string process_label_;
  std::uint32_t num_procs_;
  std::string body_;  // comma-joined event objects, simulation order
  std::set<std::uint32_t> locks_seen_;
  std::map<std::int32_t, std::uint64_t> wait_open_;  // proc -> acquire begin
  std::map<std::uint32_t, OpenHold> hold_open_;      // lock -> owner + since
  // Counter series: bus tenures bucketed into fixed windows (emitted as one
  // "ph":"C" sample per window at finish()) and the live waiter count per
  // lock (sampled inline at every kAcquireBegin / kAcquired).
  BusWindowGauge bus_gauge_;
  std::uint64_t last_cycle_ = 0;  // max event end seen, bounds the gauge
  std::map<std::uint32_t, std::uint64_t> waiters_live_;
};

/// `base` with `label` spliced in before the extension ("out.json" +
/// "Grav/queuing" -> "out.Grav-queuing.json"); slashes and spaces in the
/// label become '-' so the result is a single path component.
[[nodiscard]] std::string trace_out_path(const std::string& base,
                                         const std::string& label);

}  // namespace syncpat::obs

// In-memory per-lock hand-off timeline: the data behind the §2.3-style
// attribution report (transfer latency over time, waiters at transfer by
// phase).  Unlike LockStatsCollector's end-of-run aggregates, every hand-off
// keeps its cycle stamp, so the report layer can split the run into phases.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/event_recorder.hpp"

namespace syncpat::obs {

struct LockTimeline {
  struct Transfer {
    std::uint64_t release_cycle = 0;
    std::uint64_t latency = 0;  // release -> next acquire, cycles
    std::uint64_t waiters_left = 0;
    bool latency_known = false;  // false only for a hand-off still in flight
                                 // when the run ended
  };
  struct PerLock {
    std::uint64_t acquisitions = 0;
    std::uint64_t handoffs = 0;
    std::vector<Transfer> transfers;  // in release order
  };

  // std::map: deterministic iteration for byte-identical reports.
  std::map<std::uint32_t, PerLock> locks;
  std::uint64_t run_cycles = 0;

  [[nodiscard]] std::uint64_t total_handoffs() const {
    std::uint64_t total = 0;
    for (const auto& [line, lock] : locks) total += lock.handoffs;
    return total;
  }
};

class LockTimelineSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override;

  [[nodiscard]] const LockTimeline& timeline() const { return timeline_; }
  /// Moves the timeline out, stamping the run length (used by the phase
  /// windows of the report).
  [[nodiscard]] LockTimeline take(std::uint64_t run_cycles);

 private:
  LockTimeline timeline_;
};

}  // namespace syncpat::obs

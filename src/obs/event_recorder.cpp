#include "obs/event_recorder.hpp"

#include <stdexcept>

namespace syncpat::obs {

TraceSink::~TraceSink() = default;

namespace {

struct NamedCategory {
  const char* name;
  std::uint32_t mask;
};

constexpr NamedCategory kNamed[] = {
    {"locks", category::kLocks},     {"bus", category::kBus},
    {"coherence", category::kCoherence}, {"barriers", category::kBarriers},
    {"idle", category::kIdle},       {"all", category::kAll},
};

}  // namespace

std::uint32_t parse_categories(const std::string& list) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  bool any = false;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string token =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
    bool matched = false;
    for (const NamedCategory& c : kNamed) {
      if (token == c.name) {
        mask |= c.mask;
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw std::invalid_argument(
          "unknown trace category \"" + token +
          "\" (expected a comma-separated list of "
          "locks|bus|coherence|barriers|idle|all)");
    }
    any = true;
  }
  if (!any || mask == 0) {
    throw std::invalid_argument("empty trace category list");
  }
  return mask;
}

std::string categories_to_string(std::uint32_t mask) {
  if (mask == category::kAll) return "all";
  std::string out;
  for (const NamedCategory& c : kNamed) {
    if (c.mask == category::kAll) continue;
    if ((mask & c.mask) == 0) continue;
    if (!out.empty()) out += ',';
    out += c.name;
  }
  return out;
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kAcquireBegin: return "acquire-begin";
    case EventKind::kAcquired: return "acquired";
    case EventKind::kReleaseBegin: return "release-begin";
    case EventKind::kReleased: return "released";
    case EventKind::kHandoff: return "handoff";
    case EventKind::kTransferDone: return "transfer-done";
    case EventKind::kSpinInvalidated: return "spin-invalidated";
    case EventKind::kBusGrant: return "bus-grant";
    case EventKind::kBusComplete: return "bus-complete";
    case EventKind::kMesiTransition: return "mesi-transition";
    case EventKind::kBarrierArrive: return "barrier-arrive";
    case EventKind::kBarrierRelease: return "barrier-release";
    case EventKind::kIdleSpan: return "idle-span";
  }
  return "?";
}

std::uint32_t event_category(EventKind k) {
  switch (k) {
    case EventKind::kAcquireBegin:
    case EventKind::kAcquired:
    case EventKind::kReleaseBegin:
    case EventKind::kReleased:
    case EventKind::kHandoff:
    case EventKind::kTransferDone:
    case EventKind::kSpinInvalidated:
      return category::kLocks;
    case EventKind::kBusGrant:
    case EventKind::kBusComplete:
      return category::kBus;
    case EventKind::kMesiTransition:
      return category::kCoherence;
    case EventKind::kBarrierArrive:
    case EventKind::kBarrierRelease:
      return category::kBarriers;
    case EventKind::kIdleSpan:
      return category::kIdle;
  }
  return 0;
}

}  // namespace syncpat::obs

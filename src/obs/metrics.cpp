#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/parse.hpp"

namespace syncpat::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Histogram as JSON: count, sum, and the non-empty log2 buckets as
/// [bucket_index, count] pairs (bucket_lo(i) recovers the value range).
void append_histogram_json(std::string& out, const util::Histogram& h) {
  appendf(out, "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"buckets\":[",
          h.count(), h.sum());
  bool first = true;
  for (std::size_t i = 0; i < util::Histogram::kBuckets; ++i) {
    if (h.bucket_count(i) == 0) continue;
    appendf(out, "%s[%zu,%" PRIu64 "]", first ? "" : ",", i, h.bucket_count(i));
    first = false;
  }
  out += "]}";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

/// CSV cell-safe: the exported labels are program/scheme names (no commas or
/// quotes in practice), but scrub separators anyway so a row stays a row.
std::string csv_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(c == ',' || c == '\n' || c == '\r' ? ' ' : c);
  }
  return out;
}

void append_histogram_csv(std::string& out, const std::string& record,
                          const char* name, const util::Histogram& h) {
  appendf(out, "%s,%s.count,%" PRIu64 "\n", record.c_str(), name, h.count());
  appendf(out, "%s,%s.sum,%" PRIu64 "\n", record.c_str(), name, h.sum());
  for (std::size_t i = 0; i < util::Histogram::kBuckets; ++i) {
    if (h.bucket_count(i) == 0) continue;
    appendf(out, "%s,%s.bucket%zu,%" PRIu64 "\n", record.c_str(), name, i,
            h.bucket_count(i));
  }
}

}  // namespace

// --------------------------------------------------------------------------
// BusWindowGauge

BusWindowGauge::BusWindowGauge(std::uint32_t window_cycles)
    : window_cycles_(window_cycles) {
  SYNCPAT_ASSERT(window_cycles_ > 0);
}

void BusWindowGauge::credit(std::uint64_t cycle, std::uint64_t busy,
                            bool subtract) {
  while (busy > 0) {
    const std::uint64_t w = cycle / window_cycles_;
    if (busy_.size() <= w) busy_.resize(w + 1, 0);
    const std::uint64_t window_end = (w + 1) * std::uint64_t{window_cycles_};
    const std::uint64_t in_window = std::min(busy, window_end - cycle);
    if (subtract) {
      SYNCPAT_ASSERT(busy_[w] >= in_window && total_busy_ >= in_window);
      busy_[w] -= in_window;
      total_busy_ -= in_window;
    } else {
      busy_[w] += in_window;
      total_busy_ += in_window;
    }
    cycle += in_window;
    busy -= in_window;
  }
}

void BusWindowGauge::add(std::uint64_t cycle, std::uint64_t busy) {
  credit(cycle, busy, /*subtract=*/false);
  last_start_ = cycle;
  last_len_ = busy;
}

void BusWindowGauge::finalize(std::uint64_t end_cycle) {
  if (last_len_ > 0 && last_start_ + last_len_ - 1 > end_cycle) {
    // The run ended mid-tenure (a trailing write-back still on the bus):
    // remove the cycles that were never ticked so total_busy() equals the
    // bus's busy-cycle counter exactly.
    const std::uint64_t kept =
        end_cycle >= last_start_ ? end_cycle - last_start_ + 1 : 0;
    credit(last_start_ + kept, last_len_ - kept, /*subtract=*/true);
    last_len_ = kept;
  }
  const std::uint64_t want = end_cycle / window_cycles_ + 1;
  if (busy_.size() < want) busy_.resize(want, 0);
}

double BusWindowGauge::utilization(std::size_t i) const {
  return static_cast<double>(busy_[i]) / static_cast<double>(window_cycles_);
}

// --------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry(const MetricsConfig& config,
                                 std::uint32_t num_procs)
    : procs_(num_procs), bus_(config.bus_window_cycles) {}

// --------------------------------------------------------------------------
// Export

MetricsFormat metrics_format_from_path(const std::string& path) {
  const std::size_t dot = path.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".json") return MetricsFormat::kJson;
  if (ext == ".csv") return MetricsFormat::kCsv;
  throw std::invalid_argument("metrics output path must end in .json or .csv, got \"" +
                              path + "\"");
}

std::string metrics_to_json(const MetricsRegistry& m, const MetricsMeta& meta) {
  std::string out;
  out.reserve(4096);
  appendf(out,
          "{\n\"program\":\"%s\",\"scheme\":\"%s\",\"consistency\":\"%s\","
          "\"num_procs\":%u,\"run_time\":%" PRIu64 ",\n",
          json_escape(meta.program).c_str(), json_escape(meta.scheme).c_str(),
          json_escape(meta.consistency).c_str(), meta.num_procs,
          meta.run_time);

  out += "\"stall_attribution\":[\n";
  ProcAttribution totals;
  for (std::uint32_t p = 0; p < m.num_procs(); ++p) {
    const ProcAttribution& a = m.proc(p).attr;
    appendf(out, "%s{\"proc\":%u", p == 0 ? "" : ",\n", p);
    for (std::size_t c = 0; c < kNumStallCats; ++c) {
      appendf(out, ",\"%s\":%" PRIu64,
              stall_cat_name(static_cast<StallCat>(c)), a.cycles[c]);
      totals.cycles[c] += a.cycles[c];
    }
    appendf(out, ",\"total\":%" PRIu64 "}", a.total());
  }
  out += "\n],\n\"stall_totals\":{";
  for (std::size_t c = 0; c < kNumStallCats; ++c) {
    appendf(out, "%s\"%s\":%" PRIu64, c == 0 ? "" : ",",
            stall_cat_name(static_cast<StallCat>(c)), totals.cycles[c]);
  }
  appendf(out, ",\"total\":%" PRIu64 "},\n", totals.total());

  out += "\"locks\":[\n";
  bool first = true;
  for (const auto& [line, lm] : m.locks()) {
    appendf(out, "%s{\"line\":%u,\"acquisitions\":%" PRIu64
                 ",\"transfers\":%" PRIu64 ",\"waiters_at_acquire\":",
            first ? "" : ",\n", line, lm.acquisitions, lm.transfers);
    append_histogram_json(out, lm.waiters_at_acquire);
    out += ",\"hold_cycles\":";
    append_histogram_json(out, lm.hold_cycles);
    out += ",\"handoff_cycles\":";
    append_histogram_json(out, lm.handoff_cycles);
    out += "}";
    first = false;
  }
  out += "\n],\n";

  const BusWindowGauge& bus = m.bus();
  appendf(out, "\"bus\":{\"window_cycles\":%u,\"total_busy\":%" PRIu64
               ",\"busy_per_window\":[",
          bus.window_cycles(), bus.total_busy());
  for (std::size_t i = 0; i < bus.windows().size(); ++i) {
    appendf(out, "%s%" PRIu64, i == 0 ? "" : ",", bus.windows()[i]);
  }
  out += "]},\n\"counters\":{";
  first = true;
  for (const auto& [name, value] : m.counters()) {
    appendf(out, "%s\"%s\":%" PRIu64, first ? "" : ",",
            json_escape(name).c_str(), value);
    first = false;
  }
  out += "}\n}\n";
  return out;
}

std::string metrics_to_csv(const MetricsRegistry& m, const MetricsMeta& meta) {
  std::string out;
  out.reserve(4096);
  out += "record,field,value\n";
  appendf(out, "meta,program,%s\n", csv_escape(meta.program).c_str());
  appendf(out, "meta,scheme,%s\n", csv_escape(meta.scheme).c_str());
  appendf(out, "meta,consistency,%s\n", csv_escape(meta.consistency).c_str());
  appendf(out, "meta,num_procs,%u\n", meta.num_procs);
  appendf(out, "meta,run_time,%" PRIu64 "\n", meta.run_time);

  ProcAttribution totals;
  for (std::uint32_t p = 0; p < m.num_procs(); ++p) {
    const ProcAttribution& a = m.proc(p).attr;
    for (std::size_t c = 0; c < kNumStallCats; ++c) {
      appendf(out, "stall.proc%u,%s,%" PRIu64 "\n", p,
              stall_cat_name(static_cast<StallCat>(c)), a.cycles[c]);
      totals.cycles[c] += a.cycles[c];
    }
    appendf(out, "stall.proc%u,total,%" PRIu64 "\n", p, a.total());
  }
  for (std::size_t c = 0; c < kNumStallCats; ++c) {
    appendf(out, "stall.total,%s,%" PRIu64 "\n",
            stall_cat_name(static_cast<StallCat>(c)), totals.cycles[c]);
  }
  appendf(out, "stall.total,total,%" PRIu64 "\n", totals.total());

  for (const auto& [line, lm] : m.locks()) {
    char record[32];
    std::snprintf(record, sizeof record, "lock.0x%08x", line);
    appendf(out, "%s,acquisitions,%" PRIu64 "\n", record, lm.acquisitions);
    appendf(out, "%s,transfers,%" PRIu64 "\n", record, lm.transfers);
    append_histogram_csv(out, record, "waiters_at_acquire",
                         lm.waiters_at_acquire);
    append_histogram_csv(out, record, "hold_cycles", lm.hold_cycles);
    append_histogram_csv(out, record, "handoff_cycles", lm.handoff_cycles);
  }

  const BusWindowGauge& bus = m.bus();
  appendf(out, "bus,window_cycles,%u\n", bus.window_cycles());
  appendf(out, "bus,total_busy,%" PRIu64 "\n", bus.total_busy());
  for (std::size_t i = 0; i < bus.windows().size(); ++i) {
    appendf(out, "bus,window%zu,%" PRIu64 "\n", i, bus.windows()[i]);
  }
  for (const auto& [name, value] : m.counters()) {
    appendf(out, "counter,%s,%" PRIu64 "\n", csv_escape(name).c_str(), value);
  }
  return out;
}

std::string render_metrics(const MetricsRegistry& m, const MetricsMeta& meta,
                           MetricsFormat format) {
  return format == MetricsFormat::kJson ? metrics_to_json(m, meta)
                                        : metrics_to_csv(m, meta);
}

bool metrics_enabled_from_env(bool fallback) {
  const char* env = std::getenv("SYNCPAT_METRICS");
  if (env == nullptr) return fallback;
  return util::parse_bool01(env, "SYNCPAT_METRICS");
}

}  // namespace syncpat::obs

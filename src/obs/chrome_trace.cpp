#include "obs/chrome_trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "bus/transaction.hpp"
#include "cache/cache.hpp"
#include "trace/address_map.hpp"

namespace syncpat::obs {

namespace {

// Track (pid) layout: one process per hardware layer so the viewer groups
// them; sort indices keep the order stable.
constexpr int kPidProcs = 1;
constexpr int kPidLocks = 2;
constexpr int kPidBus = 3;
constexpr int kPidMachine = 4;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
    out.push_back(c);
  }
  return out;
}

/// "lock N" for addresses in the lock region, hex otherwise.
std::string lock_label(std::uint32_t line) {
  char buf[32];
  if (trace::AddressMap::classify(line) == trace::Region::kLock &&
      line < trace::AddressMap::lock_addr(1u << 20)) {
    std::snprintf(buf, sizeof buf, "lock %u", trace::AddressMap::lock_id(line));
  } else {
    std::snprintf(buf, sizeof buf, "0x%08x", line);
  }
  return buf;
}

std::string complete_span(const char* name, const char* cat, int pid,
                          std::uint64_t tid, std::uint64_t ts,
                          std::uint64_t dur, const std::string& args) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%" PRIu64
                ",\"dur\":%" PRIu64 ",\"pid\":%d,\"tid\":%" PRIu64
                ",\"args\":{%s}}",
                name, cat, ts, dur, pid, tid, args.c_str());
  return buf;
}

std::string instant(const char* name, const char* cat, int pid,
                    std::uint64_t tid, std::uint64_t ts,
                    const std::string& args) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                "\"ts\":%" PRIu64 ",\"pid\":%d,\"tid\":%" PRIu64
                ",\"args\":{%s}}",
                name, cat, ts, pid, tid, args.c_str());
  return buf;
}

std::string counter_sample(const char* name, const char* cat, int pid,
                           std::uint64_t ts, const char* key,
                           std::uint64_t value) {
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"ts\":%" PRIu64
                ",\"pid\":%d,\"args\":{\"%s\":%" PRIu64 "}}",
                name, cat, ts, pid, key, value);
  return buf;
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::string process_label,
                                 std::uint32_t num_procs)
    : process_label_(std::move(process_label)),
      num_procs_(num_procs),
      bus_gauge_(MetricsConfig{}.bus_window_cycles) {}

void ChromeTraceSink::append_event(const std::string& json_object) {
  if (!body_.empty()) body_ += ",\n";
  body_ += json_object;
}

void ChromeTraceSink::close_hold(std::uint32_t line, std::uint64_t now) {
  const auto it = hold_open_.find(line);
  if (it == hold_open_.end()) return;
  char name[48];
  std::snprintf(name, sizeof name, "held by p%d", it->second.proc);
  char args[48];
  std::snprintf(args, sizeof args, "\"proc\":%d", it->second.proc);
  append_event(complete_span(name, "locks", kPidLocks, line, it->second.since,
                             now - it->second.since, args));
  hold_open_.erase(it);
}

void ChromeTraceSink::on_event(const TraceEvent& ev) {
  char name[64];
  char args[96];
  if (ev.cycle > last_cycle_) last_cycle_ = ev.cycle;
  switch (ev.kind) {
    case EventKind::kAcquireBegin:
      wait_open_[ev.proc] = ev.cycle;
      locks_seen_.insert(ev.line);
      std::snprintf(name, sizeof name, "waiters %s", lock_label(ev.line).c_str());
      append_event(counter_sample(name, "locks", kPidLocks, ev.cycle, "waiters",
                                  ++waiters_live_[ev.line]));
      break;
    case EventKind::kAcquired: {
      locks_seen_.insert(ev.line);
      if (const auto it = wait_open_.find(ev.proc); it != wait_open_.end()) {
        std::snprintf(name, sizeof name, "wait %s",
                      lock_label(ev.line).c_str());
        std::snprintf(args, sizeof args, "\"line\":\"0x%08x\"", ev.line);
        append_event(complete_span(name, "locks", kPidProcs,
                                   static_cast<std::uint64_t>(ev.proc),
                                   it->second, ev.cycle - it->second, args));
        wait_open_.erase(it);
      }
      hold_open_[ev.line] = OpenHold{ev.cycle, ev.proc};
      if (std::uint64_t& w = waiters_live_[ev.line]; w > 0) {
        std::snprintf(name, sizeof name, "waiters %s",
                      lock_label(ev.line).c_str());
        append_event(
            counter_sample(name, "locks", kPidLocks, ev.cycle, "waiters", --w));
      }
      break;
    }
    case EventKind::kReleaseBegin:
    case EventKind::kReleased:
      locks_seen_.insert(ev.line);
      close_hold(ev.line, ev.cycle);
      break;
    case EventKind::kHandoff:
      locks_seen_.insert(ev.line);
      close_hold(ev.line, ev.cycle);
      std::snprintf(args, sizeof args, "\"waiters_left\":%llu",
                    static_cast<unsigned long long>(ev.a));
      append_event(
          instant("handoff", "locks", kPidLocks, ev.line, ev.cycle, args));
      break;
    case EventKind::kTransferDone:
      locks_seen_.insert(ev.line);
      append_event(complete_span("transfer", "locks", kPidLocks, ev.line,
                                 ev.cycle - ev.b, ev.b, ""));
      break;
    case EventKind::kSpinInvalidated:
      std::snprintf(args, sizeof args, "\"line\":\"0x%08x\"", ev.line);
      append_event(instant("spin invalidated", "locks", kPidProcs,
                           static_cast<std::uint64_t>(ev.proc), ev.cycle,
                           args));
      break;
    case EventKind::kBusGrant: {
      bus_gauge_.add(ev.cycle, ev.b);
      if (ev.cycle + ev.b > last_cycle_) last_cycle_ = ev.cycle + ev.b;
      const auto kind = static_cast<bus::TxnKind>(ev.a & 0xff);
      std::snprintf(name, sizeof name, "%s%s", bus::txn_kind_name(kind),
                    (ev.a & 0x100) != 0 ? " resp" : "");
      std::snprintf(args, sizeof args, "\"proc\":%d,\"line\":\"0x%08x\"",
                    ev.proc, ev.line);
      append_event(
          complete_span(name, "bus", kPidBus, 0, ev.cycle, ev.b, args));
      break;
    }
    case EventKind::kBusComplete:
      std::snprintf(name, sizeof name, "%s 0x%08x",
                    bus::txn_kind_name(static_cast<bus::TxnKind>(ev.b)),
                    ev.line);
      std::snprintf(args, sizeof args, "\"line\":\"0x%08x\"", ev.line);
      append_event(complete_span(name, "bus", kPidProcs,
                                 static_cast<std::uint64_t>(ev.proc),
                                 ev.cycle - ev.a, ev.a, args));
      break;
    case EventKind::kMesiTransition:
      std::snprintf(
          name, sizeof name, "%s->%s",
          cache::state_name(static_cast<cache::LineState>(ev.a)),
          cache::state_name(static_cast<cache::LineState>(ev.b)));
      std::snprintf(args, sizeof args, "\"line\":\"0x%08x\"", ev.line);
      append_event(instant(name, "coherence", kPidProcs,
                           static_cast<std::uint64_t>(ev.proc), ev.cycle,
                           args));
      break;
    case EventKind::kBarrierArrive:
      std::snprintf(name, sizeof name, "barrier arrive p%d", ev.proc);
      std::snprintf(args, sizeof args,
                    "\"line\":\"0x%08x\",\"already_waiting\":%llu", ev.line,
                    static_cast<unsigned long long>(ev.a));
      append_event(
          instant(name, "barriers", kPidMachine, 0, ev.cycle, args));
      break;
    case EventKind::kBarrierRelease:
      std::snprintf(args, sizeof args,
                    "\"line\":\"0x%08x\",\"released\":%llu", ev.line,
                    static_cast<unsigned long long>(ev.a));
      append_event(instant("barrier release", "barriers", kPidMachine, 0,
                           ev.cycle, args));
      break;
    case EventKind::kIdleSpan:
      std::snprintf(args, sizeof args, "\"executed_ticks\":%llu",
                    static_cast<unsigned long long>(ev.b));
      append_event(complete_span("quiescent", "idle", kPidMachine, 0, ev.cycle,
                                 ev.a, args));
      break;
  }
}

std::string ChromeTraceSink::finish() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  const std::string label = json_escape(process_label_);
  char buf[256];
  const struct {
    int pid;
    const char* suffix;
  } kProcesses[] = {{kPidProcs, "processors"},
                    {kPidLocks, "locks"},
                    {kPidBus, "bus"},
                    {kPidMachine, "machine"}};
  for (const auto& p : kProcesses) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"%s %s\"}},\n",
                  p.pid, label.c_str(), p.suffix);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"sort_index\":%d}},\n",
                  p.pid, p.pid);
    out += buf;
  }
  for (std::uint32_t p = 0; p < num_procs_; ++p) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%u,\"args\":{\"name\":\"proc %u\"}},\n",
                  kPidProcs, p, p);
    out += buf;
  }
  for (const std::uint32_t line : locks_seen_) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}},\n",
                  kPidLocks, line, lock_label(line).c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                "\"args\":{\"name\":\"bus\"}},\n",
                kPidBus);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                "\"args\":{\"name\":\"machine\"}}",
                kPidMachine);
  out += buf;
  if (!body_.empty()) {
    out += ",\n";
    out += body_;
  }
  // Bus-busy counter series: one sample per gauge window, stamped at the
  // window's start cycle.  The gauge is copied so finish() stays const and
  // repeatable; finalize() clips the final tenure at the last event cycle.
  BusWindowGauge gauge = bus_gauge_;
  gauge.finalize(last_cycle_);
  for (std::size_t i = 0; i < gauge.windows().size(); ++i) {
    out += ",\n";
    out += counter_sample("bus busy cycles", "bus", kPidBus,
                          static_cast<std::uint64_t>(i) * gauge.window_cycles(),
                          "busy", gauge.windows()[i]);
  }
  out += "\n]}\n";
  return out;
}

std::string trace_out_path(const std::string& base, const std::string& label) {
  std::string clean;
  clean.reserve(label.size());
  for (const char c : label) {
    clean.push_back(c == '/' || c == ' ' ? '-' : c);
  }
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return base + "." + clean;
  }
  return base.substr(0, dot) + "." + clean + base.substr(dot);
}

}  // namespace syncpat::obs

// Exact stall-cause attribution: every simulated processor cycle is charged
// to exactly one category, refining the paper's three-way work/cache/lock
// split (Tables 3/5) into the machine-level causes behind it.
//
// The conservation identity — enforced per processor by fuzz oracle #6 and
// the metrics tests — is
//
//   sum over categories == completion_cycle
//
// i.e. the attribution mirrors every ProcStats increment one-for-one; it
// never invents or drops a cycle.  The categories intentionally re-attribute
// some cycles the legacy counters lump together: a resume/retry cycle
// (counted as stall_cache by ProcStats) is charged to the wait that caused
// it, and a lock operation's own memory access is split into its
// arbitration / transfer / memory phases instead of one "cache" bucket.
//
// Charging is null-unless-enabled: Processor holds a ProcMetrics pointer that
// is null when metrics are off, so the disabled path costs one branch per
// accounting site and can never perturb simulation behavior.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace syncpat::obs {

enum class StallCat : std::uint8_t {
  kCompute = 0,          // executing trace work cycles
  kLockSpin,             // spinning on a cached lock line (T&T&S, ticket)
  kLockQueuedWait,       // passively waiting for a lock (queuing, Anderson)
  kBarrierWait,          // waiting at a barrier (arrival access included)
  kBusArbitration,       // transaction queued, waiting for a bus grant
  kBusTransfer,          // request or response data on the bus
  kMemoryLatency,        // transaction inside the memory module
  kWriteBufferFull,      // structural stall or weak-ordering fence drain
  kInvalidationRefill,   // re-fetch of a line invalidated by another processor
  kRemoteAccess,         // DSM model: memory wait of a remote-home access
};

inline constexpr std::size_t kNumStallCats = 10;

[[nodiscard]] const char* stall_cat_name(StallCat cat);

/// Per-processor cycle ledger: one counter per category.
struct ProcAttribution {
  std::array<std::uint64_t, kNumStallCats> cycles{};

  void charge(StallCat cat, std::uint64_t n = 1) {
    cycles[static_cast<std::size_t>(cat)] += n;
  }
  [[nodiscard]] std::uint64_t of(StallCat cat) const {
    return cycles[static_cast<std::size_t>(cat)];
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t c : cycles) sum += c;
    return sum;
  }
};

/// The per-processor metrics slot handed to Processor (null when disabled).
/// `invalidated_lines` remembers lines snooped away from this processor's
/// cache; the next miss on such a line is a coherence refill, consumed
/// (erased) when it marks the refetching transaction.  Metrics-only state:
/// it is read and written solely on the charging path and never branches
/// simulation behavior.
struct ProcMetrics {
  ProcAttribution attr;
  std::unordered_set<std::uint32_t> invalidated_lines;
};

}  // namespace syncpat::obs

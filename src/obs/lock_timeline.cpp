#include "obs/lock_timeline.hpp"

#include <utility>

namespace syncpat::obs {

void LockTimelineSink::on_event(const TraceEvent& ev) {
  switch (ev.kind) {
    case EventKind::kAcquired:
      ++timeline_.locks[ev.line].acquisitions;
      break;
    case EventKind::kHandoff: {
      LockTimeline::PerLock& lock = timeline_.locks[ev.line];
      ++lock.handoffs;
      lock.transfers.push_back(
          LockTimeline::Transfer{ev.cycle, 0, ev.a, false});
      break;
    }
    case EventKind::kTransferDone: {
      // At most one hand-off per lock is in flight (the stats layer's
      // transfer_pending flag), so the open transfer is always the last one.
      LockTimeline::PerLock& lock = timeline_.locks[ev.line];
      if (!lock.transfers.empty() && !lock.transfers.back().latency_known) {
        lock.transfers.back().latency = ev.b;
        lock.transfers.back().latency_known = true;
      }
      break;
    }
    default:
      break;
  }
}

LockTimeline LockTimelineSink::take(std::uint64_t run_cycles) {
  timeline_.run_cycles = run_cycles;
  return std::exchange(timeline_, LockTimeline{});
}

}  // namespace syncpat::obs

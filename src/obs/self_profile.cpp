#include "obs/self_profile.hpp"

#include <algorithm>

#include "util/format.hpp"

namespace syncpat::obs {

const char* SelfProfiler::phase_name(Phase p) {
  switch (p) {
    case Phase::kDenseTick: return "dense_tick";
    case Phase::kQuiescenceProbe: return "quiescence_probe";
    case Phase::kFastForward: return "fast_forward";
    case Phase::kInvariantCheck: return "invariant_check";
    case Phase::kTraceEmit: return "trace_emit";
    case Phase::kEventLoop: return "event_loop";
  }
  return "?";
}

SelfProfiler::SelfProfiler() {
  // Median of a burst of back-to-back clock reads: each iteration's delta is
  // one clock-read cost (plus loop noise the median discards).
  constexpr int kSamples = 101;
  std::array<std::int64_t, kSamples> deltas{};
  std::int64_t prev = now_ns();
  for (int i = 0; i < kSamples; ++i) {
    const std::int64_t t = now_ns();
    deltas[i] = t - prev;
    prev = t;
  }
  std::sort(deltas.begin(), deltas.end());
  timer_overhead_ns_ = deltas[kSamples / 2];
}

SelfProfiler::Snapshot SelfProfiler::snapshot() const {
  Snapshot s;
  s.ns = ns_;
  s.calls = calls_;
  s.timer_overhead_ns_per_sample = timer_overhead_ns_;
  return s;
}

std::string SelfProfiler::to_string() const {
  const Snapshot s = snapshot();
  const std::int64_t total = s.total_ns();
  std::string out = "engine self-profile (wall-clock):\n";
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const double frac =
        total > 0 ? static_cast<double>(s.ns[i]) / static_cast<double>(total)
                  : 0.0;
    std::string line = "  ";
    line += phase_name(static_cast<Phase>(i));
    line.resize(std::max<std::size_t>(line.size() + 2, 20), ' ');
    out += line;
    out += util::with_commas(s.ns[i] / 1000) + " us  (" +
           util::percent(frac, 1) + ", " + util::with_commas(s.calls[i]) +
           " calls)\n";
  }
  out += "  timer overhead ~" + util::with_commas(timer_overhead_ns_) +
         " ns/sample\n";
  return out;
}

}  // namespace syncpat::obs

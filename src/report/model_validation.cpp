#include "report/model_validation.hpp"

#include <algorithm>
#include <cmath>

#include "core/simulator.hpp"
#include "fuzz/fuzz_case.hpp"
#include "model/predictor.hpp"
#include "sync/scheme_factory.hpp"
#include "util/format.hpp"
#include "workload/generator.hpp"

namespace syncpat::report {
namespace {

double median(std::vector<double> v) {
  if (v.empty()) return -1.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

double quantile_sorted(std::vector<double> v, double p) {
  if (v.empty()) return -1.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::string pct_or_dash(double v) {
  return v < 0.0 ? "-" : util::percent(v, 1);
}

}  // namespace

std::vector<SchemeErrorSummary> ModelValidation::per_scheme() const {
  std::vector<SchemeErrorSummary> out;
  for (const sync::SchemeKind kind : sync::all_scheme_kinds()) {
    const std::string name = sync::scheme_kind_name(kind);
    std::vector<double> all, small_p, medium_p, large_p;
    for (const ModelCaseResult& c : cases) {
      if (c.scheme != name) continue;
      all.push_back(c.rel_error);
      if (c.procs <= 4) small_p.push_back(c.rel_error);
      else if (c.procs <= 12) medium_p.push_back(c.rel_error);
      else large_p.push_back(c.rel_error);
    }
    if (all.empty()) continue;
    SchemeErrorSummary s;
    s.scheme = name;
    s.cases = all.size();
    s.median_error = median(all);
    s.p90_error = quantile_sorted(all, 0.9);
    s.median_small_p = median(small_p);
    s.median_medium_p = median(medium_p);
    s.median_large_p = median(large_p);
    out.push_back(std::move(s));
  }
  return out;
}

double ModelValidation::worst_median_error(std::uint64_t min_cases) const {
  double worst = 0.0;
  for (const SchemeErrorSummary& s : per_scheme()) {
    if (s.cases >= min_cases) worst = std::max(worst, s.median_error);
  }
  return worst;
}

Table ModelValidation::table() const {
  Table t("Model validation: predicted vs simulated run time (seed " +
          std::to_string(master_seed) + ", " + std::to_string(requested) +
          " cases)");
  t.columns({"Scheme", "Cases", "Median err", "P90 err", "P2-4", "P5-12",
             "P16+"});
  for (const SchemeErrorSummary& s : per_scheme()) {
    t.add_row({s.scheme, std::to_string(s.cases),
               util::percent(s.median_error, 1), util::percent(s.p90_error, 1),
               pct_or_dash(s.median_small_p), pct_or_dash(s.median_medium_p),
               pct_or_dash(s.median_large_p)});
  }
  t.note(std::to_string(cases.size()) + " cases scored, " +
             std::to_string(skipped) +
             " skipped (no lock pairs or single processor)");
  return t;
}

ModelValidation validate_model(std::uint64_t master_seed,
                               std::uint64_t num_cases) {
  ModelValidation v;
  v.master_seed = master_seed;
  v.requested = num_cases;
  for (std::uint64_t i = 0; i < num_cases; ++i) {
    const fuzz::FuzzCase c = fuzz::FuzzCase::generate(master_seed, i);
    if (c.lock_pairs == 0 || c.num_procs < 2) {
      ++v.skipped;
      continue;
    }

    // The case itself, simulated (DES, no instrumentation).
    trace::ProgramTrace program = workload::make_program_trace(c.profile());
    core::Simulator sim(c.machine_config(), program);
    const core::SimulationResult r = sim.run();

    // P = 1 calibration: the same per-processor load, alone on the machine.
    workload::BenchmarkProfile solo = c.profile();
    solo.num_procs = 1;
    core::MachineConfig solo_cfg = c.machine_config();
    solo_cfg.num_procs = 1;
    trace::ProgramTrace solo_program = workload::make_program_trace(solo);
    core::Simulator solo_sim(solo_cfg, solo_program);
    const core::SimulationResult r1 = solo_sim.run();

    model::Calibration calib;
    calib.run_cycles = r1.run_time;
    calib.acquisitions = r1.locks.acquisitions;
    calib.hold_mean = r1.locks.hold_cycles.mean();
    calib.bus_busy_cycles =
        r1.bus_utilization * static_cast<double>(r1.run_time);
    if (r1.locks.acquisitions > 0) {
      std::uint64_t hottest = 0;
      for (const auto& [line, agg] : solo_sim.lock_stats().per_lock()) {
        hottest = std::max(hottest, agg.acquisitions);
      }
      calib.dominant_fraction = static_cast<double>(hottest) /
                                static_cast<double>(r1.locks.acquisitions);
    }
    calib.shared_writes_per_proc = static_cast<double>(c.refs_per_proc) *
                                   c.data_ref_fraction *
                                   (1.0 - c.private_fraction) *
                                   c.write_fraction;
    const model::Prediction p = model::predict(c.machine_config(), calib);

    ModelCaseResult res;
    res.index = i;
    res.scheme = sync::scheme_kind_name(c.scheme);
    res.procs = c.num_procs;
    res.sim_run_time = r.run_time;
    res.predicted_run_time = p.run_time;
    res.rel_error =
        r.run_time > 0
            ? std::abs(p.run_time - static_cast<double>(r.run_time)) /
                  static_cast<double>(r.run_time)
            : 0.0;
    res.saturated = p.saturated;
    res.sim_waiters = r.locks.waiters_at_transfer.mean();
    res.pred_waiters = p.expected_waiters;
    v.cases.push_back(std::move(res));
  }
  return v;
}

}  // namespace syncpat::report

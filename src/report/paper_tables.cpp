#include "report/paper_tables.hpp"

#include "util/assert.hpp"
#include "util/format.hpp"

namespace syncpat::report {

using util::fixed;
using util::with_commas;

const std::vector<PaperReference>& paper_reference() {
  // Values transcribed from Tables 1-8 of the paper.
  static const std::vector<PaperReference> kRefs = {
      {"Grav", 10, 2841, 1185, 423, 377,
       6389, 2579, 200, 1131, 39.8,
       9228727, 32.6, 3.2, 96.5, 9970129, 30.7, 3.6, 96.4,
       211, 28725, 5.19, 336, 217, 28742, 5.16, 343,
       9221719, 32.6, 0.08, 90.9, 211, 28468, 5.25, 338, true},
      {"Pdsa", 12, 2458, 1206, 431, 410,
       3110, 1467, 190, 510, 20.7,
       7105257, 40.3, 10.2, 89.5, 7680362, 37.9, 9.8, 90.2,
       203, 16977, 6.18, 356, 208, 16882, 6.21, 363,
       7084835, 40.5, 0.29, 90.5, 203, 16919, 6.26, 357, true},
      {"FullConn", 12, 3848, 967, 346, 332,
       652, 134, 334, 210, 5.5,
       4407243, 95.5, 86.9, 10.2, 4416720, 94.6, 88.0, 12.0,
       389, 344, 0.40, 844, 409, 338, 0.30, 978,
       4381518, 95.5, 0.31, 91.6, 390, 373, 0.34, 857, true},
      {"Pverify", 12, 5544, 2431, 682, 254,
       555, 0, 3642, 2021, 36.5,
       5997346, 96.1, 100.0, 0.0, 5996557, 96.1, 99.1, 0.9,
       3766, 28, 0.00, 41, 3767, 36, 0.03, 48,
       5987383, 96.3, 0.17, 98.4, 3758, 21, 0.00, 40, true},
      {"Qsort", 12, 2825, 1177, 252, 142,
       212, 0, 52, 11, 0.3,
       4307966, 67.8, 99.7, 0.3, 4310056, 67.6, 99.4, 0.6,
       120, 180, 0.89, 174, 130, 166, 0.61, 181,
       4306958, 67.9, 0.02, 99.0, 100, 151, 1.05, 155, true},
      {"Topopt", 9, 10182, 4135, 1113, 413,
       0, 0, 0, 0, 0.0,
       13818998, 99.3, 100.0, 0.0, 0, 0, 0, 0,
       0, 0, 0, 0, 0, 0, 0, 0,
       13796023, 99.4, 0.17, 97.4, 0, 0, 0, 0, false},
  };
  return kRefs;
}

namespace {

const PaperReference* find_ref(const std::string& name) {
  for (const PaperReference& r : paper_reference()) {
    if (name == r.name) return &r;
  }
  return nullptr;
}

std::string scaled_k(double value, std::uint64_t scale) {
  return with_commas(static_cast<std::uint64_t>(value * static_cast<double>(scale) /
                                                1000.0));
}

}  // namespace

Table table1_ideal(const std::vector<trace::IdealProgramStats>& stats,
                   std::uint64_t scale) {
  Table t("Table 1: Benchmark Ideal Statistics (per-processor averages, 1000s)");
  t.columns({"Program", "Proc", "Work", "(paper)", "Refs", "(paper)", "Data",
             "(paper)", "Shared", "(paper)"});
  for (const auto& s : stats) {
    const PaperReference* ref = find_ref(s.name);
    SYNCPAT_ASSERT(ref != nullptr);
    t.add_row({s.name, std::to_string(s.num_procs),
               scaled_k(s.avg_work_cycles(), scale), with_commas(static_cast<std::uint64_t>(ref->work_k)),
               scaled_k(s.avg_refs_all(), scale), with_commas(static_cast<std::uint64_t>(ref->refs_k)),
               scaled_k(s.avg_refs_data(), scale), with_commas(static_cast<std::uint64_t>(ref->data_k)),
               scaled_k(s.avg_refs_shared(), scale), with_commas(static_cast<std::uint64_t>(ref->shared_k))});
  }
  if (scale > 1) {
    t.note("measured counts multiplied by trace scale " + std::to_string(scale));
  }
  return t;
}

Table table2_ideal_locks(const std::vector<trace::IdealProgramStats>& stats,
                         std::uint64_t scale) {
  Table t("Table 2: Benchmark Ideal Lock Statistics (per-processor averages)");
  t.columns({"Program", "Pairs", "(paper)", "Nested", "(paper)", "AvgHeld",
             "(paper)", "TotHeld(k)", "(paper)", "%Time", "(paper)"});
  for (const auto& s : stats) {
    const PaperReference* ref = find_ref(s.name);
    SYNCPAT_ASSERT(ref != nullptr);
    t.add_row(
        {s.name,
         with_commas(static_cast<std::uint64_t>(s.avg_lock_pairs() *
                                                static_cast<double>(scale))),
         with_commas(static_cast<std::uint64_t>(ref->lock_pairs)),
         with_commas(static_cast<std::uint64_t>(s.avg_nested_pairs() *
                                                static_cast<double>(scale))),
         with_commas(static_cast<std::uint64_t>(ref->nested)),
         fixed(s.avg_hold_per_pair(), 0), fixed(ref->avg_held, 0),
         scaled_k(s.avg_held_cycles(), scale),
         with_commas(static_cast<std::uint64_t>(ref->total_held_k)),
         fixed(100.0 * s.held_time_fraction(), 1), fixed(ref->pct_time, 1)});
  }
  return t;
}

Table table_runtime(int which, const std::vector<core::SimulationResult>& results,
                    std::uint64_t scale) {
  SYNCPAT_ASSERT(which == 3 || which == 5);
  const char* title =
      which == 3
          ? "Table 3: Benchmark Runtime Statistics, Queuing Lock Implementation"
          : "Table 5: Benchmark Runtime Statistics, Test&Test&Set";
  Table t(title);
  t.columns({"Program", "run-time", "(paper)", "Util%", "(paper)", "cache%",
             "(paper)", "lock%", "(paper)"});
  for (const auto& r : results) {
    const PaperReference* ref = find_ref(r.program);
    SYNCPAT_ASSERT(ref != nullptr);
    const double p_rt = which == 3 ? ref->q_runtime : ref->t_runtime;
    const double p_ut = which == 3 ? ref->q_util : ref->t_util;
    const double p_ca = which == 3 ? ref->q_stall_cache : ref->t_stall_cache;
    const double p_lo = which == 3 ? ref->q_stall_lock : ref->t_stall_lock;
    t.add_row({r.program, with_commas(r.run_time * scale),
               with_commas(static_cast<std::uint64_t>(p_rt)),
               fixed(100.0 * r.avg_utilization, 1), fixed(p_ut, 1),
               fixed(r.stall_cache_pct, 1), fixed(p_ca, 1),
               fixed(r.stall_lock_pct, 1), fixed(p_lo, 1)});
  }
  if (scale > 1) {
    t.note("measured run-times multiplied by trace scale " +
           std::to_string(scale));
  }
  return t;
}

Table table_contention(int which,
                       const std::vector<core::SimulationResult>& results,
                       std::uint64_t scale) {
  SYNCPAT_ASSERT(which == 4 || which == 6 || which == 8);
  const char* title =
      which == 4 ? "Table 4: Lock Contention Statistics, Queuing Lock Implementation"
      : which == 6 ? "Table 6: Lock Contention Statistics, Test&Test&Set"
                   : "Table 8: Weak Ordering Lock Contention Statistics";
  Table t(title);
  t.columns({"Program", "Held", "(paper)", "Transfers", "(paper)", "Waiters",
             "(paper)", "Held@Tr", "(paper)"});
  for (const auto& r : results) {
    const PaperReference* ref = find_ref(r.program);
    SYNCPAT_ASSERT(ref != nullptr);
    if (!ref->has_locks) continue;  // Topopt has no lock rows in 4/6/8
    const double p_h = which == 4 ? ref->q_held : which == 6 ? ref->t_held : ref->w_held;
    const double p_n = which == 4   ? ref->q_transfers
                       : which == 6 ? ref->t_transfers
                                    : ref->w_transfers;
    const double p_w = which == 4   ? ref->q_waiters
                       : which == 6 ? ref->t_waiters
                                    : ref->w_waiters;
    const double p_ht = which == 4   ? ref->q_held_tr
                        : which == 6 ? ref->t_held_tr
                                     : ref->w_held_tr;
    t.add_row({r.program, fixed(r.locks.hold_cycles.mean(), 0), fixed(p_h, 0),
               with_commas(r.locks.transfers * scale),
               with_commas(static_cast<std::uint64_t>(p_n)),
               fixed(r.locks.waiters_at_transfer.mean(), 2), fixed(p_w, 2),
               fixed(r.locks.hold_cycles_transfer.mean(), 0), fixed(p_ht, 0)});
  }
  if (scale > 1) {
    t.note("measured transfer counts multiplied by trace scale " +
           std::to_string(scale));
  }
  t.note("avg lock transfer time (cycles): see bench output lines below");
  return t;
}

Table table7_weak(const std::vector<core::SimulationResult>& weak,
                  const std::vector<core::SimulationResult>& sequential,
                  std::uint64_t scale) {
  SYNCPAT_ASSERT(weak.size() == sequential.size());
  Table t("Table 7: Weak Ordering Runtime Statistics");
  t.columns({"Program", "run-time", "(paper)", "Util%", "(paper)", "Diff%",
             "(paper)", "WriteHit%", "(paper)"});
  for (std::size_t i = 0; i < weak.size(); ++i) {
    const auto& w = weak[i];
    const auto& sc = sequential[i];
    SYNCPAT_ASSERT(w.program == sc.program);
    const PaperReference* ref = find_ref(w.program);
    SYNCPAT_ASSERT(ref != nullptr);
    t.add_row({w.program, with_commas(w.run_time * scale),
               with_commas(static_cast<std::uint64_t>(ref->w_runtime)),
               fixed(100.0 * w.avg_utilization, 1), fixed(ref->w_util, 1),
               fixed(w.runtime_change_pct(sc), 2), fixed(ref->w_diff, 2),
               fixed(100.0 * w.write_hit_ratio, 1), fixed(ref->w_whit, 1)});
  }
  t.note("Diff% is the decrease in execution time versus the sequentially "
         "consistent run");
  return t;
}

}  // namespace syncpat::report

// Renderers for each table of the paper, with the published values printed
// alongside the reproduced ones.
//
// Trace-length scaling: benches default to traces 1/N the paper's length
// (SYNCPAT_SCALE).  Quantities that grow linearly with trace length
// (run-time, reference counts, lock pairs, transfers) are multiplied by N
// for display so the columns are directly comparable; rate quantities
// (utilization, waiters at transfer, hold times, percentages) are
// scale-invariant and shown as measured.
#pragma once

#include <cstdint>
#include <vector>

#include "core/results.hpp"
#include "report/table.hpp"
#include "trace/analyzer.hpp"

namespace syncpat::report {

/// Published per-benchmark values used in the comparison columns.
struct PaperReference {
  const char* name;
  int procs;
  // Table 1 (thousands, per processor).
  double work_k, refs_k, data_k, shared_k;
  // Table 2.
  double lock_pairs, nested, avg_held, total_held_k, pct_time;
  // Table 3 (queuing) / 5 (T&T&S).
  double q_runtime, q_util, q_stall_cache, q_stall_lock;
  double t_runtime, t_util, t_stall_cache, t_stall_lock;
  // Table 4 (queuing) / 6 (T&T&S): held, transfers, waiters, held@transfer.
  double q_held, q_transfers, q_waiters, q_held_tr;
  double t_held, t_transfers, t_waiters, t_held_tr;
  // Table 7/8 (weak ordering).
  double w_runtime, w_util, w_diff, w_whit;
  double w_held, w_transfers, w_waiters, w_held_tr;
  bool has_locks;
};

[[nodiscard]] const std::vector<PaperReference>& paper_reference();

Table table1_ideal(const std::vector<trace::IdealProgramStats>& stats,
                   std::uint64_t scale);
Table table2_ideal_locks(const std::vector<trace::IdealProgramStats>& stats,
                         std::uint64_t scale);
/// Tables 3 and 5 share a layout; `which` is 3 (queuing) or 5 (T&T&S).
Table table_runtime(int which, const std::vector<core::SimulationResult>& results,
                    std::uint64_t scale);
/// Tables 4, 6 and 8 share a layout; `which` selects the paper column set.
Table table_contention(int which,
                       const std::vector<core::SimulationResult>& results,
                       std::uint64_t scale);
/// Table 7: weak-ordering run-times against the matching SC baselines.
Table table7_weak(const std::vector<core::SimulationResult>& weak,
                  const std::vector<core::SimulationResult>& sequential,
                  std::uint64_t scale);

}  // namespace syncpat::report

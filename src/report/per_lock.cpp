#include "report/per_lock.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "trace/address_map.hpp"
#include "util/format.hpp"

namespace syncpat::report {

Table per_lock_table(const sync::LockStatsCollector& stats,
                     std::size_t max_rows) {
  std::vector<std::pair<std::uint32_t, const sync::LockAggregate*>> locks;
  locks.reserve(stats.per_lock().size());
  for (const auto& [line, agg] : stats.per_lock()) {
    locks.emplace_back(line, &agg);
  }
  std::sort(locks.begin(), locks.end(), [](const auto& a, const auto& b) {
    if (a.second->acquisitions != b.second->acquisitions) {
      return a.second->acquisitions > b.second->acquisitions;
    }
    return a.first < b.first;
  });

  Table t("Per-lock contention (top " + std::to_string(max_rows) +
          " by acquisitions)");
  t.columns({"Lock", "Acqs", "Transfers", "Waiters", "Held", "Transfer(cy)"});
  for (std::size_t i = 0; i < locks.size() && i < max_rows; ++i) {
    const auto& [line, agg] = locks[i];
    char label[32];
    if (trace::AddressMap::classify(line) == trace::Region::kLock &&
        line < trace::AddressMap::lock_addr(1u << 20)) {
      std::snprintf(label, sizeof(label), "lock %u",
                    trace::AddressMap::lock_id(line));
    } else {
      std::snprintf(label, sizeof(label), "0x%08x", line);
    }
    t.add_row({label, util::with_commas(agg->acquisitions),
               util::with_commas(agg->transfers),
               util::fixed(agg->waiters_at_transfer.mean(), 2),
               util::fixed(agg->hold_cycles.mean(), 0),
               util::fixed(agg->transfer_cycles.mean(), 1)});
  }
  if (locks.size() > max_rows) {
    t.note(std::to_string(locks.size() - max_rows) + " more locks omitted");
  }
  return t;
}

}  // namespace syncpat::report

// §2.3-style attribution table over a traced run: per lock, hand-off counts,
// transfer-latency distribution and waiters-at-transfer, split into equal
// phase windows of the run so drift over time is visible (the question the
// end-of-run averages in Tables 4/6 cannot answer).
#pragma once

#include <cstddef>

#include "obs/lock_timeline.hpp"
#include "report/table.hpp"

namespace syncpat::report {

/// One "all" row plus `phases` window rows per lock, for the `max_locks`
/// locks with the most hand-offs.
[[nodiscard]] Table lock_timeline_table(const obs::LockTimeline& timeline,
                                        std::size_t max_locks = 6,
                                        std::size_t phases = 4);

}  // namespace syncpat::report

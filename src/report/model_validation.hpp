// Model-vs-simulator validation over the fuzz corpus.
//
// Replays deterministically generated fuzz configurations through both the
// analytic predictor (src/model/) and the simulator, and reports the
// relative run-time error per scheme and processor-count band.  This is the
// predictor's ground truth: the `model-smoke` tier-1 test pins the median
// error per scheme against a bound, and `make bench-model` regenerates the
// tracked BENCH_model.json from the same replay.
//
// Each scored case costs two simulations: the case itself (DES engine) and
// a P = 1 calibration run of the same per-processor workload, from which
// the predictor reads C (critical-section cycles) and the serial run time
// (Aksenov et al.'s single-thread-measurement methodology).  Cases with no
// lock pairs or a single processor are skipped — there is nothing for a
// lock-throughput model to predict — and the skip count is reported so a
// corpus slice never silently shrinks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "report/table.hpp"

namespace syncpat::report {

struct ModelCaseResult {
  std::uint64_t index = 0;
  std::string scheme;
  std::uint32_t procs = 0;
  std::uint64_t sim_run_time = 0;
  double predicted_run_time = 0.0;
  double rel_error = 0.0;       // |predicted - sim| / sim
  bool saturated = false;       // the predictor's serial bound decided
  double sim_waiters = 0.0;     // mean waiters at transfer, simulated
  double pred_waiters = 0.0;    // predictor's expected waiters
};

struct SchemeErrorSummary {
  std::string scheme;
  std::uint64_t cases = 0;
  double median_error = 0.0;
  double p90_error = 0.0;
  double median_small_p = -1.0;   // P in [2, 4]; -1 when no such case
  double median_medium_p = -1.0;  // P in [5, 12]
  double median_large_p = -1.0;   // P >= 16
};

struct ModelValidation {
  std::vector<ModelCaseResult> cases;
  std::uint64_t skipped = 0;  // lock-free / single-processor cases
  std::uint64_t master_seed = 0;
  std::uint64_t requested = 0;

  /// Per-scheme error summaries, scheme name order, schemes with >= 1 case.
  [[nodiscard]] std::vector<SchemeErrorSummary> per_scheme() const;
  /// Worst per-scheme median error over schemes with >= `min_cases` cases.
  [[nodiscard]] double worst_median_error(std::uint64_t min_cases) const;
  /// The scheme x P-band error table rendered for humans.
  [[nodiscard]] Table table() const;
};

/// Replay `num_cases` corpus configs from `master_seed` (fuzz::FuzzCase
/// generation, indices 0..num_cases-1) through predictor and simulator.
[[nodiscard]] ModelValidation validate_model(std::uint64_t master_seed,
                                             std::uint64_t num_cases);

}  // namespace syncpat::report

// Machine-level cycle-breakdown report (Table 4/6-style layout) rendered
// from a MetricsRegistry: where every simulated cycle went per processor,
// per-lock contention, and windowed bus utilization.  This is the measured
// counterpart to the paper's attribution tables — same conservation property
// (rows sum to 100%), finer causes.
#pragma once

#include "obs/metrics.hpp"
#include "report/table.hpp"

namespace syncpat::report {

/// Per-processor stall-cause breakdown: one row per processor, one column
/// per category as a percentage of that processor's completion cycle, plus
/// an aggregate row.  Conservation makes each row sum to 100%.
[[nodiscard]] Table machine_profile_cycles(const obs::MetricsRegistry& m,
                                           const obs::MetricsMeta& meta);

/// Per-lock contention: acquisitions, transfers, mean waiters at acquire,
/// mean/p90 hold cycles, mean hand-off cycles.
[[nodiscard]] Table machine_profile_locks(const obs::MetricsRegistry& m);

/// Windowed bus utilization: overall fraction plus the busiest windows.
[[nodiscard]] Table machine_profile_bus(const obs::MetricsRegistry& m,
                                        const obs::MetricsMeta& meta);

}  // namespace syncpat::report

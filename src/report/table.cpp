#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/format.hpp"

namespace syncpat::report {

Table& Table::columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::note(std::string text) {
  notes_.push_back(std::move(text));
  return *this;
}

std::string Table::render() const {
  const std::size_t ncols =
      std::max(headers_.size(),
               rows_.empty() ? std::size_t{0} : rows_.front().size());
  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size() && c < ncols; ++c) {
      widths[c] = std::max(widths[c], cells[c].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << title_ << '\n';
  auto emit = [&](const std::vector<std::string>& cells, bool right) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      if (c > 0) out << "  ";
      // First column (program names) left-aligned, the rest right-aligned.
      out << ((c == 0 || !right) ? util::pad_right(cell, widths[c])
                                 : util::pad_left(cell, widths[c]));
    }
    out << '\n';
  };
  if (!headers_.empty()) {
    emit(headers_, false);
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += widths[c] + (c > 0 ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row, true);
  for (const auto& n : notes_) out << "  " << n << '\n';
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      const bool quote = cells[c].find(',') != std::string::npos;
      if (quote) out << '"';
      out << cells[c];
      if (quote) out << '"';
    }
    out << '\n';
  };
  if (!headers_.empty()) emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << render() << '\n'; }

}  // namespace syncpat::report

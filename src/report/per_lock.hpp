// Per-lock contention breakdown (paper §2.3/§3.1: the Presto scheduler lock
// dominates Grav/Pdsa while the thread-queue lock "is not usually a source
// of contention" — this table makes that visible).
#pragma once

#include <cstddef>

#include "report/table.hpp"
#include "sync/lock_stats.hpp"

namespace syncpat::report {

/// Top `max_rows` locks by acquisition count: address, acquisitions,
/// transfers, waiters at transfer, mean hold, mean transfer latency.
[[nodiscard]] Table per_lock_table(const sync::LockStatsCollector& stats,
                                   std::size_t max_rows = 8);

}  // namespace syncpat::report

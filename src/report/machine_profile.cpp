#include "report/machine_profile.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "util/format.hpp"

namespace syncpat::report {
namespace {

std::string pct_of(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return util::percent(static_cast<double>(part) / static_cast<double>(whole),
                       1);
}

std::string hex_line(std::uint32_t line) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", line);
  return buf;
}

}  // namespace

Table machine_profile_cycles(const obs::MetricsRegistry& m,
                             const obs::MetricsMeta& meta) {
  Table t("Machine profile: cycle attribution (" + meta.program + ", " +
          meta.scheme + ", " + meta.consistency + ")");
  std::vector<std::string> headers = {"Proc", "Cycles"};
  for (std::size_t c = 0; c < obs::kNumStallCats; ++c) {
    headers.push_back(obs::stall_cat_name(static_cast<obs::StallCat>(c)));
  }
  t.columns(std::move(headers));

  obs::ProcAttribution totals;
  for (std::uint32_t p = 0; p < m.num_procs(); ++p) {
    const obs::ProcAttribution& a = m.proc(p).attr;
    std::vector<std::string> row = {std::to_string(p),
                                    util::with_commas(a.total())};
    for (std::size_t c = 0; c < obs::kNumStallCats; ++c) {
      row.push_back(pct_of(a.cycles[c], a.total()));
      totals.cycles[c] += a.cycles[c];
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> row = {"all", util::with_commas(totals.total())};
  for (std::size_t c = 0; c < obs::kNumStallCats; ++c) {
    row.push_back(pct_of(totals.cycles[c], totals.total()));
  }
  t.add_row(std::move(row));
  t.note("percent of each processor's completion cycle; rows sum to 100%");
  return t;
}

Table machine_profile_locks(const obs::MetricsRegistry& m) {
  Table t("Machine profile: per-lock contention");
  t.columns({"Lock line", "Acqs", "Transfers", "Waiters mean", "Hold mean",
             "Hold p90", "Hand-off mean"});
  for (const auto& [line, lm] : m.locks()) {
    t.add_row({hex_line(line), util::with_commas(lm.acquisitions),
               util::with_commas(lm.transfers),
               util::fixed(lm.waiters_at_acquire.mean(), 2),
               util::fixed(lm.hold_cycles.mean(), 1),
               util::with_commas(lm.hold_cycles.quantile(0.9)),
               util::fixed(lm.handoff_cycles.mean(), 1)});
  }
  t.note("hold = acquire to release issue; hand-off = release to next owner");
  return t;
}

Table machine_profile_bus(const obs::MetricsRegistry& m,
                          const obs::MetricsMeta& meta) {
  const obs::BusWindowGauge& bus = m.bus();
  Table t("Machine profile: bus utilization (window = " +
          util::with_commas(std::uint64_t{bus.window_cycles()}) + " cycles)");
  t.columns({"Window", "Start cycle", "Busy", "Util %"});

  const std::vector<std::uint64_t>& w = bus.windows();
  // The busiest windows tell the contention story; cap the table at the top
  // eight so long runs stay readable (the full series is in --metrics-out).
  std::vector<std::size_t> order(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&w](std::size_t a, std::size_t b) { return w[a] > w[b]; });
  const std::size_t shown = std::min<std::size_t>(order.size(), 8);
  for (std::size_t k = 0; k < shown; ++k) {
    const std::size_t i = order[k];
    const std::uint64_t lo = i * std::uint64_t{bus.window_cycles()};
    t.add_row({std::to_string(i),
               util::with_commas(lo) + "..",
               util::with_commas(w[i]), util::percent(bus.utilization(i), 1)});
  }
  const double overall =
      meta.run_time > 0 ? static_cast<double>(bus.total_busy()) /
                              static_cast<double>(meta.run_time)
                        : 0.0;
  t.note("top " + std::to_string(shown) + " of " + std::to_string(w.size()) +
         " windows by busy cycles; overall utilization " +
         util::percent(overall, 1));
  return t;
}

}  // namespace syncpat::report

// Column-aligned ASCII table renderer for the paper-style outputs, plus CSV
// export for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace syncpat::report {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Column headers (one or two stacked lines split on '\n').
  Table& columns(std::vector<std::string> headers);
  Table& add_row(std::vector<std::string> cells);
  /// A footnote line printed under the table.
  Table& note(std::string text);

  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string to_csv() const;
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace syncpat::report

#include "report/lock_timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/address_map.hpp"
#include "util/format.hpp"
#include "util/histogram.hpp"
#include "util/running_stat.hpp"

namespace syncpat::report {

namespace {

std::string lock_cell(std::uint32_t line) {
  char label[32];
  if (trace::AddressMap::classify(line) == trace::Region::kLock &&
      line < trace::AddressMap::lock_addr(1u << 20)) {
    std::snprintf(label, sizeof(label), "lock %u",
                  trace::AddressMap::lock_id(line));
  } else {
    std::snprintf(label, sizeof(label), "0x%08x", line);
  }
  return label;
}

struct Window {
  std::uint64_t handoffs = 0;
  util::RunningStat waiters;
  util::Histogram latency;
};

void add_rows(Table& t, const std::string& label, const std::string& phase,
              const Window& w) {
  t.add_row({label, phase, util::with_commas(w.handoffs),
             w.latency.count() > 0 ? util::fixed(w.latency.mean(), 1) : "-",
             w.latency.count() > 0
                 ? util::with_commas(w.latency.quantile(0.5))
                 : "-",
             w.latency.count() > 0
                 ? util::with_commas(w.latency.quantile(0.95))
                 : "-",
             w.handoffs > 0 ? util::fixed(w.waiters.mean(), 2) : "-"});
}

}  // namespace

Table lock_timeline_table(const obs::LockTimeline& timeline,
                          std::size_t max_locks, std::size_t phases) {
  if (phases == 0) phases = 1;
  std::vector<std::pair<std::uint32_t, const obs::LockTimeline::PerLock*>>
      locks;
  locks.reserve(timeline.locks.size());
  for (const auto& [line, lock] : timeline.locks) {
    locks.emplace_back(line, &lock);
  }
  std::sort(locks.begin(), locks.end(), [](const auto& a, const auto& b) {
    if (a.second->handoffs != b.second->handoffs) {
      return a.second->handoffs > b.second->handoffs;
    }
    return a.first < b.first;
  });

  Table t("Lock hand-off timeline (" + std::to_string(phases) +
          " phase windows over " + util::with_commas(timeline.run_cycles) +
          " cycles)");
  t.columns({"Lock", "Phase", "Hand-offs", "Xfer mean", "Xfer p50", "Xfer p95",
             "Waiters"});
  const std::uint64_t window =
      std::max<std::uint64_t>(1, timeline.run_cycles / phases + 1);
  for (std::size_t i = 0; i < locks.size() && i < max_locks; ++i) {
    const auto& [line, lock] = locks[i];
    Window all;
    std::vector<Window> windows(phases);
    all.handoffs = lock->handoffs;
    for (const obs::LockTimeline::Transfer& xfer : lock->transfers) {
      const std::size_t w =
          std::min<std::size_t>(phases - 1, xfer.release_cycle / window);
      ++windows[w].handoffs;
      windows[w].waiters.add(static_cast<double>(xfer.waiters_left));
      all.waiters.add(static_cast<double>(xfer.waiters_left));
      if (xfer.latency_known) {
        windows[w].latency.add(xfer.latency);
        all.latency.add(xfer.latency);
      }
    }
    add_rows(t, lock_cell(line), "all", all);
    for (std::size_t w = 0; w < phases; ++w) {
      add_rows(t, "",
               std::to_string(w + 1) + "/" + std::to_string(phases),
               windows[w]);
    }
  }
  if (locks.size() > max_locks) {
    t.note(std::to_string(locks.size() - max_locks) + " more locks omitted");
  }
  t.note("transfer latency in cycles (release -> next acquire); phases are "
         "equal windows of the run");
  return t;
}

}  // namespace syncpat::report

// Main memory module (paper §2.2).
//
// Three-cycle access time, a two-element input buffer (a split-transaction
// request may arrive while a previous one is being processed) and a
// two-element output buffer (the bus may be busy when an access completes).
// Reads produce a response that re-arbitrates for the bus; writes
// (write-backs and dirty-supplier reflections) are absorbed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bus/transaction.hpp"
#include "util/ring_buffer.hpp"

namespace syncpat::mem {

struct MemoryConfig {
  std::uint32_t access_cycles = 3;
  std::uint32_t input_depth = 2;
  std::uint32_t output_depth = 2;
};

class Memory {
 public:
  explicit Memory(const MemoryConfig& config)
      : config_(config), input_(config.input_depth), output_(config.output_depth) {}

  [[nodiscard]] bool input_full() const { return input_.full(); }

  /// Delivers a request from the bus.  Precondition: !input_full().
  void push_request(bus::Transaction* txn) {
    input_.push_back(txn);
    ++requests_;
  }

  /// Response (if any) waiting for the bus.
  [[nodiscard]] bus::Transaction* pending_response() const {
    return output_.empty() ? nullptr : output_.front();
  }
  bus::Transaction* pop_response() { return output_.pop_front(); }

  /// Advances one cycle: starts a new access when idle, finishes the current
  /// one when its three cycles elapse.  A completed read moves to the output
  /// buffer; if the output buffer is full the module stalls (head-of-line
  /// blocking), matching a memory controller that cannot retire.
  void tick();

  /// Write transactions the module absorbed since the last drain (the
  /// simulator retires them; memory produces no response for writes).
  [[nodiscard]] std::vector<bus::Transaction*> drain_absorbed() {
    return std::exchange(absorbed_, {});
  }

  /// Allocation-free drain for the simulator's hot path: moves the absorbed
  /// transactions into `out` (cleared first), keeping both vectors' capacity
  /// across cycles.
  void drain_absorbed_into(std::vector<bus::Transaction*>& out) {
    out.clear();
    out.swap(absorbed_);
  }

  /// Cycles until this module next changes externally-visible state, or 0
  /// when it never will on its own (no access in service, nothing queued):
  /// an active access completes (or retries a full output buffer) in
  /// `remaining_` cycles; a queued request starts service on the next tick.
  [[nodiscard]] std::uint32_t next_event_delta() const {
    if (active_ != nullptr) return remaining_;
    return input_.empty() ? 0 : 1;
  }

  /// Bulk-advances `cycles` ticks of an active access in one step (DES span).
  /// Equivalent to `cycles` calls to tick() that neither start nor finish an
  /// access, so `cycles` must be strictly below next_event_delta().  With the
  /// module idle and drained this is a no-op (idle ticks change nothing).
  void advance(std::uint64_t cycles) {
    if (active_ == nullptr) {
      SYNCPAT_ASSERT(input_.empty());
      return;
    }
    SYNCPAT_ASSERT(cycles < remaining_);
    busy_cycles_ += cycles;
    remaining_ -= static_cast<std::uint32_t>(cycles);
  }

  [[nodiscard]] bool idle() const { return active_ == nullptr && input_.empty(); }
  /// Quiescence predicate for the fast-forward engine: no access in service
  /// and every buffer empty, so idle cycles cannot change module state.
  [[nodiscard]] bool quiescent() const {
    return active_ == nullptr && input_.empty() && output_.empty() &&
           absorbed_.empty();
  }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  [[nodiscard]] std::uint64_t busy_cycles() const { return busy_cycles_; }

 private:
  MemoryConfig config_;
  util::RingBuffer<bus::Transaction*> input_;
  util::RingBuffer<bus::Transaction*> output_;
  std::vector<bus::Transaction*> absorbed_;
  bus::Transaction* active_ = nullptr;
  std::uint32_t remaining_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace syncpat::mem

#include "mem/memory.hpp"

namespace syncpat::mem {

void Memory::tick() {
  if (active_ == nullptr && !input_.empty()) {
    active_ = input_.pop_front();
    // DSM remote accesses pay their node-hop on top of the base access time;
    // folding it into remaining_ keeps next_event_delta()/advance() (the DES
    // span contract) correct without a special case.
    remaining_ = config_.access_cycles + active_->dsm_extra_cycles;
  }
  if (active_ == nullptr) return;

  ++busy_cycles_;
  if (--remaining_ > 0) return;

  // Access complete.  Write-backs (and reflected dirty supplies) are
  // absorbed; reads need the output buffer.
  const bool needs_response = active_->kind == bus::TxnKind::kRead ||
                              active_->kind == bus::TxnKind::kReadX;
  if (!needs_response) {
    ++served_;
    absorbed_.push_back(active_);
    active_ = nullptr;
    return;
  }
  if (output_.full()) {
    remaining_ = 1;  // retry next cycle: module blocked until space frees
    return;
  }
  active_->phase = bus::TxnPhase::kMemOutput;
  output_.push_back(active_);
  ++served_;
  active_ = nullptr;
}

}  // namespace syncpat::mem

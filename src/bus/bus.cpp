#include "bus/bus.hpp"

namespace syncpat::bus {

BusObserver::~BusObserver() = default;

const char* txn_kind_name(TxnKind k) {
  switch (k) {
    case TxnKind::kRead: return "Read";
    case TxnKind::kReadX: return "ReadX";
    case TxnKind::kUpgrade: return "Upgrade";
    case TxnKind::kWriteBack: return "WriteBack";
    case TxnKind::kHandoff: return "Handoff";
    case TxnKind::kWriteThrough: return "WriteThrough";
  }
  return "?";
}

}  // namespace syncpat::bus

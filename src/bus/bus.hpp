// Split-transaction bus (paper §2.2).  Arbitration *policy* — who wins when
// several ports want the bus — lives in bus/service_discipline.hpp; this
// object owns occupancy, tenure accounting and utilization.
//
// The bus is 64 bits wide; a 16-byte line therefore takes two data cycles.
// A memory-bound request occupies the bus for one address cycle only, the
// bus is released while memory works, and the response re-arbitrates for the
// bus (split transaction).  Cache-to-cache supplies, upgrades, write-backs
// and lock hand-offs hold the bus for their whole duration.
//
// The Bus object itself is the occupancy/arbitration/statistics engine; the
// simulator performs the snoop and routing when a grant happens.
#pragma once

#include <cstdint>
#include <optional>

#include "bus/transaction.hpp"
#include "util/assert.hpp"

namespace syncpat::bus {

struct BusConfig {
  std::uint32_t ports = 0;            // arbitration ring size (procs + memory)
  std::uint32_t request_cycles = 1;   // address phase
  std::uint32_t data_cycles = 2;      // line transfer (line/bus width)
};

/// Observes bus tenure for the tracing layer.  Null unless tracing is on, so
/// the occupy path pays one predictable branch.
class BusObserver {
 public:
  virtual ~BusObserver();
  /// `txn` won arbitration and holds the bus for `cycles` bus cycles,
  /// starting this cycle.
  virtual void on_occupied(const Transaction& txn, std::uint32_t cycles) = 0;
};

class Bus {
 public:
  explicit Bus(const BusConfig& config) : config_(config) {
    SYNCPAT_ASSERT(config.ports > 0);
  }

  [[nodiscard]] bool free() const { return current_ == nullptr; }
  /// Quiescence predicate for the fast-forward engine: nothing occupies the
  /// bus, so a bulk cycle advance observes exactly what per-cycle ticking
  /// would (idle cycles never change arbitration state).
  [[nodiscard]] bool idle() const { return current_ == nullptr; }
  [[nodiscard]] Transaction* current() const { return current_; }

  /// Occupies the bus with `txn` for `cycles` bus cycles starting this
  /// cycle.  Precondition: free().
  void occupy(Transaction* txn, std::uint32_t cycles) {
    SYNCPAT_ASSERT(free());
    SYNCPAT_ASSERT(cycles > 0);
    current_ = txn;
    remaining_ = cycles;
    if (observer_ != nullptr) observer_->on_occupied(*txn, cycles);
  }

  /// Registers the (single) tenure observer; nullptr detaches.
  void set_observer(BusObserver* observer) { observer_ = observer; }

  /// Advances one cycle.  Returns the transaction whose bus tenure finished
  /// at the end of this cycle, if any.
  Transaction* tick() {
    ++total_cycles_;
    if (current_ == nullptr) return nullptr;
    ++busy_cycles_;
    if (--remaining_ > 0) return nullptr;
    Transaction* done = current_;
    current_ = nullptr;
    return done;
  }

  /// Bulk-advances `cycles` idle cycles in one step (fast-forward over a
  /// quiescent machine).  Equivalent to `cycles` calls to tick() with no
  /// occupant: only the utilization denominator moves.  Precondition: idle().
  void advance_idle(std::uint64_t cycles) {
    SYNCPAT_ASSERT(idle());
    total_cycles_ += cycles;
  }

  /// Cycles until the current tenure ends (0 when free): the DES core's bus
  /// completion event is `cycles` ticks away.
  [[nodiscard]] std::uint32_t busy_remaining() const {
    return current_ == nullptr ? 0 : remaining_;
  }

  /// Bulk-advances `cycles` busy cycles in one step (DES span over a held
  /// bus).  Equivalent to `cycles` calls to tick() that do not finish the
  /// tenure, so `cycles` must be strictly below busy_remaining().
  void advance_busy(std::uint64_t cycles) {
    SYNCPAT_ASSERT(current_ != nullptr);
    SYNCPAT_ASSERT(cycles < remaining_);
    total_cycles_ += cycles;
    busy_cycles_ += cycles;
    remaining_ -= static_cast<std::uint32_t>(cycles);
  }

  [[nodiscard]] const BusConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t busy_cycles() const { return busy_cycles_; }
  [[nodiscard]] std::uint64_t total_cycles() const { return total_cycles_; }
  [[nodiscard]] double utilization() const {
    return total_cycles_ > 0
               ? static_cast<double>(busy_cycles_) /
                     static_cast<double>(total_cycles_)
               : 0.0;
  }

 private:
  BusConfig config_;
  BusObserver* observer_ = nullptr;
  Transaction* current_ = nullptr;
  std::uint32_t remaining_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t total_cycles_ = 0;
};

}  // namespace syncpat::bus

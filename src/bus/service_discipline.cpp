#include "bus/service_discipline.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace syncpat::bus {

ServiceDiscipline::~ServiceDiscipline() = default;

const char* discipline_name(DisciplineKind kind) {
  switch (kind) {
    case DisciplineKind::kRoundRobin: return "round-robin";
    case DisciplineKind::kFixedPriority: return "fixed-priority";
    case DisciplineKind::kFcfs: return "fcfs";
  }
  return "?";
}

DisciplineKind discipline_from_name(const std::string& name) {
  if (name == "round-robin") return DisciplineKind::kRoundRobin;
  if (name == "fixed-priority") return DisciplineKind::kFixedPriority;
  if (name == "fcfs") return DisciplineKind::kFcfs;
  throw std::invalid_argument(
      "bus discipline expects \"round-robin\", \"fixed-priority\" or "
      "\"fcfs\", got \"" +
      name + "\"");
}

void RoundRobinDiscipline::scan_order(const ArbRequest* /*req*/,
                                      std::uint64_t /*now*/,
                                      std::uint32_t* out) {
  for (std::uint32_t i = 0; i < ports_; ++i) {
    out[i] = (next_ + i) % ports_;
  }
}

void FixedPriorityDiscipline::scan_order(const ArbRequest* req,
                                         std::uint64_t now,
                                         std::uint32_t* out) {
  SYNCPAT_ASSERT(req != nullptr);
  // Memory responses drain first (they hold a line slot and block retries).
  out[0] = ports_ - 1;
  // Aging escape: find the oldest queued processor request (stamp, port id
  // breaking ties — the id-order scan below never considers a later port
  // with an equal stamp first, so <, not <=, keeps the scan deterministic).
  std::uint32_t oldest = ports_;
  for (std::uint32_t p = 0; p + 1 < ports_; ++p) {
    if (req[p].present &&
        (oldest == ports_ || req[p].stamp < req[oldest].stamp)) {
      oldest = p;
    }
  }
  std::uint32_t idx = 1;
  if (oldest != ports_ &&
      now - req[oldest].stamp >= kStarvationEscapeCycles) {
    // Bounded priority inversion: one starving request jumps the chain.
    out[idx++] = oldest;
  } else {
    oldest = ports_;  // nobody promoted; emit the pure static chain
  }
  for (std::uint32_t p = 0; p + 1 < ports_; ++p) {
    if (p != oldest) out[idx++] = p;
  }
}

void FcfsDiscipline::scan_order(const ArbRequest* req, std::uint64_t /*now*/,
                                std::uint32_t* out) {
  SYNCPAT_ASSERT(req != nullptr);
  for (std::uint32_t i = 0; i < ports_; ++i) {
    out[i] = i;
  }
  // Total order (requests by arrival stamp, then port id; requestless ports
  // trail in id order), so the sort is deterministic without stability.
  std::sort(out, out + ports_, [req](std::uint32_t a, std::uint32_t b) {
    if (req[a].present != req[b].present) return req[a].present;
    if (req[a].present && req[a].stamp != req[b].stamp) {
      return req[a].stamp < req[b].stamp;
    }
    return a < b;
  });
}

std::unique_ptr<ServiceDiscipline> make_discipline(DisciplineKind kind,
                                                   std::uint32_t ports) {
  SYNCPAT_ASSERT(ports > 0);
  switch (kind) {
    case DisciplineKind::kRoundRobin:
      return std::make_unique<RoundRobinDiscipline>(ports);
    case DisciplineKind::kFixedPriority:
      return std::make_unique<FixedPriorityDiscipline>(ports);
    case DisciplineKind::kFcfs:
      return std::make_unique<FcfsDiscipline>(ports);
  }
  throw std::invalid_argument("unknown bus discipline kind");
}

}  // namespace syncpat::bus

// Bus transaction model.
//
// Every action that crosses a processor's cache boundary is a Transaction:
// line fetches (Read/ReadX), ownership upgrades (invalidations), dirty-line
// write-backs, and queuing-lock hand-off transfers.  Transactions are owned
// by the simulator; queues hold non-owning pointers.
#pragma once

#include <cstdint>

namespace syncpat::bus {

enum class TxnKind : std::uint8_t {
  kRead,          // fetch a line for reading (may be supplied cache-to-cache)
  kReadX,         // fetch a line for ownership (write miss / atomic op)
  kUpgrade,       // invalidate other copies of a Shared line we hold
  kWriteBack,     // dirty eviction to memory
  kHandoff,       // queuing-lock cache-to-cache lock transfer (timing only)
  kWriteThrough,  // one-word store to memory + invalidation (WT caches)
};

[[nodiscard]] const char* txn_kind_name(TxnKind k);

/// Why the issuing processor is (or is not) stalled on this transaction;
/// drives the paper's stall-cause split (Tables 3/5).
enum class StallCause : std::uint8_t {
  kNone,       // nobody waits (write-back, buffered WO write, hand-off)
  kCacheMiss,  // ordinary memory access
  kLockWait,   // access on behalf of acquiring a lock someone else holds
};

enum class TxnPhase : std::uint8_t {
  kQueued,       // in a cache-bus buffer
  kOnBusReq,     // request/address (or full c2c/upgrade/writeback) on bus
  kInMemory,     // queued at or being serviced by the memory module
  kMemOutput,    // response waiting for the bus
  kOnBusResp,    // response data on bus
  kDone,
};

struct Transaction {
  std::uint64_t id = 0;
  TxnKind kind = TxnKind::kRead;
  std::uint32_t line_addr = 0;
  std::int32_t requester = -1;       // processor id
  StallCause stall_cause = StallCause::kNone;
  bool is_lock_op = false;           // issued by a lock scheme
  std::uint8_t lock_step = 0;        // scheme-private state machine tag
  bool forced_bus = false;           // atomic op: goes on the bus even on hit
  bool requester_waiting = false;    // the issuing processor stalls on this
  // Metrics-only tag (never branches simulation): this fetch re-acquires a
  // line a remote processor invalidated out of the requester's cache, so the
  // requester's wait cycles are charged to invalidation-refill.
  bool coherence_refill = false;
  TxnPhase phase = TxnPhase::kQueued;
  // DSM cost model: extra memory service cycles because the requester's node
  // is not the line's home node (0 under the uniform bus model).  Stamped at
  // creation; also tags the requester's memory-wait cycles as remote-access
  // for the stall attribution.
  std::uint32_t dsm_extra_cycles = 0;

  // Filled at the bus request (snoop) phase:
  bool supplied_by_cache = false;    // cache-to-cache transfer
  bool dirty_supplier = false;       // supplier was Modified (memory updated)
  bool fills_line = false;           // requester cache has a pending slot

  std::uint64_t issued_cycle = 0;
  std::uint64_t granted_cycle = 0;
  std::uint64_t completed_cycle = 0;
  // Cycle make_txn() ran; never re-stamped (issued_cycle is, on the memory
  // response path), so the tracing layer can report whole-transaction spans.
  std::uint64_t created_cycle = 0;

  [[nodiscard]] bool needs_memory() const {
    switch (kind) {
      case TxnKind::kRead:
      case TxnKind::kReadX:
        return !supplied_by_cache;
      case TxnKind::kWriteBack:
      case TxnKind::kWriteThrough:
        return true;
      case TxnKind::kUpgrade:
      case TxnKind::kHandoff:
        return false;
    }
    return false;
  }

  /// True for kinds whose request phase may route to memory and therefore
  /// must not be granted while the memory input buffer is full.
  [[nodiscard]] bool may_need_memory() const {
    return kind == TxnKind::kRead || kind == TxnKind::kReadX ||
           kind == TxnKind::kWriteBack || kind == TxnKind::kWriteThrough;
  }

  [[nodiscard]] bool is_exclusive_request() const {
    return kind == TxnKind::kReadX || kind == TxnKind::kUpgrade ||
           kind == TxnKind::kWriteThrough;
  }

  /// True while this transaction reserves its line against other grants
  /// (the arbiter's one-transaction-per-line rule).  Write-backs and
  /// write-throughs release the line once they enter the memory module;
  /// fetches hold it through the split-transaction response.
  [[nodiscard]] bool holds_line_slot() const {
    if (phase == TxnPhase::kOnBusReq) return true;
    if (kind != TxnKind::kRead && kind != TxnKind::kReadX) return false;
    return phase == TxnPhase::kInMemory || phase == TxnPhase::kMemOutput ||
           phase == TxnPhase::kOnBusResp;
  }
};

}  // namespace syncpat::bus

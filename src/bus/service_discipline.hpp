// Pluggable bus service disciplines (Nikolov & Lerato: comparison of
// service disciplines for a shared-bus multiprocessor).
//
// The Bus object owns occupancy and statistics; *who* wins arbitration when
// several ports want the bus is a policy.  This seam extracts the historical
// hardwired round-robin scan into a ServiceDiscipline the simulator consults
// each arbitration round:
//
//   * round-robin (default): the scan restarts one past the last grant —
//     byte-identical to the pre-seam behavior, which the golden tables and
//     the engine-differential suite pin;
//   * fixed-priority: memory responses first, then processors in id order —
//     the static-priority daisy chain; low ids starve high ids on short
//     horizons (the fairness tests demonstrate the skew), but a bounded
//     aging escape promotes the oldest waiter past the chain so no request
//     is deferred forever;
//   * fcfs: the globally oldest queued request wins (first-come first-served
//     / queued discipline), using each head transaction's bus-queue arrival
//     stamp.
//
// A discipline produces a full priority-ordered port permutation per round;
// the simulator walks it and grants the first serviceable request, so an
// unserviceable high-priority port (line in flight, memory input full) never
// deadlocks the bus.  Grant bookkeeping (rotation, wait statistics) goes
// through record_grant().
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/running_stat.hpp"

namespace syncpat::bus {

enum class DisciplineKind : std::uint8_t { kRoundRobin, kFixedPriority, kFcfs };

inline constexpr std::size_t kNumDisciplines = 3;

[[nodiscard]] const char* discipline_name(DisciplineKind kind);
/// Strict: accepts exactly "round-robin", "fixed-priority" or "fcfs";
/// anything else throws std::invalid_argument naming the offending text.
[[nodiscard]] DisciplineKind discipline_from_name(const std::string& name);

/// One port's view of an arbitration round (filled only for disciplines that
/// need request stamps, see ServiceDiscipline::needs_stamps()).
struct ArbRequest {
  bool present = false;     // a grant-eligible request waits at this port
  std::uint64_t stamp = 0;  // cycle it reached the bus queue (issued_cycle)
};

/// Per-run grant bookkeeping, reported per discipline in SimulationResult.
struct DisciplineStats {
  std::uint64_t grants = 0;         // processor-side request grants
  std::uint64_t memory_grants = 0;  // memory response grants
  std::uint64_t max_grant_wait = 0; // worst queued-to-granted wait (cycles)
  util::RunningStat grant_wait;     // queued-to-granted wait per grant
};

class ServiceDiscipline {
 public:
  explicit ServiceDiscipline(std::uint32_t ports) : ports_(ports) {}
  virtual ~ServiceDiscipline();

  ServiceDiscipline(const ServiceDiscipline&) = delete;
  ServiceDiscipline& operator=(const ServiceDiscipline&) = delete;

  /// Writes a permutation of [0, ports) into `out`, highest grant priority
  /// first.  `req` has one entry per port (`req[ports-1]` is the memory
  /// response port) and may be null when needs_stamps() is false; `now` is
  /// the current bus cycle, for disciplines that age requests.
  virtual void scan_order(const ArbRequest* req, std::uint64_t now,
                          std::uint32_t* out) = 0;

  /// True when scan_order() reads the per-port request stamps; the caller
  /// then fills an ArbRequest per port before calling it.
  [[nodiscard]] virtual bool needs_stamps() const { return false; }

  /// Records that `port` won arbitration for a request that waited
  /// `wait_cycles` since reaching the bus queue.  Rotates stateful
  /// disciplines and feeds the wait statistics.
  void record_grant(std::uint32_t port, std::uint64_t wait_cycles,
                    bool memory_response) {
    memory_response ? ++stats_.memory_grants : ++stats_.grants;
    stats_.grant_wait.add(static_cast<double>(wait_cycles));
    if (wait_cycles > stats_.max_grant_wait) stats_.max_grant_wait = wait_cycles;
    on_granted(port);
  }

  [[nodiscard]] virtual DisciplineKind kind() const = 0;
  [[nodiscard]] const char* name() const { return discipline_name(kind()); }
  [[nodiscard]] std::uint32_t ports() const { return ports_; }
  [[nodiscard]] const DisciplineStats& stats() const { return stats_; }

 protected:
  virtual void on_granted(std::uint32_t /*port*/) {}

  std::uint32_t ports_;

 private:
  DisciplineStats stats_;
};

/// The historical policy: scan starts one past the last granted port.
class RoundRobinDiscipline final : public ServiceDiscipline {
 public:
  using ServiceDiscipline::ServiceDiscipline;
  void scan_order(const ArbRequest* req, std::uint64_t now,
                  std::uint32_t* out) override;
  [[nodiscard]] DisciplineKind kind() const override {
    return DisciplineKind::kRoundRobin;
  }
  /// The port the scan considers `offset` places after the last grant
  /// (exposed for the rotation unit tests).
  [[nodiscard]] std::uint32_t peek(std::uint32_t offset) const {
    return (next_ + offset) % ports_;
  }

 protected:
  void on_granted(std::uint32_t port) override {
    next_ = (port + 1) % ports_;
  }

 private:
  std::uint32_t next_ = 0;
};

/// Static priority: memory responses, then processors in ascending id order.
///
/// Pure static priority livelocks: an unthrottled test&set retry stream from
/// low-id spinners outranks a higher-id holder's release write forever (the
/// fuzz-discovered seed-24245/case-3 hang).  Real daisy-chain arbiters bound
/// the inversion with a fairness timeout (e.g. Futurebus+ priority-with-
/// fairness mode); this one promotes the single oldest queued processor
/// request ahead of the chain once it has waited kStarvationEscapeCycles.
/// Short-horizon behaviour stays id-ordered — the fairness skew the
/// discipline exists to model survives — but every request is granted within
/// a bounded window, so the bus is livelock-free under any scheme.
class FixedPriorityDiscipline final : public ServiceDiscipline {
 public:
  /// Cycles a queued request may be passed over before it jumps the chain.
  /// Large against a lock hand-off (tens of cycles), small against the
  /// simulator's 500k-cycle progress watchdog and test cycle budgets.
  static constexpr std::uint64_t kStarvationEscapeCycles = 1024;

  using ServiceDiscipline::ServiceDiscipline;
  void scan_order(const ArbRequest* req, std::uint64_t now,
                  std::uint32_t* out) override;
  [[nodiscard]] bool needs_stamps() const override { return true; }
  [[nodiscard]] DisciplineKind kind() const override {
    return DisciplineKind::kFixedPriority;
  }
};

/// First-come first-served: the oldest queued request (by bus-queue arrival
/// stamp, port id breaking ties) wins; requestless ports trail in id order.
class FcfsDiscipline final : public ServiceDiscipline {
 public:
  using ServiceDiscipline::ServiceDiscipline;
  void scan_order(const ArbRequest* req, std::uint64_t now,
                  std::uint32_t* out) override;
  [[nodiscard]] bool needs_stamps() const override { return true; }
  [[nodiscard]] DisciplineKind kind() const override {
    return DisciplineKind::kFcfs;
  }
};

[[nodiscard]] std::unique_ptr<ServiceDiscipline> make_discipline(
    DisciplineKind kind, std::uint32_t ports);

}  // namespace syncpat::bus

// The cache-bus interface buffer (paper §2.2 and §4.1).
//
// "The cache-bus interface includes a four element buffer.  All memory
// requests, write-backs, cache-cache transfers, and coherence actions
// initiated by the processor must pass through this buffer."
//
// The consistency model is implemented *here*:
//  * Sequential consistency: strict FIFO.  (The processor layer additionally
//    stalls on every miss, so at most one processor-stalling entry is ever
//    queued, behind any pending write-backs.)
//  * Weak ordering: a read (load/ifetch miss) that would stall the processor
//    is inserted at the *head* of the buffer, bypassing buffered writes,
//    write-backs and invalidation signals — unless an entry for the same
//    line is already queued (program-order data dependence through the same
//    line must be respected; §4.1's false-sharing discussion).
//
// A dirty line waiting in the buffer as a write-back is visible to the
// coherence mechanism: snoops check the buffer (see snoop_writeback()).
#pragma once

#include <cstdint>

#include "bus/transaction.hpp"
#include "util/ring_buffer.hpp"

namespace syncpat::bus {

enum class ConsistencyModel : std::uint8_t { kSequential, kWeak };

[[nodiscard]] const char* consistency_name(ConsistencyModel m);

class BusInterface {
 public:
  BusInterface(std::uint32_t proc_id, std::uint32_t depth,
               ConsistencyModel model)
      : proc_id_(proc_id), model_(model), queue_(depth) {}

  [[nodiscard]] std::uint32_t proc_id() const { return proc_id_; }
  [[nodiscard]] ConsistencyModel model() const { return model_; }
  [[nodiscard]] bool full() const { return queue_.full(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  /// Quiescence predicate for the fast-forward engine: an empty buffer can
  /// produce no grant candidate, so idle cycles leave it untouched.
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

  /// Queues a transaction, applying the consistency-model placement rule.
  /// Returns false when the buffer is full (the caller stalls and retries).
  bool enqueue(Transaction* txn);

  /// The grant candidate (head of the buffer), nullptr if empty.
  [[nodiscard]] Transaction* head() const {
    return queue_.empty() ? nullptr : queue_.front();
  }

  /// Removes the head after it has been granted the bus.
  Transaction* pop_head() { return queue_.pop_front(); }

  /// True if any queued entry targets `line_addr`.
  [[nodiscard]] bool has_line(std::uint32_t line_addr) const;

  /// Coherence visibility of buffered dirty lines: if a write-back for
  /// `line_addr` sits in this buffer, it is removed and returned so the
  /// snoop can be serviced from it (the data is supplied cache-to-cache and,
  /// for a non-exclusive request, still forwarded to memory by the bus
  /// layer).  Returns nullptr if no buffered write-back matches.
  Transaction* snoop_writeback(std::uint32_t line_addr);

  /// Statistics: how often enqueue had to bypass (WO) / how often a read
  /// found a same-line dependence and could not bypass.
  [[nodiscard]] std::uint64_t bypasses() const { return bypasses_; }
  [[nodiscard]] std::uint64_t bypass_blocked() const { return bypass_blocked_; }

 private:
  std::uint32_t proc_id_;
  ConsistencyModel model_;
  util::RingBuffer<Transaction*> queue_;
  std::uint64_t bypasses_ = 0;
  std::uint64_t bypass_blocked_ = 0;
};

}  // namespace syncpat::bus

#include "bus/interface.hpp"

namespace syncpat::bus {

const char* consistency_name(ConsistencyModel m) {
  switch (m) {
    case ConsistencyModel::kSequential: return "sequential";
    case ConsistencyModel::kWeak: return "weak";
  }
  return "?";
}

bool BusInterface::enqueue(Transaction* txn) {
  if (queue_.full()) return false;

  const bool stalling_read =
      (txn->kind == TxnKind::kRead || txn->kind == TxnKind::kReadX) &&
      txn->stall_cause != StallCause::kNone;

  if (model_ == ConsistencyModel::kWeak && stalling_read && !queue_.empty()) {
    if (has_line(txn->line_addr)) {
      // Same-line entry queued: bypassing would reorder dependent accesses
      // to one line (§4.1); keep program order.
      ++bypass_blocked_;
      queue_.push_back(txn);
    } else {
      ++bypasses_;
      queue_.push_front(txn);
    }
  } else {
    queue_.push_back(txn);
  }
  return true;
}

bool BusInterface::has_line(std::uint32_t line_addr) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_.at(i)->line_addr == line_addr) return true;
  }
  return false;
}

Transaction* BusInterface::snoop_writeback(std::uint32_t line_addr) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    Transaction* txn = queue_.at(i);
    if (txn->kind == TxnKind::kWriteBack && txn->line_addr == line_addr) {
      return queue_.remove_at(i);
    }
  }
  return nullptr;
}

}  // namespace syncpat::bus

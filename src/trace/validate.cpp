#include "trace/validate.hpp"

#include <algorithm>
#include <sstream>

#include "trace/address_map.hpp"

namespace syncpat::trace {

std::string ValidationReport::to_string(std::size_t max_errors) const {
  std::ostringstream out;
  out << (ok() ? "trace OK" : "trace INVALID") << ": " << events_checked
      << " events, " << errors.size() << " errors, " << zero_gap_events
      << " zero-gap events\n";
  for (std::size_t i = 0; i < errors.size() && i < max_errors; ++i) {
    const ValidationIssue& e = errors[i];
    out << "  proc " << e.proc << " event " << e.event_index << ": "
        << e.message << '\n';
  }
  if (errors.size() > max_errors) {
    out << "  ... and " << errors.size() - max_errors << " more\n";
  }
  return out.str();
}

ValidationReport validate_program(ProgramTrace& program) {
  ValidationReport report;
  program.reset_all();

  std::vector<std::vector<std::uint32_t>> barrier_seq(program.num_procs());

  for (std::uint32_t p = 0; p < program.num_procs(); ++p) {
    TraceSource& source = *program.per_proc[p];
    std::vector<std::uint32_t> held;  // lock addresses
    Event e;
    std::uint64_t index = 0;

    auto error = [&](std::string message) {
      report.errors.push_back(ValidationIssue{p, index, std::move(message)});
    };

    while (source.next(e)) {
      ++report.events_checked;
      if (e.gap == 0) ++report.zero_gap_events;
      const Region region = AddressMap::classify(e.addr);
      switch (e.op) {
        case Op::kIFetch:
          if (region != Region::kCode) {
            error("instruction fetch outside the code region");
          }
          break;
        case Op::kLoad:
        case Op::kStore:
          if (region == Region::kLock) {
            error("data reference into the lock region");
          } else if (region == Region::kPrivate &&
                     AddressMap::private_owner(e.addr) != p) {
            error("private reference into another processor's segment");
          }
          break;
        case Op::kLockAcq:
          if (region != Region::kLock) {
            error("lock acquire with a non-lock address");
            break;
          }
          if (std::find(held.begin(), held.end(), e.addr) != held.end()) {
            error("re-acquire of a lock already held (locks are "
                  "non-reentrant; this deadlocks the simulation)");
          }
          held.push_back(e.addr);
          break;
        case Op::kLockRel: {
          if (region != Region::kLock) {
            error("lock release with a non-lock address");
            break;
          }
          const auto it = std::find(held.rbegin(), held.rend(), e.addr);
          if (it == held.rend()) {
            error("release of a lock that is not held");
          } else {
            held.erase(std::next(it).base());
          }
          break;
        }
        case Op::kBarrier:
          if (region != Region::kLock) {
            error("barrier with a non-lock address");
            break;
          }
          barrier_seq[p].push_back(e.addr);
          break;
      }
      ++index;
    }
    if (!held.empty()) {
      error("trace ends holding " + std::to_string(held.size()) + " lock(s)");
    }
  }

  // Barrier sequences must agree across processors.
  for (std::uint32_t p = 1; p < program.num_procs(); ++p) {
    if (barrier_seq[p] != barrier_seq[0]) {
      report.errors.push_back(ValidationIssue{
          p, 0,
          "barrier sequence differs from processor 0 (" +
              std::to_string(barrier_seq[p].size()) + " vs " +
              std::to_string(barrier_seq[0].size()) +
              " arrivals); simulation would deadlock"});
    }
  }

  program.reset_all();
  return report;
}

}  // namespace syncpat::trace

#include "trace/io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>

namespace syncpat::trace {
namespace {

constexpr std::array<char, 4> kMagic = {'S', 'P', 'T', 'R'};

// Header fields are untrusted input: a corrupt (or adversarial) file must
// produce a TraceIoError, never a multi-gigabyte allocation.  Program names
// are short human labels, and a declared event count can never exceed what
// the remaining bytes of the stream could actually encode.
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint64_t kEventBytes = 9;  // addr u32 + gap u32 + op u8

/// Bytes left between the current read position and end of stream, or
/// nullopt when the stream is not seekable (e.g. a pipe).
std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  const std::istream::pos_type cur = in.tellg();
  if (cur == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(cur);
  if (!in || end == std::istream::pos_type(-1) || end < cur) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - cur);
}

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.write(buf, sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  in.read(buf, sizeof(T));
  if (!in) throw TraceIoError("trace file truncated");
  T value;
  std::memcpy(&value, buf, sizeof(T));
  return value;
}

void put_event(std::ostream& out, const Event& e) {
  put<std::uint32_t>(out, e.addr);
  put<std::uint32_t>(out, e.gap);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(e.op));
}

Event get_event(std::istream& in) {
  Event e;
  e.addr = get<std::uint32_t>(in);
  e.gap = get<std::uint32_t>(in);
  const auto op = get<std::uint8_t>(in);
  if (op > static_cast<std::uint8_t>(Op::kBarrier)) {
    throw TraceIoError("trace file contains invalid opcode");
  }
  e.op = static_cast<Op>(op);
  return e;
}

}  // namespace

void write_program_trace(std::ostream& out, const std::string& name,
                         std::vector<TraceSource*> per_proc) {
  out.write(kMagic.data(), kMagic.size());
  put<std::uint32_t>(out, kTraceFormatVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(per_proc.size()));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));

  for (TraceSource* source : per_proc) {
    // Two passes would require a second reset; instead buffer the count by
    // draining into a local vector per processor.  Trace files are a tool
    // and test artifact, so the memory cost is acceptable here (the hot
    // simulation path never goes through files).
    std::vector<Event> events;
    Event e;
    while (source->next(e)) events.push_back(e);
    put<std::uint64_t>(out, events.size());
    for (const Event& ev : events) put_event(out, ev);
  }
  if (!out) throw TraceIoError("trace file write failed");
}

void write_program_trace(std::ostream& out, ProgramTrace& program) {
  program.reset_all();
  std::vector<TraceSource*> raw;
  raw.reserve(program.per_proc.size());
  for (auto& s : program.per_proc) raw.push_back(s.get());
  write_program_trace(out, program.name, std::move(raw));
}

ProgramTrace read_program_trace(std::istream& in) {
  std::array<char, 4> magic;
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw TraceIoError("not a syncpat trace file");
  const auto version = get<std::uint32_t>(in);
  if (version != kTraceFormatVersion) {
    throw TraceIoError("unsupported trace file version " +
                       std::to_string(version));
  }
  const auto nprocs = get<std::uint32_t>(in);
  if (nprocs == 0 || nprocs > 4096) {
    throw TraceIoError("implausible processor count in trace file");
  }
  const auto name_len = get<std::uint32_t>(in);
  if (name_len > kMaxNameLen) {
    throw TraceIoError("implausible program name length " +
                       std::to_string(name_len) + " in trace file");
  }
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) throw TraceIoError("trace file truncated in name");

  ProgramTrace program;
  program.name = std::move(name);
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    const auto count = get<std::uint64_t>(in);
    if (const std::optional<std::uint64_t> rem = remaining_bytes(in);
        rem.has_value() && count > *rem / kEventBytes) {
      throw TraceIoError("trace file declares " + std::to_string(count) +
                         " events for processor " + std::to_string(p) +
                         " but only " + std::to_string(*rem) +
                         " bytes remain");
    }
    std::vector<Event> events;
    // On an unseekable stream the count is still untrusted — reserve a
    // bounded amount and let push_back grow as events actually arrive.
    events.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, std::uint64_t{1} << 16)));
    for (std::uint64_t i = 0; i < count; ++i) events.push_back(get_event(in));
    program.per_proc.push_back(
        std::make_unique<VectorTraceSource>(std::move(events)));
  }
  return program;
}

void save_program_trace(const std::string& path, ProgramTrace& program) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw TraceIoError("cannot open " + path + " for writing");
  write_program_trace(out, program);
}

ProgramTrace load_program_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceIoError("cannot open " + path);
  return read_program_trace(in);
}

}  // namespace syncpat::trace

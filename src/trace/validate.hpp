// Trace well-formedness validation.
//
// The simulator asserts hard on malformed traces (a corrupted measurement
// input must never produce plausible numbers); this validator gives tools
// and file-loading paths a way to diagnose problems up front with readable
// errors instead.  Checks:
//   * lock releases match a held acquire (per processor, same lock);
//   * no locks are held at end of trace;
//   * lock/barrier operations carry lock-region addresses, instruction
//     fetches code-region addresses, and data references anything else;
//   * private-region data references belong to the issuing processor;
//   * every processor performs the same barrier sequence (a mismatch would
//     deadlock the simulation);
//   * zero-gap events are counted (legal, but a sign of unusual traces).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/source.hpp"

namespace syncpat::trace {

struct ValidationIssue {
  std::uint32_t proc = 0;
  std::uint64_t event_index = 0;
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationIssue> errors;
  std::uint64_t zero_gap_events = 0;
  std::uint64_t events_checked = 0;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  /// Human-readable summary (one line per error, capped).
  [[nodiscard]] std::string to_string(std::size_t max_errors = 10) const;
};

/// Validates every processor's stream.  Sources are reset before and after.
[[nodiscard]] ValidationReport validate_program(ProgramTrace& program);

}  // namespace syncpat::trace

// Trace event model.
//
// A program trace, in the style of an expanded MPTrace file (paper §2.1), is
// one stream of events per processor.  Each event carries the number of
// processor "work" cycles attributed to execution since the previous event
// (`gap`, which includes the referencing instruction's own execution time,
// assuming no wait states), the operation, and the 32-bit physical address.
//
// Lock spinning is never present in a trace: as in MPTrace, only the actual
// lock acquire/release operations appear, and the simulator's lock scheme
// decides what spinning costs.
#pragma once

#include <cstdint>
#include <string>

namespace syncpat::trace {

enum class Op : std::uint8_t {
  kIFetch = 0,   // instruction fetch
  kLoad = 1,     // data read
  kStore = 2,    // data write
  kLockAcq = 3,  // lock acquire; addr identifies the lock
  kLockRel = 4,  // lock release; addr identifies the lock
  kBarrier = 5,  // barrier arrival; addr identifies the barrier.  Every
                 // processor's trace must contain the same barrier sequence.
};

[[nodiscard]] constexpr bool is_memory_ref(Op op) {
  return op == Op::kIFetch || op == Op::kLoad || op == Op::kStore;
}

[[nodiscard]] constexpr bool is_data_ref(Op op) {
  return op == Op::kLoad || op == Op::kStore;
}

[[nodiscard]] constexpr bool is_lock_op(Op op) {
  return op == Op::kLockAcq || op == Op::kLockRel;
}

/// Operations that are synchronization points (weak-ordering fences).
[[nodiscard]] constexpr bool is_sync_op(Op op) {
  return is_lock_op(op) || op == Op::kBarrier;
}

[[nodiscard]] const char* op_name(Op op);

struct Event {
  std::uint32_t addr = 0;  // byte address (or lock address for lock ops)
  std::uint32_t gap = 0;   // work cycles executed since the previous event
  Op op = Op::kIFetch;

  friend bool operator==(const Event&, const Event&) = default;
};

[[nodiscard]] std::string to_string(const Event& e);

}  // namespace syncpat::trace

// Layout of the simulated 32-bit physical address space.
//
// The trace generators and the ideal analyzer need to agree on which
// addresses are code, per-processor private data, shared data, and lock
// words; this class is the single source of that truth.
//
//   [0x0000_0000, 0x4000_0000)  code
//   [0x4000_0000, 0x8000_0000)  private data, 16 MiB segment per processor
//                               (procs >= 64 interleave into 256 KiB
//                               sub-segments; see private_addr)
//   [0x8000_0000, 0xf000_0000)  shared data
//   [0xf000_0000, ...)          locks, one 64-byte-aligned word per lock
//
// Locks are spaced 64 bytes apart so that no two locks ever share a cache
// line for any line size up to 64 bytes (the paper's machine uses 16).
#pragma once

#include <cstdint>

namespace syncpat::trace {

enum class Region : std::uint8_t { kCode, kPrivate, kShared, kLock };

[[nodiscard]] const char* region_name(Region r);

class AddressMap {
 public:
  static constexpr std::uint32_t kCodeBase = 0x0000'0000u;
  static constexpr std::uint32_t kPrivateBase = 0x4000'0000u;
  static constexpr std::uint32_t kPrivateSegment = 16u << 20;  // 16 MiB / proc
  /// The private region holds 64 macro-segments; processors 64 and above
  /// interleave into 256 KiB sub-segments (see private_addr), capping the
  /// supported machine size at 64 * 64 = 4096 processors.
  static constexpr std::uint32_t kMacroSegments = 64;
  static constexpr std::uint32_t kPrivateSubSegment =
      kPrivateSegment / kMacroSegments;  // 256 KiB
  static constexpr std::uint32_t kMaxProcs = kMacroSegments * kMacroSegments;
  static constexpr std::uint32_t kSharedBase = 0x8000'0000u;
  static constexpr std::uint32_t kLockBase = 0xf000'0000u;
  static constexpr std::uint32_t kLockStride = 64;

  [[nodiscard]] static Region classify(std::uint32_t addr);

  [[nodiscard]] static std::uint32_t code_addr(std::uint32_t offset) {
    return kCodeBase + offset;
  }
  [[nodiscard]] static std::uint32_t private_addr(std::uint32_t proc,
                                                  std::uint32_t offset);
  [[nodiscard]] static std::uint32_t shared_addr(std::uint32_t offset);
  [[nodiscard]] static std::uint32_t lock_addr(std::uint32_t lock_id);
  /// Barriers live in their own slice of the lock region (above lock ids,
  /// below the queuing-lock spin flags).
  [[nodiscard]] static std::uint32_t barrier_addr(std::uint32_t barrier_id);
  /// Inverse of lock_addr.  Precondition: classify(addr) == kLock.
  [[nodiscard]] static std::uint32_t lock_id(std::uint32_t addr);
  /// Which processor owns a private address.
  [[nodiscard]] static std::uint32_t private_owner(std::uint32_t addr);

  /// Shared data plus lock words count as "shared" references.
  [[nodiscard]] static bool is_shared_data(std::uint32_t addr) {
    const Region r = classify(addr);
    return r == Region::kShared || r == Region::kLock;
  }
};

}  // namespace syncpat::trace

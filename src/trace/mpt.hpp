// MPTrace-style compact trace encoding (paper §2.1).
//
// MPTrace "only saves the entry address of each basic block and memory
// references within that block that cannot be statically reconstructed", and
// a post-processing phase expands the compact form into the full reference
// trace.  We mirror that two-phase structure:
//
//  * A *block skeleton* is the statically-reconstructible part of a basic
//    block: the sequence of (op, gap) pairs plus, for instruction fetches,
//    the offset of each fetch from the block entry address (code addresses
//    are static).  Data addresses are dynamic and live in a side stream.
//  * A compacted stream is: a dictionary of skeletons, a sequence of
//    (block-id, entry-address) executions, and the dynamic address stream.
//
// The compactor cuts blocks at instruction-fetch boundaries (every IFetch
// starts a new block, as a taken branch would), deduplicating skeletons via
// hashing.  The expander regenerates the original event stream exactly;
// tests assert round-trip identity.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/source.hpp"

namespace syncpat::trace {

/// One operation inside a block skeleton.
struct MptSlot {
  Op op = Op::kIFetch;
  std::uint32_t gap = 0;
  // For kIFetch: offset of the fetch address from the block entry address.
  // For all other ops the address is dynamic and not part of the skeleton.
  std::uint32_t code_offset = 0;

  friend bool operator==(const MptSlot&, const MptSlot&) = default;
};

struct MptBlock {
  std::vector<MptSlot> slots;

  friend bool operator==(const MptBlock&, const MptBlock&) = default;
};

/// One executed block instance.
struct MptExecution {
  std::uint32_t block_id = 0;
  std::uint32_t entry_addr = 0;  // address of the first ifetch, 0 if none
};

/// Compact single-processor trace.
struct MptStream {
  std::vector<MptBlock> dictionary;
  std::vector<MptExecution> executions;
  std::vector<std::uint32_t> dynamic_addrs;  // loads/stores/lock ops, in order

  /// Total events after expansion.
  [[nodiscard]] std::uint64_t expanded_size() const;
  /// Compact footprint in bytes (for compression-ratio reporting).
  [[nodiscard]] std::uint64_t compact_bytes() const;
};

/// Compacts a full event stream.  The source is drained.
[[nodiscard]] MptStream compact(TraceSource& source);

/// Streaming expander: replays an MptStream as a TraceSource.
class MptExpander final : public TraceSource {
 public:
  explicit MptExpander(const MptStream& stream) : stream_(&stream) {}

  bool next(Event& out) override;
  void reset() override;

 private:
  const MptStream* stream_;
  std::size_t exec_pos_ = 0;
  std::size_t slot_pos_ = 0;
  std::size_t dyn_pos_ = 0;
};

}  // namespace syncpat::trace

#include "trace/mpt.hpp"

#include <string>

#include "util/assert.hpp"

namespace syncpat::trace {
namespace {

// Hashable key for skeleton deduplication.
struct BlockKey {
  std::string bytes;

  static BlockKey from(const MptBlock& block) {
    BlockKey key;
    key.bytes.reserve(block.slots.size() * 9);
    for (const MptSlot& s : block.slots) {
      key.bytes.push_back(static_cast<char>(s.op));
      key.bytes.append(reinterpret_cast<const char*>(&s.gap), sizeof(s.gap));
      key.bytes.append(reinterpret_cast<const char*>(&s.code_offset),
                       sizeof(s.code_offset));
    }
    return key;
  }

  friend bool operator==(const BlockKey&, const BlockKey&) = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    return std::hash<std::string>{}(k.bytes);
  }
};

}  // namespace

std::uint64_t MptStream::expanded_size() const {
  std::uint64_t total = 0;
  for (const MptExecution& ex : executions) {
    total += dictionary[ex.block_id].slots.size();
  }
  return total;
}

std::uint64_t MptStream::compact_bytes() const {
  std::uint64_t bytes = 0;
  for (const MptBlock& b : dictionary) bytes += b.slots.size() * 9;
  bytes += executions.size() * 8;
  bytes += dynamic_addrs.size() * 4;
  return bytes;
}

MptStream compact(TraceSource& source) {
  MptStream stream;
  std::unordered_map<BlockKey, std::uint32_t, BlockKeyHash> dict_index;

  MptBlock current;
  std::uint32_t entry_addr = 0;
  bool have_block = false;

  auto flush = [&]() {
    if (!have_block) return;
    BlockKey key = BlockKey::from(current);
    auto [it, inserted] =
        dict_index.try_emplace(std::move(key),
                               static_cast<std::uint32_t>(stream.dictionary.size()));
    if (inserted) stream.dictionary.push_back(current);
    stream.executions.push_back(MptExecution{it->second, entry_addr});
    current.slots.clear();
    entry_addr = 0;
    have_block = false;
  };

  Event e;
  while (source.next(e)) {
    if (e.op == Op::kIFetch && have_block &&
        !(current.slots.size() == 0)) {
      // A new ifetch starts a new block unless the current block is empty.
      flush();
    }
    if (!have_block) {
      have_block = true;
      entry_addr = (e.op == Op::kIFetch) ? e.addr : 0;
    }
    MptSlot slot;
    slot.op = e.op;
    slot.gap = e.gap;
    if (e.op == Op::kIFetch) {
      slot.code_offset = e.addr - entry_addr;
    } else {
      stream.dynamic_addrs.push_back(e.addr);
    }
    current.slots.push_back(slot);
  }
  flush();
  return stream;
}

bool MptExpander::next(Event& out) {
  while (true) {
    if (exec_pos_ >= stream_->executions.size()) return false;
    const MptExecution& ex = stream_->executions[exec_pos_];
    const MptBlock& block = stream_->dictionary[ex.block_id];
    if (slot_pos_ >= block.slots.size()) {
      ++exec_pos_;
      slot_pos_ = 0;
      continue;
    }
    const MptSlot& slot = block.slots[slot_pos_++];
    out.op = slot.op;
    out.gap = slot.gap;
    if (slot.op == Op::kIFetch) {
      out.addr = ex.entry_addr + slot.code_offset;
    } else {
      SYNCPAT_ASSERT(dyn_pos_ < stream_->dynamic_addrs.size());
      out.addr = stream_->dynamic_addrs[dyn_pos_++];
    }
    return true;
  }
}

void MptExpander::reset() {
  exec_pos_ = 0;
  slot_pos_ = 0;
  dyn_pos_ = 0;
}

}  // namespace syncpat::trace

// Streaming trace sources.
//
// Paper-scale traces run to millions of references per processor, so nothing
// in the pipeline requires a materialized trace: the simulator, the ideal
// analyzer, and the trace writers all consume a TraceSource one event at a
// time.  Vector-backed sources exist for tests, file loads, and the kernel
// generators (which record as they execute).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/event.hpp"

namespace syncpat::trace {

/// One processor's event stream.  reset() rewinds to the beginning so a
/// trace can be analyzed ("ideal" pass) and then simulated.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Fills `out` with the next event and returns true, or returns false at
  /// end of trace.
  virtual bool next(Event& out) = 0;
  virtual void reset() = 0;
};

/// Vector-backed source.
class VectorTraceSource final : public TraceSource {
 public:
  VectorTraceSource() = default;
  explicit VectorTraceSource(std::vector<Event> events)
      : events_(std::move(events)) {}

  bool next(Event& out) override {
    if (pos_ >= events_.size()) return false;
    out = events_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::vector<Event>& events() { return events_; }

 private:
  std::vector<Event> events_;
  std::size_t pos_ = 0;
};

/// A whole traced program: one source per processor plus a name.
struct ProgramTrace {
  std::string name;
  std::vector<std::unique_ptr<TraceSource>> per_proc;

  [[nodiscard]] std::size_t num_procs() const { return per_proc.size(); }
  void reset_all() {
    for (auto& s : per_proc) s->reset();
  }
};

/// Drains a source into a vector (test/tool helper; not for paper-scale use).
[[nodiscard]] inline std::vector<Event> collect(TraceSource& source) {
  std::vector<Event> out;
  Event e;
  while (source.next(e)) out.push_back(e);
  return out;
}

}  // namespace syncpat::trace

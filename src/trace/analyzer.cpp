#include "trace/analyzer.hpp"

#include <algorithm>

#include "trace/address_map.hpp"
#include "util/assert.hpp"

namespace syncpat::trace {
namespace {

double avg_over(const std::vector<IdealProcStats>& v,
                std::uint64_t IdealProcStats::*field) {
  if (v.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : v) total += static_cast<double>(s.*field);
  return total / static_cast<double>(v.size());
}

}  // namespace

double IdealProgramStats::avg_work_cycles() const {
  return avg_over(per_proc, &IdealProcStats::work_cycles);
}
double IdealProgramStats::avg_refs_all() const {
  return avg_over(per_proc, &IdealProcStats::refs_all);
}
double IdealProgramStats::avg_refs_data() const {
  return avg_over(per_proc, &IdealProcStats::refs_data);
}
double IdealProgramStats::avg_refs_shared() const {
  return avg_over(per_proc, &IdealProcStats::refs_shared);
}
double IdealProgramStats::avg_lock_pairs() const {
  return avg_over(per_proc, &IdealProcStats::lock_pairs);
}
double IdealProgramStats::avg_nested_pairs() const {
  return avg_over(per_proc, &IdealProcStats::nested_pairs);
}
double IdealProgramStats::avg_held_cycles() const {
  return avg_over(per_proc, &IdealProcStats::held_cycles);
}
double IdealProgramStats::avg_pair_hold_cycles() const {
  return avg_over(per_proc, &IdealProcStats::pair_hold_cycles);
}

double IdealProgramStats::avg_hold_per_pair() const {
  const double pairs = avg_lock_pairs();
  return pairs > 0.0 ? avg_pair_hold_cycles() / pairs : 0.0;
}

double IdealProgramStats::held_time_fraction() const {
  const double work = avg_work_cycles();
  return work > 0.0 ? avg_held_cycles() / work : 0.0;
}

IdealProcStats analyze_proc(TraceSource& source) {
  IdealProcStats stats;

  // Locks currently held: (lock address, acquisition time).  Hold time for a
  // pair spans acquire to matching release; nested holds are counted in full
  // for each lock, but held_cycles accumulates wall (work-cycle) time during
  // which at least one lock was held, matching the paper's "% of Time"
  // semantics where nested sections are not double counted.
  struct Held {
    std::uint32_t addr;
    std::uint64_t acquired_at;
  };
  std::vector<Held> held;
  std::uint64_t now = 0;               // work-cycle clock
  std::uint64_t locked_since = 0;      // valid when !held.empty()

  Event e;
  while (source.next(e)) {
    now += e.gap;
    switch (e.op) {
      case Op::kIFetch:
        ++stats.refs_all;
        break;
      case Op::kLoad:
      case Op::kStore:
        ++stats.refs_all;
        ++stats.refs_data;
        if (e.op == Op::kStore) ++stats.stores;
        if (AddressMap::is_shared_data(e.addr)) {
          ++stats.refs_shared;
          if (e.op == Op::kStore) ++stats.shared_stores;
        }
        break;
      case Op::kLockAcq:
        if (!held.empty()) {
          ++stats.nested_pairs;
        } else {
          locked_since = now;
        }
        held.push_back(Held{e.addr, now});
        break;
      case Op::kBarrier:
        ++stats.barriers;
        break;
      case Op::kLockRel: {
        // Releases match the most recent acquire of the same lock.
        auto it = std::find_if(held.rbegin(), held.rend(),
                               [&](const Held& h) { return h.addr == e.addr; });
        SYNCPAT_ASSERT_MSG(it != held.rend(),
                           "trace releases a lock it does not hold");
        stats.pair_hold_cycles += now - it->acquired_at;
        held.erase(std::next(it).base());
        ++stats.lock_pairs;
        if (held.empty()) stats.held_cycles += now - locked_since;
        break;
      }
    }
  }
  stats.work_cycles = now;
  SYNCPAT_ASSERT_MSG(held.empty(), "trace ends while holding a lock");
  return stats;
}

IdealProgramStats analyze_program(ProgramTrace& program) {
  IdealProgramStats stats;
  stats.name = program.name;
  stats.num_procs = static_cast<std::uint32_t>(program.num_procs());
  program.reset_all();
  for (auto& source : program.per_proc) {
    stats.per_proc.push_back(analyze_proc(*source));
  }
  program.reset_all();
  return stats;
}

}  // namespace syncpat::trace

#include "trace/address_map.hpp"

#include "util/assert.hpp"

namespace syncpat::trace {

const char* region_name(Region r) {
  switch (r) {
    case Region::kCode: return "code";
    case Region::kPrivate: return "private";
    case Region::kShared: return "shared";
    case Region::kLock: return "lock";
  }
  return "?";
}

Region AddressMap::classify(std::uint32_t addr) {
  if (addr < kPrivateBase) return Region::kCode;
  if (addr < kSharedBase) return Region::kPrivate;
  if (addr < kLockBase) return Region::kShared;
  return Region::kLock;
}

std::uint32_t AddressMap::private_addr(std::uint32_t proc, std::uint32_t offset) {
  SYNCPAT_ASSERT(offset < kPrivateSegment);
  const std::uint32_t base = kPrivateBase + proc * kPrivateSegment;
  SYNCPAT_ASSERT(base + offset < kSharedBase);
  return base + offset;
}

std::uint32_t AddressMap::shared_addr(std::uint32_t offset) {
  SYNCPAT_ASSERT(kSharedBase + offset < kLockBase);
  return kSharedBase + offset;
}

std::uint32_t AddressMap::lock_addr(std::uint32_t lock_id) {
  return kLockBase + lock_id * kLockStride;
}

std::uint32_t AddressMap::barrier_addr(std::uint32_t barrier_id) {
  return kLockBase + (1u << 25) + barrier_id * kLockStride;
}

std::uint32_t AddressMap::lock_id(std::uint32_t addr) {
  SYNCPAT_ASSERT(classify(addr) == Region::kLock);
  return (addr - kLockBase) / kLockStride;
}

std::uint32_t AddressMap::private_owner(std::uint32_t addr) {
  SYNCPAT_ASSERT(classify(addr) == Region::kPrivate);
  return (addr - kPrivateBase) / kPrivateSegment;
}

}  // namespace syncpat::trace

#include "trace/address_map.hpp"

#include "util/assert.hpp"

namespace syncpat::trace {

const char* region_name(Region r) {
  switch (r) {
    case Region::kCode: return "code";
    case Region::kPrivate: return "private";
    case Region::kShared: return "shared";
    case Region::kLock: return "lock";
  }
  return "?";
}

Region AddressMap::classify(std::uint32_t addr) {
  if (addr < kPrivateBase) return Region::kCode;
  if (addr < kSharedBase) return Region::kPrivate;
  if (addr < kLockBase) return Region::kShared;
  return Region::kLock;
}

std::uint32_t AddressMap::private_addr(std::uint32_t proc, std::uint32_t offset) {
  // The private region holds 64 macro-segments of 16 MiB.  Historically one
  // macro-segment per processor, which overflowed the region (and uint32
  // arithmetic) for proc >= 64 — the machine could never run at large P.
  // Processors beyond 63 now interleave into 256 KiB sub-segments of the
  // macro-segments: proc < 64 keeps its full original segment (bit-identical
  // addresses for every historical configuration), proc = 64q + r (q >= 1)
  // lives at sub-segment q of macro-segment r.  Working sets above 256 KiB
  // per processor are only representable below P = 64; the generators use
  // at most a few KiB of private-hot data.
  if (proc < kMacroSegments) {
    SYNCPAT_ASSERT(offset < kPrivateSegment);
    return kPrivateBase + proc * kPrivateSegment + offset;
  }
  SYNCPAT_ASSERT_MSG(proc < kMaxProcs,
                     "private address space supports at most 4096 processors");
  SYNCPAT_ASSERT_MSG(offset < kPrivateSubSegment,
                     "per-processor private working set above 256 KiB needs "
                     "fewer than 64 processors");
  return kPrivateBase + (proc % kMacroSegments) * kPrivateSegment +
         (proc / kMacroSegments) * kPrivateSubSegment + offset;
}

std::uint32_t AddressMap::shared_addr(std::uint32_t offset) {
  SYNCPAT_ASSERT(kSharedBase + offset < kLockBase);
  return kSharedBase + offset;
}

std::uint32_t AddressMap::lock_addr(std::uint32_t lock_id) {
  return kLockBase + lock_id * kLockStride;
}

std::uint32_t AddressMap::barrier_addr(std::uint32_t barrier_id) {
  return kLockBase + (1u << 25) + barrier_id * kLockStride;
}

std::uint32_t AddressMap::lock_id(std::uint32_t addr) {
  SYNCPAT_ASSERT(classify(addr) == Region::kLock);
  return (addr - kLockBase) / kLockStride;
}

std::uint32_t AddressMap::private_owner(std::uint32_t addr) {
  SYNCPAT_ASSERT(classify(addr) == Region::kPrivate);
  const std::uint32_t macro = (addr - kPrivateBase) / kPrivateSegment;
  const std::uint32_t sub =
      ((addr - kPrivateBase) % kPrivateSegment) / kPrivateSubSegment;
  // Sub-segment 0 of macro-segment r is processor r itself (covering every
  // address a sub-64 configuration can generate); higher sub-segments are
  // the interleaved large-P processors.
  return sub * kMacroSegments + macro;
}

}  // namespace syncpat::trace

// Binary trace file format (the "expanded" full-reference form, §2.1).
//
// Layout (little-endian):
//   magic   "SPTR"            4 bytes
//   version u32               currently 1
//   nprocs  u32
//   name    u32 length + bytes
//   per processor: count u64, then `count` packed events
//     event: addr u32, gap u32, op u8
//
// Readers validate the header and fail loudly on truncation; a trace file is
// measurement input and silent corruption would invalidate every table
// derived from it.  All header-declared sizes (processor count, name length,
// per-processor event counts) are bounds-checked against the stream before
// any allocation, so a corrupt file raises TraceIoError rather than OOM.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/source.hpp"

namespace syncpat::trace {

class TraceIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Writes a full program trace.  Sources are drained (and left at EOF).
void write_program_trace(std::ostream& out, const std::string& name,
                         std::vector<TraceSource*> per_proc);

/// Convenience overload draining a ProgramTrace (sources are reset first).
void write_program_trace(std::ostream& out, ProgramTrace& program);

/// Reads a full program trace into vector-backed sources.
[[nodiscard]] ProgramTrace read_program_trace(std::istream& in);

/// File-path convenience wrappers.
void save_program_trace(const std::string& path, ProgramTrace& program);
[[nodiscard]] ProgramTrace load_program_trace(const std::string& path);

}  // namespace syncpat::trace

#include "trace/event.hpp"

#include <cstdio>

namespace syncpat::trace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kIFetch: return "ifetch";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kLockAcq: return "lock";
    case Op::kLockRel: return "unlock";
    case Op::kBarrier: return "barrier";
  }
  return "?";
}

std::string to_string(const Event& e) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "+%u %s 0x%08x", e.gap, op_name(e.op), e.addr);
  return buf;
}

}  // namespace syncpat::trace

// "Ideal" trace analysis (paper §2.1, Tables 1 and 2).
//
// The ideal pass replays a trace with no cache misses, no bus contention and
// no lock contention: time is just the sum of the work-cycle gaps.  From it
// we derive everything the paper's Tables 1 and 2 report: reference counts
// by category, work cycles, lock pairs, nested lock pairs, and lock holding
// times measured in work cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/source.hpp"

namespace syncpat::trace {

/// Per-processor ideal statistics.
struct IdealProcStats {
  std::uint64_t work_cycles = 0;   // sum of gaps
  std::uint64_t refs_all = 0;      // ifetch + load + store
  std::uint64_t refs_data = 0;     // load + store
  std::uint64_t refs_shared = 0;   // data refs to shared/lock regions
  std::uint64_t stores = 0;
  std::uint64_t shared_stores = 0;

  std::uint64_t barriers = 0;      // barrier arrivals
  std::uint64_t lock_pairs = 0;    // completed acquire/release pairs
  std::uint64_t nested_pairs = 0;  // acquired while another lock was held
  /// Union time during which >= 1 lock was held: Table 2 "Total Held" and
  /// "% of Time" (nested sections are not double counted).
  std::uint64_t held_cycles = 0;
  /// Sum of each pair's own acquire-to-release duration: Table 2 "Avg. Held"
  /// is this divided by lock_pairs (nested holds overlap the outer one).
  std::uint64_t pair_hold_cycles = 0;
};

/// Aggregated over all processors (per-processor averages, as the paper's
/// tables present them).
struct IdealProgramStats {
  std::string name;
  std::uint32_t num_procs = 0;
  std::vector<IdealProcStats> per_proc;

  // Averages per processor.
  [[nodiscard]] double avg_work_cycles() const;
  [[nodiscard]] double avg_refs_all() const;
  [[nodiscard]] double avg_refs_data() const;
  [[nodiscard]] double avg_refs_shared() const;
  [[nodiscard]] double avg_lock_pairs() const;
  [[nodiscard]] double avg_nested_pairs() const;
  [[nodiscard]] double avg_held_cycles() const;
  [[nodiscard]] double avg_pair_hold_cycles() const;

  /// Average hold time per lock pair, in cycles (Table 2 "Avg. Held").
  [[nodiscard]] double avg_hold_per_pair() const;
  /// Fraction of work time spent holding at least the outer lock
  /// (Table 2 "% of Time"; total held / work cycles).
  [[nodiscard]] double held_time_fraction() const;
};

/// Analyzes one processor's trace.  The source is drained.
[[nodiscard]] IdealProcStats analyze_proc(TraceSource& source);

/// Analyzes a whole program.  All sources are reset before and after, so the
/// trace remains usable by the simulator.
[[nodiscard]] IdealProgramStats analyze_program(ProgramTrace& program);

}  // namespace syncpat::trace

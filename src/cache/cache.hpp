// Per-processor cache with Illinois-protocol (MESI + cache-to-cache supply)
// coherence state (paper §2.2).
//
// Default geometry matches the Sequent Symmetry Model B model: 64 KB, 2-way
// set associative, 16-byte lines, write-back with write-allocate, LRU
// replacement.  The cache is a pure state machine — all timing lives in the
// bus/memory/simulator layers.
//
// Illinois specifics modeled here:
//  * a read miss filled from memory installs Exclusive (no other cache had
//    the line — otherwise it would have been supplied cache-to-cache);
//  * a read miss supplied by another cache installs Shared;
//  * any cache holding the line supplies it on a snoop read (clean or
//    dirty); a dirty supplier simultaneously updates memory;
//  * write hit on Exclusive is silent (-> Modified); write hit on Shared
//    requires a bus invalidation (upgrade) before the write is done.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace syncpat::cache {

enum class LineState : std::uint8_t {
  kInvalid = 0,
  kShared,     // clean, possibly in other caches
  kExclusive,  // clean, only copy (Illinois "valid-exclusive")
  kModified,   // dirty, only copy
  kPending,    // allocated, fill in flight
};

[[nodiscard]] const char* state_name(LineState s);

enum class AccessClass : std::uint8_t { kIFetch, kRead, kWrite };

/// Write policy (§4.2 discusses write-through as the regime where weak
/// ordering pays off).  Write-back is the paper's machine.
enum class WritePolicy : std::uint8_t { kWriteBack, kWriteThrough };

[[nodiscard]] const char* write_policy_name(WritePolicy p);

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t line_bytes = 16;
  std::uint32_t associativity = 2;

  [[nodiscard]] std::uint32_t num_sets() const {
    return size_bytes / (line_bytes * associativity);
  }
  [[nodiscard]] std::uint32_t line_addr(std::uint32_t addr) const {
    return addr & ~(line_bytes - 1);
  }
};

/// Result of a processor-side access attempt.
struct AccessResult {
  bool hit = false;
  // Write hit on a Shared line: data present but an invalidation of other
  // copies must complete before the write is performed.
  bool needs_upgrade = false;
  // Only set by access_or_pending(): the line has a fill in flight, nothing
  // was counted or touched — merge into or wait on the in-flight transaction.
  bool pending = false;
};

/// Result of a bus-side snoop.
struct SnoopResult {
  bool had_line = false;   // line was present (non-pending)
  bool was_dirty = false;  // line was Modified (memory must be updated)
  bool invalidated = false;
};

struct CacheStats {
  std::uint64_t ifetch_hits = 0, ifetch_misses = 0;
  std::uint64_t read_hits = 0, read_misses = 0;
  std::uint64_t write_hits = 0, write_misses = 0;
  std::uint64_t upgrades = 0;     // write hits that needed an invalidation
  std::uint64_t writebacks = 0;   // dirty evictions
  std::uint64_t invalidations_received = 0;
  std::uint64_t supplies = 0;     // cache-to-cache supplies provided

  [[nodiscard]] double write_hit_ratio() const {
    const double total = static_cast<double>(write_hits + write_misses);
    return total > 0.0 ? static_cast<double>(write_hits) / total : 0.0;
  }
  [[nodiscard]] double read_hit_ratio() const {
    const double total =
        static_cast<double>(ifetch_hits + ifetch_misses + read_hits + read_misses);
    return total > 0.0
               ? static_cast<double>(ifetch_hits + read_hits) / total
               : 0.0;
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }

  /// Processor-side access.  On a hit the LRU is updated and (for writes on
  /// E/M lines) the state silently moves to Modified; a write hit on Shared
  /// reports needs_upgrade and leaves the state unchanged until
  /// complete_upgrade().  On a miss nothing changes (caller then allocates).
  AccessResult access(std::uint32_t addr, AccessClass cls);

  /// As access(), except a line with a fill in flight reports `pending`
  /// (counting nothing and touching nothing) instead of registering a miss.
  /// One tag lookup where the processor's issue path previously needed a
  /// state() probe followed by access().
  AccessResult access_or_pending(std::uint32_t addr, AccessClass cls);

  /// Reserves a way for an incoming line: evicts the LRU non-pending way
  /// and marks the new line Pending.  Returns the dirty victim's line
  /// address if a write-back is required, nullopt otherwise.  Fails (returns
  /// false via `ok`) when every way in the set is Pending.
  struct AllocateResult {
    bool ok = false;
    std::optional<std::uint32_t> writeback_line;
  };
  AllocateResult allocate(std::uint32_t line_addr);

  /// Completes a fill started by allocate().
  void fill(std::uint32_t line_addr, LineState state);

  /// Abandons a Pending reservation (used if an in-flight fill is obsoleted).
  void cancel_pending(std::uint32_t line_addr);

  /// Upgrade (bus invalidation we requested) completed: Shared -> Modified.
  /// If the line was invalidated while the upgrade was queued the caller
  /// must instead turn the write into a full miss; returns false then.
  bool complete_upgrade(std::uint32_t line_addr);

  /// Atomic operation completed on a line we already hold (forced lock
  /// transactions): the line becomes Modified regardless of S/E/M.
  void force_modified(std::uint32_t line_addr);

  /// Write-through store: counts the hit/miss, touches LRU, and leaves the
  /// coherence state unchanged (the write itself goes to memory on the bus;
  /// no line is ever dirtied and no allocation happens on a miss).
  /// Returns true on a hit.
  bool access_write_through(std::uint32_t addr);

  /// Bus-side snoop for a transaction issued by another cache.
  /// `exclusive_request` is true for ReadX/Upgrade (requester wants
  /// ownership) and false for Read.
  SnoopResult snoop(std::uint32_t line_addr, bool exclusive_request);

  /// Current state of a line (kInvalid if absent).
  [[nodiscard]] LineState state(std::uint32_t addr) const;

  /// Coherence-transition hook for the tracing layer: called as
  /// hook(ctx, line_addr, from, to) on every observable state change (silent
  /// E->M upgrades, fills, upgrades, snoops, evictions).  Pending-state
  /// bookkeeping transitions are not reported.  Null (the default) costs one
  /// branch per transition.
  using TransitionHook = void (*)(void* ctx, std::uint32_t line_addr,
                                  LineState from, LineState to);
  void set_transition_hook(TransitionHook hook, void* ctx) {
    hook_ = hook;
    hook_ctx_ = ctx;
  }

  /// Visits every resident (non-Invalid) line as fn(line_addr, state).
  /// Used by the invariant checker's cross-cache MESI sweeps.
  template <typename Fn>
  void for_each_valid_line(Fn&& fn) const {
    const std::uint32_t num_sets = config_.num_sets();
    for (std::uint32_t set = 0; set < num_sets; ++set) {
      for (std::uint32_t way = 0; way < config_.associativity; ++way) {
        const Line& line = lines_[set * config_.associativity + way];
        if (line.state == LineState::kInvalid) continue;
        const std::uint32_t line_addr =
            (line.tag * num_sets + set) * config_.line_bytes;
        fn(line_addr, line.state);
      }
    }
  }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  struct Line {
    std::uint32_t tag = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t lru = 0;
  };

  // line_bytes and num_sets are asserted powers of two, so the set/tag split
  // reduces to shifts and a mask (this is the hottest path in the simulator).
  [[nodiscard]] std::uint32_t set_index(std::uint32_t addr) const {
    return (addr >> line_shift_) & set_mask_;
  }
  [[nodiscard]] std::uint32_t tag_of(std::uint32_t addr) const {
    return addr >> tag_shift_;
  }
  [[nodiscard]] Line* find(std::uint32_t addr);
  [[nodiscard]] const Line* find(std::uint32_t addr) const;
  AccessResult access_line(Line* line, std::uint32_t addr, AccessClass cls);
  void notify_transition(std::uint32_t line_addr, LineState from,
                         LineState to) {
    if (hook_ != nullptr && from != to) hook_(hook_ctx_, line_addr, from, to);
  }

  CacheConfig config_;
  std::uint32_t line_shift_ = 0;
  std::uint32_t set_mask_ = 0;
  std::uint32_t tag_shift_ = 0;
  std::vector<Line> lines_;  // num_sets * associativity, set-major
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
  TransitionHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
};

}  // namespace syncpat::cache

#include "cache/cache.hpp"

#include <bit>

namespace syncpat::cache {

const char* state_name(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kExclusive: return "E";
    case LineState::kModified: return "M";
    case LineState::kPending: return "P";
  }
  return "?";
}

Cache::Cache(const CacheConfig& config) : config_(config) {
  SYNCPAT_ASSERT(std::has_single_bit(config_.line_bytes));
  SYNCPAT_ASSERT(config_.associativity > 0);
  SYNCPAT_ASSERT(config_.size_bytes % (config_.line_bytes * config_.associativity) ==
                 0);
  SYNCPAT_ASSERT(std::has_single_bit(config_.num_sets()));
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config_.line_bytes));
  set_mask_ = config_.num_sets() - 1;
  tag_shift_ =
      line_shift_ + static_cast<std::uint32_t>(std::countr_zero(config_.num_sets()));
  lines_.resize(static_cast<std::size_t>(config_.num_sets()) *
                config_.associativity);
}

Cache::Line* Cache::find(std::uint32_t addr) {
  const std::uint32_t set = set_index(addr);
  const std::uint32_t tag = tag_of(addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = base[w];
    if (line.state != LineState::kInvalid && line.tag == tag) return &line;
  }
  return nullptr;
}

const Cache::Line* Cache::find(std::uint32_t addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

AccessResult Cache::access(std::uint32_t addr, AccessClass cls) {
  return access_line(find(addr), addr, cls);
}

AccessResult Cache::access_or_pending(std::uint32_t addr, AccessClass cls) {
  Line* line = find(addr);
  if (line != nullptr && line->state == LineState::kPending) {
    AccessResult result;
    result.pending = true;
    return result;
  }
  return access_line(line, addr, cls);
}

AccessResult Cache::access_line(Line* line, std::uint32_t addr,
                                AccessClass cls) {
  const bool present =
      line != nullptr && line->state != LineState::kPending;
  AccessResult result;
  if (present) {
    result.hit = true;
    line->lru = ++lru_clock_;
    if (cls == AccessClass::kWrite) {
      switch (line->state) {
        case LineState::kModified:
          break;
        case LineState::kExclusive:
          line->state = LineState::kModified;  // silent upgrade (Illinois)
          notify_transition(config_.line_addr(addr), LineState::kExclusive,
                            LineState::kModified);
          break;
        case LineState::kShared:
          result.needs_upgrade = true;  // invalidation required first
          break;
        default:
          SYNCPAT_ASSERT(false);
      }
    }
  }

  switch (cls) {
    case AccessClass::kIFetch:
      result.hit ? ++stats_.ifetch_hits : ++stats_.ifetch_misses;
      break;
    case AccessClass::kRead:
      result.hit ? ++stats_.read_hits : ++stats_.read_misses;
      break;
    case AccessClass::kWrite:
      result.hit ? ++stats_.write_hits : ++stats_.write_misses;
      if (result.needs_upgrade) ++stats_.upgrades;
      break;
  }
  return result;
}

Cache::AllocateResult Cache::allocate(std::uint32_t line_addr) {
  SYNCPAT_ASSERT(config_.line_addr(line_addr) == line_addr);
  SYNCPAT_ASSERT_MSG(find(line_addr) == nullptr,
                     "allocate() for a line that is already present");
  const std::uint32_t set = set_index(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.associativity];

  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = base[w];
    if (line.state == LineState::kPending) continue;
    if (line.state == LineState::kInvalid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru < victim->lru) victim = &line;
  }

  AllocateResult result;
  if (victim == nullptr) return result;  // every way pending: caller retries

  if (victim->state != LineState::kInvalid) {
    const std::uint32_t victim_addr =
        (victim->tag * config_.num_sets() + set) * config_.line_bytes;
    if (victim->state == LineState::kModified) {
      ++stats_.writebacks;
      result.writeback_line = victim_addr;
    }
    notify_transition(victim_addr, victim->state, LineState::kInvalid);
  }
  victim->tag = tag_of(line_addr);
  victim->state = LineState::kPending;
  victim->lru = ++lru_clock_;
  result.ok = true;
  return result;
}

void Cache::fill(std::uint32_t line_addr, LineState state) {
  const std::uint32_t set = set_index(line_addr);
  const std::uint32_t tag = tag_of(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = base[w];
    if (line.state == LineState::kPending && line.tag == tag) {
      SYNCPAT_ASSERT(state != LineState::kInvalid && state != LineState::kPending);
      line.state = state;
      line.lru = ++lru_clock_;
      notify_transition(line_addr, LineState::kPending, state);
      return;
    }
  }
  SYNCPAT_ASSERT_MSG(false, "fill() without a matching pending allocation");
}

void Cache::cancel_pending(std::uint32_t line_addr) {
  const std::uint32_t set = set_index(line_addr);
  const std::uint32_t tag = tag_of(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Line& line = base[w];
    if (line.state == LineState::kPending && line.tag == tag) {
      line.state = LineState::kInvalid;
      return;
    }
  }
  SYNCPAT_ASSERT_MSG(false, "cancel_pending() without a pending allocation");
}

bool Cache::complete_upgrade(std::uint32_t line_addr) {
  Line* line = find(line_addr);
  if (line == nullptr || line->state == LineState::kPending) return false;
  SYNCPAT_ASSERT_MSG(line->state == LineState::kShared,
                     "upgrade completion on a non-Shared line");
  line->state = LineState::kModified;
  line->lru = ++lru_clock_;
  notify_transition(line_addr, LineState::kShared, LineState::kModified);
  return true;
}

const char* write_policy_name(WritePolicy p) {
  switch (p) {
    case WritePolicy::kWriteBack: return "write-back";
    case WritePolicy::kWriteThrough: return "write-through";
  }
  return "?";
}

bool Cache::access_write_through(std::uint32_t addr) {
  Line* line = find(addr);
  const bool hit = line != nullptr && line->state != LineState::kPending;
  if (hit) line->lru = ++lru_clock_;
  hit ? ++stats_.write_hits : ++stats_.write_misses;
  return hit;
}

void Cache::force_modified(std::uint32_t line_addr) {
  Line* line = find(line_addr);
  SYNCPAT_ASSERT_MSG(line != nullptr && line->state != LineState::kPending,
                     "force_modified on an absent line");
  const LineState old = line->state;
  line->state = LineState::kModified;
  line->lru = ++lru_clock_;
  notify_transition(line_addr, old, LineState::kModified);
}

SnoopResult Cache::snoop(std::uint32_t line_addr, bool exclusive_request) {
  SnoopResult result;
  Line* line = find(line_addr);
  if (line == nullptr || line->state == LineState::kPending) return result;
  result.had_line = true;
  result.was_dirty = line->state == LineState::kModified;
  const LineState old = line->state;
  if (exclusive_request) {
    line->state = LineState::kInvalid;
    result.invalidated = true;
    ++stats_.invalidations_received;
  } else {
    // Read snoop: every Illinois cache supplies; clean or dirty moves to
    // Shared (a dirty supplier's data also updates memory — the bus layer
    // models that transfer).
    line->state = LineState::kShared;
    ++stats_.supplies;
  }
  notify_transition(line_addr, old, line->state);
  return result;
}

LineState Cache::state(std::uint32_t addr) const {
  const Line* line = find(addr);
  return line != nullptr ? line->state : LineState::kInvalid;
}

}  // namespace syncpat::cache

#include "model/predictor.hpp"

#include <algorithm>

namespace syncpat::model {

double miss_cycles(const core::MachineConfig& cfg) {
  // Arbitration (the request cannot be granted the cycle it is issued) +
  // address phase + memory service + moving the line across the bus.
  double m = 1.0 + 1.0 + static_cast<double>(cfg.memory.access_cycles) +
             static_cast<double>(cfg.line_transfer_cycles());
  if (cfg.model == core::MemModelKind::kDsm && cfg.dsm.nodes > 1) {
    // Home nodes are line-interleaved, so a miss is remote with probability
    // (nodes-1)/nodes.
    const double remote_frac =
        static_cast<double>(cfg.dsm.nodes - 1) / cfg.dsm.nodes;
    m += remote_frac * static_cast<double>(cfg.dsm.remote_access_cycles);
  }
  return m;
}

double handoff_cycles(const core::MachineConfig& cfg, sync::SchemeKind scheme,
                      double waiters) {
  const double m = miss_cycles(cfg);
  const double w = std::max(0.0, waiters);
  // One bus transaction that never touches memory (grant, upgrade-like).
  const double t_bus = 1.0 + static_cast<double>(cfg.line_transfer_cycles());
  switch (scheme) {
    case sync::SchemeKind::kQueuing:
      // The paper's idealised queuing lock: the release *is* the grant — a
      // directed notify, no memory round trip (Table 6 quotes ~1.2-1.5).
      return t_bus;
    case sync::SchemeKind::kQueuingExact:
      // §2.4's exact variant adds two real bus transactions per hand-off.
      return t_bus + 2.0 * t_bus;
    case sync::SchemeKind::kTtas:
      // Broadcast invalidate wakes every spinner; the herd's re-reads
      // serialize on the bus ahead of the winner's test&set.
      return m * (1.0 + 0.5 * w);
    case sync::SchemeKind::kTas: {
      // The transfer itself is one winning test&set (the retry storm hurts
      // the *parallel* path through bus saturation, handled in predict()).
      double h = 2.0 * m;
      if (cfg.bus_discipline == bus::DisciplineKind::kFixedPriority) {
        // Under static priority the retry storm outranks the holder's
        // release write until the aging escape promotes it (and the winning
        // high-id waiter's test&set can starve the same way right after),
        // so a contended hand-off costs on the order of two escape windows.
        h += 2.0 *
             static_cast<double>(
                 bus::FixedPriorityDiscipline::kStarvationEscapeCycles) *
             std::min(1.0, w);
      }
      return h;
    }
    case sync::SchemeKind::kTasBackoff:
      // The winner is asleep in its backoff window when the lock frees;
      // the window roughly doubles per waiter present (capped far below
      // the scheme's 1024-cycle retry cap since waiters desynchronise).
      return std::min(512.0, m * (1.0 + w));
    case sync::SchemeKind::kTicket:
      // now-serving broadcast: one invalidation plus the waiters' refills,
      // but only the successor's read is on the critical path — the rest
      // overlap behind it.
      return m * (1.0 + 0.25 * w);
    case sync::SchemeKind::kAnderson:
      // Targeted: the release writes exactly the successor's slot (one
      // miss), the successor re-reads it (one miss).
      return 2.0 * m;
    case sync::SchemeKind::kMcs:
      // Targeted like Anderson: write the successor's node, successor
      // re-reads it.
      return 2.0 * m;
    case sync::SchemeKind::kClh: {
      // One transaction cheaper than MCS on the release path (the releaser
      // writes its *own* node, often still exclusive — a silent store),
      // but each waiter spins on its predecessor's node line: under DSM
      // that line is homed by the predecessor's node, so the successor's
      // re-read is remote with probability (nodes-1)/nodes *again* on top
      // of the average already folded into m.
      double h = 1.5 * m;
      if (cfg.model == core::MemModelKind::kDsm && cfg.dsm.nodes > 1) {
        const double remote_frac =
            static_cast<double>(cfg.dsm.nodes - 1) / cfg.dsm.nodes;
        h += 0.5 * remote_frac *
             static_cast<double>(cfg.dsm.remote_access_cycles);
      }
      return h;
    }
  }
  return m;
}

Prediction predict(const core::MachineConfig& cfg, const Calibration& calib) {
  Prediction p;
  const double procs = static_cast<double>(cfg.num_procs);
  const double m = miss_cycles(cfg);
  p.parallel_bound = static_cast<double>(calib.run_cycles);
  double bus_demand = calib.bus_busy_cycles;
  if (cfg.num_procs > 1) {
    // Sharing surcharge: each shared write that hit in cache at P = 1 is an
    // ownership miss at P > 1 (invalidate + the victims' refills).
    const double sharing = calib.shared_writes_per_proc * m;
    p.parallel_bound += sharing;
    bus_demand += sharing;
  }

  if (calib.acquisitions == 0 || cfg.num_procs <= 1) {
    // No locks (or no parallelism): the parallel bound is the whole story.
    p.run_time = p.parallel_bound;
    p.handoff_cost =
        handoff_cycles(cfg, cfg.lock_scheme, /*waiters=*/0.0);
    return p;
  }

  const double k = static_cast<double>(calib.acquisitions);  // per proc
  const double hot_acqs =
      k * procs * std::clamp(calib.dominant_fraction, 0.0, 1.0);
  const double c = calib.hold_mean;
  // Parallel gap per lock pair: everything in the P=1 run that was not a
  // critical section, spread over the pairs.
  const double n =
      std::max(0.0, (static_cast<double>(calib.run_cycles) - k * c) / k);

  // Expected waiters from the saturation balance: a processor spends C+H
  // inside the serial chain and N outside it, so of the other P-1
  // processors, the fraction of time not covered by the gap queues up.
  // (Self-consistent to first order with H evaluated at the uncontended
  // waiter count; one fixed-point refinement is enough — H varies slowly.)
  double h = handoff_cycles(cfg, cfg.lock_scheme, 0.0);
  double waiters =
      std::clamp((procs - 1.0) * (c + h) / std::max(1.0, c + h + n), 0.0,
                 procs - 1.0);
  h = handoff_cycles(cfg, cfg.lock_scheme, waiters);
  waiters =
      std::clamp((procs - 1.0) * (c + h) / std::max(1.0, c + h + n), 0.0,
                 procs - 1.0);

  p.handoff_cost = h;
  p.expected_waiters = waiters;
  p.serial_bound = hot_acqs * (c + h);
  p.bus_bound = procs * bus_demand;

  if (cfg.lock_scheme == sync::SchemeKind::kTas) {
    // Plain test&set floods the bus with retries while anyone waits: every
    // waiter's retry stream is pure bus demand the P=1 calibration never
    // saw.
    p.bus_bound *= 1.0 + 0.5 * waiters;
  }

  p.run_time =
      std::max({p.serial_bound, p.parallel_bound, p.bus_bound});
  p.saturated = p.run_time == p.serial_bound &&
                p.serial_bound > p.parallel_bound;
  return p;
}

}  // namespace syncpat::model

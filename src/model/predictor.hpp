// Analytic lock-throughput predictor.
//
// Closed-form per-scheme run-time and waiter prediction in the style of
// Aksenov, Alistarh & Kuznetsov ("Performance prediction for coarse-grained
// locking"): measure the critical-section length C and the parallel gap N
// once on a single thread, then predict the P-processor run time from three
// bounds that need no further simulation —
//
//   * the parallel bound: every processor runs its own P=1 path
//     concurrently, so the run cannot finish faster than one processor's
//     serial time;
//   * the bus bound: the machine has one shared bus, so the run cannot
//     finish faster than P x (one processor's bus-busy cycles);
//   * the serial bound: the hottest lock admits one holder at a time, so
//     the run cannot finish faster than (its acquisitions) x (C + H),
//     where H is the scheme's hand-off cost — the only term where lock
//     schemes differ.
//
// The predicted run time is the largest bound; a winning serial bound
// classifies the configuration as contended (saturated).  H is derived from
// MachineConfig alone: a coherence miss costs arbitration + memory access +
// line transfer, and each scheme pays a characteristic number of such
// misses per hand-off (targeted-invalidation schemes a constant ~2, the
// broadcast schemes a term growing with the expected waiter count, backoff
// an idle window).  Under the DSM cost model every miss adds the
// remote-home penalty with probability (nodes-1)/nodes; CLH additionally
// pays it on the spin line (each waiter spins on its *predecessor's* node,
// which is rarely home-local, where MCS waiters spin on their own).
//
// Accuracy expectations (see DESIGN.md "Predictor error regimes"): the
// model tracks the simulator within tens of percent in the two regimes the
// bounds represent, and degrades in the crossover region where neither
// bound dominates — report/model_validation.cpp measures exactly this over
// the fuzz corpus, and the model-smoke tier-1 test pins the median error
// per scheme.
#pragma once

#include <cstdint>

#include "core/machine_config.hpp"
#include "sync/scheme_factory.hpp"

namespace syncpat::model {

/// Single-threaded calibration measurements — Aksenov et al.'s methodology:
/// run the same per-processor workload once at P = 1 (no contention, no
/// sharing misses from other processors) and read these off the simulation
/// result.  Everything else in the prediction is closed form.
struct Calibration {
  std::uint64_t run_cycles = 0;    // P=1 run time of one processor's load
  std::uint64_t acquisitions = 0;  // lock pairs one processor executes
  double hold_mean = 0.0;          // mean critical-section cycles (C)
  /// Bus cycles one processor's traffic keeps the bus busy at P=1
  /// (bus_utilization x run_cycles).  Feeds the bandwidth bound: the one
  /// shared bus must carry P processors' worth of this demand.
  double bus_busy_cycles = 0.0;
  /// The hottest lock's share of acquisitions (1.0 = a single lock).  Only
  /// the hottest lock's chain is a serial bound; independent locks
  /// hand off concurrently.
  double dominant_fraction = 1.0;
  /// Writes to shared data one processor issues (workload descriptor, not
  /// simulation: refs x data fraction x shared fraction x write fraction).
  /// At P = 1 these hit in cache; at P > 1 each is an ownership miss that
  /// also invalidates the other sharers — traffic the calibration run
  /// cannot see, charged closed-form in predict().
  double shared_writes_per_proc = 0.0;
};

struct Prediction {
  double run_time = 0.0;         // max of the three bounds
  double parallel_bound = 0.0;   // one processor's own path
  double serial_bound = 0.0;     // A_hot x (C + H): the hot lock's chain
  double bus_bound = 0.0;        // P x per-proc bus demand on the one bus
  double handoff_cost = 0.0;     // H for this scheme at this machine (cycles)
  double expected_waiters = 0.0; // predicted waiters at a hand-off
  bool saturated = false;        // the serial bound decided run_time
};

/// One coherence-miss service time on this machine: bus arbitration +
/// request phase + memory access + line transfer, plus the expected DSM
/// remote-home penalty when the dsm cost model is active.
[[nodiscard]] double miss_cycles(const core::MachineConfig& cfg);

/// The scheme's per-hand-off cost H in cycles, with `waiters` processors
/// expected to be waiting.  Pure function of the machine config.
[[nodiscard]] double handoff_cycles(const core::MachineConfig& cfg,
                                    sync::SchemeKind scheme, double waiters);

/// Predict the run time of `cfg.num_procs` processors each executing the
/// calibrated per-processor load under cfg.lock_scheme.
[[nodiscard]] Prediction predict(const core::MachineConfig& cfg,
                                 const Calibration& calib);

}  // namespace syncpat::model

#include "fuzz/shrink.hpp"

#include <algorithm>

namespace syncpat::fuzz {
namespace {

// A candidate transformation: simplify `c` in place, returning false when it
// is already minimal along this axis (candidate skipped, no oracle run).
using Pass = bool (*)(FuzzCase& c);

bool halve_procs(FuzzCase& c) {
  if (c.num_procs <= 1) return false;
  c.num_procs = (c.num_procs + 1) / 2;
  return true;
}

bool truncate_workload(FuzzCase& c) {
  if (c.refs_per_proc <= 50) return false;
  c.refs_per_proc = std::max<std::uint64_t>(50, c.refs_per_proc / 2);
  return true;
}

bool halve_lock_pairs(FuzzCase& c) {
  if (c.lock_pairs == 0) return false;
  c.lock_pairs /= 2;
  if (c.nested_pairs > c.lock_pairs / 2) c.nested_pairs = c.lock_pairs / 2;
  return true;
}

bool drop_nesting(FuzzCase& c) {
  if (c.nested_pairs == 0) return false;
  c.nested_pairs = 0;
  return true;
}

bool single_lock(FuzzCase& c) {
  if (c.num_locks <= 1 && c.dominant_weight == 1.0 && !c.partitioned) {
    return false;
  }
  c.num_locks = 1;
  c.dominant_weight = 1.0;
  c.partitioned = false;
  return true;
}

bool drop_barriers(FuzzCase& c) {
  if (c.barriers == 0) return false;
  c.barriers = 0;
  return true;
}

bool shrink_cache(FuzzCase& c) {
  if (c.sets_log2 <= 4) return false;
  c.sets_log2 -= 2;
  if (c.sets_log2 < 4) c.sets_log2 = 4;
  return true;
}

bool direct_mapped(FuzzCase& c) {
  if (c.associativity <= 1) return false;
  c.associativity = 1;
  return true;
}

bool plain_locality(FuzzCase& c) {
  if (c.cold_fraction == 0.0 && c.short_fraction == 0.0 &&
      c.shared_affinity == 0.0) {
    return false;
  }
  c.cold_fraction = 0.0;
  c.short_fraction = 0.0;
  c.shared_affinity = 0.0;
  return true;
}

bool default_memory(FuzzCase& c) {
  if (c.mem_cycles == 3 && c.mem_in_depth == 2 && c.mem_out_depth == 2 &&
      c.buffer_depth == 4 && c.bus_bytes == 8) {
    return false;
  }
  c.mem_cycles = 3;
  c.mem_in_depth = 2;
  c.mem_out_depth = 2;
  c.buffer_depth = 4;
  c.bus_bytes = std::min(8u, c.line_bytes);
  return true;
}

bool sequential_writeback(FuzzCase& c) {
  if (c.consistency == bus::ConsistencyModel::kSequential &&
      c.write_policy == cache::WritePolicy::kWriteBack) {
    return false;
  }
  c.consistency = bus::ConsistencyModel::kSequential;
  c.write_policy = cache::WritePolicy::kWriteBack;
  return true;
}

bool simplest_scheme(FuzzCase& c) {
  if (c.scheme == sync::SchemeKind::kQueuing) return false;
  c.scheme = sync::SchemeKind::kQueuing;
  return true;
}

bool default_arbitration(FuzzCase& c) {
  if (c.bus_discipline == bus::DisciplineKind::kRoundRobin) return false;
  c.bus_discipline = bus::DisciplineKind::kRoundRobin;
  return true;
}

bool uniform_memory(FuzzCase& c) {
  if (c.mem_model == core::MemModelKind::kBus) return false;
  c.mem_model = core::MemModelKind::kBus;
  return true;
}

// Most-reductive passes first: a win on processors or references shrinks
// every later oracle run, so try those before the cosmetic knobs.
constexpr Pass kPasses[] = {
    halve_procs,    truncate_workload, halve_lock_pairs, drop_nesting,
    single_lock,    drop_barriers,     shrink_cache,     direct_mapped,
    plain_locality, default_memory,    sequential_writeback, simplest_scheme,
    default_arbitration, uniform_memory,
};

}  // namespace

ShrinkResult shrink(const FuzzCase& failing, const Oracle& oracle,
                    std::uint32_t max_oracle_runs) {
  ShrinkResult out;
  out.minimal = failing;

  bool progressed = true;
  while (progressed && out.oracle_runs < max_oracle_runs) {
    progressed = false;
    for (const Pass pass : kPasses) {
      if (out.oracle_runs >= max_oracle_runs) break;
      FuzzCase candidate = out.minimal;
      if (!pass(candidate)) continue;
      ++out.oracle_runs;
      if (!oracle(candidate).ok()) {
        out.minimal = candidate;
        ++out.accepted;
        progressed = true;
      }
    }
  }
  return out;
}

}  // namespace syncpat::fuzz

#include "fuzz/harness.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace syncpat::fuzz {
namespace {

Oracle bind_oracle(const HarnessOptions& opt) {
  if (opt.injected_oracle) return opt.injected_oracle;
  const OracleOptions oracles = opt.oracles;
  return [oracles](const FuzzCase& c) { return run_oracles(c, oracles); };
}

std::string write_repro(const HarnessOptions& opt, const FuzzCase& c) {
  const std::string path =
      opt.repro_dir + "/fuzz-repro-" + std::to_string(c.index) + ".case";
  std::ofstream out(path, std::ios::binary);
  out << c.to_text();
  if (!out) return "";  // reported as unwritable; the failure still counts
  return path;
}

}  // namespace

HarnessReport run_fuzz(const HarnessOptions& opt, std::ostream& out) {
  const Oracle oracle = bind_oracle(opt);
  HarnessReport report;

  out << "syncpat_fuzz: seed " << opt.seed << ", " << opt.cases
      << " cases, oracles [invariants=" << opt.oracles.check_invariants
      << " fast-forward=" << opt.oracles.check_fast_forward
      << " jobs=" << opt.oracles.check_jobs
      << " trace-roundtrip=" << opt.oracles.check_trace_roundtrip
      << " conservation=" << opt.oracles.check_conservation << "]\n";

  for (std::uint64_t i = 0; i < opt.cases; ++i) {
    const FuzzCase c = FuzzCase::generate(opt.seed, i);
    OracleVerdict verdict = oracle(c);
    ++report.cases_run;
    if (verdict.ok()) {
      if (opt.verbose) out << "ok    " << c.describe() << "\n";
      continue;
    }

    out << "FAIL  " << c.describe() << "\n";
    out << "      oracles failed: " << verdict.failed_oracles() << "\n";

    FailureRecord record;
    record.original = c;
    record.minimal = c;
    if (opt.shrink_failures) {
      const ShrinkResult shrunk = shrink(c, oracle);
      record.minimal = shrunk.minimal;
      verdict = oracle(shrunk.minimal);
      out << "      shrunk (" << shrunk.accepted << " reductions, "
          << shrunk.oracle_runs << " oracle runs) -> "
          << shrunk.minimal.describe() << "\n";
    }
    record.verdict = verdict;
    for (const std::string& f : record.verdict.failures) {
      out << "      " << f << "\n";
    }
    record.repro_path = write_repro(opt, record.minimal);
    if (record.repro_path.empty()) {
      out << "      (could not write repro file under " << opt.repro_dir
          << ")\n";
    } else {
      out << "      repro: " << record.repro_path
          << "  (replay: syncpat_fuzz --repro <file>)\n";
    }
    report.failures.push_back(std::move(record));
  }

  out << "syncpat_fuzz: " << report.cases_run << " cases, "
      << report.failures.size() << " failure(s)\n";
  return report;
}

int replay_repro(const std::string& path, const HarnessOptions& opt,
                 std::ostream& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("cannot open repro file " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  const FuzzCase c = FuzzCase::from_text(text.str());

  out << "replaying " << c.describe() << "\n";
  const OracleVerdict verdict = bind_oracle(opt)(c);
  if (verdict.ok()) {
    out << "verdict: PASS (all oracles clean)\n";
    return 0;
  }
  out << "verdict: FAIL (" << verdict.failed_oracles() << ")\n";
  for (const std::string& f : verdict.failures) out << "  " << f << "\n";
  return 1;
}

}  // namespace syncpat::fuzz

// Automatic test-case shrinking: reduce a failing FuzzCase to a minimal
// repro that still fails its oracle.
//
// Classic greedy delta-debugging over the case's fields: each pass proposes
// one simplification (halve the processor count, truncate the workload, drop
// locks, shrink the cache, zero an exotic knob, fall back to the simplest
// scheme/model/policy), re-runs the oracle, and keeps the change only if the
// case still fails.  Passes repeat until a full round accepts nothing — a
// local fixpoint, which in practice collapses thousands-of-reference cases
// to a handful of processors and references.  Every accepted candidate ran
// the oracle, so the returned case is guaranteed to still fail.
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracles.hpp"

namespace syncpat::fuzz {

/// The predicate shrinking preserves.  The production harness binds this to
/// run_oracles with its options; tests inject synthetic oracles to prove the
/// shrinker converges.
using Oracle = std::function<OracleVerdict(const FuzzCase&)>;

struct ShrinkResult {
  FuzzCase minimal;
  std::uint32_t oracle_runs = 0;  // candidates evaluated
  std::uint32_t accepted = 0;     // candidates that kept failing
};

/// Precondition: oracle(failing) fails.  Runs at most `max_oracle_runs`
/// oracle evaluations (a failing oracle battery is the expensive path; the
/// cap keeps shrinking bounded even for stubborn cases).
[[nodiscard]] ShrinkResult shrink(const FuzzCase& failing, const Oracle& oracle,
                                  std::uint32_t max_oracle_runs = 256);

}  // namespace syncpat::fuzz

// Deterministic random test-case model for the differential fuzzing harness.
//
// A FuzzCase is the complete, self-contained description of one randomized
// scenario: a machine configuration (processor count, cache geometry, bus
// width, buffer depths, memory latency, consistency model, write policy, lock
// scheme) crossed with a synthetic workload (reference counts, locality mix,
// locking behaviour, barriers).  Cases are generated purely from
// (master seed, case index) — the same pair always yields the same case on
// every platform — and serialize to a small key/value text file so a failing
// case can be replayed exactly with `syncpat_fuzz --repro <file>`.
//
// Doubles are serialized as hexfloats: a repro must reproduce the generator
// bit-for-bit, and decimal round-tripping would not guarantee that.
#pragma once

#include <cstdint>
#include <string>

#include "core/machine_config.hpp"
#include "workload/profile.hpp"

namespace syncpat::fuzz {

struct FuzzCase {
  std::uint64_t index = 0;        // position in the run's case sequence
  std::uint64_t master_seed = 0;  // the run's seed (provenance only)

  // --- machine ---------------------------------------------------------
  std::uint32_t num_procs = 4;
  std::uint32_t line_bytes = 16;       // {8, 16, 32, 64}
  std::uint32_t associativity = 2;     // {1, 2, 4}
  std::uint32_t sets_log2 = 7;         // cache size = line * assoc * 2^sets_log2
  std::uint32_t bus_bytes = 8;         // {4, 8, 16}, <= line_bytes
  std::uint32_t buffer_depth = 4;      // cache-bus buffer
  std::uint32_t mem_cycles = 3;
  std::uint32_t mem_in_depth = 2;
  std::uint32_t mem_out_depth = 2;
  bus::ConsistencyModel consistency = bus::ConsistencyModel::kSequential;
  cache::WritePolicy write_policy = cache::WritePolicy::kWriteBack;
  sync::SchemeKind scheme = sync::SchemeKind::kQueuing;
  // PR 9 axes.  Optional keys in the repro format (defaults below) so every
  // pre-existing repro file still parses.
  bus::DisciplineKind bus_discipline = bus::DisciplineKind::kRoundRobin;
  core::MemModelKind mem_model = core::MemModelKind::kBus;
  std::uint32_t dsm_nodes = 4;           // consulted only when mem_model=dsm
  std::uint32_t dsm_remote_cycles = 20;  // ditto

  // --- workload --------------------------------------------------------
  std::uint64_t workload_seed = 0x5eed;
  std::uint64_t refs_per_proc = 1000;
  double data_ref_fraction = 0.35;
  double work_cycles_per_ref = 2.4;
  double private_fraction = 0.6;
  double write_fraction = 0.3;
  double shared_rerefs = 0.5;
  double shared_affinity = 0.0;
  double cold_fraction = 0.0;
  std::uint64_t lock_pairs = 20;       // per processor
  std::uint64_t nested_pairs = 0;      // <= lock_pairs / 2
  double cs_work_cycles = 80.0;
  std::uint32_t num_locks = 1;
  double dominant_weight = 1.0;
  double cs_region_bias = 0.8;
  double short_fraction = 0.0;
  bool partitioned = false;
  std::uint64_t barriers = 0;

  /// Deterministic generation: same (seed, index) => same case, always.
  [[nodiscard]] static FuzzCase generate(std::uint64_t master_seed,
                                         std::uint64_t index);

  /// The machine half of the case (invariants/trace/fast-forward left at
  /// their defaults; oracles toggle those per run).
  [[nodiscard]] core::MachineConfig machine_config() const;

  /// The workload half (profile name is "fuzz<index>").
  [[nodiscard]] workload::BenchmarkProfile profile() const;

  /// One-line label for reports: "case 17: p4 ttas/weak/wb 16B/2w/2^7 ...".
  [[nodiscard]] std::string describe() const;

  /// Key/value serialization (the repro file format).  from_text throws
  /// std::invalid_argument on unknown keys, malformed values, or missing
  /// fields — a repro file is test input and must not half-parse.
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static FuzzCase from_text(const std::string& text);

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

}  // namespace syncpat::fuzz

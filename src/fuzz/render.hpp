// Exhaustive textual rendering of a SimulationResult for byte-identity
// differentials (fast-forward on/off, --jobs 1-vs-N, traced vs untraced).
//
// Every field is included — RunningStat moments too, which would expose a
// single reordered or double-counted sample — and doubles are printed as
// hexfloats, so string equality means bit-for-bit identical accumulation
// order.  Shared by the fuzzing oracles and the differential regression
// tests so they can never drift apart in what they compare.
#pragma once

#include <string>

#include "core/results.hpp"

namespace syncpat::fuzz {

[[nodiscard]] std::string render_result(const core::SimulationResult& r);

}  // namespace syncpat::fuzz

// The fuzzing run loop: generate -> oracle battery -> (on failure) shrink ->
// serialize a minimal repro.
//
// Determinism contract: with the same seed and case count, the harness
// produces a byte-identical case sequence AND a byte-identical report on the
// given stream — no wall-clock, no paths that vary per machine beyond the
// caller-chosen repro directory.  That is what lets CI pin a fuzz run the
// way it pins a golden table.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"

namespace syncpat::fuzz {

struct HarnessOptions {
  std::uint64_t seed = 0x5eed;
  std::uint64_t cases = 200;
  OracleOptions oracles;
  /// Shrink failures and write "<repro_dir>/fuzz-repro-<index>.case".
  bool shrink_failures = true;
  std::string repro_dir = ".";
  /// Report each clean case as a line too (default: failures + summary only).
  bool verbose = false;
  /// Test hook: replaces run_oracles entirely (the shrinker test injects a
  /// deterministic synthetic failure through this).  Null = real battery.
  Oracle injected_oracle;
};

struct FailureRecord {
  FuzzCase original;
  FuzzCase minimal;        // == original when shrinking is off
  OracleVerdict verdict;   // of the minimal case
  std::string repro_path;  // empty when no file was written
};

struct HarnessReport {
  std::uint64_t cases_run = 0;
  std::vector<FailureRecord> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the batch, streaming the deterministic report to `out`.
HarnessReport run_fuzz(const HarnessOptions& opt, std::ostream& out);

/// Replays a serialized case under the same oracle battery, printing the
/// verdict.  Returns 0 when the case passes, 1 when it (still) fails —
/// mirroring the harness so a repro file is a self-contained regression
/// test.  Throws std::invalid_argument / std::ios failures on unreadable or
/// malformed files.
int replay_repro(const std::string& path, const HarnessOptions& opt,
                 std::ostream& out);

}  // namespace syncpat::fuzz

#include "fuzz/fuzz_case.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"
#include "util/rng.hpp"

namespace syncpat::fuzz {
namespace {

// Generation bounds.  Workloads are deliberately small: every case runs
// several simulations (one per-cycle under the invariant checker), and the
// oracles care about conservation properties, which hold — or break — at any
// trace length.
constexpr std::uint32_t kMaxProcs = 12;
constexpr std::uint64_t kMinRefs = 200;
constexpr std::uint64_t kMaxRefs = 3000;

const char* consistency_text(bus::ConsistencyModel m) {
  return m == bus::ConsistencyModel::kWeak ? "weak" : "sequential";
}

bus::ConsistencyModel consistency_from_text(const std::string& s) {
  if (s == "sequential") return bus::ConsistencyModel::kSequential;
  if (s == "weak") return bus::ConsistencyModel::kWeak;
  throw std::invalid_argument("unknown consistency model in repro: " + s);
}

const char* policy_text(cache::WritePolicy p) {
  return p == cache::WritePolicy::kWriteThrough ? "write-through" : "write-back";
}

cache::WritePolicy policy_from_text(const std::string& s) {
  if (s == "write-back") return cache::WritePolicy::kWriteBack;
  if (s == "write-through") return cache::WritePolicy::kWriteThrough;
  throw std::invalid_argument("unknown write policy in repro: " + s);
}

std::string double_text(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double double_from_text(const std::string& s, const std::string& key) {
  if (s.empty()) {
    throw std::invalid_argument("empty value for " + key + " in repro");
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    throw std::invalid_argument("malformed value for " + key + " in repro: \"" +
                                s + "\"");
  }
  return v;
}

/// Uniform double in [lo, hi) quantized to 1/256 steps: coarse enough that a
/// repro file stays readable, fine enough to explore the space.
double quantized(util::Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * (static_cast<double>(rng.below(256)) / 256.0);
}

}  // namespace

FuzzCase FuzzCase::generate(std::uint64_t master_seed, std::uint64_t index) {
  // One independent stream per case: never draw from a shared run-level RNG,
  // so case N is the same whether or not cases 0..N-1 ran first.
  util::Rng rng(util::SplitMix64(master_seed ^ (index * 0x9e3779b97f4a7c15ULL))
                    .next());

  FuzzCase c;
  c.index = index;
  c.master_seed = master_seed;

  // Machine: geometry constrained so every combination is legal (power-of-two
  // sets, bus at most one line wide).
  c.num_procs = static_cast<std::uint32_t>(rng.range(1, kMaxProcs));
  c.line_bytes = 8u << rng.below(4);                       // 8..64
  c.associativity = 1u << rng.below(3);                    // 1/2/4
  c.sets_log2 = static_cast<std::uint32_t>(rng.range(4, 10));
  c.bus_bytes = 4u << rng.below(3);                        // 4/8/16
  if (c.bus_bytes > c.line_bytes) c.bus_bytes = c.line_bytes;
  c.buffer_depth = static_cast<std::uint32_t>(rng.range(1, 8));
  c.mem_cycles = static_cast<std::uint32_t>(rng.range(1, 16));
  c.mem_in_depth = static_cast<std::uint32_t>(rng.range(1, 4));
  c.mem_out_depth = static_cast<std::uint32_t>(rng.range(1, 4));
  c.consistency = rng.chance(0.5) ? bus::ConsistencyModel::kWeak
                                  : bus::ConsistencyModel::kSequential;
  c.write_policy = rng.chance(0.25) ? cache::WritePolicy::kWriteThrough
                                    : cache::WritePolicy::kWriteBack;
  // Historical 7-scheme draw, frozen: all_scheme_kinds() has since grown
  // (MCS, CLH), and drawing from the live list would change this draw's
  // modulus and re-randomize every historical (seed, index) case.  The new
  // schemes enter via an override draw appended after all historical draws.
  constexpr sync::SchemeKind kHistoricalSchemes[] = {
      sync::SchemeKind::kQueuing,    sync::SchemeKind::kQueuingExact,
      sync::SchemeKind::kTtas,       sync::SchemeKind::kTas,
      sync::SchemeKind::kTasBackoff, sync::SchemeKind::kTicket,
      sync::SchemeKind::kAnderson};
  c.scheme = kHistoricalSchemes[rng.below(7)];

  // Workload.
  c.workload_seed = rng.next_u64();
  c.refs_per_proc = static_cast<std::uint64_t>(
      rng.range(static_cast<std::int64_t>(kMinRefs),
                static_cast<std::int64_t>(kMaxRefs)));
  c.data_ref_fraction = quantized(rng, 0.15, 0.55);
  c.work_cycles_per_ref = quantized(rng, 1.0, 6.0);
  c.private_fraction = quantized(rng, 0.0, 0.9);
  c.write_fraction = quantized(rng, 0.05, 0.5);
  c.shared_rerefs = quantized(rng, 0.0, 0.9);
  c.shared_affinity = quantized(rng, 0.0, 0.9);
  c.cold_fraction = rng.chance(0.3) ? quantized(rng, 0.0, 0.3) : 0.0;
  c.lock_pairs = rng.below(64);
  c.nested_pairs = c.lock_pairs > 1 ? rng.below(c.lock_pairs / 2 + 1) : 0;
  c.cs_work_cycles = quantized(rng, 10.0, 300.0);
  c.num_locks = static_cast<std::uint32_t>(rng.range(1, 8));
  c.dominant_weight = quantized(rng, 1.0 / c.num_locks, 1.0);
  c.cs_region_bias = quantized(rng, 0.0, 0.95);
  c.short_fraction = rng.chance(0.25) ? quantized(rng, 0.0, 0.5) : 0.0;
  c.partitioned = rng.chance(0.2);
  c.barriers = rng.chance(0.3) ? rng.below(5) : 0;

  // PR 9 axes, drawn strictly after every historical field so an old
  // (seed, index) pair reproduces its historical machine+workload half
  // bit-for-bit before the new draws perturb the stream.
  constexpr bus::DisciplineKind kDisciplines[] = {
      bus::DisciplineKind::kRoundRobin, bus::DisciplineKind::kFixedPriority,
      bus::DisciplineKind::kFcfs};
  c.bus_discipline = kDisciplines[rng.below(bus::kNumDisciplines)];
  // (Historically tas x fixed-priority was rerouted to fcfs here — pure
  // priority starved a plain test&set releaser forever.  The discipline's
  // aging escape bounds that inversion now, so the combination terminates
  // and fuzzes like any other.  The reroute rewrote the field *after* the
  // draw, so deleting it leaves the RNG stream untouched.)
  if (rng.chance(0.25)) {
    c.mem_model = core::MemModelKind::kDsm;
    c.dsm_nodes = 1u << rng.below(3);  // 1/2/4 home nodes
    c.dsm_remote_cycles = static_cast<std::uint32_t>(rng.range(4, 48));
  }
  // Occasionally a large machine (the PR 9 hardening sweep's territory).
  // The workload shrinks with it: every case also runs per-cycle under the
  // invariant checker, and P x refs is the cost driver.
  if (rng.chance(0.15)) {
    constexpr std::uint32_t kBigProcs[] = {16, 24, 32, 48, 64, 96, 128};
    c.num_procs = kBigProcs[rng.below(7)];
    c.refs_per_proc = 50 + rng.below(251);  // 50..300
    c.lock_pairs = rng.below(9);
    c.nested_pairs = c.lock_pairs > 1 ? rng.below(c.lock_pairs / 2 + 1) : 0;
    c.barriers = rng.chance(0.3) ? rng.below(3) : 0;
  }
  // PR 10 axis, appended after every prior draw (same reproducibility rule
  // as the PR 9 block): sometimes override the frozen 7-scheme draw with one
  // of the list-based queue locks, so MCS and CLH get fuzz coverage without
  // re-randomizing historical cases' machine/workload halves.
  if (rng.chance(0.2)) {
    c.scheme = rng.chance(0.5) ? sync::SchemeKind::kMcs
                               : sync::SchemeKind::kClh;
  }
  return c;
}

core::MachineConfig FuzzCase::machine_config() const {
  core::MachineConfig cfg;
  cfg.num_procs = num_procs;
  cfg.cache.line_bytes = line_bytes;
  cfg.cache.associativity = associativity;
  cfg.cache.size_bytes = line_bytes * associativity * (1u << sets_log2);
  cfg.write_policy = write_policy;
  cfg.bus_bytes = bus_bytes;
  cfg.cache_bus_buffer_depth = buffer_depth;
  cfg.memory.access_cycles = mem_cycles;
  cfg.memory.input_depth = mem_in_depth;
  cfg.memory.output_depth = mem_out_depth;
  cfg.consistency = consistency;
  cfg.lock_scheme = scheme;
  cfg.bus_discipline = bus_discipline;
  cfg.model = mem_model;
  cfg.dsm.nodes = dsm_nodes;
  cfg.dsm.remote_access_cycles = dsm_remote_cycles;
  return cfg;
}

workload::BenchmarkProfile FuzzCase::profile() const {
  workload::BenchmarkProfile p;
  p.name = "fuzz" + std::to_string(index);
  p.num_procs = num_procs;
  p.refs_per_proc = refs_per_proc;
  p.data_ref_fraction = data_ref_fraction;
  p.work_cycles_per_ref = work_cycles_per_ref;
  p.locality.private_fraction = private_fraction;
  p.locality.write_fraction = write_fraction;
  p.locality.shared_rerefs = shared_rerefs;
  p.locality.shared_affinity = shared_affinity;
  p.locality.cold_fraction = cold_fraction;
  p.locking.pairs_per_proc = lock_pairs;
  p.locking.nested_per_proc = nested_pairs;
  p.locking.cs_work_cycles = cs_work_cycles;
  p.locking.num_locks = num_locks;
  p.locking.dominant_weight = dominant_weight;
  p.locking.cs_region_bias = cs_region_bias;
  p.locking.short_fraction = short_fraction;
  p.locking.partitioned = partitioned;
  p.locking.barriers_per_proc = barriers;
  p.seed = workload_seed;
  return p;
}

std::string FuzzCase::describe() const {
  std::ostringstream out;
  out << "case " << index << ": p" << num_procs << " "
      << sync::scheme_kind_name(scheme) << "/" << consistency_text(consistency)
      << "/" << policy_text(write_policy) << " cache " << line_bytes << "B/"
      << associativity << "w/2^" << sets_log2 << " bus " << bus_bytes
      << "B buf " << buffer_depth << " mem " << mem_cycles << "cy, refs "
      << refs_per_proc << " pairs " << lock_pairs << " locks " << num_locks
      << " barriers " << barriers << " arb "
      << bus::discipline_name(bus_discipline);
  if (mem_model == core::MemModelKind::kDsm) {
    out << " dsm " << dsm_nodes << "n/+" << dsm_remote_cycles << "cy";
  }
  return out.str();
}

std::string FuzzCase::to_text() const {
  std::ostringstream out;
  out << "syncpat-fuzz-case 1\n";
  out << "index " << index << "\n";
  out << "master_seed " << master_seed << "\n";
  out << "num_procs " << num_procs << "\n";
  out << "line_bytes " << line_bytes << "\n";
  out << "associativity " << associativity << "\n";
  out << "sets_log2 " << sets_log2 << "\n";
  out << "bus_bytes " << bus_bytes << "\n";
  out << "buffer_depth " << buffer_depth << "\n";
  out << "mem_cycles " << mem_cycles << "\n";
  out << "mem_in_depth " << mem_in_depth << "\n";
  out << "mem_out_depth " << mem_out_depth << "\n";
  out << "consistency " << consistency_text(consistency) << "\n";
  out << "write_policy " << policy_text(write_policy) << "\n";
  out << "scheme " << sync::scheme_kind_name(scheme) << "\n";
  out << "workload_seed " << workload_seed << "\n";
  out << "refs_per_proc " << refs_per_proc << "\n";
  out << "data_ref_fraction " << double_text(data_ref_fraction) << "\n";
  out << "work_cycles_per_ref " << double_text(work_cycles_per_ref) << "\n";
  out << "private_fraction " << double_text(private_fraction) << "\n";
  out << "write_fraction " << double_text(write_fraction) << "\n";
  out << "shared_rerefs " << double_text(shared_rerefs) << "\n";
  out << "shared_affinity " << double_text(shared_affinity) << "\n";
  out << "cold_fraction " << double_text(cold_fraction) << "\n";
  out << "lock_pairs " << lock_pairs << "\n";
  out << "nested_pairs " << nested_pairs << "\n";
  out << "cs_work_cycles " << double_text(cs_work_cycles) << "\n";
  out << "num_locks " << num_locks << "\n";
  out << "dominant_weight " << double_text(dominant_weight) << "\n";
  out << "cs_region_bias " << double_text(cs_region_bias) << "\n";
  out << "short_fraction " << double_text(short_fraction) << "\n";
  out << "partitioned " << (partitioned ? 1 : 0) << "\n";
  out << "barriers " << barriers << "\n";
  out << "bus_discipline " << bus::discipline_name(bus_discipline) << "\n";
  out << "mem_model " << core::mem_model_name(mem_model) << "\n";
  out << "dsm_nodes " << dsm_nodes << "\n";
  out << "dsm_remote_cycles " << dsm_remote_cycles << "\n";
  return out.str();
}

FuzzCase FuzzCase::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::uint64_t version = 0;
  if (!(in >> header >> version) || header != "syncpat-fuzz-case" ||
      version != 1) {
    throw std::invalid_argument("not a syncpat fuzz repro file");
  }

  std::map<std::string, std::string> kv;
  std::string key, value;
  while (in >> key >> value) {
    if (!kv.emplace(key, value).second) {
      throw std::invalid_argument("duplicate key in repro: " + key);
    }
  }

  FuzzCase c;
  auto take = [&kv](const char* k) {
    const auto it = kv.find(k);
    if (it == kv.end()) {
      throw std::invalid_argument(std::string("repro missing key: ") + k);
    }
    std::string v = it->second;
    kv.erase(it);
    return v;
  };
  // PR 9 keys are optional with defaults: repro files written before the
  // discipline/model axes existed must keep replaying unchanged.
  auto take_opt = [&kv](const char* k, const char* dflt) {
    const auto it = kv.find(k);
    if (it == kv.end()) return std::string(dflt);
    std::string v = it->second;
    kv.erase(it);
    return v;
  };
  auto take_u64 = [&take](const char* k) {
    return util::parse_u64(take(k), k);
  };
  auto take_u32 = [&take](const char* k) {
    return util::parse_u32(take(k), k);
  };
  auto take_double = [&take](const char* k) {
    return double_from_text(take(k), k);
  };

  c.index = take_u64("index");
  c.master_seed = take_u64("master_seed");
  c.num_procs = take_u32("num_procs");
  c.line_bytes = take_u32("line_bytes");
  c.associativity = take_u32("associativity");
  c.sets_log2 = take_u32("sets_log2");
  c.bus_bytes = take_u32("bus_bytes");
  c.buffer_depth = take_u32("buffer_depth");
  c.mem_cycles = take_u32("mem_cycles");
  c.mem_in_depth = take_u32("mem_in_depth");
  c.mem_out_depth = take_u32("mem_out_depth");
  c.consistency = consistency_from_text(take("consistency"));
  c.write_policy = policy_from_text(take("write_policy"));
  c.scheme = sync::scheme_kind_from_name(take("scheme"));
  c.workload_seed = take_u64("workload_seed");
  c.refs_per_proc = take_u64("refs_per_proc");
  c.data_ref_fraction = take_double("data_ref_fraction");
  c.work_cycles_per_ref = take_double("work_cycles_per_ref");
  c.private_fraction = take_double("private_fraction");
  c.write_fraction = take_double("write_fraction");
  c.shared_rerefs = take_double("shared_rerefs");
  c.shared_affinity = take_double("shared_affinity");
  c.cold_fraction = take_double("cold_fraction");
  c.lock_pairs = take_u64("lock_pairs");
  c.nested_pairs = take_u64("nested_pairs");
  c.cs_work_cycles = take_double("cs_work_cycles");
  c.num_locks = take_u32("num_locks");
  c.dominant_weight = take_double("dominant_weight");
  c.cs_region_bias = take_double("cs_region_bias");
  c.short_fraction = take_double("short_fraction");
  c.partitioned = take_u64("partitioned") != 0;
  c.barriers = take_u64("barriers");
  c.bus_discipline =
      bus::discipline_from_name(take_opt("bus_discipline", "round-robin"));
  c.mem_model = core::mem_model_from_name(take_opt("mem_model", "bus"));
  c.dsm_nodes = util::parse_u32(take_opt("dsm_nodes", "4"), "dsm_nodes");
  c.dsm_remote_cycles =
      util::parse_u32(take_opt("dsm_remote_cycles", "20"), "dsm_remote_cycles");

  if (!kv.empty()) {
    throw std::invalid_argument("unknown key in repro: " + kv.begin()->first);
  }
  if (c.num_procs == 0 || c.num_procs > 4096) {
    throw std::invalid_argument("repro num_procs out of range");
  }
  if (c.line_bytes == 0 || (c.line_bytes & (c.line_bytes - 1)) != 0 ||
      c.line_bytes > 64) {
    throw std::invalid_argument("repro line_bytes must be a power of two <= 64");
  }
  if (c.bus_bytes == 0 || (c.bus_bytes & (c.bus_bytes - 1)) != 0) {
    throw std::invalid_argument("repro bus_bytes must be a power of two");
  }
  if (c.associativity == 0 || c.sets_log2 > 20) {
    throw std::invalid_argument("repro cache geometry out of range");
  }
  if (c.num_locks == 0 || c.nested_pairs > c.lock_pairs) {
    throw std::invalid_argument("repro locking model out of range");
  }
  if (c.dsm_nodes == 0) {
    throw std::invalid_argument("repro dsm_nodes must be positive");
  }
  return c;
}

}  // namespace syncpat::fuzz

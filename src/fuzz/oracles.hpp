// The oracle battery: every property a randomized case is checked against.
//
// Each oracle is a universally-quantified correctness statement — it must
// hold for EVERY machine configuration and workload, not just the paper's
// table cells:
//
//   invariants        the runtime invariant checker (MESI coherence, one
//                     transaction per line, lock mutual exclusion, FIFO
//                     hand-off) reports zero violations;
//   engine            the discrete-event core and per-cycle tick stepping
//                     produce byte-identical SimulationResults
//                     (render_result string equality);
//   fast-forward      the tick engine with and without its quiescence
//                     run-ahead produces byte-identical SimulationResults;
//   jobs              the experiment engine returns byte-identical cell
//                     results with 1 worker and with N workers;
//   trace-roundtrip   a generated trace survives save -> load -> save with
//                     identical events and identical bytes;
//   conservation      acquires == releases per lock and no lock held at end
//                     (trace validator), traced hand-off events == the
//                     Transfers aggregate, per-processor
//                     work + stalls == completion cycle, and
//                     run_time == max completion cycle;
//   metrics           the metrics registry's stall attribution conserves
//                     every cycle (sum over categories == completion cycle
//                     per processor), its per-lock histograms agree with the
//                     LockStats aggregates, and its bus gauge equals the
//                     bus's own busy counter.  The reference run carries the
//                     registry, so the fast-forward byte-identity comparison
//                     also proves metrics-enabled runs change nothing.
//
// run_oracles never throws on a *failing* oracle — failures come back as
// structured text so the harness can shrink and serialize the case.  It does
// propagate exceptions from genuinely broken setups (e.g. a hand-edited
// repro with a config the simulator rejects).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.hpp"

namespace syncpat::fuzz {

struct OracleOptions {
  bool check_invariants = true;
  bool check_engine = true;
  bool check_fast_forward = true;
  bool check_jobs = true;
  bool check_trace_roundtrip = true;
  bool check_conservation = true;
  bool check_metrics = true;
  /// Worker count for the parallel side of the jobs differential.
  std::uint32_t jobs = 3;
};

struct OracleVerdict {
  /// "oracle-name: detail", one entry per failed property.
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// Comma-separated failing oracle names (stable across runs, used by the
  /// report and by repro replay equivalence checks).
  [[nodiscard]] std::string failed_oracles() const;
};

[[nodiscard]] OracleVerdict run_oracles(const FuzzCase& c,
                                        const OracleOptions& opt = {});

}  // namespace syncpat::fuzz

#include "fuzz/oracles.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/experiment_engine.hpp"
#include "core/invariant_checker.hpp"
#include "core/simulator.hpp"
#include "fuzz/render.hpp"
#include "obs/lock_timeline.hpp"
#include "obs/trace_event.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"
#include "workload/generator.hpp"

namespace syncpat::fuzz {
namespace {

void fail(OracleVerdict& v, const char* oracle, const std::string& detail) {
  v.failures.push_back(std::string(oracle) + ": " + detail);
}

/// First line where two renderings diverge, for readable failure reports.
std::string first_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  std::size_t line = 1;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "(identical?)";
    if (!ga || !gb || la != lb) {
      return "line " + std::to_string(line) + ": \"" + (ga ? la : "<eof>") +
             "\" vs \"" + (gb ? lb : "<eof>") + "\"";
    }
    ++line;
  }
}

void check_trace_roundtrip(OracleVerdict& v, trace::ProgramTrace& program) {
  std::stringstream first;
  trace::write_program_trace(first, program);
  trace::ProgramTrace loaded = trace::read_program_trace(first);

  if (loaded.name != program.name) {
    fail(v, "trace-roundtrip", "program name changed: \"" + program.name +
                                   "\" -> \"" + loaded.name + "\"");
    return;
  }
  if (loaded.num_procs() != program.num_procs()) {
    fail(v, "trace-roundtrip",
         "processor count changed: " + std::to_string(program.num_procs()) +
             " -> " + std::to_string(loaded.num_procs()));
    return;
  }
  program.reset_all();
  for (std::size_t p = 0; p < program.num_procs(); ++p) {
    const std::vector<trace::Event> original = trace::collect(*program.per_proc[p]);
    const std::vector<trace::Event> back = trace::collect(*loaded.per_proc[p]);
    if (original != back) {
      std::size_t i = 0;
      while (i < original.size() && i < back.size() && original[i] == back[i]) {
        ++i;
      }
      fail(v, "trace-roundtrip",
           "proc " + std::to_string(p) + " events diverge at index " +
               std::to_string(i) + " (" + std::to_string(original.size()) +
               " vs " + std::to_string(back.size()) + " events)");
      return;
    }
  }
  // Second serialization of the loaded trace must be byte-identical: the
  // format has exactly one encoding per trace.
  std::stringstream second;
  trace::write_program_trace(second, loaded);
  if (first.str() != second.str()) {
    fail(v, "trace-roundtrip", "re-serialized bytes differ from the original");
  }
}

void check_sim_conservation(OracleVerdict& v,
                            const core::SimulationResult& r,
                            const obs::LockTimeline& timeline) {
  std::uint64_t max_completion = 0;
  for (std::size_t p = 0; p < r.per_proc.size(); ++p) {
    const core::ProcResult& pr = r.per_proc[p];
    const std::uint64_t counted = pr.work_cycles + pr.stall_cache +
                                  pr.stall_lock + pr.stall_fence;
    if (counted != pr.completion_cycle) {
      fail(v, "conservation",
           "proc " + std::to_string(p) + ": work+stalls=" +
               std::to_string(counted) + " but completion_cycle=" +
               std::to_string(pr.completion_cycle) +
               " (every live cycle must be work or stall)");
    }
    max_completion = std::max(max_completion, pr.completion_cycle);
  }
  if (r.run_time != max_completion) {
    fail(v, "conservation",
         "run_time=" + std::to_string(r.run_time) +
             " != max completion cycle " + std::to_string(max_completion));
  }

  if (timeline.total_handoffs() != r.locks.transfers) {
    fail(v, "conservation",
         "traced hand-off events=" + std::to_string(timeline.total_handoffs()) +
             " != lock-stats transfers=" + std::to_string(r.locks.transfers));
  }
  std::uint64_t traced_acquisitions = 0;
  for (const auto& [line, lock] : timeline.locks) {
    traced_acquisitions += lock.acquisitions;
  }
  if (traced_acquisitions != r.locks.acquisitions) {
    fail(v, "conservation",
         "traced acquire events=" + std::to_string(traced_acquisitions) +
             " != lock-stats acquisitions=" +
             std::to_string(r.locks.acquisitions));
  }
}

void check_metrics_conservation(OracleVerdict& v, const core::Simulator& sim,
                                const core::SimulationResult& r) {
  const obs::MetricsRegistry* m = sim.metrics();
  if (m == nullptr) {
    fail(v, "metrics", "registry missing despite metrics.enabled");
    return;
  }
  // Exact stall attribution: every simulated cycle charged to exactly one
  // category, so the ledger sums to the completion cycle per processor.
  for (std::uint32_t p = 0; p < m->num_procs(); ++p) {
    const std::uint64_t attributed = m->proc(p).attr.total();
    if (attributed != r.per_proc[p].completion_cycle) {
      fail(v, "metrics",
           "proc " + std::to_string(p) + ": attributed cycles " +
               std::to_string(attributed) + " != completion_cycle " +
               std::to_string(r.per_proc[p].completion_cycle));
    }
  }
  // Per-lock histograms conserve against the LockStats aggregates.
  std::uint64_t acquisitions = 0;
  std::uint64_t transfers = 0;
  for (const auto& [line, lm] : m->locks()) {
    acquisitions += lm.acquisitions;
    transfers += lm.transfers;
    if (lm.waiters_at_acquire.count() != lm.acquisitions) {
      fail(v, "metrics",
           "lock " + std::to_string(line) + ": waiters histogram count " +
               std::to_string(lm.waiters_at_acquire.count()) +
               " != acquisitions " + std::to_string(lm.acquisitions));
    }
    if (lm.handoff_cycles.count() != lm.transfers) {
      fail(v, "metrics",
           "lock " + std::to_string(line) + ": hand-off histogram count " +
               std::to_string(lm.handoff_cycles.count()) + " != transfers " +
               std::to_string(lm.transfers));
    }
  }
  if (acquisitions != r.locks.acquisitions) {
    fail(v, "metrics",
         "summed lock acquisitions " + std::to_string(acquisitions) +
             " != lock-stats acquisitions " +
             std::to_string(r.locks.acquisitions));
  }
  if (transfers != r.locks.transfers) {
    fail(v, "metrics",
         "summed lock transfers " + std::to_string(transfers) +
             " != lock-stats transfers " + std::to_string(r.locks.transfers));
  }
  for (const auto& [line, agg] : sim.lock_stats().per_lock()) {
    const auto it = m->locks().find(line);
    if (it == m->locks().end()) {
      fail(v, "metrics",
           "lock " + std::to_string(line) + " has stats but no metrics slot");
      continue;
    }
    if (it->second.hold_cycles.count() != agg.hold_cycles.count()) {
      fail(v, "metrics",
           "lock " + std::to_string(line) + ": hold histogram count " +
               std::to_string(it->second.hold_cycles.count()) +
               " != stats hold count " + std::to_string(agg.hold_cycles.count()));
    }
  }
  // The clipped bus gauge equals the bus's own tick-by-tick busy counter.
  if (m->bus().total_busy() != sim.bus().busy_cycles()) {
    fail(v, "metrics",
         "bus gauge total " + std::to_string(m->bus().total_busy()) +
             " != bus busy_cycles " + std::to_string(sim.bus().busy_cycles()));
  }
}

void check_jobs_differential(OracleVerdict& v, const FuzzCase& c,
                             const core::MachineConfig& base,
                             const workload::BenchmarkProfile& profile,
                             std::uint32_t jobs) {
  core::ExperimentGrid grid;
  grid.base = base;
  grid.profiles = {profile};
  grid.schemes = {c.scheme};
  grid.consistency_models = {bus::ConsistencyModel::kSequential,
                             bus::ConsistencyModel::kWeak};
  grid.scales = {1};

  core::EngineOptions serial;
  serial.jobs = 1;
  core::EngineOptions parallel;
  parallel.jobs = jobs;
  const core::GridResult one = core::run_grid(grid, serial);
  const core::GridResult many = core::run_grid(grid, parallel);
  if (one.size() != many.size()) {
    fail(v, "jobs",
         "cell count differs: " + std::to_string(one.size()) + " vs " +
             std::to_string(many.size()));
    return;
  }
  for (std::size_t i = 0; i < one.size(); ++i) {
    if (one.results[i].error != many.results[i].error) {
      fail(v, "jobs",
           one.cells[i].label() + ": error status differs (\"" +
               one.results[i].error + "\" vs \"" + many.results[i].error +
               "\")");
      continue;
    }
    if (!one.results[i].ok()) continue;  // same failure either way
    const std::string a = render_result(one.results[i].outcome.sim);
    const std::string b = render_result(many.results[i].outcome.sim);
    if (a != b) {
      fail(v, "jobs",
           one.cells[i].label() + ": --jobs 1 vs --jobs " +
               std::to_string(jobs) + " diverge at " + first_diff(a, b));
    }
  }
}

}  // namespace

std::string OracleVerdict::failed_oracles() const {
  std::set<std::string> names;
  for (const std::string& f : failures) {
    names.insert(f.substr(0, f.find(':')));
  }
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ",";
    out += n;
  }
  return out;
}

OracleVerdict run_oracles(const FuzzCase& c, const OracleOptions& opt) {
  OracleVerdict v;
  const workload::BenchmarkProfile profile = c.profile();
  const core::MachineConfig base = c.machine_config();
  trace::ProgramTrace program = workload::make_program_trace(profile);

  if (opt.check_trace_roundtrip) check_trace_roundtrip(v, program);

  if (opt.check_conservation) {
    // Trace-side conservation: every acquire matched by a release on the same
    // lock, nothing held at end of trace, barrier sequences agree.
    program.reset_all();
    const trace::ValidationReport report = trace::validate_program(program);
    if (!report.ok()) {
      fail(v, "conservation", "generated trace invalid: " +
                                  report.to_string(/*max_errors=*/3));
    }
  }

  // Reference run: per-cycle tick stepping (pinned explicitly — the config
  // default is the DES core), invariant checker (optionally) live, lock
  // tracing on so hand-off/acquire event counts can be conserved against the
  // stats aggregates.
  core::MachineConfig ref_cfg = base;
  ref_cfg.invariants.enabled = opt.check_invariants;
  ref_cfg.engine = core::EngineKind::kTick;
  ref_cfg.fast_forward = false;
  ref_cfg.trace.enabled = opt.check_conservation;
  ref_cfg.trace.categories = obs::category::kLocks;
  ref_cfg.metrics.enabled = opt.check_metrics;
  program.reset_all();
  core::Simulator ref_sim(ref_cfg, program);
  obs::LockTimelineSink timeline;
  if (obs::EventRecorder* rec = ref_sim.recorder()) rec->add_sink(&timeline);
  const core::SimulationResult ref = ref_sim.run();

  if (opt.check_invariants) {
    const core::InvariantChecker* checker = ref_sim.invariant_checker();
    if (checker != nullptr && !checker->ok()) {
      fail(v, "invariants",
           std::to_string(checker->violation_count()) +
               " violation(s); first: " +
               (checker->violations().empty() ? "<none recorded>"
                                              : checker->violations()[0]));
    }
  }

  if (opt.check_conservation) {
    check_sim_conservation(v, ref, timeline.take(ref.run_time));
  }

  if (opt.check_metrics) {
    check_metrics_conservation(v, ref_sim, ref);
  }

  if (opt.check_engine) {
    // Differential #7: the discrete-event core vs per-cycle ticking;
    // checker, tracing and metrics off.  Byte-identity with the reference
    // run simultaneously proves DES equivalence and that the checker, the
    // recorder and the metrics registry never perturb a result.
    core::MachineConfig des_cfg = base;
    des_cfg.engine = core::EngineKind::kDes;
    program.reset_all();
    core::Simulator des_sim(des_cfg, program);
    const std::string a = render_result(ref);
    const std::string b = render_result(des_sim.run());
    if (a != b) {
      fail(v, "engine",
           "per-cycle tick vs DES results diverge at " + first_diff(a, b));
    }
  }

  if (opt.check_fast_forward) {
    // Differential: tick engine with the quiescence run-ahead on.
    core::MachineConfig ff_cfg = base;
    ff_cfg.engine = core::EngineKind::kTick;
    ff_cfg.fast_forward = true;
    program.reset_all();
    core::Simulator ff_sim(ff_cfg, program);
    const std::string a = render_result(ref);
    const std::string b = render_result(ff_sim.run());
    if (a != b) {
      fail(v, "fast-forward",
           "per-cycle vs fast-forward results diverge at " + first_diff(a, b));
    }
  }

  if (opt.check_jobs) {
    check_jobs_differential(v, c, base, profile, opt.jobs);
  }
  return v;
}

}  // namespace syncpat::fuzz

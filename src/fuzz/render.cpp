#include "fuzz/render.hpp"

#include <ostream>
#include <sstream>

namespace syncpat::fuzz {
namespace {

void render_stat(std::ostream& out, const char* label,
                 const util::RunningStat& s) {
  out << label << ": n=" << s.count() << " sum=" << s.sum()
      << " mean=" << s.mean() << " var=" << s.variance() << " min=" << s.min()
      << " max=" << s.max() << "\n";
}

}  // namespace

std::string render_result(const core::SimulationResult& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << r.program << "/" << r.scheme << "/" << r.consistency
      << " procs=" << r.num_procs << "\n";
  out << "run_time=" << r.run_time << " avg_util=" << r.avg_utilization
      << " stall_cache_pct=" << r.stall_cache_pct
      << " stall_lock_pct=" << r.stall_lock_pct << "\n";
  out << "locks: acq=" << r.locks.acquisitions
      << " transfers=" << r.locks.transfers << "\n";
  render_stat(out, "hold", r.locks.hold_cycles);
  render_stat(out, "hold_xfer", r.locks.hold_cycles_transfer);
  render_stat(out, "waiters", r.locks.waiters_at_transfer);
  render_stat(out, "xfer_cycles", r.locks.transfer_cycles);
  out << "xfer_hist: n=" << r.locks.transfer_hist.count();
  for (std::size_t i = 0; i < util::Histogram::kBuckets; ++i) {
    out << " " << r.locks.transfer_hist.bucket_count(i);
  }
  out << "\n";
  out << "discipline=" << r.discipline.name
      << " grants=" << r.discipline.grants << ","
      << r.discipline.memory_grants
      << " max_wait=" << r.discipline.max_grant_wait << "\n";
  render_stat(out, "grant_wait", r.discipline.grant_wait);
  out << "bus_util=" << r.bus_utilization << " traffic=" << r.traffic.reads
      << "," << r.traffic.readx << "," << r.traffic.upgrades << ","
      << r.traffic.writebacks << "," << r.traffic.handoffs << ","
      << r.traffic.write_throughs << "," << r.traffic.c2c_supplies << ","
      << r.traffic.memory_reads << "," << r.traffic.lock_ops << "\n";
  out << "hit_ratios=" << r.write_hit_ratio << "," << r.read_hit_ratio
      << " syncs=" << r.syncs << "," << r.syncs_with_pending << ","
      << r.read_bypasses << "\n";
  out << "barriers=" << r.barriers_completed << "\n";
  render_stat(out, "barrier_wait", r.barrier_wait_cycles);
  render_stat(out, "barrier_waiters", r.barrier_waiters_at_arrival);
  for (const core::ProcResult& p : r.per_proc) {
    out << "proc: work=" << p.work_cycles << " sc=" << p.stall_cache
        << " sl=" << p.stall_lock << " sf=" << p.stall_fence
        << " done=" << p.completion_cycle << " util=" << p.utilization << "\n";
  }
  return out.str();
}

}  // namespace syncpat::fuzz

// Streaming mean/min/max/variance accumulator (Welford's algorithm).
//
// Used everywhere a paper table reports an average over events: lock hold
// times, waiters at transfer, per-processor utilization.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace syncpat::util {

class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  void merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * other.mean_) / nt;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace syncpat::util

// Simple log2-bucketed histogram for latency distributions (lock transfer
// times, miss penalties).  Buckets: [0], [1], [2,3], [4,7], ... up to 2^31.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace syncpat::util {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;  // bucket 0 holds value 0

  void add(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_.at(i);
  }
  /// Inclusive lower bound of bucket i.
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t i);
  /// Inclusive upper bound of bucket i.
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t i);

  [[nodiscard]] double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  /// Smallest / largest value ever added (0 when empty).
  [[nodiscard]] std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }

  /// Approximate p-quantile: the upper bound of the bucket containing the
  /// quantile, clamped to the observed [min, max] — so a histogram whose
  /// samples all land in one power-of-two bucket never reports a value
  /// outside what was actually added (a bare bucket_hi would, e.g. 7 for a
  /// histogram of all 4s).
  [[nodiscard]] std::uint64_t quantile(double p) const;

  /// Multi-line ASCII rendering, for diagnostic dumps.
  [[nodiscard]] std::string to_string() const;

  void merge(const Histogram& other);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace syncpat::util

#include "util/format.hpp"

#include <cmath>
#include <cstdio>

namespace syncpat::util {

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string with_commas(std::int64_t value) {
  if (value < 0) {
    // Negate in unsigned arithmetic: -INT64_MIN overflows int64_t (UB), but
    // 0 - uint64(INT64_MIN) is the well-defined magnitude 2^63.
    const std::uint64_t magnitude = 0 - static_cast<std::uint64_t>(value);
    std::string out = with_commas(magnitude);
    out.insert(out.begin(), '-');
    return out;
  }
  return with_commas(static_cast<std::uint64_t>(value));
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals);
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace syncpat::util

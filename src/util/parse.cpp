#include "util/parse.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace syncpat::util {
namespace {

[[noreturn]] void reject(std::string_view text, std::string_view what,
                         const char* requirement) {
  throw std::invalid_argument(std::string(what) + " must be " + requirement +
                              ", got \"" + std::string(text) + "\"");
}

}  // namespace

bool try_parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  if (!try_parse_u64(text, value)) {
    reject(text, what, "a non-negative integer");
  }
  return value;
}

std::uint64_t parse_positive_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  if (!try_parse_u64(text, value) || value == 0) {
    reject(text, what, "a positive integer");
  }
  return value;
}

bool parse_bool01(std::string_view text, std::string_view what) {
  if (text == "1") return true;
  if (text == "0") return false;
  reject(text, what, "\"0\" or \"1\"");
}

std::uint32_t parse_u32(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  if (!try_parse_u64(text, value) ||
      value > std::numeric_limits<std::uint32_t>::max()) {
    reject(text, what, "a non-negative 32-bit integer");
  }
  return static_cast<std::uint32_t>(value);
}

std::uint32_t parse_positive_u32(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  if (!try_parse_u64(text, value) || value == 0 ||
      value > std::numeric_limits<std::uint32_t>::max()) {
    reject(text, what, "a positive 32-bit integer");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace syncpat::util

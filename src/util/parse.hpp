// Strict integer parsing shared by every CLI flag and environment knob.
//
// Policy (the SYNCPAT_SCALE policy, now repo-wide): a value the user wrote is
// either a clean decimal integer or an error — never a silent default.  atoi
// and bare strtoull both turn "foo" into 0, which downstream code then treats
// as a legitimate configuration; a mistyped flag must fail loudly instead.
// Rejected: empty strings, leading whitespace, signs (+/-), hex/octal
// prefixes, trailing junk, and values that overflow the target width.
#pragma once

#include <cstdint>
#include <string_view>

namespace syncpat::util {

/// Fills `out` and returns true only for a clean all-digit decimal that fits
/// in a u64.  Never throws; the building block for the throwing wrappers.
[[nodiscard]] bool try_parse_u64(std::string_view text, std::uint64_t& out);

/// Non-negative integer (0 allowed, e.g. --jobs 0 = all cores).  Throws
/// std::invalid_argument naming `what` on any malformed input.
[[nodiscard]] std::uint64_t parse_u64(std::string_view text,
                                      std::string_view what);

/// Positive integer (>= 1).  Throws std::invalid_argument naming `what` on
/// malformed input or 0.
[[nodiscard]] std::uint64_t parse_positive_u64(std::string_view text,
                                               std::string_view what);

/// Strict boolean knob: "1" -> true, "0" -> false, anything else throws
/// std::invalid_argument naming `what` (no "true"/"yes"/empty shorthands —
/// one spelling per value, same as the integer knobs).
[[nodiscard]] bool parse_bool01(std::string_view text, std::string_view what);

/// 32-bit variants for config knobs stored as u32 (also rejects > 2^32-1).
[[nodiscard]] std::uint32_t parse_u32(std::string_view text,
                                      std::string_view what);
[[nodiscard]] std::uint32_t parse_positive_u32(std::string_view text,
                                               std::string_view what);

}  // namespace syncpat::util

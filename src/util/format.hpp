// Number formatting helpers for paper-style tables.
#pragma once

#include <cstdint>
#include <string>

namespace syncpat::util {

/// 1234567 -> "1,234,567"
[[nodiscard]] std::string with_commas(std::uint64_t value);
[[nodiscard]] std::string with_commas(std::int64_t value);

/// Fixed-point with the given number of decimals: (3.14159, 2) -> "3.14".
[[nodiscard]] std::string fixed(double value, int decimals);

/// Percentage with the given decimals: (0.325, 1) -> "32.5".
[[nodiscard]] std::string percent(double fraction, int decimals);

/// Left/right padding to a column width.
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

}  // namespace syncpat::util

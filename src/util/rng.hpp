// Deterministic, seedable random number generation for workload synthesis.
//
// Trace generation must be exactly reproducible across runs and platforms, so
// we avoid std::mt19937 + std::*_distribution (whose outputs are not pinned by
// the standard for all distributions) and implement xoshiro256** with our own
// distribution helpers.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <span>

#include "util/assert.hpp"

namespace syncpat::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), a fast high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    SYNCPAT_ASSERT(bound > 0);
    // Rejection-free fast path is fine for simulation workloads; bias from the
    // plain multiply-shift is < 2^-64 * bound which is irrelevant here, but we
    // reject anyway to keep the generator exactly uniform.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    SYNCPAT_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Geometric number of failures before success; mean = (1-p)/p.
  std::uint64_t geometric(double p) {
    SYNCPAT_ASSERT(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    return geometric_from_log(std::log1p(-p));
  }

  /// geometric() with the invariant log1p(-p) precomputed by the caller:
  /// hot loops drawing many values at a fixed p hoist the log out of the
  /// per-draw path.  Same division, so results stay bit-identical.
  std::uint64_t geometric_from_log(double log1m_p) {
    const double u = uniform();
    return static_cast<std::uint64_t>(std::log1p(-u) / log1m_p);
  }

  /// Exponential with the given mean, rounded to an integer cycle count.
  std::uint64_t exponential_cycles(double mean) {
    SYNCPAT_ASSERT(mean >= 0.0);
    if (mean == 0.0) return 0;
    const double u = uniform();
    return static_cast<std::uint64_t>(-mean * std::log1p(-u));
  }

  /// Pick an index weighted by `weights` (need not be normalized).  Weights
  /// must be finite and non-negative with a positive sum: a NaN weight would
  /// make the subtraction scan below never go negative and silently return
  /// the last index (and NaN also slips past a plain `total > 0.0` assert,
  /// since every comparison with NaN is false), so the check is explicit and
  /// always on.
  std::size_t weighted_pick(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      SYNCPAT_ASSERT_MSG(std::isfinite(w) && w >= 0.0,
                         "weighted_pick weights must be finite and >= 0");
      total += w;
    }
    SYNCPAT_ASSERT_MSG(std::isfinite(total) && total > 0.0,
                       "weighted_pick weights must sum to a positive value");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Repeated geometric draws at a fixed p, bit-identical to
/// Rng::geometric_from_log(log1m_p) but without a libm call per draw.
///
/// geometric_from_log maps u = (next_u64() >> 11) * 2^-53 to
/// floor(log1p(-u) / log1m_p), which is a monotone non-decreasing step
/// function of the 53-bit integer n = next_u64() >> 11.  The constructor
/// binary-searches the exact n at which the result steps from k to k+1 for
/// the first kTable values, so a draw is one next_u64() plus a short integer
/// scan.  Draws that land past the table (probability (1-p)^kTable) fall
/// back to the original formula on the same n, so every draw consumes
/// exactly one next_u64() and yields exactly the value the formula would.
///
/// When p is so small that most draws would overrun the table (mean gap
/// beyond ~tens of cycles), the table is skipped entirely and every draw
/// uses the formula — same results, and those profiles draw rarely anyway.
class GeometricSampler {
 public:
  GeometricSampler() = default;

  explicit GeometricSampler(double log1m_p) : log1m_p_(log1m_p) {
    SYNCPAT_ASSERT(log1m_p < 0.0);
    // Worthwhile only if at least half the draws resolve inside the table.
    use_table_ = static_cast<double>(kTable) * log1m_p < kLnHalf;
    if (!use_table_) return;
    std::uint64_t lo = 0;
    for (std::uint32_t k = 0; k < kTable; ++k) {
      // bound_[k] = smallest n with value(n) >= k+1 (sentinel 2^53 if none);
      // boundaries are non-decreasing, so each search resumes at the last.
      std::uint64_t hi = 1ull << 53;
      while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (value(mid) >= k + 1) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      bound_[k] = lo;
    }
  }

  /// One geometric draw; consumes exactly one next_u64().
  std::uint64_t draw(Rng& rng) {
    const std::uint64_t n = rng.next_u64() >> 11;
    if (use_table_) {
      std::uint32_t k = 0;
      while (k < kTable && n >= bound_[k]) ++k;
      if (k < kTable) return k;
    }
    return value(n);
  }

 private:
  static constexpr std::uint32_t kTable = 32;
  static constexpr double kLnHalf = -0.6931471805599453;

  /// The reference mapping — the identical expression geometric_from_log
  /// evaluates, on the integer the uniform draw quantizes to.
  [[nodiscard]] std::uint64_t value(std::uint64_t n) const {
    const double u = static_cast<double>(n) * 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log1p(-u) / log1m_p_);
  }

  double log1m_p_ = 0.0;
  bool use_table_ = false;
  std::array<std::uint64_t, kTable> bound_{};
};

}  // namespace syncpat::util

// Lightweight always-on assertion macro for simulator invariants.
//
// The simulator is a measurement instrument: a silently-corrupted state
// machine produces plausible-looking but wrong numbers, so invariant checks
// stay enabled in release builds.  The cost is negligible next to the
// per-cycle work of the engine.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace syncpat::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "syncpat assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace syncpat::util

#define SYNCPAT_ASSERT(expr)                                                     \
  ((expr) ? static_cast<void>(0)                                                 \
          : ::syncpat::util::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define SYNCPAT_ASSERT_MSG(expr, msg)                                            \
  ((expr) ? static_cast<void>(0)                                                 \
          : ::syncpat::util::assert_fail(#expr, __FILE__, __LINE__, (msg)))

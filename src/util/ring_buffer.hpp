// Fixed-capacity FIFO ring buffer.
//
// Models all the hardware queues in the machine: the 4-deep cache-bus buffer,
// the 2-deep memory input/output buffers.  Capacity is a run-time parameter
// (buffer-depth ablations sweep it), storage is a single allocation made at
// construction, and no allocation happens on the simulation fast path.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace syncpat::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    SYNCPAT_ASSERT(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }

  /// Append at the tail.  Precondition: !full().
  void push_back(T value) {
    SYNCPAT_ASSERT(!full());
    slots_[index(size_)] = std::move(value);
    ++size_;
  }

  /// Insert at the head (used by weak-ordering read bypass).
  /// Precondition: !full().
  void push_front(T value) {
    SYNCPAT_ASSERT(!full());
    head_ = (head_ + slots_.size() - 1) % slots_.size();
    slots_[head_] = std::move(value);
    ++size_;
  }

  /// Remove and return the head element.  Precondition: !empty().
  T pop_front() {
    SYNCPAT_ASSERT(!empty());
    T value = std::move(slots_[head_]);
    head_ = index(1);
    --size_;
    return value;
  }

  [[nodiscard]] T& front() {
    SYNCPAT_ASSERT(!empty());
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    SYNCPAT_ASSERT(!empty());
    return slots_[head_];
  }

  /// Element i positions from the head (0 == front).
  [[nodiscard]] T& at(std::size_t i) {
    SYNCPAT_ASSERT(i < size_);
    return slots_[index(i)];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    SYNCPAT_ASSERT(i < size_);
    return slots_[index(i)];
  }

  /// Remove the element i positions from the head, preserving order.
  /// O(size); queues here are at most a few entries deep.
  T remove_at(std::size_t i) {
    SYNCPAT_ASSERT(i < size_);
    T value = std::move(slots_[index(i)]);
    for (std::size_t j = i; j + 1 < size_; ++j) {
      slots_[index(j)] = std::move(slots_[index(j + 1)]);
    }
    --size_;
    return value;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t offset) const {
    return (head_ + offset) % slots_.size();
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace syncpat::util

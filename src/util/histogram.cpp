#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/assert.hpp"

namespace syncpat::util {

void Histogram::add(std::uint64_t value) {
  std::size_t bucket = 0;
  if (value > 0) {
    bucket = static_cast<std::size_t>(std::bit_width(value));
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets_[bucket];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::uint64_t Histogram::bucket_lo(std::size_t i) {
  if (i == 0) return 0;
  return 1ULL << (i - 1);
}

std::uint64_t Histogram::bucket_hi(std::size_t i) {
  if (i == 0) return 0;
  return (1ULL << i) - 1;
}

std::uint64_t Histogram::quantile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the sample the quantile falls on, clamped to the last sample:
  // with p = 1.0 the unclamped target equals count_, which no cumulative
  // count exceeds, and the scan used to fall through to bucket_hi(32) ~ 2^63
  // regardless of the data.  Clamping returns the hi bound of the highest
  // occupied bucket instead.
  const auto target = std::min(
      static_cast<std::uint64_t>(p * static_cast<double>(count_)), count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) return std::clamp(bucket_hi(i), min_, max_);
  }
  return max_;
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  std::uint64_t peak = 0;
  for (auto b : buckets_) peak = std::max(peak, b);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const int bar =
        peak > 0 ? static_cast<int>(40 * buckets_[i] / peak) : 0;
    out << '[' << bucket_lo(i) << ", " << bucket_hi(i) << "]: " << buckets_[i]
        << ' ' << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  return out.str();
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace syncpat::util

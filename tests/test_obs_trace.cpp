// Tests for the cycle-stamped event-tracing subsystem (src/obs/): recorder
// staging/draining, category parsing, Chrome trace-event JSON validity, the
// hand-off == Transfers accounting contract, byte-identical results with
// tracing off vs on, identical traces across engine job counts, and bulk
// idle spans from the fast-forward engine.
//
// Suite names all start with "Trace" so `--gtest_filter='Trace*'` (the TSan
// recipe in EXPERIMENTS.md) covers the whole layer.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_engine.hpp"
#include "core/simulator.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/event_recorder.hpp"
#include "obs/lock_timeline.hpp"
#include "report/lock_timeline.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace syncpat {
namespace {

using obs::EventKind;
using obs::TraceEvent;

/// Records every delivered event plus the flush calls.
class RecordingSink final : public obs::TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events.push_back(event); }
  void on_flush() override { ++flushes; }

  std::vector<TraceEvent> events;
  int flushes = 0;
};

TEST(TraceRecorder, DeliversEventsInOrderThroughATinyRing) {
  obs::TraceConfig config;
  config.enabled = true;
  config.ring_capacity = 2;  // forces mid-run drains
  obs::EventRecorder recorder(config);
  RecordingSink sink;
  recorder.add_sink(&sink);

  for (std::uint64_t c = 1; c <= 5; ++c) {
    TraceEvent ev;
    ev.cycle = c;
    ev.kind = EventKind::kAcquired;
    recorder.emit(ev);
  }
  recorder.flush();

  EXPECT_EQ(recorder.emitted(), 5u);
  ASSERT_EQ(sink.events.size(), 5u);
  for (std::uint64_t c = 1; c <= 5; ++c) {
    EXPECT_EQ(sink.events[c - 1].cycle, c);
  }
  EXPECT_EQ(sink.flushes, 1);
}

TEST(TraceRecorder, CategoryMaskFiltersWants) {
  obs::TraceConfig config;
  config.categories = obs::category::kLocks | obs::category::kIdle;
  obs::EventRecorder recorder(config);
  EXPECT_TRUE(recorder.wants(obs::category::kLocks));
  EXPECT_TRUE(recorder.wants(obs::category::kIdle));
  EXPECT_FALSE(recorder.wants(obs::category::kBus));
  EXPECT_FALSE(recorder.wants(obs::category::kCoherence));
}

TEST(TraceCategories, ParseAndRender) {
  EXPECT_EQ(obs::parse_categories("locks"), obs::category::kLocks);
  EXPECT_EQ(obs::parse_categories("locks,bus,coherence"),
            obs::category::kLocks | obs::category::kBus |
                obs::category::kCoherence);
  EXPECT_EQ(obs::parse_categories("all"), obs::category::kAll);
  EXPECT_THROW(static_cast<void>(obs::parse_categories("nope")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(obs::parse_categories("")),
               std::invalid_argument);
  EXPECT_EQ(obs::categories_to_string(obs::category::kLocks |
                                      obs::category::kBus),
            "locks,bus");
  EXPECT_EQ(obs::categories_to_string(obs::category::kAll), "all");
}

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker — enough to prove the exporter's output is
// well-formed (Perfetto rejects anything a standard parser would).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') { ++pos_; return true; }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

core::ExperimentOutcome traced_qsort(
    std::uint32_t categories,
    core::EngineKind engine = core::EngineKind::kDes) {
  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kQueuing;
  config.trace.enabled = true;
  config.trace.categories = categories;
  config.engine = engine;
  return core::run_experiment(config, workload::qsort_profile(), 128);
}

TEST(TraceChrome, ExportIsWellFormedJson) {
  const core::ExperimentOutcome outcome = traced_qsort(obs::category::kAll);
  ASSERT_FALSE(outcome.trace_json.empty());
  JsonChecker checker(outcome.trace_json);
  EXPECT_TRUE(checker.valid());
  // The four fixed tracks plus the per-processor thread names.
  EXPECT_GE(count_occurrences(outcome.trace_json, "\"process_name\""), 4u);
  EXPECT_GE(count_occurrences(outcome.trace_json, "\"thread_name\""),
            static_cast<std::size_t>(workload::qsort_profile().num_procs));
}

// The acceptance contract: hand-off events are emitted at the exact source
// line that counts a transfer, so their count in the exported JSON equals
// the Transfers column of the contention tables — under both engines.
TEST(TraceChrome, HandoffCountEqualsTransfersColumn) {
  for (const core::EngineKind engine :
       {core::EngineKind::kDes, core::EngineKind::kTick}) {
    const core::ExperimentOutcome outcome =
        traced_qsort(obs::category::kAll, engine);
    EXPECT_GT(outcome.sim.locks.transfers, 0u) << core::engine_name(engine);
    EXPECT_EQ(count_occurrences(outcome.trace_json, "\"name\":\"handoff\""),
              outcome.sim.locks.transfers)
        << core::engine_name(engine);
    EXPECT_EQ(outcome.lock_timeline.total_handoffs(),
              outcome.sim.locks.transfers)
        << core::engine_name(engine);
  }
}

// The DES core ticks only event cycles but emits the exact per-cycle event
// stream (it never substitutes bulk idle-span records), so the exported
// trace bytes must match per-cycle ticking exactly.
TEST(TraceEngine, TraceBytesIdenticalAcrossExecutionEngines) {
  core::MachineConfig tick;
  tick.lock_scheme = sync::SchemeKind::kQueuing;
  tick.trace.enabled = true;
  tick.engine = core::EngineKind::kTick;
  tick.fast_forward = false;  // run-ahead would legitimately emit idle spans
  const core::ExperimentOutcome per_cycle =
      core::run_experiment(tick, workload::qsort_profile(), 128);

  const core::ExperimentOutcome des = traced_qsort(obs::category::kAll);
  ASSERT_FALSE(des.trace_json.empty());
  EXPECT_EQ(count_occurrences(des.trace_json, "\"name\":\"quiescent\""), 0u);
  EXPECT_EQ(des.trace_json, per_cycle.trace_json);
}

TEST(TraceChrome, CategoryFilterDropsOtherTracks) {
  const core::ExperimentOutcome locks_only =
      traced_qsort(obs::category::kLocks);
  EXPECT_GT(count_occurrences(locks_only.trace_json, "\"name\":\"handoff\""),
            0u);
  EXPECT_EQ(count_occurrences(locks_only.trace_json, "->"), 0u);  // no MESI
}

TEST(TraceChrome, OutPathSplicesSanitizedLabel) {
  EXPECT_EQ(obs::trace_out_path("out.json", "Grav/queuing"),
            "out.Grav-queuing.json");
  EXPECT_EQ(obs::trace_out_path("trace", "Qsort x128"), "trace.Qsort-x128");
}

/// Everything the paper tables report, for exact comparison.
std::string result_fingerprint(const core::SimulationResult& sim) {
  std::string out;
  out += "run_time=" + std::to_string(sim.run_time);
  out += " acq=" + std::to_string(sim.locks.acquisitions);
  out += " xfer=" + std::to_string(sim.locks.transfers);
  out += " bus=" + std::to_string(sim.traffic.total());
  out += " barriers=" + std::to_string(sim.barriers_completed);
  for (const core::ProcResult& p : sim.per_proc) {
    out += " [" + std::to_string(p.work_cycles) + "," +
           std::to_string(p.stall_cache) + "," + std::to_string(p.stall_lock) +
           "," + std::to_string(p.completion_cycle) + "]";
  }
  return out;
}

// Tracing must be a pure observer: results with the recorder attached are
// identical to a default-off run.
TEST(TraceParity, ResultsIdenticalTracingOffVsOn) {
  core::MachineConfig off;
  off.lock_scheme = sync::SchemeKind::kTtas;
  const core::ExperimentOutcome plain =
      core::run_experiment(off, workload::grav_profile(), 128);
  EXPECT_TRUE(plain.trace_json.empty());

  core::MachineConfig on = off;
  on.trace.enabled = true;
  const core::ExperimentOutcome traced =
      core::run_experiment(on, workload::grav_profile(), 128);
  EXPECT_FALSE(traced.trace_json.empty());

  EXPECT_EQ(result_fingerprint(plain.sim), result_fingerprint(traced.sim));
}

// Per-cell sinks make the trace documents an engine-level determinism
// guarantee: the same grid yields the same bytes at any worker count.
TEST(TraceEngine, TraceJsonIdenticalAcrossJobCounts) {
  core::ExperimentGrid grid;
  grid.base.trace.enabled = true;
  grid.profiles = {workload::qsort_profile()};
  grid.schemes = {sync::SchemeKind::kQueuing, sync::SchemeKind::kTtas};
  grid.scales = {128};

  core::EngineOptions serial;
  serial.jobs = 1;
  core::EngineOptions pooled;
  pooled.jobs = 4;
  const core::GridResult a = core::run_grid(grid, serial);
  const core::GridResult b = core::run_grid(grid, pooled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a.results[i].ok());
    ASSERT_TRUE(b.results[i].ok());
    EXPECT_FALSE(a.results[i].outcome.trace_json.empty());
    EXPECT_EQ(a.results[i].outcome.trace_json, b.results[i].outcome.trace_json)
        << "cell " << a.cells[i].label();
    EXPECT_EQ(a.results[i].outcome.lock_timeline.total_handoffs(),
              a.results[i].outcome.sim.locks.transfers)
        << "cell " << a.cells[i].label();
  }
}

TEST(TraceTimeline, ReportTableCoversEveryPhase) {
  const core::ExperimentOutcome outcome = traced_qsort(obs::category::kLocks);
  ASSERT_FALSE(outcome.lock_timeline.locks.empty());
  const report::Table t =
      report::lock_timeline_table(outcome.lock_timeline, 4, 4);
  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("all"), std::string::npos);
  EXPECT_NE(text.str().find("1/4"), std::string::npos);
  EXPECT_NE(text.str().find("4/4"), std::string::npos);
}

// A fast-forwarded quiescent stretch must appear as one bulk idle-span
// event, not thousands of per-cycle records (and not be silently lost).
TEST(TraceFastForward, SkippedStretchesEmitBulkIdleSpans) {
  workload::BenchmarkProfile coarse = workload::grav_profile();
  coarse.work_cycles_per_ref = 400;  // long quiet gaps between references
  coarse.name = "Grav-coarse";
  const workload::BenchmarkProfile scaled = coarse.scaled(256);
  trace::ProgramTrace program = workload::make_program_trace(scaled);

  core::MachineConfig config;
  config.num_procs = scaled.num_procs;
  config.engine = core::EngineKind::kTick;  // run-ahead is a tick-engine mode
  config.fast_forward = true;
  config.trace.enabled = true;
  core::Simulator sim(config, program);
  RecordingSink sink;
  ASSERT_NE(sim.recorder(), nullptr);
  sim.recorder()->add_sink(&sink);
  const core::SimulationResult result = sim.run();

  ASSERT_GT(sim.fast_forward_stats().jumps, 0u)
      << "coarse profile did not engage fast-forward; test premise broken";
  std::uint64_t spans = 0;
  std::uint64_t last_cycle = 0;
  for (const TraceEvent& ev : sink.events) {
    if (ev.kind == EventKind::kIdleSpan) {
      // Emitted when the stretch ends but stamped at its start (span
      // semantics), so it is exempt from the monotonicity check below.
      ++spans;
      EXPECT_GT(ev.a, 0u);    // span length
      EXPECT_LE(ev.b, ev.a);  // executed ticks fit inside the span
      EXPECT_LE(ev.cycle + ev.a, result.run_time);
      continue;
    }
    EXPECT_GE(ev.cycle, last_cycle) << "events out of simulation order";
    last_cycle = ev.cycle;
  }
  EXPECT_GT(spans, 0u);
}

}  // namespace
}  // namespace syncpat

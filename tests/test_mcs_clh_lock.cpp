// List-based queue locks through the full machine: MCS (spin on own node,
// release writes the successor's node) and CLH (spin on the predecessor's
// node, release writes the releaser's own node).  Test names are prefixed
// McsLock/ClhLock so the TSan recipe's --gtest_filter=Mcs*:Clh* picks them
// up (see .claude/skills/verify/SKILL.md).
#include <gtest/gtest.h>

#include "sync/clh_lock.hpp"
#include "sync/mcs_lock.hpp"
#include "test_util.hpp"
#include "trace/address_map.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

// N processors each acquire/release the same lock `rounds` times.
trace::ProgramTrace contended(std::uint32_t procs, int rounds,
                              std::uint32_t cs_gap,
                              std::uint32_t think_gap = 4) {
  std::vector<std::vector<trace::Event>> traces(procs);
  for (std::uint32_t p = 0; p < procs; ++p) {
    for (int r = 0; r < rounds; ++r) {
      traces[p].push_back(lock_acq(0, think_gap));
      traces[p].push_back(load(shared_line(1), cs_gap));
      traces[p].push_back(lock_rel(0, 2));
    }
  }
  return make_program(std::move(traces));
}

TEST(McsLock, UncontendedAcquireReleaseCompletes) {
  trace::ProgramTrace program = make_program({{
      lock_acq(0, 1),
      load(shared_line(1), 5),
      lock_rel(0, 1),
  }});
  const SimulationResult r = simulate(machine(sync::SchemeKind::kMcs), program);
  EXPECT_EQ(r.locks.acquisitions, 1u);
  EXPECT_EQ(r.locks.transfers, 0u);
  EXPECT_EQ(r.per_proc[0].stall_lock, 0u);
}

TEST(McsLock, MutualExclusionUnderContention) {
  trace::ProgramTrace program = contended(8, 20, 10);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kMcs), program);
  EXPECT_EQ(r.locks.acquisitions, 8u * 20u);
  EXPECT_GT(r.locks.transfers, 80u);
  EXPECT_EQ(r.scheme, std::string("mcs"));
}

TEST(McsLock, NodeLinesAreDistinctPerProcessorAndInLockRegion) {
  std::uint32_t prev = 0;
  for (std::uint32_t p = 0; p < 64; ++p) {
    const std::uint32_t line = sync::McsLock::node_line(p);
    EXPECT_GE(line, trace::AddressMap::kLockBase);
    if (p > 0) {
      EXPECT_GT(line, prev);
    }
    prev = line;
    // Never aliases the CLH node slice.
    EXPECT_NE(line, sync::ClhLock::node_line(p));
  }
}

TEST(McsLock, PassiveWaitersGenerateNoBusTraffic) {
  // One long critical section with everyone queued on their own node line:
  // the bus stays quiet while they wait.
  trace::ProgramTrace program = contended(8, 2, 400);
  MachineConfig config = machine(sync::SchemeKind::kMcs);
  config.num_procs = 8;
  Simulator sim(config, program);
  const SimulationResult r = sim.run();
  EXPECT_LT(sim.bus().utilization(), 0.25);
  EXPECT_GT(r.locks.waiters_at_transfer.mean(), 3.0);
}

TEST(McsLock, HandoffCheaperThanTtasHerd) {
  // Targeted wake (write the successor's node) vs the ttas broadcast herd.
  trace::ProgramTrace p1 = contended(10, 25, 20);
  trace::ProgramTrace p2 = contended(10, 25, 20);
  const SimulationResult mcs = simulate(machine(sync::SchemeKind::kMcs), p1);
  const SimulationResult tt = simulate(machine(sync::SchemeKind::kTtas), p2);
  EXPECT_LT(mcs.locks.transfer_cycles.mean(), tt.locks.transfer_cycles.mean());
}

TEST(McsLock, WaitersAtTransferCountsQueueDepth) {
  // Hand-off-style accounting: every transfer should observe the queue the
  // releaser saw, not zero (the regression the waiters-at-acquire fix pins).
  trace::ProgramTrace program = contended(8, 20, 30);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kMcs), program);
  EXPECT_EQ(r.locks.waiters_at_transfer.count(), r.locks.transfers);
  EXPECT_GT(r.locks.waiters_at_transfer.mean(), 2.0);
}

TEST(ClhLock, UncontendedAcquireReleaseCompletes) {
  trace::ProgramTrace program = make_program({{
      lock_acq(0, 1),
      load(shared_line(1), 5),
      lock_rel(0, 1),
  }});
  const SimulationResult r = simulate(machine(sync::SchemeKind::kClh), program);
  EXPECT_EQ(r.locks.acquisitions, 1u);
  EXPECT_EQ(r.locks.transfers, 0u);
  EXPECT_EQ(r.per_proc[0].stall_lock, 0u);
}

TEST(ClhLock, MutualExclusionUnderContention) {
  trace::ProgramTrace program = contended(8, 20, 10);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kClh), program);
  EXPECT_EQ(r.locks.acquisitions, 8u * 20u);
  EXPECT_GT(r.locks.transfers, 80u);
  EXPECT_EQ(r.scheme, std::string("clh"));
}

TEST(ClhLock, PassiveWaitersGenerateNoBusTraffic) {
  trace::ProgramTrace program = contended(8, 2, 400);
  MachineConfig config = machine(sync::SchemeKind::kClh);
  config.num_procs = 8;
  Simulator sim(config, program);
  const SimulationResult r = sim.run();
  EXPECT_LT(sim.bus().utilization(), 0.25);
  EXPECT_GT(r.locks.waiters_at_transfer.mean(), 3.0);
}

TEST(ClhLock, HandoffNoSlowerThanMcs) {
  // CLH release writes its own (usually still-exclusive) node: one bus
  // transaction cheaper than MCS's write to the successor's node.
  trace::ProgramTrace p1 = contended(10, 25, 20);
  trace::ProgramTrace p2 = contended(10, 25, 20);
  const SimulationResult clh = simulate(machine(sync::SchemeKind::kClh), p1);
  const SimulationResult mcs = simulate(machine(sync::SchemeKind::kMcs), p2);
  EXPECT_LE(clh.locks.transfer_cycles.mean(),
            mcs.locks.transfer_cycles.mean() + 0.5);
}

TEST(ClhLock, CompletesUnderDsmCostModel) {
  // The predecessor's node line is rarely home-local under DSM; the remote
  // penalty slows hand-offs but must never lose an acquisition.
  trace::ProgramTrace p1 = contended(6, 15, 20);
  trace::ProgramTrace p2 = contended(6, 15, 20);
  MachineConfig dsm = machine(sync::SchemeKind::kClh);
  dsm.model = MemModelKind::kDsm;
  dsm.dsm.nodes = 4;
  dsm.dsm.remote_access_cycles = 20;
  const SimulationResult remote = simulate(dsm, p1);
  const SimulationResult local =
      simulate(machine(sync::SchemeKind::kClh), p2);
  EXPECT_EQ(remote.locks.acquisitions, 6u * 15u);
  EXPECT_GE(remote.run_time, local.run_time);
}

TEST(ClhLock, ManyLocksIndependent) {
  // Each processor on its own lock: the implicit queues never interact and
  // no hand-offs happen anywhere.
  std::vector<std::vector<trace::Event>> traces(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int r = 0; r < 10; ++r) {
      traces[p].push_back(lock_acq(p + 1, 3));
      traces[p].push_back(lock_rel(p + 1, 5));
    }
  }
  trace::ProgramTrace program = make_program(std::move(traces));
  const SimulationResult r = simulate(machine(sync::SchemeKind::kClh), program);
  EXPECT_EQ(r.locks.acquisitions, 40u);
  EXPECT_EQ(r.locks.transfers, 0u);
}

}  // namespace
}  // namespace syncpat::core

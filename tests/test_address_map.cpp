#include "trace/address_map.hpp"

#include <gtest/gtest.h>

namespace syncpat::trace {
namespace {

TEST(AddressMap, ClassifyRegions) {
  EXPECT_EQ(AddressMap::classify(AddressMap::code_addr(0)), Region::kCode);
  EXPECT_EQ(AddressMap::classify(AddressMap::code_addr(0x1000)), Region::kCode);
  EXPECT_EQ(AddressMap::classify(AddressMap::private_addr(0, 0)), Region::kPrivate);
  EXPECT_EQ(AddressMap::classify(AddressMap::shared_addr(0)), Region::kShared);
  EXPECT_EQ(AddressMap::classify(AddressMap::lock_addr(0)), Region::kLock);
}

TEST(AddressMap, RegionBoundaries) {
  EXPECT_EQ(AddressMap::classify(AddressMap::kPrivateBase - 1), Region::kCode);
  EXPECT_EQ(AddressMap::classify(AddressMap::kPrivateBase), Region::kPrivate);
  EXPECT_EQ(AddressMap::classify(AddressMap::kSharedBase - 1), Region::kPrivate);
  EXPECT_EQ(AddressMap::classify(AddressMap::kSharedBase), Region::kShared);
  EXPECT_EQ(AddressMap::classify(AddressMap::kLockBase - 1), Region::kShared);
  EXPECT_EQ(AddressMap::classify(AddressMap::kLockBase), Region::kLock);
}

TEST(AddressMap, LockIdRoundTrip) {
  for (std::uint32_t id : {0u, 1u, 7u, 1000u, 100000u}) {
    EXPECT_EQ(AddressMap::lock_id(AddressMap::lock_addr(id)), id);
  }
}

TEST(AddressMap, LocksNeverShareA64ByteLine) {
  EXPECT_GE(AddressMap::lock_addr(1) - AddressMap::lock_addr(0), 64u);
}

TEST(AddressMap, PrivateOwnerRoundTrip) {
  for (std::uint32_t proc : {0u, 1u, 11u, 19u}) {
    const std::uint32_t addr = AddressMap::private_addr(proc, 12345);
    EXPECT_EQ(AddressMap::private_owner(addr), proc);
  }
}

TEST(AddressMap, PrivateSegmentsDisjoint) {
  const std::uint32_t end0 =
      AddressMap::private_addr(0, AddressMap::kPrivateSegment - 4);
  const std::uint32_t start1 = AddressMap::private_addr(1, 0);
  EXPECT_LT(end0, start1);
}

TEST(AddressMap, SharedDataIncludesLocks) {
  EXPECT_TRUE(AddressMap::is_shared_data(AddressMap::shared_addr(64)));
  EXPECT_TRUE(AddressMap::is_shared_data(AddressMap::lock_addr(3)));
  EXPECT_FALSE(AddressMap::is_shared_data(AddressMap::code_addr(8)));
  EXPECT_FALSE(AddressMap::is_shared_data(AddressMap::private_addr(2, 8)));
}

TEST(AddressMap, RegionNames) {
  EXPECT_STREQ(region_name(Region::kCode), "code");
  EXPECT_STREQ(region_name(Region::kPrivate), "private");
  EXPECT_STREQ(region_name(Region::kShared), "shared");
  EXPECT_STREQ(region_name(Region::kLock), "lock");
}

}  // namespace
}  // namespace syncpat::trace

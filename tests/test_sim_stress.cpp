// Stress and conservation properties over a configuration matrix: every
// (scheme x consistency x write-policy x buffer-depth) combination must
// complete a randomized workload while preserving the accounting invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "core/simulator.hpp"
#include "test_util.hpp"
#include "trace/analyzer.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

workload::BenchmarkProfile stress_profile(std::uint64_t seed) {
  workload::BenchmarkProfile p;
  p.name = "stress";
  p.num_procs = 6;
  p.refs_per_proc = 8'000;
  p.data_ref_fraction = 0.4;
  p.work_cycles_per_ref = 2.0;
  p.locality.private_fraction = 0.3;
  p.locality.cold_fraction = 0.1;
  p.locality.cold_region_bytes = 64 * 1024;
  p.locality.shared_hot_bytes = 2 * 1024;  // hot sharing: heavy coherence
  p.locality.shared_rerefs = 0.4;
  p.locality.write_fraction = 0.4;
  p.locking.pairs_per_proc = 60;
  p.locking.nested_per_proc = 20;
  p.locking.cs_work_cycles = 50;
  p.locking.num_locks = 2;
  p.locking.dominant_weight = 0.8;
  p.locking.barriers_per_proc = 4;
  p.seed = seed;
  return p;
}

using Config = std::tuple<sync::SchemeKind, bus::ConsistencyModel,
                          cache::WritePolicy, std::uint32_t>;

class StressMatrix : public ::testing::TestWithParam<Config> {};

TEST_P(StressMatrix, CompletesWithConsistentAccounting) {
  const auto [scheme, model, policy, depth] = GetParam();
  workload::BenchmarkProfile profile = stress_profile(0x57e55);
  trace::ProgramTrace program = workload::make_program_trace(profile);
  const trace::IdealProgramStats ideal = trace::analyze_program(program);

  MachineConfig config;
  config.lock_scheme = scheme;
  config.consistency = model;
  config.write_policy = policy;
  config.cache_bus_buffer_depth = depth;
  config.num_procs = profile.num_procs;
  Simulator sim(config, program);
  const SimulationResult r = sim.run();

  // Conservation: every work cycle of the ideal trace was executed.
  for (std::uint32_t p = 0; p < profile.num_procs; ++p) {
    EXPECT_EQ(r.per_proc[p].work_cycles, ideal.per_proc[p].work_cycles)
        << "proc " << p;
    // completion = work + stalls (every cycle is one or the other).
    EXPECT_EQ(r.per_proc[p].work_cycles + r.per_proc[p].total_stalls(),
              r.per_proc[p].completion_cycle)
        << "proc " << p;
  }

  // Every lock pair acquired and released; every barrier completed.
  std::uint64_t ideal_pairs = 0;
  for (const auto& p : ideal.per_proc) ideal_pairs += p.lock_pairs;
  EXPECT_EQ(r.locks.acquisitions, ideal_pairs);
  EXPECT_EQ(r.barriers_completed, 4u);

  // Stall-cause percentages are a partition.
  if (r.stall_cache_pct + r.stall_lock_pct > 0.0) {
    EXPECT_NEAR(r.stall_cache_pct + r.stall_lock_pct, 100.0, 0.01);
  }

  // The bus was used but never over-accounted.
  EXPECT_GT(r.traffic.total(), 0u);
  EXPECT_LE(r.bus_utilization, 1.0);
  EXPECT_GT(r.run_time, 0u);
}

std::string matrix_name(const ::testing::TestParamInfo<Config>& info) {
  std::string name = sync::scheme_kind_name(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += std::get<1>(info.param) == bus::ConsistencyModel::kWeak ? "_wo" : "_sc";
  name += std::get<2>(info.param) == cache::WritePolicy::kWriteThrough ? "_wt"
                                                                       : "_wb";
  name += "_d" + std::to_string(std::get<3>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StressMatrix,
    ::testing::Combine(
        ::testing::Values(sync::SchemeKind::kQueuing,
                          sync::SchemeKind::kQueuingExact,
                          sync::SchemeKind::kTtas, sync::SchemeKind::kTas,
                          sync::SchemeKind::kTasBackoff,
                          sync::SchemeKind::kTicket,
                          sync::SchemeKind::kAnderson),
        ::testing::Values(bus::ConsistencyModel::kSequential,
                          bus::ConsistencyModel::kWeak),
        ::testing::Values(cache::WritePolicy::kWriteBack,
                          cache::WritePolicy::kWriteThrough),
        ::testing::Values(1u, 4u)),
    matrix_name);

TEST(StressSeeds, ManySeedsOneConfig) {
  // Shake out rare interleavings with different workload seeds.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::BenchmarkProfile profile = stress_profile(seed * 7919);
    trace::ProgramTrace program = workload::make_program_trace(profile);
    MachineConfig config;
    config.lock_scheme = sync::SchemeKind::kTtas;
    config.num_procs = profile.num_procs;
    Simulator sim(config, program);
    const SimulationResult r = sim.run();
    EXPECT_GT(r.run_time, 0u) << "seed " << seed;
    EXPECT_EQ(r.barriers_completed, 4u) << "seed " << seed;
  }
}

TEST(StressTiny, SingleEventTracesInEveryCombination) {
  // Degenerate traces must not trip any engine assertion.
  for (const auto scheme : sync::all_scheme_kinds()) {
    for (const auto model : {bus::ConsistencyModel::kSequential,
                             bus::ConsistencyModel::kWeak}) {
      trace::ProgramTrace program = make_program({
          {lock_acq(0, 1), lock_rel(0, 1)},
          {store(shared_line(0), 1)},
      });
      const SimulationResult r = simulate(machine(scheme, model), program);
      EXPECT_EQ(r.locks.acquisitions, 1u);
    }
  }
}

}  // namespace
}  // namespace syncpat::core

// Strict-parsing policy tests (util/parse): a user-written value is either a
// clean decimal integer or a loud error — never a silent 0 the way atoi and
// bare strtoull degrade.  These lock the reject list: empty, whitespace,
// signs, hex/octal prefixes, trailing junk, and overflow.
#include "util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

namespace syncpat::util {
namespace {

TEST(TryParseU64, AcceptsCleanDecimals) {
  std::uint64_t v = 99;
  EXPECT_TRUE(try_parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(try_parse_u64("1", v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(try_parse_u64("007", v));
  EXPECT_EQ(v, 7u);  // leading zeros are still decimal, not octal
  EXPECT_TRUE(try_parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, 0xffff'ffff'ffff'ffffULL);
}

TEST(TryParseU64, RejectsEverythingAtoiWouldZero) {
  std::uint64_t v = 99;
  for (const char* bad :
       {"", " ", "foo", "12x", "x12", "1 2", " 12", "12 ", "+5", "-5", "0x10",
        "1e3", "3.5", "--procs", "\t4", "4\n"}) {
    EXPECT_FALSE(try_parse_u64(bad, v)) << '"' << bad << '"';
    EXPECT_EQ(v, 99u) << "out must be untouched on failure: \"" << bad << '"';
  }
}

TEST(TryParseU64, RejectsOverflow) {
  std::uint64_t v = 0;
  // 2^64 and beyond: one past max, a clean power of ten, and a huge string.
  for (const char* bad : {"18446744073709551616", "100000000000000000000",
                          "99999999999999999999999999"}) {
    EXPECT_FALSE(try_parse_u64(bad, v)) << bad;
  }
}

TEST(ParseU64, ThrowsWithFlagNameInMessage) {
  EXPECT_EQ(parse_u64("0", "--jobs"), 0u);  // 0 is legal for the non-positive variant
  try {
    (void)parse_u64("banana", "--jobs");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
  }
}

TEST(ParsePositiveU64, RejectsZero) {
  EXPECT_EQ(parse_positive_u64("3", "SYNCPAT_SCALE"), 3u);
  EXPECT_THROW((void)parse_positive_u64("0", "SYNCPAT_SCALE"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_positive_u64("00", "SYNCPAT_SCALE"),
               std::invalid_argument);
}

TEST(ParseU32, RejectsValuesBeyond32Bits) {
  EXPECT_EQ(parse_u32("4294967295", "--procs"), 0xffff'ffffu);
  EXPECT_THROW((void)parse_u32("4294967296", "--procs"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_u32("18446744073709551615", "--procs"),
               std::invalid_argument);
}

TEST(ParsePositiveU32, PositiveAnd32BitBoundsBothEnforced) {
  EXPECT_EQ(parse_positive_u32("1", "--buffer"), 1u);
  EXPECT_THROW((void)parse_positive_u32("0", "--buffer"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_positive_u32("4294967296", "--buffer"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_positive_u32("-1", "--buffer"),
               std::invalid_argument);
}

}  // namespace
}  // namespace syncpat::util

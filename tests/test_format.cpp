#include "util/format.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace syncpat::util {
namespace {

TEST(Format, WithCommasSmall) {
  EXPECT_EQ(with_commas(std::uint64_t{0}), "0");
  EXPECT_EQ(with_commas(std::uint64_t{7}), "7");
  EXPECT_EQ(with_commas(std::uint64_t{999}), "999");
}

TEST(Format, WithCommasGroups) {
  EXPECT_EQ(with_commas(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(with_commas(std::uint64_t{1234567}), "1,234,567");
  EXPECT_EQ(with_commas(std::uint64_t{1000000000}), "1,000,000,000");
}

TEST(Format, WithCommasNegative) {
  EXPECT_EQ(with_commas(std::int64_t{-1234567}), "-1,234,567");
  EXPECT_EQ(with_commas(std::int64_t{-1}), "-1");
}

// Regression: negating INT64_MIN inside with_commas was signed overflow (UB);
// the magnitude must be computed in unsigned arithmetic.
TEST(Format, WithCommasInt64Extremes) {
  EXPECT_EQ(with_commas(std::numeric_limits<std::int64_t>::min()),
            "-9,223,372,036,854,775,808");
  EXPECT_EQ(with_commas(std::numeric_limits<std::int64_t>::max()),
            "9,223,372,036,854,775,807");
}

TEST(Format, FixedDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.5, 0), "2");   // round-to-even
  EXPECT_EQ(fixed(-1.005, 1), "-1.0");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.325, 1), "32.5");
  EXPECT_EQ(percent(1.0, 0), "100");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace syncpat::util

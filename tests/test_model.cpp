// Unit tests for the closed-form throughput predictor (src/model/).  The
// model-validation report and the model-smoke gate measure end-to-end error
// against the simulator; these pin the analytic structure itself — the bound
// arithmetic, the per-scheme hand-off ordering, and the DSM penalties —
// which must hold regardless of how well the model fits any corpus.  Names
// are prefixed Model* for the TSan recipe's filter.
#include <gtest/gtest.h>

#include "model/predictor.hpp"

namespace syncpat::model {
namespace {

core::MachineConfig base_machine(sync::SchemeKind scheme) {
  core::MachineConfig cfg;
  cfg.lock_scheme = scheme;
  cfg.num_procs = 8;
  return cfg;
}

Calibration base_calib() {
  Calibration c;
  c.run_cycles = 10'000;
  c.acquisitions = 100;
  c.hold_mean = 20.0;
  c.bus_busy_cycles = 500.0;
  return c;
}

TEST(Model, MissCyclesMatchesMachineParameters) {
  core::MachineConfig cfg;
  // Arbitration + request phase + memory access + line transfer.
  const double expected = 2.0 + cfg.memory.access_cycles +
                          cfg.line_transfer_cycles();
  EXPECT_DOUBLE_EQ(miss_cycles(cfg), expected);
}

TEST(Model, DsmMissAddsExpectedRemotePenalty) {
  core::MachineConfig bus_cfg;
  core::MachineConfig dsm_cfg;
  dsm_cfg.model = core::MemModelKind::kDsm;
  dsm_cfg.dsm.nodes = 4;
  dsm_cfg.dsm.remote_access_cycles = 20;
  // Remote with probability (nodes-1)/nodes = 3/4.
  EXPECT_DOUBLE_EQ(miss_cycles(dsm_cfg), miss_cycles(bus_cfg) + 0.75 * 20.0);
}

TEST(Model, QueuingHandoffIsCheapestAndWaiterIndependent) {
  core::MachineConfig cfg;
  const double q0 = handoff_cycles(cfg, sync::SchemeKind::kQueuing, 0.0);
  const double q5 = handoff_cycles(cfg, sync::SchemeKind::kQueuing, 5.0);
  EXPECT_DOUBLE_EQ(q0, q5);  // directed notify: no herd term
  for (const auto kind : sync::all_scheme_kinds()) {
    EXPECT_LE(q5, handoff_cycles(cfg, kind, 5.0)) << "vs "
        << sync::scheme_kind_name(kind);
  }
}

TEST(Model, BroadcastSchemesGrowWithWaitersTargetedDoNot) {
  core::MachineConfig cfg;
  for (const auto kind : {sync::SchemeKind::kTtas, sync::SchemeKind::kTicket}) {
    EXPECT_GT(handoff_cycles(cfg, kind, 8.0), handoff_cycles(cfg, kind, 0.0))
        << sync::scheme_kind_name(kind);
  }
  for (const auto kind : {sync::SchemeKind::kAnderson, sync::SchemeKind::kMcs,
                          sync::SchemeKind::kClh}) {
    EXPECT_DOUBLE_EQ(handoff_cycles(cfg, kind, 8.0),
                     handoff_cycles(cfg, kind, 0.0))
        << sync::scheme_kind_name(kind);
  }
}

TEST(Model, ClhCheaperThanMcsOnBusButPenalizedUnderDsm) {
  core::MachineConfig bus_cfg;
  EXPECT_LT(handoff_cycles(bus_cfg, sync::SchemeKind::kClh, 3.0),
            handoff_cycles(bus_cfg, sync::SchemeKind::kMcs, 3.0));

  core::MachineConfig dsm_cfg;
  dsm_cfg.model = core::MemModelKind::kDsm;
  dsm_cfg.dsm.nodes = 8;
  dsm_cfg.dsm.remote_access_cycles = 40;
  // CLH spins on the predecessor's (remote-homed) node: the spin-line
  // penalty is charged on top of the 1.5-miss base, and it exactly cancels
  // the DSM growth of the MCS gap — the *relative* advantage over MCS must
  // shrink even though the absolute cycle gap stays put.
  EXPECT_GT(handoff_cycles(dsm_cfg, sync::SchemeKind::kClh, 3.0),
            1.5 * miss_cycles(dsm_cfg));
  const double rel_bus =
      handoff_cycles(bus_cfg, sync::SchemeKind::kClh, 3.0) /
      handoff_cycles(bus_cfg, sync::SchemeKind::kMcs, 3.0);
  const double rel_dsm =
      handoff_cycles(dsm_cfg, sync::SchemeKind::kClh, 3.0) /
      handoff_cycles(dsm_cfg, sync::SchemeKind::kMcs, 3.0);
  EXPECT_GT(rel_dsm, rel_bus);
  EXPECT_LT(rel_dsm, 1.0);
}

TEST(Model, FixedPriorityTasPaysEscapeWindows) {
  core::MachineConfig rr = base_machine(sync::SchemeKind::kTas);
  core::MachineConfig fp = base_machine(sync::SchemeKind::kTas);
  fp.bus_discipline = bus::DisciplineKind::kFixedPriority;
  // Uncontended: no starvation, no penalty.
  EXPECT_DOUBLE_EQ(handoff_cycles(fp, sync::SchemeKind::kTas, 0.0),
                   handoff_cycles(rr, sync::SchemeKind::kTas, 0.0));
  // Contended: two aging-escape windows on top of the miss pair.
  EXPECT_GE(handoff_cycles(fp, sync::SchemeKind::kTas, 2.0),
            handoff_cycles(rr, sync::SchemeKind::kTas, 2.0) +
                2.0 * bus::FixedPriorityDiscipline::kStarvationEscapeCycles);
}

TEST(Model, NoAcquisitionsPredictsParallelBound) {
  core::MachineConfig cfg = base_machine(sync::SchemeKind::kTtas);
  Calibration calib = base_calib();
  calib.acquisitions = 0;
  const Prediction p = predict(cfg, calib);
  EXPECT_DOUBLE_EQ(p.run_time, p.parallel_bound);
  EXPECT_FALSE(p.saturated);
  EXPECT_DOUBLE_EQ(p.expected_waiters, 0.0);
}

TEST(Model, SingleProcessorPredictsCalibrationExactly) {
  core::MachineConfig cfg = base_machine(sync::SchemeKind::kMcs);
  cfg.num_procs = 1;
  const Calibration calib = base_calib();
  const Prediction p = predict(cfg, calib);
  // P=1 adds no sharing misses and no contention: the calibration run IS
  // the prediction.
  EXPECT_DOUBLE_EQ(p.run_time, static_cast<double>(calib.run_cycles));
}

TEST(Model, RunTimeMonotonicInProcessorCount) {
  const Calibration calib = base_calib();
  double prev = 0.0;
  for (std::uint32_t procs : {2u, 4u, 8u, 16u, 64u}) {
    core::MachineConfig cfg = base_machine(sync::SchemeKind::kTicket);
    cfg.num_procs = procs;
    const Prediction p = predict(cfg, calib);
    EXPECT_GE(p.run_time, prev) << "P=" << procs;
    prev = p.run_time;
  }
}

TEST(Model, LongHoldsSaturateTheSerialBound) {
  core::MachineConfig cfg = base_machine(sync::SchemeKind::kQueuing);
  cfg.num_procs = 16;
  Calibration calib = base_calib();
  calib.hold_mean = 90.0;                  // lock-dominated P=1 run
  calib.run_cycles = 10'000;
  calib.acquisitions = 100;                // 9000 of 10000 cycles held
  const Prediction p = predict(cfg, calib);
  EXPECT_TRUE(p.saturated);
  EXPECT_DOUBLE_EQ(p.run_time, p.serial_bound);
  // 16 processors funneling through one lock: nearly everyone queues.
  EXPECT_GT(p.expected_waiters, 10.0);
}

TEST(Model, DominantFractionScalesTheSerialBound) {
  core::MachineConfig cfg = base_machine(sync::SchemeKind::kAnderson);
  cfg.num_procs = 32;
  Calibration hot = base_calib();
  hot.hold_mean = 80.0;
  Calibration spread = hot;
  spread.dominant_fraction = 0.25;  // four equally-hot independent locks
  const Prediction p_hot = predict(cfg, hot);
  const Prediction p_spread = predict(cfg, spread);
  EXPECT_DOUBLE_EQ(p_spread.serial_bound, 0.25 * p_hot.serial_bound);
}

TEST(Model, SharedWritesRaiseBothParallelAndBusBounds) {
  core::MachineConfig cfg = base_machine(sync::SchemeKind::kTtas);
  Calibration clean = base_calib();
  Calibration sharing = clean;
  sharing.shared_writes_per_proc = 200.0;
  const Prediction p_clean = predict(cfg, clean);
  const Prediction p_sharing = predict(cfg, sharing);
  EXPECT_GT(p_sharing.parallel_bound, p_clean.parallel_bound);
  EXPECT_GT(p_sharing.bus_bound, p_clean.bus_bound);
}

TEST(Model, TasRetryStormInflatesBusBound) {
  Calibration calib = base_calib();
  calib.hold_mean = 60.0;  // contended enough to predict waiters
  core::MachineConfig tas = base_machine(sync::SchemeKind::kTas);
  core::MachineConfig anderson = base_machine(sync::SchemeKind::kAnderson);
  const Prediction p_tas = predict(tas, calib);
  const Prediction p_and = predict(anderson, calib);
  EXPECT_GT(p_tas.bus_bound, p_and.bus_bound);
}

}  // namespace
}  // namespace syncpat::model

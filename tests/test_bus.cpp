#include "bus/bus.hpp"

#include <gtest/gtest.h>

namespace syncpat::bus {
namespace {

TEST(Bus, StartsFree) {
  Bus bus(BusConfig{.ports = 4, .request_cycles = 1, .data_cycles = 2});
  EXPECT_TRUE(bus.free());
  EXPECT_EQ(bus.current(), nullptr);
}

TEST(Bus, OccupancyLifecycle) {
  Bus bus(BusConfig{.ports = 2, .request_cycles = 1, .data_cycles = 2});
  Transaction txn;
  bus.occupy(&txn, 3);
  EXPECT_FALSE(bus.free());
  EXPECT_EQ(bus.tick(), nullptr);  // 2 left
  EXPECT_EQ(bus.tick(), nullptr);  // 1 left
  EXPECT_EQ(bus.tick(), &txn);     // done
  EXPECT_TRUE(bus.free());
}

TEST(Bus, SingleCycleTransaction) {
  Bus bus(BusConfig{.ports = 2});
  Transaction txn;
  bus.occupy(&txn, 1);
  EXPECT_EQ(bus.tick(), &txn);
  EXPECT_TRUE(bus.free());
}

TEST(Bus, UtilizationCountsBusyCycles) {
  Bus bus(BusConfig{.ports = 2});
  Transaction txn;
  bus.tick();  // idle
  bus.occupy(&txn, 2);
  bus.tick();
  bus.tick();
  bus.tick();  // idle
  EXPECT_EQ(bus.busy_cycles(), 2u);
  EXPECT_EQ(bus.total_cycles(), 4u);
  EXPECT_DOUBLE_EQ(bus.utilization(), 0.5);
}

TEST(Bus, RoundRobinRotatesAfterGrant) {
  Bus bus(BusConfig{.ports = 3});
  EXPECT_EQ(bus.rr_port(0), 0u);
  bus.granted(0);
  EXPECT_EQ(bus.rr_port(0), 1u);
  EXPECT_EQ(bus.rr_port(1), 2u);
  EXPECT_EQ(bus.rr_port(2), 0u);
  bus.granted(2);
  EXPECT_EQ(bus.rr_port(0), 0u);
}

TEST(Bus, TxnKindNames) {
  EXPECT_STREQ(txn_kind_name(TxnKind::kRead), "Read");
  EXPECT_STREQ(txn_kind_name(TxnKind::kReadX), "ReadX");
  EXPECT_STREQ(txn_kind_name(TxnKind::kUpgrade), "Upgrade");
  EXPECT_STREQ(txn_kind_name(TxnKind::kWriteBack), "WriteBack");
  EXPECT_STREQ(txn_kind_name(TxnKind::kHandoff), "Handoff");
}

TEST(Transaction, NeedsMemoryLogic) {
  Transaction t;
  t.kind = TxnKind::kRead;
  EXPECT_TRUE(t.needs_memory());
  t.supplied_by_cache = true;
  EXPECT_FALSE(t.needs_memory());
  t.kind = TxnKind::kUpgrade;
  EXPECT_FALSE(t.needs_memory());
  t.kind = TxnKind::kWriteBack;
  EXPECT_TRUE(t.needs_memory());
  t.kind = TxnKind::kHandoff;
  EXPECT_FALSE(t.needs_memory());
}

TEST(Transaction, ExclusiveRequestKinds) {
  Transaction t;
  t.kind = TxnKind::kReadX;
  EXPECT_TRUE(t.is_exclusive_request());
  t.kind = TxnKind::kUpgrade;
  EXPECT_TRUE(t.is_exclusive_request());
  t.kind = TxnKind::kRead;
  EXPECT_FALSE(t.is_exclusive_request());
}

}  // namespace
}  // namespace syncpat::bus

#include "bus/bus.hpp"

#include <gtest/gtest.h>

#include "bus/service_discipline.hpp"

namespace syncpat::bus {
namespace {

TEST(Bus, StartsFree) {
  Bus bus(BusConfig{.ports = 4, .request_cycles = 1, .data_cycles = 2});
  EXPECT_TRUE(bus.free());
  EXPECT_EQ(bus.current(), nullptr);
}

TEST(Bus, OccupancyLifecycle) {
  Bus bus(BusConfig{.ports = 2, .request_cycles = 1, .data_cycles = 2});
  Transaction txn;
  bus.occupy(&txn, 3);
  EXPECT_FALSE(bus.free());
  EXPECT_EQ(bus.tick(), nullptr);  // 2 left
  EXPECT_EQ(bus.tick(), nullptr);  // 1 left
  EXPECT_EQ(bus.tick(), &txn);     // done
  EXPECT_TRUE(bus.free());
}

TEST(Bus, SingleCycleTransaction) {
  Bus bus(BusConfig{.ports = 2});
  Transaction txn;
  bus.occupy(&txn, 1);
  EXPECT_EQ(bus.tick(), &txn);
  EXPECT_TRUE(bus.free());
}

TEST(Bus, UtilizationCountsBusyCycles) {
  Bus bus(BusConfig{.ports = 2});
  Transaction txn;
  bus.tick();  // idle
  bus.occupy(&txn, 2);
  bus.tick();
  bus.tick();
  bus.tick();  // idle
  EXPECT_EQ(bus.busy_cycles(), 2u);
  EXPECT_EQ(bus.total_cycles(), 4u);
  EXPECT_DOUBLE_EQ(bus.utilization(), 0.5);
}

TEST(ServiceDiscipline, RoundRobinRotatesAfterGrant) {
  RoundRobinDiscipline rr(3);
  EXPECT_EQ(rr.peek(0), 0u);
  rr.record_grant(0, 0, false);
  EXPECT_EQ(rr.peek(0), 1u);
  EXPECT_EQ(rr.peek(1), 2u);
  EXPECT_EQ(rr.peek(2), 0u);
  rr.record_grant(2, 0, false);
  EXPECT_EQ(rr.peek(0), 0u);
}

TEST(ServiceDiscipline, RoundRobinScanOrderMatchesPeek) {
  RoundRobinDiscipline rr(4);
  rr.record_grant(1, 0, false);
  std::uint32_t order[4];
  rr.scan_order(nullptr, 0, order);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 1u);
}

TEST(ServiceDiscipline, FixedPriorityPutsMemoryFirstThenIdOrder) {
  FixedPriorityDiscipline fp(5);
  ASSERT_TRUE(fp.needs_stamps());
  const ArbRequest req[5] = {
      {.present = true, .stamp = 10},
      {.present = true, .stamp = 8},
      {.present = true, .stamp = 12},
      {.present = false, .stamp = 0},
      {.present = true, .stamp = 9},  // memory port
  };
  std::uint32_t order[5];
  fp.scan_order(req, 20, order);  // nobody near the escape bound
  EXPECT_EQ(order[0], 4u);  // memory response port
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 2u);
  EXPECT_EQ(order[4], 3u);
  // Grants never change the static order.
  fp.record_grant(2, 7, false);
  fp.scan_order(req, 20, order);
  EXPECT_EQ(order[0], 4u);
  EXPECT_EQ(order[1], 0u);
}

TEST(ServiceDiscipline, FixedPriorityAgingPromotesOldestStarvedRequest) {
  FixedPriorityDiscipline fp(5);
  constexpr std::uint64_t kBound =
      FixedPriorityDiscipline::kStarvationEscapeCycles;
  ArbRequest req[5] = {
      {.present = true, .stamp = 100},
      {.present = false, .stamp = 0},
      {.present = true, .stamp = 10},  // oldest processor request
      {.present = true, .stamp = 50},
      {.present = true, .stamp = 5},  // memory port: never ages (already first)
  };
  std::uint32_t order[5];
  // One cycle short of the bound: pure static chain.
  fp.scan_order(req, 10 + kBound - 1, order);
  EXPECT_EQ(order[0], 4u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 2u);
  EXPECT_EQ(order[4], 3u);
  // At the bound: port 2 jumps the chain, the rest keep id order.
  fp.scan_order(req, 10 + kBound, order);
  EXPECT_EQ(order[0], 4u);  // memory still drains first
  EXPECT_EQ(order[1], 2u);  // promoted past ports 0 and 1
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 1u);
  EXPECT_EQ(order[4], 3u);
  // Stamp ties break toward the lower port id.
  req[0].stamp = 10;
  fp.scan_order(req, 10 + kBound, order);
  EXPECT_EQ(order[1], 0u);
}

TEST(ServiceDiscipline, FcfsOrdersByStampThenPort) {
  FcfsDiscipline fcfs(4);
  ASSERT_TRUE(fcfs.needs_stamps());
  const ArbRequest req[4] = {
      {.present = true, .stamp = 30},
      {.present = false, .stamp = 0},
      {.present = true, .stamp = 10},
      {.present = true, .stamp = 30},  // tie with port 0: lower port first
  };
  std::uint32_t order[4];
  fcfs.scan_order(req, 40, order);
  EXPECT_EQ(order[0], 2u);  // oldest
  EXPECT_EQ(order[1], 0u);  // stamp tie broken by port id
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 1u);  // requestless ports trail
}

TEST(ServiceDiscipline, StatsTrackGrantsAndWaits) {
  RoundRobinDiscipline rr(3);
  rr.record_grant(0, 4, false);
  rr.record_grant(2, 10, true);
  rr.record_grant(1, 1, false);
  EXPECT_EQ(rr.stats().grants, 2u);
  EXPECT_EQ(rr.stats().memory_grants, 1u);
  EXPECT_EQ(rr.stats().max_grant_wait, 10u);
  EXPECT_EQ(rr.stats().grant_wait.count(), 3u);
  EXPECT_DOUBLE_EQ(rr.stats().grant_wait.mean(), 5.0);
}

TEST(ServiceDiscipline, NamesRoundTripStrictly) {
  for (const DisciplineKind k :
       {DisciplineKind::kRoundRobin, DisciplineKind::kFixedPriority,
        DisciplineKind::kFcfs}) {
    EXPECT_EQ(discipline_from_name(discipline_name(k)), k);
  }
  for (const char* junk : {"roundrobin", "", "FCFS"}) {
    EXPECT_THROW(static_cast<void>(discipline_from_name(junk)),
                 std::invalid_argument);
  }
}

TEST(Bus, TxnKindNames) {
  EXPECT_STREQ(txn_kind_name(TxnKind::kRead), "Read");
  EXPECT_STREQ(txn_kind_name(TxnKind::kReadX), "ReadX");
  EXPECT_STREQ(txn_kind_name(TxnKind::kUpgrade), "Upgrade");
  EXPECT_STREQ(txn_kind_name(TxnKind::kWriteBack), "WriteBack");
  EXPECT_STREQ(txn_kind_name(TxnKind::kHandoff), "Handoff");
}

TEST(Transaction, NeedsMemoryLogic) {
  Transaction t;
  t.kind = TxnKind::kRead;
  EXPECT_TRUE(t.needs_memory());
  t.supplied_by_cache = true;
  EXPECT_FALSE(t.needs_memory());
  t.kind = TxnKind::kUpgrade;
  EXPECT_FALSE(t.needs_memory());
  t.kind = TxnKind::kWriteBack;
  EXPECT_TRUE(t.needs_memory());
  t.kind = TxnKind::kHandoff;
  EXPECT_FALSE(t.needs_memory());
}

TEST(Transaction, ExclusiveRequestKinds) {
  Transaction t;
  t.kind = TxnKind::kReadX;
  EXPECT_TRUE(t.is_exclusive_request());
  t.kind = TxnKind::kUpgrade;
  EXPECT_TRUE(t.is_exclusive_request());
  t.kind = TxnKind::kRead;
  EXPECT_FALSE(t.is_exclusive_request());
}

}  // namespace
}  // namespace syncpat::bus

#include "trace/mpt.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace syncpat::trace {
namespace {

using testutil::ifetch;
using testutil::load;
using testutil::lock_acq;
using testutil::lock_rel;
using testutil::store;

std::vector<Event> expand_all(const MptStream& stream) {
  MptExpander expander(stream);
  std::vector<Event> out;
  Event e;
  while (expander.next(e)) out.push_back(e);
  return out;
}

TEST(Mpt, RoundTripSimpleBlock) {
  std::vector<Event> events = {ifetch(0x100), load(0x8000'0000u, 2),
                               ifetch(0x104), store(0x8000'0010u, 3)};
  VectorTraceSource source(events);
  const MptStream stream = compact(source);
  EXPECT_EQ(expand_all(stream), events);
}

TEST(Mpt, RoundTripWithLockOps) {
  std::vector<Event> events = {ifetch(0x100), lock_acq(3, 2),
                               load(0x8000'0000u), lock_rel(3, 2),
                               ifetch(0x104)};
  VectorTraceSource source(events);
  const MptStream stream = compact(source);
  EXPECT_EQ(expand_all(stream), events);
}

TEST(Mpt, RepeatedBlocksShareDictionaryEntries) {
  // The same basic block executed 100 times from the same address.
  std::vector<Event> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(ifetch(0x200, 1));
    events.push_back(load(0x8000'0000u + static_cast<std::uint32_t>(i) * 4, 2));
    events.push_back(ifetch(0x204, 1));
  }
  VectorTraceSource source(events);
  const MptStream stream = compact(source);
  // 100 executions of (at most a couple of) skeletons.
  EXPECT_LE(stream.dictionary.size(), 3u);
  EXPECT_EQ(stream.executions.size(), 100u * 2);  // two ifetch-cut blocks each
  EXPECT_EQ(expand_all(stream), events);
}

TEST(Mpt, CompressesLoopyTraces) {
  std::vector<Event> events;
  for (int i = 0; i < 500; ++i) {
    events.push_back(ifetch(0x300, 1));
    events.push_back(load(0x8000'0000u, 2));
    events.push_back(store(0x8000'0004u, 1));
  }
  VectorTraceSource source(events);
  const MptStream stream = compact(source);
  const std::uint64_t raw_bytes = events.size() * 9;
  EXPECT_LT(stream.compact_bytes(), raw_bytes);
  EXPECT_EQ(stream.expanded_size(), events.size());
}

TEST(Mpt, EmptyTrace) {
  VectorTraceSource source{};
  const MptStream stream = compact(source);
  EXPECT_TRUE(stream.executions.empty());
  EXPECT_TRUE(expand_all(stream).empty());
}

TEST(Mpt, TraceWithoutIFetches) {
  std::vector<Event> events = {load(0x8000'0000u, 1), store(0x8000'0004u, 2)};
  VectorTraceSource source(events);
  const MptStream stream = compact(source);
  EXPECT_EQ(expand_all(stream), events);
}

TEST(Mpt, ExpanderResetReplays) {
  std::vector<Event> events = {ifetch(0x100), load(0x8000'0000u)};
  VectorTraceSource source(events);
  const MptStream stream = compact(source);
  MptExpander expander(stream);
  Event e;
  while (expander.next(e)) {
  }
  expander.reset();
  EXPECT_EQ(collect(expander), events);
}

// Property test: MPT round-trip identity on every paper workload model.
class MptRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MptRoundTrip, GeneratorTraceSurvivesCompaction) {
  const auto profiles = workload::paper_profiles();
  const auto profile = profiles[static_cast<std::size_t>(GetParam())].scaled(512);
  workload::ProfileTraceSource source(profile, 0);
  std::vector<Event> original = collect(source);
  source.reset();
  const MptStream stream = compact(source);
  EXPECT_EQ(stream.expanded_size(), original.size());
  EXPECT_EQ(expand_all(stream), original);
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, MptRoundTrip,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace syncpat::trace

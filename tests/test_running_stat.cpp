#include "util/running_stat.hpp"

#include <gtest/gtest.h>

namespace syncpat::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 4.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 20.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStat, StddevIsSqrtVariance) {
  RunningStat s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev() * s.stddev(), s.variance());
}

}  // namespace
}  // namespace syncpat::util

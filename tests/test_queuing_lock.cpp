// Queuing-lock behaviour through the full machine (paper §2.4).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

// N processors each acquire/release the same lock `rounds` times with a
// critical section of `cs_gap` cycles.
trace::ProgramTrace contended(std::uint32_t procs, int rounds,
                              std::uint32_t cs_gap,
                              std::uint32_t think_gap = 4) {
  std::vector<std::vector<trace::Event>> traces(procs);
  for (std::uint32_t p = 0; p < procs; ++p) {
    for (int r = 0; r < rounds; ++r) {
      traces[p].push_back(lock_acq(0, think_gap));
      traces[p].push_back(load(shared_line(1), cs_gap));
      traces[p].push_back(lock_rel(0, 2));
    }
  }
  return make_program(std::move(traces));
}

TEST(QueuingLock, UncontendedAcquireReleaseCompletes) {
  trace::ProgramTrace program = make_program({{
      lock_acq(0, 1),
      load(shared_line(1), 5),
      lock_rel(0, 1),
  }});
  const SimulationResult r = simulate(machine(sync::SchemeKind::kQueuing), program);
  EXPECT_EQ(r.locks.acquisitions, 1u);
  EXPECT_EQ(r.locks.transfers, 0u);
  EXPECT_EQ(r.per_proc[0].stall_lock, 0u);  // never waited on a held lock
}

TEST(QueuingLock, UncontendedAcquireCostIsSmall) {
  trace::ProgramTrace program = make_program({{
      lock_acq(0, 1),
      lock_rel(0, 1),
  }});
  const SimulationResult r = simulate(machine(sync::SchemeKind::kQueuing), program);
  // Acquire + release are one memory access each (6 cycles cold, 1 hot).
  EXPECT_LE(r.per_proc[0].stall_cache, 14u);
}

TEST(QueuingLock, MutualExclusionUnderContention) {
  trace::ProgramTrace program = contended(6, 20, 10);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kQueuing), program);
  // Every acquisition completed exactly once.
  EXPECT_EQ(r.locks.acquisitions, 6u * 20u);
  // With 6 processors and long sections, most hand-offs find waiters.
  EXPECT_GT(r.locks.transfers, 60u);
}

TEST(QueuingLock, TransferLatencyIsOneToTwoCycles) {
  trace::ProgramTrace program = contended(8, 30, 20);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kQueuing), program);
  EXPECT_GE(r.locks.transfer_cycles.mean(), 1.0);
  EXPECT_LE(r.locks.transfer_cycles.mean(), 3.0);
}

TEST(QueuingLock, WaitersScaleWithProcessors) {
  const SimulationResult few =
      [&] {
        auto p = contended(3, 20, 30);
        return simulate(machine(sync::SchemeKind::kQueuing), p);
      }();
  const SimulationResult many =
      [&] {
        auto p = contended(10, 20, 30);
        return simulate(machine(sync::SchemeKind::kQueuing), p);
      }();
  EXPECT_GT(many.locks.waiters_at_transfer.mean(),
            few.locks.waiters_at_transfer.mean());
  EXPECT_LE(few.locks.waiters_at_transfer.mean(), 2.0);
  EXPECT_GT(many.locks.waiters_at_transfer.mean(), 4.0);
}

TEST(QueuingLock, PassiveWaitersGenerateNoBusTraffic) {
  // One long critical section with everyone else queued: bus stays quiet
  // while they wait (queuing locks spin on a local location).
  trace::ProgramTrace program = contended(8, 2, 400);
  MachineConfig config = machine(sync::SchemeKind::kQueuing);
  config.num_procs = 8;
  Simulator sim(config, program);
  const SimulationResult r = sim.run();
  // Traffic: lock ops + one CS load each + hand-offs.  Far below one
  // transaction per waiting cycle.
  EXPECT_LT(sim.bus().utilization(), 0.25);
  EXPECT_GT(r.locks.waiters_at_transfer.mean(), 3.0);
}

TEST(QueuingLock, HoldTimeTracksCriticalSection) {
  trace::ProgramTrace program = contended(4, 10, 50);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kQueuing), program);
  // Ideal hold = 50 (CS) + 2 (release gap) plus in-CS miss overhead.
  EXPECT_GE(r.locks.hold_cycles.mean(), 50.0);
  EXPECT_LE(r.locks.hold_cycles.mean(), 75.0);
}

TEST(QueuingLock, StallsAttributedToLockWait) {
  trace::ProgramTrace program = contended(8, 20, 40);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kQueuing), program);
  EXPECT_GT(r.stall_lock_pct, 80.0);
}

TEST(QueuingLock, ExactVariantCompletesWithSameAcquisitions) {
  trace::ProgramTrace program = contended(6, 15, 20);
  const SimulationResult r =
      simulate(machine(sync::SchemeKind::kQueuingExact), program);
  EXPECT_EQ(r.locks.acquisitions, 6u * 15u);
  EXPECT_EQ(r.scheme, std::string("queuing-exact"));
}

TEST(QueuingLock, ExactVariantSlowerButSameOrder) {
  trace::ProgramTrace p1 = contended(8, 25, 20);
  trace::ProgramTrace p2 = contended(8, 25, 20);
  const SimulationResult approx =
      simulate(machine(sync::SchemeKind::kQueuing), p1);
  const SimulationResult exact =
      simulate(machine(sync::SchemeKind::kQueuingExact), p2);
  EXPECT_GE(exact.run_time, approx.run_time);
  // The two extra accesses cost cycles but stay the same order of magnitude.
  EXPECT_LT(static_cast<double>(exact.run_time),
            1.5 * static_cast<double>(approx.run_time));
  // Exact transfers go through a memory access: noticeably slower hand-off.
  EXPECT_GT(exact.locks.transfer_cycles.mean(),
            approx.locks.transfer_cycles.mean());
}

TEST(QueuingLock, ManyLocksIndependent) {
  // Each processor uses its own lock: zero transfers anywhere.
  std::vector<std::vector<trace::Event>> traces(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int r = 0; r < 10; ++r) {
      traces[p].push_back(lock_acq(p + 1, 3));
      traces[p].push_back(lock_rel(p + 1, 5));
    }
  }
  trace::ProgramTrace program = make_program(std::move(traces));
  const SimulationResult r = simulate(machine(sync::SchemeKind::kQueuing), program);
  EXPECT_EQ(r.locks.acquisitions, 40u);
  EXPECT_EQ(r.locks.transfers, 0u);
}

}  // namespace
}  // namespace syncpat::core

#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "test_util.hpp"

namespace syncpat::trace {
namespace {

using testutil::ifetch;
using testutil::load;
using testutil::lock_acq;
using testutil::lock_rel;
using testutil::make_program;
using testutil::store;

TEST(TraceIo, RoundTripSingleProcessor) {
  std::vector<Event> events = {ifetch(0x100), load(0x4000'0000u, 3),
                               store(0x8000'0010u, 2)};
  ProgramTrace program = make_program({events}, "one");

  std::stringstream buf;
  write_program_trace(buf, program);
  ProgramTrace back = read_program_trace(buf);

  EXPECT_EQ(back.name, "one");
  ASSERT_EQ(back.num_procs(), 1u);
  EXPECT_EQ(collect(*back.per_proc[0]), events);
}

TEST(TraceIo, RoundTripMultiProcessorPreservesStreams) {
  std::vector<Event> p0 = {load(0x8000'0000u), lock_acq(0), lock_rel(0)};
  std::vector<Event> p1 = {store(0x8000'0040u, 5)};
  std::vector<Event> p2 = {};
  ProgramTrace program = make_program({p0, p1, p2}, "multi");

  std::stringstream buf;
  write_program_trace(buf, program);
  ProgramTrace back = read_program_trace(buf);

  ASSERT_EQ(back.num_procs(), 3u);
  EXPECT_EQ(collect(*back.per_proc[0]), p0);
  EXPECT_EQ(collect(*back.per_proc[1]), p1);
  EXPECT_EQ(collect(*back.per_proc[2]), p2);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOPE garbage";
  EXPECT_THROW(read_program_trace(buf), TraceIoError);
}

TEST(TraceIo, RejectsTruncation) {
  ProgramTrace program = make_program({{load(1), load(2), load(3)}});
  std::stringstream buf;
  write_program_trace(buf, program);
  const std::string full = buf.str();
  for (std::size_t cut : {full.size() - 1, full.size() / 2, std::size_t{5}}) {
    std::stringstream cut_buf(full.substr(0, cut));
    EXPECT_THROW(read_program_trace(cut_buf), TraceIoError) << "cut=" << cut;
  }
}

TEST(TraceIo, RejectsInvalidOpcode) {
  ProgramTrace program = make_program({{load(0x10)}});
  std::stringstream buf;
  write_program_trace(buf, program);
  std::string bytes = buf.str();
  bytes[bytes.size() - 1] = 0x7f;  // last byte is the single event's op
  std::stringstream bad(bytes);
  EXPECT_THROW(read_program_trace(bad), TraceIoError);
}

TEST(TraceIo, FileSaveAndLoad) {
  ProgramTrace program = make_program({{load(0x8000'1000u, 7)}}, "file-test");
  const std::string path = ::testing::TempDir() + "/syncpat_io_test.trc";
  save_program_trace(path, program);
  ProgramTrace back = load_program_trace(path);
  EXPECT_EQ(back.name, "file-test");
  ASSERT_EQ(back.num_procs(), 1u);
  EXPECT_EQ(collect(*back.per_proc[0]).size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_program_trace("/nonexistent/dir/x.trc"), TraceIoError);
}

TEST(TraceIo, SourcesAreResetBeforeWriting) {
  ProgramTrace program = make_program({{load(1), load(2)}});
  Event e;
  program.per_proc[0]->next(e);  // advance the cursor
  std::stringstream buf;
  write_program_trace(buf, program);  // must reset and write both events
  ProgramTrace back = read_program_trace(buf);
  EXPECT_EQ(collect(*back.per_proc[0]).size(), 2u);
}

}  // namespace
}  // namespace syncpat::trace

#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "test_util.hpp"

namespace syncpat::trace {
namespace {

using testutil::ifetch;
using testutil::load;
using testutil::lock_acq;
using testutil::lock_rel;
using testutil::make_program;
using testutil::store;

TEST(TraceIo, RoundTripSingleProcessor) {
  std::vector<Event> events = {ifetch(0x100), load(0x4000'0000u, 3),
                               store(0x8000'0010u, 2)};
  ProgramTrace program = make_program({events}, "one");

  std::stringstream buf;
  write_program_trace(buf, program);
  ProgramTrace back = read_program_trace(buf);

  EXPECT_EQ(back.name, "one");
  ASSERT_EQ(back.num_procs(), 1u);
  EXPECT_EQ(collect(*back.per_proc[0]), events);
}

TEST(TraceIo, RoundTripMultiProcessorPreservesStreams) {
  std::vector<Event> p0 = {load(0x8000'0000u), lock_acq(0), lock_rel(0)};
  std::vector<Event> p1 = {store(0x8000'0040u, 5)};
  std::vector<Event> p2 = {};
  ProgramTrace program = make_program({p0, p1, p2}, "multi");

  std::stringstream buf;
  write_program_trace(buf, program);
  ProgramTrace back = read_program_trace(buf);

  ASSERT_EQ(back.num_procs(), 3u);
  EXPECT_EQ(collect(*back.per_proc[0]), p0);
  EXPECT_EQ(collect(*back.per_proc[1]), p1);
  EXPECT_EQ(collect(*back.per_proc[2]), p2);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOPE garbage";
  EXPECT_THROW(read_program_trace(buf), TraceIoError);
}

TEST(TraceIo, RejectsTruncation) {
  ProgramTrace program = make_program({{load(1), load(2), load(3)}});
  std::stringstream buf;
  write_program_trace(buf, program);
  const std::string full = buf.str();
  for (std::size_t cut : {full.size() - 1, full.size() / 2, std::size_t{5}}) {
    std::stringstream cut_buf(full.substr(0, cut));
    EXPECT_THROW(read_program_trace(cut_buf), TraceIoError) << "cut=" << cut;
  }
}

// Serialize a small two-processor trace once; the corruption corpus below
// mutates these bytes.
std::string sample_bytes() {
  ProgramTrace program = make_program(
      {{load(0x8000'0000u, 2), store(0x8000'0040u, 1), lock_acq(0)},
       {ifetch(0x100), lock_rel(0)}},
      "corpus");
  std::stringstream buf;
  write_program_trace(buf, program);
  return buf.str();
}

// Overwrite sizeof(T) bytes at `offset` with `value`'s little-endian encoding.
template <typename T>
std::string patched(std::string bytes, std::size_t offset, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(bytes.data() + offset, &value, sizeof(T));
  return bytes;
}

// Layout offsets of the v1 format (magic, version u32, nprocs u32,
// name_len u32, name bytes, then per processor: count u64 + 9-byte events).
constexpr std::size_t kVersionOffset = 4;
constexpr std::size_t kNameLenOffset = 12;
constexpr std::size_t kFirstCountOffset = 16 + 6;  // name "corpus"

TEST(TraceIo, RejectsTruncationAtEveryByteOffset) {
  const std::string full = sample_bytes();
  // Every strict prefix must raise TraceIoError — no cut point may yield a
  // silently shortened trace or an unbounded read.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream buf(full.substr(0, cut));
    EXPECT_THROW(read_program_trace(buf), TraceIoError) << "cut=" << cut;
  }
  // Sanity: the uncut bytes parse.
  std::stringstream ok(full);
  EXPECT_EQ(read_program_trace(ok).num_procs(), 2u);
}

TEST(TraceIo, RejectsUnsupportedVersion) {
  std::stringstream buf(
      patched<std::uint32_t>(sample_bytes(), kVersionOffset, 999));
  EXPECT_THROW(read_program_trace(buf), TraceIoError);
}

TEST(TraceIo, RejectsImplausibleProcessorCount) {
  std::stringstream buf(patched<std::uint32_t>(sample_bytes(), 8, 1u << 20));
  EXPECT_THROW(read_program_trace(buf), TraceIoError);
}

TEST(TraceIo, RejectsOversizedNameLength) {
  // An adversarial name_len (here 4 GiB - 1) must be rejected before any
  // allocation is attempted.
  std::stringstream buf(
      patched<std::uint32_t>(sample_bytes(), kNameLenOffset, 0xffff'ffffu));
  EXPECT_THROW(read_program_trace(buf), TraceIoError);
}

TEST(TraceIo, RejectsEventCountExceedingStreamSize) {
  // A declared per-processor event count far beyond the bytes actually in
  // the stream must be a TraceIoError, not a bad_alloc from reserve().
  for (const std::uint64_t count :
       {std::uint64_t{1000}, std::uint64_t{1} << 40,
        std::uint64_t{0xffff'ffff'ffff'ffffULL}}) {
    std::stringstream buf(
        patched<std::uint64_t>(sample_bytes(), kFirstCountOffset, count));
    EXPECT_THROW(read_program_trace(buf), TraceIoError) << "count=" << count;
  }
}

TEST(TraceIo, RejectsInvalidOpcode) {
  ProgramTrace program = make_program({{load(0x10)}});
  std::stringstream buf;
  write_program_trace(buf, program);
  std::string bytes = buf.str();
  bytes[bytes.size() - 1] = 0x7f;  // last byte is the single event's op
  std::stringstream bad(bytes);
  EXPECT_THROW(read_program_trace(bad), TraceIoError);
}

TEST(TraceIo, FileSaveAndLoad) {
  ProgramTrace program = make_program({{load(0x8000'1000u, 7)}}, "file-test");
  const std::string path = ::testing::TempDir() + "/syncpat_io_test.trc";
  save_program_trace(path, program);
  ProgramTrace back = load_program_trace(path);
  EXPECT_EQ(back.name, "file-test");
  ASSERT_EQ(back.num_procs(), 1u);
  EXPECT_EQ(collect(*back.per_proc[0]).size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_program_trace("/nonexistent/dir/x.trc"), TraceIoError);
}

TEST(TraceIo, SourcesAreResetBeforeWriting) {
  ProgramTrace program = make_program({{load(1), load(2)}});
  Event e;
  program.per_proc[0]->next(e);  // advance the cursor
  std::stringstream buf;
  write_program_trace(buf, program);  // must reset and write both events
  ProgramTrace back = read_program_trace(buf);
  EXPECT_EQ(collect(*back.per_proc[0]).size(), 2u);
}

}  // namespace
}  // namespace syncpat::trace

#include "sync/lock_stats.hpp"

#include <gtest/gtest.h>

namespace syncpat::sync {
namespace {

TEST(LockStats, UncontendedAcquireRelease) {
  LockStatsCollector c;
  c.acquired(0x100, 0, 10, 0);
  c.released(0x100, 60, /*transferred=*/false, 0);
  EXPECT_EQ(c.total().acquisitions, 1u);
  EXPECT_EQ(c.total().transfers, 0u);
  EXPECT_DOUBLE_EQ(c.total().hold_cycles.mean(), 50.0);
}

TEST(LockStats, TransferWindowMeasured) {
  LockStatsCollector c;
  c.acquired(0x100, 0, 10, 0);
  c.released(0x100, 50, /*transferred=*/true, 2);
  c.acquired(0x100, 1, 53, 0);  // the waiter got it 3 cycles later
  EXPECT_EQ(c.total().transfers, 1u);
  EXPECT_DOUBLE_EQ(c.total().transfer_cycles.mean(), 3.0);
  EXPECT_DOUBLE_EQ(c.total().waiters_at_transfer.mean(), 2.0);
  EXPECT_DOUBLE_EQ(c.total().hold_cycles_transfer.mean(), 40.0);
}

TEST(LockStats, ReleaseIssueEndsHoldEarly) {
  LockStatsCollector c;
  c.acquired(0x100, 0, 0, 0);
  c.release_issued(0x100, 30);
  c.released(0x100, 36, /*transferred=*/false, 0);  // access took 6 cycles
  EXPECT_DOUBLE_EQ(c.total().hold_cycles.mean(), 30.0);
}

TEST(LockStats, ReleaseIssueConsumedOnce) {
  LockStatsCollector c;
  c.acquired(0x100, 0, 0, 0);
  c.release_issued(0x100, 30);
  c.released(0x100, 36, false, 0);
  c.acquired(0x100, 1, 40, 0);
  c.released(0x100, 90, false, 0);  // no release_issued: hold ends at 90
  EXPECT_DOUBLE_EQ(c.total().hold_cycles.max(), 50.0);
}

TEST(LockStats, PerLockBreakdown) {
  LockStatsCollector c;
  c.acquired(0x100, 0, 0, 0);
  c.released(0x100, 10, false, 0);
  c.acquired(0x200, 1, 0, 0);
  c.released(0x200, 30, false, 0);
  ASSERT_EQ(c.per_lock().size(), 2u);
  EXPECT_DOUBLE_EQ(c.per_lock().at(0x100).hold_cycles.mean(), 10.0);
  EXPECT_DOUBLE_EQ(c.per_lock().at(0x200).hold_cycles.mean(), 30.0);
  EXPECT_EQ(c.total().acquisitions, 2u);
}

TEST(LockStats, ChainedTransfers) {
  LockStatsCollector c;
  c.acquired(0x100, 0, 0, 0);
  c.released(0x100, 100, true, 3);
  c.acquired(0x100, 1, 101, 0);
  c.released(0x100, 200, true, 2);
  c.acquired(0x100, 2, 202, 0);
  c.released(0x100, 300, false, 0);
  EXPECT_EQ(c.total().acquisitions, 3u);
  EXPECT_EQ(c.total().transfers, 2u);
  EXPECT_DOUBLE_EQ(c.total().transfer_cycles.mean(), 1.5);
  EXPECT_DOUBLE_EQ(c.total().waiters_at_transfer.mean(), 2.5);
}

TEST(LockStats, TransferHistogramPopulated) {
  LockStatsCollector c;
  c.acquired(0x100, 0, 0, 0);
  c.released(0x100, 10, true, 0);
  c.acquired(0x100, 1, 32, 0);  // 22-cycle transfer
  EXPECT_EQ(c.total().transfer_hist.count(), 1u);
  EXPECT_GE(c.total().transfer_hist.quantile(0.5), 22u);
}

}  // namespace
}  // namespace syncpat::sync

// Exhaustive Illinois/MESI snoop transition checks (parameterized).
#include <gtest/gtest.h>

#include "cache/cache.hpp"

namespace syncpat::cache {
namespace {

struct SnoopCase {
  LineState initial;
  bool exclusive_request;  // ReadX/Upgrade vs Read
  LineState expected;
  bool expect_had_line;
  bool expect_dirty;
  bool expect_invalidated;
};

class MesiSnoop : public ::testing::TestWithParam<SnoopCase> {};

TEST_P(MesiSnoop, TransitionMatchesProtocol) {
  const SnoopCase& c = GetParam();
  Cache cache{CacheConfig{.size_bytes = 128, .line_bytes = 16,
                          .associativity = 2}};
  if (c.initial != LineState::kInvalid) {
    ASSERT_TRUE(cache.allocate(0x40).ok);
    if (c.initial == LineState::kPending) {
      // leave pending
    } else {
      cache.fill(0x40, c.initial);
    }
  }
  const SnoopResult r = cache.snoop(0x40, c.exclusive_request);
  EXPECT_EQ(r.had_line, c.expect_had_line);
  EXPECT_EQ(r.was_dirty, c.expect_dirty);
  EXPECT_EQ(r.invalidated, c.expect_invalidated);
  EXPECT_EQ(cache.state(0x40), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllStates, MesiSnoop,
    ::testing::Values(
        // Read snoops: everyone supplies and moves to Shared.
        SnoopCase{LineState::kModified, false, LineState::kShared, true, true,
                  false},
        SnoopCase{LineState::kExclusive, false, LineState::kShared, true,
                  false, false},
        SnoopCase{LineState::kShared, false, LineState::kShared, true, false,
                  false},
        SnoopCase{LineState::kInvalid, false, LineState::kInvalid, false,
                  false, false},
        // Pending lines are invisible to snoops (the bus serializes lines).
        SnoopCase{LineState::kPending, false, LineState::kPending, false,
                  false, false},
        // Exclusive requests (ReadX/Upgrade) invalidate.
        SnoopCase{LineState::kModified, true, LineState::kInvalid, true, true,
                  true},
        SnoopCase{LineState::kExclusive, true, LineState::kInvalid, true,
                  false, true},
        SnoopCase{LineState::kShared, true, LineState::kInvalid, true, false,
                  true},
        SnoopCase{LineState::kInvalid, true, LineState::kInvalid, false, false,
                  false},
        SnoopCase{LineState::kPending, true, LineState::kPending, false, false,
                  false}));

struct WriteCase {
  LineState initial;
  bool expect_upgrade;
  LineState expected_after;
};

class MesiWriteHit : public ::testing::TestWithParam<WriteCase> {};

TEST_P(MesiWriteHit, LocalWriteTransitions) {
  const WriteCase& c = GetParam();
  Cache cache{CacheConfig{.size_bytes = 128, .line_bytes = 16,
                          .associativity = 2}};
  ASSERT_TRUE(cache.allocate(0x40).ok);
  cache.fill(0x40, c.initial);
  const AccessResult r = cache.access(0x40, AccessClass::kWrite);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.needs_upgrade, c.expect_upgrade);
  EXPECT_EQ(cache.state(0x40), c.expected_after);
}

INSTANTIATE_TEST_SUITE_P(
    WriteHits, MesiWriteHit,
    ::testing::Values(WriteCase{LineState::kModified, false,
                                LineState::kModified},
                      WriteCase{LineState::kExclusive, false,
                                LineState::kModified},
                      WriteCase{LineState::kShared, true, LineState::kShared}));

TEST(MesiInvariants, SupplyCountStats) {
  Cache cache{CacheConfig{.size_bytes = 128, .line_bytes = 16,
                          .associativity = 2}};
  ASSERT_TRUE(cache.allocate(0x40).ok);
  cache.fill(0x40, LineState::kExclusive);
  cache.snoop(0x40, false);
  EXPECT_EQ(cache.stats().supplies, 1u);
  cache.snoop(0x40, true);
  EXPECT_EQ(cache.stats().invalidations_received, 1u);
}

}  // namespace
}  // namespace syncpat::cache

#include "trace/analyzer.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace syncpat::trace {
namespace {

using testutil::ifetch;
using testutil::load;
using testutil::lock_acq;
using testutil::lock_rel;
using testutil::make_program;
using testutil::store;

TEST(Analyzer, CountsReferenceCategories) {
  ProgramTrace program = make_program({{
      ifetch(0x100, 2),
      load(AddressMap::private_addr(0, 16), 3),
      store(AddressMap::shared_addr(0), 1),
      load(AddressMap::shared_addr(64), 4),
  }});
  const IdealProgramStats stats = analyze_program(program);
  ASSERT_EQ(stats.per_proc.size(), 1u);
  const IdealProcStats& p = stats.per_proc[0];
  EXPECT_EQ(p.refs_all, 4u);
  EXPECT_EQ(p.refs_data, 3u);
  EXPECT_EQ(p.refs_shared, 2u);
  EXPECT_EQ(p.stores, 1u);
  EXPECT_EQ(p.shared_stores, 1u);
  EXPECT_EQ(p.work_cycles, 10u);
}

TEST(Analyzer, LockPairAccounting) {
  ProgramTrace program = make_program({{
      lock_acq(0, 1),
      load(AddressMap::shared_addr(0), 10),
      lock_rel(0, 5),
      ifetch(0x100, 4),
      lock_acq(0, 1),
      lock_rel(0, 20),
  }});
  const IdealProgramStats stats = analyze_program(program);
  const IdealProcStats& p = stats.per_proc[0];
  EXPECT_EQ(p.lock_pairs, 2u);
  EXPECT_EQ(p.nested_pairs, 0u);
  // First pair held 15 cycles (load gap 10 + release gap 5), second 20.
  EXPECT_EQ(p.pair_hold_cycles, 35u);
  EXPECT_EQ(p.held_cycles, 35u);
}

TEST(Analyzer, NestedLocksNotDoubleCountedInUnion) {
  ProgramTrace program = make_program({{
      lock_acq(0, 1),
      load(AddressMap::shared_addr(0), 4),
      lock_acq(1, 2),   // nested: thread-queue lock
      load(AddressMap::shared_addr(64), 6),
      lock_rel(1, 2),
      lock_rel(0, 6),
  }});
  const IdealProgramStats stats = analyze_program(program);
  const IdealProcStats& p = stats.per_proc[0];
  EXPECT_EQ(p.lock_pairs, 2u);
  EXPECT_EQ(p.nested_pairs, 1u);
  // Outer held 4+2+6+2+6 = 20; inner held 6+2 = 8; union = 20.
  EXPECT_EQ(p.held_cycles, 20u);
  EXPECT_EQ(p.pair_hold_cycles, 28u);
}

TEST(Analyzer, HeldTimeFraction) {
  ProgramTrace program = make_program({{
      ifetch(0x100, 60),
      lock_acq(0, 0),
      load(AddressMap::shared_addr(0), 40),
      lock_rel(0, 0),
  }});
  const IdealProgramStats stats = analyze_program(program);
  EXPECT_DOUBLE_EQ(stats.held_time_fraction(), 0.4);
}

TEST(Analyzer, AveragesAcrossProcessors) {
  ProgramTrace program = make_program({
      {ifetch(0x100, 10)},
      {ifetch(0x100, 30)},
  });
  const IdealProgramStats stats = analyze_program(program);
  EXPECT_EQ(stats.num_procs, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_work_cycles(), 20.0);
  EXPECT_DOUBLE_EQ(stats.avg_refs_all(), 1.0);
}

TEST(Analyzer, InterleavedDifferentLocksMatchCorrectly) {
  // Release matches the most recent acquire of the *same* lock even when
  // another lock was acquired in between.
  ProgramTrace program = make_program({{
      lock_acq(0, 1),
      lock_acq(1, 5),
      lock_rel(0, 5),  // releases lock 0, held 10
      lock_rel(1, 5),  // releases lock 1, held 10
  }});
  const IdealProgramStats stats = analyze_program(program);
  const IdealProcStats& p = stats.per_proc[0];
  EXPECT_EQ(p.lock_pairs, 2u);
  EXPECT_EQ(p.nested_pairs, 1u);
  EXPECT_EQ(p.pair_hold_cycles, 20u);
}

TEST(Analyzer, TraceRemainsUsableAfterAnalysis) {
  ProgramTrace program = make_program({{load(1), load(2)}});
  (void)analyze_program(program);
  Event e;
  EXPECT_TRUE(program.per_proc[0]->next(e));  // sources were reset
}

TEST(Analyzer, EmptyTrace) {
  ProgramTrace program = make_program({{}});
  const IdealProgramStats stats = analyze_program(program);
  EXPECT_EQ(stats.per_proc[0].work_cycles, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_hold_per_pair(), 0.0);
  EXPECT_DOUBLE_EQ(stats.held_time_fraction(), 0.0);
}

}  // namespace
}  // namespace syncpat::trace

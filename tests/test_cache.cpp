#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace syncpat::cache {
namespace {

CacheConfig small_config() {
  // 4 sets x 2 ways x 16-byte lines = 128 bytes: easy to force evictions.
  CacheConfig c;
  c.size_bytes = 128;
  c.line_bytes = 16;
  c.associativity = 2;
  return c;
}

// Addresses mapping to set 0 of the small config: multiples of 64.
constexpr std::uint32_t kSet0A = 0;
constexpr std::uint32_t kSet0B = 64;
constexpr std::uint32_t kSet0C = 128;

void fill_line(Cache& c, std::uint32_t line, LineState s) {
  ASSERT_TRUE(c.allocate(line).ok);
  c.fill(line, s);
}

TEST(Cache, GeometryDefaults) {
  const CacheConfig c;
  EXPECT_EQ(c.num_sets(), 2048u);
  EXPECT_EQ(c.line_addr(0x12345), 0x12340u);
}

TEST(Cache, MissThenFillHits) {
  Cache c(small_config());
  EXPECT_FALSE(c.access(0x10, AccessClass::kRead).hit);
  fill_line(c, 0x10, LineState::kExclusive);
  EXPECT_TRUE(c.access(0x10, AccessClass::kRead).hit);
  EXPECT_TRUE(c.access(0x1f, AccessClass::kRead).hit);  // same line
  EXPECT_FALSE(c.access(0x20, AccessClass::kRead).hit);  // next line
}

TEST(Cache, PendingLinesDoNotHit) {
  Cache c(small_config());
  ASSERT_TRUE(c.allocate(0x10).ok);
  EXPECT_EQ(c.state(0x10), LineState::kPending);
  EXPECT_FALSE(c.access(0x10, AccessClass::kRead).hit);
}

TEST(Cache, WriteHitOnExclusiveSilentlyModifies) {
  Cache c(small_config());
  fill_line(c, 0x10, LineState::kExclusive);
  const AccessResult r = c.access(0x10, AccessClass::kWrite);
  EXPECT_TRUE(r.hit);
  EXPECT_FALSE(r.needs_upgrade);
  EXPECT_EQ(c.state(0x10), LineState::kModified);
}

TEST(Cache, WriteHitOnSharedNeedsUpgrade) {
  Cache c(small_config());
  fill_line(c, 0x10, LineState::kShared);
  const AccessResult r = c.access(0x10, AccessClass::kWrite);
  EXPECT_TRUE(r.hit);
  EXPECT_TRUE(r.needs_upgrade);
  EXPECT_EQ(c.state(0x10), LineState::kShared);  // unchanged until upgrade
  EXPECT_TRUE(c.complete_upgrade(0x10));
  EXPECT_EQ(c.state(0x10), LineState::kModified);
}

TEST(Cache, CompleteUpgradeFailsWhenLineGone) {
  Cache c(small_config());
  EXPECT_FALSE(c.complete_upgrade(0x10));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(small_config());
  fill_line(c, kSet0A, LineState::kExclusive);
  fill_line(c, kSet0B, LineState::kExclusive);
  // Touch A so B becomes LRU.
  EXPECT_TRUE(c.access(kSet0A, AccessClass::kRead).hit);
  ASSERT_TRUE(c.allocate(kSet0C).ok);
  EXPECT_EQ(c.state(kSet0B), LineState::kInvalid);  // B evicted
  EXPECT_NE(c.state(kSet0A), LineState::kInvalid);
}

TEST(Cache, DirtyEvictionReportsWriteBack) {
  Cache c(small_config());
  fill_line(c, kSet0A, LineState::kModified);
  fill_line(c, kSet0B, LineState::kModified);
  c.access(kSet0B, AccessClass::kRead);  // A is LRU
  const Cache::AllocateResult r = c.allocate(kSet0C);
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.writeback_line.has_value());
  EXPECT_EQ(*r.writeback_line, kSet0A);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteBack) {
  Cache c(small_config());
  fill_line(c, kSet0A, LineState::kShared);
  fill_line(c, kSet0B, LineState::kExclusive);
  c.access(kSet0B, AccessClass::kRead);
  const Cache::AllocateResult r = c.allocate(kSet0C);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.writeback_line.has_value());
}

TEST(Cache, AllocateFailsWhenAllWaysPending) {
  Cache c(small_config());
  ASSERT_TRUE(c.allocate(kSet0A).ok);
  ASSERT_TRUE(c.allocate(kSet0B).ok);
  EXPECT_FALSE(c.allocate(kSet0C).ok);
  // Completing one fill frees a victim candidate.
  c.fill(kSet0A, LineState::kExclusive);
  EXPECT_TRUE(c.allocate(kSet0C).ok);
}

TEST(Cache, CancelPendingFreesWay) {
  Cache c(small_config());
  ASSERT_TRUE(c.allocate(kSet0A).ok);
  c.cancel_pending(kSet0A);
  EXPECT_EQ(c.state(kSet0A), LineState::kInvalid);
}

TEST(Cache, ForceModified) {
  Cache c(small_config());
  fill_line(c, 0x10, LineState::kShared);
  c.force_modified(0x10);
  EXPECT_EQ(c.state(0x10), LineState::kModified);
}

TEST(Cache, StatsClassifyAccesses) {
  Cache c(small_config());
  c.access(0x10, AccessClass::kIFetch);   // miss
  fill_line(c, 0x10, LineState::kExclusive);
  c.access(0x10, AccessClass::kIFetch);   // hit
  c.access(0x10, AccessClass::kRead);     // hit
  c.access(0x20, AccessClass::kWrite);    // miss
  const CacheStats& s = c.stats();
  EXPECT_EQ(s.ifetch_misses, 1u);
  EXPECT_EQ(s.ifetch_hits, 1u);
  EXPECT_EQ(s.read_hits, 1u);
  EXPECT_EQ(s.write_misses, 1u);
  EXPECT_DOUBLE_EQ(s.write_hit_ratio(), 0.0);
}

TEST(Cache, WriteHitRatio) {
  Cache c(small_config());
  fill_line(c, 0x10, LineState::kExclusive);
  c.access(0x10, AccessClass::kWrite);
  c.access(0x10, AccessClass::kWrite);
  c.access(0x20, AccessClass::kWrite);
  EXPECT_NEAR(c.stats().write_hit_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, DifferentSetsDoNotConflict) {
  Cache c(small_config());
  // Lines 0x00, 0x10, 0x20, 0x30 map to sets 0..3.
  for (std::uint32_t line : {0x00u, 0x10u, 0x20u, 0x30u}) {
    fill_line(c, line, LineState::kExclusive);
  }
  for (std::uint32_t line : {0x00u, 0x10u, 0x20u, 0x30u}) {
    EXPECT_TRUE(c.access(line, AccessClass::kRead).hit) << line;
  }
}

}  // namespace
}  // namespace syncpat::cache

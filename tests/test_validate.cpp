#include "trace/validate.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workload/generator.hpp"
#include "workload/kernels/barnes_hut.hpp"
#include "workload/profiles.hpp"

namespace syncpat::trace {
namespace {

using testutil::ifetch;
using testutil::load;
using testutil::lock_acq;
using testutil::lock_rel;
using testutil::make_program;
using testutil::store;

TEST(Validate, CleanTracePasses) {
  ProgramTrace program = make_program({{
      ifetch(0x100),
      load(AddressMap::shared_addr(0)),
      lock_acq(0),
      store(AddressMap::shared_addr(16)),
      lock_rel(0),
  }});
  const ValidationReport r = validate_program(program);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.events_checked, 5u);
}

TEST(Validate, ReleaseWithoutAcquireFlagged) {
  ProgramTrace program = make_program({{lock_rel(3)}});
  const ValidationReport r = validate_program(program);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("not held"), std::string::npos);
}

TEST(Validate, DanglingLockFlagged) {
  ProgramTrace program = make_program({{lock_acq(0), load(AddressMap::shared_addr(0))}});
  const ValidationReport r = validate_program(program);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("ends holding"), std::string::npos);
}

TEST(Validate, IFetchOutsideCodeFlagged) {
  ProgramTrace program =
      make_program({{Event{AddressMap::shared_addr(0), 1, Op::kIFetch}}});
  const ValidationReport r = validate_program(program);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("code region"), std::string::npos);
}

TEST(Validate, DataRefIntoLockRegionFlagged) {
  ProgramTrace program =
      make_program({{Event{AddressMap::lock_addr(0), 1, Op::kLoad}}});
  const ValidationReport r = validate_program(program);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("lock region"), std::string::npos);
}

TEST(Validate, ForeignPrivateReferenceFlagged) {
  // Processor 0 touching processor 3's private segment.
  ProgramTrace program =
      make_program({{Event{AddressMap::private_addr(3, 64), 1, Op::kLoad}}});
  const ValidationReport r = validate_program(program);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("another processor"), std::string::npos);
}

TEST(Validate, MismatchedBarrierSequencesFlagged) {
  ProgramTrace program = make_program({
      {Event{AddressMap::barrier_addr(0), 1, Op::kBarrier}},
      {ifetch(0x100)},  // processor 1 never arrives
  });
  const ValidationReport r = validate_program(program);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("deadlock"), std::string::npos);
}

TEST(Validate, ReacquireOfHeldLockFlagged) {
  // Locks are non-reentrant: re-acquiring a held lock deadlocks the machine.
  ProgramTrace program = make_program(
      {{lock_acq(0), lock_acq(0), lock_rel(0), lock_rel(0)}});
  const ValidationReport r = validate_program(program);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("non-reentrant"), std::string::npos);
}

TEST(Validate, DistinctNestedLocksAreFine) {
  ProgramTrace program =
      make_program({{lock_acq(0), lock_acq(1), lock_rel(1), lock_rel(0)}});
  EXPECT_TRUE(validate_program(program).ok());
}

TEST(Validate, LockOpWithDataAddressFlagged) {
  ProgramTrace program =
      make_program({{Event{AddressMap::shared_addr(0), 1, Op::kLockAcq}}});
  const ValidationReport r = validate_program(program);
  ASSERT_FALSE(r.ok());
}

TEST(Validate, ZeroGapEventsCountedNotFlagged) {
  ProgramTrace program = make_program({{Event{0x100, 0, Op::kIFetch}}});
  const ValidationReport r = validate_program(program);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.zero_gap_events, 1u);
}

TEST(Validate, ReportRendersSummary) {
  ProgramTrace program = make_program({{lock_rel(0), lock_rel(1), lock_rel(2)}});
  const ValidationReport r = validate_program(program);
  const std::string s = r.to_string(2);
  EXPECT_NE(s.find("INVALID"), std::string::npos);
  EXPECT_NE(s.find("and 1 more"), std::string::npos);
}

TEST(Validate, SourcesUsableAfterValidation) {
  ProgramTrace program = make_program({{ifetch(0x100)}});
  (void)validate_program(program);
  Event e;
  EXPECT_TRUE(program.per_proc[0]->next(e));
}

// Every built-in workload generator and kernel must emit valid traces.
class ValidateWorkloads : public ::testing::TestWithParam<int> {};

TEST_P(ValidateWorkloads, GeneratedTracesAreWellFormed) {
  const auto profiles = workload::paper_profiles();
  auto profile = profiles[static_cast<std::size_t>(GetParam())].scaled(64);
  profile.locking.barriers_per_proc = 3;  // exercise barrier emission too
  ProgramTrace program = workload::make_program_trace(profile);
  const ValidationReport r = validate_program(program);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, ValidateWorkloads,
                         ::testing::Range(0, 6));

TEST(Validate, KernelTracesAreWellFormed) {
  workload::BarnesHutParams params;
  params.num_threads = 4;
  params.num_bodies = 150;
  ProgramTrace program = workload::barnes_hut_trace(params);
  const ValidationReport r = validate_program(program);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

}  // namespace
}  // namespace syncpat::trace

// Tests for the differential fuzzing harness itself: deterministic case
// generation, repro-file round-tripping, shrinker convergence, and the
// end-to-end run -> shrink -> repro -> replay pipeline (driven through an
// injected synthetic oracle so the expensive real battery only runs where a
// test actually needs it).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fuzz/fuzz_case.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/shrink.hpp"

namespace syncpat::fuzz {
namespace {

// Deterministic synthetic failure with a known minimal shape: any case with
// at least 2 processors and at least 400 references "fails".
OracleVerdict synthetic_oracle(const FuzzCase& c) {
  OracleVerdict v;
  if (c.num_procs >= 2 && c.refs_per_proc >= 400) {
    v.failures.push_back("injected: procs >= 2 and refs >= 400");
  }
  return v;
}

TEST(FuzzCaseGen, SameSeedAndIndexIsByteIdentical) {
  for (std::uint64_t i = 0; i < 32; ++i) {
    const FuzzCase a = FuzzCase::generate(0xabcdef, i);
    const FuzzCase b = FuzzCase::generate(0xabcdef, i);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.to_text(), b.to_text());
  }
}

TEST(FuzzCaseGen, CasesAreIndependentOfEachOther) {
  // Case N must not depend on whether cases 0..N-1 were generated first.
  const FuzzCase direct = FuzzCase::generate(77, 20);
  for (std::uint64_t i = 0; i < 20; ++i) (void)FuzzCase::generate(77, i);
  EXPECT_EQ(FuzzCase::generate(77, 20), direct);
}

TEST(FuzzCaseGen, DifferentSeedsDiverge) {
  int distinct = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (!(FuzzCase::generate(1, i) == FuzzCase::generate(2, i))) ++distinct;
  }
  EXPECT_GT(distinct, 12);  // near-certain; catches a dead master_seed wire
}

TEST(FuzzCaseGen, GeneratedGeometryIsAlwaysLegal) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FuzzCase c = FuzzCase::generate(0x9e37, i);
    EXPECT_GE(c.num_procs, 1u);
    EXPECT_EQ(c.line_bytes & (c.line_bytes - 1), 0u) << c.describe();
    EXPECT_LE(c.bus_bytes, c.line_bytes) << c.describe();
    EXPECT_LE(c.nested_pairs * 2, c.lock_pairs) << c.describe();
    EXPECT_GE(c.num_locks, 1u);
  }
}

TEST(FuzzCaseText, RoundTripsExactly) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const FuzzCase c = FuzzCase::generate(0x517e, i);
    EXPECT_EQ(FuzzCase::from_text(c.to_text()), c) << c.describe();
  }
}

TEST(FuzzCaseText, ParsesListBasedQueueLockSchemes) {
  // Repro files written after the MCS/CLH override draw landed carry
  // "scheme mcs" / "scheme clh"; older files keep parsing because the draw
  // only changed the value set, never the key format.
  const std::string base = FuzzCase::generate(1, 0).to_text();
  for (const char* name : {"mcs", "clh"}) {
    std::string text = base;
    const auto pos = text.find("scheme ");
    const auto eol = text.find('\n', pos);
    text.replace(pos, eol - pos, std::string("scheme ") + name);
    const FuzzCase c = FuzzCase::from_text(text);
    EXPECT_EQ(sync::scheme_kind_name(c.scheme), std::string(name));
    EXPECT_EQ(FuzzCase::from_text(c.to_text()), c);
  }
}

TEST(FuzzCaseGen, CorpusDrawsListBasedQueueLocks) {
  // The appended override draw must actually surface both new schemes —
  // otherwise the model-validation corpus never scores them.
  bool saw_mcs = false, saw_clh = false;
  for (std::uint64_t i = 0; i < 200 && !(saw_mcs && saw_clh); ++i) {
    const FuzzCase c = FuzzCase::generate(24245, i);
    saw_mcs |= c.scheme == sync::SchemeKind::kMcs;
    saw_clh |= c.scheme == sync::SchemeKind::kClh;
  }
  EXPECT_TRUE(saw_mcs);
  EXPECT_TRUE(saw_clh);
}

TEST(FuzzCaseText, RejectsMalformedRepros) {
  const std::string good = FuzzCase::generate(1, 0).to_text();
  EXPECT_THROW((void)FuzzCase::from_text(""), std::invalid_argument);
  EXPECT_THROW((void)FuzzCase::from_text("not-a-repro 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FuzzCase::from_text("syncpat-fuzz-case 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FuzzCase::from_text(good + "mystery_knob 3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FuzzCase::from_text(good + "num_procs 4\n"),
               std::invalid_argument);  // duplicate key
  // Missing field: drop the last line.
  const std::string truncated = good.substr(0, good.rfind("barriers"));
  EXPECT_THROW((void)FuzzCase::from_text(truncated), std::invalid_argument);
}

TEST(FuzzShrink, ReducesInjectedFailureToMinimalShape) {
  // Find a seeded case that trips the synthetic oracle.
  FuzzCase failing;
  bool found = false;
  for (std::uint64_t i = 0; i < 50 && !found; ++i) {
    failing = FuzzCase::generate(0xfa11, i);
    found = !synthetic_oracle(failing).ok();
  }
  ASSERT_TRUE(found) << "no seeded case tripped the synthetic oracle";

  const ShrinkResult r = shrink(failing, synthetic_oracle);
  // The oracle's true boundary is procs >= 2, refs >= 400.  Greedy halving
  // cannot overshoot: procs land exactly on 2, refs in [400, 2*400).
  EXPECT_EQ(r.minimal.num_procs, 2u);
  EXPECT_GE(r.minimal.refs_per_proc, 400u);
  EXPECT_LT(r.minimal.refs_per_proc, 800u);
  // Unrelated knobs collapse to their simplest values.
  EXPECT_EQ(r.minimal.nested_pairs, 0u);
  EXPECT_EQ(r.minimal.barriers, 0u);
  EXPECT_EQ(r.minimal.num_locks, 1u);
  EXPECT_EQ(r.minimal.scheme, sync::SchemeKind::kQueuing);
  // The guarantee that matters: the minimal case still fails.
  EXPECT_FALSE(synthetic_oracle(r.minimal).ok());
  EXPECT_GT(r.accepted, 0u);
  EXPECT_GE(r.oracle_runs, r.accepted);
}

TEST(FuzzShrink, RespectsOracleRunCap) {
  FuzzCase failing = FuzzCase::generate(0xfa11, 0);
  failing.num_procs = 8;
  failing.refs_per_proc = 2000;
  const ShrinkResult r = shrink(failing, synthetic_oracle, /*max_oracle_runs=*/3);
  EXPECT_LE(r.oracle_runs, 3u);
  EXPECT_FALSE(synthetic_oracle(r.minimal).ok());
}

TEST(FuzzHarness, ReportIsByteIdenticalAcrossRuns) {
  HarnessOptions opt;
  opt.seed = 0x1de7;
  opt.cases = 30;
  opt.repro_dir = ::testing::TempDir();
  opt.injected_oracle = synthetic_oracle;
  std::ostringstream a, b;
  const HarnessReport ra = run_fuzz(opt, a);
  const HarnessReport rb = run_fuzz(opt, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(ra.failures.size(), rb.failures.size());
}

TEST(FuzzHarness, WritesReproThatReplaysToSameVerdict) {
  HarnessOptions opt;
  opt.seed = 0xfa11;
  opt.cases = 10;
  opt.repro_dir = ::testing::TempDir();
  opt.injected_oracle = synthetic_oracle;

  std::ostringstream report_out;
  const HarnessReport report = run_fuzz(opt, report_out);
  ASSERT_FALSE(report.ok()) << report_out.str();
  const FailureRecord& failure = report.failures.front();
  ASSERT_FALSE(failure.repro_path.empty());

  // The repro file holds the *minimal* case and replays to the same verdict.
  std::ifstream in(failure.repro_path);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_EQ(FuzzCase::from_text(text.str()), failure.minimal);

  std::ostringstream replay_out;
  EXPECT_EQ(replay_repro(failure.repro_path, opt, replay_out), 1);
  EXPECT_NE(replay_out.str().find("FAIL"), std::string::npos);

  // A passing case replays to 0.
  const FuzzCase clean = []{
    FuzzCase c = FuzzCase::generate(0xfa11, 0);
    c.num_procs = 1;
    return c;
  }();
  const std::string clean_path = ::testing::TempDir() + "/fuzz_clean.case";
  std::ofstream(clean_path) << clean.to_text();
  std::ostringstream pass_out;
  EXPECT_EQ(replay_repro(clean_path, opt, pass_out), 0);
  std::remove(clean_path.c_str());
}

TEST(FuzzHarness, ReplayThrowsOnMissingFile) {
  HarnessOptions opt;
  opt.injected_oracle = synthetic_oracle;
  std::ostringstream out;
  EXPECT_THROW((void)replay_repro("/nonexistent/fuzz.case", opt, out),
               std::invalid_argument);
}

// The real oracle battery, on a handful of seeded cases.  (The 200-case batch
// runs as the fuzz-smoke ctest; this keeps a taste of it inside the unit
// suite so `ctest -R Fuzz` exercises the real pipeline too.)
class FuzzRealOracles : public ::testing::Test {
 protected:
  // cfg.fast_forward drives the differential; an inherited env override
  // would collapse both arms to the same mode.
  void SetUp() override { unsetenv("SYNCPAT_FAST_FORWARD"); }
};

TEST_F(FuzzRealOracles, SeededCasesRunClean) {
  for (std::uint64_t i = 0; i < 3; ++i) {
    const FuzzCase c = FuzzCase::generate(0x5eed, i);
    const OracleVerdict v = run_oracles(c, OracleOptions{});
    EXPECT_TRUE(v.ok()) << c.describe() << ": " << v.failed_oracles();
  }
}

TEST_F(FuzzRealOracles, WriteThroughEndOfTraceCycleIsConserved) {
  // Regression for a latent accounting bug the fuzzer caught: a sequential
  // write-through store absorbed by memory finalizes *before* processors tick
  // (Simulator::step order), so a trace ending on such a store stamped
  // completion_cycle without counting the final waited cycle — breaking
  // work + stalls == completion_cycle by exactly one.
  FuzzCase c;
  c.num_procs = 3;
  c.sets_log2 = 4;
  c.associativity = 1;
  c.line_bytes = 8;
  c.write_policy = cache::WritePolicy::kWriteThrough;
  c.consistency = bus::ConsistencyModel::kSequential;
  c.scheme = sync::SchemeKind::kQueuing;
  c.workload_seed = 10984287284030377529ULL;
  c.refs_per_proc = 491;
  c.write_fraction = 0.41;
  c.lock_pairs = 5;
  OracleOptions only_conservation;
  only_conservation.check_invariants = false;
  only_conservation.check_fast_forward = false;
  only_conservation.check_jobs = false;
  only_conservation.check_trace_roundtrip = false;
  const OracleVerdict v = run_oracles(c, only_conservation);
  EXPECT_TRUE(v.ok()) << v.failed_oracles();
}

}  // namespace
}  // namespace syncpat::fuzz

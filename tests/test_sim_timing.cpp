// Cycle-exact timing contracts of the full machine (paper §2.2).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

TEST(SimTiming, ColdReadMissStallsSixCycles) {
  trace::ProgramTrace program = make_program({{load(shared_line(0), 1)}});
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.per_proc[0].work_cycles, 1u);
  EXPECT_EQ(r.per_proc[0].stall_cache, 6u);
}

TEST(SimTiming, ColdWriteMissStallsSixCycles) {
  trace::ProgramTrace program = make_program({{store(shared_line(0), 1)}});
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.per_proc[0].stall_cache, 6u);
}

TEST(SimTiming, SecondAccessToSameLineHits) {
  trace::ProgramTrace program = make_program({{
      load(shared_line(0), 1),
      load(shared_line(0) + 4, 1),  // same 16-byte line: hit, no stall
  }});
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.per_proc[0].stall_cache, 6u);
  EXPECT_EQ(r.per_proc[0].work_cycles, 2u);
}

TEST(SimTiming, WriteAfterReadFillIsSilentExclusiveUpgrade) {
  // Illinois: a miss filled from memory installs Exclusive, so the store
  // hits silently (no second bus transaction).
  trace::ProgramTrace program = make_program({{
      load(shared_line(0), 1),
      store(shared_line(0), 1),
  }});
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.per_proc[0].stall_cache, 6u);
}

TEST(SimTiming, CacheToCacheTransferIsThreeCycles) {
  // P1 runs long enough for P0 to own the line Modified, then reads it.
  trace::ProgramTrace program = make_program({
      {store(shared_line(0), 1)},
      {load(shared_line(0), 40)},  // issues at cycle 40: P0 has it Modified
  });
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.per_proc[1].stall_cache, 3u);
}

TEST(SimTiming, UpgradeStallsOneCycle) {
  // Both read the line (Shared), then P0 writes: invalidation only.
  trace::ProgramTrace program = make_program({
      {load(shared_line(0), 1), store(shared_line(0), 60)},
      {load(shared_line(0), 30)},
  });
  const SimulationResult r = simulate(machine(), program);
  // P0: 6 (cold miss) + 1 (upgrade).
  EXPECT_EQ(r.per_proc[0].stall_cache, 7u);
}

TEST(SimTiming, PureComputeNeverStalls) {
  trace::ProgramTrace program = make_program({{
      ifetch(0x100, 50),  // one fetch after 50 work cycles
      ifetch(0x104, 50),
  }});
  const SimulationResult r = simulate(machine(), program);
  // Only the two cold ifetch misses stall (same line -> one miss).
  EXPECT_EQ(r.per_proc[0].work_cycles, 100u);
  EXPECT_EQ(r.per_proc[0].stall_cache, 6u);
}

TEST(SimTiming, RunTimeIsMaxCompletion) {
  trace::ProgramTrace program = make_program({
      {ifetch(0x100, 10)},
      {ifetch(0x100, 500)},
  });
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.run_time, r.per_proc[1].completion_cycle);
  EXPECT_GT(r.per_proc[1].completion_cycle, r.per_proc[0].completion_cycle);
}

TEST(SimTiming, UtilizationAccountsWorkOverCompletion) {
  trace::ProgramTrace program = make_program({{
      load(shared_line(0), 6),  // 6 work cycles + 6 stall cycles
  }});
  const SimulationResult r = simulate(machine(), program);
  EXPECT_NEAR(r.per_proc[0].utilization, 0.5, 0.01);
}

TEST(SimTiming, MemoryQueueSerializesConcurrentMisses) {
  // Two processors miss different lines at the same time: the split-
  // transaction pipeline serializes memory accesses; the loser waits longer.
  trace::ProgramTrace program = make_program({
      {load(shared_line(0), 1)},
      {load(shared_line(1), 1)},
  });
  const SimulationResult r = simulate(machine(), program);
  const std::uint64_t s0 = r.per_proc[0].stall_cache;
  const std::uint64_t s1 = r.per_proc[1].stall_cache;
  EXPECT_EQ(std::min(s0, s1), 6u);
  EXPECT_GT(std::max(s0, s1), 6u);
  EXPECT_LE(std::max(s0, s1), 12u);
}

TEST(SimTiming, DirtyEvictionGeneratesWriteBackTraffic) {
  // Lines 0 and 64 KiB apart with the default 2-way 64 KB cache collide in
  // one set only with a third conflicting line; use three lines 64 KiB
  // apart: A, B fill the set, dirty A, then C evicts A (dirty write-back).
  const std::uint32_t a = trace::AddressMap::shared_addr(0);
  const std::uint32_t b = trace::AddressMap::shared_addr(64 * 1024 / 2);
  const std::uint32_t c = trace::AddressMap::shared_addr(64 * 1024);
  trace::ProgramTrace program = make_program({{
      store(a, 1),
      load(b, 1),
      load(c, 1),
      load(a, 30),  // must refetch from memory: A was written back
  }});
  const SimulationResult r = simulate(machine(), program);
  // Four misses of 6 cycles each (plus possible write-back interference).
  EXPECT_GE(r.per_proc[0].stall_cache, 24u);
}

TEST(SimTiming, ProgressAssertsOnConsistentState) {
  // A moderately busy random-ish workload completes without tripping the
  // watchdog or any internal invariant.
  std::vector<trace::Event> events;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    events.push_back(load(shared_line(i % 97), 1 + i % 3));
    if (i % 5 == 0) events.push_back(store(shared_line(i % 31), 1));
  }
  trace::ProgramTrace program = make_program({events, events, events});
  const SimulationResult r = simulate(machine(), program);
  EXPECT_GT(r.run_time, 0u);
}

}  // namespace
}  // namespace syncpat::core

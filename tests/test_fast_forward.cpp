// Differential test for the quiescence fast-forward engine: running with the
// run-ahead loop enabled must produce a byte-identical SimulationResult to
// per-cycle stepping for every lock scheme, consistency model, and write
// policy.  Every field — including RunningStat moments, which would expose a
// single reordered or double-counted sample — is rendered with hexfloat
// precision (fuzz::render_result, shared with the fuzzing harness) and
// compared as a string so nothing is hidden by rounding.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "bus/interface.hpp"
#include "core/machine_config.hpp"
#include "core/results.hpp"
#include "core/simulator.hpp"
#include "fuzz/render.hpp"
#include "sync/scheme_factory.hpp"
#include "trace/source.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace syncpat {
namespace {

constexpr std::uint64_t kScale = 64;

workload::BenchmarkProfile profile_by_name(const std::string& name) {
  for (const auto& p : workload::paper_profiles()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown profile " << name;
  return {};
}

struct RunOutput {
  std::string rendered;
  core::FastForwardStats ff;
};

RunOutput run_once(const workload::BenchmarkProfile& scaled,
                   core::MachineConfig cfg, bool fast_forward) {
  cfg.num_procs = scaled.num_procs;
  cfg.fast_forward = fast_forward;
  trace::ProgramTrace program = workload::make_program_trace(scaled);
  core::Simulator sim(cfg, program);
  RunOutput out;
  out.rendered = fuzz::render_result(sim.run());
  out.ff = sim.fast_forward_stats();
  return out;
}

class FastForwardDifferential : public ::testing::Test {
 protected:
  // cfg.fast_forward must control the mode: a SYNCPAT_FAST_FORWARD value
  // inherited from the calling environment would override it for every run.
  void SetUp() override { unsetenv("SYNCPAT_FAST_FORWARD"); }
};

TEST_F(FastForwardDifferential, ByteIdenticalAcrossSchemesModelsAndPolicies) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Grav").scaled(kScale);
  std::uint64_t total_jumps = 0;
  for (const sync::SchemeKind scheme : sync::all_scheme_kinds()) {
    for (const bus::ConsistencyModel model :
         {bus::ConsistencyModel::kSequential, bus::ConsistencyModel::kWeak}) {
      for (const cache::WritePolicy policy :
           {cache::WritePolicy::kWriteBack, cache::WritePolicy::kWriteThrough}) {
        core::MachineConfig cfg;
        cfg.lock_scheme = scheme;
        cfg.consistency = model;
        cfg.write_policy = policy;
        const RunOutput on = run_once(scaled, cfg, true);
        const RunOutput off = run_once(scaled, cfg, false);
        EXPECT_TRUE(on.ff.enabled);
        EXPECT_FALSE(off.ff.enabled);
        EXPECT_EQ(on.rendered, off.rendered)
            << "fast-forward diverged: scheme=" << sync::scheme_kind_name(scheme)
            << " model=" << bus::consistency_name(model)
            << " policy=" << cache::write_policy_name(policy);
        total_jumps += on.ff.jumps;
      }
    }
  }
  // The engine must actually engage somewhere, or this test proves nothing.
  EXPECT_GT(total_jumps, 0u);
}

TEST_F(FastForwardDifferential, EngagesOnQuiescentHeavyProfile) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Grav").scaled(kScale);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  const RunOutput on = run_once(scaled, cfg, true);
  EXPECT_TRUE(on.ff.enabled);
  EXPECT_GT(on.ff.jumps, 0u);
  EXPECT_GT(on.ff.skipped_cycles + on.ff.run_ahead_cycles, 0u);
}

TEST_F(FastForwardDifferential, InvariantCheckerForcesPerCycle) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(kScale * 4);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  cfg.invariants.enabled = true;
  const RunOutput checked = run_once(scaled, cfg, true);
  EXPECT_FALSE(checked.ff.enabled);
  EXPECT_EQ(checked.ff.jumps, 0u);
}

TEST_F(FastForwardDifferential, EnvVarEscapeHatch) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(kScale * 4);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;

  setenv("SYNCPAT_FAST_FORWARD", "0", 1);
  const RunOutput forced_off = run_once(scaled, cfg, true);
  EXPECT_FALSE(forced_off.ff.enabled);

  setenv("SYNCPAT_FAST_FORWARD", "1", 1);
  const RunOutput forced_on = run_once(scaled, cfg, false);
  EXPECT_TRUE(forced_on.ff.enabled);

  unsetenv("SYNCPAT_FAST_FORWARD");
  EXPECT_EQ(forced_off.rendered, forced_on.rendered);
}

}  // namespace
}  // namespace syncpat

// Differential test for the execution engines: the discrete-event core and
// the legacy tick engine (with and without its quiescence run-ahead) must
// produce byte-identical SimulationResults for every lock scheme, consistency
// model, and write policy.  Every field — including RunningStat moments, which
// would expose a single reordered or double-counted sample — is rendered with
// hexfloat precision (fuzz::render_result, shared with the fuzzing harness)
// and compared as a string so nothing is hidden by rounding.
//
// Also covers the engine-selection surface: the --engine/SYNCPAT_ENGINE
// override, strict rejection of malformed values, and the deprecated
// SYNCPAT_FAST_FORWARD alias (which now selects the tick engine).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "bus/interface.hpp"
#include "core/machine_config.hpp"
#include "core/results.hpp"
#include "core/simulator.hpp"
#include "fuzz/render.hpp"
#include "sync/scheme_factory.hpp"
#include "trace/source.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace syncpat {
namespace {

constexpr std::uint64_t kScale = 64;

workload::BenchmarkProfile profile_by_name(const std::string& name) {
  for (const auto& p : workload::paper_profiles()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown profile " << name;
  return {};
}

struct RunOutput {
  std::string rendered;
  core::FastForwardStats ff;
  core::DesStats des;
  core::EngineKind engine = core::EngineKind::kDes;
};

RunOutput run_once(const workload::BenchmarkProfile& scaled,
                   core::MachineConfig cfg, core::EngineKind engine,
                   bool fast_forward = true) {
  cfg.num_procs = scaled.num_procs;
  cfg.engine = engine;
  cfg.fast_forward = fast_forward;
  trace::ProgramTrace program = workload::make_program_trace(scaled);
  core::Simulator sim(cfg, program);
  RunOutput out;
  out.rendered = fuzz::render_result(sim.run());
  out.ff = sim.fast_forward_stats();
  out.des = sim.des_stats();
  out.engine = sim.engine();
  return out;
}

class EngineDifferential : public ::testing::Test {
 protected:
  // The config fields must control the mode: values inherited from the
  // calling environment would override them for every run.
  void SetUp() override {
    unsetenv("SYNCPAT_ENGINE");
    unsetenv("SYNCPAT_FAST_FORWARD");
  }
};

// The 28-config matrix: 7 lock schemes x 2 consistency models x 2 write
// policies, each run three ways — DES, tick per-cycle, tick with run-ahead.
TEST_F(EngineDifferential, ByteIdenticalAcrossSchemesModelsAndPolicies) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Grav").scaled(kScale);
  std::uint64_t total_jumps = 0;
  std::uint64_t total_spans = 0;
  for (const sync::SchemeKind scheme : sync::all_scheme_kinds()) {
    for (const bus::ConsistencyModel model :
         {bus::ConsistencyModel::kSequential, bus::ConsistencyModel::kWeak}) {
      for (const cache::WritePolicy policy :
           {cache::WritePolicy::kWriteBack, cache::WritePolicy::kWriteThrough}) {
        core::MachineConfig cfg;
        cfg.lock_scheme = scheme;
        cfg.consistency = model;
        cfg.write_policy = policy;
        const std::string label =
            std::string("scheme=") + sync::scheme_kind_name(scheme) +
            " model=" + bus::consistency_name(model) +
            " policy=" + cache::write_policy_name(policy);
        const RunOutput des = run_once(scaled, cfg, core::EngineKind::kDes);
        const RunOutput tick =
            run_once(scaled, cfg, core::EngineKind::kTick, /*fast_forward=*/false);
        const RunOutput tick_ff =
            run_once(scaled, cfg, core::EngineKind::kTick, /*fast_forward=*/true);
        EXPECT_TRUE(des.des.enabled);
        EXPECT_FALSE(tick.ff.enabled);
        EXPECT_TRUE(tick_ff.ff.enabled);
        EXPECT_EQ(des.rendered, tick.rendered)
            << "DES diverged from per-cycle ticking: " << label;
        EXPECT_EQ(tick_ff.rendered, tick.rendered)
            << "fast-forward diverged from per-cycle ticking: " << label;
        total_jumps += tick_ff.ff.jumps;
        total_spans += des.des.spans;
      }
    }
  }
  // Both accelerated engines must actually skip cycles somewhere, or this
  // test proves nothing about their bulk-advance paths.
  EXPECT_GT(total_jumps, 0u);
  EXPECT_GT(total_spans, 0u);
}

TEST_F(EngineDifferential, DesSkipsMostCyclesOnCoarseGrainedWork) {
  // Long compute gaps between references: the event queue should jump the
  // gaps and make stepped cycles a small minority.
  workload::BenchmarkProfile coarse = profile_by_name("Grav");
  coarse.work_cycles_per_ref = 400;
  coarse.name = "Grav-coarse";
  const workload::BenchmarkProfile scaled = coarse.scaled(kScale * 4);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  const RunOutput des = run_once(scaled, cfg, core::EngineKind::kDes);
  EXPECT_TRUE(des.des.enabled);
  EXPECT_GT(des.des.spans, 0u);
  EXPECT_GT(des.des.span_cycles, des.des.stepped_cycles)
      << "the event queue should make stepped cycles the minority";
}

TEST_F(EngineDifferential, TickRunAheadEngagesOnQuiescentHeavyProfile) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Grav").scaled(kScale);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  const RunOutput on = run_once(scaled, cfg, core::EngineKind::kTick);
  EXPECT_TRUE(on.ff.enabled);
  EXPECT_GT(on.ff.jumps, 0u);
  EXPECT_GT(on.ff.skipped_cycles + on.ff.run_ahead_cycles, 0u);
}

TEST_F(EngineDifferential, InvariantCheckerForcesPerCycleTick) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(kScale * 4);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  cfg.invariants.enabled = true;
  const RunOutput checked = run_once(scaled, cfg, core::EngineKind::kDes);
  EXPECT_EQ(checked.engine, core::EngineKind::kTick);
  EXPECT_FALSE(checked.ff.enabled);
  EXPECT_FALSE(checked.des.enabled);
  EXPECT_EQ(checked.ff.jumps, 0u);
  EXPECT_EQ(checked.des.spans, 0u);
}

TEST_F(EngineDifferential, EngineEnvOverridesConfig) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(kScale * 4);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;

  setenv("SYNCPAT_ENGINE", "tick", 1);
  const RunOutput forced_tick = run_once(scaled, cfg, core::EngineKind::kDes);
  EXPECT_EQ(forced_tick.engine, core::EngineKind::kTick);
  EXPECT_TRUE(forced_tick.ff.enabled);  // config fast_forward default holds

  setenv("SYNCPAT_ENGINE", "des", 1);
  const RunOutput forced_des =
      run_once(scaled, cfg, core::EngineKind::kTick, /*fast_forward=*/false);
  EXPECT_EQ(forced_des.engine, core::EngineKind::kDes);
  EXPECT_TRUE(forced_des.des.enabled);

  unsetenv("SYNCPAT_ENGINE");
  EXPECT_EQ(forced_tick.rendered, forced_des.rendered);
}

// The deprecated SYNCPAT_FAST_FORWARD variable maps onto the tick engine:
// "1" keeps its historical meaning (tick + run-ahead), "0" the historical
// per-cycle reference mode.  SYNCPAT_ENGINE wins when both are set.
TEST_F(EngineDifferential, DeprecatedFastForwardEnvSelectsTickEngine) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(kScale * 4);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;

  setenv("SYNCPAT_FAST_FORWARD", "0", 1);
  const RunOutput forced_off = run_once(scaled, cfg, core::EngineKind::kDes);
  EXPECT_EQ(forced_off.engine, core::EngineKind::kTick);
  EXPECT_FALSE(forced_off.ff.enabled);

  setenv("SYNCPAT_FAST_FORWARD", "1", 1);
  const RunOutput forced_on =
      run_once(scaled, cfg, core::EngineKind::kDes, /*fast_forward=*/false);
  EXPECT_EQ(forced_on.engine, core::EngineKind::kTick);
  EXPECT_TRUE(forced_on.ff.enabled);

  setenv("SYNCPAT_ENGINE", "des", 1);
  const RunOutput engine_wins =
      run_once(scaled, cfg, core::EngineKind::kTick, /*fast_forward=*/false);
  EXPECT_EQ(engine_wins.engine, core::EngineKind::kDes);

  unsetenv("SYNCPAT_ENGINE");
  unsetenv("SYNCPAT_FAST_FORWARD");
  EXPECT_EQ(forced_off.rendered, forced_on.rendered);
  EXPECT_EQ(forced_off.rendered, engine_wins.rendered);
}

// Malformed values in either variable are configuration errors, never
// silently ignored — even when the other variable would win the selection.
TEST_F(EngineDifferential, MalformedEnvValuesAreRejected) {
  using core::EngineKind;
  using core::resolve_engine;
  EXPECT_THROW((void)resolve_engine(EngineKind::kDes, true, "fast", nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_engine(EngineKind::kDes, true, "DES", nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_engine(EngineKind::kDes, true, "", nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_engine(EngineKind::kDes, true, nullptr, "2"),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_engine(EngineKind::kDes, true, nullptr, "yes"),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_engine(EngineKind::kDes, true, nullptr, ""),
               std::invalid_argument);
  // Strictness is not short-circuited by precedence.
  EXPECT_THROW((void)resolve_engine(EngineKind::kDes, true, "des", "maybe"),
               std::invalid_argument);
}

TEST_F(EngineDifferential, ResolveEngineAliasingTable) {
  using core::EngineKind;
  using core::EngineSelection;
  using core::resolve_engine;

  // No environment: the config decides.
  EngineSelection sel = resolve_engine(EngineKind::kDes, true, nullptr, nullptr);
  EXPECT_EQ(sel.engine, EngineKind::kDes);
  EXPECT_FALSE(sel.from_deprecated_ff);

  sel = resolve_engine(EngineKind::kTick, false, nullptr, nullptr);
  EXPECT_EQ(sel.engine, EngineKind::kTick);
  EXPECT_FALSE(sel.fast_forward);

  // Deprecated alias alone: tick engine, with/without run-ahead.
  sel = resolve_engine(EngineKind::kDes, true, nullptr, "1");
  EXPECT_EQ(sel.engine, EngineKind::kTick);
  EXPECT_TRUE(sel.fast_forward);
  EXPECT_TRUE(sel.from_deprecated_ff);

  sel = resolve_engine(EngineKind::kDes, true, nullptr, "0");
  EXPECT_EQ(sel.engine, EngineKind::kTick);
  EXPECT_FALSE(sel.fast_forward);
  EXPECT_TRUE(sel.from_deprecated_ff);

  // Both set: SYNCPAT_ENGINE wins, the ff bit still applies to tick.
  sel = resolve_engine(EngineKind::kDes, true, "des", "1");
  EXPECT_EQ(sel.engine, EngineKind::kDes);
  EXPECT_FALSE(sel.from_deprecated_ff);

  sel = resolve_engine(EngineKind::kDes, true, "tick", "0");
  EXPECT_EQ(sel.engine, EngineKind::kTick);
  EXPECT_FALSE(sel.fast_forward);
  EXPECT_FALSE(sel.from_deprecated_ff);
}

}  // namespace
}  // namespace syncpat

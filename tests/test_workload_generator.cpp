#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "trace/analyzer.hpp"
#include "trace/address_map.hpp"
#include "workload/profiles.hpp"

namespace syncpat::workload {
namespace {

BenchmarkProfile tiny_profile() {
  BenchmarkProfile p;
  p.name = "tiny";
  p.num_procs = 4;
  p.refs_per_proc = 20'000;
  p.data_ref_fraction = 0.35;
  p.work_cycles_per_ref = 2.5;
  p.locking.pairs_per_proc = 120;
  p.locking.nested_per_proc = 40;
  p.locking.cs_work_cycles = 80;
  p.locking.num_locks = 3;
  p.locking.dominant_weight = 0.6;
  p.seed = 0x7171;
  return p;
}

TEST(Generator, DeterministicPerSeedAndProc) {
  ProfileTraceSource a(tiny_profile(), 1);
  ProfileTraceSource b(tiny_profile(), 1);
  trace::Event ea, eb;
  for (int i = 0; i < 5000; ++i) {
    const bool ha = a.next(ea);
    const bool hb = b.next(eb);
    ASSERT_EQ(ha, hb);
    if (!ha) break;
    ASSERT_EQ(ea, eb) << "diverged at event " << i;
  }
}

TEST(Generator, DifferentProcsDiffer) {
  ProfileTraceSource a(tiny_profile(), 0);
  ProfileTraceSource b(tiny_profile(), 1);
  trace::Event ea, eb;
  int diffs = 0;
  for (int i = 0; i < 100; ++i) {
    if (!a.next(ea) || !b.next(eb)) break;
    diffs += (ea == eb) ? 0 : 1;
  }
  EXPECT_GT(diffs, 0);
}

TEST(Generator, ResetReplaysIdentically) {
  ProfileTraceSource s(tiny_profile(), 2);
  std::vector<trace::Event> first;
  trace::Event e;
  for (int i = 0; i < 200 && s.next(e); ++i) first.push_back(e);
  s.reset();
  for (const trace::Event& expected : first) {
    ASSERT_TRUE(s.next(e));
    ASSERT_EQ(e, expected);
  }
}

TEST(Generator, GapsAreAlwaysPositive) {
  ProfileTraceSource s(tiny_profile(), 0);
  trace::Event e;
  while (s.next(e)) ASSERT_GE(e.gap, 1u);
}

TEST(Generator, ReferenceCountNearTarget) {
  ProfileTraceSource s(tiny_profile(), 0);
  trace::Event e;
  std::uint64_t refs = 0;
  while (s.next(e)) {
    if (trace::is_memory_ref(e.op)) ++refs;
  }
  EXPECT_NEAR(static_cast<double>(refs), 20'000.0, 600.0);
}

TEST(Generator, LockPairsBalanced) {
  // The analyzer asserts on unbalanced acquire/release, so a clean run is
  // the property.
  trace::ProgramTrace program = make_program_trace(tiny_profile());
  const trace::IdealProgramStats stats = trace::analyze_program(program);
  for (const auto& p : stats.per_proc) {
    EXPECT_NEAR(static_cast<double>(p.lock_pairs), 120.0, 25.0);
    EXPECT_NEAR(static_cast<double>(p.nested_pairs), 40.0, 20.0);
  }
}

TEST(Generator, AddressesInValidRegions) {
  ProfileTraceSource s(tiny_profile(), 1);
  trace::Event e;
  while (s.next(e)) {
    const trace::Region region = trace::AddressMap::classify(e.addr);
    switch (e.op) {
      case trace::Op::kIFetch:
        ASSERT_EQ(region, trace::Region::kCode);
        break;
      case trace::Op::kLockAcq:
      case trace::Op::kLockRel:
        ASSERT_EQ(region, trace::Region::kLock);
        break;
      default:
        ASSERT_NE(region, trace::Region::kLock);
        break;
    }
  }
}

TEST(Generator, PrivateRefsBelongToOwnSegment) {
  const BenchmarkProfile profile = tiny_profile();
  for (std::uint32_t proc = 0; proc < profile.num_procs; ++proc) {
    ProfileTraceSource s(profile, proc);
    trace::Event e;
    while (s.next(e)) {
      if (trace::is_data_ref(e.op) &&
          trace::AddressMap::classify(e.addr) == trace::Region::kPrivate) {
        ASSERT_EQ(trace::AddressMap::private_owner(e.addr), proc);
      }
    }
  }
}

TEST(Generator, ScaledProfileShrinksCounts) {
  const BenchmarkProfile base = grav_profile();
  const BenchmarkProfile scaled = base.scaled(8);
  EXPECT_EQ(scaled.refs_per_proc, base.refs_per_proc / 8);
  EXPECT_EQ(scaled.locking.pairs_per_proc, base.locking.pairs_per_proc / 8);
  EXPECT_EQ(scaled.num_procs, base.num_procs);  // processors never scale
  EXPECT_EQ(base.scaled(1).refs_per_proc, base.refs_per_proc);
}

TEST(Generator, BurstFrontLoadsCriticalSections) {
  BenchmarkProfile p = tiny_profile();
  p.locking.burst_fraction = 0.5;
  p.locking.burst_window = 0.05;
  ProfileTraceSource s(p, 0);
  trace::Event e;
  std::uint64_t refs = 0, early_acqs = 0, total_acqs = 0;
  const std::uint64_t window = p.refs_per_proc / 20;
  while (s.next(e)) {
    if (trace::is_memory_ref(e.op)) ++refs;
    if (e.op == trace::Op::kLockAcq) {
      ++total_acqs;
      if (refs < window) ++early_acqs;
    }
  }
  // At least ~40% of acquisitions land in the first 5% of the trace.
  EXPECT_GT(static_cast<double>(early_acqs),
            0.35 * static_cast<double>(total_acqs));
}

TEST(Generator, NoLocksProfileEmitsNone) {
  BenchmarkProfile p = tiny_profile();
  p.locking.pairs_per_proc = 0;
  p.locking.nested_per_proc = 0;
  ProfileTraceSource s(p, 0);
  trace::Event e;
  while (s.next(e)) ASSERT_FALSE(trace::is_lock_op(e.op));
}

TEST(Generator, CpiSkewScalesOneProcessor) {
  BenchmarkProfile p = tiny_profile();
  p.locking.pairs_per_proc = 0;
  p.locking.nested_per_proc = 0;
  p.cpi_skew = 0.5;
  p.skew_proc = 0;
  trace::ProgramTrace program = make_program_trace(p);
  const trace::IdealProgramStats stats = trace::analyze_program(program);
  const double skewed = static_cast<double>(stats.per_proc[0].work_cycles);
  const double normal = static_cast<double>(stats.per_proc[1].work_cycles);
  EXPECT_GT(skewed, normal * 1.3);
  EXPECT_LT(skewed, normal * 1.7);
}

}  // namespace
}  // namespace syncpat::workload

#include "bus/interface.hpp"

#include <gtest/gtest.h>

#include <array>

namespace syncpat::bus {
namespace {

Transaction make(TxnKind kind, std::uint32_t line,
                 StallCause cause = StallCause::kNone) {
  Transaction t;
  t.kind = kind;
  t.line_addr = line;
  t.stall_cause = cause;
  return t;
}

TEST(BusInterface, SequentialIsFifo) {
  BusInterface iface(0, 4, ConsistencyModel::kSequential);
  Transaction a = make(TxnKind::kWriteBack, 0x100);
  Transaction b = make(TxnKind::kRead, 0x200, StallCause::kCacheMiss);
  EXPECT_TRUE(iface.enqueue(&a));
  EXPECT_TRUE(iface.enqueue(&b));
  EXPECT_EQ(iface.pop_head(), &a);
  EXPECT_EQ(iface.pop_head(), &b);
}

TEST(BusInterface, FullRejectsEnqueue) {
  BusInterface iface(0, 2, ConsistencyModel::kSequential);
  Transaction a = make(TxnKind::kWriteBack, 0x100);
  Transaction b = make(TxnKind::kWriteBack, 0x200);
  Transaction c = make(TxnKind::kWriteBack, 0x300);
  EXPECT_TRUE(iface.enqueue(&a));
  EXPECT_TRUE(iface.enqueue(&b));
  EXPECT_FALSE(iface.enqueue(&c));
  EXPECT_TRUE(iface.full());
}

TEST(BusInterface, WeakOrderingBypassesBufferedWrites) {
  BusInterface iface(0, 4, ConsistencyModel::kWeak);
  Transaction wb = make(TxnKind::kWriteBack, 0x100);
  Transaction wr = make(TxnKind::kReadX, 0x200);  // buffered store, no stall
  Transaction rd = make(TxnKind::kRead, 0x300, StallCause::kCacheMiss);
  EXPECT_TRUE(iface.enqueue(&wb));
  EXPECT_TRUE(iface.enqueue(&wr));
  EXPECT_TRUE(iface.enqueue(&rd));
  EXPECT_EQ(iface.pop_head(), &rd);  // the stalling read bypassed to the front
  EXPECT_EQ(iface.pop_head(), &wb);
  EXPECT_EQ(iface.pop_head(), &wr);
  EXPECT_EQ(iface.bypasses(), 1u);
}

TEST(BusInterface, WeakOrderingRespectsSameLineDependence) {
  BusInterface iface(0, 4, ConsistencyModel::kWeak);
  Transaction wr = make(TxnKind::kReadX, 0x300);
  Transaction rd = make(TxnKind::kRead, 0x300, StallCause::kCacheMiss);
  EXPECT_TRUE(iface.enqueue(&wr));
  EXPECT_TRUE(iface.enqueue(&rd));
  EXPECT_EQ(iface.pop_head(), &wr);  // no bypass past a same-line entry
  EXPECT_EQ(iface.pop_head(), &rd);
  EXPECT_EQ(iface.bypass_blocked(), 1u);
}

TEST(BusInterface, WeakOrderingNonStallingWritesStayFifo) {
  BusInterface iface(0, 4, ConsistencyModel::kWeak);
  Transaction w1 = make(TxnKind::kReadX, 0x100);
  Transaction w2 = make(TxnKind::kUpgrade, 0x200);
  EXPECT_TRUE(iface.enqueue(&w1));
  EXPECT_TRUE(iface.enqueue(&w2));
  EXPECT_EQ(iface.pop_head(), &w1);
  EXPECT_EQ(iface.pop_head(), &w2);
}

TEST(BusInterface, SequentialNeverBypasses) {
  BusInterface iface(0, 4, ConsistencyModel::kSequential);
  Transaction wb = make(TxnKind::kWriteBack, 0x100);
  Transaction rd = make(TxnKind::kRead, 0x200, StallCause::kCacheMiss);
  EXPECT_TRUE(iface.enqueue(&wb));
  EXPECT_TRUE(iface.enqueue(&rd));
  EXPECT_EQ(iface.pop_head(), &wb);
  EXPECT_EQ(iface.bypasses(), 0u);
}

TEST(BusInterface, SnoopWritebackRemovesMatch) {
  BusInterface iface(0, 4, ConsistencyModel::kSequential);
  Transaction wb1 = make(TxnKind::kWriteBack, 0x100);
  Transaction rd = make(TxnKind::kRead, 0x200, StallCause::kCacheMiss);
  Transaction wb2 = make(TxnKind::kWriteBack, 0x300);
  EXPECT_TRUE(iface.enqueue(&wb1));
  EXPECT_TRUE(iface.enqueue(&rd));
  EXPECT_TRUE(iface.enqueue(&wb2));
  EXPECT_EQ(iface.snoop_writeback(0x300), &wb2);
  EXPECT_EQ(iface.snoop_writeback(0x300), nullptr);  // already gone
  EXPECT_EQ(iface.size(), 2u);
  EXPECT_EQ(iface.pop_head(), &wb1);  // order of the rest preserved
  EXPECT_EQ(iface.pop_head(), &rd);
}

TEST(BusInterface, SnoopWritebackIgnoresReads) {
  BusInterface iface(0, 4, ConsistencyModel::kSequential);
  Transaction rd = make(TxnKind::kRead, 0x100, StallCause::kCacheMiss);
  EXPECT_TRUE(iface.enqueue(&rd));
  EXPECT_EQ(iface.snoop_writeback(0x100), nullptr);
}

TEST(BusInterface, HasLineScansAllEntries) {
  BusInterface iface(0, 4, ConsistencyModel::kSequential);
  Transaction a = make(TxnKind::kWriteBack, 0x100);
  Transaction b = make(TxnKind::kUpgrade, 0x200);
  EXPECT_TRUE(iface.enqueue(&a));
  EXPECT_TRUE(iface.enqueue(&b));
  EXPECT_TRUE(iface.has_line(0x100));
  EXPECT_TRUE(iface.has_line(0x200));
  EXPECT_FALSE(iface.has_line(0x300));
}

TEST(BusInterface, ConsistencyNames) {
  EXPECT_STREQ(consistency_name(ConsistencyModel::kSequential), "sequential");
  EXPECT_STREQ(consistency_name(ConsistencyModel::kWeak), "weak");
}

}  // namespace
}  // namespace syncpat::bus

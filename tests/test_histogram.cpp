#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace syncpat::util {
namespace {

TEST(Histogram, ZeroGoesToBucketZero) {
  Histogram h;
  h.add(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Histogram::bucket_hi(1), 1u);
  EXPECT_EQ(Histogram::bucket_lo(2), 2u);
  EXPECT_EQ(Histogram::bucket_hi(2), 3u);
  EXPECT_EQ(Histogram::bucket_lo(5), 16u);
  EXPECT_EQ(Histogram::bucket_hi(5), 31u);
}

TEST(Histogram, ValuesLandInTheRightBuckets) {
  Histogram h;
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(31);
  h.add(32);
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(3), 1u);  // 4
  EXPECT_EQ(h.bucket_count(5), 1u);  // 31
  EXPECT_EQ(h.bucket_count(6), 1u);  // 32
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
  // The 500th value of 1..1000 falls in the [256,511] bucket.
  EXPECT_EQ(h.quantile(0.5), 511u);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
}

// Regression: p = 1.0 produced an unclamped rank equal to count(), which no
// cumulative bucket count exceeds, so the scan fell through to the global
// last bucket's hi bound (~2^63) regardless of the data.
TEST(Histogram, QuantileEndpoints) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 1u);      // hi bound of the lowest bucket, [1,1]
  EXPECT_EQ(h.quantile(0.5), 511u);
  EXPECT_EQ(h.quantile(1.0), 1000u);   // bucket hi 1023 clamps to max added
}

// A histogram whose samples all land in one power-of-two bucket reports the
// samples' actual value, not the bucket's hi bound: quantiles clamp to the
// observed [min, max].
TEST(Histogram, QuantileSingleValueSameForAllP) {
  Histogram h;
  h.add(42);  // lands in [32,63]
  EXPECT_EQ(h.quantile(0.0), 42u);
  EXPECT_EQ(h.quantile(0.5), 42u);
  EXPECT_EQ(h.quantile(1.0), 42u);
}

TEST(Histogram, MinMaxTracked) {
  Histogram h;
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not ~0
  EXPECT_EQ(h.max(), 0u);
  h.add(7);
  h.add(3);
  h.add(900);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 900u);
  Histogram other;
  other.add(1);
  h.merge(other);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 900u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(5);
  b.add(5);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket_count(3), 2u);  // two fives in [4,7]
}

TEST(Histogram, ToStringListsNonEmptyBuckets) {
  Histogram h;
  h.add(7);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[4, 7]"), std::string::npos);
}

TEST(Histogram, HugeValuesClampToLastBucket) {
  Histogram h;
  h.add(~0ULL);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
}

}  // namespace
}  // namespace syncpat::util

// Cache geometry property sweep: the cache state machine must behave for
// any (size, line, associativity) combination, and miss behaviour must
// respond to geometry the way caches do.
#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache.hpp"
#include "util/rng.hpp"

namespace syncpat::cache {
namespace {

using Geometry = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class CacheGeometry : public ::testing::TestWithParam<Geometry> {
 protected:
  CacheConfig config() const {
    const auto [size, line, assoc] = GetParam();
    return CacheConfig{.size_bytes = size, .line_bytes = line,
                       .associativity = assoc};
  }
};

TEST_P(CacheGeometry, GeometryIsConsistent) {
  const CacheConfig c = config();
  EXPECT_EQ(c.num_sets() * c.line_bytes * c.associativity, c.size_bytes);
  Cache cache(c);
  EXPECT_EQ(cache.config().num_sets(), c.num_sets());
}

TEST_P(CacheGeometry, FillThenHitEverywhere) {
  const CacheConfig c = config();
  Cache cache(c);
  // Fill every set's first way, then every fill must hit.
  for (std::uint32_t set = 0; set < c.num_sets(); ++set) {
    const std::uint32_t addr = set * c.line_bytes;
    ASSERT_TRUE(cache.allocate(addr).ok);
    cache.fill(addr, LineState::kExclusive);
  }
  for (std::uint32_t set = 0; set < c.num_sets(); ++set) {
    EXPECT_TRUE(cache.access(set * c.line_bytes, AccessClass::kRead).hit);
  }
}

TEST_P(CacheGeometry, WorkingSetLargerThanCacheMisses) {
  const CacheConfig c = config();
  Cache cache(c);
  // March through 4x the cache size twice: second pass must still miss
  // everywhere the reuse distance exceeds the capacity (strict LRU).
  const std::uint32_t span = c.size_bytes * 4;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t addr = 0; addr < span; addr += c.line_bytes) {
      if (!cache.access(addr, AccessClass::kRead).hit) {
        const auto alloc = cache.allocate(addr);
        ASSERT_TRUE(alloc.ok);
        cache.fill(addr, LineState::kExclusive);
      }
    }
  }
  const CacheStats& s = cache.stats();
  // Every access in both passes missed (sequential sweep, LRU).
  EXPECT_EQ(s.read_hits, 0u);
  EXPECT_EQ(s.read_misses, 2u * span / c.line_bytes);
}

TEST_P(CacheGeometry, WorkingSetSmallerThanWayCapacityAlwaysHitsAfterWarmup) {
  const CacheConfig c = config();
  Cache cache(c);
  const std::uint32_t span = c.size_bytes / c.associativity;  // one way's worth
  auto touch_all = [&] {
    for (std::uint32_t addr = 0; addr < span; addr += c.line_bytes) {
      if (!cache.access(addr, AccessClass::kRead).hit) {
        const auto alloc = cache.allocate(addr);
        ASSERT_TRUE(alloc.ok);
        cache.fill(addr, LineState::kExclusive);
      }
    }
  };
  touch_all();  // warm-up
  const std::uint64_t misses_before = cache.stats().read_misses;
  touch_all();
  EXPECT_EQ(cache.stats().read_misses, misses_before);  // all hits
}

TEST_P(CacheGeometry, RandomizedStateMachineNeverBreaks) {
  const CacheConfig c = config();
  Cache cache(c);
  util::Rng rng(0xcace + c.size_bytes + c.associativity);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint32_t addr = static_cast<std::uint32_t>(
        rng.below(c.size_bytes * 8) / 4 * 4);
    const std::uint32_t line = c.line_addr(addr);
    switch (rng.below(4)) {
      case 0:
      case 1: {
        const AccessResult r = cache.access(
            addr, rng.chance(0.5) ? AccessClass::kRead : AccessClass::kWrite);
        if (r.needs_upgrade) {
          EXPECT_TRUE(cache.complete_upgrade(line));
        } else if (!r.hit && cache.state(line) == LineState::kInvalid) {
          const auto alloc = cache.allocate(line);
          if (alloc.ok) {
            cache.fill(line, rng.chance(0.5) ? LineState::kExclusive
                                             : LineState::kShared);
          }
        }
        break;
      }
      case 2:
        cache.snoop(line, rng.chance(0.5));
        break;
      case 3:
        if (cache.state(line) == LineState::kPending) {
          cache.cancel_pending(line);
        }
        break;
    }
  }
  // Sanity: statistics stayed coherent.
  const CacheStats& s = cache.stats();
  EXPECT_GT(s.read_hits + s.read_misses + s.write_hits + s.write_misses, 0u);
  EXPECT_LE(s.write_hit_ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{64 * 1024, 16, 2},   // the paper's cache
                      Geometry{64 * 1024, 32, 2},   // wider lines
                      Geometry{64 * 1024, 16, 4},   // more ways
                      Geometry{16 * 1024, 16, 1},   // direct-mapped
                      Geometry{8 * 1024, 64, 8},    // small, highly assoc.
                      Geometry{128 * 1024, 16, 2}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return std::to_string(std::get<0>(info.param) / 1024) + "k_l" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace syncpat::cache

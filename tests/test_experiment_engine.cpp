// Tests for the parallel experiment engine: grid expansion order, result
// determinism across worker counts, equivalence with direct run_experiment
// calls, and SYNCPAT_JOBS parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/experiment.hpp"
#include "core/experiment_engine.hpp"
#include "workload/profiles.hpp"

namespace syncpat {
namespace {

using core::EngineOptions;
using core::ExperimentGrid;
using core::GridResult;

/// Every integer quantity the paper tables report, serialized per cell.
/// Two GridResults with equal fingerprints produced identical experiments.
std::string fingerprint(const GridResult& grid) {
  std::string out;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::CellResult& r = grid.results[i];
    out += grid.cells[i].label();
    out += ": err=" + r.error;
    const core::SimulationResult& sim = r.outcome.sim;
    out += " run_time=" + std::to_string(sim.run_time);
    out += " acq=" + std::to_string(sim.locks.acquisitions);
    out += " xfer=" + std::to_string(sim.locks.transfers);
    out += " bus=" + std::to_string(sim.traffic.total());
    out += " c2c=" + std::to_string(sim.traffic.c2c_supplies);
    out += " lockops=" + std::to_string(sim.traffic.lock_ops);
    out += " syncs=" + std::to_string(sim.syncs);
    out += " barriers=" + std::to_string(sim.barriers_completed);
    for (const core::ProcResult& p : sim.per_proc) {
      out += " [" + std::to_string(p.work_cycles) + "," +
             std::to_string(p.stall_cache) + "," +
             std::to_string(p.stall_lock) + "," +
             std::to_string(p.stall_fence) + "," +
             std::to_string(p.completion_cycle) + "]";
    }
    out += "\n";
  }
  return out;
}

ExperimentGrid small_grid() {
  ExperimentGrid grid;
  grid.profiles = {workload::qsort_profile(), workload::fullconn_profile()};
  grid.schemes = {sync::SchemeKind::kQueuing, sync::SchemeKind::kTtas};
  grid.consistency_models = {bus::ConsistencyModel::kSequential,
                             bus::ConsistencyModel::kWeak};
  grid.scales = {128};
  return grid;
}

TEST(ExperimentEngine, GridCellsEnumerateInDeterministicOrder) {
  const auto cells = core::grid_cells(small_grid());
  ASSERT_EQ(cells.size(), 8u);
  // Profile-major, then scheme, then consistency model.
  EXPECT_EQ(cells[0].label(), "Qsort/queuing/sequential/write-back/p12/x128");
  EXPECT_EQ(cells[1].label(), "Qsort/queuing/weak/write-back/p12/x128");
  EXPECT_EQ(cells[2].label(), "Qsort/ttas/sequential/write-back/p12/x128");
  EXPECT_EQ(cells[7].label(), "FullConn/ttas/weak/write-back/p12/x128");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(ExperimentEngine, ProcCountAxisOverridesProfile) {
  ExperimentGrid grid;
  grid.profiles = {workload::qsort_profile()};
  grid.proc_counts = {0, 4, 8};
  const auto cells = core::grid_cells(grid);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].profile.num_procs, workload::qsort_profile().num_procs);
  EXPECT_EQ(cells[1].profile.num_procs, 4u);
  EXPECT_EQ(cells[1].config.num_procs, 4u);
  EXPECT_EQ(cells[2].profile.num_procs, 8u);
}

// The tentpole determinism guarantee: grid results are byte-identical no
// matter how many workers ran them, across repeated runs.
TEST(ExperimentEngine, ResultsIdenticalAcrossJobCounts) {
  const ExperimentGrid grid = small_grid();
  EngineOptions serial;
  serial.jobs = 1;
  EngineOptions pooled;
  pooled.jobs = 8;

  const std::string serial1 = fingerprint(core::run_grid(grid, serial));
  const std::string pooled1 = fingerprint(core::run_grid(grid, pooled));
  const std::string serial2 = fingerprint(core::run_grid(grid, serial));
  const std::string pooled2 = fingerprint(core::run_grid(grid, pooled));

  EXPECT_FALSE(serial1.empty());
  EXPECT_EQ(serial1, pooled1);
  EXPECT_EQ(serial1, serial2);
  EXPECT_EQ(pooled1, pooled2);
}

TEST(ExperimentEngine, MatchesDirectRunExperiment) {
  ExperimentGrid grid;
  grid.profiles = {workload::grav_profile()};
  grid.schemes = {sync::SchemeKind::kTicket};
  grid.scales = {128};
  const GridResult result = core::run_grid(grid);
  ASSERT_EQ(result.size(), 1u);
  ASSERT_TRUE(result.results[0].ok());
  EXPECT_GT(result.results[0].wall_ms, 0.0);
  EXPECT_GE(result.results[0].attempts, 1u);

  core::MachineConfig config;
  config.lock_scheme = sync::SchemeKind::kTicket;
  const core::ExperimentOutcome direct =
      core::run_experiment(config, workload::grav_profile(), 128);
  EXPECT_EQ(result.results[0].outcome.sim.run_time, direct.sim.run_time);
  EXPECT_EQ(result.results[0].outcome.sim.locks.acquisitions,
            direct.sim.locks.acquisitions);
  EXPECT_EQ(result.results[0].outcome.ideal.avg_refs_all(),
            direct.ideal.avg_refs_all());
}

TEST(ExperimentEngine, IdealOnlySkipsSimulation) {
  ExperimentGrid grid;
  grid.profiles = {workload::qsort_profile()};
  grid.scales = {128};
  grid.ideal_only = true;
  const GridResult result = core::run_grid(grid);
  ASSERT_EQ(result.size(), 1u);
  ASSERT_TRUE(result.results[0].ok());
  EXPECT_GT(result.results[0].outcome.ideal.avg_refs_all(), 0.0);
  EXPECT_EQ(result.results[0].outcome.sim.run_time, 0u);
}

TEST(ExperimentEngine, JobsFromEnvParsesAndRejects) {
  unsetenv("SYNCPAT_JOBS");
  EXPECT_EQ(core::jobs_from_env(3), 3u);

  setenv("SYNCPAT_JOBS", "6", 1);
  EXPECT_EQ(core::jobs_from_env(3), 6u);
  setenv("SYNCPAT_JOBS", "0", 1);  // 0 = all cores, valid
  EXPECT_EQ(core::jobs_from_env(3), 0u);

  setenv("SYNCPAT_JOBS", "", 1);
  EXPECT_THROW(static_cast<void>(core::jobs_from_env(3)), std::invalid_argument);
  setenv("SYNCPAT_JOBS", "junk", 1);
  EXPECT_THROW(static_cast<void>(core::jobs_from_env(3)), std::invalid_argument);
  setenv("SYNCPAT_JOBS", "4x", 1);
  EXPECT_THROW(static_cast<void>(core::jobs_from_env(3)), std::invalid_argument);
  setenv("SYNCPAT_JOBS", "-2", 1);
  EXPECT_THROW(static_cast<void>(core::jobs_from_env(3)), std::invalid_argument);
  unsetenv("SYNCPAT_JOBS");
}

// SYNCPAT_BENCH_REPS and friends share this helper; it follows the
// SYNCPAT_SCALE policy — a set-but-malformed value is an error, never a
// silent fall-through to the default.
TEST(ExperimentEngine, PositiveU64FromEnvParsesAndRejects) {
  const char* var = "SYNCPAT_TEST_KNOB";
  unsetenv(var);
  EXPECT_EQ(core::positive_u64_from_env(var, 7), 7u);

  setenv(var, "12", 1);
  EXPECT_EQ(core::positive_u64_from_env(var, 7), 12u);

  for (const char* bad : {"", "abc", "3x", "0", "-2", " 4"}) {
    setenv(var, bad, 1);
    EXPECT_THROW(static_cast<void>(core::positive_u64_from_env(var, 7)),
                 std::invalid_argument)
        << "value \"" << bad << "\" should be rejected";
  }
  unsetenv(var);
}

}  // namespace
}  // namespace syncpat

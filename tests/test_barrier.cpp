// Barrier synchronization through the full machine.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "test_util.hpp"
#include "trace/analyzer.hpp"
#include "workload/generator.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

trace::Event barrier(std::uint32_t id, std::uint32_t gap = 1) {
  return trace::Event{trace::AddressMap::barrier_addr(id), gap,
                      trace::Op::kBarrier};
}

TEST(Barrier, SingleProcessorPassesImmediately) {
  trace::ProgramTrace program = make_program({{barrier(0, 1), ifetch(0x100, 5)}});
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.barriers_completed, 1u);
  EXPECT_EQ(r.per_proc[0].stall_lock, 0u);
}

TEST(Barrier, AllProcessorsWaitForTheSlowest) {
  trace::ProgramTrace program = make_program({
      {barrier(0, 1), ifetch(0x100, 2)},
      {barrier(0, 200), ifetch(0x100, 2)},  // arrives ~200 cycles later
      {barrier(0, 1), ifetch(0x100, 2)},
  });
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.barriers_completed, 1u);
  // The early arrivals waited roughly the slow processor's head start.
  EXPECT_GT(r.per_proc[0].stall_lock, 150u);
  EXPECT_GT(r.per_proc[2].stall_lock, 150u);
  // The last arriver never waits at the barrier itself; only its arrival
  // access (classified lock-wait because others were queued) costs cycles.
  EXPECT_LE(r.per_proc[1].stall_lock, 6u);
  // All finish within a few cycles of each other.
  const std::uint64_t c0 = r.per_proc[0].completion_cycle;
  const std::uint64_t c1 = r.per_proc[1].completion_cycle;
  EXPECT_LT(c0 > c1 ? c0 - c1 : c1 - c0, 20u);
}

TEST(Barrier, ReusableAcrossPhases) {
  std::vector<std::vector<trace::Event>> traces(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int phase = 0; phase < 5; ++phase) {
      traces[p].push_back(ifetch(0x100 + 16 * phase, 10 + p * 5));
      traces[p].push_back(barrier(0, 1));
    }
  }
  trace::ProgramTrace program = make_program(std::move(traces));
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.barriers_completed, 5u);
}

TEST(Barrier, WaitersAtArrivalAveragesHalf) {
  // Staggered arrivals: processor p arrives p*30 cycles late, so arrival i
  // finds i processors... measured mean over arrivals is (P-1)/2.
  constexpr std::uint32_t kProcs = 8;
  std::vector<std::vector<trace::Event>> traces(kProcs);
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    traces[p].push_back(barrier(0, 1 + p * 30));
    traces[p].push_back(ifetch(0x100, 2));
  }
  trace::ProgramTrace program = make_program(std::move(traces));
  const SimulationResult r = simulate(machine(), program);
  EXPECT_NEAR(r.barrier_waiters_at_arrival.mean(), (kProcs - 1) / 2.0, 0.01);
}

TEST(Barrier, ArrivalCostsOneBusTransaction) {
  trace::ProgramTrace program = make_program({{barrier(0, 1)}});
  MachineConfig config = machine();
  config.num_procs = 1;
  Simulator sim(config, program);
  sim.run();
  // One forced ownership transaction on a cold line: at most ~6 busy cycles.
  EXPECT_LE(sim.bus().busy_cycles(), 6u);
  EXPECT_GE(sim.bus().busy_cycles(), 1u);
}

TEST(Barrier, WorksUnderWeakOrderingWithFence) {
  trace::ProgramTrace program = make_program({
      {store(shared_line(0), 1), barrier(0, 1), ifetch(0x100, 2)},
      {barrier(0, 30), ifetch(0x100, 2)},
  });
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_EQ(r.barriers_completed, 1u);
  EXPECT_GE(r.syncs_with_pending, 1u);  // the buffered store fenced
}

TEST(Barrier, AnalyzerCountsArrivals) {
  trace::ProgramTrace program = make_program({{barrier(0, 1), barrier(0, 1)}});
  const trace::IdealProgramStats stats = trace::analyze_program(program);
  EXPECT_EQ(stats.per_proc[0].barriers, 2u);
  EXPECT_EQ(stats.per_proc[0].refs_all, 0u);  // not a memory reference
}

TEST(Barrier, GeneratorEmitsEqualSequences) {
  workload::BenchmarkProfile p;
  p.name = "barrier-gen";
  p.num_procs = 6;
  p.refs_per_proc = 5'000;
  p.data_ref_fraction = 0.3;
  p.work_cycles_per_ref = 2.0;
  p.locking.pairs_per_proc = 20;
  p.locking.cs_work_cycles = 60;
  p.locking.barriers_per_proc = 7;
  trace::ProgramTrace program = workload::make_program_trace(p);
  const trace::IdealProgramStats stats = trace::analyze_program(program);
  for (const auto& proc : stats.per_proc) {
    EXPECT_EQ(proc.barriers, 7u);  // identical count everywhere, or deadlock
  }
  program.reset_all();
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.barriers_completed, 7u);
}

TEST(Barrier, MixedWithLocksCompletes) {
  std::vector<std::vector<trace::Event>> traces(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int round = 0; round < 5; ++round) {
      traces[p].push_back(lock_acq(0, 3));
      traces[p].push_back(load(shared_line(2), 10));
      traces[p].push_back(lock_rel(0, 1));
      traces[p].push_back(barrier(0, 2));
    }
  }
  trace::ProgramTrace program = make_program(std::move(traces));
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.barriers_completed, 5u);
  EXPECT_EQ(r.locks.acquisitions, 20u);
}

}  // namespace
}  // namespace syncpat::core

// Property tests shared by every lock scheme: mutual exclusion, progress,
// statistics consistency, and FIFO-ish fairness where applicable.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "util/rng.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

class AllSchemes : public ::testing::TestWithParam<sync::SchemeKind> {};

trace::ProgramTrace random_lock_workload(std::uint32_t procs, int rounds,
                                         std::uint32_t num_locks,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<trace::Event>> traces(procs);
  for (std::uint32_t p = 0; p < procs; ++p) {
    for (int r = 0; r < rounds; ++r) {
      const auto lock = static_cast<std::uint32_t>(rng.below(num_locks));
      const auto think = static_cast<std::uint32_t>(1 + rng.below(20));
      const auto cs = static_cast<std::uint32_t>(1 + rng.below(40));
      traces[p].push_back(lock_acq(lock, think));
      traces[p].push_back(load(shared_line(lock + 8), cs));
      traces[p].push_back(store(shared_line(lock + 8), 1));
      traces[p].push_back(lock_rel(lock, 1));
    }
  }
  return make_program(std::move(traces));
}

TEST_P(AllSchemes, EveryAcquisitionCompletes) {
  trace::ProgramTrace program = random_lock_workload(8, 25, 3, 0xabc);
  const SimulationResult r = simulate(machine(GetParam()), program);
  EXPECT_EQ(r.locks.acquisitions, 8u * 25u);
}

TEST_P(AllSchemes, StatsAreInternallyConsistent) {
  trace::ProgramTrace program = random_lock_workload(6, 20, 2, 0xdef);
  const SimulationResult r = simulate(machine(GetParam()), program);
  // hold samples == acquisitions (every acquisition was released).
  EXPECT_EQ(r.locks.hold_cycles.count(), r.locks.acquisitions);
  // transfer-latency samples == transfers.
  EXPECT_EQ(r.locks.transfer_cycles.count(), r.locks.transfers);
  EXPECT_EQ(r.locks.waiters_at_transfer.count(), r.locks.transfers);
  EXPECT_LE(r.locks.transfers, r.locks.acquisitions);
  EXPECT_GE(r.locks.hold_cycles.min(), 0.0);
}

TEST_P(AllSchemes, SingleProcessorNeverWaitsOnLocks) {
  std::vector<trace::Event> events;
  for (int i = 0; i < 15; ++i) {
    events.push_back(lock_acq(0, 2));
    events.push_back(lock_rel(0, 8));
  }
  trace::ProgramTrace program = make_program({events});
  const SimulationResult r = simulate(machine(GetParam()), program);
  EXPECT_EQ(r.per_proc[0].stall_lock, 0u);
  EXPECT_EQ(r.locks.transfers, 0u);
}

TEST_P(AllSchemes, HeavyContentionMakesProgress) {
  trace::ProgramTrace program = random_lock_workload(12, 30, 1, 0x123);
  const SimulationResult r = simulate(machine(GetParam()), program);
  EXPECT_EQ(r.locks.acquisitions, 12u * 30u);
  EXPECT_GT(r.locks.transfers, 100u);
  EXPECT_GT(r.locks.waiters_at_transfer.mean(), 1.0);
}

TEST_P(AllSchemes, NestedLocksWork) {
  std::vector<std::vector<trace::Event>> traces(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int r = 0; r < 10; ++r) {
      traces[p].push_back(lock_acq(0, 5));
      traces[p].push_back(lock_acq(1, 3));
      traces[p].push_back(load(shared_line(4), 5));
      traces[p].push_back(lock_rel(1, 2));
      traces[p].push_back(lock_rel(0, 2));
    }
  }
  trace::ProgramTrace program = make_program(std::move(traces));
  const SimulationResult r = simulate(machine(GetParam()), program);
  EXPECT_EQ(r.locks.acquisitions, 4u * 10u * 2u);
}

TEST_P(AllSchemes, WeakOrderingPreservesLockSemantics) {
  trace::ProgramTrace program = random_lock_workload(6, 20, 2, 0x77);
  const SimulationResult r = simulate(
      machine(GetParam(), bus::ConsistencyModel::kWeak), program);
  EXPECT_EQ(r.locks.acquisitions, 6u * 20u);
  EXPECT_EQ(r.locks.hold_cycles.count(), r.locks.acquisitions);
}

TEST_P(AllSchemes, RuntimeDeterministic) {
  trace::ProgramTrace p1 = random_lock_workload(5, 15, 2, 0x55);
  trace::ProgramTrace p2 = random_lock_workload(5, 15, 2, 0x55);
  const SimulationResult a = simulate(machine(GetParam()), p1);
  const SimulationResult b = simulate(machine(GetParam()), p2);
  EXPECT_EQ(a.run_time, b.run_time);
  EXPECT_EQ(a.locks.transfers, b.locks.transfers);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemes, ::testing::ValuesIn(sync::all_scheme_kinds()),
    [](const ::testing::TestParamInfo<sync::SchemeKind>& info) {
      std::string name = sync::scheme_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SchemeFactory, NamesRoundTrip) {
  for (const auto kind : sync::all_scheme_kinds()) {
    EXPECT_EQ(sync::scheme_kind_from_name(sync::scheme_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)sync::scheme_kind_from_name("bogus"), std::invalid_argument);
}

TEST(SchemeComparison, RelativeTransferCostOrdering) {
  // Queuing < ticket <= ttas on hand-off latency under heavy contention.
  auto run = [](sync::SchemeKind kind) {
    trace::ProgramTrace program = random_lock_workload(10, 25, 1, 0x99);
    return simulate(machine(kind), program);
  };
  const SimulationResult q = run(sync::SchemeKind::kQueuing);
  const SimulationResult tk = run(sync::SchemeKind::kTicket);
  const SimulationResult tt = run(sync::SchemeKind::kTtas);
  EXPECT_LT(q.locks.transfer_cycles.mean(), tk.locks.transfer_cycles.mean());
  EXPECT_LE(tk.locks.transfer_cycles.mean(),
            tt.locks.transfer_cycles.mean() + 1.0);
}

}  // namespace
}  // namespace syncpat::core

// Invariant-checker suite: every shipped lock scheme, under both memory
// models, runs a contended workload with the checker enabled and must show
// zero violations — then two deliberately-broken in-test schemes prove the
// checker actually fires (mutual exclusion, FIFO hand-off).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/invariant_checker.hpp"
#include "core/simulator.hpp"
#include "sync/scheme.hpp"
#include "test_util.hpp"
#include "workload/profiles.hpp"

namespace syncpat {
namespace {

using testutil::lock_acq;
using testutil::lock_rel;
using testutil::store;

// --------------------------------------------------------------------------
// Shipped schemes are clean.

struct SchemeModelCase {
  sync::SchemeKind scheme;
  bus::ConsistencyModel model;
};

std::vector<SchemeModelCase> all_cases() {
  std::vector<SchemeModelCase> cases;
  for (const sync::SchemeKind kind : sync::all_scheme_kinds()) {
    cases.push_back({kind, bus::ConsistencyModel::kSequential});
    cases.push_back({kind, bus::ConsistencyModel::kWeak});
  }
  return cases;
}

TEST(Invariants, AllSchemesAndModelsRunClean) {
  for (const SchemeModelCase& c : all_cases()) {
    core::MachineConfig config;
    config.lock_scheme = c.scheme;
    config.consistency = c.model;
    config.invariants.enabled = true;
    // A small cache keeps the periodic full MESI sweep cheap and forces
    // evictions/refills, exercising more coherence paths, not fewer.
    config.cache.size_bytes = 16 * 1024;

    const core::ExperimentOutcome outcome =
        core::run_experiment(config, workload::grav_profile(), 64);
    const core::InvariantReport& report = outcome.invariants;
    ASSERT_TRUE(report.enabled);
    EXPECT_GT(report.checks, 0u);
    EXPECT_EQ(report.violations, 0u)
        << "scheme=" << sync::scheme_kind_name(c.scheme)
        << " model=" << bus::consistency_name(c.model) << " first violation: "
        << (report.samples.empty() ? "<none recorded>" : report.samples[0]);
  }
}

// --------------------------------------------------------------------------
// Broken schemes are caught.

/// Grants every acquire as soon as its bus access completes, ignoring the
/// lock state entirely — concurrent critical sections on a contended lock.
class NoMutexScheme final : public sync::LockScheme {
 public:
  explicit NoMutexScheme(sync::SchemeServices& services)
      : services_(services) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override {
    services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                             /*forced=*/true, bus::StallCause::kCacheMiss,
                             /*stalls=*/true, sync::kStepAcquire);
  }
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override {
    services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                             /*forced=*/true, bus::StallCause::kCacheMiss,
                             /*stalls=*/true, sync::kStepRelease);
  }
  void on_txn_complete(std::uint32_t proc, std::uint32_t /*line_addr*/,
                       std::uint8_t step) override {
    if (step == sync::kStepAcquire) {
      services_.proc_acquired(proc);
    } else {
      services_.proc_release_done(proc);
    }
  }
  void on_spin_invalidated(std::uint32_t, std::uint32_t) override {}
  [[nodiscard]] const char* name() const override { return "no-mutex"; }
  [[nodiscard]] bool held_by_other(std::uint32_t, std::uint32_t) const override {
    return false;
  }

 private:
  sync::SchemeServices& services_;
};

TEST(Invariants, CheckerCatchesMutualExclusionViolation) {
  // Long critical sections on one lock from three processors: with every
  // acquire granted immediately, the sections overlap.
  const std::uint32_t data = testutil::shared_line(1);
  trace::ProgramTrace program = testutil::make_program({
      {lock_acq(0, 1), store(data, 200), lock_rel(0, 1)},
      {lock_acq(0, 5), store(data, 200), lock_rel(0, 1)},
      {lock_acq(0, 9), store(data, 200), lock_rel(0, 1)},
  });

  core::MachineConfig config = testutil::machine(sync::SchemeKind::kTtas);
  config.invariants.enabled = true;
  config.num_procs = 3;
  core::Simulator sim(config, program);
  sim.set_scheme_for_test(std::make_unique<NoMutexScheme>(sim));
  while (!sim.all_done()) sim.step();

  const core::InvariantChecker* checker = sim.invariant_checker();
  ASSERT_NE(checker, nullptr);
  EXPECT_GT(checker->violation_count(), 0u);
  ASSERT_FALSE(checker->violations().empty());
  EXPECT_NE(checker->violations()[0].find("mutual exclusion"),
            std::string::npos)
      << checker->violations()[0];
}

/// A mutually-exclusive lock that grants waiters in LIFO order — legal for a
/// TAS-style lock, but a FIFO violation for the schemes that promise
/// bus-order hand-off.
class LifoScheme final : public sync::LockScheme {
 public:
  explicit LifoScheme(sync::SchemeServices& services) : services_(services) {}

  void begin_acquire(std::uint32_t proc, std::uint32_t lock_line) override {
    services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                             /*forced=*/true, bus::StallCause::kCacheMiss,
                             /*stalls=*/true, sync::kStepAcquire);
  }
  void begin_release(std::uint32_t proc, std::uint32_t lock_line) override {
    services_.issue_lock_txn(proc, lock_line, bus::TxnKind::kReadX,
                             /*forced=*/true, bus::StallCause::kCacheMiss,
                             /*stalls=*/true, sync::kStepRelease);
  }
  void on_txn_complete(std::uint32_t proc, std::uint32_t /*line_addr*/,
                       std::uint8_t step) override {
    if (step == sync::kStepAcquire) {
      if (held_) {
        waiters_.push_back(proc);
        services_.proc_wait(proc, /*spinning=*/false, 0);
      } else {
        held_ = true;
        owner_ = proc;
        services_.proc_acquired(proc);
      }
      return;
    }
    // Release: hand to the most recent waiter (LIFO), if any.
    services_.proc_release_done(proc);
    if (waiters_.empty()) {
      held_ = false;
    } else {
      owner_ = waiters_.back();
      waiters_.pop_back();
      services_.proc_acquired(owner_);
    }
  }
  void on_spin_invalidated(std::uint32_t, std::uint32_t) override {}
  [[nodiscard]] const char* name() const override { return "lifo"; }
  [[nodiscard]] bool held_by_other(std::uint32_t proc,
                                   std::uint32_t) const override {
    return held_ && owner_ != proc;
  }

 private:
  sync::SchemeServices& services_;
  bool held_ = false;
  std::uint32_t owner_ = 0;
  std::vector<std::uint32_t> waiters_;
};

TEST(Invariants, CheckerCatchesFifoHandoffViolation) {
  // Proc 0 holds the lock long enough for procs 1 and 2 to queue in that
  // order; the LIFO scheme then grants proc 2 first.  The machine config
  // claims the queuing scheme, so the checker enforces FIFO hand-off.
  const std::uint32_t data = testutil::shared_line(1);
  trace::ProgramTrace program = testutil::make_program({
      {lock_acq(0, 1), store(data, 400), lock_rel(0, 1)},
      {lock_acq(0, 30), store(data, 10), lock_rel(0, 1)},
      {lock_acq(0, 90), store(data, 10), lock_rel(0, 1)},
  });

  core::MachineConfig config = testutil::machine(sync::SchemeKind::kQueuing);
  config.invariants.enabled = true;
  config.num_procs = 3;
  core::Simulator sim(config, program);
  sim.set_scheme_for_test(std::make_unique<LifoScheme>(sim));
  while (!sim.all_done()) sim.step();

  const core::InvariantChecker* checker = sim.invariant_checker();
  ASSERT_NE(checker, nullptr);
  EXPECT_GT(checker->violation_count(), 0u);
  bool found_fifo = false;
  for (const std::string& v : checker->violations()) {
    if (v.find("FIFO") != std::string::npos) found_fifo = true;
  }
  EXPECT_TRUE(found_fifo) << "no FIFO violation among "
                          << checker->violations().size() << " recorded";
}

// The checker is off by default and costs nothing.
TEST(Invariants, DisabledByDefault) {
  const core::ExperimentOutcome outcome = core::run_experiment(
      core::MachineConfig{}, workload::qsort_profile(), 256);
  EXPECT_FALSE(outcome.invariants.enabled);
  EXPECT_EQ(outcome.invariants.checks, 0u);
}

}  // namespace
}  // namespace syncpat

// Golden-results regression test: Table 3/5 headline numbers (all six paper
// benchmarks under the queuing and test-and-test&set locks, plus the
// list-based MCS and CLH queue locks) at a fixed scale, snapshotted as JSON
// in tests/golden/.  Any drift in simulated
// cycle counts, lock statistics, or bus traffic fails the test.
//
// To update the snapshot after an intentional behavior change, run with
// SYNCPAT_UPDATE_GOLDEN=1 and --gtest_filter='GoldenResults.*', then review
// the diff and commit it (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment_engine.hpp"
#include "workload/profiles.hpp"

namespace syncpat {
namespace {

constexpr std::uint64_t kGoldenScale = 64;

std::string golden_path() {
  return std::string(SYNCPAT_GOLDEN_DIR) + "/table3_5_scale64.json";
}

/// Integer metrics only: the simulation is fully integer-deterministic, so
/// exact string equality is the right comparison.
std::string render_snapshot(const core::GridResult& grid) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"scale\": " << kGoldenScale << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::SimulationResult& sim = grid.results[i].outcome.sim;
    out << "    {\"label\": \"" << grid.cells[i].label() << "\", "
        << "\"run_time\": " << sim.run_time << ", "
        << "\"acquisitions\": " << sim.locks.acquisitions << ", "
        << "\"transfers\": " << sim.locks.transfers << ", "
        << "\"bus_txns\": " << sim.traffic.total() << ", "
        << "\"barriers\": " << sim.barriers_completed << "}"
        << (i + 1 < grid.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

// Parameterized over the execution engine: the same committed snapshot must
// hold for the discrete-event core and the legacy tick loop — one golden
// file, two engines, any divergence is a correctness bug in one of them.
class GoldenResults : public ::testing::TestWithParam<core::EngineKind> {};

INSTANTIATE_TEST_SUITE_P(Engines, GoldenResults,
                         ::testing::Values(core::EngineKind::kDes,
                                           core::EngineKind::kTick),
                         [](const auto& info) {
                           return std::string(core::engine_name(info.param));
                         });

TEST_P(GoldenResults, Table3And5HeadlineNumbers) {
  core::ExperimentGrid grid;
  grid.base.engine = GetParam();
  grid.profiles = workload::paper_profiles();
  grid.schemes = {sync::SchemeKind::kQueuing, sync::SchemeKind::kTtas,
                  sync::SchemeKind::kMcs, sync::SchemeKind::kClh};
  grid.scales = {kGoldenScale};

  const core::GridResult result = core::run_grid(grid);
  for (std::size_t i = 0; i < result.size(); ++i) {
    ASSERT_TRUE(result.results[i].ok())
        << result.cells[i].label() << ": " << result.results[i].error;
  }
  const std::string actual = render_snapshot(result);

  if (std::getenv("SYNCPAT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << actual;
    GTEST_SKIP() << "golden snapshot regenerated at " << golden_path()
                 << "; review and commit the diff";
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good())
      << "missing golden snapshot " << golden_path()
      << " — regenerate with SYNCPAT_UPDATE_GOLDEN=1 (see EXPERIMENTS.md)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "simulated results drifted from the committed snapshot; if the "
         "change is intentional, regenerate with SYNCPAT_UPDATE_GOLDEN=1 "
         "(see EXPERIMENTS.md)";
}

}  // namespace
}  // namespace syncpat

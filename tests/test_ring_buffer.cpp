#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace syncpat::util {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(4);
  rb.push_back(1);
  rb.push_back(2);
  rb.push_back(3);
  EXPECT_EQ(rb.pop_front(), 1);
  EXPECT_EQ(rb.pop_front(), 2);
  EXPECT_EQ(rb.pop_front(), 3);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, FullAtCapacity) {
  RingBuffer<int> rb(2);
  rb.push_back(1);
  EXPECT_FALSE(rb.full());
  rb.push_back(2);
  EXPECT_TRUE(rb.full());
}

TEST(RingBuffer, PushFrontBypassesQueue) {
  RingBuffer<int> rb(4);
  rb.push_back(1);
  rb.push_back(2);
  rb.push_front(99);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.pop_front(), 99);
  EXPECT_EQ(rb.pop_front(), 1);
  EXPECT_EQ(rb.pop_front(), 2);
}

TEST(RingBuffer, PushFrontIntoEmpty) {
  RingBuffer<int> rb(2);
  rb.push_front(7);
  EXPECT_EQ(rb.front(), 7);
  EXPECT_EQ(rb.pop_front(), 7);
}

TEST(RingBuffer, WrapAroundPreservesOrder) {
  RingBuffer<int> rb(3);
  for (int round = 0; round < 10; ++round) {
    rb.push_back(round * 2);
    rb.push_back(round * 2 + 1);
    EXPECT_EQ(rb.pop_front(), round * 2);
    EXPECT_EQ(rb.pop_front(), round * 2 + 1);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, AtIndexesFromHead) {
  RingBuffer<int> rb(4);
  rb.push_back(10);
  rb.push_back(20);
  rb.push_back(30);
  rb.pop_front();
  rb.push_back(40);  // forces wrap with capacity 4 eventually
  EXPECT_EQ(rb.at(0), 20);
  EXPECT_EQ(rb.at(1), 30);
  EXPECT_EQ(rb.at(2), 40);
}

TEST(RingBuffer, RemoveAtMiddlePreservesOrder) {
  RingBuffer<int> rb(4);
  rb.push_back(1);
  rb.push_back(2);
  rb.push_back(3);
  rb.push_back(4);
  EXPECT_EQ(rb.remove_at(1), 2);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.pop_front(), 1);
  EXPECT_EQ(rb.pop_front(), 3);
  EXPECT_EQ(rb.pop_front(), 4);
}

TEST(RingBuffer, RemoveAtHeadAndTail) {
  RingBuffer<int> rb(3);
  rb.push_back(1);
  rb.push_back(2);
  rb.push_back(3);
  EXPECT_EQ(rb.remove_at(0), 1);
  EXPECT_EQ(rb.remove_at(1), 3);
  EXPECT_EQ(rb.pop_front(), 2);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push_back(1);
  rb.push_back(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push_back(3);
  EXPECT_EQ(rb.front(), 3);
}

TEST(RingBuffer, CapacityOneWorks) {
  RingBuffer<std::string> rb(1);
  rb.push_back("x");
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop_front(), "x");
  rb.push_front("y");
  EXPECT_EQ(rb.pop_front(), "y");
}

TEST(RingBuffer, MoveOnlyFriendly) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push_back(std::make_unique<int>(5));
  auto p = rb.pop_front();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace syncpat::util

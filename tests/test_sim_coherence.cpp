// Illinois-protocol behaviour through the full machine.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "test_util.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;
using cache::LineState;

// Helper: build and step a simulator until all processors finish.
struct Harness {
  explicit Harness(std::vector<std::vector<trace::Event>> traces)
      : program(make_program(std::move(traces))) {
    config = machine();
    config.num_procs = static_cast<std::uint32_t>(program.num_procs());
    sim = std::make_unique<Simulator>(config, program);
  }
  void run() {
    while (!sim->all_done()) sim->step();
  }
  trace::ProgramTrace program;
  MachineConfig config;
  std::unique_ptr<Simulator> sim;
};

TEST(SimCoherence, SoleReaderInstallsExclusive) {
  Harness h({{load(shared_line(0), 1)}});
  h.run();
  EXPECT_EQ(h.sim->cache_of(0).state(shared_line(0)), LineState::kExclusive);
}

TEST(SimCoherence, SecondReaderMakesBothShared) {
  Harness h({
      {load(shared_line(0), 1)},
      {load(shared_line(0), 30)},
  });
  h.run();
  EXPECT_EQ(h.sim->cache_of(0).state(shared_line(0)), LineState::kShared);
  EXPECT_EQ(h.sim->cache_of(1).state(shared_line(0)), LineState::kShared);
}

TEST(SimCoherence, WriterInvalidatesReaders) {
  Harness h({
      {load(shared_line(0), 1)},
      {store(shared_line(0), 30)},
  });
  h.run();
  EXPECT_EQ(h.sim->cache_of(0).state(shared_line(0)), LineState::kInvalid);
  EXPECT_EQ(h.sim->cache_of(1).state(shared_line(0)), LineState::kModified);
}

TEST(SimCoherence, DirtySupplierDowngradesToShared) {
  Harness h({
      {store(shared_line(0), 1)},
      {load(shared_line(0), 30)},
  });
  h.run();
  EXPECT_EQ(h.sim->cache_of(0).state(shared_line(0)), LineState::kShared);
  EXPECT_EQ(h.sim->cache_of(1).state(shared_line(0)), LineState::kShared);
  // The requester was supplied cache-to-cache.
  EXPECT_GE(h.sim->cache_of(0).stats().supplies, 1u);
}

TEST(SimCoherence, WriteMissInvalidatesDirtyOwner) {
  Harness h({
      {store(shared_line(0), 1)},
      {store(shared_line(0), 30)},
  });
  h.run();
  EXPECT_EQ(h.sim->cache_of(0).state(shared_line(0)), LineState::kInvalid);
  EXPECT_EQ(h.sim->cache_of(1).state(shared_line(0)), LineState::kModified);
}

TEST(SimCoherence, PingPongGeneratesInvalidations) {
  std::vector<trace::Event> w0, w1;
  for (int i = 0; i < 20; ++i) {
    w0.push_back(store(shared_line(0), 10));
    w1.push_back(store(shared_line(0), 10));
  }
  Harness h({w0, w1});
  h.run();
  EXPECT_GE(h.sim->cache_of(0).stats().invalidations_received, 5u);
  EXPECT_GE(h.sim->cache_of(1).stats().invalidations_received, 5u);
}

TEST(SimCoherence, ReadSharingCausesNoTrafficAfterFill) {
  // Both read the same line repeatedly: after the two fills the bus is idle.
  std::vector<trace::Event> reads;
  for (int i = 0; i < 50; ++i) reads.push_back(load(shared_line(0), 2));
  Harness h({reads, reads});
  h.run();
  // Two fills (one from memory, one cache-to-cache): at most ~9 busy cycles.
  EXPECT_LE(h.sim->bus().busy_cycles(), 12u);
}

TEST(SimCoherence, FalseSharingPingPongsOneLine) {
  // Two processors write different words of the same 16-byte line.
  std::vector<trace::Event> w0, w1;
  for (int i = 0; i < 10; ++i) {
    w0.push_back(store(shared_line(0) + 0, 8));
    w1.push_back(store(shared_line(0) + 8, 8));
  }
  Harness h({w0, w1});
  h.run();
  EXPECT_GE(h.sim->cache_of(0).stats().invalidations_received +
                h.sim->cache_of(1).stats().invalidations_received,
            8u);
}

TEST(SimCoherence, WriteHitRatioReflectsSharing) {
  std::vector<trace::Event> solo;
  for (int i = 0; i < 50; ++i) solo.push_back(store(shared_line(0), 2));
  Harness h({solo});
  h.run();
  // One write miss then 49 hits.
  const SimulationResult r = h.sim->collect_results();
  EXPECT_NEAR(r.write_hit_ratio, 49.0 / 50.0, 1e-9);
}

TEST(SimCoherence, ThreeWaySharingSettlesShared) {
  Harness h({
      {load(shared_line(0), 1)},
      {load(shared_line(0), 25)},
      {load(shared_line(0), 50)},
  });
  h.run();
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_EQ(h.sim->cache_of(p).state(shared_line(0)), LineState::kShared)
        << "proc " << p;
  }
}

}  // namespace
}  // namespace syncpat::core

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

namespace syncpat::util {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(9);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(23);
  const double p = 0.25;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.15);
}

TEST(Rng, GeometricProbabilityOneIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(31);
  const double mean = 120.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.exponential_cycles(mean));
  }
  EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST(Rng, ExponentialZeroMean) {
  Rng rng(37);
  EXPECT_EQ(rng.exponential_cycles(0.0), 0u);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(41);
  const std::array<double, 3> weights = {1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.weighted_pick(weights)];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, WeightedPickSingleElement) {
  Rng rng(43);
  const std::array<double, 1> weights = {5.0};
  EXPECT_EQ(rng.weighted_pick(weights), 0u);
}

// weighted_pick input validation: a NaN weight slips past every comparison in
// the subtraction scan (NaN compares false), and a negative weight can push
// the scan index out of range — both must abort via SYNCPAT_ASSERT, never
// silently bias the pick.
using RngDeath = ::testing::Test;

TEST(RngDeath, WeightedPickRejectsNaNWeight) {
  Rng rng(47);
  const std::array<double, 3> weights = {1.0, std::nan(""), 2.0};
  EXPECT_DEATH((void)rng.weighted_pick(weights), "finite");
}

TEST(RngDeath, WeightedPickRejectsNegativeWeight) {
  Rng rng(53);
  const std::array<double, 2> weights = {1.0, -0.5};
  EXPECT_DEATH((void)rng.weighted_pick(weights), "finite");
}

TEST(RngDeath, WeightedPickRejectsInfiniteWeight) {
  Rng rng(59);
  const std::array<double, 2> weights = {
      1.0, std::numeric_limits<double>::infinity()};
  EXPECT_DEATH((void)rng.weighted_pick(weights), "finite");
}

TEST(RngDeath, WeightedPickRejectsAllZeroWeights) {
  Rng rng(61);
  const std::array<double, 3> weights = {0.0, 0.0, 0.0};
  EXPECT_DEATH((void)rng.weighted_pick(weights), "positive");
}

// Property sweep: uniformity of below() over several seeds and bounds.
class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, BelowIsRoughlyUniform) {
  Rng rng(GetParam());
  constexpr std::uint64_t kBound = 8;
  std::array<int, kBound> counts{};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(counts[b] / static_cast<double>(kDraws), 1.0 / kBound, 0.01)
        << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity,
                         ::testing::Values(1, 2, 42, 0xdeadbeef, 99999));

}  // namespace
}  // namespace syncpat::util

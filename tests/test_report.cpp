#include <gtest/gtest.h>

#include "report/paper_tables.hpp"
#include "report/per_lock.hpp"
#include "report/table.hpp"
#include "trace/address_map.hpp"

namespace syncpat::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t("Title");
  t.columns({"Name", "Value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "12345"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NotesAppended) {
  Table t("T");
  t.columns({"A"}).add_row({"x"}).note("a footnote");
  EXPECT_NE(t.render().find("a footnote"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  Table t("T");
  t.columns({"A", "B"});
  t.add_row({"1,000", "2"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"1,000\",2"), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t("T");
  t.columns({"A", "B"}).add_row({"1", "2"}).add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "A,B\n1,2\n3,4\n");
}

TEST(PaperReference, AllSixBenchmarksPresent) {
  const auto& refs = paper_reference();
  ASSERT_EQ(refs.size(), 6u);
  EXPECT_STREQ(refs[0].name, "Grav");
  EXPECT_STREQ(refs[5].name, "Topopt");
  EXPECT_FALSE(refs[5].has_locks);
  for (std::size_t i = 0; i + 1 < 5; ++i) EXPECT_TRUE(refs[i].has_locks);
}

TEST(PaperReference, Table3ValuesTranscribed) {
  const auto& refs = paper_reference();
  EXPECT_DOUBLE_EQ(refs[0].q_runtime, 9228727.0);
  EXPECT_DOUBLE_EQ(refs[0].q_util, 32.6);
  EXPECT_DOUBLE_EQ(refs[3].q_held, 3766.0);
  EXPECT_DOUBLE_EQ(refs[1].t_waiters, 6.21);
  EXPECT_DOUBLE_EQ(refs[2].w_diff, 0.31);
}

TEST(PaperTables, RuntimeTableHasRowPerResult) {
  core::SimulationResult r;
  r.program = "Grav";
  r.run_time = 100;
  r.avg_utilization = 0.5;
  Table t = table_runtime(3, {r}, 1);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(PaperTables, ContentionTableSkipsLocklessPrograms) {
  core::SimulationResult grav, topopt;
  grav.program = "Grav";
  topopt.program = "Topopt";
  Table t = table_contention(4, {grav, topopt}, 1);
  EXPECT_EQ(t.num_rows(), 1u);  // Topopt has no lock row
}

TEST(PerLockTable, SortsByAcquisitionsAndCaps) {
  sync::LockStatsCollector stats;
  const std::uint32_t hot = trace::AddressMap::lock_addr(0);
  const std::uint32_t cold = trace::AddressMap::lock_addr(5);
  for (int i = 0; i < 10; ++i) {
    stats.acquired(hot, 0, static_cast<std::uint64_t>(i * 100), 0);
    stats.released(hot, static_cast<std::uint64_t>(i * 100 + 40), false, 0);
  }
  stats.acquired(cold, 1, 0, 0);
  stats.released(cold, 20, false, 0);

  Table t = per_lock_table(stats, 1);
  const std::string s = t.render();
  EXPECT_NE(s.find("lock 0"), std::string::npos);   // hot lock shown
  EXPECT_EQ(s.find("lock 5"), std::string::npos);   // cold lock capped away
  EXPECT_NE(s.find("1 more locks omitted"), std::string::npos);
}

TEST(PerLockTable, EmptyCollectorRendersEmptyTable) {
  sync::LockStatsCollector stats;
  Table t = per_lock_table(stats);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(PaperTables, WeakTableComputesDifference) {
  core::SimulationResult sc, wo;
  sc.program = wo.program = "Qsort";
  sc.run_time = 1000;
  wo.run_time = 990;
  Table t = table7_weak({wo}, {sc}, 1);
  EXPECT_NE(t.render().find("1.00"), std::string::npos);  // 1% improvement
}

}  // namespace
}  // namespace syncpat::report

// Test-and-test-and-set behaviour through the real coherence protocol.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "test_util.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

trace::ProgramTrace contended(std::uint32_t procs, int rounds,
                              std::uint32_t cs_gap) {
  std::vector<std::vector<trace::Event>> traces(procs);
  for (std::uint32_t p = 0; p < procs; ++p) {
    for (int r = 0; r < rounds; ++r) {
      traces[p].push_back(lock_acq(0, 4));
      traces[p].push_back(load(shared_line(1), cs_gap));
      traces[p].push_back(lock_rel(0, 2));
    }
  }
  return make_program(std::move(traces));
}

TEST(TtasLock, UncontendedCompletes) {
  trace::ProgramTrace program = make_program({{
      lock_acq(0, 1),
      load(shared_line(1), 5),
      lock_rel(0, 1),
  }});
  const SimulationResult r = simulate(machine(sync::SchemeKind::kTtas), program);
  EXPECT_EQ(r.locks.acquisitions, 1u);
  EXPECT_EQ(r.locks.transfers, 0u);
}

TEST(TtasLock, RepeatedUncontendedReacquireIsCheap) {
  // The lock line stays in the owner's cache: re-acquires cost ~an upgrade.
  std::vector<trace::Event> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(lock_acq(0, 2));
    events.push_back(lock_rel(0, 2));
  }
  trace::ProgramTrace program = make_program({events});
  const SimulationResult r = simulate(machine(sync::SchemeKind::kTtas), program);
  // First round pays the cold misses; the rest are nearly free.
  EXPECT_LT(r.per_proc[0].stall_cache + r.per_proc[0].stall_lock, 40u);
}

TEST(TtasLock, MutualExclusionUnderContention) {
  trace::ProgramTrace program = contended(6, 20, 10);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kTtas), program);
  EXPECT_EQ(r.locks.acquisitions, 6u * 20u);
  EXPECT_GT(r.locks.transfers, 60u);
}

TEST(TtasLock, TransferLatencyGrowsToTensOfCycles) {
  trace::ProgramTrace program = contended(10, 25, 30);
  const SimulationResult r = simulate(machine(sync::SchemeKind::kTtas), program);
  // The paper reports 21-25 cycles with many waiters.
  EXPECT_GE(r.locks.transfer_cycles.mean(), 12.0);
  EXPECT_LE(r.locks.transfer_cycles.mean(), 35.0);
}

TEST(TtasLock, SpinnersAreQuietWhileLockHeld) {
  // A very long critical section: spinners hold Shared copies and generate
  // no traffic until the release.
  std::vector<std::vector<trace::Event>> traces(6);
  traces[0] = {lock_acq(0, 1), load(shared_line(1), 3000), lock_rel(0, 1)};
  for (std::uint32_t p = 1; p < 6; ++p) {
    traces[p] = {lock_acq(0, 20), lock_rel(0, 1)};
  }
  trace::ProgramTrace program = make_program(std::move(traces));
  MachineConfig config = machine(sync::SchemeKind::kTtas);
  config.num_procs = 6;
  Simulator sim(config, program);
  const SimulationResult r = sim.run();
  // ~3000 cycles of spinning with in-cache reads: bus mostly idle.
  EXPECT_LT(sim.bus().utilization(), 0.15);
  EXPECT_EQ(r.locks.acquisitions, 6u);  // each processor acquires once
}

TEST(TtasLock, BurstTrafficOnRelease) {
  // Compare bus busy cycles: queuing vs T&T&S on the identical workload.
  trace::ProgramTrace p1 = contended(10, 20, 30);
  trace::ProgramTrace p2 = contended(10, 20, 30);
  MachineConfig cq = machine(sync::SchemeKind::kQueuing);
  cq.num_procs = 10;
  Simulator sq(cq, p1);
  sq.run();
  MachineConfig ct = machine(sync::SchemeKind::kTtas);
  ct.num_procs = 10;
  Simulator st(ct, p2);
  st.run();
  EXPECT_GT(st.bus().busy_cycles(), sq.bus().busy_cycles() * 3 / 2);
}

TEST(TtasLock, SlowerThanQueuingUnderContention) {
  trace::ProgramTrace p1 = contended(10, 30, 20);
  trace::ProgramTrace p2 = contended(10, 30, 20);
  const SimulationResult q = simulate(machine(sync::SchemeKind::kQueuing), p1);
  const SimulationResult t = simulate(machine(sync::SchemeKind::kTtas), p2);
  EXPECT_GT(t.run_time, q.run_time);
}

TEST(TtasLock, NoWaiterMeansSilentOrCheapRelease) {
  trace::ProgramTrace program = make_program({{
      lock_acq(0, 1),
      lock_rel(0, 10),
      ifetch(0x100, 10),
  }});
  const SimulationResult r = simulate(machine(sync::SchemeKind::kTtas), program);
  EXPECT_EQ(r.locks.transfers, 0u);
  // Acquire: read miss (6) + TAS upgrade-ish; release: silent store.
  EXPECT_LE(r.per_proc[0].total_stalls(), 14u);
}

TEST(TtasLock, HoldTimesSlightlyAboveQueuing) {
  // Paper: transferring T&T&S locks are held five-six cycles longer.
  trace::ProgramTrace p1 = contended(8, 30, 40);
  trace::ProgramTrace p2 = contended(8, 30, 40);
  const SimulationResult q = simulate(machine(sync::SchemeKind::kQueuing), p1);
  const SimulationResult t = simulate(machine(sync::SchemeKind::kTtas), p2);
  EXPECT_GE(t.locks.hold_cycles_transfer.mean(),
            q.locks.hold_cycles_transfer.mean() - 2.0);
  EXPECT_LE(t.locks.hold_cycles_transfer.mean(),
            q.locks.hold_cycles_transfer.mean() + 40.0);
}

}  // namespace
}  // namespace syncpat::core

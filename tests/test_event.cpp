#include "trace/event.hpp"

#include <gtest/gtest.h>

namespace syncpat::trace {
namespace {

TEST(Event, OpPredicates) {
  EXPECT_TRUE(is_memory_ref(Op::kIFetch));
  EXPECT_TRUE(is_memory_ref(Op::kLoad));
  EXPECT_TRUE(is_memory_ref(Op::kStore));
  EXPECT_FALSE(is_memory_ref(Op::kLockAcq));
  EXPECT_FALSE(is_memory_ref(Op::kLockRel));

  EXPECT_FALSE(is_data_ref(Op::kIFetch));
  EXPECT_TRUE(is_data_ref(Op::kLoad));
  EXPECT_TRUE(is_data_ref(Op::kStore));

  EXPECT_TRUE(is_lock_op(Op::kLockAcq));
  EXPECT_TRUE(is_lock_op(Op::kLockRel));
  EXPECT_FALSE(is_lock_op(Op::kStore));
}

TEST(Event, OpNames) {
  EXPECT_STREQ(op_name(Op::kIFetch), "ifetch");
  EXPECT_STREQ(op_name(Op::kLoad), "load");
  EXPECT_STREQ(op_name(Op::kStore), "store");
  EXPECT_STREQ(op_name(Op::kLockAcq), "lock");
  EXPECT_STREQ(op_name(Op::kLockRel), "unlock");
}

TEST(Event, Equality) {
  const Event a{0x100, 2, Op::kLoad};
  const Event b{0x100, 2, Op::kLoad};
  const Event c{0x104, 2, Op::kLoad};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Event, ToStringContainsFields) {
  const Event e{0xdeadbeef, 3, Op::kStore};
  const std::string s = to_string(e);
  EXPECT_NE(s.find("+3"), std::string::npos);
  EXPECT_NE(s.find("store"), std::string::npos);
  EXPECT_NE(s.find("deadbeef"), std::string::npos);
}

}  // namespace
}  // namespace syncpat::trace

// Unit tests for the DES core's event queue: deterministic (cycle, id)
// ordering, cancel/reschedule as moves, heap + position-index invariants
// under randomized operation sequences, and the causality floor's death test
// (scheduling into the past must abort, not silently corrupt the timeline).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/event_queue.hpp"

namespace syncpat::core {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.floor(), 0u);
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_FALSE(q.contains(s));
  EXPECT_TRUE(q.validate());
}

TEST(EventQueue, PopsInCycleOrder) {
  EventQueue q(5);
  q.schedule(3, 50);
  q.schedule(0, 10);
  q.schedule(4, 30);
  q.schedule(1, 40);
  q.schedule(2, 20);
  ASSERT_TRUE(q.validate());

  std::vector<std::uint32_t> order;
  while (!q.empty()) order.push_back(q.pop_min());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 2, 4, 1, 3}));
}

// Ties pop in ascending source id — the tick loop's processor order — no
// matter in which order the tied entries were inserted.
TEST(EventQueue, TiesBreakBySourceIdNotInsertionOrder) {
  std::vector<std::uint32_t> insertion{4, 1, 3, 0, 2};
  do {
    EventQueue q(5);
    for (const std::uint32_t s : insertion) q.schedule(s, 7);
    std::vector<std::uint32_t> order;
    while (!q.empty()) {
      EXPECT_EQ(q.min_key(), 7u);
      EXPECT_EQ(q.min_source(), order.empty() ? 0u : order.back() + 1);
      order.push_back(q.pop_min());
    }
    EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  } while (std::next_permutation(insertion.begin(), insertion.end()));
}

TEST(EventQueue, TieBreakInterleavesWithDistinctKeys) {
  EventQueue q(6);
  q.schedule(5, 10);
  q.schedule(2, 10);
  q.schedule(4, 9);
  q.schedule(0, 11);
  q.schedule(3, 10);
  std::vector<std::uint32_t> order;
  while (!q.empty()) order.push_back(q.pop_min());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{4, 2, 3, 5, 0}));
}

TEST(EventQueue, RescheduleMovesTheSingleEntry) {
  EventQueue q(3);
  q.schedule(1, 100);
  q.schedule(1, 5);  // earlier: sifts up
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.key_of(1), 5u);

  q.schedule(0, 50);
  q.schedule(2, 60);
  q.schedule(1, 70);  // later: sifts down past both
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.key_of(1), 70u);
  ASSERT_TRUE(q.validate());
  EXPECT_EQ(q.pop_min(), 0u);
  EXPECT_EQ(q.pop_min(), 2u);
  EXPECT_EQ(q.pop_min(), 1u);
}

TEST(EventQueue, RescheduleToSameCycleIsANoOp) {
  EventQueue q(2);
  q.schedule(0, 10);
  q.schedule(0, 10);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.key_of(0), 10u);
  EXPECT_TRUE(q.validate());
}

TEST(EventQueue, CancelRemovesAndIsIdempotent) {
  EventQueue q(4);
  q.schedule(0, 10);
  q.schedule(1, 20);
  q.schedule(2, 30);
  q.cancel(1);
  EXPECT_FALSE(q.contains(1));
  EXPECT_EQ(q.size(), 2u);
  q.cancel(1);  // absent: no-op
  q.cancel(3);  // never present: no-op
  EXPECT_EQ(q.size(), 2u);
  ASSERT_TRUE(q.validate());
  EXPECT_EQ(q.pop_min(), 0u);
  EXPECT_EQ(q.pop_min(), 2u);

  // A cancelled source can come back at any (legal) cycle.
  q.schedule(1, 15);
  EXPECT_TRUE(q.contains(1));
  EXPECT_EQ(q.min_source(), 1u);
}

TEST(EventQueue, FloorIsMonotone) {
  EventQueue q(2);
  q.set_floor(10);
  EXPECT_EQ(q.floor(), 10u);
  q.set_floor(5);  // never lowers
  EXPECT_EQ(q.floor(), 10u);
  q.schedule(0, 10);  // exactly at the floor is legal
  EXPECT_EQ(q.min_key(), 10u);
}

// Randomized mixed workload: after every operation the heap property, the
// position index, and the membership count must all hold, and draining the
// queue yields the (cycle, id)-sorted remainder.
TEST(EventQueue, InvariantsHoldUnderRandomizedOperations) {
  constexpr std::uint32_t kSources = 23;
  std::mt19937 rng(0xC0FFEE);
  EventQueue q(kSources);
  std::uint64_t clock = 0;
  for (int op = 0; op < 5000; ++op) {
    const std::uint32_t source = rng() % kSources;
    switch (rng() % 4) {
      case 0:
      case 1:  // schedule twice as often as the rest
        q.schedule(source, clock + 1 + rng() % 1000);
        break;
      case 2:
        q.cancel(source);
        break;
      case 3:
        if (!q.empty() && rng() % 8 == 0) {
          clock = q.min_key();
          q.set_floor(clock);
          q.pop_min();
        }
        break;
    }
    ASSERT_TRUE(q.validate()) << "after op " << op;
  }

  std::uint64_t last_key = 0;
  std::uint32_t last_source = 0;
  bool first = true;
  while (!q.empty()) {
    const std::uint64_t key = q.min_key();
    const std::uint32_t source = q.pop_min();
    if (!first) {
      const bool ordered =
          key > last_key || (key == last_key && source > last_source);
      ASSERT_TRUE(ordered) << "(" << last_key << "," << last_source
                           << ") popped before (" << key << "," << source << ")";
    }
    first = false;
    last_key = key;
    last_source = source;
    ASSERT_TRUE(q.validate());
  }
}

// Scheduling below the causality floor is the classic DES bug that silently
// reorders history; it must die loudly instead.
TEST(EventQueueDeathTest, SchedulingIntoThePastDies) {
  EXPECT_DEATH(
      {
        EventQueue q(2);
        q.set_floor(100);
        q.schedule(0, 99);
      },
      "event scheduled into the past");
}

TEST(EventQueueDeathTest, RescheduleIntoThePastDies) {
  EXPECT_DEATH(
      {
        EventQueue q(2);
        q.schedule(0, 50);
        q.set_floor(100);
        q.schedule(0, 60);  // moving an existing entry below the floor
      },
      "event scheduled into the past");
}

}  // namespace
}  // namespace syncpat::core

// Large-P hardening and scaling-axis tests (PR 9).
//
// Three concerns share this file because they guard the same change:
//   * the pluggable bus service disciplines and the DSM memory cost model
//     must be byte-identical across both execution engines (the fuzz render
//     string pins every field, RunningStat moments included);
//   * every fixed-size or P-indexed structure that historically broke above
//     P = 64 (private-address segments, Anderson slot rings, the generator's
//     cold-region slicing, the event queue's source bitmap) is pinned at
//     large P;
//   * report rendering at 3-digit processor counts is pinned by a golden
//     snapshot at P = 128 (regenerate with SYNCPAT_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "bus/service_discipline.hpp"
#include "core/event_queue.hpp"
#include "core/machine_config.hpp"
#include "core/results.hpp"
#include "core/simulator.hpp"
#include "fuzz/fuzz_case.hpp"
#include "fuzz/render.hpp"
#include "obs/metrics.hpp"
#include "obs/stall_attribution.hpp"
#include "report/machine_profile.hpp"
#include "report/table.hpp"
#include "sync/anderson_lock.hpp"
#include "sync/lock_stats.hpp"
#include "sync/scheme.hpp"
#include "trace/address_map.hpp"
#include "trace/event.hpp"
#include "trace/source.hpp"
#include "util/format.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace syncpat {
namespace {

workload::BenchmarkProfile profile_by_name(const std::string& name) {
  for (const auto& p : workload::paper_profiles()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown profile " << name;
  return {};
}

std::string run_rendered(const workload::BenchmarkProfile& scaled,
                         core::MachineConfig cfg, core::EngineKind engine) {
  cfg.num_procs = scaled.num_procs;
  cfg.engine = engine;
  trace::ProgramTrace program = workload::make_program_trace(scaled);
  core::Simulator sim(cfg, program);
  return fuzz::render_result(sim.run());
}

class ScalingDifferential : public ::testing::Test {
 protected:
  // The config fields must control the axes under test; values inherited
  // from the calling environment would silently override every run.
  void SetUp() override {
    unsetenv("SYNCPAT_ENGINE");
    unsetenv("SYNCPAT_FAST_FORWARD");
    unsetenv("SYNCPAT_BUS_DISCIPLINE");
    unsetenv("SYNCPAT_MODEL");
  }
};

// ---------------------------------------------------------------------------
// Service disciplines x lock schemes x engines.
// ---------------------------------------------------------------------------

// Every scheme under every discipline, DES vs per-cycle tick.  The rendered
// string includes the discipline stats line, so a single grant awarded to a
// different port — or a grant-wait accounted differently between the
// engines — fails the comparison.
TEST_F(ScalingDifferential, SchemeByDisciplineMatrixByteIdenticalAcrossEngines) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(256);
  constexpr bus::DisciplineKind kDisciplines[] = {
      bus::DisciplineKind::kRoundRobin, bus::DisciplineKind::kFixedPriority,
      bus::DisciplineKind::kFcfs};
  for (const sync::SchemeKind scheme : sync::all_scheme_kinds()) {
    for (const bus::DisciplineKind discipline : kDisciplines) {
      core::MachineConfig cfg;
      cfg.lock_scheme = scheme;
      cfg.bus_discipline = discipline;
      const std::string label =
          std::string("scheme=") + sync::scheme_kind_name(scheme) +
          " discipline=" + bus::discipline_name(discipline);
      const std::string des =
          run_rendered(scaled, cfg, core::EngineKind::kDes);
      const std::string tick =
          run_rendered(scaled, cfg, core::EngineKind::kTick);
      EXPECT_EQ(des, tick) << "engines diverged: " << label;
      EXPECT_NE(des.find("discipline=" +
                         std::string(bus::discipline_name(discipline))),
                std::string::npos)
          << "result must carry the discipline stats: " << label;
    }
  }
}

// The disciplines must actually differ observably — if fixed-priority or
// FCFS rendered identically to round-robin on a contended workload, the
// matrix above would be vacuously green.
TEST_F(ScalingDifferential, DisciplinesProduceDistinctSchedules) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(256);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  std::set<std::string> rendered;
  for (const bus::DisciplineKind discipline :
       {bus::DisciplineKind::kRoundRobin, bus::DisciplineKind::kFixedPriority,
        bus::DisciplineKind::kFcfs}) {
    cfg.bus_discipline = discipline;
    rendered.insert(run_rendered(scaled, cfg, core::EngineKind::kDes));
  }
  EXPECT_EQ(rendered.size(), 3u)
      << "at least two service disciplines produced identical runs";
}

// Pure priority arbitration used to starve a plain test&set releaser: the
// spinners' forced ReadX retries always outranked a lower-priority holder's
// release write, and this fuzz-discovered case (seed 24245, case 3)
// livelocked past any cycle budget under fixed-priority.  The discipline's
// aging escape now bounds the inversion — the release write jumps the chain
// after kStarvationEscapeCycles — so the case must complete under all three
// disciplines with metrics conserved, while fixed-priority still pays a
// visibly worse grant wait than the fair disciplines (the skew the
// discipline exists to model).
TEST_F(ScalingDifferential, FixedPriorityCompletesPlainTasWithBoundedWaits) {
  const char* kCase =
      "syncpat-fuzz-case 1\n"
      "index 3\nmaster_seed 24245\nnum_procs 4\nline_bytes 32\n"
      "associativity 2\nsets_log2 6\nbus_bytes 16\nbuffer_depth 2\n"
      "mem_cycles 4\nmem_in_depth 3\nmem_out_depth 4\nconsistency weak\n"
      "write_policy write-back\nscheme tas\n"
      "workload_seed 7473890154644941879\nrefs_per_proc 2316\n"
      "data_ref_fraction 0x1.08p-1\nwork_cycles_per_ref 0x1.7fp+1\n"
      "private_fraction 0x1.32p-1\nwrite_fraction 0x1.4cp-2\n"
      "shared_rerefs 0x1.60ccccccccccdp-1\nshared_affinity 0x1.0ep-2\n"
      "cold_fraction 0x0p+0\nlock_pairs 52\nnested_pairs 11\n"
      "cs_work_cycles 0x1.57fcp+7\nnum_locks 5\ndominant_weight 0x1.e8p-1\n"
      "cs_region_bias 0x1.b8cccccccccccp-1\nshort_fraction 0x0p+0\n"
      "partitioned 0\nbarriers 0\nbus_discipline fixed-priority\n"
      "mem_model bus\ndsm_nodes 4\ndsm_remote_cycles 20\n";
  const fuzz::FuzzCase c = fuzz::FuzzCase::from_text(kCase);
  trace::ProgramTrace program = workload::make_program_trace(c.profile());

  core::MachineConfig fp = c.machine_config();
  fp.max_cycles = 2'000'000;  // pre-escape, this livelocked to any budget
  core::Simulator fp_sim(fp, program);
  const core::SimulationResult fp_r = fp_sim.run();
  EXPECT_GT(fp_r.locks.acquisitions, 0u);
  EXPECT_LT(fp_r.run_time, fp.max_cycles)
      << "aging escape must drain the starved release write";
  // The starvation is real (someone waited into the escape window), and the
  // escape bounds it: only the single oldest request is promoted per round,
  // so a request behind a chain of even-older starvers can wait a few
  // multiples of the bound — but never unboundedly (observed worst here is
  // ~2x the bound).
  EXPECT_GE(fp_r.discipline.max_grant_wait,
            bus::FixedPriorityDiscipline::kStarvationEscapeCycles);
  EXPECT_LT(fp_r.discipline.max_grant_wait,
            4 * bus::FixedPriorityDiscipline::kStarvationEscapeCycles);

  for (const bus::DisciplineKind fair :
       {bus::DisciplineKind::kRoundRobin, bus::DisciplineKind::kFcfs}) {
    core::MachineConfig cfg = c.machine_config();
    cfg.bus_discipline = fair;
    cfg.max_cycles = 2'000'000;
    core::Simulator sim(cfg, program);
    const core::SimulationResult r = sim.run();
    EXPECT_GT(r.locks.acquisitions, 0u)
        << bus::discipline_name(fair) << " should complete the workload";
    // Same program, same machine: the workload's lock behaviour is conserved
    // across disciplines even though the schedules differ.
    EXPECT_EQ(r.locks.acquisitions, fp_r.locks.acquisitions);
    // Fixed priority pays for the starvation it models: its worst grant wait
    // dwarfs the fair disciplines'.
    EXPECT_GT(fp_r.discipline.max_grant_wait,
              4 * r.discipline.max_grant_wait)
        << bus::discipline_name(fair);
  }
}

// ---------------------------------------------------------------------------
// DSM memory model.
// ---------------------------------------------------------------------------

TEST_F(ScalingDifferential, DsmModelByteIdenticalAcrossEngines) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(256);
  for (const std::uint32_t nodes : {2u, 4u}) {
    core::MachineConfig cfg;
    cfg.lock_scheme = sync::SchemeKind::kQueuing;
    cfg.model = core::MemModelKind::kDsm;
    cfg.dsm.nodes = nodes;
    cfg.dsm.remote_access_cycles = 17;
    const std::string des = run_rendered(scaled, cfg, core::EngineKind::kDes);
    const std::string tick = run_rendered(scaled, cfg, core::EngineKind::kTick);
    EXPECT_EQ(des, tick) << "engines diverged under dsm with " << nodes
                         << " nodes";
  }
}

// A single-node DSM machine has no remote accesses at all, so it must be
// byte-identical to the uniform bus model — the cost overlay is exactly the
// remote penalty and nothing else.
TEST_F(ScalingDifferential, SingleNodeDsmDegeneratesToBusModel) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(256);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  const std::string bus_model = run_rendered(scaled, cfg, core::EngineKind::kDes);
  cfg.model = core::MemModelKind::kDsm;
  cfg.dsm.nodes = 1;
  cfg.dsm.remote_access_cycles = 500;  // must never be charged
  const std::string dsm_model = run_rendered(scaled, cfg, core::EngineKind::kDes);
  EXPECT_EQ(bus_model, dsm_model);
}

// Multi-node DSM must charge remote-access stall cycles, attribute them to
// the dedicated category, and keep the attribution ledger exact (every
// processor cycle in exactly one category).
TEST_F(ScalingDifferential, DsmChargesAndConservesRemoteAccessStalls) {
  workload::BenchmarkProfile scaled = profile_by_name("Pverify").scaled(256);
  core::MachineConfig cfg;
  cfg.num_procs = scaled.num_procs;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  cfg.model = core::MemModelKind::kDsm;
  cfg.dsm.nodes = 2;
  cfg.dsm.remote_access_cycles = 25;
  cfg.metrics.enabled = true;
  trace::ProgramTrace program = workload::make_program_trace(scaled);
  core::Simulator sim(cfg, program);
  const core::SimulationResult r = sim.run();
  const obs::MetricsRegistry* m = sim.metrics();
  ASSERT_NE(m, nullptr);
  std::uint64_t remote = 0;
  for (std::uint32_t p = 0; p < m->num_procs(); ++p) {
    remote += m->proc(p).attr.of(obs::StallCat::kRemoteAccess);
    EXPECT_EQ(m->proc(p).attr.total(), r.per_proc[p].completion_cycle)
        << "attribution ledger must stay exact under dsm, proc " << p;
  }
  EXPECT_GT(remote, 0u) << "a 2-node machine must see remote accesses";
}

// ---------------------------------------------------------------------------
// Environment spellings: SYNCPAT_BUS_DISCIPLINE / SYNCPAT_MODEL.
// ---------------------------------------------------------------------------

TEST_F(ScalingDifferential, DisciplineAndModelEnvOverrideConfig) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Pverify").scaled(512);
  core::MachineConfig cfg;
  cfg.lock_scheme = sync::SchemeKind::kTtas;

  cfg.bus_discipline = bus::DisciplineKind::kFcfs;
  cfg.model = core::MemModelKind::kDsm;
  cfg.dsm.nodes = 2;
  const std::string direct = run_rendered(scaled, cfg, core::EngineKind::kDes);

  cfg.bus_discipline = bus::DisciplineKind::kRoundRobin;
  cfg.model = core::MemModelKind::kBus;
  setenv("SYNCPAT_BUS_DISCIPLINE", "fcfs", 1);
  setenv("SYNCPAT_MODEL", "dsm", 1);
  const std::string via_env = run_rendered(scaled, cfg, core::EngineKind::kDes);
  unsetenv("SYNCPAT_BUS_DISCIPLINE");
  unsetenv("SYNCPAT_MODEL");
  EXPECT_EQ(direct, via_env);
}

TEST_F(ScalingDifferential, MalformedDisciplineAndModelValuesAreRejected) {
  using bus::DisciplineKind;
  using core::MemModelKind;
  EXPECT_THROW((void)core::resolve_bus_discipline(DisciplineKind::kRoundRobin,
                                                  "priority"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)core::resolve_bus_discipline(DisciplineKind::kRoundRobin, ""),
      std::invalid_argument);
  EXPECT_THROW(
      (void)core::resolve_bus_discipline(DisciplineKind::kRoundRobin, "FCFS"),
      std::invalid_argument);
  EXPECT_THROW((void)core::resolve_mem_model(MemModelKind::kBus, "numa"),
               std::invalid_argument);
  EXPECT_THROW((void)core::resolve_mem_model(MemModelKind::kBus, ""),
               std::invalid_argument);
  EXPECT_THROW((void)core::resolve_mem_model(MemModelKind::kBus, "DSM"),
               std::invalid_argument);
  // Unset (nullptr) keeps the config value.
  EXPECT_EQ(core::resolve_bus_discipline(DisciplineKind::kFcfs, nullptr),
            DisciplineKind::kFcfs);
  EXPECT_EQ(core::resolve_mem_model(MemModelKind::kDsm, nullptr),
            MemModelKind::kDsm);
}

// ---------------------------------------------------------------------------
// Large-P pinning: the structures that broke (or silently aliased) above 64.
// ---------------------------------------------------------------------------

// Private addresses must round-trip owner identity for every processor up to
// the 4096 cap, and processors below 64 must keep their exact historical
// layout (16 MiB contiguous segments) so all committed goldens stand.
TEST(LargeP, PrivateAddressInterleaveRoundTrips) {
  using trace::AddressMap;
  for (const std::uint32_t proc :
       {0u, 1u, 63u, 64u, 65u, 127u, 128u, 1023u, 1024u, 4095u}) {
    const std::uint32_t sub_cap = AddressMap::kPrivateSubSegment;
    for (const std::uint32_t offset : {0u, 64u, sub_cap - 64u}) {
      const std::uint32_t addr = AddressMap::private_addr(proc, offset);
      EXPECT_EQ(AddressMap::classify(addr), trace::Region::kPrivate)
          << "proc " << proc << " offset " << offset;
      EXPECT_EQ(AddressMap::private_owner(addr), proc)
          << "proc " << proc << " offset " << offset;
    }
  }
  // Historical identity below 64.
  for (const std::uint32_t proc : {0u, 7u, 63u}) {
    EXPECT_EQ(AddressMap::private_addr(proc, 12345u),
              AddressMap::kPrivateBase + proc * AddressMap::kPrivateSegment +
                  12345u);
  }
  // Distinctness across the macro/sub seam: proc 64's slice must not collide
  // with proc 0's historical addresses at the same offset.
  EXPECT_NE(AddressMap::private_addr(64, 0), AddressMap::private_addr(0, 0));
  EXPECT_EQ(AddressMap::private_addr(64, 0),
            AddressMap::kPrivateBase + AddressMap::kPrivateSubSegment);
}

// Minimal SchemeServices: the Anderson address-layout tests only consult
// num_procs().
class StubServices final : public sync::SchemeServices {
 public:
  explicit StubServices(std::uint32_t procs) : procs_(procs) {}
  [[nodiscard]] std::uint64_t now() const override { return 0; }
  [[nodiscard]] std::uint32_t num_procs() const override { return procs_; }
  void issue_lock_txn(std::uint32_t, std::uint32_t, bus::TxnKind, bool,
                      bus::StallCause, bool, std::uint8_t) override {}
  void issue_handoff(std::uint32_t, std::uint32_t) override {}
  [[nodiscard]] cache::LineState line_state(std::uint32_t,
                                            std::uint32_t) const override {
    return cache::LineState::kInvalid;
  }
  void proc_wait(std::uint32_t, bool, std::uint32_t) override {}
  void stop_spin(std::uint32_t) override {}
  void proc_acquired(std::uint32_t) override {}
  void proc_release_done(std::uint32_t) override {}
  void schedule_timer(std::uint32_t, std::uint32_t, std::uint64_t) override {}

 private:
  std::uint32_t procs_;
};

// Anderson's slot ring historically aliased above 64 waiters (ticket % 64 on
// a 64-line array): two spinners on one line, one wakeup lost.  The ring now
// widens with the machine; every slot of every waiter must map to a distinct
// cache line, and the P <= 64 layout must stay bit-identical to the
// historical addresses.
TEST(LargeP, AndersonSlotRingsAreDistinctAtP1024) {
  StubServices services(1024);
  sync::LockStatsCollector stats;
  sync::AndersonLock lock(services, stats);
  EXPECT_EQ(lock.slot_ring_size(), 1024u);

  const std::uint32_t lock_line = trace::AddressMap::lock_addr(0);
  std::set<std::uint32_t> lines;
  for (std::uint32_t slot = 0; slot < 1024; ++slot) {
    const std::uint32_t line = lock.slot_line(lock_line, slot);
    EXPECT_TRUE(lines.insert(line).second)
        << "slot " << slot << " aliases another slot's cache line";
    EXPECT_EQ(line % 64u, 0u) << "slots must stay cache-line aligned";
  }
  // A second lock's ring must not overlap the first's.
  const std::uint32_t other = lock.slot_line(trace::AddressMap::lock_addr(1), 0);
  EXPECT_EQ(lines.count(other), 0u);
}

TEST(LargeP, AndersonSlotRingKeepsHistoricalLayoutThrough64) {
  StubServices services(64);
  sync::LockStatsCollector stats;
  sync::AndersonLock lock(services, stats);
  EXPECT_EQ(lock.slot_ring_size(), 64u);
  const std::uint32_t lock_line = trace::AddressMap::lock_addr(3);
  for (std::uint32_t slot = 0; slot < 64; ++slot) {
    EXPECT_EQ(lock.slot_line(lock_line, slot),
              trace::AddressMap::kLockBase + (1u << 24) + 3u * (64u * 64u) +
                  slot * 64u);
  }
}

// The generator's cold region historically offset each processor by the full
// per-proc cold budget, overflowing the shared segment around P = 448 (and
// crashing in shared_addr).  Slices now clamp to the region; at P = 1024
// every cold reference must still land in shared data.
TEST(LargeP, GeneratorColdSlicesStayInSharedRegionAtP1024) {
  workload::BenchmarkProfile p = profile_by_name("Grav");
  p.num_procs = 1024;
  p.refs_per_proc = 40;
  p.locality.cold_fraction = 0.4;
  p.locking.pairs_per_proc = 0;
  p.locking.barriers_per_proc = 0;
  for (const std::uint32_t proc : {0u, 63u, 512u, 1023u}) {
    workload::ProfileTraceSource source(p, proc);
    trace::Event e;
    std::uint32_t data_refs = 0;
    while (source.next(e)) {
      if (trace::is_data_ref(e.op)) {
        ++data_refs;
        const trace::Region r = trace::AddressMap::classify(e.addr);
        EXPECT_TRUE(r == trace::Region::kPrivate || r == trace::Region::kShared)
            << "proc " << proc << " emitted a data ref outside data regions";
      }
    }
    EXPECT_GT(data_refs, 0u);
  }
}

TEST(LargeP, EventQueueHandles1024Sources) {
  core::EventQueue q(1024);
  // Schedule in reverse so pops must re-sort, crossing word boundaries of
  // the source bitmap (1024 sources = 16 occupancy words).
  for (std::uint32_t s = 0; s < 1024; ++s) {
    q.schedule(s, 10'000u - s);
  }
  EXPECT_EQ(q.size(), 1024u);
  EXPECT_EQ(q.min_key(), 10'000u - 1023u);
  EXPECT_EQ(q.min_source(), 1023u);
  std::uint64_t last = 0;
  std::uint32_t popped = 0;
  std::array<std::uint64_t, 16> words{};  // 1024 sources = 16 bitmap words
  while (!q.empty()) {
    const std::uint64_t k = q.min_key();
    EXPECT_GE(k, last);
    last = k;
    q.set_floor(k);
    words.fill(0);
    q.take_due(k, words.data());
    std::uint32_t taken = 0;
    for (const std::uint64_t w : words) {
      taken += static_cast<std::uint32_t>(std::popcount(w));
    }
    EXPECT_EQ(taken, 1u) << "keys are unique, so each drain pops one source";
    popped += taken;
  }
  EXPECT_EQ(popped, 1024u);
}

// ---------------------------------------------------------------------------
// Report rendering at 3-digit P: golden snapshot.
// ---------------------------------------------------------------------------

std::string report_golden_path() {
  return std::string(SYNCPAT_GOLDEN_DIR) + "/report_p128.txt";
}

class ReportAtP128 : public ::testing::TestWithParam<core::EngineKind> {
 protected:
  void SetUp() override {
    unsetenv("SYNCPAT_ENGINE");
    unsetenv("SYNCPAT_FAST_FORWARD");
    unsetenv("SYNCPAT_BUS_DISCIPLINE");
    unsetenv("SYNCPAT_MODEL");
  }
};

INSTANTIATE_TEST_SUITE_P(Engines, ReportAtP128,
                         ::testing::Values(core::EngineKind::kDes,
                                           core::EngineKind::kTick),
                         [](const auto& info) {
                           return std::string(core::engine_name(info.param));
                         });

// One golden file, both engines: the summary table and the machine-profile
// sections rendered at P = 128, where processor counts, waiter counts, and
// comma-grouped cycle totals all need 3+ digit columns.  Any layout drift
// (column widths, comma grouping, truncated counts) or simulation drift
// fails the byte comparison.
TEST_P(ReportAtP128, RenderingSnapshot) {
  workload::BenchmarkProfile p = profile_by_name("Pverify").scaled(4096);
  p.num_procs = 128;
  p.locking.pairs_per_proc = 3;  // scaling dropped the pairs to zero; the
                                 // snapshot must exercise the lock columns
  core::MachineConfig cfg;
  cfg.num_procs = 128;
  cfg.lock_scheme = sync::SchemeKind::kTtas;
  cfg.engine = GetParam();
  cfg.metrics.enabled = true;

  trace::ProgramTrace program = workload::make_program_trace(p);
  core::Simulator sim(cfg, program);
  const core::SimulationResult r = sim.run();

  std::ostringstream out;
  report::Table t("syncpat: " + r.program + " on " + r.scheme + " @ P=128");
  t.columns({"Metric", "Value"});
  t.add_row({"processors", std::to_string(r.num_procs)});
  t.add_row({"run-time (cycles)", util::with_commas(r.run_time)});
  t.add_row({"lock acquisitions", util::with_commas(r.locks.acquisitions)});
  t.add_row({"waiters at transfer",
             util::fixed(r.locks.waiters_at_transfer.mean(), 2)});
  t.add_row({"bus utilization %", util::percent(r.bus_utilization, 1)});
  t.print(out);
  const obs::MetricsRegistry* m = sim.metrics();
  ASSERT_NE(m, nullptr);
  const obs::MetricsMeta meta{r.program, r.scheme, r.consistency, r.num_procs,
                              r.run_time};
  report::machine_profile_cycles(*m, meta).print(out);
  report::machine_profile_locks(*m).print(out);
  report::machine_profile_bus(*m, meta).print(out);
  const std::string actual = out.str();

  if (std::getenv("SYNCPAT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(report_golden_path(), std::ios::trunc);
    ASSERT_TRUE(f.good()) << "cannot write " << report_golden_path();
    f << actual;
    GTEST_SKIP() << "golden snapshot regenerated at " << report_golden_path()
                 << "; review and commit the diff";
  }
  std::ifstream in(report_golden_path());
  ASSERT_TRUE(in.good())
      << "missing golden snapshot " << report_golden_path()
      << " — regenerate with SYNCPAT_UPDATE_GOLDEN=1 (see EXPERIMENTS.md)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "P=128 report rendering drifted from the committed snapshot; if "
         "intentional, regenerate with SYNCPAT_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace syncpat

// Kernel-driven trace generators: the real algorithms must be correct *and*
// produce well-formed, simulatable traces.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/simulator.hpp"
#include "test_util.hpp"
#include "trace/analyzer.hpp"
#include "workload/kernels/annealing.hpp"
#include "workload/kernels/barnes_hut.hpp"
#include "workload/kernels/qsort_kernel.hpp"
#include "workload/vm.hpp"

namespace syncpat::workload {
namespace {

TEST(VirtualProgram, AllocationsLandInTheRightRegions) {
  VirtualProgram vm("t", 2);
  const std::uint32_t sh = vm.alloc_shared(64);
  const std::uint32_t pr = vm.alloc_private(1, 64);
  const std::uint32_t lk = vm.alloc_lock();
  EXPECT_EQ(trace::AddressMap::classify(sh), trace::Region::kShared);
  EXPECT_EQ(trace::AddressMap::classify(pr), trace::Region::kPrivate);
  EXPECT_EQ(trace::AddressMap::private_owner(pr), 1u);
  EXPECT_EQ(trace::AddressMap::classify(lk), trace::Region::kLock);
}

TEST(VirtualProgram, AlignmentRespected) {
  VirtualProgram vm("t", 1);
  vm.alloc_shared(3);
  const std::uint32_t b = vm.alloc_shared(8, 16);
  EXPECT_EQ(b % 16, 0u);
}

TEST(VirtualProgram, RecordsEventsWithGaps) {
  VirtualProgram vm("t", 1);
  const std::uint32_t a = vm.alloc_shared(16);
  vm.compute(0, 10);
  vm.load(0, a);
  vm.store(0, a);
  trace::ProgramTrace program = vm.take_trace();
  const auto events = trace::collect(*program.per_proc[0]);
  // Each data op emits an ifetch + the reference.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].op, trace::Op::kIFetch);
  EXPECT_GE(events[0].gap, 10u);  // compute() accumulated into the next event
  EXPECT_EQ(events[1].op, trace::Op::kLoad);
  EXPECT_EQ(events[3].op, trace::Op::kStore);
}

TEST(VirtualProgram, LockPairingTracked) {
  VirtualProgram vm("t", 1);
  const std::uint32_t lk = vm.alloc_lock();
  vm.lock(0, lk);
  vm.unlock(0, lk);
  trace::ProgramTrace program = vm.take_trace();
  const trace::IdealProgramStats stats = trace::analyze_program(program);
  EXPECT_EQ(stats.per_proc[0].lock_pairs, 1u);
}

TEST(QsortKernel, SortsAndTraces) {
  QsortParams params;
  params.num_threads = 4;
  params.num_elements = 3000;
  trace::ProgramTrace program = qsort_trace(params);  // aborts if unsorted
  EXPECT_EQ(program.num_procs(), 4u);
  const trace::IdealProgramStats stats = trace::analyze_program(program);
  std::uint64_t total_pairs = 0, total_refs = 0;
  for (const auto& p : stats.per_proc) {
    total_pairs += p.lock_pairs;
    total_refs += p.refs_all;
  }
  EXPECT_GT(total_pairs, 50u);   // every queue op is locked
  EXPECT_GT(total_refs, 10000u);  // real work was traced
}

TEST(QsortKernel, DeterministicAcrossRuns) {
  QsortParams params;
  params.num_threads = 3;
  params.num_elements = 500;
  trace::ProgramTrace a = qsort_trace(params);
  trace::ProgramTrace b = qsort_trace(params);
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_EQ(trace::collect(*a.per_proc[p]), trace::collect(*b.per_proc[p]));
  }
}

TEST(QsortKernel, TraceSimulates) {
  QsortParams params;
  params.num_threads = 4;
  params.num_elements = 1500;
  trace::ProgramTrace program = qsort_trace(params);
  const core::SimulationResult r =
      testutil::simulate(testutil::machine(), program);
  EXPECT_GT(r.run_time, 0u);
  EXPECT_GT(r.locks.acquisitions, 50u);
}

TEST(BarnesHutKernel, TracesWithNestedLocks) {
  BarnesHutParams params;
  params.num_threads = 4;
  params.num_bodies = 300;
  trace::ProgramTrace program = barnes_hut_trace(params);
  const trace::IdealProgramStats stats = trace::analyze_program(program);
  std::uint64_t pairs = 0, nested = 0;
  for (const auto& p : stats.per_proc) {
    pairs += p.lock_pairs;
    nested += p.nested_pairs;
  }
  // The Presto scheduler/queue pattern: every dequeue nests the queue lock.
  EXPECT_GT(pairs, 0u);
  EXPECT_NEAR(static_cast<double>(nested), static_cast<double>(pairs) / 2.0,
              static_cast<double>(pairs) * 0.1);
}

TEST(BarnesHutKernel, TraceSimulatesUnderBothSchemes) {
  BarnesHutParams params;
  params.num_threads = 4;
  params.num_bodies = 200;
  for (const auto scheme :
       {sync::SchemeKind::kQueuing, sync::SchemeKind::kTtas}) {
    trace::ProgramTrace program = barnes_hut_trace(params);
    const core::SimulationResult r =
        testutil::simulate(testutil::machine(scheme), program);
    EXPECT_GT(r.run_time, 0u) << sync::scheme_kind_name(scheme);
  }
}

TEST(AnnealingKernel, ShortCriticalSectionsEveryFewMoves) {
  AnnealingParams params;
  params.num_threads = 4;
  params.grid_side = 16;
  params.moves_per_thread = 200;
  params.moves_per_sync = 4;
  trace::ProgramTrace program = annealing_trace(params);
  const trace::IdealProgramStats stats = trace::analyze_program(program);
  std::uint64_t pairs = 0;
  for (const auto& p : stats.per_proc) pairs += p.lock_pairs;
  EXPECT_NEAR(static_cast<double>(pairs), 4.0 * 200.0 / 4.0, 20.0);
}

TEST(AnnealingKernel, ContendedGlobalLockShowsWaiters) {
  AnnealingParams params;
  params.num_threads = 8;
  params.grid_side = 16;
  params.moves_per_thread = 300;
  params.moves_per_sync = 2;  // very frequent syncs: real contention
  trace::ProgramTrace program = annealing_trace(params);
  const core::SimulationResult r =
      testutil::simulate(testutil::machine(), program);
  EXPECT_GT(r.locks.transfers, 0u);
}

}  // namespace
}  // namespace syncpat::workload

// The deterministic metrics layer: exact stall-cause attribution (every
// simulated cycle charged to exactly one category, ledger == completion
// cycle), per-lock contention histograms conserved against LockStats, the
// windowed bus gauge conserved against the bus's own busy counter, and
// byte-identical exports across fast-forward modes and engine job counts.
//
// Every suite here is named Metrics* so the TSan recipe can select the whole
// layer with --gtest_filter=':Metrics*'.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "bus/interface.hpp"
#include "core/experiment_engine.hpp"
#include "core/machine_config.hpp"
#include "core/simulator.hpp"
#include "fuzz/render.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profile.hpp"
#include "obs/stall_attribution.hpp"
#include "sync/scheme_factory.hpp"
#include "test_util.hpp"
#include "trace/source.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace syncpat {
namespace {

using namespace testutil;
using obs::StallCat;

workload::BenchmarkProfile profile_by_name(const std::string& name) {
  for (const auto& p : workload::paper_profiles()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "unknown profile " << name;
  return {};
}

/// The conservation property, checked per processor: the attribution ledger
/// sums to exactly the processor's completion cycle.
void expect_conservation(const obs::MetricsRegistry& m,
                         const core::SimulationResult& r,
                         const std::string& what) {
  ASSERT_EQ(m.num_procs(), r.per_proc.size()) << what;
  for (std::uint32_t p = 0; p < m.num_procs(); ++p) {
    EXPECT_EQ(m.proc(p).attr.total(), r.per_proc[p].completion_cycle)
        << what << ": proc " << p;
  }
}

std::uint64_t total_of(const obs::MetricsRegistry& m, StallCat cat) {
  std::uint64_t sum = 0;
  for (std::uint32_t p = 0; p < m.num_procs(); ++p) {
    sum += m.proc(p).attr.of(cat);
  }
  return sum;
}

class MetricsConservation : public ::testing::Test {
 protected:
  // cfg.engine / cfg.fast_forward must control the mode (same reasoning as
  // the engine differential), and SYNCPAT_METRICS must not leak in.
  void SetUp() override {
    unsetenv("SYNCPAT_ENGINE");
    unsetenv("SYNCPAT_FAST_FORWARD");
    unsetenv("SYNCPAT_METRICS");
  }
};

// The tentpole invariant across all 28 machine variants, plus export
// byte-identity between execution engines (metrics must not observe the
// engine's stepping strategy: DES, per-cycle tick, tick with run-ahead).
TEST_F(MetricsConservation, HoldsAcrossSchemesModelsAndPolicies) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Grav").scaled(64);
  for (const sync::SchemeKind scheme : sync::all_scheme_kinds()) {
    for (const bus::ConsistencyModel model :
         {bus::ConsistencyModel::kSequential, bus::ConsistencyModel::kWeak}) {
      for (const cache::WritePolicy policy :
           {cache::WritePolicy::kWriteBack, cache::WritePolicy::kWriteThrough}) {
        const std::string what =
            std::string(sync::scheme_kind_name(scheme)) + "/" +
            bus::consistency_name(model) + "/" +
            cache::write_policy_name(policy);
        struct EngineMode {
          core::EngineKind engine;
          bool fast_forward;
        };
        constexpr EngineMode kModes[] = {
            {core::EngineKind::kDes, true},
            {core::EngineKind::kTick, true},
            {core::EngineKind::kTick, false},
        };
        std::string exports[3];
        for (std::size_t mode = 0; mode < 3; ++mode) {
          core::MachineConfig cfg;
          cfg.lock_scheme = scheme;
          cfg.consistency = model;
          cfg.write_policy = policy;
          cfg.engine = kModes[mode].engine;
          cfg.fast_forward = kModes[mode].fast_forward;
          cfg.metrics.enabled = true;
          cfg.num_procs = scaled.num_procs;
          trace::ProgramTrace program = workload::make_program_trace(scaled);
          core::Simulator sim(cfg, program);
          const core::SimulationResult r = sim.run();
          const obs::MetricsRegistry* m = sim.metrics();
          ASSERT_NE(m, nullptr) << what;
          expect_conservation(*m, r, what);
          // Per-lock histogram totals conserve against the lock counters.
          for (const auto& [line, lm] : m->locks()) {
            EXPECT_EQ(lm.waiters_at_acquire.count(), lm.acquisitions)
                << what << ": lock " << line;
            EXPECT_EQ(lm.handoff_cycles.count(), lm.transfers)
                << what << ": lock " << line;
          }
          // The clipped gauge equals the bus's tick-by-tick busy counter.
          EXPECT_EQ(m->bus().total_busy(), sim.bus().busy_cycles()) << what;
          const obs::MetricsMeta meta{r.program, r.scheme, r.consistency,
                                      r.num_procs, r.run_time};
          exports[mode] = obs::metrics_to_json(*m, meta);
        }
        EXPECT_EQ(exports[0], exports[2])
            << what << ": metrics JSON differs between DES and per-cycle tick";
        EXPECT_EQ(exports[1], exports[2])
            << what << ": metrics JSON differs between fast-forward modes";
      }
    }
  }
}

TEST_F(MetricsConservation, AgreesWithLockStatsAggregates) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Qsort").scaled(64);
  core::MachineConfig cfg;
  cfg.metrics.enabled = true;
  cfg.num_procs = scaled.num_procs;
  trace::ProgramTrace program = workload::make_program_trace(scaled);
  core::Simulator sim(cfg, program);
  const core::SimulationResult r = sim.run();
  const obs::MetricsRegistry* m = sim.metrics();
  ASSERT_NE(m, nullptr);
  ASSERT_GT(r.locks.acquisitions, 0u);

  std::uint64_t acquisitions = 0;
  std::uint64_t transfers = 0;
  for (const auto& [line, lm] : m->locks()) {
    acquisitions += lm.acquisitions;
    transfers += lm.transfers;
  }
  EXPECT_EQ(acquisitions, r.locks.acquisitions);
  EXPECT_EQ(transfers, r.locks.transfers);
  // Per-lock: the metrics slot and the stats aggregate describe the same
  // lock, sample for sample.
  for (const auto& [line, agg] : sim.lock_stats().per_lock()) {
    const auto it = m->locks().find(line);
    ASSERT_NE(it, m->locks().end()) << "lock " << line;
    EXPECT_EQ(it->second.acquisitions, agg.acquisitions) << "lock " << line;
    EXPECT_EQ(it->second.transfers, agg.transfers) << "lock " << line;
    EXPECT_EQ(it->second.hold_cycles.count(), agg.hold_cycles.count())
        << "lock " << line;
    if (agg.hold_cycles.count() > 0) {
      EXPECT_NEAR(it->second.hold_cycles.mean(), agg.hold_cycles.mean(), 1.0)
          << "lock " << line;
    }
  }
}

class MetricsMicro : public MetricsConservation {};

// Two processors fighting over one lock: the loser's cycles land in the
// lock-wait categories and the hand-off shows up in the lock histograms.
TEST_F(MetricsMicro, SingleLockHandoff) {
  trace::ProgramTrace program = make_program({
      {lock_acq(0, 1), ifetch(0x100, 40), lock_rel(0, 1), ifetch(0x140, 2)},
      {lock_acq(0, 2), ifetch(0x100, 40), lock_rel(0, 1), ifetch(0x140, 2)},
  });
  core::MachineConfig cfg = machine(sync::SchemeKind::kQueuing);
  cfg.metrics.enabled = true;
  core::Simulator sim(cfg, program);
  const core::SimulationResult r = sim.run();
  const obs::MetricsRegistry* m = sim.metrics();
  ASSERT_NE(m, nullptr);
  expect_conservation(*m, r, "single-lock hand-off");

  ASSERT_EQ(m->locks().size(), 1u);
  const obs::LockMetrics& lm = m->locks().begin()->second;
  EXPECT_EQ(lm.acquisitions, 2u);
  EXPECT_EQ(lm.waiters_at_acquire.count(), 2u);
  EXPECT_EQ(lm.handoff_cycles.count(), lm.transfers);
  EXPECT_EQ(lm.hold_cycles.count(), 2u);
  // The loser spent real cycles waiting for the queued lock.
  EXPECT_GT(total_of(*m, StallCat::kLockQueuedWait) +
                total_of(*m, StallCat::kLockSpin),
            20u);
  EXPECT_EQ(total_of(*m, StallCat::kBarrierWait), 0u);
}

// Barrier-only workload: wait cycles are barrier cycles, never lock cycles.
TEST_F(MetricsMicro, BarrierOnly) {
  auto barrier = [](std::uint32_t gap) {
    return trace::Event{trace::AddressMap::barrier_addr(0), gap,
                        trace::Op::kBarrier};
  };
  trace::ProgramTrace program = make_program({
      {barrier(1), ifetch(0x100, 2)},
      {barrier(200), ifetch(0x100, 2)},  // arrives ~200 cycles later
      {barrier(1), ifetch(0x100, 2)},
  });
  core::MachineConfig cfg = machine();
  cfg.metrics.enabled = true;
  core::Simulator sim(cfg, program);
  const core::SimulationResult r = sim.run();
  const obs::MetricsRegistry* m = sim.metrics();
  ASSERT_NE(m, nullptr);
  expect_conservation(*m, r, "barrier-only");
  // The two early arrivals waited out the slow processor's head start.
  EXPECT_GT(total_of(*m, StallCat::kBarrierWait), 300u);
  EXPECT_EQ(total_of(*m, StallCat::kLockQueuedWait), 0u);
  EXPECT_EQ(total_of(*m, StallCat::kLockSpin), 0u);
}

// A store burst under weak ordering saturates the write buffer: the stall
// cycles must be charged to write_buffer_full, not memory latency.
TEST_F(MetricsMicro, WriteBufferSaturation) {
  std::vector<trace::Event> events;
  for (std::uint32_t i = 0; i < 32; ++i) {
    events.push_back(store(shared_line(i), 1));
  }
  events.push_back(ifetch(0x100, 2));
  trace::ProgramTrace program =
      make_program({events}, "write-buffer-saturation");
  core::MachineConfig cfg =
      machine(sync::SchemeKind::kTtas, bus::ConsistencyModel::kWeak);
  cfg.cache_bus_buffer_depth = 2;
  cfg.metrics.enabled = true;
  core::Simulator sim(cfg, program);
  const core::SimulationResult r = sim.run();
  const obs::MetricsRegistry* m = sim.metrics();
  ASSERT_NE(m, nullptr);
  expect_conservation(*m, r, "write-buffer saturation");
  EXPECT_GT(total_of(*m, StallCat::kWriteBufferFull), 0u);
}

// Per-cell metrics bytes must be identical whatever the engine's job count
// (the jobs-differential guarantee extended to the metrics export).
TEST_F(MetricsConservation, ExportBytesIdenticalAcrossJobCounts) {
  core::ExperimentGrid grid;
  grid.base.metrics.enabled = true;
  grid.profiles = {workload::qsort_profile(), workload::fullconn_profile()};
  grid.schemes = {sync::SchemeKind::kQueuing, sync::SchemeKind::kTtas};
  grid.scales = {128};

  auto fingerprint = [](const core::GridResult& result) {
    std::string out;
    for (const core::CellResult& cell : result.results) {
      EXPECT_TRUE(cell.ok()) << cell.error;
      EXPECT_FALSE(cell.outcome.metrics_json.empty());
      out += cell.outcome.metrics_json;
      out += '\n';
    }
    return out;
  };

  core::EngineOptions serial;
  serial.jobs = 1;
  core::EngineOptions pooled;
  pooled.jobs = 8;
  const std::string a = fingerprint(core::run_grid(grid, serial));
  const std::string b = fingerprint(core::run_grid(grid, pooled));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(MetricsDisabled, SimulatorHoldsNoRegistry) {
  trace::ProgramTrace program = make_program({{ifetch(0x100, 2)}});
  core::MachineConfig cfg = machine();
  cfg.num_procs = 1;
  core::Simulator sim(cfg, program);
  EXPECT_EQ(sim.metrics(), nullptr);
  sim.run();
  EXPECT_EQ(sim.metrics(), nullptr);
  EXPECT_EQ(sim.take_metrics(), nullptr);
}

TEST(MetricsParse, FormatFollowsExtensionStrictly) {
  EXPECT_EQ(obs::metrics_format_from_path("out.json"),
            obs::MetricsFormat::kJson);
  EXPECT_EQ(obs::metrics_format_from_path("dir.v2/cell.csv"),
            obs::MetricsFormat::kCsv);
  EXPECT_THROW(static_cast<void>(obs::metrics_format_from_path("out.txt")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(obs::metrics_format_from_path("noext")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(obs::metrics_format_from_path("")),
               std::invalid_argument);
}

TEST(MetricsParse, EnvOverrideIsStrict) {
  setenv("SYNCPAT_METRICS", "1", 1);
  EXPECT_TRUE(obs::metrics_enabled_from_env(false));
  setenv("SYNCPAT_METRICS", "0", 1);
  EXPECT_FALSE(obs::metrics_enabled_from_env(true));
  setenv("SYNCPAT_METRICS", "yes", 1);
  EXPECT_THROW(static_cast<void>(obs::metrics_enabled_from_env(false)),
               std::invalid_argument);
  setenv("SYNCPAT_METRICS", "", 1);
  EXPECT_THROW(static_cast<void>(obs::metrics_enabled_from_env(false)),
               std::invalid_argument);
  unsetenv("SYNCPAT_METRICS");
  EXPECT_TRUE(obs::metrics_enabled_from_env(true));
  EXPECT_FALSE(obs::metrics_enabled_from_env(false));
}

TEST(MetricsBusGauge, SplitsTenuresAcrossWindows) {
  obs::BusWindowGauge g(16);
  g.add(0, 40);  // spans windows 0, 1 and half of 2
  ASSERT_EQ(g.windows().size(), 3u);
  EXPECT_EQ(g.windows()[0], 16u);
  EXPECT_EQ(g.windows()[1], 16u);
  EXPECT_EQ(g.windows()[2], 8u);
  EXPECT_EQ(g.total_busy(), 40u);
  g.finalize(63);  // zero-extends to cover the whole run
  ASSERT_EQ(g.windows().size(), 4u);
  EXPECT_EQ(g.windows()[3], 0u);
  EXPECT_EQ(g.total_busy(), 40u);
  EXPECT_DOUBLE_EQ(g.utilization(0), 1.0);
  EXPECT_DOUBLE_EQ(g.utilization(2), 0.5);
}

TEST(MetricsBusGauge, FinalizeClipsTheTrailingTenure) {
  obs::BusWindowGauge g(16);
  g.add(10, 20);      // busy cycles 10..29
  g.finalize(19);     // run ended at cycle 19: cycles 20..29 never ticked
  EXPECT_EQ(g.total_busy(), 10u);
  ASSERT_GE(g.windows().size(), 2u);
  EXPECT_EQ(g.windows()[0], 6u);   // cycles 10..15
  EXPECT_EQ(g.windows()[1], 4u);   // cycles 16..19
}

TEST(MetricsSelfProfile, AttachingNeverChangesTheSimulation) {
  const workload::BenchmarkProfile scaled =
      profile_by_name("Qsort").scaled(256);
  // Both engines: the profiler observes the host, never the simulation, and
  // each engine's time lands in its own phase bucket.
  for (const core::EngineKind engine :
       {core::EngineKind::kDes, core::EngineKind::kTick}) {
    core::MachineConfig cfg;
    cfg.num_procs = scaled.num_procs;
    cfg.engine = engine;

    trace::ProgramTrace plain_program = workload::make_program_trace(scaled);
    core::Simulator plain(cfg, plain_program);
    const std::string plain_rendered = fuzz::render_result(plain.run());

    trace::ProgramTrace profiled_program = workload::make_program_trace(scaled);
    core::Simulator profiled(cfg, profiled_program);
    obs::SelfProfiler profiler;
    profiled.set_self_profiler(&profiler);
    const std::string profiled_rendered = fuzz::render_result(profiled.run());

    EXPECT_EQ(plain_rendered, profiled_rendered)
        << core::engine_name(engine);
    const obs::SelfProfiler::Snapshot snap = profiler.snapshot();
    const auto phase = engine == core::EngineKind::kDes
                           ? obs::SelfProfiler::Phase::kEventLoop
                           : obs::SelfProfiler::Phase::kDenseTick;
    EXPECT_GT(snap.calls[static_cast<std::size_t>(phase)], 0u)
        << core::engine_name(engine);
    EXPECT_FALSE(profiler.to_string().empty());
  }
}

}  // namespace
}  // namespace syncpat

// Shared helpers for the syncpat test suite.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "core/machine_config.hpp"
#include "core/simulator.hpp"
#include "trace/address_map.hpp"
#include "trace/source.hpp"

namespace syncpat::testutil {

using trace::Event;
using trace::Op;

/// Shorthand event constructors.
inline Event load(std::uint32_t addr, std::uint32_t gap = 1) {
  return Event{addr, gap, Op::kLoad};
}
inline Event store(std::uint32_t addr, std::uint32_t gap = 1) {
  return Event{addr, gap, Op::kStore};
}
inline Event ifetch(std::uint32_t addr, std::uint32_t gap = 1) {
  return Event{addr, gap, Op::kIFetch};
}
inline Event lock_acq(std::uint32_t lock_id, std::uint32_t gap = 1) {
  return Event{trace::AddressMap::lock_addr(lock_id), gap, Op::kLockAcq};
}
inline Event lock_rel(std::uint32_t lock_id, std::uint32_t gap = 1) {
  return Event{trace::AddressMap::lock_addr(lock_id), gap, Op::kLockRel};
}

/// Builds a ProgramTrace from per-processor event lists.
inline trace::ProgramTrace make_program(
    std::vector<std::vector<Event>> per_proc, std::string name = "test") {
  trace::ProgramTrace program;
  program.name = std::move(name);
  for (auto& events : per_proc) {
    program.per_proc.push_back(
        std::make_unique<trace::VectorTraceSource>(std::move(events)));
  }
  return program;
}

/// Runs a program on the given config and returns the results.
inline core::SimulationResult simulate(core::MachineConfig config,
                                       trace::ProgramTrace& program) {
  config.num_procs = static_cast<std::uint32_t>(program.num_procs());
  core::Simulator sim(config, program);
  return sim.run();
}

/// Default machine with a chosen lock scheme / consistency model.
inline core::MachineConfig machine(
    sync::SchemeKind scheme = sync::SchemeKind::kQueuing,
    bus::ConsistencyModel model = bus::ConsistencyModel::kSequential) {
  core::MachineConfig config;
  config.lock_scheme = scheme;
  config.consistency = model;
  return config;
}

/// Addresses in distinct regions for coherence tests: shared lines 64 bytes
/// apart (never in the same 16-byte line).
inline std::uint32_t shared_line(std::uint32_t i) {
  return trace::AddressMap::shared_addr(i * 64);
}

}  // namespace syncpat::testutil

// Weak-ordering model behaviour (paper §4).
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "test_util.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

TEST(WeakOrdering, WriteMissDoesNotStallProcessor) {
  // Warm the code line first, so the only stalls can come from the store.
  trace::ProgramTrace program = make_program({{
      ifetch(0x100, 1),
      store(shared_line(0), 10),
      ifetch(0x104, 10),  // proceeds while the write is in flight (same line)
  }});
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_EQ(r.per_proc[0].stall_cache, 6u);  // only the cold ifetch miss
}

TEST(WeakOrdering, SameWriteMissStallsUnderSequentialConsistency) {
  trace::ProgramTrace program = make_program({{
      ifetch(0x100, 1),
      store(shared_line(0), 10),
      ifetch(0x104, 10),
  }});
  const SimulationResult r = simulate(machine(), program);
  EXPECT_EQ(r.per_proc[0].stall_cache, 12u);  // ifetch miss + write miss
}

TEST(WeakOrdering, ReadMissStillStalls) {
  trace::ProgramTrace program = make_program({{load(shared_line(0), 1)}});
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_EQ(r.per_proc[0].stall_cache, 6u);
}

TEST(WeakOrdering, ReadBypassesBufferedWrites) {
  // Back-to-back store misses arrive faster than the memory pipeline can
  // retire them, so writes pile up in the buffer; the load's transaction
  // then jumps the queue (bypass counter increments).
  trace::ProgramTrace program = make_program({{
      store(shared_line(0), 1),
      store(shared_line(1), 1),
      store(shared_line(2), 1),
      store(shared_line(3), 1),
      store(shared_line(4), 1),
      store(shared_line(5), 1),
      load(shared_line(6), 1),
  }});
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_GE(r.read_bypasses, 1u);
}

TEST(WeakOrdering, NoBypassPastSameLineWrite) {
  trace::ProgramTrace program = make_program({{
      store(shared_line(0), 1),
      load(shared_line(0) + 4, 1),  // same line: must not bypass
  }});
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_EQ(r.read_bypasses, 0u);
}

TEST(WeakOrdering, FenceDrainsBeforeLockOp) {
  // A store miss immediately followed by a lock acquire: the sync must wait
  // for the buffered access (counted in syncs_with_pending).
  trace::ProgramTrace program = make_program({{
      store(shared_line(0), 1),
      lock_acq(0, 1),
      lock_rel(0, 5),
  }});
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_EQ(r.syncs, 2u);
  EXPECT_GE(r.syncs_with_pending, 1u);
}

TEST(WeakOrdering, IdleSyncFindsNothingPending) {
  trace::ProgramTrace program = make_program({{
      store(shared_line(0), 1),
      ifetch(0x100, 100),  // plenty of time for the write to complete
      lock_acq(0, 1),
      lock_rel(0, 5),
  }});
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_EQ(r.syncs_with_pending, 0u);
}

TEST(WeakOrdering, CoherenceStateIdenticalToSequential) {
  auto build = [] {
    return make_program({
        {store(shared_line(0), 1), load(shared_line(1), 5)},
        {load(shared_line(0), 40)},
    });
  };
  trace::ProgramTrace p1 = build();
  trace::ProgramTrace p2 = build();
  MachineConfig sc = machine();
  sc.num_procs = 2;
  Simulator sim_sc(sc, p1);
  sim_sc.run();
  MachineConfig wo = machine(sync::SchemeKind::kQueuing,
                             bus::ConsistencyModel::kWeak);
  wo.num_procs = 2;
  Simulator sim_wo(wo, p2);
  sim_wo.run();
  EXPECT_EQ(sim_sc.cache_of(0).state(shared_line(0)),
            sim_wo.cache_of(0).state(shared_line(0)));
  EXPECT_EQ(sim_sc.cache_of(1).state(shared_line(0)),
            sim_wo.cache_of(1).state(shared_line(0)));
}

TEST(WeakOrdering, BufferFullEventuallyStalls) {
  // Enough back-to-back store misses to distinct lines overflow the 4-deep
  // buffer; the processor must stall at some point but still completes.
  std::vector<trace::Event> events;
  for (std::uint32_t i = 0; i < 12; ++i) events.push_back(store(shared_line(i), 1));
  trace::ProgramTrace program = make_program({events});
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_GT(r.per_proc[0].stall_cache, 0u);
  EXPECT_EQ(r.write_hit_ratio, 0.0);  // all 12 were misses
}

TEST(WeakOrdering, StoreMergesIntoInFlightOwnershipFill) {
  trace::ProgramTrace program = make_program({{
      store(shared_line(0), 1),
      store(shared_line(0) + 4, 1),  // coalesces into the pending ReadX
      store(shared_line(0) + 8, 1),
  }});
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_EQ(r.per_proc[0].stall_cache, 0u);
  EXPECT_EQ(r.run_time, r.per_proc[0].completion_cycle);
}

TEST(WeakOrdering, UpgradeInvalidatedWhileQueuedBecomesWriteMiss) {
  // P0 holds the line Shared and buffers an upgrade; P1's write invalidates
  // it before the upgrade wins the bus; P0's write must still perform (as a
  // converted ReadX) and the final owner is whoever wrote last.
  trace::ProgramTrace program = make_program({
      {load(shared_line(0), 1), ifetch(0x100, 28), store(shared_line(0), 1),
       ifetch(0x104, 30)},
      {load(shared_line(0), 10), store(shared_line(0), 19)},
  });
  const SimulationResult r = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), program);
  EXPECT_GT(r.run_time, 0u);  // completes without deadlock or assert
}

TEST(WeakOrdering, RuntimeNeverMuchWorseOnQuietWorkloads) {
  auto build = [] {
    std::vector<trace::Event> events;
    for (std::uint32_t i = 0; i < 300; ++i) {
      events.push_back(load(shared_line(i % 40), 2));
      if (i % 7 == 0) events.push_back(store(shared_line(100 + i), 1));
    }
    return make_program({events, events});
  };
  trace::ProgramTrace p1 = build();
  trace::ProgramTrace p2 = build();
  const SimulationResult sc = simulate(machine(), p1);
  const SimulationResult wo = simulate(
      machine(sync::SchemeKind::kQueuing, bus::ConsistencyModel::kWeak), p2);
  EXPECT_LE(wo.run_time, sc.run_time);  // hiding write misses helps here
}

}  // namespace
}  // namespace syncpat::core

#include "mem/memory.hpp"

#include <gtest/gtest.h>

namespace syncpat::mem {
namespace {

bus::Transaction make(bus::TxnKind kind) {
  bus::Transaction t;
  t.kind = kind;
  return t;
}

TEST(Memory, ReadTakesAccessCyclesToReachOutput) {
  Memory mem(MemoryConfig{});
  bus::Transaction rd = make(bus::TxnKind::kRead);
  mem.push_request(&rd);
  mem.tick();  // cycle 1 of service
  EXPECT_EQ(mem.pending_response(), nullptr);
  mem.tick();  // cycle 2
  EXPECT_EQ(mem.pending_response(), nullptr);
  mem.tick();  // cycle 3: done -> output
  EXPECT_EQ(mem.pending_response(), &rd);
  EXPECT_EQ(rd.phase, bus::TxnPhase::kMemOutput);
}

TEST(Memory, WritesAreAbsorbed) {
  Memory mem(MemoryConfig{});
  bus::Transaction wb = make(bus::TxnKind::kWriteBack);
  mem.push_request(&wb);
  mem.tick();
  mem.tick();
  mem.tick();
  EXPECT_EQ(mem.pending_response(), nullptr);
  const auto absorbed = mem.drain_absorbed();
  ASSERT_EQ(absorbed.size(), 1u);
  EXPECT_EQ(absorbed[0], &wb);
  EXPECT_TRUE(mem.drain_absorbed().empty());  // drained once
}

TEST(Memory, InputBufferDepthTwo) {
  Memory mem(MemoryConfig{});
  bus::Transaction a = make(bus::TxnKind::kRead);
  bus::Transaction b = make(bus::TxnKind::kRead);
  EXPECT_FALSE(mem.input_full());
  mem.push_request(&a);
  EXPECT_FALSE(mem.input_full());
  mem.push_request(&b);
  EXPECT_TRUE(mem.input_full());
  mem.tick();  // a enters service, input frees a slot
  EXPECT_FALSE(mem.input_full());
}

TEST(Memory, BackToBackRequestsPipelineThroughInput) {
  Memory mem(MemoryConfig{});
  bus::Transaction a = make(bus::TxnKind::kRead);
  bus::Transaction b = make(bus::TxnKind::kRead);
  mem.push_request(&a);
  mem.push_request(&b);
  int cycles_until_b = 0;
  while (mem.pending_response() != &a) {
    mem.tick();
    ++cycles_until_b;
    ASSERT_LT(cycles_until_b, 10);
  }
  mem.pop_response();
  while (mem.pending_response() != &b) {
    mem.tick();
    ++cycles_until_b;
    ASSERT_LT(cycles_until_b, 10);
  }
  EXPECT_EQ(cycles_until_b, 6);  // two three-cycle accesses, serialized
}

TEST(Memory, OutputFullBlocksModule) {
  Memory mem(MemoryConfig{.access_cycles = 1, .input_depth = 2,
                          .output_depth = 1});
  bus::Transaction a = make(bus::TxnKind::kRead);
  bus::Transaction b = make(bus::TxnKind::kRead);
  mem.push_request(&a);
  mem.push_request(&b);
  mem.tick();  // a done -> output
  EXPECT_EQ(mem.pending_response(), &a);
  mem.tick();  // b done but output full: module blocked
  mem.tick();
  EXPECT_EQ(mem.pending_response(), &a);
  mem.pop_response();
  mem.tick();  // b can now retire
  EXPECT_EQ(mem.pending_response(), &b);
}

TEST(Memory, IdleWhenEmpty) {
  Memory mem(MemoryConfig{});
  EXPECT_TRUE(mem.idle());
  bus::Transaction rd = make(bus::TxnKind::kRead);
  mem.push_request(&rd);
  EXPECT_FALSE(mem.idle());
}

TEST(Memory, ServedCounter) {
  Memory mem(MemoryConfig{.access_cycles = 1, .input_depth = 2,
                          .output_depth = 2});
  bus::Transaction a = make(bus::TxnKind::kRead);
  bus::Transaction b = make(bus::TxnKind::kWriteBack);
  mem.push_request(&a);
  mem.push_request(&b);
  for (int i = 0; i < 4; ++i) mem.tick();
  EXPECT_EQ(mem.requests_served(), 2u);
}

}  // namespace
}  // namespace syncpat::mem

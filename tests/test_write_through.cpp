// Write-through cache mode (§4.2's conjectured regime).
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "test_util.hpp"

namespace syncpat::core {
namespace {

using namespace testutil;

MachineConfig wt_machine(bus::ConsistencyModel model =
                             bus::ConsistencyModel::kSequential) {
  MachineConfig config = machine(sync::SchemeKind::kQueuing, model);
  config.write_policy = cache::WritePolicy::kWriteThrough;
  return config;
}

TEST(WriteThrough, EveryStoreReachesTheBus) {
  trace::ProgramTrace program = make_program({{
      load(shared_line(0), 1),
      store(shared_line(0), 1),
      store(shared_line(0) + 4, 30),  // different word, separate write
  }});
  MachineConfig config = wt_machine();
  config.num_procs = 1;
  Simulator sim(config, program);
  const SimulationResult r = sim.run();
  EXPECT_EQ(r.traffic.write_throughs, 2u);
  EXPECT_EQ(r.traffic.writebacks, 0u);  // nothing is ever dirty
}

TEST(WriteThrough, StoreMissDoesNotAllocate) {
  trace::ProgramTrace program = make_program({{
      store(shared_line(0), 1),
      ifetch(0x100, 30),
  }});
  MachineConfig config = wt_machine();
  config.num_procs = 1;
  Simulator sim(config, program);
  sim.run();
  EXPECT_EQ(sim.cache_of(0).state(shared_line(0)), cache::LineState::kInvalid);
}

TEST(WriteThrough, StoreStallsUnderSequentialConsistency) {
  trace::ProgramTrace program = make_program({{
      ifetch(0x100, 1),
      store(shared_line(0), 10),
  }});
  const SimulationResult r = simulate(wt_machine(), program);
  // Cold ifetch (6) + the store's bus-write round trip (several cycles).
  EXPECT_GT(r.per_proc[0].stall_cache, 8u);
}

TEST(WriteThrough, WeakOrderingHidesStores) {
  auto build = [] {
    std::vector<trace::Event> events;
    events.push_back(ifetch(0x100, 1));
    for (std::uint32_t i = 0; i < 20; ++i) {
      events.push_back(store(shared_line(i), 8));
    }
    return make_program({events});
  };
  trace::ProgramTrace p1 = build();
  trace::ProgramTrace p2 = build();
  const SimulationResult sc = simulate(wt_machine(), p1);
  const SimulationResult wo =
      simulate(wt_machine(bus::ConsistencyModel::kWeak), p2);
  EXPECT_LT(wo.run_time, sc.run_time);
  EXPECT_LT(wo.per_proc[0].stall_cache, sc.per_proc[0].stall_cache / 2);
}

TEST(WriteThrough, WritesInvalidateOtherCopies) {
  trace::ProgramTrace program = make_program({
      {load(shared_line(0), 1)},
      {store(shared_line(0), 30)},
  });
  MachineConfig config = wt_machine();
  config.num_procs = 2;
  Simulator sim(config, program);
  sim.run();
  EXPECT_EQ(sim.cache_of(0).state(shared_line(0)), cache::LineState::kInvalid);
}

TEST(WriteThrough, OwnCopyStaysValidAcrossWrite) {
  trace::ProgramTrace program = make_program({{
      load(shared_line(0), 1),
      store(shared_line(0), 10),
      load(shared_line(0), 10),  // must still hit
  }});
  MachineConfig config = wt_machine();
  config.num_procs = 1;
  Simulator sim(config, program);
  const SimulationResult r = sim.run();
  // Exactly one fill: the cold load.
  EXPECT_EQ(r.traffic.reads, 1u);
}

TEST(WriteThrough, BackToBackStoresToOneLineCoalesceInBuffer) {
  trace::ProgramTrace program = make_program({{
      store(shared_line(0), 1),
      store(shared_line(0) + 4, 1),
      store(shared_line(0) + 8, 1),
  }});
  const SimulationResult wo =
      simulate(wt_machine(bus::ConsistencyModel::kWeak), program);
  EXPECT_LT(wo.traffic.write_throughs, 3u);  // later words merged
}

TEST(WriteThrough, SyncWaitsForBufferedStores) {
  trace::ProgramTrace program = make_program({{
      store(shared_line(0), 1),
      lock_acq(0, 1),
      lock_rel(0, 5),
  }});
  const SimulationResult r =
      simulate(wt_machine(bus::ConsistencyModel::kWeak), program);
  EXPECT_GE(r.syncs_with_pending, 1u);
  EXPECT_EQ(r.locks.acquisitions, 1u);
}

TEST(WriteThrough, LocksStillWorkUnderWriteThrough) {
  std::vector<std::vector<trace::Event>> traces(6);
  for (std::uint32_t p = 0; p < 6; ++p) {
    for (int i = 0; i < 10; ++i) {
      traces[p].push_back(lock_acq(0, 4));
      traces[p].push_back(store(shared_line(1), 10));
      traces[p].push_back(lock_rel(0, 1));
    }
  }
  trace::ProgramTrace program = make_program(std::move(traces));
  const SimulationResult r = simulate(wt_machine(), program);
  EXPECT_EQ(r.locks.acquisitions, 60u);
}

TEST(WriteThrough, TrafficBreakdownConsistent) {
  trace::ProgramTrace program = make_program({{
      load(shared_line(0), 1),
      store(shared_line(1), 1),
      store(shared_line(1) + 4, 40),
  }});
  MachineConfig config = wt_machine();
  config.num_procs = 1;
  Simulator sim(config, program);
  const SimulationResult r = sim.run();
  EXPECT_EQ(r.traffic.reads, 1u);
  EXPECT_EQ(r.traffic.write_throughs, 2u);
  EXPECT_EQ(r.traffic.total(),
            r.traffic.reads + r.traffic.write_throughs);
  EXPECT_EQ(r.traffic.memory_reads, 1u);
  EXPECT_EQ(r.traffic.c2c_supplies, 0u);
}

}  // namespace
}  // namespace syncpat::core

// Calibration property tests: the ideal analyzer must recover every
// published Table 1/2 statistic from each benchmark model (the substitution
// contract of DESIGN.md §2).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "trace/analyzer.hpp"
#include "workload/profiles.hpp"

namespace syncpat::workload {
namespace {

struct Target {
  const char* name;
  std::uint32_t procs;
  double work_k, refs_k, data_k, shared_k;       // Table 1
  double pairs, nested, avg_held, pct_time;      // Table 2
};

// Values from Tables 1 and 2 of the paper.
const Target kTargets[] = {
    {"Grav", 10, 2841, 1185, 423, 377, 6389, 2579, 200, 39.8},
    {"Pdsa", 12, 2458, 1206, 431, 410, 3110, 1467, 190, 20.7},
    {"FullConn", 12, 3848, 967, 346, 332, 652, 134, 334, 5.5},
    {"Pverify", 12, 5544, 2431, 682, 254, 555, 0, 3642, 36.5},
    {"Qsort", 12, 2825, 1177, 252, 142, 212, 0, 52, 0.3},
    {"Topopt", 9, 10182, 4135, 1113, 413, 0, 0, 0, 0.0},
};

constexpr std::uint64_t kScale = 16;  // fast but statistically stable

class Calibration : public ::testing::TestWithParam<int> {};

TEST_P(Calibration, Table1StatsRecovered) {
  const Target& t = kTargets[GetParam()];
  const auto profiles = paper_profiles();
  const auto& profile = profiles[static_cast<std::size_t>(GetParam())];
  ASSERT_EQ(profile.name, t.name);
  const trace::IdealProgramStats s = core::run_ideal(profile, kScale);

  EXPECT_EQ(s.num_procs, t.procs);
  const double k = static_cast<double>(kScale) / 1000.0;
  EXPECT_NEAR(s.avg_refs_all() * k, t.refs_k, t.refs_k * 0.02);
  EXPECT_NEAR(s.avg_work_cycles() * k, t.work_k, t.work_k * 0.03);
  EXPECT_NEAR(s.avg_refs_data() * k, t.data_k, t.data_k * 0.05);
  EXPECT_NEAR(s.avg_refs_shared() * k, t.shared_k, t.shared_k * 0.06);
}

TEST_P(Calibration, Table2LockStatsRecovered) {
  const Target& t = kTargets[GetParam()];
  const auto profiles = paper_profiles();
  const auto& profile = profiles[static_cast<std::size_t>(GetParam())];
  const trace::IdealProgramStats s = core::run_ideal(profile, kScale);

  const double k = static_cast<double>(kScale);
  if (t.pairs == 0) {
    EXPECT_EQ(s.avg_lock_pairs(), 0.0);
    return;
  }
  EXPECT_NEAR(s.avg_lock_pairs() * k, t.pairs, t.pairs * 0.10);
  EXPECT_NEAR(s.avg_nested_pairs() * k, t.nested,
              std::max(t.nested * 0.15, 8.0));
  EXPECT_NEAR(s.avg_hold_per_pair(), t.avg_held, t.avg_held * 0.20);
  EXPECT_NEAR(100.0 * s.held_time_fraction(), t.pct_time,
              std::max(t.pct_time * 0.15, 0.25));
}

INSTANTIATE_TEST_SUITE_P(PaperBenchmarks, Calibration, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kTargets[info.param].name;
                         });

TEST(CalibrationScaleInvariance, RatesSurviveScaling) {
  // Scale-invariant quantities: the held-time fraction and reference mix of
  // a profile are the same at different trace lengths.
  const auto profile = grav_profile();
  const auto s8 = core::run_ideal(profile, 8);
  const auto s32 = core::run_ideal(profile, 32);
  EXPECT_NEAR(s8.held_time_fraction(), s32.held_time_fraction(), 0.02);
  EXPECT_NEAR(s8.avg_refs_data() / s8.avg_refs_all(),
              s32.avg_refs_data() / s32.avg_refs_all(), 0.01);
}

}  // namespace
}  // namespace syncpat::workload

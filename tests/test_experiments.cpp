// End-to-end directional checks: the paper's findings must hold on the
// calibrated workload models (run at a small scale for test speed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "core/experiment.hpp"
#include "workload/profiles.hpp"

namespace syncpat::core {
namespace {

constexpr std::uint64_t kScale = 32;

SimulationResult run(const workload::BenchmarkProfile& profile,
                     sync::SchemeKind scheme,
                     bus::ConsistencyModel model =
                         bus::ConsistencyModel::kSequential) {
  MachineConfig config;
  config.lock_scheme = scheme;
  config.consistency = model;
  return run_experiment(config, profile, kScale).sim;
}

TEST(Experiments, LockAcquisitionCountPredictsContention) {
  // The paper's central finding (§3.1/§5): Grav and Pdsa, with the most
  // acquisitions, have the worst utilization and the most waiters — even
  // though Pverify holds locks a comparable fraction of the time.
  const auto grav = run(workload::grav_profile(), sync::SchemeKind::kQueuing);
  const auto pverify =
      run(workload::pverify_profile(), sync::SchemeKind::kQueuing);
  EXPECT_LT(grav.avg_utilization, 0.45);
  EXPECT_GT(pverify.avg_utilization, 0.75);
  EXPECT_GT(grav.locks.waiters_at_transfer.mean(), 4.0);
  EXPECT_LT(pverify.locks.waiters_at_transfer.mean(), 0.5);
  EXPECT_GT(grav.stall_lock_pct, 80.0);
  EXPECT_LT(pverify.stall_lock_pct, 5.0);
}

TEST(Experiments, HoldTimeFractionIsNotAPredictor) {
  // Pverify spends ~36% of its time holding locks (like Grav's ~40%) yet
  // sees essentially no contention.
  const auto pverify =
      run(workload::pverify_profile(), sync::SchemeKind::kQueuing);
  EXPECT_LT(pverify.locks.transfers, pverify.locks.acquisitions / 20);
}

TEST(Experiments, TtasSlowsContendedProgramsOnly) {
  for (const auto& profile :
       {workload::grav_profile(), workload::pdsa_profile()}) {
    const auto q = run(profile, sync::SchemeKind::kQueuing);
    const auto t = run(profile, sync::SchemeKind::kTtas);
    const double slowdown = static_cast<double>(t.run_time) /
                            static_cast<double>(q.run_time);
    EXPECT_GT(slowdown, 1.03) << profile.name;
    EXPECT_LT(slowdown, 1.35) << profile.name;
  }
  for (const auto& profile :
       {workload::pverify_profile(), workload::qsort_profile()}) {
    const auto q = run(profile, sync::SchemeKind::kQueuing);
    const auto t = run(profile, sync::SchemeKind::kTtas);
    const double slowdown = static_cast<double>(t.run_time) /
                            static_cast<double>(q.run_time);
    EXPECT_NEAR(slowdown, 1.0, 0.02) << profile.name;
  }
}

TEST(Experiments, TtasTransferCostTensOfCycles) {
  const auto t = run(workload::grav_profile(), sync::SchemeKind::kTtas);
  const auto q = run(workload::grav_profile(), sync::SchemeKind::kQueuing);
  EXPECT_GT(t.locks.transfer_cycles.mean(), 12.0);
  EXPECT_LT(q.locks.transfer_cycles.mean(), 4.0);
}

TEST(Experiments, WeakOrderingBuysLittle) {
  for (const auto& profile :
       {workload::pverify_profile(), workload::topopt_profile()}) {
    const auto sc = run(profile, sync::SchemeKind::kQueuing);
    const auto wo = run(profile, sync::SchemeKind::kQueuing,
                        bus::ConsistencyModel::kWeak);
    const double diff = wo.runtime_change_pct(sc);
    EXPECT_GT(diff, -2.0) << profile.name;
    EXPECT_LT(diff, 6.0) << profile.name;
  }
}

TEST(Experiments, WeakOrderingKeepsLockPatterns) {
  const auto sc = run(workload::pdsa_profile(), sync::SchemeKind::kQueuing);
  const auto wo = run(workload::pdsa_profile(), sync::SchemeKind::kQueuing,
                      bus::ConsistencyModel::kWeak);
  EXPECT_NEAR(wo.locks.waiters_at_transfer.mean(),
              sc.locks.waiters_at_transfer.mean(), 1.0);
  EXPECT_NEAR(static_cast<double>(wo.locks.transfers),
              static_cast<double>(sc.locks.transfers),
              0.1 * static_cast<double>(sc.locks.transfers));
}

TEST(Experiments, SyncsRarelyFindPendingAccesses) {
  const auto wo = run(workload::grav_profile(), sync::SchemeKind::kQueuing,
                      bus::ConsistencyModel::kWeak);
  ASSERT_GT(wo.syncs, 0u);
  EXPECT_LT(static_cast<double>(wo.syncs_with_pending),
            0.10 * static_cast<double>(wo.syncs));
}

TEST(Experiments, ExactQueuingValidatesPaperAssumption) {
  const auto approx = run(workload::grav_profile(), sync::SchemeKind::kQueuing);
  const auto exact =
      run(workload::grav_profile(), sync::SchemeKind::kQueuingExact);
  const double delta =
      std::abs(exact.runtime_change_pct(approx));
  EXPECT_LT(delta, 8.0);  // "no impact on the validity of our results"
  // And the ordering vs T&T&S is unchanged:
  const auto ttas = run(workload::grav_profile(), sync::SchemeKind::kTtas);
  EXPECT_LT(exact.run_time, ttas.run_time);
}

TEST(Experiments, TopoptRunTimeSkewedByOneProcessor) {
  const auto r = run(workload::topopt_profile(), sync::SchemeKind::kQueuing);
  EXPECT_GT(r.avg_utilization, 0.90);
  std::uint64_t max_completion = 0, second = 0;
  for (const auto& p : r.per_proc) {
    if (p.completion_cycle > max_completion) {
      second = max_completion;
      max_completion = p.completion_cycle;
    } else if (p.completion_cycle > second) {
      second = p.completion_cycle;
    }
  }
  EXPECT_GT(static_cast<double>(max_completion),
            1.2 * static_cast<double>(second));
}

TEST(Experiments, ScaleFromEnvParsesAndDefaults) {
  ::unsetenv("SYNCPAT_SCALE");
  EXPECT_EQ(scale_from_env(8), 8u);
  ::setenv("SYNCPAT_SCALE", "2", 1);
  EXPECT_EQ(scale_from_env(8), 2u);
  ::setenv("SYNCPAT_SCALE", "1", 1);
  EXPECT_EQ(scale_from_env(8), 1u);
  ::unsetenv("SYNCPAT_SCALE");
}

TEST(Experiments, ScaleFromEnvRejectsMalformedValues) {
  // A silently-ignored SYNCPAT_SCALE=0 used to run the default scale while
  // the user believed they ran paper scale; malformed values now throw.
  ::setenv("SYNCPAT_SCALE", "0", 1);
  EXPECT_THROW(static_cast<void>(scale_from_env(8)), std::invalid_argument);
  ::setenv("SYNCPAT_SCALE", "junk", 1);
  EXPECT_THROW(static_cast<void>(scale_from_env(8)), std::invalid_argument);
  ::setenv("SYNCPAT_SCALE", "", 1);
  EXPECT_THROW(static_cast<void>(scale_from_env(8)), std::invalid_argument);
  ::setenv("SYNCPAT_SCALE", "8x", 1);
  EXPECT_THROW(static_cast<void>(scale_from_env(8)), std::invalid_argument);
  ::setenv("SYNCPAT_SCALE", "-4", 1);
  EXPECT_THROW(static_cast<void>(scale_from_env(8)), std::invalid_argument);
  ::unsetenv("SYNCPAT_SCALE");
}

TEST(Experiments, MachineDescribeMentionsKeyParameters) {
  MachineConfig config;
  const std::string d = config.describe();
  EXPECT_NE(d.find("64 KB"), std::string::npos);
  EXPECT_NE(d.find("Illinois"), std::string::npos);
  EXPECT_NE(d.find("6 stall cycles"), std::string::npos);
  EXPECT_NE(d.find("round-robin"), std::string::npos);
}

}  // namespace
}  // namespace syncpat::core

// End-to-end reproduction of the paper's methodology on a *real* program:
// a parallel quicksort executes against the modeled address space (every
// array element it touches and every work-queue lock operation is recorded,
// MPTrace-style), and the resulting trace is analyzed and simulated under
// both lock schemes and both memory models.
//
//   ./qsort_study [elements] [threads]
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "core/experiment.hpp"
#include "core/simulator.hpp"
#include "report/table.hpp"
#include "trace/analyzer.hpp"
#include "util/format.hpp"
#include "util/parse.hpp"
#include "workload/kernels/qsort_kernel.hpp"

namespace {

std::uint32_t arg_or(int argc, char** argv, int index, const char* what,
                     std::uint32_t fallback) {
  if (argc <= index) return fallback;
  try {
    return syncpat::util::parse_positive_u32(argv[index], what);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace syncpat;

  workload::QsortParams params;
  params.num_elements = arg_or(argc, argv, 1, "elements", 50'000);
  params.num_threads = arg_or(argc, argv, 2, "threads", 12);

  std::cout << "Sorting " << util::with_commas(std::uint64_t{params.num_elements})
            << " integers on " << params.num_threads
            << " virtual processors (work-queue + insertion-sort cutoff "
            << params.insertion_cutoff << ")...\n\n";

  // Phase 1: run the instrumented program (the sort is verified internally).
  trace::ProgramTrace program = workload::qsort_trace(params);

  // Phase 2: the "ideal" analysis (Tables 1/2 of the paper).
  const trace::IdealProgramStats ideal = trace::analyze_program(program);
  std::cout << "Ideal statistics (per-processor averages):\n"
            << "  work cycles : "
            << util::with_commas(static_cast<std::uint64_t>(ideal.avg_work_cycles()))
            << "\n  references  : "
            << util::with_commas(static_cast<std::uint64_t>(ideal.avg_refs_all()))
            << "\n  lock pairs  : " << util::fixed(ideal.avg_lock_pairs(), 1)
            << "\n  avg held    : " << util::fixed(ideal.avg_hold_per_pair(), 1)
            << " cycles\n  time locked : "
            << util::percent(ideal.held_time_fraction(), 2) << "%\n\n";

  // Phase 3: simulate the four machine variants.
  report::Table t("Simulated machine variants");
  t.columns({"Locks", "Model", "run-time", "Util%", "lock-stall%", "Waiters",
             "Transfer(cy)"});
  for (const auto scheme :
       {sync::SchemeKind::kQueuing, sync::SchemeKind::kTtas}) {
    for (const auto model :
         {bus::ConsistencyModel::kSequential, bus::ConsistencyModel::kWeak}) {
      core::MachineConfig config;
      config.lock_scheme = scheme;
      config.consistency = model;
      config.num_procs = params.num_threads;
      program.reset_all();
      core::Simulator sim(config, program);
      const core::SimulationResult r = sim.run();
      t.add_row({sync::scheme_kind_name(scheme), bus::consistency_name(model),
                 util::with_commas(r.run_time),
                 util::percent(r.avg_utilization, 1),
                 util::fixed(r.stall_lock_pct, 1),
                 util::fixed(r.locks.waiters_at_transfer.mean(), 2),
                 util::fixed(r.locks.transfer_cycles.mean(), 1)});
    }
  }
  t.print(std::cout);
  std::cout << "The work-queue lock is short and only moderately contended, "
               "so (as the paper\nfound for Qsort) the lock implementation "
               "and memory model barely matter;\nread misses on the big "
               "array dominate.\n";
  return 0;
}

// syncpat_fuzz — deterministic differential fuzzing harness.
//
// Generates seeded random machine/workload/lock-scheme combinations and runs
// each under a battery of oracles (invariant checker, fast-forward and
// --jobs differentials, trace round-trip, conservation identities).  Failing
// cases are automatically shrunk to a minimal repro file that
// `syncpat_fuzz --repro <file>` replays exactly.
//
//   syncpat_fuzz [--seed N] [--cases N] [--repro-dir DIR] [--no-shrink]
//                [--verbose] [--jobs N]
//   syncpat_fuzz --repro FILE
//
// Exit status: 0 when all cases pass, 1 when any oracle fails, 2 on usage
// errors.  The report is byte-identical for identical seed + case count.
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "fuzz/harness.hpp"
#include "util/parse.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage: syncpat_fuzz [options]\n"
         "  --seed N        master seed (default 0x5eed)\n"
         "  --cases N       number of cases to run (default 200)\n"
         "  --repro FILE    replay a serialized repro case and exit\n"
         "  --repro-dir DIR where to write fuzz-repro-<n>.case files "
         "(default .)\n"
         "  --no-shrink     report failures without shrinking them\n"
         "  --verbose       print a line for every passing case too\n"
         "  --jobs N        worker count for the --jobs differential "
         "(default 3)\n"
         "  --inject-failure  test hook: synthetic oracle that fails cases\n"
         "                    with >= 2 procs and >= 400 refs (shrinker "
         "exercise)\n";
}

std::uint64_t numeric(const std::string& flag, const std::string& text) {
  try {
    return syncpat::util::parse_u64(text, flag);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace syncpat;

  fuzz::HarnessOptions opt;
  std::string repro_path;
  bool inject_failure = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      opt.seed = numeric("--seed", value("--seed"));
    } else if (arg == "--cases") {
      opt.cases = numeric("--cases", value("--cases"));
    } else if (arg == "--repro") {
      repro_path = value("--repro");
    } else if (arg == "--repro-dir") {
      opt.repro_dir = value("--repro-dir");
    } else if (arg == "--no-shrink") {
      opt.shrink_failures = false;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--jobs") {
      const std::uint64_t jobs = numeric("--jobs", value("--jobs"));
      if (jobs == 0 || jobs > 64) {
        std::cerr << "error: --jobs must be in [1, 64], got " << jobs << "\n";
        return 2;
      }
      opt.oracles.jobs = static_cast<std::uint32_t>(jobs);
    } else if (arg == "--inject-failure") {
      inject_failure = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "error: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  // The fast-forward differential compares fast-forward on vs off; an
  // inherited env override would silently collapse the two arms.
  unsetenv("SYNCPAT_FAST_FORWARD");

  if (inject_failure) {
    opt.injected_oracle = [](const fuzz::FuzzCase& c) {
      fuzz::OracleVerdict v;
      if (c.num_procs >= 2 && c.refs_per_proc >= 400) {
        v.failures.push_back("injected: synthetic failure (procs >= 2, refs >= 400)");
      }
      return v;
    };
  }

  try {
    if (!repro_path.empty()) {
      return fuzz::replay_repro(repro_path, opt, std::cout);
    }
    const fuzz::HarnessReport report = fuzz::run_fuzz(opt, std::cout);
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// Quickstart: synthesize a small contended workload, analyze its ideal
// statistics, and simulate it under both lock schemes on the paper's
// machine.
//
//   ./quickstart
//
// This walks the whole public API surface: BenchmarkProfile ->
// make_program_trace -> analyze_program -> Simulator::run -> results.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/machine_config.hpp"
#include "core/simulator.hpp"
#include "trace/analyzer.hpp"
#include "util/format.hpp"
#include "workload/generator.hpp"
#include "workload/profile.hpp"

int main() {
  using namespace syncpat;

  // A small eight-processor workload with one hot lock: short critical
  // sections taken every ~50 references.
  workload::BenchmarkProfile profile;
  profile.name = "quickstart";
  profile.num_procs = 8;
  profile.refs_per_proc = 50'000;
  profile.data_ref_fraction = 0.35;
  profile.work_cycles_per_ref = 2.5;
  profile.locking.pairs_per_proc = 800;
  profile.locking.cs_work_cycles = 120;
  profile.locking.num_locks = 1;
  profile.locking.dominant_weight = 1.0;

  // Ideal (zero-contention) analysis: what Tables 1 and 2 report.
  trace::IdealProgramStats ideal = core::run_ideal(profile);
  std::cout << "=== ideal analysis ===\n"
            << "  work cycles/proc : "
            << util::with_commas(static_cast<std::uint64_t>(ideal.avg_work_cycles()))
            << "\n  references/proc  : "
            << util::with_commas(static_cast<std::uint64_t>(ideal.avg_refs_all()))
            << "\n  lock pairs/proc  : " << ideal.avg_lock_pairs()
            << "\n  avg hold (ideal) : " << util::fixed(ideal.avg_hold_per_pair(), 1)
            << " cycles\n  time in locks    : "
            << util::percent(ideal.held_time_fraction(), 1) << "%\n\n";

  // Simulate under both lock implementations.
  core::MachineConfig config;  // the paper's Figure 1 machine
  std::cout << config.describe() << "\n";

  for (const auto scheme :
       {sync::SchemeKind::kQueuing, sync::SchemeKind::kTtas}) {
    config.lock_scheme = scheme;
    const core::ExperimentOutcome outcome = core::run_experiment(config, profile);
    const core::SimulationResult& r = outcome.sim;
    std::cout << "=== " << r.scheme << " locks ===\n"
              << "  run-time          : " << util::with_commas(r.run_time)
              << " cycles\n  utilization       : "
              << util::percent(r.avg_utilization, 1)
              << "%\n  stalls cache/lock : " << util::fixed(r.stall_cache_pct, 1)
              << "% / " << util::fixed(r.stall_lock_pct, 1)
              << "%\n  lock transfers    : " << r.locks.transfers
              << "\n  waiters@transfer  : "
              << util::fixed(r.locks.waiters_at_transfer.mean(), 2)
              << "\n  transfer latency  : "
              << util::fixed(r.locks.transfer_cycles.mean(), 1)
              << " cycles\n  bus utilization   : "
              << util::percent(r.bus_utilization, 1) << "%\n\n";
  }
  return 0;
}

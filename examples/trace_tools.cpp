// Trace-pipeline walkthrough: generate a calibrated benchmark model, save it
// as a full binary trace, compact it MPTrace-style, verify the expansion is
// lossless, and re-analyze the loaded file — the whole §2.1 toolchain.
//
//   ./trace_tools [profile-name] [scale]   (default: Pdsa at 1/64 length)
#include <cstdlib>
#include <iostream>
#include <string>

#include "trace/analyzer.hpp"
#include "trace/io.hpp"
#include "trace/mpt.hpp"
#include "util/format.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

int main(int argc, char** argv) {
  using namespace syncpat;

  const std::string wanted = argc > 1 ? argv[1] : "Pdsa";
  const std::uint64_t scale =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 64;

  workload::BenchmarkProfile profile;
  bool found = false;
  for (const auto& p : workload::paper_profiles()) {
    if (p.name == wanted) {
      profile = p;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "unknown profile '" << wanted
              << "' (try Grav, Pdsa, FullConn, Pverify, Qsort, Topopt)\n";
    return 1;
  }

  std::cout << "Generating " << profile.name << " at 1/" << scale
            << " of paper trace length...\n";
  trace::ProgramTrace program =
      workload::make_program_trace(profile.scaled(scale));

  // Save the expanded trace.
  const std::string path = "/tmp/" + profile.name + ".sptrace";
  trace::save_program_trace(path, program);
  std::cout << "  wrote " << path << "\n";

  // Compact processor 0's stream MPTrace-style and report the ratio.
  program.reset_all();
  const trace::MptStream compacted = trace::compact(*program.per_proc[0]);
  const std::uint64_t full_bytes = compacted.expanded_size() * 9;
  std::cout << "  MPT compaction (processor 0): "
            << util::with_commas(full_bytes) << " -> "
            << util::with_commas(compacted.compact_bytes()) << " bytes ("
            << util::fixed(100.0 * static_cast<double>(compacted.compact_bytes()) /
                               static_cast<double>(full_bytes),
                           1)
            << "% of full), dictionary of " << compacted.dictionary.size()
            << " block skeletons\n";

  // Verify lossless expansion.
  program.reset_all();
  trace::MptExpander expander(compacted);
  trace::Event a, b;
  std::uint64_t checked = 0;
  while (program.per_proc[0]->next(a)) {
    if (!expander.next(b) || !(a == b)) {
      std::cerr << "  MPT expansion mismatch at event " << checked << "\n";
      return 1;
    }
    ++checked;
  }
  std::cout << "  expansion verified lossless over "
            << util::with_commas(checked) << " events\n";

  // Reload the file and run the ideal analysis on it.
  trace::ProgramTrace loaded = trace::load_program_trace(path);
  const trace::IdealProgramStats stats = trace::analyze_program(loaded);
  std::cout << "\nIdeal analysis of the reloaded trace:\n"
            << "  procs        : " << stats.num_procs << "\n  refs/proc    : "
            << util::with_commas(static_cast<std::uint64_t>(stats.avg_refs_all()))
            << "\n  lock pairs   : " << util::fixed(stats.avg_lock_pairs(), 1)
            << "\n  time in locks: "
            << util::percent(stats.held_time_fraction(), 1) << "%\n";
  return 0;
}

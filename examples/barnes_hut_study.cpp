// Grav in miniature: a real Barnes-Hut force calculation runs through the
// Presto-style scheduler-lock pattern (outer scheduler lock, nested thread-
// queue lock) and the resulting trace is simulated under queuing locks and
// test-and-test-and-set — the paper's central comparison, on a program whose
// addresses come from a real quadtree.
//
//   ./barnes_hut_study [bodies] [threads] [chunk]
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "core/simulator.hpp"
#include "report/table.hpp"
#include "trace/analyzer.hpp"
#include "util/format.hpp"
#include "util/parse.hpp"
#include "workload/kernels/barnes_hut.hpp"

namespace {

std::uint32_t arg_or(int argc, char** argv, int index, const char* what,
                     std::uint32_t fallback) {
  if (argc <= index) return fallback;
  try {
    return syncpat::util::parse_positive_u32(argv[index], what);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace syncpat;

  workload::BarnesHutParams params;
  // The paper's Grav traced 2000 stars.
  params.num_bodies = arg_or(argc, argv, 1, "bodies", 2000);
  params.num_threads = arg_or(argc, argv, 2, "threads", 10);
  params.chunk = arg_or(argc, argv, 3, "chunk", 4);

  std::cout << "Barnes-Hut force phase: " << params.num_bodies << " bodies, "
            << params.num_threads << " virtual processors, chunk "
            << params.chunk << " (scheduler lock + nested queue lock)\n\n";

  trace::ProgramTrace program = workload::barnes_hut_trace(params);
  const trace::IdealProgramStats ideal = trace::analyze_program(program);
  std::cout << "Ideal lock statistics:\n"
            << "  lock pairs/proc   : " << util::fixed(ideal.avg_lock_pairs(), 1)
            << "\n  nested pairs/proc : "
            << util::fixed(ideal.avg_nested_pairs(), 1)
            << "  (the Presto scheduler/thread-queue nesting)\n"
            << "  avg held          : " << util::fixed(ideal.avg_hold_per_pair(), 1)
            << " cycles\n\n";

  report::Table t("Queuing locks vs Test&Test&Set");
  t.columns({"Locks", "run-time", "Util%", "Waiters", "Transfer(cy)",
             "Bus util%"});
  std::uint64_t queuing_runtime = 0;
  for (const auto scheme :
       {sync::SchemeKind::kQueuing, sync::SchemeKind::kTtas}) {
    core::MachineConfig config;
    config.lock_scheme = scheme;
    config.num_procs = params.num_threads;
    program.reset_all();
    core::Simulator sim(config, program);
    const core::SimulationResult r = sim.run();
    if (scheme == sync::SchemeKind::kQueuing) queuing_runtime = r.run_time;
    t.add_row({sync::scheme_kind_name(scheme), util::with_commas(r.run_time),
               util::percent(r.avg_utilization, 1),
               util::fixed(r.locks.waiters_at_transfer.mean(), 2),
               util::fixed(r.locks.transfer_cycles.mean(), 1),
               util::percent(sim.bus().utilization(), 1)});
    if (scheme == sync::SchemeKind::kTtas && queuing_runtime > 0) {
      const double pct = 100.0 *
                         (static_cast<double>(r.run_time) -
                          static_cast<double>(queuing_runtime)) /
                         static_cast<double>(queuing_runtime);
      t.note("T&T&S is " + util::fixed(pct, 1) +
             "% slower (the paper measured +8.0% for Grav)");
    }
  }
  t.print(std::cout);
  std::cout << "Shrink the chunk size (third argument) to sharpen scheduler-"
               "lock contention\nand watch the queuing-lock advantage grow.\n";
  return 0;
}

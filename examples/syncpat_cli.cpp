// Command-line driver: run any benchmark model (or a trace file) on any
// machine variant and print — or export as CSV — the full result set.
//
//   syncpat_cli [options]
//     --program NAME|PATH   Grav|Pdsa|FullConn|Pverify|Qsort|Topopt, or a
//                           .sptrace file written by save_program_trace
//                           (default Grav)
//     --scheme NAME         queuing|queuing-exact|ttas|tas|tas-backoff|
//                           ticket|anderson|mcs|clh (default queuing)
//     --consistency NAME    sequential|weak (default sequential)
//     --write-policy NAME   write-back|write-through (default write-back)
//     --scale N             trace length divisor, >= 1 (default 8)
//     --procs N             override processor count, 1..4096 (profiles only)
//     --buffer N            cache-bus buffer depth (default 4)
//     --mem-cycles N        memory access time (default 3)
//     --bus-discipline D    round-robin|fixed-priority|fcfs: the bus
//                           arbitration service discipline (default
//                           round-robin, the paper's machine; CLI spelling
//                           of SYNCPAT_BUS_DISCIPLINE)
//     --model NAME          bus|dsm: memory cost model (default bus; dsm
//                           adds a remote-access penalty for lines homed on
//                           another node; CLI spelling of SYNCPAT_MODEL)
//     --dsm-nodes N         dsm only: home-directory node count (default 4)
//     --dsm-remote-cycles N dsm only: extra cycles a remote access pays on
//                           top of the base memory time (default 20)
//     --jobs N              worker threads for --sweep (0 = all cores)
//     --check-invariants    run with the runtime invariant checker enabled;
//                           exits non-zero on any violation (forces per-cycle
//                           tick stepping: the checker observes every cycle)
//     --engine NAME         des|tick: the discrete-event core (default) or
//                           the legacy per-cycle tick loop; results are
//                           byte-identical (CLI spelling of SYNCPAT_ENGINE)
//     --no-fast-forward     deprecated: selects the tick engine with its
//                           quiescence run-ahead disabled (the historical
//                           per-cycle reference mode); use --engine=tick.
//                           Conflicts with an explicit --engine=des (exit 2)
//     --sweep               run every scheme x both memory models on the
//                           parallel engine and print a comparison table
//                           (profiles only)
//     --per-lock            print the per-lock contention breakdown
//     --trace-out FILE      record a cycle-stamped event trace and write it
//                           as Chrome trace-event JSON (open at
//                           ui.perfetto.dev); with --sweep, one file per
//                           cell with the cell label spliced into FILE
//     --trace-events LIST   comma list of event categories to record:
//                           locks,bus,coherence,barriers,idle,all
//                           (default all; implies tracing on)
//     --metrics             enable the deterministic metrics layer and print
//                           the machine profile (stall-cause breakdown,
//                           per-lock contention, windowed bus utilization)
//     --metrics-out FILE    write the metrics registry to FILE; the format
//                           follows the extension (.json or .csv, anything
//                           else is an error); implies --metrics; with
//                           --sweep, one file per cell with the cell label
//                           spliced into FILE
//     --metrics-window N    bus-utilization gauge window in cycles
//                           (default 4096)
//     --csv                 emit results as CSV instead of a table
//     --validate            validate the trace and exit
//
// SYNCPAT_METRICS=1|0 overrides the metrics default from the environment
// (any other value is an error, never a silent default).
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiment_engine.hpp"
#include "core/invariant_checker.hpp"
#include "core/machine_config.hpp"
#include "core/simulator.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "report/lock_timeline.hpp"
#include "report/machine_profile.hpp"
#include "report/per_lock.hpp"
#include "report/table.hpp"
#include "trace/address_map.hpp"
#include "trace/analyzer.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"
#include "util/format.hpp"
#include "util/parse.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace syncpat;

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--program P] [--scheme S] [--consistency C]\n"
               "  [--write-policy W] [--scale N] [--procs N] [--buffer N]\n"
               "  [--mem-cycles N] [--jobs N] [--check-invariants]\n"
               "  [--bus-discipline round-robin|fixed-priority|fcfs]\n"
               "  [--model bus|dsm] [--dsm-nodes N] [--dsm-remote-cycles N]\n"
               "  [--engine des|tick] [--sweep] [--per-lock]\n"
               "  [--trace-out FILE] [--trace-events locks,bus,coherence,"
               "barriers,idle,all]\n"
               "  [--metrics] [--metrics-out FILE.json|.csv] "
               "[--metrics-window N]\n"
               "  [--csv] [--validate]\n";
  std::exit(2);
}

struct Options {
  std::string program = "Grav";
  std::string scheme = "queuing";
  std::string consistency = "sequential";
  std::string write_policy = "write-back";
  std::uint64_t scale = 8;
  std::uint32_t procs = 0;
  std::uint32_t buffer = 4;
  std::uint32_t mem_cycles = 3;
  std::uint32_t jobs = 0;
  bus::DisciplineKind bus_discipline = bus::DisciplineKind::kRoundRobin;
  core::MemModelKind model = core::MemModelKind::kBus;
  std::uint32_t dsm_nodes = 0;          // 0 = DsmConfig default
  std::uint32_t dsm_remote_cycles = 0;  // 0 = DsmConfig default
  bool check_invariants = false;
  core::EngineKind engine = core::EngineKind::kDes;
  bool fast_forward = true;
  bool sweep = false;
  bool per_lock = false;
  bool csv = false;
  bool validate = false;
  std::string trace_out;  // empty = tracing off (unless --trace-events given)
  std::uint32_t trace_categories = obs::category::kAll;
  bool trace_events_given = false;
  bool metrics = false;
  std::string metrics_out;  // non-empty implies --metrics
  std::uint32_t metrics_window = 0;  // 0 = MetricsConfig default
};

/// Strict positive-integer flag values; exits with a clear message on junk.
std::uint64_t numeric(const std::string& flag, const std::string& text) {
  try {
    return util::parse_positive_u64(text, flag);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

std::uint32_t numeric32(const std::string& flag, const std::string& text) {
  try {
    return util::parse_positive_u32(text, flag);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
}

Options parse(int argc, char** argv) {
  Options opt;
  bool engine_given = false;
  bool no_fast_forward_given = false;
  core::EngineKind explicit_engine = core::EngineKind::kDes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--program") opt.program = value();
    else if (arg == "--scheme") opt.scheme = value();
    else if (arg == "--consistency") opt.consistency = value();
    else if (arg == "--write-policy") opt.write_policy = value();
    // Numeric flags share util::parse_*: a junk value ("--procs foo") is an
    // error, never a silent 0 (the SYNCPAT_SCALE policy).
    else if (arg == "--scale") opt.scale = numeric(arg, value());
    else if (arg == "--procs") {
      // parse_positive_u32 already rejects 0; the upper bound is the private
      // address interleave's capacity (trace::AddressMap::kMaxProcs).
      opt.procs = numeric32(arg, value());
      if (opt.procs > trace::AddressMap::kMaxProcs) {
        std::cerr << "error: --procs must be between 1 and "
                  << trace::AddressMap::kMaxProcs << ", got " << opt.procs
                  << "\n";
        std::exit(2);
      }
    }
    else if (arg == "--buffer") opt.buffer = numeric32(arg, value());
    else if (arg == "--mem-cycles") opt.mem_cycles = numeric32(arg, value());
    else if (arg == "--bus-discipline") {
      const std::string name = value();
      try {
        opt.bus_discipline = bus::discipline_from_name(name);
      } catch (const std::invalid_argument&) {
        std::cerr << "error: --bus-discipline expects \"round-robin\", "
                     "\"fixed-priority\" or \"fcfs\", got \""
                  << name << "\"\n";
        std::exit(2);
      }
    }
    else if (arg == "--model") {
      const std::string name = value();
      try {
        opt.model = core::mem_model_from_name(name);
      } catch (const std::invalid_argument&) {
        std::cerr << "error: --model expects \"bus\" or \"dsm\", got \""
                  << name << "\"\n";
        std::exit(2);
      }
    }
    else if (arg == "--dsm-nodes") opt.dsm_nodes = numeric32(arg, value());
    else if (arg == "--dsm-remote-cycles")
      opt.dsm_remote_cycles = numeric32(arg, value());
    else if (arg == "--jobs" || arg == "-j") {
      // 0 is legal here: "use all cores".
      try {
        opt.jobs = util::parse_u32(value(), arg);
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        std::exit(2);
      }
    }
    else if (arg == "--check-invariants") opt.check_invariants = true;
    else if (arg == "--engine") {
      const std::string name = value();
      if (name == "des") opt.engine = core::EngineKind::kDes;
      else if (name == "tick") opt.engine = core::EngineKind::kTick;
      else {
        std::cerr << "error: --engine expects \"des\" or \"tick\", got \""
                  << name << "\"\n";
        std::exit(2);
      }
      engine_given = true;
      explicit_engine = opt.engine;
    }
    else if (arg == "--no-fast-forward") {
      // Deprecated alias preserved for scripts: historical per-cycle mode.
      std::cerr << "note: --no-fast-forward is deprecated; it now selects the "
                   "legacy tick engine (use --engine des|tick)\n";
      opt.engine = core::EngineKind::kTick;
      opt.fast_forward = false;
      no_fast_forward_given = true;
    }
    else if (arg == "--trace-out") opt.trace_out = value();
    else if (arg == "--trace-events") {
      try {
        opt.trace_categories = obs::parse_categories(value());
        opt.trace_events_given = true;
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        std::exit(2);
      }
    }
    else if (arg == "--metrics") opt.metrics = true;
    else if (arg == "--metrics-out") opt.metrics_out = value();
    else if (arg == "--metrics-window")
      opt.metrics_window = numeric32(arg, value());
    else if (arg == "--sweep") opt.sweep = true;
    else if (arg == "--per-lock") opt.per_lock = true;
    else if (arg == "--csv") opt.csv = true;
    else if (arg == "--validate") opt.validate = true;
    else usage(argv[0]);
  }
  // --no-fast-forward *is* the tick engine; combining it with an explicit
  // --engine=des asks for two different engines at once.  Historically the
  // last flag silently won; now the contradiction is an error regardless of
  // flag order.  (--engine tick --no-fast-forward agree and stay legal.)
  if (no_fast_forward_given && engine_given &&
      explicit_engine == core::EngineKind::kDes) {
    std::cerr << "error: --no-fast-forward selects the tick engine and "
                 "conflicts with --engine=des; drop one of the flags\n";
    std::exit(2);
  }
  return opt;
}

trace::ProgramTrace load_program(const Options& opt) {
  for (const auto& profile : workload::paper_profiles()) {
    if (profile.name == opt.program) {
      workload::BenchmarkProfile p = profile.scaled(opt.scale);
      if (opt.procs > 0) p.num_procs = opt.procs;
      return workload::make_program_trace(p);
    }
  }
  // Not a known profile name: treat as a trace-file path.
  return trace::load_program_trace(opt.program);
}

/// --sweep: every lock scheme x both memory models on the parallel engine.
int run_sweep(const Options& opt, const core::MachineConfig& base) {
  const workload::BenchmarkProfile* found = nullptr;
  for (const auto& profile : workload::paper_profiles()) {
    if (profile.name == opt.program) found = &profile;
  }
  if (found == nullptr) {
    std::cerr << "--sweep needs a benchmark profile name "
                 "(Grav|Pdsa|FullConn|Pverify|Qsort|Topopt), not a trace "
                 "file\n";
    return 2;
  }
  workload::BenchmarkProfile profile = *found;
  if (opt.procs > 0) profile.num_procs = opt.procs;

  core::ExperimentGrid grid;
  grid.base = base;
  grid.base.invariants.enabled = opt.check_invariants;
  grid.profiles = {profile};
  grid.schemes = sync::all_scheme_kinds();
  grid.consistency_models = {bus::ConsistencyModel::kSequential,
                             bus::ConsistencyModel::kWeak};
  grid.scales = {opt.scale};

  core::EngineOptions engine;
  engine.jobs = opt.jobs;
  const core::GridResult result = core::run_grid(grid, engine);

  report::Table t("syncpat sweep: " + profile.name + " (scale 1/" +
                  std::to_string(opt.scale) + ", " +
                  std::to_string(result.jobs_used) + " workers, " +
                  util::fixed(result.wall_ms, 0) + " ms)");
  t.columns({"Scheme", "Model", "Run-time", "Util %", "Bus %", "Acq",
             "Xfer cy", "Wall ms"});
  bool violations = false;
  for (std::size_t i = 0; i < result.size(); ++i) {
    const core::CellResult& cell = result.results[i];
    if (!cell.ok()) {
      std::cerr << "cell " << result.cells[i].label() << " failed: "
                << cell.error << "\n";
      return 1;
    }
    const core::SimulationResult& r = cell.outcome.sim;
    t.add_row({r.scheme, r.consistency, util::with_commas(r.run_time),
               util::percent(r.avg_utilization, 1),
               util::percent(r.bus_utilization, 1),
               util::with_commas(r.locks.acquisitions),
               util::fixed(r.locks.transfer_cycles.mean(), 1),
               util::fixed(cell.wall_ms, 1)});
    if (cell.outcome.invariants.violations > 0) {
      violations = true;
      std::cerr << "invariant violations in " << result.cells[i].label()
                << ": " << cell.outcome.invariants.violations << " (first: "
                << (cell.outcome.invariants.samples.empty()
                        ? "<none recorded>"
                        : cell.outcome.invariants.samples[0])
                << ")\n";
    }
    if (!opt.trace_out.empty() && grid.base.trace.enabled) {
      const std::string path =
          obs::trace_out_path(opt.trace_out, result.cells[i].label());
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return 1;
      }
      out << cell.outcome.trace_json;
      std::cout << "wrote " << path << "\n";
    }
    if (!opt.metrics_out.empty() && cell.outcome.metrics != nullptr) {
      // Cell labels splice into the path like --trace-out; JSON reuses the
      // cell's pre-rendered bytes (the same ones the jobs-identity test
      // compares), CSV re-renders from the registry.
      const std::string path =
          obs::trace_out_path(opt.metrics_out, result.cells[i].label());
      const obs::MetricsMeta meta{r.program, r.scheme, r.consistency,
                                  r.num_procs, r.run_time};
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return 1;
      }
      if (obs::metrics_format_from_path(opt.metrics_out) ==
          obs::MetricsFormat::kJson) {
        out << cell.outcome.metrics_json;
      } else {
        out << obs::metrics_to_csv(*cell.outcome.metrics, meta);
      }
      std::cout << "wrote " << path << "\n";
    }
  }
  if (opt.csv) {
    std::cout << t.to_csv();
  } else {
    t.print(std::cout);
  }
  if (opt.check_invariants && !violations) {
    std::cout << "invariants: all cells clean\n";
  }
  return violations ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  core::MachineConfig config;
  try {
    config.lock_scheme = sync::scheme_kind_from_name(opt.scheme);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (opt.consistency == "sequential") {
    config.consistency = bus::ConsistencyModel::kSequential;
  } else if (opt.consistency == "weak") {
    config.consistency = bus::ConsistencyModel::kWeak;
  } else {
    std::cerr << "unknown consistency model: " << opt.consistency << "\n";
    return 1;
  }
  if (opt.write_policy == "write-back") {
    config.write_policy = cache::WritePolicy::kWriteBack;
  } else if (opt.write_policy == "write-through") {
    config.write_policy = cache::WritePolicy::kWriteThrough;
  } else {
    std::cerr << "unknown write policy: " << opt.write_policy << "\n";
    return 1;
  }
  config.cache_bus_buffer_depth = opt.buffer;
  config.memory.access_cycles = opt.mem_cycles;
  config.bus_discipline = opt.bus_discipline;
  config.model = opt.model;
  if (opt.dsm_nodes > 0) config.dsm.nodes = opt.dsm_nodes;
  if (opt.dsm_remote_cycles > 0) {
    config.dsm.remote_access_cycles = opt.dsm_remote_cycles;
  }
  config.invariants.enabled = opt.check_invariants;
  config.engine = opt.engine;
  config.fast_forward = opt.fast_forward;
  // --trace-events without --trace-out still records (the in-memory lock
  // timeline is useful on its own); --trace-out implies recording.
  config.trace.enabled = !opt.trace_out.empty() || opt.trace_events_given;
  config.trace.categories = opt.trace_categories;
  try {
    // --metrics-out implies --metrics; SYNCPAT_METRICS=1|0 overrides both.
    config.metrics.enabled =
        obs::metrics_enabled_from_env(opt.metrics || !opt.metrics_out.empty());
    if (!opt.metrics_out.empty()) {
      // Validate the extension up front: fail before the run, not after.
      (void)obs::metrics_format_from_path(opt.metrics_out);
    }
    // Resolve SYNCPAT_ENGINE / SYNCPAT_FAST_FORWARD up front too: a malformed
    // value must exit 2 here, not escape from a grid worker thread mid-run.
    const core::EngineSelection sel =
        core::resolve_engine_from_env(config.engine, config.fast_forward);
    config.engine = sel.engine;
    config.fast_forward = sel.fast_forward;
    // Same policy for SYNCPAT_BUS_DISCIPLINE / SYNCPAT_MODEL: junk exits 2
    // here with the variable named, never a silent default.
    config.bus_discipline =
        core::resolve_bus_discipline_from_env(config.bus_discipline);
    config.model = core::resolve_mem_model_from_env(config.model);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (opt.metrics_window > 0) {
    config.metrics.bus_window_cycles = opt.metrics_window;
  }

  if (opt.sweep) return run_sweep(opt, config);

  trace::ProgramTrace program;
  try {
    program = load_program(opt);
  } catch (const std::exception& e) {
    std::cerr << "cannot load program '" << opt.program << "': " << e.what()
              << "\n";
    return 1;
  }

  if (opt.validate) {
    const trace::ValidationReport report = trace::validate_program(program);
    std::cout << report.to_string();
    return report.ok() ? 0 : 1;
  }

  config.num_procs = static_cast<std::uint32_t>(program.num_procs());

  const trace::IdealProgramStats ideal = trace::analyze_program(program);
  core::Simulator sim(config, program);
  obs::ChromeTraceSink chrome(opt.program, config.num_procs);
  obs::LockTimelineSink timeline;
  if (obs::EventRecorder* rec = sim.recorder()) {
    rec->add_sink(&chrome);
    rec->add_sink(&timeline);
  }
  const core::SimulationResult r = sim.run();

  report::Table t("syncpat: " + r.program + " on " + r.scheme + "/" +
                  r.consistency + "/" + opt.write_policy);
  t.columns({"Metric", "Value"});
  t.add_row({"processors", std::to_string(r.num_procs)});
  t.add_row({"run-time (cycles)", util::with_commas(r.run_time)});
  t.add_row({"utilization %", util::percent(r.avg_utilization, 1)});
  t.add_row({"stalls cache %", util::fixed(r.stall_cache_pct, 1)});
  t.add_row({"stalls lock %", util::fixed(r.stall_lock_pct, 1)});
  t.add_row({"bus utilization %", util::percent(r.bus_utilization, 1)});
  t.add_row({"write-hit %", util::percent(r.write_hit_ratio, 1)});
  t.add_row({"lock acquisitions", util::with_commas(r.locks.acquisitions)});
  t.add_row({"lock transfers", util::with_commas(r.locks.transfers)});
  t.add_row({"waiters at transfer", util::fixed(r.locks.waiters_at_transfer.mean(), 2)});
  t.add_row({"transfer latency (cy)", util::fixed(r.locks.transfer_cycles.mean(), 1)});
  t.add_row({"hold time (cy)", util::fixed(r.locks.hold_cycles.mean(), 0)});
  t.add_row({"ideal work/proc", util::with_commas(static_cast<std::uint64_t>(
                                    ideal.avg_work_cycles()))});
  t.add_row({"ideal lock pairs/proc", util::fixed(ideal.avg_lock_pairs(), 1)});
  t.add_row({"ideal time locked %", util::percent(ideal.held_time_fraction(), 1)});
  t.add_row({"barriers completed", util::with_commas(r.barriers_completed)});
  t.add_row({"bus txns (r/x/u/wb/wt)",
             util::with_commas(r.traffic.reads) + "/" +
                 util::with_commas(r.traffic.readx) + "/" +
                 util::with_commas(r.traffic.upgrades) + "/" +
                 util::with_commas(r.traffic.writebacks) + "/" +
                 util::with_commas(r.traffic.write_throughs)});
  if (opt.csv) {
    std::cout << t.to_csv();
  } else {
    t.print(std::cout);
  }
  if (opt.per_lock) {
    report::per_lock_table(sim.lock_stats()).print(std::cout);
  }
  if (const obs::MetricsRegistry* m = sim.metrics()) {
    const obs::MetricsMeta meta{r.program, r.scheme, r.consistency,
                                r.num_procs, r.run_time};
    const report::Table profile[] = {report::machine_profile_cycles(*m, meta),
                                     report::machine_profile_locks(*m),
                                     report::machine_profile_bus(*m, meta)};
    for (const report::Table& section : profile) {
      if (opt.csv) {
        std::cout << section.to_csv();
      } else {
        section.print(std::cout);
      }
    }
    if (!opt.metrics_out.empty()) {
      std::ofstream out(opt.metrics_out, std::ios::binary);
      if (!out) {
        std::cerr << "error: cannot write " << opt.metrics_out << "\n";
        return 1;
      }
      out << obs::render_metrics(*m, meta,
                                 obs::metrics_format_from_path(opt.metrics_out));
      std::cout << "wrote " << opt.metrics_out << "\n";
    }
  }
  if (sim.recorder() != nullptr) {
    if (!opt.trace_out.empty()) {
      std::ofstream out(opt.trace_out, std::ios::binary);
      if (!out) {
        std::cerr << "error: cannot write " << opt.trace_out << "\n";
        return 1;
      }
      out << chrome.finish();
      std::cout << "wrote " << opt.trace_out
                << " (open at ui.perfetto.dev)\n";
    }
    if ((config.trace.categories & obs::category::kLocks) != 0) {
      report::lock_timeline_table(timeline.take(r.run_time)).print(std::cout);
    }
  }
  if (const core::InvariantChecker* checker = sim.invariant_checker()) {
    std::cout << "invariants: " << util::with_commas(checker->checks())
              << " checks, " << util::with_commas(checker->violation_count())
              << " violations\n";
    for (const std::string& v : checker->violations()) {
      std::cerr << "  violation: " << v << "\n";
    }
    if (!checker->ok()) return 1;
  }
  return 0;
}

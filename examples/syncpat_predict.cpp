// Analytic-model validation driver: replay a fuzz-corpus slice through the
// closed-form throughput predictor (src/model/) and the simulator, print the
// per-scheme relative-error table, and optionally export BENCH_model.json.
//
//   syncpat_predict [--seed S] [--cases N] [--json FILE]
//                   [--max-median-error F] [--min-cases K]
//
//     --seed S              corpus master seed (default 24245, the tier-1
//                           fuzz seed)
//     --cases N             corpus indices 0..N-1 (default 200)
//     --json FILE           write the per-scheme summary as JSON (the
//                           tracked BENCH_model.json format)
//     --max-median-error F  exit 1 unless every scheme with at least
//                           --min-cases scored cases has median relative
//                           error <= F (e.g. 0.35 = 35%); this is the
//                           model-smoke regression gate
//     --min-cases K         schemes with fewer scored cases than K are
//                           reported but not gated (default 3)
//     --verbose             print every scored case (signed error, bounds)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "report/model_validation.hpp"
#include "util/format.hpp"
#include "util/parse.hpp"

namespace {

using syncpat::report::ModelValidation;
using syncpat::report::SchemeErrorSummary;

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed S] [--cases N] [--json FILE]\n"
               "  [--max-median-error F] [--min-cases K]\n";
  std::exit(2);
}

void write_json(const ModelValidation& v, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(2);
  }
  out << "{\n";
  out << "  \"benchmark\": \"model_validation\",\n";
  out << "  \"master_seed\": " << v.master_seed << ",\n";
  out << "  \"cases_requested\": " << v.requested << ",\n";
  out << "  \"cases_scored\": " << v.cases.size() << ",\n";
  out << "  \"cases_skipped\": " << v.skipped << ",\n";
  out << "  \"schemes\": [\n";
  const auto schemes = v.per_scheme();
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const SchemeErrorSummary& s = schemes[i];
    out << "    {\"scheme\": \"" << s.scheme << "\", \"cases\": " << s.cases
        << ", \"median_rel_error\": " << syncpat::util::fixed(s.median_error, 4)
        << ", \"p90_rel_error\": " << syncpat::util::fixed(s.p90_error, 4)
        << "}" << (i + 1 < schemes.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 24245;
  std::uint64_t cases = 200;
  std::uint64_t min_cases = 3;
  double max_median_error = -1.0;
  bool verbose = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--seed") seed = syncpat::util::parse_u64(value(), arg);
      else if (arg == "--cases")
        cases = syncpat::util::parse_u64(value(), arg);
      else if (arg == "--min-cases")
        min_cases = syncpat::util::parse_u64(value(), arg);
      else if (arg == "--json") json_path = value();
      else if (arg == "--verbose") verbose = true;
      else if (arg == "--max-median-error") {
        max_median_error = std::stod(value());
        if (max_median_error <= 0.0) {
          std::cerr << "error: --max-median-error must be positive\n";
          return 2;
        }
      }
      else usage(argv[0]);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  const ModelValidation v =
      syncpat::report::validate_model(seed, cases);
  v.table().print(std::cout);

  if (verbose) {
    for (const auto& c : v.cases) {
      const double signed_err =
          (c.predicted_run_time - static_cast<double>(c.sim_run_time)) /
          static_cast<double>(c.sim_run_time);
      std::cout << "case " << c.index << " " << c.scheme << " P=" << c.procs
                << " sim=" << c.sim_run_time
                << " pred=" << syncpat::util::fixed(c.predicted_run_time, 0)
                << " err=" << syncpat::util::percent(signed_err, 1)
                << (c.saturated ? " [saturated]" : "")
                << " waiters sim=" << syncpat::util::fixed(c.sim_waiters, 2)
                << " pred=" << syncpat::util::fixed(c.pred_waiters, 2)
                << "\n";
    }
  }

  if (!json_path.empty()) {
    write_json(v, json_path);
    std::cout << "wrote " << json_path << "\n";
  }

  if (max_median_error > 0.0) {
    bool failed = false;
    for (const SchemeErrorSummary& s : v.per_scheme()) {
      if (s.cases < min_cases) continue;
      if (s.median_error > max_median_error) {
        std::cerr << "FATAL: scheme " << s.scheme << " median error "
                  << syncpat::util::percent(s.median_error, 1)
                  << " exceeds the pinned bound "
                  << syncpat::util::percent(max_median_error, 1) << " over "
                  << s.cases << " cases\n";
        failed = true;
      }
    }
    if (failed) return 1;
    std::cout << "model-smoke: every gated scheme within "
              << syncpat::util::percent(max_median_error, 1) << "\n";
  }
  return 0;
}
